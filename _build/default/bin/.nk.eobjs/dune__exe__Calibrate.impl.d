bin/calibrate.ml: Addr List Nkapps Nkcore Nkutil Nsm Option Printf Result Sim Tcpstack Testbed Vm
