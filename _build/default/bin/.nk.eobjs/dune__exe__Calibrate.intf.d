bin/calibrate.mli:
