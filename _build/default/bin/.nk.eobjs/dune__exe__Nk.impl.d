bin/nk.ml: Addr Arg Cmd Cmdliner Experiments Format List Nkapps Nkcore Nsm Printf Sim Tcpstack Term Testbed Vm
