bin/nk.mli:
