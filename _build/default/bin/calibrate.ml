(* Calibration probe: measures the simulator against the paper's published
   single-core and scaling anchors (DESIGN.md section 5). Run after touching
   any cost constant:

     dune exec bin/calibrate.exe *)

open Nkcore
module Types = Tcpstack.Types

let ip_server = 10
let ip_client = 20

let client_ips = List.init 8 (fun i -> ip_client + i)

let baseline_world ?(vcpus = 1) () =
  let tb = Testbed.create () in
  let hosta = Testbed.add_host tb ~name:"hostA" in
  let hostb = Testbed.add_host tb ~name:"hostB" in
  let vm = Vm.create_baseline hosta ~name:"vm" ~vcpus ~ips:[ ip_server ] () in
  let client =
    Vm.create_baseline hostb ~name:"client" ~vcpus:16 ~ips:client_ips
      ~profile:Sim.Cost_profile.ideal ()
  in
  (tb, vm, client)

let nk_world ?(vcpus = 1) ?(nsm_cores = 1) ?(kind = `Kernel) () =
  let tb = Testbed.create () in
  let hosta = Testbed.add_host tb ~name:"hostA" in
  let hostb = Testbed.add_host tb ~name:"hostB" in
  let nsm =
    match kind with
    | `Kernel -> Nsm.create_kernel hosta ~name:"nsm" ~vcpus:nsm_cores ()
    | `Mtcp -> Nsm.create_mtcp hosta ~name:"nsm" ~vcpus:nsm_cores ()
  in
  let vm = Vm.create_nk hosta ~name:"vm" ~vcpus ~ips:[ ip_server ] ~nsms:[ nsm ] () in
  let client =
    Vm.create_baseline hostb ~name:"client" ~vcpus:16 ~ips:client_ips
      ~profile:Sim.Cost_profile.ideal ()
  in
  (tb, vm, client, nsm)

(* send throughput: server VM sends to remote sink *)
let send_tput name (tb : Testbed.t) sender_api sink_api ~streams ~msg =
  let sink_addr = Addr.make ip_client 5001 in
  let sink = Result.get_ok (Nkapps.Stream.sink ~engine:tb.engine ~api:sink_api ~addr:sink_addr) in
  ignore
    (Sim.Engine.schedule tb.engine ~delay:1e-3 (fun () ->
         ignore
           (Nkapps.Stream.senders ~engine:tb.engine ~api:sender_api ~dst:sink_addr ~streams
              ~msg_size:msg ~stop:1.0 ())));
  Testbed.run tb ~until:1.2;
  Printf.printf "%-40s %6.1f Gbps\n%!" name (Nkapps.Stream.sink_throughput_gbps sink)

(* receive throughput: remote senders to server VM sink *)
let recv_tput name (tb : Testbed.t) server_api client_api ~streams ~msg =
  let sink_addr = Addr.make ip_server 5001 in
  let sink = Result.get_ok (Nkapps.Stream.sink ~engine:tb.engine ~api:server_api ~addr:sink_addr) in
  ignore
    (Sim.Engine.schedule tb.engine ~delay:1e-3 (fun () ->
         ignore
           (Nkapps.Stream.senders ~engine:tb.engine ~api:client_api ~dst:sink_addr ~streams
              ~msg_size:msg ~stop:1.0 ())));
  Testbed.run tb ~until:1.2;
  Printf.printf "%-40s %6.1f Gbps\n%!" name (Nkapps.Stream.sink_throughput_gbps sink)

let rps name (tb : Testbed.t) server_api client_api ~conc ~total =
  let addr = Addr.make ip_server 80 in
  let _srv =
    Result.get_ok
      (Nkapps.Epoll_server.start ~engine:tb.engine ~api:server_api
         (Nkapps.Epoll_server.config
            ~proto:(Nkapps.Proto.Fixed { request = 64; response = 64; keepalive = false })
            addr))
  in
  let lg = ref None in
  ignore
    (Sim.Engine.schedule tb.engine ~delay:1e-3 (fun () ->
         lg :=
           Some
             (Nkapps.Loadgen.start ~engine:tb.engine ~api:client_api
                {
                  Nkapps.Loadgen.server = addr;
                  proto = Nkapps.Proto.Fixed { request = 64; response = 64; keepalive = false };
                  mode = Nkapps.Loadgen.Closed { concurrency = conc; total = Some total; duration = None };
                  warmup = 0.0;
                })));
  Testbed.run tb ~until:60.0;
  let r = Nkapps.Loadgen.results (Option.get !lg) in
  Printf.printf "%-40s %8.0f rps  (errors %d, mean lat %.2f ms)\n%!" name
    r.Nkapps.Loadgen.rps r.Nkapps.Loadgen.errors
    (Nkutil.Histogram.mean r.Nkapps.Loadgen.latency *. 1e3)

let () =
  (* Paper anchors:
     - 8-stream 16KB send, 1 core: 55.2G | receive: 13.6..17.4G
     - single stream 16KB send: 30.9G
     - RPS 64B conc100: ~70K (kernel), 190K (mtcp, 1 core)
     - 8 cores RPS: ~400K kernel *)
  (let tb, vm, client = baseline_world () in
   send_tput "baseline 1-core send 8x16KB (55.2G)" tb (Vm.api vm) (Vm.api client) ~streams:8
     ~msg:16384);
  (let tb, vm, client = baseline_world () in
   send_tput "baseline 1-core send 1x16KB (30.9G)" tb (Vm.api vm) (Vm.api client) ~streams:1
     ~msg:16384);
  (let tb, vm, client = baseline_world () in
   recv_tput "baseline 1-core recv 8x16KB (17.4G)" tb (Vm.api vm) (Vm.api client) ~streams:8
     ~msg:16384);
  (let tb, vm, client = baseline_world ~vcpus:3 () in
   send_tput "baseline 3-core send 8x8KB (100G)" tb (Vm.api vm) (Vm.api client) ~streams:8
     ~msg:8192);
  (let tb, vm, client = baseline_world ~vcpus:8 () in
   recv_tput "baseline 8-core recv 8x8KB (91G)" tb (Vm.api vm) (Vm.api client) ~streams:8
     ~msg:8192);
  (let tb, vm, client = baseline_world () in
   rps "baseline 1-core rps (70K)" tb (Vm.api vm) (Vm.api client) ~conc:100 ~total:50_000);
  (let tb, vm, client = baseline_world ~vcpus:8 () in
   rps "baseline 8-core rps (400K)" tb (Vm.api vm) (Vm.api client) ~conc:1000 ~total:200_000);
  (let tb, vm, client, _ = nk_world () in
   send_tput "NK 1c/1c send 8x16KB (55G)" tb (Vm.api vm) (Vm.api client) ~streams:8
     ~msg:16384);
  (let tb, vm, client, _ = nk_world () in
   recv_tput "NK 1c/1c recv 8x16KB (17G)" tb (Vm.api vm) (Vm.api client) ~streams:8
     ~msg:16384);
  (let tb, vm, client, _ = nk_world () in
   rps "NK kernel 1c rps (70K)" tb (Vm.api vm) (Vm.api client) ~conc:100 ~total:50_000);
  (let tb, vm, client, _ = nk_world ~kind:`Mtcp () in
   rps "NK mtcp 1c rps (190K)" tb (Vm.api vm) (Vm.api client) ~conc:100 ~total:50_000);
  (let tb, vm, client, _ = nk_world ~vcpus:8 ~kind:`Mtcp ~nsm_cores:8 () in
   rps "NK mtcp 8c/8c rps (1.1M)" tb (Vm.api vm) (Vm.api client) ~conc:1000 ~total:200_000);
  (let tb, vm, client, _ = nk_world ~vcpus:8 ~nsm_cores:8 () in
   rps "NK kernel 8c/8c rps (400K)" tb (Vm.api vm) (Vm.api client) ~conc:1000 ~total:200_000)
