examples/fair_sharing.ml: Addr Nkapps Nkcore Nkutil Nsm Printf Segment Sim Tcpstack Testbed Vm
