examples/fair_sharing.mli:
