examples/mtcp_no_api_change.ml: Addr Nkapps Nkcore Nsm Option Printf Sim Tcpstack Testbed Vm
