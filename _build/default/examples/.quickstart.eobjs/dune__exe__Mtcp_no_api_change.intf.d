examples/mtcp_no_api_change.mli:
