examples/multiplexing_gateways.ml: Addr List Nkapps Nkcore Nktrace Nsm Printf Sim Tcpstack Testbed Vm
