examples/multiplexing_gateways.mli:
