examples/quickstart.ml: Addr Coreengine Guestlib Host Nkcore Nsm Option Printf Sim Tcpstack Testbed Vm
