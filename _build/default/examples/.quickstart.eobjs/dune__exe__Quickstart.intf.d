examples/quickstart.mli:
