examples/shared_memory_colocated.ml: Addr Nkapps Nkcore Nsm Printf Sim Tcpstack Testbed Vm
