examples/shared_memory_colocated.mli:
