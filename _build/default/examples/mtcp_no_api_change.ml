(* Use case 3 (§6.3): deploying mTCP without any API change.

   The SAME unmodified HTTP server and the SAME ab-style client run twice;
   the only difference is one line in the infrastructure setup — which NSM
   the operator attaches the VM to. No kernel bypass setup, no mtcp_epoll
   porting, no driver debugging in the tenant's world.

     dune exec examples/mtcp_no_api_change.exe *)

open Nkcore

let proto = Nkapps.Proto.Http { path = "/index.html"; response = 64; keepalive = false }

let run_with ~nsm_kind =
  let tb = Testbed.create () in
  let host_a = Testbed.add_host tb ~name:"hostA" in
  let host_b = Testbed.add_host tb ~name:"hostB" in
  let nsm =
    (* The operator's one-line deployment decision: *)
    match nsm_kind with
    | `Kernel -> Nsm.create_kernel host_a ~name:"nsm" ~vcpus:2 ()
    | `Mtcp -> Nsm.create_mtcp host_a ~name:"nsm" ~vcpus:2 ()
  in
  let vm = Vm.create_nk host_a ~name:"nginx-vm" ~vcpus:2 ~ips:[ 10 ] ~nsms:[ nsm ] () in
  let client =
    Vm.create_baseline host_b ~name:"ab" ~vcpus:8
      ~ips:[ 20; 21; 22; 23 ]
      ~profile:Sim.Cost_profile.ideal ()
  in
  (* Tenant side: the same unmodified "nginx". *)
  let addr = Addr.make 10 80 in
  (match
     Nkapps.Epoll_server.start ~engine:tb.Testbed.engine ~api:(Vm.api vm)
       (Nkapps.Epoll_server.config ~proto addr)
   with
  | Ok _ -> ()
  | Error e -> failwith (Tcpstack.Types.err_to_string e));
  (* The same unmodified "ab". *)
  let lg = ref None in
  ignore
    (Sim.Engine.schedule tb.Testbed.engine ~delay:1e-3 (fun () ->
         lg :=
           Some
             (Nkapps.Loadgen.start ~engine:tb.Testbed.engine ~api:(Vm.api client)
                {
                  Nkapps.Loadgen.server = addr;
                  proto;
                  mode =
                    Nkapps.Loadgen.Closed
                      { concurrency = 100; total = Some 30_000; duration = None };
                  warmup = 0.0;
                })));
  Testbed.run tb ~until:30.0;
  Nkapps.Loadgen.results (Option.get !lg)

let () =
  print_endline "running unmodified nginx+ab over the kernel-stack NSM...";
  let kernel = run_with ~nsm_kind:`Kernel in
  print_endline "swapping the NSM to mTCP (no tenant change) and rerunning...";
  let mtcp = run_with ~nsm_kind:`Mtcp in
  Printf.printf "\n%-22s %10s %8s\n" "NSM" "RPS" "errors";
  Printf.printf "%-22s %10.0f %8d\n" "linux-kernel"
    kernel.Nkapps.Loadgen.rps kernel.Nkapps.Loadgen.errors;
  Printf.printf "%-22s %10.0f %8d\n" "mTCP (DPDK, polling)" mtcp.Nkapps.Loadgen.rps
    mtcp.Nkapps.Loadgen.errors;
  Printf.printf "\nmTCP speedup: %.2fx — with zero application changes.\n"
    (mtcp.Nkapps.Loadgen.rps /. kernel.Nkapps.Loadgen.rps)
