(* Use case 1 (§6.1): multiplexing bursty application gateways on one NSM.

   Three AGs replay bursty traces. Today each runs as a fat VM with its own
   stack; under NetKernel each keeps one core of application logic and the
   common TCP work lands on one shared NSM — fewer cores, same service.

     dune exec examples/multiplexing_gateways.exe *)

open Nkcore

let duration = 10.0

let proto = Nkapps.Proto.Fixed { request = 256; response = 1024; keepalive = false }

let replay ~label ~cores_used ~mk_vm =
  let tb = Testbed.create () in
  let host_a = Testbed.add_host tb ~name:"hostA" in
  let host_b = Testbed.add_host tb ~name:"hostB" in
  let fleet = Nktrace.Traffic.generate_fleet ~seed:2018 ~n:64 () in
  let traces = Nktrace.Traffic.top_k_by_utilization fleet 3 in
  let client =
    Vm.create_baseline host_b ~name:"tenants" ~vcpus:16
      ~ips:(List.init 8 (fun i -> 20 + i))
      ~profile:Sim.Cost_profile.ideal ()
  in
  let lgs =
    List.mapi
      (fun i (trace : Nktrace.Traffic.t) ->
        let vm = mk_vm host_a i in
        let addr = Addr.make (10 + i) 80 in
        (match
           Nkapps.Epoll_server.start ~engine:tb.Testbed.engine ~api:(Vm.api vm)
             (Nkapps.Epoll_server.config ~proto ~app_cycles:30_000.0
                ~app_cores:(Vm.cores vm) addr)
         with
        | Ok _ -> ()
        | Error e -> failwith (Tcpstack.Types.err_to_string e));
        let lg = ref None in
        ignore
          (Sim.Engine.schedule tb.Testbed.engine ~delay:1e-3 (fun () ->
               lg :=
                 Some
                   (Nkapps.Loadgen.start ~engine:tb.Testbed.engine ~api:(Vm.api client)
                      {
                        Nkapps.Loadgen.server = addr;
                        proto;
                        mode =
                          Nkapps.Loadgen.Open
                            {
                              (* one trace minute per second, half rate *)
                              rate_at =
                                (fun t -> 0.5 *. Nktrace.Traffic.rate_at trace (t *. 60.0));
                              duration;
                            };
                        warmup = 0.0;
                      })));
        lg)
      traces
  in
  Testbed.run tb ~until:(duration +. 0.5);
  let served, errors =
    List.fold_left
      (fun (c, e) lg ->
        match !lg with
        | None -> (c, e)
        | Some lg ->
            let r = Nkapps.Loadgen.results lg in
            (c + r.Nkapps.Loadgen.completed, e + r.Nkapps.Loadgen.errors))
      (0, 0) lgs
  in
  Printf.printf "%-44s cores=%2d served=%6d errors=%d per-core=%5.0f rps\n%!" label
    cores_used served errors
    (float_of_int served /. duration /. float_of_int cores_used);
  ()

let () =
  print_endline "replaying 3 bursty application gateways for 10s:\n";
  replay ~label:"Baseline: 3 x 4-core VMs (own stacks)" ~cores_used:12 ~mk_vm:(fun host i ->
      Vm.create_baseline host
        ~name:(Printf.sprintf "ag%d" i)
        ~vcpus:4
        ~ips:[ 10 + i ]
        ());
  let shared_nsm = ref None in
  replay ~label:"NetKernel: 3 x 1-core VMs + 5-core NSM + CE" ~cores_used:9
    ~mk_vm:(fun host i ->
      let nsm =
        match !shared_nsm with
        | Some n -> n
        | None ->
            let n = Nsm.create_kernel host ~name:"shared-nsm" ~vcpus:5 () in
            shared_nsm := Some n;
            n
      in
      Vm.create_nk host
        ~name:(Printf.sprintf "ag%d" i)
        ~vcpus:1
        ~ips:[ 10 + i ]
        ~nsms:[ nsm ] ());
  print_endline
    "\nSame service from 9 cores instead of 12: the bursty stacks statistically\n\
     multiplex inside the shared NSM (the paper's >40% core saving at scale)."
