(* Quickstart: a VM whose network stack lives in the infrastructure.

   We build the paper's Figure 1(b) in a few lines:
     - a host with a CoreEngine (enabled implicitly by the first NSM),
     - a kernel-stack NSM (the operator's network stack),
     - a user VM attached to it — its BSD-socket API is served by GuestLib
       over NQEs, not by an in-guest stack,
     - a client machine on the other side of a 100G fabric.

   The application code below is ordinary socket code; nothing in it knows
   whether the stack is in the guest or in the NSM. Run with:

     dune exec examples/quickstart.exe *)

open Nkcore
module Types = Tcpstack.Types
module Api = Tcpstack.Socket_api

let ( >>= ) r f = match r with Ok v -> f v | Error e -> failwith (Types.err_to_string e)

let () =
  (* Infrastructure (operator side). *)
  let tb = Testbed.create () in
  let host_a = Testbed.add_host tb ~name:"hostA" in
  let host_b = Testbed.add_host tb ~name:"hostB" in
  let nsm = Nsm.create_kernel host_a ~name:"kernel-nsm" ~vcpus:2 () in
  let vm = Vm.create_nk host_a ~name:"tenant-vm" ~vcpus:2 ~ips:[ 10 ] ~nsms:[ nsm ] () in
  let client =
    Vm.create_baseline host_b ~name:"client" ~vcpus:4 ~ips:[ 20 ]
      ~profile:Sim.Cost_profile.ideal ()
  in

  (* Application (tenant side): a plain echo server on port 7. *)
  let server_api = Vm.api vm in
  let addr = Addr.make 10 7 in
  server_api.Api.socket () >>= fun ls ->
  server_api.Api.bind ls addr >>= fun () ->
  server_api.Api.listen ls ~backlog:64 >>= fun () ->
  let rec serve () =
    server_api.Api.accept ls ~k:(fun r ->
        match r with
        | Error _ -> ()
        | Ok (fd, peer) ->
            Printf.printf "[server] accepted connection from %d:%d\n" peer.Addr.ip
              peer.Addr.port;
            let rec echo () =
              server_api.Api.recv fd ~max:4096 ~mode:`Copy ~k:(fun r ->
                  match r with
                  | Ok (Types.Data "") ->
                      Printf.printf "[server] peer closed, closing too\n";
                      server_api.Api.close fd
                  | Ok (Types.Data s) ->
                      Printf.printf "[server] echoing %S\n" s;
                      server_api.Api.send fd (Types.Data s) ~k:(fun _ -> echo ())
                  | Ok (Types.Zeros _) -> echo ()
                  | Error Types.Eagain ->
                      ignore
                        (Sim.Engine.schedule tb.Testbed.engine ~delay:20e-6 echo)
                  | Error e ->
                      Printf.printf "[server] error: %s\n" (Types.err_to_string e))
            in
            echo ();
            serve ())
  in
  serve ();

  (* Client: connect, send, read the echo. *)
  let client_api = Vm.api client in
  client_api.Api.socket () >>= fun fd ->
  client_api.Api.connect fd addr ~k:(fun r ->
      match r with
      | Error e -> failwith (Types.err_to_string e)
      | Ok () ->
          Printf.printf "[client] connected through the NSM\n";
          client_api.Api.send fd (Types.Data "hello, netkernel!") ~k:(fun _ ->
              let rec await () =
                client_api.Api.recv fd ~max:4096 ~mode:`Copy ~k:(fun r ->
                    match r with
                    | Ok (Types.Data s) when s <> "" ->
                        Printf.printf "[client] got echo: %S\n" s;
                        client_api.Api.close fd
                    | Ok _ -> await ()
                    | Error Types.Eagain ->
                        ignore (Sim.Engine.schedule tb.Testbed.engine ~delay:20e-6 await)
                    | Error e -> failwith (Types.err_to_string e))
              in
              await ()));

  Testbed.run tb ~until:1.0;
  let gl = Option.get (Vm.guestlib vm) in
  let s = Guestlib.stats gl in
  Printf.printf
    "\nGuestLib moved %d NQEs out / %d in; CoreEngine switched %d NQEs total.\n"
    s.Guestlib.nqes_tx s.Guestlib.nqes_rx
    (Coreengine.stats (Host.coreengine host_a)).Coreengine.switched;
  print_endline "quickstart complete."
