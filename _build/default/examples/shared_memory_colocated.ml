(* Use case 4 (§6.4): shared-memory networking for colocated VMs.

   Two VMs of the same tenant on one host move bulk data. With the
   shared-memory NSM the payload hops hugepage-to-hugepage and skips TCP
   entirely; the baseline runs in-guest TCP through the host vswitch.

     dune exec examples/shared_memory_colocated.exe *)

open Nkcore

let transfer ~label ~mk_vms =
  let tb = Testbed.create () in
  let host = Testbed.add_host tb ~name:"hostA" in
  let vm1, vm2 = mk_vms host in
  let sink =
    match
      Nkapps.Stream.sink ~engine:tb.Testbed.engine ~api:(Vm.api vm2)
        ~addr:(Addr.make 11 9000)
    with
    | Ok s -> s
    | Error e -> failwith (Tcpstack.Types.err_to_string e)
  in
  ignore
    (Sim.Engine.schedule tb.Testbed.engine ~delay:1e-3 (fun () ->
         ignore
           (Nkapps.Stream.senders ~engine:tb.Testbed.engine ~api:(Vm.api vm1)
              ~dst:(Addr.make 11 9000) ~streams:8 ~msg_size:65536 ~stop:1.0 ())));
  Testbed.run tb ~until:1.1;
  let gbps = Nkapps.Stream.sink_throughput_gbps sink in
  Printf.printf "%-34s %6.1f Gb/s\n%!" label gbps;
  gbps

let () =
  print_endline "moving bulk data between two colocated VMs of the same user:\n";
  let baseline =
    transfer ~label:"in-guest TCP via vswitch (7 cores)" ~mk_vms:(fun host ->
        ( Vm.create_baseline host ~name:"vm1" ~vcpus:2 ~ips:[ 10 ] (),
          Vm.create_baseline host ~name:"vm2" ~vcpus:5 ~ips:[ 11 ] () ))
  in
  let shmem =
    transfer ~label:"shared-memory NSM (7 cores)" ~mk_vms:(fun host ->
        let nsm = Nsm.create_shmem host ~name:"shmem" ~vcpus:2 () in
        ( Vm.create_nk host ~name:"vm1" ~vcpus:2 ~ips:[ 10 ] ~nsms:[ nsm ] (),
          Vm.create_nk host ~name:"vm2" ~vcpus:2 ~ips:[ 11 ] ~nsms:[ nsm ] () ))
  in
  Printf.printf
    "\nThe infrastructure detected colocation and bypassed TCP: %.1fx faster.\n"
    (shmem /. baseline)
