lib/core/coreengine.ml: Array Bytes Float Hashtbl List Nk_costs Nk_device Nkutil Nqe Queue Queue_set Sim
