lib/core/coreengine.mli: Nk_costs Nk_device Sim
