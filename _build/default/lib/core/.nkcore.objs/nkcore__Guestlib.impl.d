lib/core/guestlib.ml: Addr Array Hashtbl Hugepages Int Int64 List Nk_costs Nk_device Nkutil Nqe Option Printf Queue Queue_set Sim String Sys Tcpstack
