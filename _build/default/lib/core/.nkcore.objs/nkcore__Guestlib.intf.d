lib/core/guestlib.mli: Nk_costs Nk_device Sim Tcpstack
