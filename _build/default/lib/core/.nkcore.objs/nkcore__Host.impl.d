lib/core/host.ml: Coreengine Fabric Nic Nk_costs Nkutil Sim Tcpstack Vswitch
