lib/core/host.mli: Addr Coreengine Fabric Nic Nk_costs Nkutil Sim Tcpstack Vswitch
