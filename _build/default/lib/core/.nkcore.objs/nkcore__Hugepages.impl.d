lib/core/hugepages.ml: Bytes Hashtbl List Tcpstack
