lib/core/hugepages.mli: Tcpstack
