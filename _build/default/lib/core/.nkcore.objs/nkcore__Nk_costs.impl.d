lib/core/nk_costs.ml: Sim
