lib/core/nk_costs.mli: Sim
