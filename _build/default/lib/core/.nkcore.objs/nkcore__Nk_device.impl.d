lib/core/nk_device.ml: Array Hugepages Nkutil Queue Queue_set
