lib/core/nk_device.mli: Hugepages Queue_set
