lib/core/nqe.ml: Addr Bytes Int32 Int64 Printf Tcpstack
