lib/core/nqe.mli: Addr Tcpstack
