lib/core/nsm.ml: Array Coreengine Host Hugepages List Mtcpstack Nk_device Nsm_shmem Servicelib Sim Tcpstack
