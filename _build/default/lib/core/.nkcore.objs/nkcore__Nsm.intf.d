lib/core/nsm.mli: Addr Host Hugepages Nk_device Servicelib Sim Tcpstack
