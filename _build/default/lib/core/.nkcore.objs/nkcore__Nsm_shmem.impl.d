lib/core/nsm_shmem.ml: Addr Array Hashtbl Hugepages Int List Nk_costs Nk_device Nkutil Nqe Queue Queue_set Sim Tcpstack
