lib/core/nsm_shmem.mli: Addr Hugepages Nk_costs Nk_device Sim
