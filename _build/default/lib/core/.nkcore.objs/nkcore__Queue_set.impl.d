lib/core/queue_set.ml: Nkutil
