lib/core/queue_set.mli: Nkutil
