lib/core/servicelib.ml: Addr Array Hashtbl Hugepages Int Int64 List Nk_costs Nk_device Nkutil Nqe Printf Queue Queue_set Sim Sys Tcpstack
