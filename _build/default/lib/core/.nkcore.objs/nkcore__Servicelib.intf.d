lib/core/servicelib.mli: Addr Hugepages Nk_costs Nk_device Sim Tcpstack
