lib/core/testbed.ml: Fabric Host Nk_costs Nkutil Sim Tcpstack
