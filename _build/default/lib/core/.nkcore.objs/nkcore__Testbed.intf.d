lib/core/testbed.mli: Fabric Host Nk_costs Nkutil Sim Tcpstack
