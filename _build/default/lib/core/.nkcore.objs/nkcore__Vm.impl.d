lib/core/vm.ml: Addr Coreengine Guestlib Host Hugepages List Nk_device Nsm Sim Tcpstack
