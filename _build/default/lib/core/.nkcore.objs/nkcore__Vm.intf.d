lib/core/vm.mli: Addr Guestlib Host Hugepages Nsm Sim Tcpstack
