lib/experiments/abl_batching.ml: List Nkcore Nkutil Printf Report Worlds
