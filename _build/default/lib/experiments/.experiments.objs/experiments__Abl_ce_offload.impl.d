lib/experiments/abl_ce_offload.ml: Float Nkcore Printf Report Worlds
