lib/experiments/abl_zerocopy.ml: List Nk_costs Nkcore Printf Report Table6_overhead_tput Worlds
