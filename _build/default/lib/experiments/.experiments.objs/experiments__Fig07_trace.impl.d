lib/experiments/fig07_trace.ml: Array Float Int List Nktrace Nkutil Printf Report String
