lib/experiments/fig08_multiplexing.ml: Addr List Nkapps Nkcore Nktrace Nsm Printf Report Sim Tcpstack Testbed Vm
