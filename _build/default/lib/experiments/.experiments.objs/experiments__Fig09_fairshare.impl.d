lib/experiments/fig09_fairshare.ml: Addr Int List Nkapps Nkcore Nkutil Nsm Printf Report Segment Sim Tcpstack Testbed Vm
