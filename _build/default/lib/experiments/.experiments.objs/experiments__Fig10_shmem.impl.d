lib/experiments/fig10_shmem.ml: Addr Nkapps Nkcore Nsm Printf Report Sim Tcpstack Testbed Vm
