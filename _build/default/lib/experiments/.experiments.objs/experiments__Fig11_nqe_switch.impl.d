lib/experiments/fig11_nqe_switch.ml: Array Bytes Hashtbl List Nkcore Nkutil Nqe Printf Report Unix
