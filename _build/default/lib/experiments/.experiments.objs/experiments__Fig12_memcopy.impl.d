lib/experiments/fig12_memcopy.ml: Bytes Float Format Hugepages Int List Nkcore Nkutil Nqe Printf Report String Tcpstack Unix
