lib/experiments/fig13_16_streams.ml: Format List Nkutil Report Worlds
