lib/experiments/fig17_rps.ml: Format List Nkutil Printf Report Worlds
