lib/experiments/fig18_19_scaling.ml: List Report Worlds
