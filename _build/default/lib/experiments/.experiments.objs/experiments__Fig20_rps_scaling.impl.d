lib/experiments/fig20_rps_scaling.ml: List Report Worlds
