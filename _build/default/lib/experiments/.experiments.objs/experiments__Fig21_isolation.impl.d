lib/experiments/fig21_isolation.ml: Addr Coreengine Float Host List Nkapps Nkcore Nkutil Nsm Printf Report Sim Tcpstack Testbed Vm
