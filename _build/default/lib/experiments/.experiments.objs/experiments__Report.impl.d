lib/experiments/report.ml: Array Format Int List Printf String
