lib/experiments/table2_packing.ml: Nktrace Printf Report Worlds
