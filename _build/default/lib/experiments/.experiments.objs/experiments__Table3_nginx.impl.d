lib/experiments/table3_nginx.ml: List Nkapps Printf Report Worlds
