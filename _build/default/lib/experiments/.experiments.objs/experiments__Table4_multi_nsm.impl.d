lib/experiments/table4_multi_nsm.ml: Addr List Nkapps Nkcore Report Sim Tcpstack Testbed Vm Worlds
