lib/experiments/table5_latency.ml: Nkutil Printf Report Worlds
