lib/experiments/table6_overhead_tput.ml: Addr List Nkapps Nkcore Nsm Printf Report Sim Tcpstack Testbed Vm Worlds
