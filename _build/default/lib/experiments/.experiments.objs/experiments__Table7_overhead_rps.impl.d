lib/experiments/table7_overhead_rps.ml: Addr List Nkapps Nkcore Nsm Printf Report Sim Testbed Vm Worlds
