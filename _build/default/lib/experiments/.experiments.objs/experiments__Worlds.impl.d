lib/experiments/worlds.ml: Addr Host List Nkapps Nkcore Nkutil Nsm Printf Sim Tcpstack Testbed Vm
