lib/experiments/worlds.mli: Addr Host Nk_costs Nkapps Nkcore Nkutil Nsm Tcpstack Testbed Vm
