(* Fig 7: traffic of the three most utilized application gateways.

   The production trace is proprietary; we use the synthetic AG generator
   ({!Nktrace.Traffic}) matched to the paper's description: extremely low
   average utilization and bursty per-minute rates. The report summarizes
   each AG series plus a coarse sparkline of the hour. *)

let sparkline rates =
  let ramp = [| ' '; '.'; ':'; '-'; '='; '+'; '*'; '#' |] in
  let peak = Array.fold_left Float.max 1e-9 rates in
  String.init (Array.length rates) (fun i ->
      let level = int_of_float (rates.(i) /. peak *. 7.0) in
      ramp.(Int.max 0 (Int.min 7 level)))

let run ?quick:(_ = false) () =
  let fleet = Nktrace.Traffic.generate_fleet ~seed:2018 ~n:64 () in
  let top3 = Nktrace.Traffic.top_k_by_utilization fleet 3 in
  let rows =
    List.map
      (fun (t : Nktrace.Traffic.t) ->
        [
          Printf.sprintf "AG-%d" t.Nktrace.Traffic.ag_id;
          Printf.sprintf "%.0f" t.Nktrace.Traffic.mean;
          Printf.sprintf "%.0f" t.Nktrace.Traffic.peak;
          Printf.sprintf "%.1f" (Nktrace.Traffic.peak_to_mean t);
          Printf.sprintf "%.2f"
            (Nkutil.Stats.coefficient_of_variation t.Nktrace.Traffic.rates);
          sparkline t.Nktrace.Traffic.rates;
        ])
      top3
  in
  Report.make ~id:"fig07"
    ~title:"Three most-utilized AGs: per-minute request rate over one hour (synthetic)"
    ~headers:[ "AG"; "mean rps"; "peak rps"; "peak/mean"; "CoV"; "minutes 0..59" ]
    ~notes:
      [
        "substitution: synthetic bursty trace generator in place of the proprietary \
         Sep-2018 production trace (DESIGN.md)";
        "shape to check: low mean vs peak (bursty), like the paper's Fig 7";
      ]
    rows
