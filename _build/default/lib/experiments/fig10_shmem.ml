(* Fig 10 (use case 4, §6.4): shared-memory networking between colocated
   VMs of the same user.

   NetKernel: 2-core sending VM + 2-core receiving VM + 2-core shared-memory
   NSM + CoreEngine core (7 cores) moving message chunks hugepage-to-
   hugepage. Baseline: the same VMs with in-guest TCP CUBIC through the
   host vswitch (2-core sender, 5-core receiver, per the paper). 8
   connections both ways.

   Paper: NetKernel ~100 Gb/s, about 2x the ~50 Gb/s Baseline. *)

open Nkcore

let run_one ~system ~duration =
  let tb = Testbed.create () in
  let host = Testbed.add_host tb ~name:"hostA" in
  let vm1, vm2 =
    match system with
    | `Baseline ->
        ( Vm.create_baseline host ~name:"vm1" ~vcpus:2 ~ips:[ 10 ] (),
          Vm.create_baseline host ~name:"vm2" ~vcpus:5 ~ips:[ 11 ] () )
    | `Netkernel ->
        let nsm = Nsm.create_shmem host ~name:"shmem" ~vcpus:2 () in
        ( Vm.create_nk host ~name:"vm1" ~vcpus:2 ~ips:[ 10 ] ~nsms:[ nsm ] (),
          Vm.create_nk host ~name:"vm2" ~vcpus:2 ~ips:[ 11 ] ~nsms:[ nsm ] () )
  in
  let sink =
    match
      Nkapps.Stream.sink ~engine:tb.Testbed.engine ~api:(Vm.api vm2)
        ~addr:(Addr.make 11 5001)
    with
    | Ok s -> s
    | Error e -> failwith (Tcpstack.Types.err_to_string e)
  in
  ignore
    (Sim.Engine.schedule tb.Testbed.engine ~delay:1e-3 (fun () ->
         ignore
           (Nkapps.Stream.senders ~engine:tb.Testbed.engine ~api:(Vm.api vm1)
              ~dst:(Addr.make 11 5001) ~streams:8 ~msg_size:65536 ~stop:duration ())));
  Testbed.run tb ~until:(duration +. 0.1);
  Nkapps.Stream.sink_throughput_gbps sink

let run ?(quick = false) () =
  let duration = if quick then 0.5 else 1.0 in
  let baseline = run_one ~system:`Baseline ~duration in
  let nk = run_one ~system:`Netkernel ~duration in
  Report.make ~id:"fig10"
    ~title:"Colocated same-user VMs: shared-memory NSM vs in-guest TCP (CUBIC)"
    ~headers:[ "system"; "cores"; "Gb/s" ]
    ~notes:
      [
        "paper: NetKernel+shmem NSM ~100 Gb/s with 7 cores total, ~2x Baseline (~50 Gb/s)";
        "the shmem NSM copies chunks hugepage-to-hugepage, no transport processing";
      ]
    [
      [ "Baseline (TCP via vswitch)"; "7 (2 snd + 5 rcv)"; Report.cell_gbps baseline ];
      [ "NetKernel (shmem NSM)"; "7 (2+2 VMs, 2 NSM, 1 CE)"; Report.cell_gbps nk ];
      [ "speedup"; ""; Printf.sprintf "%.1fx" (nk /. baseline) ];
    ]
