(* Fig 12: message copy throughput through hugepages vs message size.

   Real microbenchmark of the paper's §7.2 memory-copy path: the sender
   copies a message into the hugepage region and builds a send NQE with the
   data pointer; the NQE crosses two rings (GuestLib device -> CoreEngine ->
   ServiceLib device); the receiver resolves the pointer and copies the
   message out. Measures end-to-end application bytes per second of wall
   clock.

   Paper: >100 Gb/s for messages >= 4KB, ~144 Gb/s at 8KB. *)

open Nkcore

let sizes = [ 64; 256; 1024; 4096; 8192; 16384; 65536 ]

let run_one ~size ~iterations =
  let hp = Hugepages.create ~page_size:(2 * 1024 * 1024) ~pages:8 () in
  let ring_a = Nkutil.Spsc_ring.create ~capacity:1024 in
  let ring_b = Nkutil.Spsc_ring.create ~capacity:1024 in
  let message = String.make size 'x' in
  let out = Bytes.create size in
  let moved = ref 0 in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to iterations do
    (match Hugepages.alloc hp size with
    | None -> failwith "fig12: hugepage exhausted"
    | Some extent ->
        (* sender: copy in, emit NQE *)
        Hugepages.write_payload hp extent (Tcpstack.Types.Data message);
        let nqe =
          Nqe.encode
            (Nqe.make ~op:Nqe.Send ~vm_id:1 ~qset:0 ~sock:7
               ~data_ptr:extent.Hugepages.offset ~size ())
        in
        ignore (Nkutil.Spsc_ring.push ring_a nqe);
        (* CoreEngine: one ring to the other *)
        (match Nkutil.Spsc_ring.pop ring_a with
        | Some raw -> ignore (Nkutil.Spsc_ring.push ring_b raw)
        | None -> ());
        (* receiver: decode, copy out, free *)
        (match Nkutil.Spsc_ring.pop ring_b with
        | Some raw -> (
            match Nqe.decode raw with
            | Ok d -> (
                match
                  Hugepages.read_payload hp
                    { Hugepages.offset = d.Nqe.data_ptr; len = d.Nqe.size }
                    ~pos:0 ~len:d.Nqe.size ~synthetic:false
                with
                | Tcpstack.Types.Data s ->
                    Bytes.blit_string s 0 out 0 (String.length s);
                    moved := !moved + d.Nqe.size
                | Tcpstack.Types.Zeros _ -> ())
            | Error _ -> ())
        | None -> ());
        Hugepages.free hp extent)
  done;
  let dt = Unix.gettimeofday () -. t0 in
  float_of_int !moved *. 8.0 /. dt /. 1e9

let run ?(quick = false) () =
  let budget = if quick then 64 * 1024 * 1024 else 512 * 1024 * 1024 in
  let rows =
    List.map
      (fun size ->
        let iterations = Int.max 1000 (budget / size) in
        (* warm caches/GC, then take the best of three runs *)
        ignore (run_one ~size ~iterations:(iterations / 10));
        let gbps =
          List.fold_left Float.max 0.0
            (List.init 3 (fun _ -> run_one ~size ~iterations))
        in
        [ Format.asprintf "%a" Nkutil.Units.pp_bytes size; Printf.sprintf "%.1f" gbps ])
      sizes
  in
  Report.make ~id:"fig12" ~title:"Hugepage message copy throughput vs message size"
    ~headers:[ "message size"; "Gb/s" ]
    ~notes:
      [
        "real microbenchmark (wall clock on this machine), not simulated";
        "paper: >100 Gb/s from 4KB messages; ~144 Gb/s at 8KB";
        "shape to check: rises with message size (per-message costs amortize)";
      ]
    rows
