(* Figs 13-16: TCP stream throughput vs message size, Baseline vs NetKernel
   with the kernel-stack NSM. 1-vCPU VM and 1-vCPU NSM (§7.3).

   Fig 13: single-stream send;   Fig 14: single-stream receive;
   Fig 15: 8-stream send;        Fig 16: 8-stream receive.

   Paper: NetKernel on par with Baseline everywhere; send tops at 30.9G
   (single) / 55.2G (8 streams, 16KB); receive tops at 13.6G / 17.4G. *)

let msg_sizes = [ 64; 256; 1024; 4096; 16384 ]

let measure ~direction ~streams ~msg_size ~duration ~system =
  let w =
    match system with
    | `Baseline -> Worlds.baseline ()
    | `Netkernel -> Worlds.netkernel ()
  in
  match direction with
  | `Send -> Worlds.measure_send_throughput w ~streams ~msg_size ~duration ()
  | `Recv -> Worlds.measure_recv_throughput w ~streams ~msg_size ~duration ()

let figure ~id ~title ~direction ~streams ~duration ~notes =
  let rows =
    List.map
      (fun msg_size ->
        let baseline = measure ~direction ~streams ~msg_size ~duration ~system:`Baseline in
        let nk = measure ~direction ~streams ~msg_size ~duration ~system:`Netkernel in
        [
          Format.asprintf "%a" Nkutil.Units.pp_bytes msg_size;
          Report.cell_gbps baseline;
          Report.cell_gbps nk;
        ])
      msg_sizes
  in
  Report.make ~id ~title ~headers:[ "message size"; "Baseline Gb/s"; "NetKernel Gb/s" ]
    ~notes rows

let run_fig13 ?(quick = false) () =
  figure ~id:"fig13" ~title:"Single TCP stream send throughput (1 vCPU VM, 1 vCPU NSM)"
    ~direction:`Send ~streams:1
    ~duration:(if quick then 0.3 else 1.0)
    ~notes:
      [
        "paper: NetKernel == Baseline; tops at 30.9 Gb/s (16KB messages)";
        "small messages are syscall-bound, large ones window-bound";
      ]

let run_fig14 ?(quick = false) () =
  figure ~id:"fig14" ~title:"Single TCP stream receive throughput (1 vCPU VM, 1 vCPU NSM)"
    ~direction:`Recv ~streams:1
    ~duration:(if quick then 0.3 else 1.0)
    ~notes:[ "paper: NetKernel == Baseline; tops at 13.6 Gb/s (interrupt-driven RX)" ]

let run_fig15 ?(quick = false) () =
  figure ~id:"fig15" ~title:"8-stream TCP send throughput (1 vCPU VM, 1 vCPU NSM)"
    ~direction:`Send ~streams:8
    ~duration:(if quick then 0.3 else 1.0)
    ~notes:[ "paper: NetKernel == Baseline; tops at 55.2 Gb/s (16KB messages)" ]

let run_fig16 ?(quick = false) () =
  figure ~id:"fig16" ~title:"8-stream TCP receive throughput (1 vCPU VM, 1 vCPU NSM)"
    ~direction:`Recv ~streams:8
    ~duration:(if quick then 0.3 else 1.0)
    ~notes:[ "paper: NetKernel == Baseline; tops at 17.4 Gb/s (16KB messages)" ]
