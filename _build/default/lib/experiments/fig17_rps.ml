(* Fig 17: short TCP connections — requests per second vs message size,
   kernel stack, 1 vCPU, concurrency 1000, non-keepalive.

   Paper: ~70 K rps for messages <= 1KB, slightly degrading for larger
   messages; NetKernel == Baseline. Scale-down: 20K requests per point
   instead of the paper's 10M (identical statistics, documented). *)

let msg_sizes = [ 64; 256; 1024; 4096; 16384 ]

let run ?(quick = false) () =
  let total = if quick then 5_000 else 20_000 in
  let rows =
    List.map
      (fun msg_size ->
        let baseline =
          let w = Worlds.baseline () in
          Worlds.measure_rps w ~concurrency:1000 ~total ~msg_size ()
        in
        let nk =
          let w = Worlds.netkernel () in
          Worlds.measure_rps w ~concurrency:1000 ~total ~msg_size ()
        in
        [
          Format.asprintf "%a" Nkutil.Units.pp_bytes msg_size;
          Report.cell_krps baseline.Worlds.rps;
          Report.cell_krps nk.Worlds.rps;
        ])
      msg_sizes
  in
  Report.make ~id:"fig17"
    ~title:"RPS vs message size, kernel stack, 1 vCPU, concurrency 1000 (non-keepalive)"
    ~headers:[ "message size"; "Baseline"; "NetKernel" ]
    ~notes:
      [
        "paper: ~70K rps for <=1KB, mild degradation for larger messages; NK == Baseline";
        Printf.sprintf "scale-down: %d requests per point (paper: 10M)" total;
      ]
    rows
