(** All paper reproductions by id, for the bench driver and the CLI. *)

type entry = {
  id : string;
  title : string;
  run : ?quick:bool -> unit -> Report.t;
}

val all : entry list
(** In paper order: use cases (Fig 7–10, Tables 2–3), microbenchmarks
    (Fig 11–12), evaluation (Fig 13–21, Tables 4–7). *)

val find : string -> entry option

val ids : unit -> string list
