type t = {
  id : string;
  title : string;
  headers : string list;
  rows : string list list;
  notes : string list;
}

let make ~id ~title ~headers ?(notes = []) rows = { id; title; headers; rows; notes }

let print fmt t =
  let all = t.headers :: t.rows in
  let ncols = List.fold_left (fun acc r -> Int.max acc (List.length r)) 0 all in
  let widths = Array.make ncols 0 in
  List.iter
    (fun row ->
      List.iteri (fun i cell -> widths.(i) <- Int.max widths.(i) (String.length cell)) row)
    all;
  let total_width =
    Array.fold_left ( + ) 0 widths + (3 * Int.max 0 (ncols - 1))
  in
  let line c = Format.fprintf fmt "%s@." (String.make (Int.max total_width 40) c) in
  Format.fprintf fmt "@.";
  line '=';
  Format.fprintf fmt "[%s] %s@." t.id t.title;
  line '=';
  let print_row row =
    List.iteri
      (fun i cell ->
        if i > 0 then Format.fprintf fmt " | ";
        Format.fprintf fmt "%-*s" widths.(i) cell)
      row;
    Format.fprintf fmt "@."
  in
  print_row t.headers;
  line '-';
  List.iter print_row t.rows;
  if t.notes <> [] then begin
    Format.fprintf fmt "@.";
    List.iter (fun n -> Format.fprintf fmt "  note: %s@." n) t.notes
  end

let to_csv t =
  let escape cell =
    if String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell then
      "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
    else cell
  in
  (t.headers :: t.rows)
  |> List.map (fun row -> String.concat "," (List.map escape row))
  |> String.concat "\n"

let cell_f ?(decimals = 1) v = Printf.sprintf "%.*f" decimals v

let cell_gbps v = Printf.sprintf "%.1f" v

let cell_krps v = Printf.sprintf "%.1fK" (v /. 1e3)

let cell_pct v = Printf.sprintf "%.0f%%" (v *. 100.0)
