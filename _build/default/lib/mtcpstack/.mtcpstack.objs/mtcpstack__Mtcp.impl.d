lib/mtcpstack/mtcp.ml: Addr Array List Nkutil Printf Segment Sim Tcpstack Vswitch
