lib/mtcpstack/mtcp.mli: Addr Nkutil Sim Tcpstack Vswitch
