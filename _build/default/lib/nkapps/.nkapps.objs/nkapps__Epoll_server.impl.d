lib/nkapps/epoll_server.ml: Addr Http List Nkutil Proto Queue Reactor Sim String Tcpstack
