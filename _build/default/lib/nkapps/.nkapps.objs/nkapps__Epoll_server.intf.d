lib/nkapps/epoll_server.mli: Addr Nkutil Proto Sim Tcpstack
