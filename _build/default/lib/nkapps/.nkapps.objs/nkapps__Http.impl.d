lib/nkapps/http.ml: Buffer Int List Printf String Tcpstack
