lib/nkapps/http.mli: Tcpstack
