lib/nkapps/kvstore.ml: Buffer Hashtbl List Printf Queue Reactor String Tcpstack
