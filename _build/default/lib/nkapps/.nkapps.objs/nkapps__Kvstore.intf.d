lib/nkapps/kvstore.mli: Addr Sim Tcpstack
