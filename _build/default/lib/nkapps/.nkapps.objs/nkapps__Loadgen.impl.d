lib/nkapps/loadgen.ml: Addr Float Http Nkutil Proto Reactor Sim String Tcpstack
