lib/nkapps/loadgen.mli: Addr Nkutil Proto Sim Tcpstack
