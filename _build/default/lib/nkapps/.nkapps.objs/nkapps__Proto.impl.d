lib/nkapps/proto.ml: Http Tcpstack
