lib/nkapps/reactor.ml: Hashtbl List Tcpstack
