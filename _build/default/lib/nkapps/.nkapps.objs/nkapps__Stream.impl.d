lib/nkapps/stream.ml: Float Nkutil Reactor Sim Tcpstack
