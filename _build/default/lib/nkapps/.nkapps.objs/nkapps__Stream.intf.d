lib/nkapps/stream.mli: Addr Nkutil Sim Tcpstack
