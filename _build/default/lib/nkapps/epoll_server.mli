(** The paper's multi-threaded epoll server.

    Accepts connections on one listening socket, reads requests, optionally
    performs per-request application work (the AG "application logic" of
    §6.1), and answers with a fixed-size response. Runs over any
    {!Tcpstack.Socket_api.t}, so the same unmodified server binary serves
    Baseline, the kernel-stack NSM, the mTCP NSM and the shared-memory NSM —
    the transparency the paper demonstrates. *)

type config = {
  addr : Addr.t;
  backlog : int;
  proto : Proto.t;
  app_cycles : float;  (** extra application work per request *)
  app_cores : Sim.Cpu.Set.t option;  (** where that work is charged *)
}

val config :
  ?backlog:int -> ?proto:Proto.t -> ?app_cycles:float -> ?app_cores:Sim.Cpu.Set.t ->
  Addr.t -> config
(** Defaults: backlog 1024, 64-byte Fixed non-keepalive protocol, no app
    work. *)

type t

type stats = {
  mutable accepted : int;
  mutable requests : int;
  mutable bytes_in : int;
  mutable bytes_out : int;
  mutable errors : int;
  mutable active : int;
}

val start :
  engine:Sim.Engine.t -> api:Tcpstack.Socket_api.t -> config -> (t, Tcpstack.Types.err) result

val stats : t -> stats

val requests_timeseries : t -> Nkutil.Timeseries.t
(** Completed requests binned at 100 ms (used by Fig 21's series). *)

val stop : t -> unit
