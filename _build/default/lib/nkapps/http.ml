let request ?(meth = "GET") ~path ?(host = "netkernel.test") ?(keepalive = false) () =
  Printf.sprintf "%s %s HTTP/1.1\r\nHost: %s\r\nUser-Agent: nk-ab\r\nAccept: */*\r\n%s\r\n"
    meth path host
    (if keepalive then "Connection: keep-alive\r\n" else "Connection: close\r\n")

let status_text = function
  | 200 -> "OK"
  | 204 -> "No Content"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 500 -> "Internal Server Error"
  | _ -> "Unknown"

let response_header ?(status = 200) ~content_length ?(keepalive = false) () =
  Printf.sprintf
    "HTTP/1.1 %d %s\r\nServer: nk-nginx\r\nContent-Type: text/html\r\nContent-Length: %d\r\n%s\r\n"
    status (status_text status) content_length
    (if keepalive then "Connection: keep-alive\r\n" else "Connection: close\r\n")

module Parser = struct
  type msg = {
    start_line : string;
    headers : (string * string) list;
    content_length : int;
    keepalive : bool;
  }

  type state = Headers | Body of { msg : msg; mutable remaining : int }

  type t = { buf : Buffer.t; mutable state : state }

  let create () = { buf = Buffer.create 256; state = Headers }

  let in_body t = match t.state with Body _ -> true | Headers -> false

  let body_remaining t = match t.state with Body b -> b.remaining | Headers -> 0

  let parse_headers block =
    match String.split_on_char '\n' block with
    | [] -> failwith "http: empty header block"
    | start_line :: rest ->
        let strip s =
          let s = if String.length s > 0 && s.[String.length s - 1] = '\r' then
              String.sub s 0 (String.length s - 1)
            else s
          in
          String.trim s
        in
        let headers =
          List.filter_map
            (fun line ->
              let line = strip line in
              if line = "" then None
              else
                match String.index_opt line ':' with
                | None -> failwith ("http: malformed header line: " ^ line)
                | Some i ->
                    Some
                      ( String.lowercase_ascii (String.trim (String.sub line 0 i)),
                        String.trim (String.sub line (i + 1) (String.length line - i - 1)) ))
            rest
        in
        let find name = List.assoc_opt name headers in
        let content_length =
          match find "content-length" with
          | None -> 0
          | Some v -> ( match int_of_string_opt v with Some n -> n | None -> 0)
        in
        let keepalive =
          match find "connection" with
          | Some v -> String.lowercase_ascii v <> "close"
          | None -> true (* HTTP/1.1 default *)
        in
        { start_line = strip start_line; headers; content_length; keepalive }

  (* Find "\r\n\r\n" in the buffer; return its end offset. *)
  let find_headers_end buf =
    let s = Buffer.contents buf in
    let rec loop i =
      if i + 3 >= String.length s then None
      else if s.[i] = '\r' && s.[i + 1] = '\n' && s.[i + 2] = '\r' && s.[i + 3] = '\n' then
        Some (i + 4)
      else loop (i + 1)
    in
    loop 0

  let feed t payload =
    let completed = ref [] in
    let feed_zeros n =
      let remaining = ref n in
      while !remaining > 0 do
        match t.state with
        | Headers -> failwith "http: synthetic bytes inside a header block"
        | Body b ->
            let take = Int.min !remaining b.remaining in
            b.remaining <- b.remaining - take;
            remaining := !remaining - take;
            if take = 0 then failwith "http: stray body bytes";
            if b.remaining = 0 then begin
              completed := b.msg :: !completed;
              t.state <- Headers
            end
      done
    in
    let rec consume_buffer () =
      match t.state with
      | Body b ->
          let have = Buffer.length t.buf in
          let take = Int.min have b.remaining in
          if take > 0 then begin
            let rest = Buffer.sub t.buf take (have - take) in
            Buffer.clear t.buf;
            Buffer.add_string t.buf rest;
            b.remaining <- b.remaining - take
          end;
          if b.remaining = 0 then begin
            completed := b.msg :: !completed;
            t.state <- Headers;
            if Buffer.length t.buf > 0 then consume_buffer ()
          end
      | Headers -> (
          match find_headers_end t.buf with
          | None -> ()
          | Some hend ->
              let all = Buffer.contents t.buf in
              let head = String.sub all 0 (hend - 4) in
              let rest = String.sub all hend (String.length all - hend) in
              Buffer.clear t.buf;
              Buffer.add_string t.buf rest;
              let msg = parse_headers head in
              if msg.content_length = 0 then begin
                completed := msg :: !completed;
                if Buffer.length t.buf > 0 then consume_buffer ()
              end
              else begin
                t.state <- Body { msg; remaining = msg.content_length };
                consume_buffer ()
              end)
    in
    (match payload with
    | Tcpstack.Types.Data s ->
        (* Real bytes inside a body still only count; route them through the
           body accounting first. *)
        let i = ref 0 in
        let n = String.length s in
        while !i < n do
          match t.state with
          | Body b when Buffer.length t.buf = 0 ->
              let take = Int.min (n - !i) b.remaining in
              b.remaining <- b.remaining - take;
              i := !i + take;
              if b.remaining = 0 then begin
                completed := b.msg :: !completed;
                t.state <- Headers
              end;
              if take = 0 then begin
                (* Body complete but stuck: treat the rest as new headers. *)
                Buffer.add_substring t.buf s !i (n - !i);
                i := n;
                consume_buffer ()
              end
          | Headers | Body _ ->
              Buffer.add_substring t.buf s !i (n - !i);
              i := n;
              consume_buffer ()
        done
    | Tcpstack.Types.Zeros n -> feed_zeros n);
    List.rev !completed
end

let header (msg : Parser.msg) name =
  List.assoc_opt (String.lowercase_ascii name) msg.Parser.headers
