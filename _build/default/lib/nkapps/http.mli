(** Minimal HTTP/1.1 message codec.

    Enough protocol to run an nginx-like server under an ab-like load
    generator (paper §6.3, Table 3): request/response serialization with
    real header bytes, and an incremental parser that counts body bytes
    without materializing synthetic payloads. *)

val request :
  ?meth:string -> path:string -> ?host:string -> ?keepalive:bool -> unit -> string
(** A full request string (no body). [keepalive] defaults to false
    (ab-style non-keepalive benchmarking). *)

val response_header :
  ?status:int -> content_length:int -> ?keepalive:bool -> unit -> string
(** The response head; the body ([content_length] bytes) is sent
    separately, typically as synthetic payload. *)

(** Incremental message parser. *)
module Parser : sig
  type msg = {
    start_line : string;
    headers : (string * string) list;
    content_length : int;
    keepalive : bool;
  }

  type t

  val create : unit -> t

  val feed : t -> Tcpstack.Types.payload -> msg list
  (** Consume a payload chunk; returns messages completed by it (header
      block parsed and body fully accounted). [Zeros] chunks may only occur
      inside bodies; header bytes must be real. Raises [Failure] on a
      malformed message. *)

  val in_body : t -> bool

  val body_remaining : t -> int
end

val header : Parser.msg -> string -> string option
(** Case-insensitive header lookup. *)
