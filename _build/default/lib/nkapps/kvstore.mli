(** A small redis-like key-value server and client.

    Text protocol, one line per command, [\r\n]-terminated:
    {v
      SET <key> <value>   ->  +OK
      GET <key>           ->  $<value>  |  $-1 (miss)
      DEL <key>           ->  :1 | :0
    v}

    The paper lists redis among the applications that run unmodified over
    NetKernel (§1, abstract); this exercises the same claim with real
    parsing end-to-end over any {!Tcpstack.Socket_api.t}. *)

type t

type stats = { mutable commands : int; mutable hits : int; mutable misses : int }

val start :
  engine:Sim.Engine.t -> api:Tcpstack.Socket_api.t -> addr:Addr.t ->
  (t, Tcpstack.Types.err) result

val stats : t -> stats

(** Client helpers (one connection, pipelined callbacks). *)
module Client : sig
  type conn

  val connect :
    engine:Sim.Engine.t -> api:Tcpstack.Socket_api.t -> Addr.t ->
    k:((conn, Tcpstack.Types.err) result -> unit) -> unit

  val set : conn -> key:string -> value:string -> k:((unit, string) result -> unit) -> unit

  val get : conn -> key:string -> k:((string option, string) result -> unit) -> unit

  val del : conn -> key:string -> k:((bool, string) result -> unit) -> unit

  val close : conn -> unit
end
