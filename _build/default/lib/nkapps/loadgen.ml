module Types = Tcpstack.Types
module Socket_api = Tcpstack.Socket_api
module Engine = Sim.Engine

type mode =
  | Closed of { concurrency : int; total : int option; duration : float option }
  | Open of { rate_at : float -> float; duration : float }

type config = { server : Addr.t; proto : Proto.t; mode : mode; warmup : float }

type results = {
  completed : int;
  errors : int;
  started : float;
  finished : float;
  rps : float;
  latency : Nkutil.Histogram.t;
  response_bytes : int;
  completions : Nkutil.Timeseries.t;
}

type t = {
  engine : Engine.t;
  api : Socket_api.t;
  cfg : config;
  reactor : Reactor.t;
  latency : Nkutil.Histogram.t;
  completions : Nkutil.Timeseries.t;
  on_done : (unit -> unit) option;
  mutable issued : int;
  mutable completed : int;
  mutable errors : int;
  mutable response_bytes : int;
  mutable in_flight : int;
  mutable started : float;
  mutable finished : float;
  mutable done_fired : bool;
  mutable deadline : float;
}

let in_flight t = t.in_flight

let results t =
  let span = Float.max 1e-9 (t.finished -. t.started) in
  {
    completed = t.completed;
    errors = t.errors;
    started = t.started;
    finished = t.finished;
    rps = float_of_int t.completed /. span;
    latency = t.latency;
    response_bytes = t.response_bytes;
    completions = t.completions;
  }

let budget_left t =
  (match t.cfg.mode with
  | Closed { total = Some total; _ } -> t.issued < total
  | Closed { total = None; _ } | Open _ -> true)
  && Engine.now t.engine < t.deadline

let maybe_done t =
  match t.cfg.mode with
  | Closed { total = Some total; _ } ->
      if t.completed + t.errors >= total && not t.done_fired then begin
        t.done_fired <- true;
        t.finished <- Engine.now t.engine;
        match t.on_done with None -> () | Some f -> f ()
      end
  | Closed _ | Open _ -> ()

let record_completion t ~t0 ~bytes =
  let now = Engine.now t.engine in
  t.completed <- t.completed + 1;
  t.response_bytes <- t.response_bytes + bytes;
  t.finished <- now;
  Nkutil.Timeseries.add t.completions ~time:now 1.0;
  if t0 >= t.cfg.warmup then Nkutil.Histogram.record t.latency (now -. t0)

let record_error t =
  t.errors <- t.errors + 1;
  t.finished <- Engine.now t.engine

(* Execute one request on an established connection; [k_done ok] fires when
   the response is fully received (or the connection failed). *)
let run_request t fd ~k_done =
  let parser =
    match t.cfg.proto with
    | Proto.Http _ -> Some (Http.Parser.create ())
    | Proto.Fixed _ -> None
  in
  let remaining =
    ref (match t.cfg.proto with Proto.Fixed f -> f.response | Proto.Http _ -> max_int)
  in
  let got = ref 0 in
  let finished = ref false in
  let finish ok =
    if not !finished then begin
      finished := true;
      Reactor.unwatch t.reactor fd;
      k_done ok
    end
  in
  let rec read_loop () =
    if not !finished then
      t.api.Socket_api.recv fd ~max:65536 ~mode:`Auto ~k:(fun r ->
          match r with
          | Ok payload when Types.payload_len payload = 0 -> finish false (* early EOF *)
          | Ok payload ->
              let n = Types.payload_len payload in
              got := !got + n;
              (match (t.cfg.proto, parser) with
              | Proto.Fixed _, _ ->
                  remaining := !remaining - n;
                  if !remaining <= 0 then finish true else read_loop ()
              | Proto.Http _, Some p -> (
                  match Http.Parser.feed p payload with
                  | [] -> read_loop ()
                  | _ :: _ -> finish true
                  | exception Failure _ -> finish false)
              | Proto.Http _, None -> finish false)
          | Error Types.Eagain -> ()
          | Error _ -> finish false)
  in
  Reactor.watch t.reactor fd ~readable:true ~writable:false (fun ev ->
      if ev.Types.readable then read_loop ()
      else if ev.Types.hup then finish false);
  (* Ship the request (small; retry on partial acceptance). *)
  let rec send_payload payload =
    t.api.Socket_api.send fd payload ~k:(fun r ->
        match r with
        | Ok n ->
            let len = Types.payload_len payload in
            if n < len then
              send_payload
                (match payload with
                | Types.Zeros z -> Types.Zeros (z - n)
                | Types.Data s -> Types.Data (String.sub s n (String.length s - n)))
        | Error Types.Eagain ->
            ignore (Engine.schedule t.engine ~delay:10e-6 (fun () -> send_payload payload))
        | Error _ -> finish false)
  in
  send_payload (Proto.request_payload t.cfg.proto);
  read_loop ()

let one_shot t ~k =
  let t0 = Engine.now t.engine in
  match t.api.Socket_api.socket () with
  | Error _ ->
      record_error t;
      k ()
  | Ok fd ->
      t.api.Socket_api.connect fd t.cfg.server ~k:(fun r ->
          match r with
          | Error _ ->
              record_error t;
              t.api.Socket_api.close fd;
              maybe_done t;
              k ()
          | Ok () ->
              run_request t fd ~k_done:(fun ok ->
                  let bytes =
                    match t.cfg.proto with
                    | Proto.Fixed f -> f.response
                    | Proto.Http h -> h.response
                  in
                  if ok then record_completion t ~t0 ~bytes else record_error t;
                  t.api.Socket_api.close fd;
                  maybe_done t;
                  k ()))

let rec closed_worker t =
  if budget_left t then begin
    t.issued <- t.issued + 1;
    t.in_flight <- t.in_flight + 1;
    one_shot t ~k:(fun () ->
        t.in_flight <- t.in_flight - 1;
        closed_worker t)
  end

let rec open_arrivals t =
  let now = Engine.now t.engine in
  if now < t.deadline then begin
    let rate = Float.max 1e-9 ((match t.cfg.mode with
      | Open { rate_at; _ } -> rate_at now
      | Closed _ -> 0.0))
    in
    let delay = 1.0 /. rate in
    ignore
      (Engine.schedule t.engine ~delay (fun () ->
           if Engine.now t.engine < t.deadline then begin
             t.issued <- t.issued + 1;
             t.in_flight <- t.in_flight + 1;
             one_shot t ~k:(fun () -> t.in_flight <- t.in_flight - 1)
           end;
           open_arrivals t))
  end

let start ~engine ~api ?on_done cfg =
  let deadline =
    match cfg.mode with
    | Closed { duration = Some d; _ } -> Engine.now engine +. d
    | Closed { duration = None; _ } -> infinity
    | Open { duration; _ } -> Engine.now engine +. duration
  in
  let t =
    {
      engine;
      api;
      cfg;
      reactor = Reactor.create api;
      latency = Nkutil.Histogram.create ();
      completions = Nkutil.Timeseries.create ~bin_width:0.1 ();
      on_done;
      issued = 0;
      completed = 0;
      errors = 0;
      response_bytes = 0;
      in_flight = 0;
      started = Engine.now engine;
      finished = Engine.now engine;
      done_fired = false;
      deadline;
    }
  in
  Reactor.run t.reactor;
  (match cfg.mode with
  | Closed { concurrency; _ } ->
      (* Ramp workers up instead of firing all SYNs in the same instant:
         real clients (and ab) spread connection establishment over the
         first RTTs. *)
      for i = 0 to concurrency - 1 do
        ignore
          (Engine.schedule engine ~delay:(float_of_int i *. 50e-6) (fun () ->
               closed_worker t))
      done
  | Open _ -> open_arrivals t);
  t
