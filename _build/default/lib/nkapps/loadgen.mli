(** ab-like load generator.

    Closed-loop mode keeps a fixed number of in-flight requests
    (ab's concurrency) until a request budget or deadline runs out — used
    for the RPS and latency experiments (§7.3–§7.7, Table 3, Table 5).
    Open-loop mode issues requests following a time-varying arrival rate —
    used to replay the application-gateway traces (§6.1).

    Each request is connect → request → full response → close (or reuse on
    keep-alive protocols). Latencies are recorded into an HDR histogram. *)

type mode =
  | Closed of { concurrency : int; total : int option; duration : float option }
  | Open of { rate_at : float -> float; duration : float }

type config = {
  server : Addr.t;
  proto : Proto.t;
  mode : mode;
  warmup : float;  (** ignore samples before this time (seconds) *)
}

type t

type results = {
  completed : int;
  errors : int;
  started : float;
  finished : float;
  rps : float;  (** completed / (finished - started) *)
  latency : Nkutil.Histogram.t;
  response_bytes : int;
  completions : Nkutil.Timeseries.t;  (** completed requests per 100 ms *)
}

val start :
  engine:Sim.Engine.t ->
  api:Tcpstack.Socket_api.t ->
  ?on_done:(unit -> unit) ->
  config ->
  t
(** [on_done] fires when a closed-loop run exhausts its request budget. *)

val results : t -> results

val in_flight : t -> int
