(* Wire protocols shared by the server and the load generator. *)

type t =
  | Fixed of { request : int; response : int; keepalive : bool }
      (** length-framed: the client sends exactly [request] bytes, the
          server answers with exactly [response] bytes (the paper's epoll
          servers, §7.3–§7.7) *)
  | Http of { path : string; response : int; keepalive : bool }
      (** HTTP/1.1 GET with a [response]-byte body (nginx + ab, §6.3) *)

let keepalive = function Fixed f -> f.keepalive | Http h -> h.keepalive

let request_payload = function
  | Fixed f -> Tcpstack.Types.Zeros f.request
  | Http h ->
      Tcpstack.Types.Data (Http.request ~path:h.path ~keepalive:h.keepalive ())
