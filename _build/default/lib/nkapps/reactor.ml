(* Central event loop over one Socket_api epoll instance: applications
   register per-socket callbacks; the reactor dispatches level-triggered
   events to them. Interest masks keep always-writable sockets from
   spinning the loop. *)

module Types = Tcpstack.Types
module Socket_api = Tcpstack.Socket_api

type t = {
  api : Socket_api.t;
  ep : Socket_api.epoll;
  handlers : (Socket_api.sock, Types.events -> unit) Hashtbl.t;
  mutable running : bool;
  mutable stopped : bool;
}

let create (api : Socket_api.t) =
  { api; ep = api.Socket_api.epoll_create (); handlers = Hashtbl.create 64; running = false;
    stopped = false }

let watch t fd ~readable ~writable handler =
  Hashtbl.replace t.handlers fd handler;
  t.api.Socket_api.epoll_add t.ep fd ~mask:{ Types.readable; writable; hup = true }

let rewatch t fd ~readable ~writable =
  t.api.Socket_api.epoll_add t.ep fd ~mask:{ Types.readable; writable; hup = true }

let unwatch t fd =
  Hashtbl.remove t.handlers fd;
  t.api.Socket_api.epoll_del t.ep fd

let rec loop t =
  if not t.stopped then
    t.api.Socket_api.epoll_wait t.ep ~timeout:(-1.0) ~k:(fun events ->
        List.iter
          (fun (fd, ev) ->
            match Hashtbl.find_opt t.handlers fd with
            | None -> ()
            | Some h -> h ev)
          events;
        loop t)

let run t =
  if not t.running then begin
    t.running <- true;
    loop t
  end

let stop t = t.stopped <- true
