module Types = Tcpstack.Types
module Socket_api = Tcpstack.Socket_api
module Engine = Sim.Engine

(* ---- sink ------------------------------------------------------------- *)

type sink_stats = {
  mutable conns : int;
  mutable bytes : int;
  mutable first_byte : float;
  mutable last_byte : float;
}

type sink = {
  s_engine : Engine.t;
  s_api : Socket_api.t;
  s_reactor : Reactor.t;
  s_stats : sink_stats;
  s_ts : Nkutil.Timeseries.t;
}

let sink_stats s = s.s_stats

let sink_timeseries s = s.s_ts

let sink_throughput_gbps s =
  let span = s.s_stats.last_byte -. s.s_stats.first_byte in
  Nkutil.Units.gbps_of_bytes ~bytes:s.s_stats.bytes ~seconds:span

let rec sink_drain s fd =
  s.s_api.Socket_api.recv fd ~max:(1 lsl 20) ~mode:`Discard ~k:(fun r ->
      match r with
      | Ok payload when Types.payload_len payload = 0 ->
          Reactor.unwatch s.s_reactor fd;
          s.s_api.Socket_api.close fd
      | Ok payload ->
          let n = Types.payload_len payload in
          let now = Engine.now s.s_engine in
          if s.s_stats.bytes = 0 then s.s_stats.first_byte <- now;
          s.s_stats.bytes <- s.s_stats.bytes + n;
          s.s_stats.last_byte <- now;
          Nkutil.Timeseries.add s.s_ts ~time:now (float_of_int n);
          sink_drain s fd
      | Error Types.Eagain -> ()
      | Error _ ->
          Reactor.unwatch s.s_reactor fd;
          s.s_api.Socket_api.close fd)

let sink ~engine ~api ~addr =
  match api.Socket_api.socket () with
  | Error e -> Error e
  | Ok ls -> (
      match api.Socket_api.bind ls addr with
      | Error e -> Error e
      | Ok () -> (
          match api.Socket_api.listen ls ~backlog:1024 with
          | Error e -> Error e
          | Ok () ->
              let s =
                {
                  s_engine = engine;
                  s_api = api;
                  s_reactor = Reactor.create api;
                  s_stats = { conns = 0; bytes = 0; first_byte = 0.0; last_byte = 0.0 };
                  s_ts = Nkutil.Timeseries.create ~bin_width:0.1 ();
                }
              in
              let rec accept_loop () =
                api.Socket_api.accept ls ~k:(fun r ->
                    match r with
                    | Error _ -> ()
                    | Ok (fd, _) ->
                        s.s_stats.conns <- s.s_stats.conns + 1;
                        Reactor.watch s.s_reactor fd ~readable:true ~writable:false
                          (fun ev ->
                            if ev.Types.readable then sink_drain s fd
                            else if ev.Types.hup then begin
                              Reactor.unwatch s.s_reactor fd;
                              s.s_api.Socket_api.close fd
                            end);
                        sink_drain s fd;
                        accept_loop ())
              in
              accept_loop ();
              Reactor.run s.s_reactor;
              Ok s))

(* ---- senders ------------------------------------------------------------ *)

type sender_stats = { mutable sent : int; mutable active_streams : int; mutable failed : int }

type sender = {
  c_engine : Engine.t;
  c_api : Socket_api.t;
  c_reactor : Reactor.t;
  c_stats : sender_stats;
  c_stop : float;
  c_pace : Nkutil.Token_bucket.t option;
}

let sender_stats c = c.c_stats

let rec pump c fd ~msg_size =
  if Engine.now c.c_engine >= c.c_stop then begin
    Reactor.unwatch c.c_reactor fd;
    c.c_api.Socket_api.close fd;
    c.c_stats.active_streams <- c.c_stats.active_streams - 1
  end
  else begin
    match c.c_pace with
    | Some bucket
      when not
             (Nkutil.Token_bucket.try_take bucket ~now:(Engine.now c.c_engine)
                (float_of_int msg_size)) ->
        let wait =
          Nkutil.Token_bucket.time_until bucket ~now:(Engine.now c.c_engine)
            (float_of_int msg_size)
        in
        ignore
          (Engine.schedule c.c_engine ~delay:(Float.max wait 1e-6) (fun () ->
               pump c fd ~msg_size))
    | Some _ | None -> pump_now c fd ~msg_size
  end

and pump_now c fd ~msg_size =
    c.c_api.Socket_api.send fd (Types.Zeros msg_size) ~k:(fun r ->
        match r with
        | Ok n ->
            c.c_stats.sent <- c.c_stats.sent + n;
            pump c fd ~msg_size
        | Error Types.Eagain ->
            Reactor.rewatch c.c_reactor fd ~readable:false ~writable:true
        | Error _ ->
            Reactor.unwatch c.c_reactor fd;
            c.c_stats.failed <- c.c_stats.failed + 1;
            c.c_stats.active_streams <- c.c_stats.active_streams - 1)

let open_stream c ~dst ~msg_size =
  match c.c_api.Socket_api.socket () with
  | Error _ -> c.c_stats.failed <- c.c_stats.failed + 1
  | Ok fd ->
      c.c_api.Socket_api.connect fd dst ~k:(fun r ->
          match r with
          | Error _ -> c.c_stats.failed <- c.c_stats.failed + 1
          | Ok () ->
              c.c_stats.active_streams <- c.c_stats.active_streams + 1;
              Reactor.watch c.c_reactor fd ~readable:false ~writable:false (fun ev ->
                  if ev.Types.writable then begin
                    Reactor.rewatch c.c_reactor fd ~readable:false ~writable:false;
                    pump c fd ~msg_size
                  end
                  else if ev.Types.hup then begin
                    Reactor.unwatch c.c_reactor fd;
                    c.c_stats.failed <- c.c_stats.failed + 1
                  end);
              pump c fd ~msg_size)

let senders ~engine ~api ~dst ~streams ~msg_size ?start ?stop ?pace_gbps () =
  let c =
    {
      c_engine = engine;
      c_api = api;
      c_reactor = Reactor.create api;
      c_stats = { sent = 0; active_streams = 0; failed = 0 };
      c_stop = (match stop with Some s -> s | None -> infinity);
      c_pace =
        (match pace_gbps with
        | None -> None
        | Some g ->
            let rate = g *. 1e9 /. 8.0 in
            Some
              (Nkutil.Token_bucket.create ~rate ~burst:(rate /. 500.0)
                 ~now:(Engine.now engine)));
    }
  in
  Reactor.run c.c_reactor;
  let launch () =
    for _ = 1 to streams do
      open_stream c ~dst ~msg_size
    done
  in
  (match start with
  | None -> launch ()
  | Some at -> ignore (Engine.schedule_at engine ~at launch));
  c
