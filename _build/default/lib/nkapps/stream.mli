(** Bulk TCP streams (iperf-style) for the throughput experiments
    (Figs 13–16, 18–19, Table 4, Fig 10, Fig 21).

    A sink accepts connections and discards payload, timestamping progress;
    senders pump fixed-size messages through one or more connections, each
    driven by writable events. *)

type sink

type sink_stats = {
  mutable conns : int;
  mutable bytes : int;
  mutable first_byte : float;
  mutable last_byte : float;
}

val sink :
  engine:Sim.Engine.t -> api:Tcpstack.Socket_api.t -> addr:Addr.t ->
  (sink, Tcpstack.Types.err) result

val sink_stats : sink -> sink_stats

val sink_timeseries : sink -> Nkutil.Timeseries.t
(** Received bytes per 100 ms bin. *)

val sink_throughput_gbps : sink -> float
(** Goodput between first and last byte. *)

type sender

type sender_stats = { mutable sent : int; mutable active_streams : int; mutable failed : int }

val senders :
  engine:Sim.Engine.t ->
  api:Tcpstack.Socket_api.t ->
  dst:Addr.t ->
  streams:int ->
  msg_size:int ->
  ?start:float ->
  ?stop:float ->
  ?pace_gbps:float ->
  unit ->
  sender
(** Open [streams] connections at [start] (default now) and pump [msg_size]
    messages until [stop] (default: forever), then close. [pace_gbps]
    token-buckets the aggregate offered load (used to hold a fixed
    throughput level, e.g. the paper's Table 6). *)

val sender_stats : sender -> sender_stats
