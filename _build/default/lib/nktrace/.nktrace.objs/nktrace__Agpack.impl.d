lib/nktrace/agpack.ml: Array Float List Nkutil Traffic
