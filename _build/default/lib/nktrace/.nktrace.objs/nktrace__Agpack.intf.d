lib/nktrace/agpack.mli: Traffic
