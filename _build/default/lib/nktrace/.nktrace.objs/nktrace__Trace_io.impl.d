lib/nktrace/trace_io.ml: Array Buffer Float Fun Hashtbl Int List Nkutil Printf Result String Traffic
