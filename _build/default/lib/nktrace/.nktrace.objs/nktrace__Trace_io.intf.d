lib/nktrace/trace_io.mli: Traffic
