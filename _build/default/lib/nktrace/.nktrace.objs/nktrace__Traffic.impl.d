lib/nktrace/traffic.ml: Array Float List Nkutil
