lib/nktrace/traffic.mli: Nkutil
