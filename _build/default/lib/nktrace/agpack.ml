type result = {
  baseline_ags : int;
  netkernel_ags : int;
  nsm_worst_utilization : float;
  nsm_p97_utilization : float;
  core_saving_fraction : float;
}

let pack ~traces ~machine_cores ~baseline_cores_per_ag ~nsm_cores ~ce_cores
    ~nsm_capacity_rps_per_core =
  if traces = [] then invalid_arg "Agpack.pack: no traces";
  let baseline_ags = machine_cores / baseline_cores_per_ag in
  let netkernel_ags = machine_cores - nsm_cores - ce_cores in
  let pool =
    (* Cycle the fleet if it is smaller than the packing target. *)
    let arr = Array.of_list traces in
    List.init netkernel_ags (fun i -> arr.(i mod Array.length arr))
  in
  let agg = Traffic.aggregate pool in
  let capacity = float_of_int nsm_cores *. nsm_capacity_rps_per_core in
  let utils = Array.map (fun r -> r /. capacity) agg in
  let worst = Array.fold_left Float.max 0.0 utils in
  let p97 = Nkutil.Stats.percentile utils 97.0 in
  {
    baseline_ags;
    netkernel_ags;
    nsm_worst_utilization = worst;
    nsm_p97_utilization = p97;
    core_saving_fraction =
      1.0 -. (float_of_int baseline_ags /. float_of_int netkernel_ags);
  }
