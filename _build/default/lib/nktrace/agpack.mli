(** Consolidation arithmetic for Table 2.

    Given a fleet of AG traces and machine/NSM capacities, compute how many
    AGs fit on one machine under the Baseline provisioning (dedicated cores
    per AG, sized for peak) versus NetKernel (one core of application logic
    per AG plus a shared NSM sized for the aggregate), and the NSM's
    worst-case utilization — the paper's "well under 60% for ~97% of the
    AGs" check. *)

type result = {
  baseline_ags : int;  (** AGs per machine today *)
  netkernel_ags : int;  (** AGs per machine with a shared NSM *)
  nsm_worst_utilization : float;  (** peak aggregate demand / NSM capacity *)
  nsm_p97_utilization : float;
      (** utilization covering 97% of per-minute aggregate demand *)
  core_saving_fraction : float;
      (** cores saved for the same AG population, = 1 - baseline/netkernel *)
}

val pack :
  traces:Traffic.t list ->
  machine_cores:int ->
  baseline_cores_per_ag:int ->
  nsm_cores:int ->
  ce_cores:int ->
  nsm_capacity_rps_per_core:float ->
  result
(** Baseline packs [machine_cores / baseline_cores_per_ag] AGs. NetKernel
    reserves [nsm_cores + ce_cores] and gives each AG one core; the NSM
    utilization is evaluated by replaying the aggregate of the first
    [netkernel_ags] traces against [nsm_cores * nsm_capacity_rps_per_core]. *)
