(** CSV import/export for AG traces.

    Lets operators feed real (anonymized) per-minute gateway rates into the
    multiplexing and packing experiments in place of the synthetic
    generator, and lets the generator's output be inspected and plotted.

    Format: a header line [ag_id,minute,rps] followed by one row per AG per
    minute. Rows may arrive in any order; minutes missing from the input
    read as rate 0. *)

val to_csv : Traffic.t list -> string

val of_csv : string -> (Traffic.t list, string) result
(** Parses the format written by [to_csv]; [Error] describes the first
    malformed line. *)

val save : path:string -> Traffic.t list -> unit

val load : path:string -> (Traffic.t list, string) result
