(** Synthetic application-gateway traffic traces.

    Stand-in for the paper's September-2018 production trace of tens of
    thousands of application gateways (§6.1, Fig 7): per-minute request
    rates with the properties the paper reports — very low average
    utilization, strong burstiness, rare large peaks. Each AG's series is a
    diurnal baseline plus lognormal noise plus Poisson-arriving spikes,
    deterministic per seed. *)

type t = {
  ag_id : int;
  rates : float array;  (** requests/second, one entry per minute *)
  peak : float;
  mean : float;
}

type params = {
  minutes : int;  (** series length *)
  base_rps : float;  (** median demand level *)
  diurnal_amplitude : float;  (** 0..1 fraction of base *)
  noise_sigma : float;  (** lognormal sigma of multiplicative noise *)
  spike_probability : float;  (** per-minute probability of a burst *)
  spike_magnitude : float;  (** burst height as multiple of base *)
}

val default_params : params
(** One-hour series (60 minutes) matching Fig 7's burstiness: mean
    utilization a few percent of peak. *)

val generate : rng:Nkutil.Rng.t -> ?params:params -> ag_id:int -> unit -> t

val generate_fleet : seed:int -> ?params:params -> n:int -> unit -> t list
(** [n] AGs with independent sub-streams of one seed. *)

val rate_at : t -> float -> float
(** [rate_at t seconds] is the request rate at a point in (trace) time,
    with linear interpolation between minute bins. *)

val peak_to_mean : t -> float

val top_k_by_utilization : t list -> int -> t list
(** The paper picks "the three most utilized AGs"; utilization here is the
    mean rate. *)

val aggregate : t list -> float array
(** Sum of the per-minute rates across AGs. *)
