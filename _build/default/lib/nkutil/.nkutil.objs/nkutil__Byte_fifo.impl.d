lib/nkutil/byte_fifo.ml: Bytes Int Queue String
