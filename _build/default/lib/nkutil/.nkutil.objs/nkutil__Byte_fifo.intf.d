lib/nkutil/byte_fifo.mli:
