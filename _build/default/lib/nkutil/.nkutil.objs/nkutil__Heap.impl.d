lib/nkutil/heap.ml: Array Obj
