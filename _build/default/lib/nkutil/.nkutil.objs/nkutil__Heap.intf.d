lib/nkutil/heap.mli:
