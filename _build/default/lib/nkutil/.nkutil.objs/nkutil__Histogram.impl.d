lib/nkutil/histogram.ml: Array Float Int
