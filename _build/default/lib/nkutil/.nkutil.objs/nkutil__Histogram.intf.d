lib/nkutil/histogram.mli:
