lib/nkutil/rng.ml: Array Float Int64
