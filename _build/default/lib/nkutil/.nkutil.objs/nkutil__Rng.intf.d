lib/nkutil/rng.mli:
