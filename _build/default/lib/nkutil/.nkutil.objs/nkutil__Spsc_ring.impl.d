lib/nkutil/spsc_ring.ml: Array Atomic List
