lib/nkutil/spsc_ring.mli:
