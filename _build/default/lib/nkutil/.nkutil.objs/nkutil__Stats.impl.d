lib/nkutil/stats.ml: Array Float Int
