lib/nkutil/stats.mli:
