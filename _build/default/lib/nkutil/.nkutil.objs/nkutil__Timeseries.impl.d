lib/nkutil/timeseries.ml: Array Int
