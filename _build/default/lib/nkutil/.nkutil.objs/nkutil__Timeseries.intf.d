lib/nkutil/timeseries.mli:
