lib/nkutil/token_bucket.ml: Float
