lib/nkutil/token_bucket.mli:
