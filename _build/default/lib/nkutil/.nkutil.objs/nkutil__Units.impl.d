lib/nkutil/units.ml: Format
