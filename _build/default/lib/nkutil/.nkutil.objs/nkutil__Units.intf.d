lib/nkutil/units.mli: Format
