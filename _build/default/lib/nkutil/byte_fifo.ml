type chunk =
  | Data of { buf : bytes; mutable pos : int; mutable len : int }
  | Zeros of { mutable n : int }

type t = {
  q : chunk Queue.t;
  mutable total : int;
  (* Most recently queued chunk if it is a zero-run, for O(1) coalescing of
     consecutive synthetic writes (one logical run per burst instead of one
     chunk per segment). Only extended while it still holds bytes. *)
  mutable tail_zeros : chunk option;
}

let create () = { q = Queue.create (); total = 0; tail_zeros = None }

let length t = t.total

let is_empty t = t.total = 0

let write_bytes t b ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length b then
    invalid_arg "Byte_fifo.write_bytes: slice out of bounds";
  if len > 0 then begin
    Queue.add (Data { buf = Bytes.sub b pos len; pos = 0; len }) t.q;
    t.tail_zeros <- None;
    t.total <- t.total + len
  end

let write t s = write_bytes t (Bytes.unsafe_of_string s) ~pos:0 ~len:(String.length s)

let write_zeros t n =
  if n < 0 then invalid_arg "Byte_fifo.write_zeros: negative count";
  if n > 0 then begin
    (match t.tail_zeros with
    | Some (Zeros z) when z.n > 0 -> z.n <- z.n + n
    | Some _ | None ->
        let chunk = Zeros { n } in
        Queue.add chunk t.q;
        t.tail_zeros <- Some chunk);
    t.total <- t.total + n
  end

let next_run t =
  match Queue.peek_opt t.q with
  | None -> None
  | Some (Data d) -> Some (`Data d.len)
  | Some (Zeros z) -> Some (`Zeros z.n)

let read_into t out ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length out then
    invalid_arg "Byte_fifo.read_into: slice out of bounds";
  let want = Int.min len t.total in
  let rec loop copied =
    if copied >= want then copied
    else
      match Queue.peek_opt t.q with
      | None -> copied
      | Some (Data d) ->
          let take = Int.min (want - copied) d.len in
          Bytes.blit d.buf d.pos out (pos + copied) take;
          d.pos <- d.pos + take;
          d.len <- d.len - take;
          if d.len = 0 then ignore (Queue.pop t.q);
          loop (copied + take)
      | Some (Zeros z) ->
          let take = Int.min (want - copied) z.n in
          Bytes.fill out (pos + copied) take '\000';
          z.n <- z.n - take;
          if z.n = 0 then ignore (Queue.pop t.q);
          loop (copied + take)
  in
  let n = loop 0 in
  t.total <- t.total - n;
  n

let read t n =
  let n = Int.max 0 (Int.min n t.total) in
  let out = Bytes.create n in
  let got = read_into t out ~pos:0 ~len:n in
  assert (got = n);
  Bytes.unsafe_to_string out

let discard t n =
  let want = Int.min (Int.max 0 n) t.total in
  let rec loop dropped =
    if dropped >= want then dropped
    else
      match Queue.peek_opt t.q with
      | None -> dropped
      | Some (Data d) ->
          let take = Int.min (want - dropped) d.len in
          d.pos <- d.pos + take;
          d.len <- d.len - take;
          if d.len = 0 then ignore (Queue.pop t.q);
          loop (dropped + take)
      | Some (Zeros z) ->
          let take = Int.min (want - dropped) z.n in
          z.n <- z.n - take;
          if z.n = 0 then ignore (Queue.pop t.q);
          loop (dropped + take)
  in
  let n = loop 0 in
  t.total <- t.total - n;
  n

let transfer ~src ~dst n =
  let want = Int.min (Int.max 0 n) src.total in
  let rec loop moved =
    if moved >= want then moved
    else
      match Queue.peek_opt src.q with
      | None -> moved
      | Some (Data d) ->
          let take = Int.min (want - moved) d.len in
          write_bytes dst d.buf ~pos:d.pos ~len:take;
          d.pos <- d.pos + take;
          d.len <- d.len - take;
          if d.len = 0 then ignore (Queue.pop src.q);
          loop (moved + take)
      | Some (Zeros z) ->
          let take = Int.min (want - moved) z.n in
          write_zeros dst take;
          z.n <- z.n - take;
          if z.n = 0 then ignore (Queue.pop src.q);
          loop (moved + take)
  in
  let n = loop 0 in
  src.total <- src.total - n;
  n
