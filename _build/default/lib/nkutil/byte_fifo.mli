(** Byte-stream FIFO with cheap synthetic filler.

    TCP socket buffers need an ordered byte queue. Performance experiments
    push gigabytes of payload whose content is irrelevant, so the FIFO also
    supports zero-runs that occupy O(1) memory; correctness tests use real
    bytes and verify exact delivery. *)

type t

val create : unit -> t

val length : t -> int
(** Number of queued bytes. *)

val is_empty : t -> bool

val write : t -> string -> unit
(** Enqueue the bytes of a string. *)

val write_bytes : t -> bytes -> pos:int -> len:int -> unit
(** Enqueue a slice (copied). *)

val write_zeros : t -> int -> unit
(** Enqueue [n] zero bytes in O(1) space. *)

val read : t -> int -> string
(** [read t n] dequeues [min n (length t)] bytes as a string. *)

val next_run : t -> [ `Data of int | `Zeros of int ] option
(** Kind and length of the leading homogeneous run, letting callers
    dequeue synthetic filler without materializing it. *)

val read_into : t -> bytes -> pos:int -> len:int -> int
(** Dequeue up to [len] bytes into a buffer; returns the count. *)

val discard : t -> int -> int
(** [discard t n] drops up to [n] bytes; returns how many were dropped.
    Used when payload content is synthetic and the reader only needs
    lengths. *)

val transfer : src:t -> dst:t -> int -> int
(** [transfer ~src ~dst n] moves up to [n] bytes preserving content and
    zero-run compactness; returns the count moved. *)
