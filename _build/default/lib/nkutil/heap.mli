(** Binary min-heap with a user-supplied total order.

    Used as the priority queue of the discrete-event engine: millions of
    [add]/[pop_min] operations per simulated second, so the implementation is
    an array-backed sift-up/sift-down heap with amortized O(log n) per
    operation and no allocation beyond array growth. *)

type 'a t

val create : ?capacity:int -> leq:('a -> 'a -> bool) -> unit -> 'a t
(** [create ~leq ()] is an empty heap ordered by [leq] (less-or-equal).
    [capacity] pre-sizes the backing array (default 256). *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val add : 'a t -> 'a -> unit

val min_elt : 'a t -> 'a option
(** [min_elt t] is the smallest element without removing it. *)

val pop_min : 'a t -> 'a option
(** [pop_min t] removes and returns the smallest element. *)

val clear : 'a t -> unit

val to_list : 'a t -> 'a list
(** [to_list t] is all elements in unspecified order (for debugging/tests). *)
