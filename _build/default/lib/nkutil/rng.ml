type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* splitmix64 step, used only for seeding so that nearby seeds give
   uncorrelated xoshiro states. *)
let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create ~seed =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3 }

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let bits64 t =
  let open Int64 in
  let result = mul (rotl (mul t.s1 5L) 7) 9L in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  let seed = Int64.to_int (bits64 t) in
  create ~seed

let float t =
  (* 53 random bits scaled to [0,1). *)
  let bits = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let float_range t lo hi = lo +. ((hi -. lo) *. float t)

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection-free for our purposes: modulo bias is negligible for n << 2^63. *)
  Int64.to_int (Int64.rem (Int64.shift_right_logical (bits64 t) 1) (Int64.of_int n))

let bool t = Int64.logand (bits64 t) 1L = 1L

let exponential t ~mean = -.mean *. log (1.0 -. float t)

let pareto t ~shape ~scale = scale /. ((1.0 -. float t) ** (1.0 /. shape))

let normal t ~mu ~sigma =
  let u1 = 1.0 -. float t and u2 = float t in
  let z = sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2) in
  mu +. (sigma *. z)

let lognormal t ~mu ~sigma = exp (normal t ~mu ~sigma)

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
