(** Deterministic pseudo-random number generation for simulations.

    xoshiro256** seeded through splitmix64: fast, high quality, and fully
    reproducible from a single integer seed, so every experiment run prints
    identical numbers. Includes the variate distributions the workload
    generators need. *)

type t

val create : seed:int -> t
(** [create ~seed] is a fresh generator; equal seeds give equal streams. *)

val split : t -> t
(** [split t] derives an independent generator (advances [t]). *)

val bits64 : t -> int64
(** [bits64 t] is the next raw 64-bit output. *)

val float : t -> float
(** [float t] is uniform in [\[0, 1)]. *)

val float_range : t -> float -> float -> float
(** [float_range t lo hi] is uniform in [\[lo, hi)]. *)

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)]. Requires [n > 0]. *)

val bool : t -> bool

val exponential : t -> mean:float -> float
(** [exponential t ~mean] samples Exp with the given mean. *)

val pareto : t -> shape:float -> scale:float -> float
(** [pareto t ~shape ~scale] samples a Pareto variate (heavy tail). *)

val normal : t -> mu:float -> sigma:float -> float
(** [normal t ~mu ~sigma] samples a Gaussian via Box–Muller. *)

val lognormal : t -> mu:float -> sigma:float -> float

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
