(** Small statistics helpers over float arrays/lists. *)

val mean : float array -> float
(** 0 on empty input. *)

val stddev : float array -> float
(** Population standard deviation; 0 on empty input. *)

val percentile : float array -> float -> float
(** [percentile a p] with [p] in [\[0,100\]], nearest-rank on a sorted copy.
    0 on empty input. *)

val median : float array -> float

val minimum : float array -> float

val maximum : float array -> float

val sum : float array -> float

val coefficient_of_variation : float array -> float
(** stddev / mean; 0 when the mean is 0. Burstiness measure used for the
    application-gateway traces (Fig 7). *)

val jain_fairness : float array -> float
(** Jain's fairness index: (Σx)² / (n·Σx²); 1.0 = perfectly fair. Used by the
    fair-sharing experiment (Fig 9). *)
