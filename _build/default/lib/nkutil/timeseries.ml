type t = { width : float; mutable bins : float array; mutable last : int }

let create ~bin_width () =
  if bin_width <= 0.0 then invalid_arg "Timeseries.create: bin_width must be > 0";
  { width = bin_width; bins = Array.make 64 0.0; last = -1 }

let ensure t i =
  if i >= Array.length t.bins then begin
    let bins = Array.make (Int.max (i + 1) (2 * Array.length t.bins)) 0.0 in
    Array.blit t.bins 0 bins 0 (Array.length t.bins);
    t.bins <- bins
  end

let add t ~time v =
  if time >= 0.0 then begin
    let i = int_of_float (time /. t.width) in
    ensure t i;
    t.bins.(i) <- t.bins.(i) +. v;
    if i > t.last then t.last <- i
  end

let bin_width t = t.width

let num_bins t = t.last + 1

let get t i = if i >= 0 && i <= t.last then t.bins.(i) else 0.0

let rate t i = get t i /. t.width

let to_array t = Array.sub t.bins 0 (num_bins t)

let rates t = Array.map (fun v -> v /. t.width) (to_array t)
