(** Time-binned accumulator for throughput/RPS time series.

    The isolation experiment (Fig 21) samples each VM's throughput at 100 ms
    intervals; the trace figures (Fig 7) use 1-minute bins. A [t] adds
    values into fixed-width bins indexed from time 0. *)

type t

val create : bin_width:float -> unit -> t
(** [create ~bin_width ()] accumulates into bins of [bin_width] seconds. *)

val add : t -> time:float -> float -> unit
(** [add t ~time v] adds [v] into the bin containing [time]. Negative times
    are ignored. *)

val bin_width : t -> float

val num_bins : t -> int
(** Index of the last touched bin + 1. *)

val get : t -> int -> float
(** [get t i] is the accumulated value of bin [i] (0 if untouched). *)

val rate : t -> int -> float
(** [get t i / bin_width]: per-second rate for bin [i]. *)

val to_array : t -> float array
(** All bins up to the last touched one. *)

val rates : t -> float array
(** [to_array] divided by the bin width. *)
