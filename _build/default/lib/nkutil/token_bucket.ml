type t = {
  mutable rate : float;
  burst : float;
  mutable tokens : float;
  mutable last : float;
}

let create ~rate ~burst ~now =
  if rate <= 0.0 then invalid_arg "Token_bucket.create: rate must be > 0";
  if burst <= 0.0 then invalid_arg "Token_bucket.create: burst must be > 0";
  { rate; burst; tokens = burst; last = now }

let rate t = t.rate

let refill t ~now =
  if now > t.last then begin
    t.tokens <- Float.min t.burst (t.tokens +. ((now -. t.last) *. t.rate));
    t.last <- now
  end

let set_rate t ~rate ~now =
  refill t ~now;
  t.rate <- rate

let available t ~now =
  refill t ~now;
  t.tokens

let try_take t ~now n =
  refill t ~now;
  if t.tokens >= n then begin
    t.tokens <- t.tokens -. n;
    true
  end
  else false

let time_until t ~now n =
  refill t ~now;
  if t.tokens >= n then 0.0 else (n -. t.tokens) /. t.rate
