(** Token-bucket rate limiter.

    CoreEngine uses one bucket per VM to cap its egress bandwidth or NQE
    rate (paper §4.4, §7.6 / Fig 21). Time is supplied by the caller so the
    same code runs under the simulator clock and the wall clock. *)

type t

val create : rate:float -> burst:float -> now:float -> t
(** [create ~rate ~burst ~now] is a bucket refilled at [rate] tokens/second
    holding at most [burst] tokens, initially full. Requires [rate > 0] and
    [burst > 0]. *)

val rate : t -> float

val set_rate : t -> rate:float -> now:float -> unit
(** [set_rate] re-rates the bucket after crediting tokens accrued so far. *)

val available : t -> now:float -> float
(** [available t ~now] is the current token count after refill. *)

val try_take : t -> now:float -> float -> bool
(** [try_take t ~now n] consumes [n] tokens if available; otherwise takes
    nothing and returns [false]. *)

val time_until : t -> now:float -> float -> float
(** [time_until t ~now n] is the delay after which [n] tokens will be
    available (0 if available now). *)
