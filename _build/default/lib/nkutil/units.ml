let kib = 1024
let mib = 1024 * 1024
let gib = 1024 * 1024 * 1024

let gbps x = x *. 1e9
let mbps x = x *. 1e6

let bits_per_sec_of_bytes ~bytes ~seconds =
  if seconds <= 0.0 then 0.0 else float_of_int bytes *. 8.0 /. seconds

let gbps_of_bytes ~bytes ~seconds = bits_per_sec_of_bytes ~bytes ~seconds /. 1e9

let usec x = x *. 1e-6
let msec x = x *. 1e-3

let pp_rate fmt r =
  if r >= 1e9 then Format.fprintf fmt "%.1f Gbps" (r /. 1e9)
  else if r >= 1e6 then Format.fprintf fmt "%.1f Mbps" (r /. 1e6)
  else if r >= 1e3 then Format.fprintf fmt "%.1f Kbps" (r /. 1e3)
  else Format.fprintf fmt "%.0f bps" r

let pp_bytes fmt n =
  if n >= gib then Format.fprintf fmt "%.1f GB" (float_of_int n /. float_of_int gib)
  else if n >= mib then Format.fprintf fmt "%.1f MB" (float_of_int n /. float_of_int mib)
  else if n >= kib then Format.fprintf fmt "%d KB" (n / kib)
  else Format.fprintf fmt "%d B" n

let pp_duration fmt s =
  if s >= 1.0 then Format.fprintf fmt "%.2f s" s
  else if s >= 1e-3 then Format.fprintf fmt "%.2f ms" (s *. 1e3)
  else if s >= 1e-6 then Format.fprintf fmt "%.1f us" (s *. 1e6)
  else Format.fprintf fmt "%.0f ns" (s *. 1e9)

let pp_count fmt c =
  if c >= 1e9 then Format.fprintf fmt "%.2fG" (c /. 1e9)
  else if c >= 1e6 then Format.fprintf fmt "%.2fM" (c /. 1e6)
  else if c >= 1e3 then Format.fprintf fmt "%.1fK" (c /. 1e3)
  else Format.fprintf fmt "%.0f" c
