(** Unit conversions and pretty-printers shared by the experiments.

    Conventions used throughout the codebase: time in seconds (float),
    data sizes in bytes (int), rates in bits per second (float) unless a
    name says otherwise. *)

val kib : int
val mib : int
val gib : int

val gbps : float -> float
(** [gbps x] is [x] Gb/s expressed in bits per second. *)

val mbps : float -> float

val bits_per_sec_of_bytes : bytes:int -> seconds:float -> float
(** Throughput in bits/s from a byte count over a duration. *)

val gbps_of_bytes : bytes:int -> seconds:float -> float
(** Same, in Gb/s. *)

val usec : float -> float
(** [usec x] is [x] microseconds in seconds. *)

val msec : float -> float

val pp_rate : Format.formatter -> float -> unit
(** Pretty-print a bits/s rate with an adaptive unit (e.g. ["94.2 Gbps"]). *)

val pp_bytes : Format.formatter -> int -> unit
(** Pretty-print a byte count (e.g. ["16 KB"]). *)

val pp_duration : Format.formatter -> float -> unit
(** Pretty-print seconds with an adaptive unit (e.g. ["250 us"]). *)

val pp_count : Format.formatter -> float -> unit
(** Pretty-print a count/rate with K/M/G suffix (e.g. ["1.1M"]). *)
