lib/sim/cost_profile.ml: Int
