lib/sim/cost_profile.mli:
