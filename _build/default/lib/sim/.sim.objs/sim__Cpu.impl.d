lib/sim/cpu.ml: Array Engine Float Printf
