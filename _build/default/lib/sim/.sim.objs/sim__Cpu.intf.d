lib/sim/cpu.mli: Engine
