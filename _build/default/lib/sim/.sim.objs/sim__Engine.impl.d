lib/sim/engine.ml: Float Nkutil
