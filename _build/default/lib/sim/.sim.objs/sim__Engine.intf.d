lib/sim/engine.mli:
