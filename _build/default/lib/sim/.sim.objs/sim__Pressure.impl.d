lib/sim/pressure.ml: Engine
