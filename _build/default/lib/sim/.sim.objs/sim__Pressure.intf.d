lib/sim/pressure.mli: Engine
