type t = {
  name : string;
  syscall : float;
  sockop : float;
  accept_op : float;
  epoll_wake : float;
  per_byte_user_copy : float;
  per_byte_tx : float;
  per_byte_rx : float;
  per_chunk_tx : float;
  per_chunk_rx : float;
  per_ack_rx : float;
  interrupt : float;
  poll_iter : float;
  handshake : float;
  teardown : float;
  tx_contention : float;
  rx_contention : float;
  rps_contention : float;
  rx_batch : int;
  accept_backlog : int;
  default_rwnd : int;
  max_rwnd : int;
}

let linux_kernel =
  {
    name = "linux-kernel";
    syscall = 900.0;
    sockop = 1500.0;
    accept_op = 1500.0;
    epoll_wake = 1500.0;
    per_byte_user_copy = 0.05;
    per_byte_tx = 0.159;
    per_byte_rx = 1.0;
    per_chunk_tx = 900.0;
    per_chunk_rx = 3500.0;
    per_ack_rx = 450.0;
    interrupt = 2000.0;
    poll_iter = 0.0;
    handshake = 9_500.0;
    teardown = 6_500.0;
    tx_contention = 0.15;
    rx_contention = 0.028;
    rps_contention = 0.055;
    rx_batch = 16;
    accept_backlog = 1024;
    default_rwnd = 512 * 1024;
    max_rwnd = 6 * 1024 * 1024;
  }

let mtcp =
  {
    name = "mtcp";
    syscall = 0.0;
    (* mTCP socket ops are library calls in the NSM, not syscalls *)
    sockop = 500.0;
    accept_op = 400.0;
    epoll_wake = 300.0;
    per_byte_user_copy = 0.05;
    per_byte_tx = 0.05;
    per_byte_rx = 0.25;
    per_chunk_tx = 500.0;
    per_chunk_rx = 800.0;
    per_ack_rx = 200.0;
    interrupt = 0.0;
    poll_iter = 200.0;
    handshake = 4_500.0;
    teardown = 3_500.0;
    tx_contention = 0.1;
    rx_contention = 0.028;
    rps_contention = 0.048;
    rx_batch = 32;
    accept_backlog = 4096;
    default_rwnd = 512 * 1024;
    max_rwnd = 6 * 1024 * 1024;
  }

let ideal =
  {
    name = "ideal";
    syscall = 10.0;
    sockop = 10.0;
    accept_op = 10.0;
    epoll_wake = 10.0;
    per_byte_user_copy = 0.001;
    per_byte_tx = 0.001;
    per_byte_rx = 0.001;
    per_chunk_tx = 10.0;
    per_chunk_rx = 10.0;
    per_ack_rx = 5.0;
    interrupt = 10.0;
    poll_iter = 0.0;
    handshake = 50.0;
    teardown = 50.0;
    tx_contention = 0.0;
    rx_contention = 0.0;
    rps_contention = 0.0;
    rx_batch = 64;
    accept_backlog = 1 lsl 20;
    (* a plain receiver box: its advertised window is what bounds a single
       sender stream, as in the paper's testbed *)
    default_rwnd = 256 * 1024;
    max_rwnd = 256 * 1024;
  }

let contention_mult ~factor ~cores = 1.0 +. (factor *. float_of_int (Int.max 0 (cores - 1)))
