(** CPU cycle-cost profiles for network stacks.

    All figures in the paper's evaluation are CPU-bound: a core runs out of
    cycles before the 100G NIC runs out of bits. These profiles encode how
    many cycles each stack operation costs; the anchors are the paper's own
    single-core measurements (see DESIGN.md §5):

    - Linux kernel stack: 55 Gb/s send and 13.6 Gb/s interrupt-driven receive
      per core with 16 KB messages (Figs 13–16), ~70 K non-keepalive requests
      per second per core (Fig 17).
    - mTCP: ~190 K requests per second per core (Fig 20), thanks to batched
      polling and no syscall/interrupt costs.

    Scalability anchors give the per-extra-core contention factors:
    kernel send reaches line rate at 3 cores (Fig 18), receive scales to
    91 Gb/s at 8 cores (Fig 19), short connections reach 5.7x at 8 cores
    (Fig 20). *)

type t = {
  name : string;
  syscall : float;  (** user/kernel crossing for one socket API call *)
  sockop : float;  (** control-plane socket op (bind/listen/setsockopt) *)
  accept_op : float;  (** accept processing beyond the syscall *)
  epoll_wake : float;  (** waking an event waiter and delivering events *)
  per_byte_user_copy : float;  (** user buffer <-> stack buffer, cycles/byte *)
  per_byte_tx : float;  (** TX stack processing, cycles/byte *)
  per_byte_rx : float;  (** RX stack processing, cycles/byte *)
  per_chunk_tx : float;  (** per GSO chunk handed to the NIC *)
  per_chunk_rx : float;  (** per chunk delivered by the NIC *)
  per_ack_rx : float;  (** processing a pure ACK on the sender *)
  interrupt : float;  (** RX interrupt entry; 0 for polling stacks *)
  poll_iter : float;  (** one polling-loop iteration (polling stacks) *)
  handshake : float;  (** total connection-establishment processing *)
  teardown : float;  (** total connection-teardown processing *)
  tx_contention : float;  (** service-cost growth per extra core, bulk TX *)
  rx_contention : float;  (** same for bulk RX *)
  rps_contention : float;  (** same for short-connection churn *)
  rx_batch : int;  (** segments coalesced per interrupt/poll batch *)
  accept_backlog : int;  (** listen backlog before SYNs are dropped *)
  default_rwnd : int;
      (** initial per-connection receive buffer; bounds the advertised
          window *)
  max_rwnd : int;
      (** receive-buffer autotuning ceiling (Linux tcp_rmem max); equal to
          [default_rwnd] when the stack does not autotune *)
}

val linux_kernel : t
(** Calibrated Linux 4.9 kernel-stack profile. *)

val mtcp : t
(** Calibrated mTCP (userspace, DPDK polling) profile. *)

val ideal : t
(** Near-free stack for load generators and sinks on the "client machine":
    the measured system must be the bottleneck, exactly as the paper gives
    the traffic-generation side enough cores to never limit results. *)

val contention_mult : factor:float -> cores:int -> float
(** [contention_mult ~factor ~cores] is the service-cost multiplier
    [1 + factor * (cores - 1)] modelling shared-structure contention. *)
