(** Cycle-accounted virtual CPU core.

    Each vCPU of a VM, NSM, or the CoreEngine core is a non-preemptive FIFO
    server: work items cost cycles, cycles divide by the clock frequency to
    give virtual time, and items queue behind each other when the core is
    busy. This is what makes the evaluation meaningful — every figure in the
    paper is about which core saturates first.

    Busy cycles are accumulated per core so experiments can report CPU usage
    (paper Tables 6 and 7). *)

type t

val create : Engine.t -> ?freq_ghz:float -> name:string -> unit -> t
(** [create engine ~name ()] is an idle core. [freq_ghz] defaults to 2.3
    (the paper testbed's Xeon E5-2698 v3). *)

val name : t -> string

val engine : t -> Engine.t

val freq_hz : t -> float

val exec : t -> cycles:float -> (unit -> unit) -> unit
(** [exec t ~cycles k] queues a work item; [k] runs when the core has spent
    [cycles] on it (after finishing everything queued before it). *)

val charge : t -> cycles:float -> unit
(** [charge t ~cycles] accounts work with no completion action. *)

val free_at : t -> float
(** Virtual time at which the core becomes idle given current queue. *)

val backlog : t -> float
(** [free_at t - now]: seconds of queued work (0 when idle). *)

val busy_cycles : t -> float
(** Total cycles charged so far. *)

val busy_seconds : t -> float

val utilization : t -> since:float -> float
(** [utilization t ~since] is busy-time / elapsed-time over
    [\[since, now\]]; uses the busy-cycle counter delta is not kept, so this
    is cumulative from 0 unless [reset_accounting] was called. *)

val reset_accounting : t -> unit
(** Zero the busy-cycle counter (e.g. after warm-up). *)

module Set : sig
  (** A pool of cores with flow pinning, standing in for a multi-vCPU VM or
      NSM. *)

  type core := t
  type t

  val create : Engine.t -> ?freq_ghz:float -> name:string -> n:int -> unit -> t

  val of_array : core array -> t
  (** Wrap existing cores (e.g. give each mTCP shard a one-core view of a
      bigger set). Raises on an empty array. *)

  val cores : t -> core array

  val n : t -> int

  val core : t -> int -> core

  val pick : t -> hash:int -> core
  (** [pick t ~hash] deterministically maps a flow hash to a core (RSS-style
      pinning, paper §4.3: connections are pinned to vCPUs/queue sets). *)

  val total_busy_cycles : t -> float

  val least_loaded : t -> core

  val reset_accounting : t -> unit
end
