type t = {
  engine : Engine.t;
  tau : float;
  mutable rate : float; (* bits per second *)
  mutable last : float;
}

let create engine ?(tau = 0.01) () = { engine; tau; rate = 0.0; last = Engine.now engine }

let decay t =
  let now = Engine.now t.engine in
  if now > t.last then begin
    t.rate <- t.rate *. exp (-.(now -. t.last) /. t.tau);
    t.last <- now
  end

let observe t ~bits =
  decay t;
  t.rate <- t.rate +. (bits /. t.tau)

let rate_bps t =
  decay t;
  t.rate

let hugepage_copy_cost t ~base ~contention =
  let frac = rate_bps t /. 100e9 in
  base +. (contention *. frac *. frac)
