(** Exponentially-weighted rate estimator for memory/NIC pressure.

    NetKernel's extra hugepage copy competes for memory bandwidth with the
    stack's own copies; the paper measures the consequence as a CPU overhead
    that grows from 1.14x at 20 Gb/s to 1.70x at 100 Gb/s (Table 6). We model
    it by making the hugepage copy's per-byte cost a function of the host's
    recent wire throughput, which this estimator tracks. *)

type t

val create : Engine.t -> ?tau:float -> unit -> t
(** [create engine ()] is an estimator with time constant [tau] seconds
    (default 0.01). *)

val observe : t -> bits:float -> unit
(** [observe t ~bits] credits [bits] at the current engine time. *)

val rate_bps : t -> float
(** Current decayed estimate in bits/s. *)

val hugepage_copy_cost : t -> base:float -> contention:float -> float
(** [hugepage_copy_cost t ~base ~contention] is the per-byte cycle cost
    [base + contention * (rate / 100G)^2] — quadratic in load, matching the
    Table 6 calibration. *)
