lib/simnet/addr.ml: Format Int
