lib/simnet/addr.mli: Format
