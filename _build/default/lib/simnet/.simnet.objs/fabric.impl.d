lib/simnet/fabric.ml: Addr Hashtbl Link List Nic Option Segment Sim
