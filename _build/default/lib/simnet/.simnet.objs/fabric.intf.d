lib/simnet/fabric.mli: Addr Link Nic Sim
