lib/simnet/link.ml: Float Int Nkutil Segment Sim
