lib/simnet/link.mli: Nkutil Segment Sim
