lib/simnet/nic.ml: Link Segment Sim
