lib/simnet/nic.mli: Link Segment Sim
