lib/simnet/segment.ml: Addr Format
