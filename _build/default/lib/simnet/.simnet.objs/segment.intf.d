lib/simnet/segment.mli: Addr Format
