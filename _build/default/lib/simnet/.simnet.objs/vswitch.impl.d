lib/simnet/vswitch.ml: Addr Hashtbl Nic Segment Sim
