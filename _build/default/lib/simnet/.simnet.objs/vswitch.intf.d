lib/simnet/vswitch.mli: Addr Nic Segment Sim
