type ip = int
type port = int
type t = { ip : ip; port : port }

let make ip port = { ip; port }

let equal a b = a.ip = b.ip && a.port = b.port

let compare a b =
  let c = Int.compare a.ip b.ip in
  if c <> 0 then c else Int.compare a.port b.port

(* Mix with a 64-bit avalanche so sequentially-allocated ips/ports spread. *)
let mix x =
  let x = x * 0x9E3779B97F4A7C1 in
  let x = x lxor (x lsr 29) in
  let x = x * 0xBF58476D1CE4E5B in
  x lxor (x lsr 32)

let hash a = mix ((a.ip * 65599) + a.port) land max_int

let pp fmt a = Format.fprintf fmt "%d:%d" a.ip a.port

module Flow = struct
  type addr = t

  let addr_hash = hash

  type t = { src : addr; dst : addr }

  let make ~src ~dst = { src; dst }

  let reverse f = { src = f.dst; dst = f.src }

  let equal a b = equal a.src b.src && equal a.dst b.dst

  let compare a b =
    let c = compare a.src b.src in
    if c <> 0 then c else compare a.dst b.dst

  let hash f = mix ((addr_hash f.src * 31) + addr_hash f.dst) land max_int

  let rss_hash f =
    let a = addr_hash f.src and b = addr_hash f.dst in
    mix (Int.min a b + (31 * Int.max a b)) land max_int

  let pp fmt f = Format.fprintf fmt "%a->%a" pp f.src pp f.dst
end
