(** Network addresses and flow identifiers. *)

type ip = int
(** Opaque host address; experiments allocate small integers. *)

type port = int

type t = { ip : ip; port : port }

val make : ip -> port -> t

val equal : t -> t -> bool

val compare : t -> t -> int

val hash : t -> int

val pp : Format.formatter -> t -> unit

(** Directed 4-tuple identifying one direction of a connection. *)
module Flow : sig
  type addr := t

  type t = { src : addr; dst : addr }

  val make : src:addr -> dst:addr -> t

  val reverse : t -> t
  (** Swap source and destination (the ACK direction). *)

  val equal : t -> t -> bool

  val compare : t -> t -> int

  val hash : t -> int

  val rss_hash : t -> int
  (** Direction-independent hash: both directions of a connection map to the
      same value, so RX processing and the socket's core coincide (RSS). *)

  val pp : Format.formatter -> t -> unit
end
