type port = { nic : Nic.t; downlink : Link.t }

type t = {
  engine : Sim.Engine.t;
  rate : float;
  delay : float;
  buffer : int option;
  ecn : int option;
  mutable ports : port list;
  routes : (Addr.ip, port) Hashtbl.t;
  mutable unrouted : int;
}

let create engine ~rate_bps ~delay ?buffer_bytes ?ecn_threshold_bytes () =
  { engine; rate = rate_bps; delay; buffer = buffer_bytes; ecn = ecn_threshold_bytes;
    ports = []; routes = Hashtbl.create 16; unrouted = 0 }

let forward t (seg : Segment.t) =
  match Hashtbl.find_opt t.routes seg.Segment.flow.dst.ip with
  | Some port -> ignore (Link.send port.downlink seg)
  | None -> t.unrouted <- t.unrouted + 1

let attach t nic =
  let mk name =
    Link.create t.engine ~rate_bps:t.rate ~delay:(t.delay /. 2.0)
      ?buffer_bytes:t.buffer ?ecn_threshold_bytes:t.ecn ~name ()
  in
  let uplink = mk (Nic.name nic ^ ".up") in
  let downlink = mk (Nic.name nic ^ ".down") in
  Link.set_receiver uplink (forward t);
  Link.set_receiver downlink (Nic.receive nic);
  Nic.set_egress nic uplink;
  t.ports <- { nic; downlink } :: t.ports

let add_route t ip nic =
  match List.find_opt (fun p -> p.nic == nic) t.ports with
  | Some port -> Hashtbl.replace t.routes ip port
  | None -> invalid_arg "Fabric.add_route: NIC not attached"

let port_to t nic =
  List.find_opt (fun p -> p.nic == nic) t.ports |> Option.map (fun p -> p.downlink)

let unrouted t = t.unrouted
