(** Network fabric: an ideal switch connecting host NICs.

    Each attached NIC gets an uplink (NIC -> switch) and a downlink
    (switch -> NIC) at the port rate; forwarding is by destination IP.
    This models the paper's testbed (two servers with 100G NICs through a
    switch) and generalizes to the multi-host experiments. *)

type t

val create :
  Sim.Engine.t ->
  rate_bps:float ->
  delay:float ->
  ?buffer_bytes:int ->
  ?ecn_threshold_bytes:int ->
  unit ->
  t
(** [delay] is the end-to-end one-way propagation+switching delay; it is
    split between the uplink and downlink. *)

val attach : t -> Nic.t -> unit
(** Wire a NIC to a switch port (sets the NIC's egress link). *)

val add_route : t -> Addr.ip -> Nic.t -> unit
(** Declare that [ip] lives behind [nic]. The NIC must be attached. *)

val port_to : t -> Nic.t -> Link.t option
(** The downlink towards [nic] (to inspect queue/drops in tests). *)

val unrouted : t -> int
(** Count of segments dropped for lack of a route. *)
