type t = {
  engine : Sim.Engine.t;
  rate : float;
  delay : float;
  buffer : int;
  ecn_threshold : int option;
  mark_rng : Nkutil.Rng.t;
  name : string;
  mutable receiver : (Segment.t -> unit) option;
  mutable busy_until : float;
  mutable queued : int;
  mutable bytes_sent : int;
  mutable segments_sent : int;
  mutable drops : int;
  mutable marks : int;
  mutable transmit_hook : (Segment.t -> unit) option;
  mutable loss : (Nkutil.Rng.t * float) option;
}

let create engine ~rate_bps ~delay ?(buffer_bytes = 16 * 1024 * 1024) ?ecn_threshold_bytes
    ?(name = "link") () =
  if rate_bps <= 0.0 then invalid_arg "Link.create: rate must be > 0";
  { engine; rate = rate_bps; delay; buffer = buffer_bytes;
    ecn_threshold = ecn_threshold_bytes; mark_rng = Nkutil.Rng.create ~seed:0x51ED;
    name; receiver = None; busy_until = 0.0; queued = 0;
    bytes_sent = 0; segments_sent = 0; drops = 0; marks = 0; transmit_hook = None;
    loss = None }

let set_random_loss t ~rng ~rate = t.loss <- Some (rng, rate)

let set_receiver t f = t.receiver <- Some f

let on_transmit t f = t.transmit_hook <- Some f

let send t seg =
  let receiver =
    match t.receiver with
    | Some f -> f
    | None -> invalid_arg (t.name ^ ": no receiver attached")
  in
  let lossy_drop =
    match t.loss with
    | Some (rng, rate) -> Nkutil.Rng.float rng < rate
    | None -> false
  in
  (* A GSO segment is many wire packets: when the buffer cannot hold all of
     them, the fitting prefix is still enqueued and only the tail packets
     drop — which is what lets the receiver emit duplicate ACKs and the
     sender fast-retransmit instead of stalling into an RTO. *)
  let seg =
    if lossy_drop then seg
    else begin
      let space = t.buffer - t.queued in
      let full = Segment.wire_bytes seg in
      if full <= space || seg.Segment.len = 0 then seg
      else begin
        let per_packet = Segment.header_bytes in
        let fit_packets = space / (per_packet + Int.min seg.Segment.len Segment.mss) in
        let fit_payload = Int.min seg.Segment.len (fit_packets * Segment.mss) in
        if fit_payload <= 0 then seg
        else
          Segment.make ~flow:seg.Segment.flow ~seq:seg.Segment.seq ~ack:seg.Segment.ack
            ~syn:seg.Segment.syn ~ack_flag:seg.Segment.ack_flag ~fin:false
            ~rst:seg.Segment.rst ~window:seg.Segment.window ~len:fit_payload
            ~ts:seg.Segment.ts ~ts_echo:seg.Segment.ts_echo ~ece:seg.Segment.ece ()
      end
    end
  in
  let wire = Segment.wire_bytes seg in
  if lossy_drop || t.queued + wire > t.buffer then begin
    t.drops <- t.drops + 1;
    false
  end
  else begin
    (* RED-style probabilistic marking: ramp from 0 at the threshold to
       certain marking at twice the threshold, so no single flow captures
       the unmarked band. *)
    (match t.ecn_threshold with
    | Some threshold when t.queued > threshold ->
        let p =
          Float.min 1.0
            (float_of_int (t.queued - threshold) /. float_of_int (Int.max 1 threshold))
        in
        if Nkutil.Rng.float t.mark_rng < p then begin
          seg.Segment.ce <- true;
          t.marks <- t.marks + 1
        end
    | Some _ | None -> ());
    t.queued <- t.queued + wire;
    let now = Sim.Engine.now t.engine in
    let start = Float.max now t.busy_until in
    let tx_done = start +. (float_of_int wire *. 8.0 /. t.rate) in
    t.busy_until <- tx_done;
    ignore
      (Sim.Engine.schedule_at t.engine ~at:tx_done (fun () ->
           t.queued <- t.queued - wire;
           t.bytes_sent <- t.bytes_sent + wire;
           t.segments_sent <- t.segments_sent + 1;
           match t.transmit_hook with None -> () | Some f -> f seg));
    ignore (Sim.Engine.schedule_at t.engine ~at:(tx_done +. t.delay) (fun () -> receiver seg));
    true
  end

let rate_bps t = t.rate

let queued_bytes t = t.queued

let bytes_sent t = t.bytes_sent

let segments_sent t = t.segments_sent

let drops t = t.drops

let ecn_marks t = t.marks
