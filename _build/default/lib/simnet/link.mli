(** Unidirectional store-and-forward link.

    Models one direction of a cable or a switch port: finite rate, fixed
    propagation delay, a drop-tail buffer, and an ECN marking threshold
    (segments queued beyond the threshold get their CE bit set, which the
    DCTCP congestion controller reacts to). *)

type t

val create :
  Sim.Engine.t ->
  rate_bps:float ->
  delay:float ->
  ?buffer_bytes:int ->
  ?ecn_threshold_bytes:int ->
  ?name:string ->
  unit ->
  t
(** [buffer_bytes] defaults to 16 MB (deep-buffered 100G gear); [ecn_threshold_bytes] defaults to no
    marking. *)

val set_receiver : t -> (Segment.t -> unit) -> unit
(** Register the far-end delivery callback (required before [send]). *)

val send : t -> Segment.t -> bool
(** [send t seg] enqueues for transmission; [false] means tail-dropped. *)

val rate_bps : t -> float

val queued_bytes : t -> int
(** Wire bytes currently buffered (awaiting or in transmission). *)

val bytes_sent : t -> int
(** Total wire bytes that completed transmission. *)

val segments_sent : t -> int

val drops : t -> int

val ecn_marks : t -> int

val on_transmit : t -> (Segment.t -> unit) -> unit
(** Hook invoked when a segment finishes serialization (e.g. to feed the
    host pressure estimator). *)

val set_random_loss : t -> rng:Nkutil.Rng.t -> rate:float -> unit
(** Drop each segment independently with probability [rate] (fault
    injection for loss-recovery tests). *)
