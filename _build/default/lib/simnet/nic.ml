type t = {
  engine : Sim.Engine.t;
  name : string;
  pressure : Sim.Pressure.t option;
  mutable egress : Link.t option;
  mutable rx_handler : (Segment.t -> unit) option;
  mutable bytes_tx : int;
  mutable bytes_rx : int;
}

let create engine ~name ?pressure () =
  { engine; name; pressure; egress = None; rx_handler = None; bytes_tx = 0; bytes_rx = 0 }

let name t = t.name

let set_egress t link = t.egress <- Some link

let egress t = t.egress

let set_rx_handler t f = t.rx_handler <- Some f

let observe t seg =
  match t.pressure with
  | None -> ()
  | Some p -> Sim.Pressure.observe p ~bits:(float_of_int (Segment.wire_bytes seg) *. 8.0)

let transmit t seg =
  match t.egress with
  | None -> false
  | Some link ->
      let ok = Link.send link seg in
      if ok then begin
        t.bytes_tx <- t.bytes_tx + Segment.wire_bytes seg;
        observe t seg
      end;
      ok

let receive t seg =
  t.bytes_rx <- t.bytes_rx + Segment.wire_bytes seg;
  observe t seg;
  match t.rx_handler with None -> () | Some f -> f seg

let bytes_tx t = t.bytes_tx

let bytes_rx t = t.bytes_rx
