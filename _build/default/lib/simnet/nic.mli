(** Physical NIC endpoint.

    Thin shim between the host and the fabric: egress goes to an attached
    link (owned by the fabric), ingress is handed to the host's vswitch.
    Feeds the host's memory-pressure estimator with transmitted and received
    bits (see {!Sim.Pressure}). *)

type t

val create : Sim.Engine.t -> name:string -> ?pressure:Sim.Pressure.t -> unit -> t

val name : t -> string

val set_egress : t -> Link.t -> unit

val egress : t -> Link.t option

val set_rx_handler : t -> (Segment.t -> unit) -> unit

val transmit : t -> Segment.t -> bool
(** [transmit t seg] sends via the egress link; [false] when tail-dropped or
    no link is attached. *)

val receive : t -> Segment.t -> unit
(** Called by the fabric on delivery. *)

val bytes_tx : t -> int

val bytes_rx : t -> int
