type t = {
  flow : Addr.Flow.t;
  seq : int;
  ack : int;
  syn : bool;
  ack_flag : bool;
  fin : bool;
  rst : bool;
  window : int;
  len : int;
  ts : float;
  ts_echo : float;
  ece : bool;
  mutable ce : bool;
}

let mss = 1448
let gso_max = 65536
let header_bytes = 78

let seq_mask = (1 lsl 32) - 1

let make ~flow ~seq ~ack ?(syn = false) ?(ack_flag = false) ?(fin = false) ?(rst = false)
    ?(window = 0) ?(len = 0) ?(ts = 0.0) ?(ts_echo = -1.0) ?(ece = false) () =
  { flow; seq = seq land seq_mask; ack = ack land seq_mask; syn; ack_flag; fin; rst; window;
    len; ts; ts_echo; ece; ce = false }

let packets t = if t.len = 0 then 1 else (t.len + mss - 1) / mss

let wire_bytes t = t.len + (packets t * header_bytes)

let seq_end t =
  (t.seq + t.len + (if t.syn then 1 else 0) + if t.fin then 1 else 0) land seq_mask

let pp fmt t =
  Format.fprintf fmt "%a seq=%d ack=%d len=%d%s%s%s%s%s win=%d" Addr.Flow.pp t.flow t.seq
    t.ack t.len
    (if t.syn then " SYN" else "")
    (if t.ack_flag then " ACK" else "")
    (if t.fin then " FIN" else "")
    (if t.rst then " RST" else "")
    (if t.ce then " CE" else "")
    t.window
