(** TCP segments on the simulated wire.

    A segment models one GSO/TSO unit: up to [gso_max] payload bytes handed
    to the NIC as a unit and framed on the wire as ceil(len/mss) packets.
    Payload content is not carried in the segment (the byte stream travels
    through the connection's content channel, released in order by the
    receiver's reassembler); segments carry sequence-space metadata only,
    exactly like packet-level simulators do. *)

type t = {
  flow : Addr.Flow.t;
  seq : int;  (** sequence number of the first payload byte (mod 2^32) *)
  ack : int;  (** acknowledgement number; meaningful when [ack_flag] *)
  syn : bool;
  ack_flag : bool;
  fin : bool;
  rst : bool;
  window : int;  (** advertised receive window in bytes *)
  len : int;  (** payload bytes covered by this segment *)
  ts : float;  (** sender timestamp (TCP timestamps option), for RTT *)
  ts_echo : float;  (** echoed peer timestamp; negative when absent *)
  ece : bool;  (** ECN-echo flag (receiver -> sender) *)
  mutable ce : bool;  (** congestion-experienced mark, set by the fabric *)
}

val mss : int
(** Wire MSS: 1448 bytes (Ethernet MTU 1500 minus IP/TCP headers with
    timestamps). *)

val gso_max : int
(** Largest payload a single segment may cover (64 KB, Linux GSO). *)

val header_bytes : int
(** Per-packet on-wire overhead: Ethernet header+FCS, preamble, inter-frame
    gap, IP and TCP headers with timestamp options = 78 bytes. This is what
    caps goodput at ~94.5 Gb/s on a 100G link, as in the paper's Table 4. *)

val make :
  flow:Addr.Flow.t ->
  seq:int ->
  ack:int ->
  ?syn:bool ->
  ?ack_flag:bool ->
  ?fin:bool ->
  ?rst:bool ->
  ?window:int ->
  ?len:int ->
  ?ts:float ->
  ?ts_echo:float ->
  ?ece:bool ->
  unit ->
  t

val packets : t -> int
(** Number of wire packets this segment occupies (at least 1). *)

val wire_bytes : t -> int
(** Total on-wire bytes including per-packet framing overhead. *)

val seq_end : t -> int
(** [seq + len + (syn?1) + (fin?1)] mod 2^32 — the sequence space consumed. *)

val pp : Format.formatter -> t -> unit
