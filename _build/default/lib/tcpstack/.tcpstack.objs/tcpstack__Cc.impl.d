lib/tcpstack/cc.ml:
