lib/tcpstack/cc.mli:
