lib/tcpstack/cc_bbr.ml: Cc Float Int
