lib/tcpstack/cc_bbr.mli: Cc
