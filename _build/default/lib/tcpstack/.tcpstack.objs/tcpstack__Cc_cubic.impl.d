lib/tcpstack/cc_cubic.ml: Cc Float Int
