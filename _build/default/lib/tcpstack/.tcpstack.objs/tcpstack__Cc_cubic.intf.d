lib/tcpstack/cc_cubic.mli: Cc
