lib/tcpstack/cc_dctcp.ml: Cc Int
