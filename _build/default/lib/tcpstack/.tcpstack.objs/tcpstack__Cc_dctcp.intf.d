lib/tcpstack/cc_dctcp.mli: Cc
