lib/tcpstack/cc_reno.ml: Cc Int
