lib/tcpstack/cc_reno.mli: Cc
