lib/tcpstack/cc_vm.ml: Cc Int
