lib/tcpstack/cc_vm.mli: Cc
