lib/tcpstack/conn_registry.ml: Addr Hashtbl Nkutil
