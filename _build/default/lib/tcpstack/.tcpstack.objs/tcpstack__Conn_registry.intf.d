lib/tcpstack/conn_registry.mli: Addr Nkutil
