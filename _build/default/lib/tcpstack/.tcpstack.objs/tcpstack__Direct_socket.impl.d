lib/tcpstack/direct_socket.ml: Addr Epoll_core Hashtbl List Option Sim Socket_api Stack Types
