lib/tcpstack/direct_socket.mli: Socket_api Stack
