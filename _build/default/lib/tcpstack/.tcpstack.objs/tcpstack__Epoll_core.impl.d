lib/tcpstack/epoll_core.ml: Hashtbl Sim Types
