lib/tcpstack/epoll_core.mli: Sim Types
