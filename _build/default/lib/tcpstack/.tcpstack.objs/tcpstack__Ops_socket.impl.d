lib/tcpstack/ops_socket.ml: Addr Epoll_core Hashtbl List Queue Socket_api Stack_ops Types
