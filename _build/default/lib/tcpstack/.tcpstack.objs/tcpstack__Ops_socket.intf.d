lib/tcpstack/ops_socket.mli: Socket_api Stack_ops
