lib/tcpstack/reassembly.ml: Int List Tcp_seq
