lib/tcpstack/reassembly.mli:
