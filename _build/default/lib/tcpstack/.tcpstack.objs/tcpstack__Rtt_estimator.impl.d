lib/tcpstack/rtt_estimator.ml: Float
