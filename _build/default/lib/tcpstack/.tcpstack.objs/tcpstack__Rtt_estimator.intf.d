lib/tcpstack/rtt_estimator.mli:
