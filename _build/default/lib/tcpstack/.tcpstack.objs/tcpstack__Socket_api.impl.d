lib/tcpstack/socket_api.ml: Addr Types
