lib/tcpstack/socket_api.mli: Addr Types
