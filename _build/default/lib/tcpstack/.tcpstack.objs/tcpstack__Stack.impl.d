lib/tcpstack/stack.ml: Addr Array Cc Cc_cubic Conn_registry Hashtbl Int List Nkutil Option Queue Segment Sim Tcb Tcp_seq Types Vswitch
