lib/tcpstack/stack.mli: Addr Cc Conn_registry Nkutil Segment Sim Tcb Types Vswitch
