lib/tcpstack/stack_ops.ml: Addr List Sim Stack Types
