lib/tcpstack/stack_ops.mli: Addr Sim Stack Types
