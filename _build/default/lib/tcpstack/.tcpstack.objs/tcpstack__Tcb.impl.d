lib/tcpstack/tcb.ml: Addr Bytes Cc Conn_registry Float Format Int Nkutil Printf Queue Reassembly Rtt_estimator Segment Sim Sys Tcp_seq Types
