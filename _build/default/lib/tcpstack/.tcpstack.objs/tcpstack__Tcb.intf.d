lib/tcpstack/tcb.mli: Addr Cc Conn_registry Segment Sim Types
