lib/tcpstack/tcp_seq.ml:
