lib/tcpstack/tcp_seq.mli:
