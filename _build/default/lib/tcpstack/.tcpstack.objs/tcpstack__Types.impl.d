lib/tcpstack/types.ml: Format String
