lib/tcpstack/types.mli: Format
