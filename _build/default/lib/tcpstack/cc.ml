type t = {
  name : string;
  cwnd : unit -> int;
  on_ack : acked:int -> rtt:float -> now:float -> unit;
  on_loss : now:float -> unit;
  on_timeout : now:float -> unit;
  on_ecn_ack : acked:int -> now:float -> unit;
  release : unit -> unit;
}

type factory = unit -> t

let max_cwnd = 16 * 1024 * 1024

let initial_window ~mss = 10 * mss
