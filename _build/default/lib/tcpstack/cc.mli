(** Congestion-control interface.

    A controller is a record of closures over private state, giving each
    connection an independent instance while allowing implementations such
    as the VM-level controller ({!Cc_vm}) to share state across flows —
    exactly the flexibility the paper exercises by swapping NSMs. All window
    quantities are in bytes. *)

type t = {
  name : string;
  cwnd : unit -> int;  (** current congestion window (bytes) *)
  on_ack : acked:int -> rtt:float -> now:float -> unit;
      (** new data acknowledged; [rtt] < 0 when no sample is available *)
  on_loss : now:float -> unit;  (** fast-retransmit loss signal *)
  on_timeout : now:float -> unit;  (** RTO expiry *)
  on_ecn_ack : acked:int -> now:float -> unit;
      (** acknowledgement carrying an ECN echo *)
  release : unit -> unit;  (** the flow is closing; drop shared-state refs *)
}

type factory = unit -> t
(** One controller per connection. *)

val max_cwnd : int
(** Global cap on any congestion window (16 MB). *)

val initial_window : mss:int -> int
(** IW10 (RFC 6928): 10 MSS. *)
