(** Simplified BBR congestion control (Cardwell et al., CACM 2017).

    Model-based rather than loss-based: estimates the bottleneck bandwidth
    (windowed max of delivery rate) and the round-trip propagation delay
    (windowed min RTT), and caps the window near their product. The paper
    cites BBR among the stacks an operator could roll out as an NSM without
    tenant involvement (§1); wire it with
    [Nsm.create_kernel ~cc_factory:(Cc_bbr.factory ~mss Segment.mss)].

    Simplifications versus full BBR: gain cycling is reduced to a periodic
    1.25×/0.75× probe pair, there is no explicit pacing (the simulator's
    ACK clocking paces), and ProbeRTT shrinks to a brief window floor. *)

val create : mss:int -> unit -> Cc.t

val factory : mss:int -> Cc.factory
