(** CUBIC congestion control (RFC 8312) — the Linux default and the paper's
    Baseline transport. Cubic window growth around the last loss point, with
    the TCP-friendly (Reno-equivalent) lower bound. *)

val create : mss:int -> unit -> Cc.t

val factory : mss:int -> Cc.factory
