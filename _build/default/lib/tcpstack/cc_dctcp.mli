(** DCTCP congestion control (Alizadeh et al., SIGCOMM 2010).

    Scales the window reduction with the fraction of ECN-marked bytes per
    window, estimated with the g=1/16 EWMA. One of the stacks an operator
    can deploy as an NSM — the paper motivates NetKernel partly by how hard
    deploying DCTCP in a public cloud is today (§1). *)

val create : mss:int -> unit -> Cc.t

val factory : mss:int -> Cc.factory
