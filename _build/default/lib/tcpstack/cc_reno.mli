(** TCP NewReno congestion control: slow start, AIMD congestion avoidance,
    halving on fast retransmit, window collapse on timeout (RFC 5681). *)

val create : mss:int -> unit -> Cc.t

val factory : mss:int -> Cc.factory
