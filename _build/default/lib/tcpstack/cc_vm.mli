(** VM-level congestion control (paper §6.2, Seawall-style).

    All flows of one VM share a single congestion window: each flow's ACKs
    advance the shared window, and each active flow may keep at most 1/n of
    it in flight. A misbehaving VM therefore gains nothing by opening more
    flows — bandwidth is shared per-VM, not per-flow (Fig 9). *)

type group

val create_group : mss:int -> unit -> group
(** One group per VM; create the group in the NSM and use [factory] as the
    NSM stack's congestion-control factory. *)

val factory : group -> Cc.factory

val shared_cwnd : group -> int
(** The current shared window in bytes. *)

val active_flows : group -> int
