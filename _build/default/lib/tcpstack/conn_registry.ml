type channel = { c2s : Nkutil.Byte_fifo.t; s2c : Nkutil.Byte_fifo.t }

module Key = struct
  type t = Addr.Flow.t * int

  let equal (fa, ia) (fb, ib) = ia = ib && Addr.Flow.equal fa fb
  let hash (f, i) = (Addr.Flow.hash f * 31) + i
end

module Table = Hashtbl.Make (Key)

type t = channel Table.t

let create () = Table.create 64

let register t ~flow ~isn =
  let ch = { c2s = Nkutil.Byte_fifo.create (); s2c = Nkutil.Byte_fifo.create () } in
  Table.replace t (flow, isn) ch;
  ch

let lookup t ~flow ~isn = Table.find_opt t (flow, isn)

let remove t ~flow ~isn = Table.remove t (flow, isn)

let size t = Table.length t
