(** Payload-content channels between connection endpoints.

    Segments carry sequence metadata only; the actual byte stream of each
    direction travels through a {!Nkutil.Byte_fifo} shared by the two
    endpoints. The registry pairs an active opener's channel with the passive
    endpoint, keyed by ⟨client address, server address, initial sequence
    number⟩ so port reuse across the simulation cannot alias. One registry is
    created per simulated world and threaded into every stack. *)

type t

type channel = {
  c2s : Nkutil.Byte_fifo.t;  (** client-to-server byte stream *)
  s2c : Nkutil.Byte_fifo.t;  (** server-to-client byte stream *)
}

val create : unit -> t

val register : t -> flow:Addr.Flow.t -> isn:int -> channel
(** Called by the active opener when sending its SYN; [flow] is
    client → server. Replaces any stale entry with the same key. *)

val lookup : t -> flow:Addr.Flow.t -> isn:int -> channel option
(** Called by the passive opener when receiving the SYN. *)

val remove : t -> flow:Addr.Flow.t -> isn:int -> unit
(** Drop the entry once both endpoints hold the channel. *)

val size : t -> int
