(** Baseline socket layer: {!Socket_api.t} directly over an in-VM {!Stack}.

    This is "the status quo where an application uses the kernel TCP stack in
    its VM" (paper §7.1). It also provides the epoll emulation (readiness
    tracking, waiter wake-up with its CPU cost) reused by applications under
    both Baseline and NetKernel. *)

val make : Stack.t -> Socket_api.t
(** Build a socket API over [stack]. Handles are private to the returned
    record. *)
