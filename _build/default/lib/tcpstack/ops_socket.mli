(** {!Socket_api.t} over any {!Stack_ops.t} backend.

    Gives applications the plain BSD-socket view of a composite backend —
    in particular it is how an "mTCP application" links directly against the
    sharded mTCP library outside NetKernel. *)

val make : Stack_ops.t -> Socket_api.t
