type sock = int

type epoll = int

type t = {
  socket : unit -> (sock, Types.err) result;
  bind : sock -> Addr.t -> (unit, Types.err) result;
  listen : sock -> backlog:int -> (unit, Types.err) result;
  accept : sock -> k:((sock * Addr.t, Types.err) result -> unit) -> unit;
  connect : sock -> Addr.t -> k:((unit, Types.err) result -> unit) -> unit;
  send : sock -> Types.payload -> k:((int, Types.err) result -> unit) -> unit;
  recv :
    sock -> max:int -> mode:Types.recv_mode ->
    k:((Types.payload, Types.err) result -> unit) -> unit;
  close : sock -> unit;
  epoll_create : unit -> epoll;
  epoll_add : epoll -> sock -> mask:Types.events -> unit;
  epoll_del : epoll -> sock -> unit;
  epoll_wait : epoll -> timeout:float -> k:((sock * Types.events) list -> unit) -> unit;
  local_addr : sock -> Addr.t option;
  peer_addr : sock -> Addr.t option;
}
