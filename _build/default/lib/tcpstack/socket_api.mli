(** The BSD-socket abstraction boundary.

    This record of functions is the equivalent of the paper's "BSD socket
    APIs kept intact" (§1): applications are written against it once and run
    unmodified over either the baseline in-VM stack ({!Direct_socket}) or
    NetKernel's GuestLib redirection — the paper's central claim of
    transparent redirection, expressed in OCaml as two implementations of
    one interface.

    All potentially-blocking calls take a continuation; [send]/[recv] are
    non-blocking ([Eagain]) and meant to be driven by [epoll_wait]. *)

type sock = int
(** Socket descriptor (per-API namespace). *)

type epoll = int
(** Epoll instance descriptor. *)

type t = {
  socket : unit -> (sock, Types.err) result;
  bind : sock -> Addr.t -> (unit, Types.err) result;
  listen : sock -> backlog:int -> (unit, Types.err) result;
  accept : sock -> k:((sock * Addr.t, Types.err) result -> unit) -> unit;
  connect : sock -> Addr.t -> k:((unit, Types.err) result -> unit) -> unit;
  send : sock -> Types.payload -> k:((int, Types.err) result -> unit) -> unit;
  recv :
    sock -> max:int -> mode:Types.recv_mode ->
    k:((Types.payload, Types.err) result -> unit) -> unit;
  close : sock -> unit;
  epoll_create : unit -> epoll;
  epoll_add : epoll -> sock -> mask:Types.events -> unit;
  epoll_del : epoll -> sock -> unit;
  epoll_wait :
    epoll -> timeout:float -> k:((sock * Types.events) list -> unit) -> unit;
      (** Delivers when at least one registered socket is ready, or after
          [timeout] (negative = wait forever) with an empty list. *)
  local_addr : sock -> Addr.t option;
  peer_addr : sock -> Addr.t option;
}
