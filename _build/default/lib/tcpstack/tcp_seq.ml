let modulus = 1 lsl 32

let mask = modulus - 1

let half = 1 lsl 31

let add a n = (a + n) land mask

let diff a b =
  let d = (a - b) land mask in
  if d >= half then d - modulus else d

let lt a b = diff a b < 0

let leq a b = diff a b <= 0

let gt a b = diff a b > 0

let geq a b = diff a b >= 0

let between ~low ~x ~high = leq low x && lt x high

let max a b = if geq a b then a else b
