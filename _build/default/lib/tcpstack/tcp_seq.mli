(** 32-bit TCP sequence-number arithmetic.

    Sequence numbers live modulo 2^32 and compare by signed distance, so
    they order correctly across wrap-around (RFC 793 §3.3). *)

val modulus : int
(** 2^32. *)

val add : int -> int -> int
(** [add a n] is [a + n] mod 2^32 ([n] may be negative). *)

val diff : int -> int -> int
(** [diff a b] is the signed distance [a - b] in [\[-2^31, 2^31)]. *)

val lt : int -> int -> bool
(** [lt a b] iff [a] precedes [b] (signed distance negative). *)

val leq : int -> int -> bool

val gt : int -> int -> bool

val geq : int -> int -> bool

val between : low:int -> x:int -> high:int -> bool
(** [between ~low ~x ~high] iff [low <= x < high] in sequence space. *)

val max : int -> int -> int
(** The later of two sequence numbers. *)
