type err =
  | Econnrefused
  | Econnreset
  | Etimedout
  | Eaddrinuse
  | Einval
  | Enotconn
  | Eclosed
  | Eagain
  | Enobufs

let err_to_string = function
  | Econnrefused -> "ECONNREFUSED"
  | Econnreset -> "ECONNRESET"
  | Etimedout -> "ETIMEDOUT"
  | Eaddrinuse -> "EADDRINUSE"
  | Einval -> "EINVAL"
  | Enotconn -> "ENOTCONN"
  | Eclosed -> "ECLOSED"
  | Eagain -> "EAGAIN"
  | Enobufs -> "ENOBUFS"

let pp_err fmt e = Format.pp_print_string fmt (err_to_string e)

type payload = Data of string | Zeros of int

let payload_len = function Data s -> String.length s | Zeros n -> n

type recv_mode = [ `Copy | `Discard | `Auto ]

type events = { readable : bool; writable : bool; hup : bool }

let no_events = { readable = false; writable = false; hup = false }
