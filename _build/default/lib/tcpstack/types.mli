(** Shared socket-layer types: errors, payloads, readiness events. *)

type err =
  | Econnrefused
  | Econnreset
  | Etimedout
  | Eaddrinuse
  | Einval
  | Enotconn
  | Eclosed
  | Eagain
  | Enobufs

val err_to_string : err -> string

val pp_err : Format.formatter -> err -> unit

(** Application payloads. [Zeros n] is synthetic filler for performance
    experiments (content-free, O(1) space); [Data s] carries real bytes and
    is what correctness tests use end to end. *)
type payload = Data of string | Zeros of int

val payload_len : payload -> int

(** [`Copy] materializes received bytes; [`Discard] returns only the byte
    count (used by throughput workloads to avoid pointless copies); [`Auto]
    preserves the payload's own kind — real bytes come back as [Data],
    synthetic filler as [Zeros] — possibly returning less than available so
    a result is never mixed. *)
type recv_mode = [ `Copy | `Discard | `Auto ]

type events = { readable : bool; writable : bool; hup : bool }

val no_events : events
