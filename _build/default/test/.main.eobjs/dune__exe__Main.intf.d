test/main.mli:
