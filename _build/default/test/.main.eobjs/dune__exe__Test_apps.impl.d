test/test_apps.ml: Addr Alcotest Fabric List Mtcpstack Nic Nkapps Nkutil Option Sim Stack Tcpstack Types Vswitch World
