test/test_coreengine.ml: Alcotest Coreengine Hugepages List Nk_costs Nk_device Nkcore Nkutil Nqe Queue_set Sim
