test/test_determinism.ml: Addr Alcotest Coreengine Fabric Host Link Nkapps Nkcore Nkutil Nsm Option Sim Tcpstack Testbed Vm
