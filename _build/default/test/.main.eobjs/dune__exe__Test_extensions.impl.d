test/test_extensions.ml: Addr Alcotest Host List Nk_costs Nkapps Nkcore Nsm Option Sim Tcpstack Testbed Vm
