test/test_http.ml: Alcotest List Nkapps String Tcpstack
