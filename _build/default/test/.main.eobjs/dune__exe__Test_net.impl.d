test/test_net.ml: Addr Alcotest Array Fabric Float Link List Nic Nktrace Segment Sim Vswitch
