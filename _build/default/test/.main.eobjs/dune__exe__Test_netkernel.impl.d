test/test_netkernel.ml: Addr Alcotest Coreengine Host List Nkapps Nkcore Nsm Option Printf Sim Tcpstack Testbed Vm
