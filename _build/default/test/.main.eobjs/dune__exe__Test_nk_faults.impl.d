test/test_nk_faults.ml: Addr Alcotest Char Fabric Host Link Nkapps Nkcore Nkutil Nsm Option Sim String Tcpstack Testbed Vm
