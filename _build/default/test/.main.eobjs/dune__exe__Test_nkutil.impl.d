test/test_nkutil.ml: Alcotest Array Buffer Char Float Gen Int List Nkutil QCheck QCheck_alcotest Queue String
