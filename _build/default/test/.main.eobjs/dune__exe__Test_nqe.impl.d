test/test_nqe.ml: Addr Alcotest Bytes Hugepages List Nkcore Nqe Option QCheck QCheck_alcotest Tcpstack
