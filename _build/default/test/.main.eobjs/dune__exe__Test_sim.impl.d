test/test_sim.ml: Alcotest Float List Sim
