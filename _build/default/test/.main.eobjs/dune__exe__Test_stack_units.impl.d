test/test_stack_units.ml: Addr Alcotest List Segment Sim Socket_api Stack Tcpstack Types World
