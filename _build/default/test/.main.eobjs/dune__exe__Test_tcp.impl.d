test/test_tcp.ml: Addr Alcotest Buffer Cc_dctcp Char Conn_registry Fabric Int Link Nic Nkutil Segment Sim Socket_api Stack String Tcb Tcpstack Types World
