test/test_tcp_units.ml: Alcotest Array Cc Cc_bbr Cc_cubic Cc_dctcp Cc_reno Cc_vm Float Int Nkutil QCheck QCheck_alcotest Reassembly Rtt_estimator Segment Tcp_seq Tcpstack
