test/world.ml: Addr Conn_registry Direct_socket Fabric Nic Nkutil Sim Socket_api Stack String Tcpstack Types Vswitch
