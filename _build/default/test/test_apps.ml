(* Application-layer tests over the baseline stack: server/loadgen contracts,
   HTTP end-to-end, pacing, open-loop rates, and the direct mTCP API. *)

open Tcpstack
module E = Sim.Engine

let ip_server = 1
let ip_client = 2

let world () = World.create ()

let server_endpoint w = World.add_endpoint w ~name:"server" ~ip:ip_server

let client_endpoint w =
  World.add_endpoint w ~name:"client" ~ip:ip_client ~profile:Sim.Cost_profile.ideal
    ~cores:4

let fixed n = Nkapps.Proto.Fixed { request = n; response = n; keepalive = false }

let run_loadgen w (server : World.endpoint) (client : World.endpoint) ~proto ~total
    ~concurrency =
  (match
     Nkapps.Epoll_server.start ~engine:w.World.engine ~api:server.World.api
       (Nkapps.Epoll_server.config ~proto (Addr.make ip_server 80))
   with
  | Ok s -> ignore s
  | Error e -> Alcotest.failf "server: %s" (Types.err_to_string e));
  let lg = ref None in
  ignore
    (E.schedule w.World.engine ~delay:1e-3 (fun () ->
         lg :=
           Some
             (Nkapps.Loadgen.start ~engine:w.World.engine ~api:client.World.api
                {
                  Nkapps.Loadgen.server = Addr.make ip_server 80;
                  proto;
                  mode = Nkapps.Loadgen.Closed { concurrency; total = Some total; duration = None };
                  warmup = 0.0;
                })));
  World.run w ~until:60.0;
  Nkapps.Loadgen.results (Option.get !lg)

let loadgen_completes_exactly () =
  let w = world () in
  let server = server_endpoint w and client = client_endpoint w in
  let r = run_loadgen w server client ~proto:(fixed 64) ~total:1500 ~concurrency:32 in
  Alcotest.(check int) "completed" 1500 r.Nkapps.Loadgen.completed;
  Alcotest.(check int) "errors" 0 r.Nkapps.Loadgen.errors;
  Alcotest.(check int) "latency samples" 1500 (Nkutil.Histogram.count r.Nkapps.Loadgen.latency)

let server_counts_match () =
  let w = world () in
  let server = server_endpoint w and client = client_endpoint w in
  let srv =
    match
      Nkapps.Epoll_server.start ~engine:w.World.engine ~api:server.World.api
        (Nkapps.Epoll_server.config ~proto:(fixed 128) (Addr.make ip_server 81))
    with
    | Ok s -> s
    | Error e -> Alcotest.failf "server: %s" (Types.err_to_string e)
  in
  let lg = ref None in
  ignore
    (E.schedule w.World.engine ~delay:1e-3 (fun () ->
         lg :=
           Some
             (Nkapps.Loadgen.start ~engine:w.World.engine ~api:client.World.api
                {
                  Nkapps.Loadgen.server = Addr.make ip_server 81;
                  proto = fixed 128;
                  mode = Nkapps.Loadgen.Closed { concurrency = 8; total = Some 400; duration = None };
                  warmup = 0.0;
                })));
  World.run w ~until:30.0;
  let r = Nkapps.Loadgen.results (Option.get !lg) in
  let s = Nkapps.Epoll_server.stats srv in
  Alcotest.(check int) "client completed" 400 r.Nkapps.Loadgen.completed;
  Alcotest.(check int) "server served" 400 s.Nkapps.Epoll_server.requests;
  Alcotest.(check int) "server accepted" 400 s.Nkapps.Epoll_server.accepted;
  Alcotest.(check int) "request bytes" (400 * 128) s.Nkapps.Epoll_server.bytes_in

let http_end_to_end () =
  let w = world () in
  let server = server_endpoint w and client = client_endpoint w in
  let proto = Nkapps.Proto.Http { path = "/x.html"; response = 512; keepalive = false } in
  let r = run_loadgen w server client ~proto ~total:500 ~concurrency:16 in
  Alcotest.(check int) "completed" 500 r.Nkapps.Loadgen.completed;
  Alcotest.(check int) "errors" 0 r.Nkapps.Loadgen.errors

let open_loop_rate () =
  let w = world () in
  let server = server_endpoint w and client = client_endpoint w in
  (match
     Nkapps.Epoll_server.start ~engine:w.World.engine ~api:server.World.api
       (Nkapps.Epoll_server.config ~proto:(fixed 64) (Addr.make ip_server 80))
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "server: %s" (Types.err_to_string e));
  let lg =
    Nkapps.Loadgen.start ~engine:w.World.engine ~api:client.World.api
      {
        Nkapps.Loadgen.server = Addr.make ip_server 80;
        proto = fixed 64;
        mode = Nkapps.Loadgen.Open { rate_at = (fun _ -> 5000.0); duration = 1.0 };
        warmup = 0.0;
      }
  in
  World.run w ~until:2.0;
  let r = Nkapps.Loadgen.results lg in
  let c = r.Nkapps.Loadgen.completed in
  if c < 4500 || c > 5500 then Alcotest.failf "open loop rate off: %d completions" c

let paced_stream () =
  let w = world () in
  let server = server_endpoint w and client = client_endpoint w in
  let sink =
    match
      Nkapps.Stream.sink ~engine:w.World.engine ~api:server.World.api
        ~addr:(Addr.make ip_server 5001)
    with
    | Ok s -> s
    | Error e -> Alcotest.failf "sink: %s" (Types.err_to_string e)
  in
  ignore
    (E.schedule w.World.engine ~delay:1e-3 (fun () ->
         ignore
           (Nkapps.Stream.senders ~engine:w.World.engine ~api:client.World.api
              ~dst:(Addr.make ip_server 5001) ~streams:2 ~msg_size:16384 ~pace_gbps:2.0
              ~stop:1.0 ())));
  World.run w ~until:1.2;
  let gbps = Nkapps.Stream.sink_throughput_gbps sink in
  if gbps < 1.6 || gbps > 2.2 then Alcotest.failf "pacing off: %.2f Gbps" gbps

let kvstore_baseline () =
  let w = world () in
  let server = server_endpoint w and client = client_endpoint w in
  (match
     Nkapps.Kvstore.start ~engine:w.World.engine ~api:server.World.api
       ~addr:(Addr.make ip_server 6379)
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "kv: %s" (Types.err_to_string e));
  let got = ref None in
  Nkapps.Kvstore.Client.connect ~engine:w.World.engine ~api:client.World.api
    (Addr.make ip_server 6379) ~k:(fun r ->
      match r with
      | Error e -> Alcotest.failf "connect: %s" (Types.err_to_string e)
      | Ok conn ->
          Nkapps.Kvstore.Client.set conn ~key:"a b" ~value:"with spaces too" ~k:(fun _ ->
              Nkapps.Kvstore.Client.get conn ~key:"a" ~k:(fun r1 ->
                  (match r1 with
                  | Ok None -> () (* "a b" was parsed as key "a"? no: SET a b -> key "a" value "b ..." *)
                  | Ok (Some _) -> ()
                  | Error e -> Alcotest.failf "get: %s" e);
                  Nkapps.Kvstore.Client.get conn ~key:"a b" ~k:(fun _ ->
                      Nkapps.Kvstore.Client.set conn ~key:"k" ~value:"v" ~k:(fun _ ->
                          Nkapps.Kvstore.Client.get conn ~key:"k" ~k:(fun r ->
                              (match r with
                              | Ok v -> got := v
                              | Error e -> Alcotest.failf "get k: %s" e);
                              Nkapps.Kvstore.Client.close conn))))));
  World.run w ~until:5.0;
  Alcotest.(check (option string)) "kv roundtrip" (Some "v") !got

let mtcp_direct_api () =
  (* An "mTCP application" linked against the sharded library directly. *)
  let w = world () in
  let client = client_endpoint w in
  let nic = Nic.create w.World.engine ~name:"mtcp.nic" () in
  Fabric.attach w.World.fabric nic;
  Fabric.add_route w.World.fabric ip_server nic;
  let vswitch = Vswitch.create w.World.engine ~nic () in
  let cores = Sim.Cpu.Set.create w.World.engine ~name:"mtcp" ~n:4 () in
  let mtcp =
    Mtcpstack.Mtcp.create ~engine:w.World.engine ~name:"mtcp" ~cores ~vswitch
      ~registry:w.World.registry ~rng:(Nkutil.Rng.create ~seed:5) ()
  in
  Mtcpstack.Mtcp.add_ip mtcp ip_server;
  let api = Mtcpstack.Mtcp.api mtcp in
  (match
     Nkapps.Epoll_server.start ~engine:w.World.engine ~api
       (Nkapps.Epoll_server.config ~proto:(fixed 64) (Addr.make ip_server 80))
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "mtcp server: %s" (Types.err_to_string e));
  let lg = ref None in
  ignore
    (E.schedule w.World.engine ~delay:1e-3 (fun () ->
         lg :=
           Some
             (Nkapps.Loadgen.start ~engine:w.World.engine ~api:client.World.api
                {
                  Nkapps.Loadgen.server = Addr.make ip_server 80;
                  proto = fixed 64;
                  mode =
                    Nkapps.Loadgen.Closed { concurrency = 32; total = Some 2000; duration = None };
                  warmup = 0.0;
                })));
  World.run w ~until:30.0;
  let r = Nkapps.Loadgen.results (Option.get !lg) in
  Alcotest.(check int) "mtcp served all" 2000 r.Nkapps.Loadgen.completed;
  Alcotest.(check int) "no errors" 0 r.Nkapps.Loadgen.errors;
  (* all shards participated (RSS spread) *)
  let active =
    List.filter
      (fun (s : Stack.stats) -> s.Stack.conns_established > 0)
      (Mtcpstack.Mtcp.stats mtcp)
  in
  if List.length active < 3 then
    Alcotest.failf "poor RSS spread: only %d/4 shards active" (List.length active)

let tests =
  [
    Alcotest.test_case "loadgen completes exactly" `Quick loadgen_completes_exactly;
    Alcotest.test_case "server/client counters agree" `Quick server_counts_match;
    Alcotest.test_case "HTTP end to end" `Quick http_end_to_end;
    Alcotest.test_case "open-loop rate" `Quick open_loop_rate;
    Alcotest.test_case "paced stream" `Quick paced_stream;
    Alcotest.test_case "kv store over baseline" `Quick kvstore_baseline;
    Alcotest.test_case "mtcp direct API + RSS spread" `Quick mtcp_direct_api;
  ]
