(* Tests of the paper's extension features: on-the-fly NSM switching (§3),
   zerocopy NSM and SmartNIC-offloaded CoreEngine (§7.8). *)

open Nkcore
module Types = Tcpstack.Types

let ip_vm = 10
let ip_client = 20

let fixed64 = Nkapps.Proto.Fixed { request = 64; response = 64; keepalive = false }

let conns nsm =
  List.fold_left
    (fun acc (s : Tcpstack.Stack.stats) -> acc + s.Tcpstack.Stack.conns_established)
    0 (Nsm.stack_stats nsm)

let run_loadgen tb client_api ~addr ~total ~delay =
  let lg = ref None in
  ignore
    (Sim.Engine.schedule tb.Testbed.engine ~delay (fun () ->
         lg :=
           Some
             (Nkapps.Loadgen.start ~engine:tb.Testbed.engine ~api:client_api
                {
                  Nkapps.Loadgen.server = addr;
                  proto = fixed64;
                  mode = Nkapps.Loadgen.Closed { concurrency = 16; total = Some total; duration = None };
                  warmup = 0.0;
                })));
  lg

let switch_nsm_on_the_fly () =
  let tb = Testbed.create () in
  let hosta = Testbed.add_host tb ~name:"hostA" in
  let hostb = Testbed.add_host tb ~name:"hostB" in
  let nsm1 = Nsm.create_kernel hosta ~name:"nsm1" ~vcpus:1 () in
  let nsm2 = Nsm.create_kernel hosta ~name:"nsm2" ~vcpus:1 () in
  let vm = Vm.create_nk hosta ~name:"vm" ~vcpus:1 ~ips:[ ip_vm ] ~nsms:[ nsm1 ] () in
  let client =
    Vm.create_baseline hostb ~name:"client" ~vcpus:8 ~ips:[ ip_client ]
      ~profile:Sim.Cost_profile.ideal ()
  in
  (* Server on port 80 while attached to NSM1. *)
  (match
     Nkapps.Epoll_server.start ~engine:tb.Testbed.engine ~api:(Vm.api vm)
       (Nkapps.Epoll_server.config ~proto:fixed64 (Addr.make ip_vm 80))
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "server1: %s" (Types.err_to_string e));
  let lg1 = run_loadgen tb (Vm.api client) ~addr:(Addr.make ip_vm 80) ~total:500 ~delay:1e-3 in
  (* After the first batch, the operator live-migrates the VM to NSM2 and
     the tenant opens a new listener. *)
  ignore
    (Sim.Engine.schedule tb.Testbed.engine ~delay:0.5 (fun () ->
         Vm.attach_nsm vm nsm2;
         match
           Nkapps.Epoll_server.start ~engine:tb.Testbed.engine ~api:(Vm.api vm)
             (Nkapps.Epoll_server.config ~proto:fixed64 (Addr.make ip_vm 81))
         with
         | Ok _ -> ()
         | Error e -> Alcotest.failf "server2: %s" (Types.err_to_string e)));
  let lg2 = run_loadgen tb (Vm.api client) ~addr:(Addr.make ip_vm 81) ~total:500 ~delay:0.6 in
  Testbed.run tb ~until:30.0;
  Alcotest.(check int) "port 80 served" 500
    (Nkapps.Loadgen.results (Option.get !lg1)).Nkapps.Loadgen.completed;
  Alcotest.(check int) "port 81 served" 500
    (Nkapps.Loadgen.results (Option.get !lg2)).Nkapps.Loadgen.completed;
  if conns nsm1 < 500 then Alcotest.failf "nsm1 should carry batch 1 (%d)" (conns nsm1);
  if conns nsm2 < 500 then Alcotest.failf "nsm2 should carry batch 2 (%d)" (conns nsm2)

let nk_world ~costs =
  let tb = Testbed.create ~costs () in
  let hosta = Testbed.add_host tb ~name:"hostA" in
  let hostb = Testbed.add_host tb ~name:"hostB" in
  let nsm = Nsm.create_kernel hosta ~name:"nsm" ~vcpus:1 () in
  let vm = Vm.create_nk hosta ~name:"vm" ~vcpus:1 ~ips:[ ip_vm ] ~nsms:[ nsm ] () in
  let client =
    Vm.create_baseline hostb ~name:"client" ~vcpus:8 ~ips:[ ip_client ]
      ~profile:Sim.Cost_profile.ideal ()
  in
  (tb, hosta, vm, client)

let rps_run tb vm client ~total =
  (match
     Nkapps.Epoll_server.start ~engine:tb.Testbed.engine ~api:(Vm.api vm)
       (Nkapps.Epoll_server.config ~proto:fixed64 (Addr.make ip_vm 80))
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "server: %s" (Types.err_to_string e));
  let lg = run_loadgen tb (Vm.api client) ~addr:(Addr.make ip_vm 80) ~total ~delay:1e-3 in
  Testbed.run tb ~until:30.0;
  Nkapps.Loadgen.results (Option.get !lg)

let zerocopy_reduces_nsm_cycles () =
  let tput costs =
    let tb, hosta, vm, client = nk_world ~costs in
    ignore hosta;
    let sink =
      match
        Nkapps.Stream.sink ~engine:tb.Testbed.engine ~api:(Vm.api client)
          ~addr:(Addr.make ip_client 5001)
      with
      | Ok s -> s
      | Error e -> Alcotest.failf "sink: %s" (Types.err_to_string e)
    in
    ignore
      (Sim.Engine.schedule tb.Testbed.engine ~delay:1e-3 (fun () ->
           ignore
             (Nkapps.Stream.senders ~engine:tb.Testbed.engine ~api:(Vm.api vm)
                ~dst:(Addr.make ip_client 5001) ~streams:8 ~msg_size:16384 ~stop:0.5 ())));
    Testbed.run tb ~until:0.6;
    Nkapps.Stream.sink_throughput_gbps sink
  in
  let base = tput Nk_costs.default in
  let zc = tput (Nk_costs.zerocopy Nk_costs.default) in
  if zc < base *. 1.02 then
    Alcotest.failf "zerocopy should raise 1-core NSM send throughput: %.1f vs %.1f" zc base

let ce_offload_saves_ce_cycles () =
  let measure costs =
    let tb, hosta, vm, client = nk_world ~costs in
    let r = rps_run tb vm client ~total:2000 in
    Alcotest.(check int) "served" 2000 r.Nkapps.Loadgen.completed;
    Sim.Cpu.busy_cycles (Host.ce_core hosta)
  in
  let sw = measure Nk_costs.default in
  let hw = measure (Nk_costs.ce_offloaded Nk_costs.default) in
  if hw > sw /. 3.0 then
    Alcotest.failf "offload should slash CE cycles: %.0f vs %.0f" hw sw

let tests =
  [
    Alcotest.test_case "switch NSM on the fly" `Quick switch_nsm_on_the_fly;
    Alcotest.test_case "zerocopy NSM raises throughput" `Quick zerocopy_reduces_nsm_cycles;
    Alcotest.test_case "SmartNIC CE offload saves cycles" `Quick ce_offload_saves_ce_cycles;
  ]
