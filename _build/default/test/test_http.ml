(* HTTP codec unit tests. *)

module P = Nkapps.Http.Parser
module Types = Tcpstack.Types

let feed_all p payloads = List.concat_map (P.feed p) payloads

let simple_request () =
  let p = P.create () in
  let raw = Nkapps.Http.request ~path:"/index.html" () in
  match feed_all p [ Types.Data raw ] with
  | [ msg ] ->
      Alcotest.(check string) "start line" "GET /index.html HTTP/1.1" msg.P.start_line;
      Alcotest.(check int) "no body" 0 msg.P.content_length;
      Alcotest.(check bool) "non-keepalive" false msg.P.keepalive;
      Alcotest.(check (option string)) "host header" (Some "netkernel.test")
        (Nkapps.Http.header msg "Host")
  | other -> Alcotest.failf "expected 1 message, got %d" (List.length other)

let split_across_chunks () =
  let p = P.create () in
  let raw = Nkapps.Http.request ~path:"/a" ~keepalive:true () in
  let n = String.length raw in
  let one = String.sub raw 0 (n / 2) and two = String.sub raw (n / 2) (n - (n / 2)) in
  (match P.feed p (Types.Data one) with
  | [] -> ()
  | _ -> Alcotest.fail "half a request must not complete");
  match P.feed p (Types.Data two) with
  | [ msg ] -> Alcotest.(check bool) "keepalive" true msg.P.keepalive
  | _ -> Alcotest.fail "second half completes the request"

let response_with_synthetic_body () =
  let p = P.create () in
  let head = Nkapps.Http.response_header ~content_length:1000 () in
  (match P.feed p (Types.Data head) with
  | [] -> ()
  | _ -> Alcotest.fail "headers alone must not complete");
  (match P.feed p (Types.Zeros 400) with
  | [] -> ()
  | _ -> Alcotest.fail "partial body must not complete");
  Alcotest.(check bool) "in body" true (P.in_body p);
  Alcotest.(check int) "remaining" 600 (P.body_remaining p);
  match P.feed p (Types.Zeros 600) with
  | [ msg ] ->
      Alcotest.(check int) "content length" 1000 msg.P.content_length;
      Alcotest.(check string) "status line" "HTTP/1.1 200 OK" msg.P.start_line
  | _ -> Alcotest.fail "body completion yields the message"

let pipelined_messages () =
  let p = P.create () in
  let r1 = Nkapps.Http.request ~path:"/1" ~keepalive:true () in
  let r2 = Nkapps.Http.request ~path:"/2" ~keepalive:true () in
  match P.feed p (Types.Data (r1 ^ r2)) with
  | [ a; b ] ->
      Alcotest.(check string) "first" "GET /1 HTTP/1.1" a.P.start_line;
      Alcotest.(check string) "second" "GET /2 HTTP/1.1" b.P.start_line
  | other -> Alcotest.failf "expected 2 messages, got %d" (List.length other)

let body_then_next_header () =
  let p = P.create () in
  let head = Nkapps.Http.response_header ~content_length:10 ~keepalive:true () in
  let next = Nkapps.Http.response_header ~content_length:0 ~keepalive:false () in
  (* body bytes arrive as real data glued to the next response *)
  let msgs = feed_all p [ Types.Data (head ^ String.make 10 'b' ^ next) ] in
  match msgs with
  | [ a; b ] ->
      Alcotest.(check int) "first body" 10 a.P.content_length;
      Alcotest.(check bool) "second non-keepalive" false b.P.keepalive
  | other -> Alcotest.failf "expected 2 messages, got %d" (List.length other)

let malformed_raises () =
  let p = P.create () in
  match P.feed p (Types.Data "not http at all\r\nbroken line\r\n\r\n") with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "malformed headers must raise"

let zeros_in_headers_raise () =
  let p = P.create () in
  match P.feed p (Types.Zeros 64) with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "synthetic bytes cannot form headers"

let tests =
  [
    Alcotest.test_case "simple request" `Quick simple_request;
    Alcotest.test_case "split across chunks" `Quick split_across_chunks;
    Alcotest.test_case "response with synthetic body" `Quick response_with_synthetic_body;
    Alcotest.test_case "pipelined messages" `Quick pipelined_messages;
    Alcotest.test_case "body then next header" `Quick body_then_next_header;
    Alcotest.test_case "malformed raises" `Quick malformed_raises;
    Alcotest.test_case "zeros in headers raise" `Quick zeros_in_headers_raise;
  ]
