(* Network element tests: segments, links, fabric, vswitch, trace gen. *)

module E = Sim.Engine

let seg flow ~len = Segment.make ~flow ~seq:0 ~ack:0 ~len ()

let flow a b = Addr.Flow.make ~src:(Addr.make a 1) ~dst:(Addr.make b 2)

let segment_framing () =
  let f = flow 1 2 in
  let one = seg f ~len:100 in
  Alcotest.(check int) "one packet" 1 (Segment.packets one);
  Alcotest.(check int) "wire bytes" (100 + Segment.header_bytes) (Segment.wire_bytes one);
  let big = seg f ~len:(4 * Segment.mss) in
  Alcotest.(check int) "segmented" 4 (Segment.packets big);
  let ack = seg f ~len:0 in
  Alcotest.(check int) "pure ack still one packet" 1 (Segment.packets ack);
  let s = Segment.make ~flow:f ~seq:10 ~ack:0 ~syn:true ~len:5 ~fin:true () in
  Alcotest.(check int) "seq space covers syn+data+fin" 17 (Segment.seq_end s)

let link_serialization () =
  let e = E.create () in
  (* 1 Mbps so timings are easy: 1250 bytes ~ 10 ms *)
  let link = Link.create e ~rate_bps:1e6 ~delay:0.005 () in
  let arrivals = ref [] in
  Link.set_receiver link (fun _ -> arrivals := E.now e :: !arrivals);
  let f = flow 1 2 in
  let payload = 1250 - Segment.header_bytes in
  ignore (Link.send link (seg f ~len:payload));
  ignore (Link.send link (seg f ~len:payload));
  E.run e;
  match List.rev !arrivals with
  | [ t1; t2 ] ->
      if Float.abs (t1 -. 0.015) > 1e-6 then Alcotest.failf "first at %f" t1;
      if Float.abs (t2 -. 0.025) > 1e-6 then Alcotest.failf "second serialized at %f" t2
  | _ -> Alcotest.fail "expected two arrivals"

let link_drop_tail () =
  let e = E.create () in
  let link = Link.create e ~rate_bps:1e6 ~delay:0.0 ~buffer_bytes:3000 () in
  Link.set_receiver link (fun _ -> ());
  let f = flow 1 2 in
  let ok1 = Link.send link (seg f ~len:1200) in
  let ok2 = Link.send link (seg f ~len:1200) in
  let ok3 = Link.send link (seg f ~len:1200) in
  Alcotest.(check (list bool)) "third tail-dropped" [ true; true; false ] [ ok1; ok2; ok3 ];
  Alcotest.(check int) "drop counted" 1 (Link.drops link)

let link_ecn_marking () =
  let e = E.create () in
  (* RED-style marking ramps from the threshold to certainty at twice the
     threshold; queue far past that to make the assertion deterministic. *)
  let link = Link.create e ~rate_bps:1e6 ~delay:0.0 ~ecn_threshold_bytes:100 () in
  Link.set_receiver link (fun _ -> ());
  let f = flow 1 2 in
  let s1 = seg f ~len:1200 in
  let s2 = seg f ~len:1200 in
  ignore (Link.send link s1);
  ignore (Link.send link s2);
  Alcotest.(check bool) "first unmarked (queue was empty)" false s1.Segment.ce;
  Alcotest.(check bool) "deep queue marks with certainty" true s2.Segment.ce;
  Alcotest.(check int) "mark counted" 1 (Link.ecn_marks link)

let fabric_routing () =
  let e = E.create () in
  let fabric = Fabric.create e ~rate_bps:1e9 ~delay:1e-3 () in
  let nic_a = Nic.create e ~name:"a" () in
  let nic_b = Nic.create e ~name:"b" () in
  Fabric.attach fabric nic_a;
  Fabric.attach fabric nic_b;
  Fabric.add_route fabric 1 nic_a;
  Fabric.add_route fabric 2 nic_b;
  let got_b = ref 0 and got_a = ref 0 in
  Nic.set_rx_handler nic_b (fun _ -> incr got_b);
  Nic.set_rx_handler nic_a (fun _ -> incr got_a);
  ignore (Nic.transmit nic_a (seg (flow 1 2) ~len:100));
  ignore (Nic.transmit nic_b (seg (flow 2 1) ~len:100));
  ignore (Nic.transmit nic_a (seg (flow 1 99) ~len:100));
  E.run e;
  Alcotest.(check int) "b received" 1 !got_b;
  Alcotest.(check int) "a received" 1 !got_a;
  Alcotest.(check int) "unrouted dropped" 1 (Fabric.unrouted fabric)

let vswitch_demux () =
  let e = E.create () in
  let nic = Nic.create e ~name:"n" () in
  let vs = Vswitch.create e ~nic () in
  let got_ip = ref 0 and got_ep = ref 0 in
  Vswitch.register_ip vs 5 (fun _ -> incr got_ip);
  Vswitch.register_endpoint vs (Addr.make 5 80) (fun _ -> incr got_ep);
  Vswitch.input vs (seg (flow 1 5) ~len:0);
  (* endpoint table wins over the ip table *)
  Vswitch.input vs (Segment.make ~flow:(Addr.Flow.make ~src:(Addr.make 1 9) ~dst:(Addr.make 5 80)) ~seq:0 ~ack:0 ());
  Vswitch.input vs (seg (flow 1 7) ~len:0);
  Alcotest.(check int) "ip route" 1 !got_ip;
  Alcotest.(check int) "endpoint route" 1 !got_ep;
  Alcotest.(check int) "unclaimed counted" 1 (Vswitch.unclaimed vs)

let vswitch_local_shortcut () =
  let e = E.create () in
  let nic = Nic.create e ~name:"n" () in
  let vs = Vswitch.create e ~nic () in
  let got = ref 0 in
  Vswitch.register_ip vs 5 (fun _ -> incr got);
  Vswitch.output vs (seg (flow 1 5) ~len:100);
  E.run e;
  Alcotest.(check int) "delivered locally" 1 !got;
  Alcotest.(check int) "never touched the pNIC" 0 (Nic.bytes_tx nic)

(* ---- trace generator ------------------------------------------------------ *)

let trace_determinism () =
  let a = Nktrace.Traffic.generate_fleet ~seed:5 ~n:4 () in
  let b = Nktrace.Traffic.generate_fleet ~seed:5 ~n:4 () in
  List.iter2
    (fun (x : Nktrace.Traffic.t) (y : Nktrace.Traffic.t) ->
      Alcotest.(check bool) "same series" true (x.Nktrace.Traffic.rates = y.Nktrace.Traffic.rates))
    a b

let trace_burstiness () =
  let fleet = Nktrace.Traffic.generate_fleet ~seed:2018 ~n:32 () in
  List.iter
    (fun (t : Nktrace.Traffic.t) ->
      if Nktrace.Traffic.peak_to_mean t < 1.5 then
        Alcotest.failf "AG %d not bursty enough: %.2f" t.Nktrace.Traffic.ag_id
          (Nktrace.Traffic.peak_to_mean t);
      Array.iter (fun r -> if r < 0.0 then Alcotest.fail "negative rate") t.Nktrace.Traffic.rates)
    fleet

let trace_interpolation () =
  let t =
    { Nktrace.Traffic.ag_id = 0; rates = [| 60.0; 120.0 |]; peak = 120.0; mean = 90.0 }
  in
  if Float.abs (Nktrace.Traffic.rate_at t 0.0 -. 60.0) > 1e-9 then Alcotest.fail "t=0";
  if Float.abs (Nktrace.Traffic.rate_at t 30.0 -. 90.0) > 1e-9 then Alcotest.fail "mid";
  if Float.abs (Nktrace.Traffic.rate_at t 600.0 -. 120.0) > 1e-9 then Alcotest.fail "clamp"

let agpack_arithmetic () =
  let fleet = Nktrace.Traffic.generate_fleet ~seed:1 ~n:29 () in
  let r =
    Nktrace.Agpack.pack ~traces:fleet ~machine_cores:32 ~baseline_cores_per_ag:2
      ~nsm_cores:2 ~ce_cores:1 ~nsm_capacity_rps_per_core:1e12
  in
  Alcotest.(check int) "baseline 16" 16 r.Nktrace.Agpack.baseline_ags;
  Alcotest.(check int) "netkernel 29" 29 r.Nktrace.Agpack.netkernel_ags;
  if r.Nktrace.Agpack.nsm_worst_utilization > 1e-3 then
    Alcotest.fail "infinite capacity -> ~0 utilization";
  if Float.abs (r.Nktrace.Agpack.core_saving_fraction -. (1.0 -. (16.0 /. 29.0))) > 1e-9
  then Alcotest.fail "saving fraction"

let trace_csv_roundtrip () =
  let fleet = Nktrace.Traffic.generate_fleet ~seed:3 ~n:4 () in
  match Nktrace.Trace_io.of_csv (Nktrace.Trace_io.to_csv fleet) with
  | Error e -> Alcotest.fail e
  | Ok back ->
      Alcotest.(check int) "same count" (List.length fleet) (List.length back);
      List.iter2
        (fun (a : Nktrace.Traffic.t) (b : Nktrace.Traffic.t) ->
          Alcotest.(check int) "id" a.Nktrace.Traffic.ag_id b.Nktrace.Traffic.ag_id;
          Array.iteri
            (fun i r ->
              if Float.abs (r -. b.Nktrace.Traffic.rates.(i)) > 0.001 then
                Alcotest.failf "rate drift at minute %d" i)
            a.Nktrace.Traffic.rates)
        fleet back

let trace_csv_malformed () =
  (match Nktrace.Trace_io.of_csv "ag_id,minute,rps\n1,2\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing column must fail");
  match Nktrace.Trace_io.of_csv "ag_id,minute,rps\n1,-3,5.0\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "negative minute must fail"

let tests =
  [
    Alcotest.test_case "segment framing" `Quick segment_framing;
    Alcotest.test_case "link serialization" `Quick link_serialization;
    Alcotest.test_case "link drop tail" `Quick link_drop_tail;
    Alcotest.test_case "link ECN marking" `Quick link_ecn_marking;
    Alcotest.test_case "fabric routing" `Quick fabric_routing;
    Alcotest.test_case "vswitch demux" `Quick vswitch_demux;
    Alcotest.test_case "vswitch local shortcut" `Quick vswitch_local_shortcut;
    Alcotest.test_case "trace determinism" `Quick trace_determinism;
    Alcotest.test_case "trace burstiness" `Quick trace_burstiness;
    Alcotest.test_case "trace interpolation" `Quick trace_interpolation;
    Alcotest.test_case "agpack arithmetic" `Quick agpack_arithmetic;
    Alcotest.test_case "trace csv roundtrip" `Quick trace_csv_roundtrip;
    Alcotest.test_case "trace csv malformed" `Quick trace_csv_malformed;
  ]
