(* Fault injection on the NetKernel path: random wire loss between hosts
   while real data crosses GuestLib -> hugepages -> NQEs -> NSM stack ->
   wire. Data integrity must survive retransmissions end to end. *)

open Nkcore
module Types = Tcpstack.Types
module E = Sim.Engine

let checksum s =
  let h = ref 5381 in
  String.iter (fun c -> h := ((!h lsl 5) + !h + Char.code c) land 0x3FFFFFFF) s;
  !h

let lossy_kv_bulk () =
  let tb = Testbed.create () in
  let hosta = Testbed.add_host tb ~name:"hostA" in
  let hostb = Testbed.add_host tb ~name:"hostB" in
  let nsm = Nsm.create_kernel hosta ~name:"nsm" ~vcpus:1 () in
  let vm = Vm.create_nk hosta ~name:"vm" ~vcpus:1 ~ips:[ 10 ] ~nsms:[ nsm ] () in
  let client =
    Vm.create_baseline hostb ~name:"client" ~vcpus:4 ~ips:[ 20 ]
      ~profile:Sim.Cost_profile.ideal ()
  in
  (* 1% loss in both directions across the fabric. *)
  (match Fabric.port_to tb.Testbed.fabric (Host.nic hosta) with
  | Some l -> Link.set_random_loss l ~rng:(Nkutil.Rng.create ~seed:3) ~rate:0.01
  | None -> Alcotest.fail "no downlink A");
  (match Fabric.port_to tb.Testbed.fabric (Host.nic hostb) with
  | Some l -> Link.set_random_loss l ~rng:(Nkutil.Rng.create ~seed:4) ~rate:0.01
  | None -> Alcotest.fail "no downlink B");
  let addr = Addr.make 10 6379 in
  (match Nkapps.Kvstore.start ~engine:tb.Testbed.engine ~api:(Vm.api vm) ~addr with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "kv: %s" (Types.err_to_string e));
  (* A value big enough to span many segments, with non-trivial content. *)
  let big = String.init 300_000 (fun i -> Char.chr (33 + ((i * 7) mod 90))) in
  let got = ref None in
  ignore
    (E.schedule tb.Testbed.engine ~delay:1e-3 (fun () ->
         Nkapps.Kvstore.Client.connect ~engine:tb.Testbed.engine ~api:(Vm.api client) addr
           ~k:(fun r ->
             match r with
             | Error e -> Alcotest.failf "connect: %s" (Types.err_to_string e)
             | Ok conn ->
                 Nkapps.Kvstore.Client.set conn ~key:"blob" ~value:big ~k:(fun r ->
                     (match r with
                     | Ok () -> ()
                     | Error e -> Alcotest.failf "set: %s" e);
                     Nkapps.Kvstore.Client.get conn ~key:"blob" ~k:(fun r ->
                         (match r with
                         | Ok v -> got := v
                         | Error e -> Alcotest.failf "get: %s" e);
                         Nkapps.Kvstore.Client.close conn)))));
  Testbed.run tb ~until:60.0;
  match !got with
  | Some v ->
      Alcotest.(check int) "length survived loss" (String.length big) (String.length v);
      Alcotest.(check int) "content survived loss" (checksum big) (checksum v)
  | None -> Alcotest.fail "bulk value never came back"

let loadgen_under_loss () =
  (* Short connections under wire loss: every request still completes
     (latencies include retransmission waits). *)
  let tb = Testbed.create () in
  let hosta = Testbed.add_host tb ~name:"hostA" in
  let hostb = Testbed.add_host tb ~name:"hostB" in
  let nsm = Nsm.create_kernel hosta ~name:"nsm" ~vcpus:1 () in
  let vm = Vm.create_nk hosta ~name:"vm" ~vcpus:1 ~ips:[ 10 ] ~nsms:[ nsm ] () in
  let client =
    Vm.create_baseline hostb ~name:"client" ~vcpus:4 ~ips:[ 20 ]
      ~profile:Sim.Cost_profile.ideal ()
  in
  (match Fabric.port_to tb.Testbed.fabric (Host.nic hosta) with
  | Some l -> Link.set_random_loss l ~rng:(Nkutil.Rng.create ~seed:9) ~rate:0.005
  | None -> Alcotest.fail "no downlink");
  let proto = Nkapps.Proto.Fixed { request = 64; response = 64; keepalive = false } in
  (match
     Nkapps.Epoll_server.start ~engine:tb.Testbed.engine ~api:(Vm.api vm)
       (Nkapps.Epoll_server.config ~proto (Addr.make 10 80))
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "server: %s" (Types.err_to_string e));
  let lg = ref None in
  ignore
    (E.schedule tb.Testbed.engine ~delay:1e-3 (fun () ->
         lg :=
           Some
             (Nkapps.Loadgen.start ~engine:tb.Testbed.engine ~api:(Vm.api client)
                {
                  Nkapps.Loadgen.server = Addr.make 10 80;
                  proto;
                  mode =
                    Nkapps.Loadgen.Closed { concurrency = 8; total = Some 400; duration = None };
                  warmup = 0.0;
                })));
  Testbed.run tb ~until:120.0;
  let r = Nkapps.Loadgen.results (Option.get !lg) in
  Alcotest.(check int) "all requests completed despite loss" 400
    r.Nkapps.Loadgen.completed;
  Alcotest.(check int) "no errors" 0 r.Nkapps.Loadgen.errors

let tests =
  [
    Alcotest.test_case "kv bulk integrity under 1% loss" `Quick lossy_kv_bulk;
    Alcotest.test_case "loadgen completes under loss" `Quick loadgen_under_loss;
  ]
