(* Engine, CPU model and pressure estimator tests. *)

module E = Sim.Engine
module Cpu = Sim.Cpu

let engine_ordering () =
  let e = E.create () in
  let log = ref [] in
  ignore (E.schedule e ~delay:0.3 (fun () -> log := "c" :: !log));
  ignore (E.schedule e ~delay:0.1 (fun () -> log := "a" :: !log));
  ignore (E.schedule e ~delay:0.2 (fun () -> log := "b" :: !log));
  E.run e;
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ] (List.rev !log)

let engine_same_time_fifo () =
  let e = E.create () in
  let log = ref [] in
  for i = 1 to 5 do
    ignore (E.schedule e ~delay:0.1 (fun () -> log := i :: !log))
  done;
  E.run e;
  Alcotest.(check (list int)) "insertion order at same time" [ 1; 2; 3; 4; 5 ]
    (List.rev !log)

let engine_cancel () =
  let e = E.create () in
  let fired = ref false in
  let h = E.schedule e ~delay:0.1 (fun () -> fired := true) in
  E.cancel h;
  E.run e;
  Alcotest.(check bool) "cancelled event must not run" false !fired

let engine_until () =
  let e = E.create () in
  let fired = ref 0 in
  ignore (E.schedule e ~delay:1.0 (fun () -> incr fired));
  ignore (E.schedule e ~delay:3.0 (fun () -> incr fired));
  E.run e ~until:2.0;
  Alcotest.(check int) "only events before horizon" 1 !fired;
  if E.now e < 2.0 then Alcotest.fail "clock must reach the horizon"

let engine_nested_schedule () =
  let e = E.create () in
  let depth = ref 0 in
  let rec go n = if n > 0 then ignore (E.schedule e ~delay:0.01 (fun () -> incr depth; go (n - 1))) in
  go 10;
  E.run e;
  Alcotest.(check int) "chain of nested events" 10 !depth

let cpu_fifo_and_accounting () =
  let e = E.create () in
  let core = Cpu.create e ~freq_ghz:1.0 ~name:"c0" () in
  let finish_times = ref [] in
  (* 1 GHz -> 1e9 cycles/s; 1e6 cycles = 1 ms *)
  Cpu.exec core ~cycles:1e6 (fun () -> finish_times := E.now e :: !finish_times);
  Cpu.exec core ~cycles:2e6 (fun () -> finish_times := E.now e :: !finish_times);
  E.run e;
  (match List.rev !finish_times with
  | [ t1; t2 ] ->
      if Float.abs (t1 -. 0.001) > 1e-9 then Alcotest.failf "first at %f" t1;
      if Float.abs (t2 -. 0.003) > 1e-9 then Alcotest.failf "second queued: %f" t2
  | _ -> Alcotest.fail "expected two completions");
  if Float.abs (Cpu.busy_cycles core -. 3e6) > 1.0 then Alcotest.fail "busy cycles";
  if Float.abs (Cpu.busy_seconds core -. 0.003) > 1e-9 then Alcotest.fail "busy seconds"

let cpu_set_pick_stable () =
  let e = E.create () in
  let set = Cpu.Set.create e ~name:"s" ~n:4 () in
  let a = Cpu.Set.pick set ~hash:12345 in
  let b = Cpu.Set.pick set ~hash:12345 in
  if not (a == b) then Alcotest.fail "pick must be deterministic"

let pressure_decays () =
  let e = E.create () in
  let p = Sim.Pressure.create e ~tau:0.01 () in
  Sim.Pressure.observe p ~bits:1e6;
  let r0 = Sim.Pressure.rate_bps p in
  ignore (E.schedule e ~delay:0.05 (fun () -> ()));
  E.run e;
  let r1 = Sim.Pressure.rate_bps p in
  if not (r0 > 0.0 && r1 < r0 /. 100.0) then
    Alcotest.failf "pressure must decay: %f -> %f" r0 r1

let pressure_copy_cost_grows () =
  let e = E.create () in
  let p = Sim.Pressure.create e () in
  let idle = Sim.Pressure.hugepage_copy_cost p ~base:0.02 ~contention:0.2 in
  (* Push the estimate to ~100 Gb/s. *)
  Sim.Pressure.observe p ~bits:1e9;
  let busy = Sim.Pressure.hugepage_copy_cost p ~base:0.02 ~contention:0.2 in
  if busy <= idle then Alcotest.fail "cost must grow with pressure"

let contention_mult () =
  let m = Sim.Cost_profile.contention_mult ~factor:0.1 ~cores:4 in
  if Float.abs (m -. 1.3) > 1e-9 then Alcotest.failf "mult %f" m;
  let one = Sim.Cost_profile.contention_mult ~factor:0.5 ~cores:1 in
  if Float.abs (one -. 1.0) > 1e-9 then Alcotest.fail "single core has no contention"

let tests =
  [
    Alcotest.test_case "event ordering" `Quick engine_ordering;
    Alcotest.test_case "same-time FIFO" `Quick engine_same_time_fifo;
    Alcotest.test_case "cancellation" `Quick engine_cancel;
    Alcotest.test_case "run until horizon" `Quick engine_until;
    Alcotest.test_case "nested scheduling" `Quick engine_nested_schedule;
    Alcotest.test_case "cpu FIFO + accounting" `Quick cpu_fifo_and_accounting;
    Alcotest.test_case "cpu set pick stable" `Quick cpu_set_pick_stable;
    Alcotest.test_case "pressure decays" `Quick pressure_decays;
    Alcotest.test_case "pressure raises copy cost" `Quick pressure_copy_cost_grows;
    Alcotest.test_case "contention multiplier" `Quick contention_mult;
  ]
