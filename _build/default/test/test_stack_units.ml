(* Stack-level unit tests: binding, port allocation, listener lifecycle,
   RST behaviour, zero-window persist probing, TIME_WAIT reuse. *)

open Tcpstack
module E = Sim.Engine

let ip_a = 1
let ip_b = 2

let ok what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" what (Types.err_to_string e)

let bind_conflicts () =
  let w = World.create () in
  let a = World.add_endpoint w ~name:"a" ~ip:ip_a in
  let s1 = ok "socket" (a.World.api.Socket_api.socket ()) in
  ok "bind" (a.World.api.Socket_api.bind s1 (Addr.make ip_a 80));
  ok "listen" (a.World.api.Socket_api.listen s1 ~backlog:8);
  let s2 = ok "socket" (a.World.api.Socket_api.socket ()) in
  (match a.World.api.Socket_api.bind s2 (Addr.make ip_a 80) with
  | Error Types.Eaddrinuse -> ()
  | Error e -> Alcotest.failf "expected EADDRINUSE, got %s" (Types.err_to_string e)
  | Ok () -> (
      (* bind may record lazily; the listen must then fail *)
      match a.World.api.Socket_api.listen s2 ~backlog:8 with
      | Error Types.Eaddrinuse -> ()
      | Error e -> Alcotest.failf "expected EADDRINUSE at listen, got %s" (Types.err_to_string e)
      | Ok () -> Alcotest.fail "two listeners on one endpoint"));
  (* a different port is fine *)
  let s3 = ok "socket" (a.World.api.Socket_api.socket ()) in
  ok "bind other port" (a.World.api.Socket_api.bind s3 (Addr.make ip_a 81));
  ok "listen other port" (a.World.api.Socket_api.listen s3 ~backlog:8)

let listener_close_fails_waiters () =
  let w = World.create () in
  let a = World.add_endpoint w ~name:"a" ~ip:ip_a in
  let ls = ok "socket" (a.World.api.Socket_api.socket ()) in
  ok "bind" (a.World.api.Socket_api.bind ls (Addr.make ip_a 80));
  ok "listen" (a.World.api.Socket_api.listen ls ~backlog:8);
  let result = ref None in
  a.World.api.Socket_api.accept ls ~k:(fun r -> result := Some r);
  a.World.api.Socket_api.close ls;
  World.run w ~until:0.1;
  match !result with
  | Some (Error Types.Eclosed) -> ()
  | Some (Error e) -> Alcotest.failf "expected ECLOSED, got %s" (Types.err_to_string e)
  | Some (Ok _) -> Alcotest.fail "accept succeeded on a closed listener"
  | None -> Alcotest.fail "accept waiter never failed"

let rst_for_unknown_flow () =
  let w = World.create () in
  let b = World.add_endpoint w ~name:"b" ~ip:ip_b in
  (* A stray non-SYN segment to a port with no connection gets an RST. *)
  let stray =
    Segment.make
      ~flow:(Addr.Flow.make ~src:(Addr.make ip_a 5555) ~dst:(Addr.make ip_b 4242))
      ~seq:1000 ~ack:0 ~ack_flag:true ~len:100 ()
  in
  Stack.input b.World.stack stray;
  World.run w ~until:0.1;
  Alcotest.(check int) "RST emitted" 1 (Stack.stats b.World.stack).Stack.rst_tx

let ephemeral_ports_recycle () =
  let w = World.create () in
  let a = World.add_endpoint w ~name:"client" ~ip:ip_a ~profile:Sim.Cost_profile.ideal in
  let b = World.add_endpoint w ~name:"server" ~ip:ip_b ~profile:Sim.Cost_profile.ideal in
  let ls = ok "socket" (b.World.api.Socket_api.socket ()) in
  ok "bind" (b.World.api.Socket_api.bind ls (Addr.make ip_b 80));
  ok "listen" (b.World.api.Socket_api.listen ls ~backlog:64);
  let rec accept_loop () =
    b.World.api.Socket_api.accept ls ~k:(fun r ->
        match r with
        | Error _ -> ()
        | Ok (fd, _) ->
            b.World.api.Socket_api.close fd;
            accept_loop ())
  in
  accept_loop ();
  (* Far more sequential connections than a single ip could hold open at
     once: ports must be recycled after TIME_WAIT-free client closes. *)
  let completed = ref 0 in
  let total = 2000 in
  let rec one () =
    if !completed < total then begin
      let fd = ok "socket" (a.World.api.Socket_api.socket ()) in
      a.World.api.Socket_api.connect fd (Addr.make ip_b 80) ~k:(fun r ->
          ok "connect" r;
          a.World.api.Socket_api.close fd;
          incr completed;
          ignore (E.schedule w.World.engine ~delay:1e-5 one))
    end
  in
  one ();
  World.run w ~until:60.0;
  Alcotest.(check int) "all sequential connects succeeded" total !completed

let zero_window_persist () =
  (* The receiver never reads: the sender must fill the 256KB window, stall,
     and keep the connection alive with persist probes rather than dying. *)
  let w = World.create () in
  let a = World.add_endpoint w ~name:"a" ~ip:ip_a ~profile:Sim.Cost_profile.ideal in
  let b = World.add_endpoint w ~name:"b" ~ip:ip_b ~profile:Sim.Cost_profile.ideal in
  let ls = ok "socket" (b.World.api.Socket_api.socket ()) in
  ok "bind" (b.World.api.Socket_api.bind ls (Addr.make ip_b 80));
  ok "listen" (b.World.api.Socket_api.listen ls ~backlog:8);
  b.World.api.Socket_api.accept ls ~k:(fun r -> ignore (ok "accept" r));
  let sent = ref 0 and still_alive = ref false in
  let fd = ok "socket" (a.World.api.Socket_api.socket ()) in
  a.World.api.Socket_api.connect fd (Addr.make ip_b 80) ~k:(fun r ->
      ok "connect" r;
      let rec pump () =
        a.World.api.Socket_api.send fd (Types.Zeros 65536) ~k:(fun r ->
            match r with
            | Ok n ->
                sent := !sent + n;
                pump ()
            | Error Types.Eagain ->
                (* buffer full; try again much later *)
                ignore (E.schedule w.World.engine ~delay:0.5 pump)
            | Error e -> Alcotest.failf "send: %s" (Types.err_to_string e))
      in
      pump ();
      (* After several persist periods the connection must still work. *)
      ignore
        (E.schedule w.World.engine ~delay:4.0 (fun () ->
             a.World.api.Socket_api.send fd (Types.Zeros 1) ~k:(fun r ->
                 match r with
                 | Ok _ | Error Types.Eagain -> still_alive := true
                 | Error e -> Alcotest.failf "conn died: %s" (Types.err_to_string e)))));
  World.run w ~until:5.0;
  (* Exactly one receive window plus the sender's buffered backlog was
     accepted; nothing more can leave. *)
  if !sent < 256 * 1024 then Alcotest.failf "window never filled: %d" !sent;
  Alcotest.(check bool) "alive after persist probing" true !still_alive

let events_snapshot () =
  let w = World.create () in
  let a = World.add_endpoint w ~name:"a" ~ip:ip_a in
  let b = World.add_endpoint w ~name:"b" ~ip:ip_b in
  let ls = ok "socket" (b.World.api.Socket_api.socket ()) in
  ok "bind" (b.World.api.Socket_api.bind ls (Addr.make ip_b 80));
  ok "listen" (b.World.api.Socket_api.listen ls ~backlog:8);
  let server_fd = ref None in
  b.World.api.Socket_api.accept ls ~k:(fun r ->
      let fd, _ = ok "accept" r in
      server_fd := Some fd);
  let fd = ok "socket" (a.World.api.Socket_api.socket ()) in
  let ep = a.World.api.Socket_api.epoll_create () in
  a.World.api.Socket_api.connect fd (Addr.make ip_b 80) ~k:(fun r ->
      ok "connect" r;
      a.World.api.Socket_api.epoll_add ep fd
        ~mask:{ Types.readable = true; writable = true; hup = true });
  let got = ref [] in
  ignore
    (E.schedule w.World.engine ~delay:0.1 (fun () ->
         a.World.api.Socket_api.epoll_wait ep ~timeout:1.0 ~k:(fun evs -> got := evs)));
  World.run w ~until:2.0;
  match !got with
  | [ (efd, ev) ] ->
      Alcotest.(check int) "right fd" fd efd;
      Alcotest.(check bool) "writable after connect" true ev.Types.writable;
      Alcotest.(check bool) "not readable yet" false ev.Types.readable
  | other -> Alcotest.failf "expected one event, got %d" (List.length other)

let tests =
  [
    Alcotest.test_case "bind conflicts" `Quick bind_conflicts;
    Alcotest.test_case "listener close fails waiters" `Quick listener_close_fails_waiters;
    Alcotest.test_case "RST for unknown flow" `Quick rst_for_unknown_flow;
    Alcotest.test_case "ephemeral ports recycle" `Quick ephemeral_ports_recycle;
    Alcotest.test_case "zero-window persist" `Quick zero_window_persist;
    Alcotest.test_case "epoll events snapshot" `Quick events_snapshot;
  ]
