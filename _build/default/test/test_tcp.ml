(* Integration tests of the TCP stack over the simulated fabric. *)

open Tcpstack
module E = Sim.Engine

let ip_a = 1
let ip_b = 2

let check_ok name = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: unexpected error %s" name (Types.err_to_string e)

let handshake_and_echo () =
  let w = World.create () in
  let a = World.add_endpoint w ~name:"client" ~ip:ip_a in
  let b = World.add_endpoint w ~name:"server" ~ip:ip_b in
  let server_addr = Addr.make ip_b 80 in
  let got_request = ref "" and got_reply = ref "" and server_done = ref false in
  (* Server *)
  let ls = check_ok "socket" (b.World.api.Socket_api.socket ()) in
  check_ok "bind" (b.World.api.Socket_api.bind ls server_addr);
  check_ok "listen" (b.World.api.Socket_api.listen ls ~backlog:16);
  b.World.api.Socket_api.accept ls ~k:(fun r ->
      let fd, peer = check_ok "accept" r in
      Alcotest.(check int) "peer ip" ip_a peer.Addr.ip;
      World.recv_retry w b.World.api fd ~max:4096 ~mode:`Copy ~k:(fun r ->
          match check_ok "server recv" r with
          | Types.Data s ->
              got_request := s;
              World.send_all w b.World.api fd (Types.Data "world!") ~k:(fun r ->
                  check_ok "server send" r;
                  b.World.api.Socket_api.close fd;
                  server_done := true)
          | Types.Zeros _ -> Alcotest.fail "expected real data"));
  (* Client *)
  let cs = check_ok "socket" (a.World.api.Socket_api.socket ()) in
  a.World.api.Socket_api.connect cs server_addr ~k:(fun r ->
      check_ok "connect" r;
      World.send_all w a.World.api cs (Types.Data "hello") ~k:(fun r ->
          check_ok "client send" r;
          World.recv_retry w a.World.api cs ~max:4096 ~mode:`Copy ~k:(fun r ->
              match check_ok "client recv" r with
              | Types.Data s -> got_reply := s
              | Types.Zeros _ -> Alcotest.fail "expected real data")));
  World.run w ~until:5.0;
  Alcotest.(check string) "request" "hello" !got_request;
  Alcotest.(check string) "reply" "world!" !got_reply;
  Alcotest.(check bool) "server finished" true !server_done

let bulk_transfer () =
  let w = World.create () in
  let a = World.add_endpoint w ~name:"sender" ~ip:ip_a in
  let b = World.add_endpoint w ~name:"receiver" ~ip:ip_b in
  let server_addr = Addr.make ip_b 5001 in
  let total = 64 * 1024 * 1024 in
  let received = ref 0 and eof = ref false and t_start = ref 0.0 and t_end = ref 0.0 in
  let ls = check_ok "socket" (b.World.api.Socket_api.socket ()) in
  check_ok "bind" (b.World.api.Socket_api.bind ls server_addr);
  check_ok "listen" (b.World.api.Socket_api.listen ls ~backlog:16);
  b.World.api.Socket_api.accept ls ~k:(fun r ->
      let fd, _ = check_ok "accept" r in
      t_start := E.now w.World.engine;
      let rec loop () =
        World.recv_retry w b.World.api fd ~max:(1 lsl 20) ~mode:`Discard ~k:(fun r ->
            match check_ok "recv" r with
            | Types.Zeros 0 | Types.Data "" ->
                eof := true;
                t_end := E.now w.World.engine
            | Types.Zeros n ->
                received := !received + n;
                loop ()
            | Types.Data s ->
                received := !received + String.length s;
                loop ())
      in
      loop ());
  let cs = check_ok "socket" (a.World.api.Socket_api.socket ()) in
  a.World.api.Socket_api.connect cs server_addr ~k:(fun r ->
      check_ok "connect" r;
      let remaining = ref total in
      let rec pump () =
        if !remaining > 0 then begin
          let chunk = Int.min !remaining (1 lsl 20) in
          World.send_all w a.World.api cs (Types.Zeros chunk) ~k:(fun r ->
              check_ok "send" r;
              remaining := !remaining - chunk;
              pump ())
        end
        else a.World.api.Socket_api.close cs
      in
      pump ());
  World.run w ~until:60.0;
  Alcotest.(check bool) "eof seen" true !eof;
  Alcotest.(check int) "all bytes received" total !received;
  let gbps = Nkutil.Units.gbps_of_bytes ~bytes:total ~seconds:(!t_end -. !t_start) in
  if gbps < 1.0 || gbps > 200.0 then Alcotest.failf "implausible throughput %.2f Gbps" gbps

let connect_refused () =
  let w = World.create () in
  let a = World.add_endpoint w ~name:"client" ~ip:ip_a in
  let _b = World.add_endpoint w ~name:"server" ~ip:ip_b in
  let result = ref None in
  let cs = check_ok "socket" (a.World.api.Socket_api.socket ()) in
  a.World.api.Socket_api.connect cs (Addr.make ip_b 81) ~k:(fun r -> result := Some r);
  World.run w ~until:5.0;
  match !result with
  | Some (Error Types.Econnrefused) -> ()
  | Some (Error e) -> Alcotest.failf "expected ECONNREFUSED, got %s" (Types.err_to_string e)
  | Some (Ok ()) -> Alcotest.fail "connect unexpectedly succeeded"
  | None -> Alcotest.fail "connect never completed"

let checksum s =
  let h = ref 5381 in
  String.iter (fun c -> h := ((!h lsl 5) + !h + Char.code c) land 0x3FFFFFFF) s;
  !h

let lossy_link_integrity () =
  let w = World.create () in
  let a = World.add_endpoint w ~name:"sender" ~ip:ip_a in
  let b = World.add_endpoint w ~name:"receiver" ~ip:ip_b in
  (* 2% random loss on the path towards the receiver. *)
  (match Fabric.port_to w.World.fabric b.World.nic with
  | Some link -> Link.set_random_loss link ~rng:(Nkutil.Rng.create ~seed:7) ~rate:0.02
  | None -> Alcotest.fail "no downlink");
  let server_addr = Addr.make ip_b 5002 in
  let total = 2 * 1024 * 1024 in
  let payload =
    String.init total (fun i -> Char.chr ((i * 131) land 0xff))
  in
  let received = Buffer.create total in
  let eof = ref false in
  let ls = check_ok "socket" (b.World.api.Socket_api.socket ()) in
  check_ok "bind" (b.World.api.Socket_api.bind ls server_addr);
  check_ok "listen" (b.World.api.Socket_api.listen ls ~backlog:16);
  b.World.api.Socket_api.accept ls ~k:(fun r ->
      let fd, _ = check_ok "accept" r in
      let rec loop () =
        World.recv_retry w b.World.api fd ~max:65536 ~mode:`Copy ~k:(fun r ->
            match check_ok "recv" r with
            | Types.Data "" -> eof := true
            | Types.Data s ->
                Buffer.add_string received s;
                loop ()
            | Types.Zeros _ -> Alcotest.fail "expected real data")
      in
      loop ());
  let cs = check_ok "socket" (a.World.api.Socket_api.socket ()) in
  a.World.api.Socket_api.connect cs server_addr ~k:(fun r ->
      check_ok "connect" r;
      World.send_all w a.World.api cs (Types.Data payload) ~k:(fun r ->
          check_ok "send" r;
          a.World.api.Socket_api.close cs));
  World.run w ~until:120.0;
  Alcotest.(check bool) "eof" true !eof;
  Alcotest.(check int) "length" total (Buffer.length received);
  Alcotest.(check int) "content checksum" (checksum payload)
    (checksum (Buffer.contents received));
  let stats = Stack.stats a.World.stack in
  if stats.Stack.segs_tx = 0 then Alcotest.fail "sender sent nothing"

let backlog_overflow_recovers () =
  let w = World.create () in
  let a = World.add_endpoint w ~name:"clients" ~ip:ip_a ~profile:Sim.Cost_profile.ideal in
  let b = World.add_endpoint w ~name:"server" ~ip:ip_b in
  let server_addr = Addr.make ip_b 80 in
  (* 8 simultaneous SYNs against a backlog of 4: half get dropped and must
     retransmit after the 1 s SYN timeout; all connect eventually. *)
  let n_clients = 8 in
  let connected = ref 0 in
  let ls = check_ok "socket" (b.World.api.Socket_api.socket ()) in
  check_ok "bind" (b.World.api.Socket_api.bind ls server_addr);
  check_ok "listen" (b.World.api.Socket_api.listen ls ~backlog:4);
  let rec accept_loop () =
    b.World.api.Socket_api.accept ls ~k:(fun r ->
        ignore (check_ok "accept" r);
        accept_loop ())
  in
  accept_loop ();
  for _ = 1 to n_clients do
    let cs = check_ok "socket" (a.World.api.Socket_api.socket ()) in
    a.World.api.Socket_api.connect cs server_addr ~k:(fun r ->
        match r with
        | Ok () -> incr connected
        | Error e -> Alcotest.failf "client connect failed: %s" (Types.err_to_string e))
  done;
  World.run w ~until:30.0;
  let stats = Stack.stats b.World.stack in
  Alcotest.(check int) "all clients eventually connected" n_clients !connected;
  if stats.Stack.syn_drops = 0 then Alcotest.fail "expected SYN drops with backlog 4"

let fin_both_ways () =
  (* Server sends a farewell and closes; client reads the data, then EOF,
     then closes. No RSTs should be emitted on a graceful shutdown. *)
  let w = World.create () in
  let a = World.add_endpoint w ~name:"client" ~ip:ip_a in
  let b = World.add_endpoint w ~name:"server" ~ip:ip_b in
  let server_addr = Addr.make ip_b 80 in
  let client_data = ref "" and client_eof = ref false in
  let ls = check_ok "socket" (b.World.api.Socket_api.socket ()) in
  check_ok "bind" (b.World.api.Socket_api.bind ls server_addr);
  check_ok "listen" (b.World.api.Socket_api.listen ls ~backlog:16);
  b.World.api.Socket_api.accept ls ~k:(fun r ->
      let fd, _ = check_ok "accept" r in
      World.send_all w b.World.api fd (Types.Data "bye") ~k:(fun r ->
          check_ok "server send" r;
          b.World.api.Socket_api.close fd));
  let cs = check_ok "socket" (a.World.api.Socket_api.socket ()) in
  a.World.api.Socket_api.connect cs server_addr ~k:(fun r ->
      check_ok "connect" r;
      World.recv_retry w a.World.api cs ~max:64 ~mode:`Copy ~k:(fun r ->
          match check_ok "client recv data" r with
          | Types.Data s ->
              client_data := s;
              World.recv_retry w a.World.api cs ~max:64 ~mode:`Copy ~k:(fun r ->
                  match check_ok "client recv eof" r with
                  | Types.Data "" ->
                      client_eof := true;
                      a.World.api.Socket_api.close cs
                  | Types.Data _ | Types.Zeros _ -> Alcotest.fail "expected EOF")
          | Types.Zeros _ -> Alcotest.fail "expected real data"));
  World.run w ~until:10.0;
  Alcotest.(check string) "farewell delivered" "bye" !client_data;
  Alcotest.(check bool) "client saw EOF" true !client_eof;
  Alcotest.(check int) "no RSTs from server" 0 (Stack.stats b.World.stack).Stack.rst_tx;
  Alcotest.(check int) "no RSTs from client" 0 (Stack.stats a.World.stack).Stack.rst_tx

let ecn_marks_with_dctcp () =
  (* Two DCTCP senders through a small-buffer ECN-marking fabric keep the
     queue bounded and both make progress. *)
  let engine = E.create () in
  let fabric =
    Fabric.create engine ~rate_bps:10e9 ~delay:40e-6 ~buffer_bytes:(512 * 1024)
      ~ecn_threshold_bytes:(96 * 1024) ()
  in
  let w =
    { World.engine; registry = Conn_registry.create (); fabric;
      rng = Nkutil.Rng.create ~seed:11 }
  in
  let dctcp_cfg =
    let base = Stack.default_config Sim.Cost_profile.ideal in
    {
      base with
      Stack.cc_factory = Cc_dctcp.factory ~mss:Segment.mss;
      (* Keep segments small relative to the 10G BDP so marking reflects the
         queue, not our own burstiness. *)
      tcb = { Tcb.default_config with Tcb.gso = 8192 };
    }
  in
  let a =
    World.add_endpoint w ~name:"sender" ~ip:ip_a ~profile:Sim.Cost_profile.ideal
      ~config:dctcp_cfg
  in
  let b = World.add_endpoint w ~name:"receiver" ~ip:ip_b ~profile:Sim.Cost_profile.ideal in
  let server_addr = Addr.make ip_b 5003 in
  let received = ref 0 in
  let ls = check_ok "socket" (b.World.api.Socket_api.socket ()) in
  check_ok "bind" (b.World.api.Socket_api.bind ls server_addr);
  check_ok "listen" (b.World.api.Socket_api.listen ls ~backlog:64);
  let rec accept_loop () =
    b.World.api.Socket_api.accept ls ~k:(fun r ->
        let fd, _ = check_ok "accept" r in
        let rec loop () =
          World.recv_retry w b.World.api fd ~max:(1 lsl 20) ~mode:`Discard ~k:(fun r ->
              match r with
              | Ok p ->
                  received := !received + Types.payload_len p;
                  loop ()
              | Error e -> Alcotest.failf "recv: %s" (Types.err_to_string e))
        in
        loop ();
        accept_loop ())
  in
  accept_loop ();
  for _ = 1 to 2 do
    let cs = check_ok "socket" (a.World.api.Socket_api.socket ()) in
    a.World.api.Socket_api.connect cs server_addr ~k:(fun r ->
        check_ok "connect" r;
        let rec pump () =
          a.World.api.Socket_api.send cs (Types.Zeros (256 * 1024)) ~k:(fun r ->
              match r with
              | Ok _ -> pump ()
              | Error Types.Eagain ->
                  ignore (E.schedule engine ~delay:100e-6 pump)
              | Error e -> Alcotest.failf "send: %s" (Types.err_to_string e))
        in
        pump ())
  done;
  World.run w ~until:1.0;
  (* 10G for ~1s ≈ 1.1 GB; expect at least half of that through, and ECN
     marks on the sender's uplink where the two flows merge. *)
  if !received < 512 * 1024 * 1024 then
    Alcotest.failf "DCTCP transferred too little: %d bytes" !received;
  match Nic.egress a.World.nic with
  | Some uplink ->
      if Link.ecn_marks uplink = 0 then Alcotest.fail "expected ECN marks on the uplink";
      if Link.drops uplink > 100 then
        Alcotest.failf "DCTCP should keep drops low, got %d" (Link.drops uplink)
  | None -> Alcotest.fail "no uplink"

let tests =
  [
    Alcotest.test_case "handshake and echo" `Quick handshake_and_echo;
    Alcotest.test_case "bulk 64MB transfer" `Quick bulk_transfer;
    Alcotest.test_case "connect refused" `Quick connect_refused;
    Alcotest.test_case "integrity under 2% loss" `Quick lossy_link_integrity;
    Alcotest.test_case "backlog overflow recovers via SYN retx" `Quick
      backlog_overflow_recovers;
    Alcotest.test_case "FIN both ways" `Quick fin_both_ways;
    Alcotest.test_case "DCTCP reacts to ECN marks" `Quick ecn_marks_with_dctcp;
  ]
