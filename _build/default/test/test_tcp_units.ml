(* Unit/property tests for TCP building blocks: sequence arithmetic,
   reassembly, RTT estimation, congestion controllers. *)

open Tcpstack

(* ---- sequence arithmetic ---------------------------------------------- *)

let seq_wraparound () =
  let near_top = Tcp_seq.modulus - 10 in
  let wrapped = Tcp_seq.add near_top 20 in
  Alcotest.(check int) "wraps" 10 wrapped;
  Alcotest.(check bool) "near_top < wrapped" true (Tcp_seq.lt near_top wrapped);
  Alcotest.(check int) "signed diff across wrap" 20 (Tcp_seq.diff wrapped near_top);
  Alcotest.(check int) "negative diff" (-20) (Tcp_seq.diff near_top wrapped)

let seq_qcheck_roundtrip =
  QCheck.Test.make ~name:"seq add/diff roundtrip" ~count:500
    QCheck.(pair (int_bound (Tcp_seq.modulus - 1)) (int_range (-1000000) 1000000))
    (fun (a, n) -> Tcp_seq.diff (Tcp_seq.add a n) a = n)

let seq_qcheck_order =
  QCheck.Test.make ~name:"seq ordering antisymmetry" ~count:500
    QCheck.(pair (int_bound (Tcp_seq.modulus - 1)) (int_bound ((1 lsl 30) - 1)))
    (fun (a, d) ->
      let d = d + 1 in
      let b = Tcp_seq.add a d in
      Tcp_seq.lt a b && Tcp_seq.gt b a && Tcp_seq.between ~low:a ~x:a ~high:b)

(* ---- reassembly --------------------------------------------------------- *)

let reasm_in_order () =
  let r = Reassembly.create ~next:1000 () in
  let o1 = Reassembly.offer r ~seq:1000 ~len:100 ~fin:false in
  Alcotest.(check int) "released" 100 o1.Reassembly.released;
  Alcotest.(check int) "next" 1100 (Reassembly.next r)

let reasm_out_of_order () =
  let r = Reassembly.create ~next:0 () in
  let o1 = Reassembly.offer r ~seq:100 ~len:50 ~fin:false in
  Alcotest.(check int) "hole: nothing released" 0 o1.Reassembly.released;
  Alcotest.(check int) "ooo buffered" 50 (Reassembly.ooo_bytes r);
  let o2 = Reassembly.offer r ~seq:0 ~len:100 ~fin:false in
  Alcotest.(check int) "gap filled releases both" 150 o2.Reassembly.released;
  Alcotest.(check int) "no ooo left" 0 (Reassembly.ooo_bytes r)

let reasm_duplicates () =
  let r = Reassembly.create ~next:0 () in
  ignore (Reassembly.offer r ~seq:0 ~len:100 ~fin:false);
  let dup = Reassembly.offer r ~seq:0 ~len:100 ~fin:false in
  Alcotest.(check int) "full dup" 100 dup.Reassembly.duplicate;
  Alcotest.(check int) "nothing new" 0 dup.Reassembly.released;
  let partial = Reassembly.offer r ~seq:50 ~len:100 ~fin:false in
  Alcotest.(check int) "overlap counted" 50 partial.Reassembly.duplicate;
  Alcotest.(check int) "new tail released" 50 partial.Reassembly.released

let reasm_fin () =
  let r = Reassembly.create ~next:0 () in
  (* FIN arrives out of order, ahead of its data *)
  let o1 = Reassembly.offer r ~seq:100 ~len:20 ~fin:true in
  Alcotest.(check bool) "fin not yet in order" false o1.Reassembly.fin_reached;
  let o2 = Reassembly.offer r ~seq:0 ~len:100 ~fin:false in
  Alcotest.(check bool) "fin reached when contiguous" true o2.Reassembly.fin_reached;
  (* FIN consumes one sequence number *)
  Alcotest.(check int) "next covers fin" 121 (Reassembly.next r)

let reasm_wrap () =
  let start = Tcp_seq.modulus - 50 in
  let r = Reassembly.create ~next:start () in
  let o1 = Reassembly.offer r ~seq:start ~len:100 ~fin:false in
  Alcotest.(check int) "release across wrap" 100 o1.Reassembly.released;
  Alcotest.(check int) "wrapped next" 50 (Reassembly.next r)

let reasm_qcheck =
  QCheck.Test.make ~name:"random permutation reassembles exactly once" ~count:200
    QCheck.(pair small_nat (int_bound 10000))
    (fun (nseg, seed) ->
      let nseg = 1 + (nseg mod 30) in
      let rng = Nkutil.Rng.create ~seed in
      let seg_len = 100 in
      let order = Array.init nseg (fun i -> i) in
      Nkutil.Rng.shuffle rng order;
      let start = Nkutil.Rng.int rng Tcp_seq.modulus in
      let r = Reassembly.create ~next:start () in
      let released = ref 0 and dups = ref 0 in
      Array.iter
        (fun i ->
          let o =
            Reassembly.offer r ~seq:(Tcp_seq.add start (i * seg_len)) ~len:seg_len
              ~fin:false
          in
          released := !released + o.Reassembly.released;
          dups := !dups + o.Reassembly.duplicate)
        order;
      (* replay a random segment: counted fully duplicate *)
      let i = Nkutil.Rng.int rng nseg in
      let o =
        Reassembly.offer r ~seq:(Tcp_seq.add start (i * seg_len)) ~len:seg_len ~fin:false
      in
      !released = nseg * seg_len
      && !dups = 0
      && o.Reassembly.duplicate = seg_len
      && Reassembly.ooo_bytes r = 0)

(* ---- rtt estimator -------------------------------------------------------- *)

let rtt_basics () =
  let r = Rtt_estimator.create () in
  Alcotest.(check bool) "initial rto 1s" true (Rtt_estimator.rto r = 1.0);
  Rtt_estimator.sample r 0.1;
  if Float.abs (Rtt_estimator.srtt r -. 0.1) > 1e-9 then Alcotest.fail "first srtt";
  for _ = 1 to 50 do
    Rtt_estimator.sample r 0.1
  done;
  (* converged: rto clamps at min_rto since srtt+4var ~ 0.1 *)
  if Rtt_estimator.rto r < 0.1 then Alcotest.fail "rto below srtt";
  Rtt_estimator.sample r (-5.0);
  if Float.abs (Rtt_estimator.srtt r -. 0.1) > 0.01 then
    Alcotest.fail "negative samples ignored"

let rtt_spike_raises_rto () =
  let r = Rtt_estimator.create () in
  for _ = 1 to 20 do
    Rtt_estimator.sample r 0.05
  done;
  let before = Rtt_estimator.rto r in
  Rtt_estimator.sample r 1.0;
  if Rtt_estimator.rto r <= before then Alcotest.fail "variance must raise RTO"

(* ---- congestion control ---------------------------------------------------- *)

let mss = Segment.mss

let reno_slow_start_and_loss () =
  let cc = Cc_reno.create ~mss () in
  let w0 = cc.Cc.cwnd () in
  Alcotest.(check int) "IW10" (10 * mss) w0;
  cc.Cc.on_ack ~acked:(5 * mss) ~rtt:0.001 ~now:0.0;
  (* ABC (RFC 3465, L=2): growth per ACK is capped at 2*SMSS *)
  Alcotest.(check int) "slow start grows by min(acked, 2*mss)" (12 * mss) (cc.Cc.cwnd ());
  cc.Cc.on_loss ~now:0.1;
  Alcotest.(check bool) "halved" true (cc.Cc.cwnd () <= (12 * mss / 2) + mss);
  let after_loss = cc.Cc.cwnd () in
  cc.Cc.on_timeout ~now:0.2;
  Alcotest.(check bool) "timeout collapses below loss window" true
    (cc.Cc.cwnd () < after_loss);
  Alcotest.(check bool) "never below 1 mss" true (cc.Cc.cwnd () >= mss)

let cubic_grows_and_reduces () =
  let cc = Cc_cubic.create ~mss () in
  (* force out of slow start *)
  cc.Cc.on_loss ~now:0.0;
  let w0 = cc.Cc.cwnd () in
  for i = 1 to 200 do
    cc.Cc.on_ack ~acked:mss ~rtt:0.001 ~now:(0.001 *. float_of_int i)
  done;
  let w1 = cc.Cc.cwnd () in
  Alcotest.(check bool) "cubic grows in CA" true (w1 > w0);
  cc.Cc.on_loss ~now:0.3;
  let w2 = cc.Cc.cwnd () in
  Alcotest.(check bool) "beta reduction ~0.7" true
    (w2 < w1 && float_of_int w2 > (0.6 *. float_of_int w1) -. float_of_int mss)

let dctcp_alpha_scaling () =
  let cc = Cc_dctcp.create ~mss () in
  (* get a decent window going *)
  for _ = 1 to 50 do
    cc.Cc.on_ack ~acked:(4 * mss) ~rtt:0.0001 ~now:0.0
  done;
  let w_clean = cc.Cc.cwnd () in
  (* one fully-marked window: alpha stays high -> sharp cut *)
  let acked = ref 0 in
  while !acked < w_clean do
    cc.Cc.on_ecn_ack ~acked:(16 * mss) ~now:0.1;
    acked := !acked + (16 * mss)
  done;
  let w_marked = cc.Cc.cwnd () in
  Alcotest.(check bool) "marked window shrinks" true (w_marked < w_clean);
  Alcotest.(check bool) "but not to 1 mss (proportional)" true (w_marked >= 2 * mss)

let vmcc_shares_window () =
  let g = Cc_vm.create_group ~mss () in
  let f1 = Cc_vm.factory g () in
  let f2 = Cc_vm.factory g () in
  Alcotest.(check int) "two active flows" 2 (Cc_vm.active_flows g);
  let shared = Cc_vm.shared_cwnd g in
  Alcotest.(check int) "each gets 1/n" (shared / 2) (f1.Cc.cwnd ());
  (* more flows do not increase the aggregate *)
  let f3 = Cc_vm.factory g () in
  Alcotest.(check int) "aggregate unchanged" shared (Cc_vm.shared_cwnd g);
  Alcotest.(check int) "per-flow share shrinks" (shared / 3) (f3.Cc.cwnd ());
  f3.Cc.release ();
  Alcotest.(check int) "release restores" (shared / 2) (f2.Cc.cwnd ());
  f1.Cc.release ();
  f1.Cc.release ();
  (* double release must not underflow *)
  Alcotest.(check int) "single flow left" 1 (Cc_vm.active_flows g)

let bbr_converges_to_bdp () =
  let cc = Cc_bbr.create ~mss () in
  (* Emulate a 125 MB/s bottleneck at 10 ms RTT: BDP = 1.25 MB. Deliver one
     cwnd of ACKs per RTT at that ceiling. *)
  let rtt = 0.01 in
  let bottleneck = 125_000_000.0 in
  let now = ref 0.0 in
  for _ = 1 to 300 do
    let deliverable =
      Int.min (cc.Cc.cwnd ()) (int_of_float (bottleneck *. rtt))
    in
    (* spread the window's worth of ACKs across the round trip *)
    let acks = 8 in
    for _ = 1 to acks do
      now := !now +. (rtt /. float_of_int acks);
      cc.Cc.on_ack ~acked:(deliverable / acks) ~rtt ~now:!now
    done
  done;
  let bdp = bottleneck *. rtt in
  let w = float_of_int (cc.Cc.cwnd ()) in
  if w < bdp *. 0.5 || w > bdp *. 3.0 then
    Alcotest.failf "BBR cwnd %.0f far from BDP %.0f" w bdp

let bbr_ignores_isolated_loss () =
  let cc = Cc_bbr.create ~mss () in
  let before = cc.Cc.cwnd () in
  cc.Cc.on_loss ~now:0.1;
  Alcotest.(check int) "model kept on fast retransmit" before (cc.Cc.cwnd ());
  cc.Cc.on_timeout ~now:0.2;
  Alcotest.(check bool) "timeout is conservative" true (cc.Cc.cwnd () >= 4 * mss)

let tests =
  [
    Alcotest.test_case "seq wraparound" `Quick seq_wraparound;
    QCheck_alcotest.to_alcotest seq_qcheck_roundtrip;
    QCheck_alcotest.to_alcotest seq_qcheck_order;
    Alcotest.test_case "reassembly in order" `Quick reasm_in_order;
    Alcotest.test_case "reassembly out of order" `Quick reasm_out_of_order;
    Alcotest.test_case "reassembly duplicates" `Quick reasm_duplicates;
    Alcotest.test_case "reassembly FIN" `Quick reasm_fin;
    Alcotest.test_case "reassembly across wrap" `Quick reasm_wrap;
    QCheck_alcotest.to_alcotest reasm_qcheck;
    Alcotest.test_case "rtt basics" `Quick rtt_basics;
    Alcotest.test_case "rtt spike raises rto" `Quick rtt_spike_raises_rto;
    Alcotest.test_case "reno slow start + loss" `Quick reno_slow_start_and_loss;
    Alcotest.test_case "cubic grow/reduce" `Quick cubic_grows_and_reduces;
    Alcotest.test_case "dctcp proportional cut" `Quick dctcp_alpha_scaling;
    Alcotest.test_case "vm-cc shared window" `Quick vmcc_shares_window;
    Alcotest.test_case "bbr converges to BDP" `Quick bbr_converges_to_bdp;
    Alcotest.test_case "bbr loss handling" `Quick bbr_ignores_isolated_loss;
  ]
