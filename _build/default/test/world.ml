(* Minimal two-host world for stack-level tests: hosts connected through a
   100G fabric, one stack per host, direct (baseline) sockets. *)

open Tcpstack
module E = Sim.Engine

type t = {
  engine : E.t;
  registry : Conn_registry.t;
  fabric : Fabric.t;
  rng : Nkutil.Rng.t;
}

type endpoint = {
  stack : Stack.t;
  api : Socket_api.t;
  nic : Nic.t;
  vswitch : Vswitch.t;
  ip : Addr.ip;
}

let create ?(rate_gbps = 100.0) ?(delay = 20e-6) ?(seed = 42) () =
  let engine = E.create () in
  let fabric = Fabric.create engine ~rate_bps:(rate_gbps *. 1e9) ~delay () in
  { engine; registry = Conn_registry.create (); fabric; rng = Nkutil.Rng.create ~seed }

let add_endpoint ?(profile = Sim.Cost_profile.linux_kernel) ?(cores = 1) ?config t ~name ~ip
    =
  let nic = Nic.create t.engine ~name:(name ^ ".nic") () in
  Fabric.attach t.fabric nic;
  Fabric.add_route t.fabric ip nic;
  let vswitch = Vswitch.create t.engine ~nic () in
  let cpu = Sim.Cpu.Set.create t.engine ~name ~n:cores () in
  let cfg = match config with Some c -> c | None -> Stack.default_config profile in
  let stack =
    Stack.create ~engine:t.engine ~name ~cores:cpu ~vswitch ~registry:t.registry
      ~rng:(Nkutil.Rng.split t.rng) cfg
  in
  Stack.add_ip stack ip;
  { stack; api = Direct_socket.make stack; nic; vswitch; ip }

let run ?until t = E.run ?until t.engine

(* Retry-polling recv for tests that don't want to set up epoll. *)
let rec recv_retry t (api : Socket_api.t) fd ~max ~mode ~k =
  api.Socket_api.recv fd ~max ~mode ~k:(fun r ->
      match r with
      | Error Types.Eagain ->
          ignore (E.schedule t.engine ~delay:10e-6 (fun () -> recv_retry t api fd ~max ~mode ~k))
      | other -> k other)

(* Keep sending a payload until all bytes are accepted. *)
let rec send_all t (api : Socket_api.t) fd payload ~k =
  let total = Types.payload_len payload in
  api.Socket_api.send fd payload ~k:(fun r ->
      match r with
      | Error Types.Eagain ->
          ignore (E.schedule t.engine ~delay:10e-6 (fun () -> send_all t api fd payload ~k))
      | Error e -> k (Error e)
      | Ok n when n >= total -> k (Ok ())
      | Ok n ->
          let rest =
            match payload with
            | Types.Zeros z -> Types.Zeros (z - n)
            | Types.Data s -> Types.Data (String.sub s n (String.length s - n))
          in
          send_all t api fd rest ~k)
