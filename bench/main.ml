(* Benchmark driver: regenerates every table and figure of the paper's
   evaluation (printed as aligned tables with the paper's reference values
   in the notes), then runs Bechamel microbenchmarks of the NetKernel
   dataplane primitives.

     dune exec bench/main.exe              -- everything (reduced durations;
                                              statistically equivalent, see
                                              EXPERIMENTS.md on scale-downs)
     dune exec bench/main.exe -- --full    -- paper-length durations
     dune exec bench/main.exe -- fig18 table5
     dune exec bench/main.exe -- --micro   -- only the Bechamel suite
     dune exec bench/main.exe -- --json DIR -- also write BENCH_<id>.json
                                              per experiment under DIR *)

let quick = ref true
let micro_only = ref false
let selected = ref []
let json_dir = ref None

let () =
  let expect_json = ref false in
  Array.iteri
    (fun i arg ->
      if i > 0 then
        if !expect_json then begin
          json_dir := Some arg;
          expect_json := false
        end
        else
          match arg with
          | "--full" -> quick := false
          | "--quick" | "-q" -> quick := true
          | "--micro" -> micro_only := true
          | "--json" -> expect_json := true
          | id -> selected := id :: !selected)
    Sys.argv;
  if !expect_json then begin
    prerr_endline "bench: --json requires a directory argument";
    exit 2
  end

(* ---- paper experiments ---------------------------------------------------- *)

let write_json report =
  match !json_dir with
  | None -> ()
  | Some dir ->
      if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
      let path =
        Filename.concat dir
          (Printf.sprintf "BENCH_%s.json" report.Experiments.Report.id)
      in
      let oc = open_out path in
      output_string oc (Experiments.Report.to_json report);
      output_char oc '\n';
      close_out oc;
      Printf.printf "  wrote %s\n%!" path

let run_experiments () =
  let entries =
    match !selected with
    | [] -> Experiments.Registry.all
    | ids ->
        List.filter
          (fun (e : Experiments.Registry.entry) -> List.mem e.Experiments.Registry.id ids)
          Experiments.Registry.all
  in
  List.iter
    (fun (e : Experiments.Registry.entry) ->
      Printf.printf "\n>>> %s (%s)%!" e.Experiments.Registry.id e.Experiments.Registry.title;
      let t0 = Unix.gettimeofday () in
      let report = e.Experiments.Registry.run ~quick:!quick () in
      Printf.printf "  [%.1fs]\n%!" (Unix.gettimeofday () -. t0);
      Experiments.Report.print Format.std_formatter report;
      Format.pp_print_flush Format.std_formatter ();
      write_json report)
    entries

(* ---- Bechamel microbenchmarks ---------------------------------------------- *)

let bechamel_suite () =
  let open Bechamel in
  let open Toolkit in
  let nqe_roundtrip =
    Test.make ~name:"nqe encode+decode"
      (Staged.stage (fun () ->
           let nqe =
             Nkcore.Nqe.make ~op:Nkcore.Nqe.Send ~vm_id:1 ~qset:0 ~sock:42 ~data_ptr:4096
               ~size:8192 ()
           in
           match Nkcore.Nqe.decode (Nkcore.Nqe.encode nqe) with
           | Ok _ -> ()
           | Error e -> failwith e))
  in
  let ring = Nkutil.Spsc_ring.create ~capacity:1024 in
  let payload = Bytes.create 32 in
  let ring_pushpop =
    Test.make ~name:"spsc ring push+pop"
      (Staged.stage (fun () ->
           ignore (Nkutil.Spsc_ring.push ring payload);
           ignore (Nkutil.Spsc_ring.pop ring)))
  in
  let hp = Nkcore.Hugepages.create ~page_size:(2 * 1024 * 1024) ~pages:4 () in
  let msg = String.make 8192 'x' in
  let hugepage_copy =
    Test.make ~name:"hugepage alloc+copy8K+free"
      (Staged.stage (fun () ->
           match Nkcore.Hugepages.alloc hp 8192 with
           | None -> failwith "hugepages full"
           | Some e ->
               Nkcore.Hugepages.write_payload hp e (Tcpstack.Types.Data msg);
               Nkcore.Hugepages.free hp e))
  in
  (* Engine timer hot path: two schedules into the wheel, one cancelled
     lazily, then both drained — the sequence every datapath wakeup pays. *)
  let engine = Sim.Engine.create () in
  let heap_ops =
    Test.make ~name:"engine timer schedule+fire"
      (Staged.stage (fun () ->
           let a = Sim.Engine.schedule engine ~delay:1e-6 ignore in
           ignore (Sim.Engine.schedule engine ~delay:2e-6 ignore);
           Sim.Engine.Timer.cancel a;
           ignore (Sim.Engine.step engine);
           ignore (Sim.Engine.step engine)))
  in
  let tests =
    Test.make_grouped ~name:"netkernel-primitives"
      [ nqe_roundtrip; ring_pushpop; hugepage_copy; heap_ops ]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let analyzed = Analyze.all ols (Measure.label Instance.monotonic_clock |> fun _ -> Instance.monotonic_clock) raw in
  print_endline "\n=== Bechamel microbenchmarks (ns/op, monotonic clock) ===";
  let rows =
    Nkutil.Det_tbl.fold ~cmp:String.compare
      (fun name result acc ->
        let est =
          match Bechamel.Analyze.OLS.estimates result with
          | Some (t :: _) -> Printf.sprintf "%10.1f ns/op" t
          | Some [] | None -> "(no estimate)"
        in
        (name, est) :: acc)
      analyzed []
    |> List.rev
  in
  List.iter (fun (name, est) -> Printf.printf "%-48s %s\n" name est) rows

let () =
  if !micro_only then bechamel_suite ()
  else begin
    run_experiments ();
    if !selected = [] then bechamel_suite ()
  end;
  print_endline "\nbench: done"
