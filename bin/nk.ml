(* The `nk` command-line tool: run any paper reproduction by id, list them,
   or dump CSV for plotting. *)

open Cmdliner

(* The simulations allocate short-lived NQE buffers and event closures at
   a rate that thrashes the default 256K-word minor heap (~2500 minor
   collections per quick ce-scale run). A bigger minor heap is pure
   wall-clock: it changes no simulated behaviour. 1M words (8 MB) was the
   sweet spot in a sweep — larger heaps only trade minor-GC time for
   page-fault time. *)
let () = Gc.set { (Gc.get ()) with Gc.minor_heap_size = 1 lsl 20 }

let print_report ~csv report =
  if csv then print_endline (Experiments.Report.to_csv report)
  else Experiments.Report.print Format.std_formatter report;
  Format.pp_print_flush Format.std_formatter ()

let run_cmd =
  let ids_doc = "Experiment ids (e.g. fig18 table5); 'all' runs everything." in
  let ids = Arg.(non_empty & pos_all string [] & info [] ~docv:"ID" ~doc:ids_doc) in
  let quick =
    Arg.(value & flag & info [ "quick"; "q" ] ~doc:"Shorter runs (reduced durations).")
  in
  let csv = Arg.(value & flag & info [ "csv" ] ~doc:"Emit CSV instead of tables.") in
  let run ids quick csv =
    let selected =
      if List.mem "all" ids then Experiments.Registry.all
      else
        List.filter_map
          (fun id ->
            match Experiments.Registry.find id with
            | Some e -> Some e
            | None ->
                Printf.eprintf "unknown experiment %S; try `nk list`\n" id;
                exit 2)
          ids
    in
    List.iter
      (fun (e : Experiments.Registry.entry) ->
        Printf.printf "running %s: %s...\n%!" e.Experiments.Registry.id
          e.Experiments.Registry.title;
        print_report ~csv (e.Experiments.Registry.run ~quick ()))
      selected
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run paper reproductions by id")
    Term.(const run $ ids $ quick $ csv)

let list_cmd =
  let run () =
    List.iter
      (fun (e : Experiments.Registry.entry) ->
        Printf.printf "%-8s %s\n" e.Experiments.Registry.id e.Experiments.Registry.title)
      Experiments.Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List available experiments") Term.(const run $ const ())

let bench_cmd =
  let default_ids = [ "ce-scale"; "latency-breakdown" ] in
  let ids =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"ID"
          ~doc:"Experiments to snapshot (default: ce-scale latency-breakdown).")
  in
  let out =
    Arg.(
      value & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Write the snapshot JSON to $(docv).")
  in
  let compare_files =
    Arg.(
      value & opt (some (pair ~sep:',' string string)) None
      & info [ "compare" ] ~docv:"OLD,NEW"
          ~doc:
            "Instead of running, diff two snapshot files: simulated metrics \
             within --tolerance, wall-clock reported as a ratio only. Exits \
             1 on drift.")
  in
  let tolerance =
    Arg.(
      value & opt float 0.001
      & info [ "tolerance" ] ~docv:"FRAC"
          ~doc:
            "Relative tolerance for numeric cells under --compare (default \
             0.001; the simulated tables are deterministic, so drift beyond \
             rendering noise is a real behaviour change).")
  in
  let read_snapshot path =
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    match Experiments.Bench.of_json s with
    | Ok entries -> entries
    | Error msg ->
        Printf.eprintf "nk bench: cannot parse %s: %s\n" path msg;
        exit 2
  in
  let run ids out compare_files tolerance =
    match compare_files with
    | Some (old_path, new_path) ->
        let baseline = read_snapshot old_path and fresh = read_snapshot new_path in
        let mismatches = Experiments.Bench.compare_entries ~tolerance ~baseline ~fresh in
        List.iter
          (fun (id, old_w, new_w, ratio) ->
            Printf.printf "%-18s wall %.2fs -> %.2fs (x%.2f, informational)\n" id old_w
              new_w ratio)
          (Experiments.Bench.wall_ratios ~baseline ~fresh);
        if mismatches = [] then print_endline "bench compare: OK (simulated metrics match)"
        else begin
          List.iter
            (fun (m : Experiments.Bench.mismatch) ->
              Printf.printf "DRIFT %-18s %s\n" m.Experiments.Bench.m_id
                (Experiments.Bench.describe m))
            mismatches;
          Printf.printf "bench compare: %d mismatches beyond tolerance %.4f\n"
            (List.length mismatches) tolerance;
          exit 1
        end
    | None ->
        let ids = if ids = [] then default_ids else ids in
        let entries =
          List.map
            (fun id ->
              match Experiments.Registry.find id with
              | None ->
                  Printf.eprintf "nk bench: unknown experiment %S; try `nk list`\n" id;
                  exit 2
              | Some e ->
                  Printf.eprintf "benchmarking %s (quick)...\n%!" id;
                  let t0 = Unix.gettimeofday () in
                  let report = e.Experiments.Registry.run ~quick:true () in
                  let wall_s = Unix.gettimeofday () -. t0 in
                  Experiments.Bench.of_report ~wall_s report)
            ids
        in
        let json = Experiments.Bench.to_json entries in
        (match out with
        | Some path ->
            let oc = open_out path in
            output_string oc json;
            close_out oc;
            Printf.eprintf "nk bench: wrote %s\n" path
        | None -> print_string json)
  in
  Cmd.v
    (Cmd.info "bench"
       ~doc:
         "Snapshot quick-mode experiment results (simulated metrics + \
          wall-clock) as JSON, or --compare two snapshots")
    Term.(const run $ ids $ out $ compare_files $ tolerance)

let demo_cmd =
  (* A tiny live demo: kv store in a NetKernel VM, queried from another
     machine. *)
  let run () =
    let open Nkcore in
    let tb = Testbed.create () in
    let hosta = Testbed.add_host tb ~name:"hostA" in
    let hostb = Testbed.add_host tb ~name:"hostB" in
    let nsm = Nsm.create_kernel hosta ~name:"nsm" ~vcpus:2 () in
    let vm = Vm.create_nk hosta ~name:"vm" ~vcpus:2 ~ips:[ 10 ] ~nsms:[ nsm ] () in
    let client =
      Vm.create_baseline hostb ~name:"client" ~vcpus:4 ~ips:[ 20 ]
        ~profile:Sim.Cost_profile.ideal ()
    in
    let addr = Addr.make 10 6379 in
    (match Nkapps.Kvstore.start ~engine:tb.Testbed.engine ~api:(Vm.api vm) ~addr with
    | Ok _ -> ()
    | Error e -> failwith (Tcpstack.Types.err_to_string e));
    Nkapps.Kvstore.Client.connect ~engine:tb.Testbed.engine ~api:(Vm.api client) addr
      ~k:(fun r ->
        match r with
        | Error e -> failwith (Tcpstack.Types.err_to_string e)
        | Ok conn ->
            Nkapps.Kvstore.Client.set conn ~key:"stack" ~value:"operated by the cloud"
              ~k:(fun _ ->
                Nkapps.Kvstore.Client.get conn ~key:"stack" ~k:(fun r ->
                    (match r with
                    | Ok (Some v) -> Printf.printf "GET stack -> %S\n" v
                    | Ok None -> print_endline "GET stack -> (nil)"
                    | Error e -> Printf.printf "error: %s\n" e);
                    Nkapps.Kvstore.Client.close conn)));
    Testbed.run tb ~until:1.0;
    print_endline "demo complete: redis-like app served through NetKernel"
  in
  Cmd.v
    (Cmd.info "demo" ~doc:"One-minute NetKernel demo (kv store through an NSM)")
    Term.(const run $ const ())

(* A small representative NetKernel workload (kernel-stack NSM, epoll
   server in the VM, closed-loop load) whose Nkmon handle the stats and
   trace subcommands inspect afterwards. *)
let observed_world ~trace ~config =
  let w = Experiments.Worlds.netkernel ~config () in
  let mon = w.Experiments.Worlds.tb.Nkcore.Testbed.mon in
  if trace then Nkmon.Trace.set_enabled (Nkmon.trace mon) true;
  ignore (Experiments.Worlds.measure_rps w ~concurrency:32 ~total:2_000 ());
  mon

(* The cluster counterpart for the --cluster variants: a two-node Nkfabric
   world under keep-alive load, federated by an Nkobs plane (per-node
   registries and trace rings merge back into one host-tagged view). *)
let observed_cluster ~trace ~seed =
  let open Nkcore in
  let tb =
    Testbed.create
      ~config:{ Testbed.Config.default with seed; trace_enabled = trace }
      ()
  in
  let cluster = Nkfabric.create ~policy:Nkfabric.Spread tb in
  let nodea = Nkfabric.add_node cluster ~name:"nodeA" in
  let nodeb = Nkfabric.add_node cluster ~name:"nodeB" in
  Nkfabric.add_nsm cluster nodea
    (Nsm.create_kernel (Nkfabric.node_host nodea) ~name:"nsmA" ~vcpus:1 ());
  Nkfabric.add_nsm cluster nodeb
    (Nsm.create_kernel (Nkfabric.node_host nodeb) ~name:"nsmB" ~vcpus:1 ());
  let vms =
    List.init 2 (fun i ->
        Nkfabric.place_vm cluster ~name:(Printf.sprintf "srv%d" i) ~vcpus:1
          ~ips:[ 10 + i ] ())
  in
  let clients_host = Testbed.add_host tb ~name:"clients" in
  let client =
    Vm.create_baseline clients_host ~name:"client" ~vcpus:8 ~ips:[ 100; 101 ]
      ~profile:Sim.Cost_profile.ideal ()
  in
  let proto = Nkapps.Proto.Fixed { request = 128; response = 1024; keepalive = true } in
  List.iteri
    (fun i vm ->
      let addr = Addr.make (10 + i) 80 in
      (match
         Nkapps.Epoll_server.start ~engine:tb.Testbed.engine ~api:(Vm.api vm)
           (Nkapps.Epoll_server.config ~proto addr)
       with
      | Ok _ -> ()
      | Error e -> failwith (Tcpstack.Types.err_to_string e));
      ignore
        (Nkapps.Loadgen.start ~engine:tb.Testbed.engine ~api:(Vm.api client)
           {
             Nkapps.Loadgen.server = addr;
             proto;
             mode = Nkapps.Loadgen.Closed { concurrency = 8; total = Some 1_000; duration = None };
             warmup = 0.0;
           }))
    vms;
  let obs = Nkobs.of_fabric cluster in
  Nkobs.start obs;
  Testbed.run tb ~until:1.0;
  Nkobs.stop obs;
  obs

let cluster_flag =
  Arg.(
    value & flag
    & info [ "cluster" ]
        ~doc:
          "Observe a two-node Nkfabric cluster through Nkobs instead of a \
           single host: metrics are host-tagged and traces merged in \
           virtual-time order. World knobs other than --seed are ignored.")

let ce_cores_arg =
  Arg.(
    value & opt int 1
    & info [ "ce-cores" ] ~docv:"N"
        ~doc:
          "Number of CoreEngine switching shards (dedicated cores); with \
           more than one, per-shard metrics appear as ce.shard<k>.")

(* The world knobs the workload subcommands expose, assembled straight
   into a [Worlds.Config.t] so a new knob is one field + one flag here
   rather than another optional argument through every signature. *)
let world_config_term =
  let vcpus_arg =
    Arg.(value & opt int 1 & info [ "vcpus" ] ~docv:"N" ~doc:"Server-VM vCPUs.")
  in
  let nsm_cores_arg =
    Arg.(value & opt int 1 & info [ "nsm-cores" ] ~docv:"N" ~doc:"Cores per NSM.")
  in
  let seed_arg =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Testbed RNG seed.")
  in
  let build ce_cores vcpus nsm_cores seed =
    Experiments.Worlds.Config.with_seed seed
      { Experiments.Worlds.Config.default with ce_cores; vcpus; nsm_cores }
  in
  Term.(const build $ ce_cores_arg $ vcpus_arg $ nsm_cores_arg $ seed_arg)

let stats_cmd =
  let csv = Arg.(value & flag & info [ "csv" ] ~doc:"Emit CSV instead of a table.") in
  let format =
    Arg.(
      value
      & opt (enum [ ("table", `Table); ("csv", `Csv); ("json", `Json) ]) `Table
      & info [ "format" ] ~docv:"FORMAT" ~doc:"Output format: table, csv or json.")
  in
  let filter =
    Arg.(
      value & opt string ""
      & info [ "filter" ] ~docv:"PREFIX"
          ~doc:"Keep only metrics whose component name starts with $(docv).")
  in
  let run csv format filter cluster config =
    let report =
      if cluster then
        let seed = config.Experiments.Worlds.Config.tb.Nkcore.Testbed.Config.seed in
        let obs = observed_cluster ~trace:false ~seed in
        Experiments.Mon_report.cluster_table ~filter obs
      else Experiments.Mon_report.table ~filter (observed_world ~trace:false ~config)
    in
    match (if csv then `Csv else format) with
    | `Table -> print_report ~csv:false report
    | `Csv -> print_endline (Experiments.Report.to_csv report)
    | `Json -> print_endline (Experiments.Report.to_json report)
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Run a small NetKernel workload and print every Nkmon metric \
          (component/instance/metric) it produced; with --cluster, the \
          Nkobs-federated host-tagged view of a two-node fabric")
    Term.(const run $ csv $ format $ filter $ cluster_flag $ world_config_term)

let trace_cmd =
  let csv = Arg.(value & flag & info [ "csv" ] ~doc:"Emit CSV instead of JSON.") in
  let run csv cluster config =
    if cluster then begin
      let seed = config.Experiments.Worlds.Config.tb.Nkcore.Testbed.Config.seed in
      let obs = observed_cluster ~trace:true ~seed in
      if csv then print_string (Nkobs.merged_trace_csv obs)
      else print_string (Nkobs.merged_trace_json obs);
      List.iter
        (fun (host, mon) ->
          let dropped = Nkmon.dropped_events mon in
          if dropped > 0 then
            Printf.eprintf "nk trace: warning: host %s dropped %d events\n" host dropped)
        (Nkobs.sources obs)
    end
    else begin
      let mon = observed_world ~trace:true ~config in
      let tr = Nkmon.trace mon in
      if csv then print_string (Nkmon.Trace.to_csv tr)
      else print_string (Nkmon.Trace.to_json tr);
      let dropped = Nkmon.Trace.dropped tr in
      if dropped > 0 then
        Printf.eprintf
          "nk trace: warning: %d events dropped (ring capacity %d); rerun with a \
           larger trace ring to keep them\n"
          dropped
          (Nkmon.Trace.capacity tr)
    end
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run a small NetKernel workload with event tracing enabled and dump \
          the virtual-time trace (JSON by default); with --cluster, every \
          host's trace merged in virtual-time order")
    Term.(const run $ csv $ cluster_flag $ world_config_term)

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc;
  Printf.eprintf "nk: wrote %s\n" path

let span_cmd =
  let experiment =
    Arg.(
      value & opt string "latency-breakdown"
      & info [ "experiment" ] ~docv:"ID"
          ~doc:"Workload to trace (currently only latency-breakdown).")
  in
  let every =
    Arg.(
      value & opt int 16
      & info [ "every" ] ~docv:"N" ~doc:"Sample one request span in every $(docv).")
  in
  let quick = Arg.(value & flag & info [ "quick"; "q" ] ~doc:"Shorter run.") in
  let csv = Arg.(value & flag & info [ "csv" ] ~doc:"Emit CSV instead of a table.") in
  let catapult =
    Arg.(
      value & opt (some string) None
      & info [ "catapult" ] ~docv:"FILE"
          ~doc:
            "Also write the spans as Chrome trace-event JSON (load in \
             chrome://tracing or Perfetto).")
  in
  let run experiment every quick csv catapult ce_cores =
    if experiment <> "latency-breakdown" then begin
      Printf.eprintf "nk span: unknown experiment %S (try latency-breakdown)\n" experiment;
      exit 2
    end;
    if every < 1 then begin
      Printf.eprintf "nk span: --every must be >= 1\n";
      exit 2
    end;
    let report, spans =
      Experiments.Latency_breakdown.run_world ~quick ~span_every:every ~ce_cores ()
    in
    print_report ~csv report;
    (match catapult with
    | Some path -> write_file path (Nkspan.to_catapult spans)
    | None -> ());
    if Nkspan.dropped spans > 0 then
      Printf.eprintf "nk span: warning: %d spans dropped (capacity)\n"
        (Nkspan.dropped spans)
  in
  Cmd.v
    (Cmd.info "span"
       ~doc:
         "Trace sampled requests end to end through the NetKernel datapath \
          and print the per-stage latency breakdown")
    Term.(const run $ experiment $ every $ quick $ csv $ catapult $ ce_cores_arg)

let profile_cmd =
  let quick = Arg.(value & flag & info [ "quick"; "q" ] ~doc:"Shorter run.") in
  let collapsed =
    Arg.(
      value & opt (some string) None
      & info [ "collapsed" ] ~docv:"FILE"
          ~doc:
            "Also write flamegraph.pl-compatible collapsed stacks \
             (component;stage cycles).")
  in
  let run quick collapsed config =
    let w = Experiments.Worlds.netkernel ~config () in
    let tb = w.Experiments.Worlds.tb in
    let spans = tb.Nkcore.Testbed.spans in
    Nkspan.enable_profiler spans tb.Nkcore.Testbed.engine;
    let total = if quick then 2_000 else 10_000 in
    let r = Experiments.Worlds.measure_rps w ~concurrency:32 ~total () in
    let cells = Nkspan.profile_table spans in
    let all = Nkspan.total_cycles spans in
    Printf.printf "cycle profile (%d requests, %.1fK rps, %.0f cycles attributed):\n\n"
      total
      (r.Experiments.Worlds.rps /. 1e3)
      all;
    Printf.printf "  %-14s %-12s %14s %7s\n" "component" "stage" "self-cycles" "share";
    List.iter
      (fun (c : Nkspan.cell) ->
        Printf.printf "  %-14s %-12s %14.0f %6.1f%%\n" c.Nkspan.p_comp c.Nkspan.p_stage
          c.Nkspan.p_cycles
          (if all > 0.0 then 100.0 *. c.Nkspan.p_cycles /. all else 0.0))
      cells;
    match collapsed with
    | Some path -> write_file path (Nkspan.to_collapsed spans)
    | None -> ()
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Run a NetKernel workload with the cycle profiler on and print the \
          per-(component, stage) self-cycles table")
    Term.(const run $ quick $ collapsed $ world_config_term)

let orchestrate_cmd =
  (* The control plane live: two NetKernel VMs under closed-loop load, the
     Nkctl autoscaler ticking, one NSM crash injected mid-run. Prints the
     virtual-time control-event log and a service summary. *)
  let crash_at_doc = "Inject an NSM crash at this virtual time (seconds); 0 disables." in
  let crash_at =
    Arg.(value & opt float 2.0 & info [ "crash-at" ] ~docv:"SECONDS" ~doc:crash_at_doc)
  in
  let duration =
    Arg.(value & opt float 6.0 & info [ "duration" ] ~docv:"SECONDS" ~doc:"Run length.")
  in
  let run crash_at duration =
    let open Nkcore in
    let tb =
      Testbed.create
        ~config:
          { Testbed.Config.default with
            trace_enabled = true;
            trace_capacity = Some (1 lsl 20)
          }
        ()
    in
    let hosta = Testbed.add_host tb ~name:"hostA" in
    let hostb = Testbed.add_host tb ~name:"hostB" in
    let spawn i = Nsm.create_kernel hosta ~name:(Printf.sprintf "nsm%d" i) ~vcpus:1 () in
    let nsm0 = spawn 0 in
    let ctl =
      Nkctl.create hosta
        ~policy:{ Nkctl.Policy.default with period = 0.25; max_nsms = 3 }
        ~spawn:(fun i -> spawn (i + 1))
        ()
    in
    Nkctl.manage ctl nsm0;
    let proto = Nkapps.Proto.Fixed { request = 64; response = 512; keepalive = false } in
    let client =
      Vm.create_baseline hostb ~name:"client" ~vcpus:8 ~ips:[ 20; 21 ]
        ~profile:Sim.Cost_profile.ideal ()
    in
    let lgs =
      List.map
        (fun i ->
          let vm =
            Vm.create_nk hosta
              ~name:(Printf.sprintf "vm%d" i)
              ~vcpus:1 ~ips:[ 10 + i ] ~nsms:[ nsm0 ] ()
          in
          Nkctl.add_vm ctl vm ~home:nsm0;
          let addr = Addr.make (10 + i) 80 in
          (match
             Nkapps.Epoll_server.start ~engine:tb.Testbed.engine ~api:(Vm.api vm)
               (Nkapps.Epoll_server.config ~proto addr)
           with
          | Ok _ -> ()
          | Error e -> failwith (Tcpstack.Types.err_to_string e));
          Nkapps.Loadgen.start ~engine:tb.Testbed.engine ~api:(Vm.api client)
            {
              Nkapps.Loadgen.server = addr;
              proto;
              mode =
                Nkapps.Loadgen.Closed
                  { concurrency = 16; total = None; duration = Some duration };
              warmup = 0.0;
            })
        [ 0; 1 ]
    in
    Nkctl.start ctl;
    if crash_at > 0.0 then
      ignore
        (Sim.Engine.schedule tb.Testbed.engine ~delay:crash_at (fun () ->
             match Nkctl.active_nsms ctl with
             | nsm :: _ -> Nsm.fail nsm
             | [] -> ()));
    (* The dataplane floods the trace ring, so sweep the control-plane
       events out of it periodically instead of reading it only at the end. *)
    let ctl_log = ref [] in
    let last_seq = ref (-1) in
    let sweep () =
      List.iter
        (fun (r : Nkmon.Trace.record) ->
          if r.Nkmon.Trace.seq > !last_seq then begin
            last_seq := r.Nkmon.Trace.seq;
            match r.Nkmon.Trace.event with
            | Nkmon.Trace.Custom
                { component = ("nkctl" | "coreengine") as c; name; detail }
              when c = "nkctl"
                   || List.mem name [ "drain"; "undrain"; "deregister_nsm"; "crash_nsm" ]
              -> ctl_log := (r.Nkmon.Trace.time, c, name, detail) :: !ctl_log
            | _ -> ()
          end)
        (Nkmon.Trace.records (Nkmon.trace tb.Testbed.mon))
    in
    let rec sweeper () =
      sweep ();
      ignore (Sim.Engine.schedule tb.Testbed.engine ~delay:0.1 sweeper)
    in
    sweeper ();
    Testbed.run tb ~until:(duration +. 0.5);
    Nkctl.stop ctl;
    sweep ();
    print_endline "control events (virtual time):";
    List.iter
      (fun (time, c, name, detail) ->
        Printf.printf "  %8.3fs  %-10s %-12s %s\n" time c name detail)
      (List.rev !ctl_log);
    let completed, errors =
      List.fold_left
        (fun (c, e) lg ->
          let r = Nkapps.Loadgen.results lg in
          (c + r.Nkapps.Loadgen.completed, e + r.Nkapps.Loadgen.errors))
        (0, 0) lgs
    in
    let s = Nkctl.stats ctl in
    Printf.printf
      "summary: %d requests served, %d errors; scale-ups %d, scale-downs %d, \
       handovers %d, failovers %d, drains completed %d; %d NSM(s) active\n"
      completed errors s.Nkctl.scale_ups s.Nkctl.scale_downs s.Nkctl.handovers
      s.Nkctl.failovers s.Nkctl.drains_completed
      (List.length (Nkctl.active_nsms ctl))
  in
  Cmd.v
    (Cmd.info "orchestrate"
       ~doc:
         "Run the Nkctl control plane live: autoscaling under load, a \
          mid-run NSM crash with failover, and the control-event log")
    Term.(const run $ crash_at $ duration)

let cluster_cmd =
  (* The cluster fabric live: two nodes serving keep-alive RPC through
     NetKernel, one live cross-host NSM migration mid-run. Prints the
     virtual-time fabric-event log and a service summary. *)
  let migrate_at_doc = "Start the live NSM migration at this virtual time (seconds)." in
  let migrate_at =
    Arg.(value & opt float 2.0 & info [ "migrate-at" ] ~docv:"SECONDS" ~doc:migrate_at_doc)
  in
  let duration =
    Arg.(value & opt float 6.0 & info [ "duration" ] ~docv:"SECONDS" ~doc:"Run length.")
  in
  let back =
    Arg.(
      value & flag
      & info [ "back" ]
          ~doc:"Also migrate the destination NSM back home (re-migration) at 2x the first time.")
  in
  let run migrate_at duration back =
    let open Nkcore in
    let tb =
      Testbed.create
        ~config:
          { Testbed.Config.default with
            trace_enabled = true;
            trace_capacity = Some (1 lsl 20)
          }
        ()
    in
    let cluster = Nkfabric.create ~policy:Nkfabric.Spread tb in
    let nodea = Nkfabric.add_node cluster ~name:"nodeA" in
    let nodeb = Nkfabric.add_node cluster ~name:"nodeB" in
    let nsma = Nsm.create_kernel (Nkfabric.node_host nodea) ~name:"nsmA" ~vcpus:1 () in
    let nsmb = Nsm.create_kernel (Nkfabric.node_host nodeb) ~name:"nsmB" ~vcpus:1 () in
    Nkfabric.add_nsm cluster nodea nsma;
    Nkfabric.add_nsm cluster nodeb nsmb;
    let vms =
      List.init 4 (fun i ->
          Nkfabric.place_vm cluster ~name:(Printf.sprintf "srv%d" i) ~vcpus:1
            ~ips:[ 10 + i ] ())
    in
    let clients_host = Testbed.add_host tb ~name:"clients" in
    let client =
      Vm.create_baseline clients_host ~name:"client" ~vcpus:16
        ~ips:(List.init 8 (fun i -> 100 + i))
        ~profile:Sim.Cost_profile.ideal ()
    in
    let proto = Nkapps.Proto.Fixed { request = 128; response = 1024; keepalive = true } in
    let lgs =
      List.mapi
        (fun i vm ->
          let addr = Addr.make (10 + i) 80 in
          (match
             Nkapps.Epoll_server.start ~engine:tb.Testbed.engine ~api:(Vm.api vm)
               (Nkapps.Epoll_server.config ~proto addr)
           with
          | Ok _ -> ()
          | Error e -> failwith (Tcpstack.Types.err_to_string e));
          Nkapps.Loadgen.start ~engine:tb.Testbed.engine ~api:(Vm.api client)
            {
              Nkapps.Loadgen.server = addr;
              proto;
              mode =
                Nkapps.Loadgen.Closed
                  { concurrency = 8; total = None; duration = Some duration };
              warmup = 0.0;
            })
        vms
    in
    ignore
      (Sim.Engine.schedule tb.Testbed.engine ~delay:migrate_at (fun () ->
           let dest = Nkfabric.migrate_nsm cluster ~nsm:nsma ~dst:nodeb () in
           if back then
             ignore
               (Sim.Engine.schedule tb.Testbed.engine ~delay:migrate_at (fun () ->
                    ignore (Nkfabric.migrate_nsm cluster ~nsm:dest ~dst:nodea ())))));
    (* Sweep fabric events out of the trace ring before the dataplane floods
       it (same trick as orchestrate). *)
    let ev_log = ref [] in
    let last_seq = ref (-1) in
    let sweep () =
      List.iter
        (fun (r : Nkmon.Trace.record) ->
          if r.Nkmon.Trace.seq > !last_seq then begin
            last_seq := r.Nkmon.Trace.seq;
            match r.Nkmon.Trace.event with
            | Nkmon.Trace.Custom { component = "nkfabric"; name; detail } ->
                ev_log := (r.Nkmon.Trace.time, name, detail) :: !ev_log
            | _ -> ()
          end)
        (Nkmon.Trace.records (Nkmon.trace tb.Testbed.mon))
    in
    let rec sweeper () =
      sweep ();
      ignore (Sim.Engine.schedule tb.Testbed.engine ~delay:0.1 sweeper)
    in
    sweeper ();
    Testbed.run tb ~until:(duration +. 0.5);
    sweep ();
    print_endline "fabric events (virtual time):";
    List.iter
      (fun (time, name, detail) -> Printf.printf "  %8.3fs  %-8s %s\n" time name detail)
      (List.rev !ev_log);
    let completed, errors =
      List.fold_left
        (fun (c, e) lg ->
          let r = Nkapps.Loadgen.results lg in
          (c + r.Nkapps.Loadgen.completed, e + r.Nkapps.Loadgen.errors))
        (0, 0) lgs
    in
    let s = Nkfabric.stats cluster in
    Printf.printf
      "summary: %d requests served, %d errors; %d migration(s), %d VM(s) relayed, \
       %d NQEs (%d bytes) over the spine; nodeA serves %d VM(s), nodeB %d\n"
      completed errors s.Nkfabric.migrations s.Nkfabric.vms_relayed s.Nkfabric.nqes_shipped
      s.Nkfabric.bytes_shipped
      (Nkfabric.node_vm_count cluster nodea)
      (Nkfabric.node_vm_count cluster nodeb)
  in
  Cmd.v
    (Cmd.info "cluster"
       ~doc:
         "Run the Nkfabric cluster live: two nodes under keep-alive load, a \
          live cross-host NSM migration, and the fabric-event log")
    Term.(const run $ migrate_at $ duration $ back)

let () =
  let doc = "NetKernel reproduction: decoupled VM network stacks, simulated" in
  exit
    (Cmd.eval
       (Cmd.group
          (Cmd.info "nk" ~version:"1.0.0" ~doc)
          [
            run_cmd; list_cmd; bench_cmd; demo_cmd; stats_cmd; trace_cmd; span_cmd;
            profile_cmd; orchestrate_cmd; cluster_cmd;
          ]))
