(* Use case 2 (§6.2): VM-level fair bandwidth sharing.

   A selfish VM opens 16 flows against a well-behaved VM's 8. With per-flow
   TCP the selfish VM grabs ~2/3 of the link; with the VM-level congestion
   control NSM each VM holds one shared window and the split returns to
   ~50/50.

     dune exec examples/fair_sharing.exe *)

open Nkcore
module T = Tcpstack

let run ~label ~mk_vm =
  let tb = Testbed.create
      ~config:
        { Testbed.Config.default with rate_gbps = 10.0; buffer_bytes = Some (1024 * 1024) }
      () in
  let host_a = Testbed.add_host tb ~name:"hostA" in
  let host_b = Testbed.add_host tb ~name:"hostB" in
  let vm1 = mk_vm host_a "fair-vm" 10 in
  let vm2 = mk_vm host_a "selfish-vm" 11 in
  let client =
    Vm.create_baseline host_b ~name:"sink" ~vcpus:16 ~ips:[ 20 ]
      ~profile:Sim.Cost_profile.ideal ()
  in
  let sink port =
    match
      Nkapps.Stream.sink ~engine:tb.Testbed.engine ~api:(Vm.api client)
        ~addr:(Addr.make 20 port)
    with
    | Ok s -> s
    | Error e -> failwith (T.Types.err_to_string e)
  in
  let s1 = sink 5001 and s2 = sink 5002 in
  ignore
    (Sim.Engine.schedule tb.Testbed.engine ~delay:1e-3 (fun () ->
         ignore
           (Nkapps.Stream.senders ~engine:tb.Testbed.engine ~api:(Vm.api vm1)
              ~dst:(Addr.make 20 5001) ~streams:8 ~msg_size:16384 ~stop:2.0 ());
         ignore
           (Nkapps.Stream.senders ~engine:tb.Testbed.engine ~api:(Vm.api vm2)
              ~dst:(Addr.make 20 5002) ~streams:16 ~msg_size:16384 ~stop:2.0 ())));
  Testbed.run tb ~until:2.1;
  let g1 = Nkapps.Stream.sink_throughput_gbps s1 in
  let g2 = Nkapps.Stream.sink_throughput_gbps s2 in
  Printf.printf "%-38s fair VM %4.1f G | selfish VM %4.1f G | Jain %.2f\n%!" label g1 g2
    (Nkutil.Stats.jain_fairness [| g1; g2 |])

let () =
  print_endline "8 flows (fair VM) vs 16 flows (selfish VM) over a shared 10G link:\n";
  run ~label:"Baseline (per-flow CUBIC)" ~mk_vm:(fun host name ip ->
      Vm.create_baseline host ~name ~vcpus:2 ~ips:[ ip ] ());
  run ~label:"NetKernel (VM-level CC NSM)" ~mk_vm:(fun host name ip ->
      let group = T.Cc_vm.create_group ~mss:Segment.mss () in
      let nsm =
        Nsm.create_kernel host ~name:(name ^ ".nsm") ~vcpus:2
          ~cc_factory:(T.Cc_vm.factory group) ()
      in
      Vm.create_nk host ~name ~vcpus:2 ~ips:[ ip ] ~nsms:[ nsm ] ());
  print_endline
    "\nWith the VM-level controller each VM keeps one congestion window, so\n\
     opening more flows buys the selfish VM nothing (the paper's Fig 9)."
