module Cpu = Sim.Cpu
module Engine = Sim.Engine
module Ring = Nkutil.Spsc_ring
module Types = Tcpstack.Types

type route = { nsm_id : int; nsm_qset : int }

(* Connection-table keys are ⟨VM id, socket id⟩. *)
let conn_key_cmp = Nkutil.Det_tbl.pair Int.compare Int.compare

type deferred_entry =
  | To_nsm of bytes
  | To_vm of { src_nsm : int; src_qset : int; raw : bytes }

(* Per-VM FIFO of NQEs awaiting tokens or ring space; once non-empty all of
   that VM's traffic dispatched by the owning shard flows through it to
   preserve ordering. The per-direction pending counters are maintained on
   every enqueue/dequeue so the hot dispatch path never scans the queue to
   learn whether a direction is parked. *)
type dq = {
  entries : deferred_entry Queue.t;
  mutable to_vm_pending : int;
  mutable to_nsm_pending : int;
}

type stats = {
  switched : int;
  rate_deferred : int;
  ring_deferred : int;
  dropped : int;
  sweeps : int;
}

(* Live registry-backed counters; [stats] snapshots them. *)
type counters = {
  c_switched : Nkmon.Registry.counter;
  c_rate_deferred : Nkmon.Registry.counter;
  c_ring_deferred : Nkmon.Registry.counter;
  c_dropped : Nkmon.Registry.counter;
  c_sweeps : Nkmon.Registry.counter;
  c_error_completions : Nkmon.Registry.counter;
  c_xshard : Nkmon.Registry.counter;
}

(* One switching shard: its own polling core, run state, deferred queues and
   counters. Queue sets are assigned to shards by the deterministic affinity
   function [(dev_id + qset) mod n_shards], so every SPSC ring has exactly
   one consuming (outbound) / producing (inbound) shard. *)
type shard = {
  idx : int;
  sinstance : string; (* "ce" or "ce.shard<k>", also the span component *)
  cpu : Cpu.t;
  mutable running : bool;
  mutable release_scheduled : bool;
  deferred : (int, dq) Hashtbl.t; (* vm_id -> parked traffic *)
  ctr : counters;
  sweep_batch : Nkutil.Histogram.t;
  (* Reusable sweep work buffers (parallel arrays). A record's source is
     packed into one int: -1 for VM-originated, else
     [(nsm_dev_id lsl 16) lor src_qset]. Safe to reuse per shard: the
     deferred dispatch closure always runs before the next sweep of this
     shard ([running] stays true until a sweep comes back empty). *)
  mutable sweep_src : int array;
  mutable sweep_raw : bytes array;
  mutable sweep_len : int;
}

type t = {
  engine : Engine.t;
  costs : Nk_costs.t;
  mutable shards : shard array;
  vms : (int, Nk_device.t) Hashtbl.t;
  nsms : (int, Nk_device.t) Hashtbl.t;
  mutable device_order : (Nk_device.t * [ `Vm | `Nsm ]) list;
  assignment : (int, int array * int ref) Hashtbl.t; (* vm_id -> nsms, rr *)
  conn_table : (int * int, route) Hashtbl.t; (* (vm_id, sock) -> route *)
  nsm_conns : (int, int ref) Hashtbl.t; (* nsm_id -> live table entries *)
  draining : (int, unit) Hashtbl.t; (* NSMs excluded from new assignments *)
  buckets : (int, Nkutil.Token_bucket.t) Hashtbl.t;
  mon : Nkmon.t;
  spans : Nkspan.t;
  instance : string;
}

let make_counters mon ~instance =
  let c name = Nkmon.counter mon ~component:"coreengine" ~instance ~name in
  {
    c_switched = c "switched";
    c_rate_deferred = c "rate_deferred";
    c_ring_deferred = c "ring_deferred";
    c_dropped = c "dropped";
    c_sweeps = c "sweeps";
    c_error_completions = c "error_completions";
    c_xshard = c "xshard";
  }

(* A lone shard keeps the engine's base instance name (bit-compatible with
   the pre-sharding metric namespace); shards of a multi-core engine — and
   any shard added later by [scale_out] — report as [<instance>.shard<k>]. *)
let shard_instance ~instance ~solo idx =
  if solo then instance else Printf.sprintf "%s.shard%d" instance idx

let make_shard mon ~instance ~solo ~idx cpu =
  let instance = shard_instance ~instance ~solo idx in
  let sh =
    {
      idx;
      sinstance = instance;
      cpu;
      running = false;
      release_scheduled = false;
      deferred = Hashtbl.create 16;
      ctr = make_counters mon ~instance;
      sweep_batch =
        Nkmon.histogram mon ~component:"coreengine" ~instance ~name:"sweep_batch";
      sweep_src = Array.make 64 (-1);
      sweep_raw = Array.make 64 Bytes.empty;
      sweep_len = 0;
    }
  in
  (* Instantaneous parked-NQE depth across this shard's deferred queues:
     the CE-side backpressure signal the Nkobs ring-pressure alert reads.
     Evaluated only when a registry snapshot is taken. *)
  Nkmon.sampler mon ~component:"coreengine" ~instance ~name:"deferred_depth" (fun () ->
      float_of_int
        (Nkutil.Det_tbl.fold ~cmp:Int.compare
           (fun _ dq acc -> acc + Queue.length dq.entries)
           sh.deferred 0));
  sh

let create ~engine ~cores ?(mon = Nkmon.null ()) ?(spans = Nkspan.null ())
    ?(instance = "ce") costs =
  let n = Array.length cores in
  if n = 0 then invalid_arg "Coreengine.create: need at least one CE core";
  let solo = n = 1 in
  let t =
    {
      engine;
      costs;
      shards = Array.mapi (fun idx cpu -> make_shard mon ~instance ~solo ~idx cpu) cores;
      vms = Hashtbl.create 16;
      nsms = Hashtbl.create 16;
      device_order = [];
      assignment = Hashtbl.create 16;
      conn_table = Hashtbl.create 1024;
      nsm_conns = Hashtbl.create 16;
      draining = Hashtbl.create 4;
      buckets = Hashtbl.create 16;
      mon;
      spans;
      instance;
    }
  in
  Nkmon.sampler mon ~component:"coreengine" ~instance ~name:"conn_table_size" (fun () ->
      float_of_int (Hashtbl.length t.conn_table));
  t

let n_shards t = Array.length t.shards

let cores t = Array.map (fun sh -> sh.cpu) t.shards

let core t = t.shards.(0).cpu

(* Deterministic queue-set affinity: shard [(dev_id + qset) mod n_shards]
   owns device [dev_id]'s queue set [qset] — it alone pops the outbound
   rings of that queue set. VM and NSM id spaces overlap; that only spreads
   ownership, it never aliases a ring. *)
let owner_idx t ~dev_id ~qset = (dev_id + qset) mod Array.length t.shards

let owner_shard t dev qset =
  t.shards.(owner_idx t ~dev_id:(Nk_device.id dev) ~qset)

(* Per-VM global state (conn-table entries, assignment row, token bucket)
   is owned by the VM's home shard; other shards touching it pay the
   cross-shard cacheline cost. *)
let vm_home_idx t vm_id = vm_id mod Array.length t.shards

let vm_home_shard t vm_id = t.shards.(vm_home_idx t vm_id)

let charge_xshard t (sh : shard) =
  Cpu.charge sh.cpu ~cycles:t.costs.Nk_costs.ce_xshard;
  Nkmon.Registry.incr sh.ctr.c_xshard

let snapshot ctr =
  let module R = Nkmon.Registry in
  {
    switched = R.counter_value ctr.c_switched;
    rate_deferred = R.counter_value ctr.c_rate_deferred;
    ring_deferred = R.counter_value ctr.c_ring_deferred;
    dropped = R.counter_value ctr.c_dropped;
    sweeps = R.counter_value ctr.c_sweeps;
  }

let shard_stats t = Array.map (fun sh -> snapshot sh.ctr) t.shards

let stats t =
  Array.fold_left
    (fun acc sh ->
      let s = snapshot sh.ctr in
      {
        switched = acc.switched + s.switched;
        rate_deferred = acc.rate_deferred + s.rate_deferred;
        ring_deferred = acc.ring_deferred + s.ring_deferred;
        dropped = acc.dropped + s.dropped;
        sweeps = acc.sweeps + s.sweeps;
      })
    { switched = 0; rate_deferred = 0; ring_deferred = 0; dropped = 0; sweeps = 0 }
    t.shards

let drop (sh : shard) t raw reason =
  Nkmon.Registry.incr sh.ctr.c_dropped;
  if Nkmon.tracing t.mon then
    let vm_id, sock =
      match raw with
      | Some r when Nqe.View.ok r -> (Nqe.View.vm_id r, Nqe.View.sock r)
      | _ -> (-1, -1)
    in
    Nkmon.event t.mon (Nkmon.Trace.Nqe_drop { vm_id; sock; reason })

let switched (sh : shard) t raw dst =
  (* The ce-switch stage opened when the owning shard popped the NQE; any
     deferral retries in between kept it open, so parked time counts as
     switching latency. *)
  Nkspan.end_stage t.spans ~id:(Nqe.View.span raw) "ce-switch";
  Nkmon.Registry.incr sh.ctr.c_switched;
  if Nkmon.tracing t.mon then
    let dst =
      match dst with
      | `Vm i -> Printf.sprintf "vm%d" i
      | `Nsm i -> Printf.sprintf "nsm%d" i
    in
    Nkmon.event t.mon
      (Nkmon.Trace.Nqe_switch
         {
           vm_id = Nqe.View.vm_id raw;
           sock = Nqe.View.sock raw;
           op = Nqe.op_to_string (Nqe.View.op raw);
           dst;
         })

let conn_table_size t = Hashtbl.length t.conn_table

let dump_conn_table t =
  let buf = Buffer.create 256 in
  Nkutil.Det_tbl.iter ~cmp:conn_key_cmp
    (fun (vm_id, sock) r ->
      Buffer.add_string buf
        (Printf.sprintf "vm=%d sock=%d -> nsm=%d qset=%d\n" vm_id sock r.nsm_id
           r.nsm_qset))
    t.conn_table;
  Buffer.contents buf

(* All connection-table mutations go through these two so the per-NSM entry
   counts (the drain-completion signal) can never desynchronize. Mutations
   from a shard that is not the VM's home shard pay the cross-shard cost
   ([sh] is absent on control-plane paths, which run on no CE core). *)
let conn_counter t nsm_id =
  match Hashtbl.find_opt t.nsm_conns nsm_id with
  | Some r -> r
  | None ->
      let r = ref 0 in
      (* Internal to the accessors: the cross-shard charge happened at the
         table_add/table_remove entry point. (* nkscope: ce-owner *) *)
      Hashtbl.replace t.nsm_conns nsm_id r;
      r

let table_add ?sh t key route =
  (match sh with
  | Some sh when vm_home_idx t (fst key) <> sh.idx -> charge_xshard t sh
  | _ -> ());
  (match Hashtbl.find_opt t.conn_table key with
  | Some prev -> decr (conn_counter t prev.nsm_id)
  | None -> ());
  Hashtbl.replace t.conn_table key route;
  incr (conn_counter t route.nsm_id)

let table_remove ?sh t key =
  match Hashtbl.find_opt t.conn_table key with
  | None -> ()
  | Some r ->
      (match sh with
      | Some sh when vm_home_idx t (fst key) <> sh.idx -> charge_xshard t sh
      | _ -> ());
      Hashtbl.remove t.conn_table key;
      decr (conn_counter t r.nsm_id)

let nsm_conn_count t ~nsm_id =
  match Hashtbl.find_opt t.nsm_conns nsm_id with Some r -> !r | None -> 0

let ctl_event t name detail =
  if Nkmon.tracing t.mon then
    Nkmon.event t.mon (Nkmon.Trace.Custom { component = "coreengine"; name; detail })

let attach t ~vm_id ~nsm_ids =
  if nsm_ids = [] then invalid_arg "Coreengine.attach: need at least one NSM";
  Hashtbl.replace t.assignment vm_id (Array.of_list nsm_ids, ref 0)

let detach t ~vm_id ~nsm_id =
  match Hashtbl.find_opt t.assignment vm_id with
  | None -> ()
  | Some (nsms, _rr) ->
      let rest = List.filter (fun id -> id <> nsm_id) (Array.to_list nsms) in
      if List.length rest < Array.length nsms then begin
        if rest = [] then Hashtbl.remove t.assignment vm_id
        else Hashtbl.replace t.assignment vm_id (Array.of_list rest, ref 0);
        ctl_event t "detach" (Printf.sprintf "vm=%d nsm=%d" vm_id nsm_id)
      end

let drain_nsm t ~nsm_id =
  if not (Hashtbl.mem t.draining nsm_id) then begin
    Hashtbl.replace t.draining nsm_id ();
    ctl_event t "drain_nsm" (Printf.sprintf "nsm=%d conns=%d" nsm_id (nsm_conn_count t ~nsm_id))
  end

let undrain_nsm t ~nsm_id =
  if Hashtbl.mem t.draining nsm_id then begin
    Hashtbl.remove t.draining nsm_id;
    ctl_event t "undrain_nsm" (Printf.sprintf "nsm=%d" nsm_id)
  end

let is_draining t ~nsm_id = Hashtbl.mem t.draining nsm_id

let forget_route t ~vm_id ~sock = table_remove t (vm_id, sock)

let add_route t ~vm_id ~sock ~nsm_id ~nsm_qset =
  table_add t (vm_id, sock) { nsm_id; nsm_qset }

let nsm_routes t ~nsm_id =
  Nkutil.Det_tbl.fold ~cmp:conn_key_cmp
    (fun (vm_id, sock) r acc ->
      if r.nsm_id = nsm_id then (vm_id, sock, r.nsm_qset) :: acc else acc)
    t.conn_table []
  |> List.rev

let rehome_nsm_routes t ~from_nsm ~to_nsm =
  (* Re-point every route at [from_nsm] to [to_nsm], keeping queue-set
     targets (the replacement device must expose at least as many queue
     sets). Used by live migration: the stub device standing in for a
     departed NSM inherits its flows atomically. *)
  let moved =
    Nkutil.Det_tbl.fold ~cmp:conn_key_cmp
      (fun key r acc -> if r.nsm_id = from_nsm then (key, r.nsm_qset) :: acc else acc)
      t.conn_table []
  in
  List.iter
    (fun (key, qset) -> table_add t key { nsm_id = to_nsm; nsm_qset = qset })
    moved;
  ctl_event t "rehome"
    (Printf.sprintf "from_nsm=%d to_nsm=%d routes=%d" from_nsm to_nsm
       (List.length moved));
  List.length moved

let forget_vm_routes t ~vm_id ~nsm_id =
  (* Drop every route of [vm_id] still pointing at [nsm_id] so each affected
     socket's next NQE re-runs NSM assignment. The relay unwind (Nkfabric)
     needs this: a VM migrating back home still routes sockets its export
     does not cover (listeners, bare sockets) at the stand-in stub — left in
     place, their replayed NQEs would bounce home CE -> stub forever. *)
  let keys =
    Nkutil.Det_tbl.fold ~cmp:conn_key_cmp
      (fun key r acc ->
        if fst key = vm_id && r.nsm_id = nsm_id then key :: acc else acc)
      t.conn_table []
  in
  List.iter (table_remove t) keys;
  (* No routes matched (nothing pointed at [nsm_id], or a second call after
     the first already cleared them): a true no-op, including the trace — a
     spurious ctl event would make repeated unwinds non-idempotent in the
     Nkmon stream. *)
  if keys <> [] then
    ctl_event t "forget_vm_routes"
      (Printf.sprintf "vm=%d nsm=%d routes=%d" vm_id nsm_id (List.length keys));
  List.length keys

let set_rate_limit ?burst t ~vm_id ~bytes_per_sec =
  let burst = match burst with Some b -> b | None -> bytes_per_sec *. 0.05 in
  Hashtbl.replace t.buckets vm_id
    (Nkutil.Token_bucket.create ~rate:bytes_per_sec ~burst ~now:(Engine.now t.engine))

let clear_rate_limit t ~vm_id = Hashtbl.remove t.buckets vm_id

(* ---- switching --------------------------------------------------------- *)

(* Wake the device owner after [wake_latency]. Same-instant wakes coalesce:
   a CE dispatch burst delivering several NQEs to one queue set in one
   callback arms several wakes with the identical fire time, and the
   owner's budgeted poll drains the whole burst under the first. This is
   the only sound elision — a wake merely *in flight* must still be armed
   again for later pushes, because its fire acts as an early poll for
   anything landing inside its latency window, and dropping that poll
   shifts the cycle schedule. Same-instant elision cannot: between two
   equal-time wakes only other wakes and ring pops run (all real work
   defers through [Cpu.exec] to strictly later times, and no other event
   kind is scheduled at exactly [wake_latency]), so nothing can slip a new
   NQE into the queue set at that instant. *)
let wake t dev qset =
  let at = Engine.now t.engine +. t.costs.Nk_costs.wake_latency in
  if Nk_device.wake_armed_at dev ~qset <> at then begin
    Nk_device.set_wake_armed_at dev ~qset at;
    ignore
      (Engine.schedule_at t.engine ~at (Nk_device.wake_thunk dev ~qset))
  end

(* Push an inbound NQE into [dev]'s queue [q] of [qset]; false if full. A
   destination queue set owned by another shard is a cross-shard handoff
   and pays [ce_xshard] on the pushing shard. *)
let push_inbound t (sh : shard) dev ~qset q raw =
  let s = Nk_device.qset dev qset in
  let ring =
    match q with
    | `Job -> s.Queue_set.job
    | `Completion -> s.Queue_set.completion
    | `Send -> s.Queue_set.send
    | `Receive -> s.Queue_set.receive
  in
  if owner_idx t ~dev_id:(Nk_device.id dev) ~qset <> sh.idx then charge_xshard t sh;
  if Ring.push ring raw then begin
    wake t dev qset;
    true
  end
  else false

(* With SmartNIC offload only table misses consume CE cycles (§7.8): the
   hardware switches known connections by itself. *)
let charge_table_miss t (sh : shard) =
  if t.costs.Nk_costs.ce_hw_offload then
    Cpu.charge sh.cpu ~cycles:t.costs.Nk_costs.ce_switch

let route_nsm_to_vm t (sh : shard) ~src_nsm ~src_qset raw =
  let vm_id = Nqe.View.vm_id raw in
  match Hashtbl.find_opt t.vms vm_id with
  | None ->
      drop sh t (Some raw) "vm_gone";
      true
  | Some dev ->
      let op = Nqe.View.op raw in
      let sock = Nqe.View.sock raw in
      let n = Nk_device.n_qsets dev in
      let qset =
        let q0 = Nqe.View.qset raw in
        if q0 < n then q0
        else begin
          let key_sock =
            match op with Nqe.Ev_accept -> Nqe.View.size raw | _ -> sock
          in
          let q = key_sock * 2654435761 land max_int mod n in
          (* Complete the NQE with the chosen queue set before delivery. *)
          Nqe.View.set_qset raw q;
          q
        end
      in
      (* Keep the table complete for NSM-allocated sockets (paper step 4):
         an accept event introduces the new socket id (in the size field),
         pinned to the ServiceLib queue set that emitted it. *)
      let table_sock =
        match op with Nqe.Ev_accept -> Nqe.View.size raw | _ -> sock
      in
      (* Never resurrect routes towards an NSM that has since departed
         (its parting completions are still in flight). *)
      if
        Hashtbl.mem t.nsms src_nsm
        && not (Hashtbl.mem t.conn_table (vm_id, table_sock))
      then
        table_add ~sh t (vm_id, table_sock) { nsm_id = src_nsm; nsm_qset = src_qset };
      if op = Nqe.Comp_close then table_remove ~sh t (vm_id, sock);
      let q =
        match op with
        | Nqe.Ev_accept | Nqe.Ev_data | Nqe.Ev_eof -> `Receive
        | _ -> `Completion
      in
      if push_inbound t sh dev ~qset q raw then begin
        switched sh t raw (`Vm vm_id);
        true
      end
      else false

let deferred_queue (sh : shard) vm_id =
  match Hashtbl.find_opt sh.deferred vm_id with
  | Some q -> q
  | None ->
      let q = { entries = Queue.create (); to_vm_pending = 0; to_nsm_pending = 0 } in
      Hashtbl.replace sh.deferred vm_id q;
      q

let dq_add (dq : dq) entry =
  Queue.add entry dq.entries;
  match entry with
  | To_vm _ -> dq.to_vm_pending <- dq.to_vm_pending + 1
  | To_nsm _ -> dq.to_nsm_pending <- dq.to_nsm_pending + 1

(* Drop the head entry (the caller just routed or discarded it). *)
let dq_pop_head (dq : dq) =
  match Queue.pop dq.entries with
  | To_vm _ -> dq.to_vm_pending <- dq.to_vm_pending - 1
  | To_nsm _ -> dq.to_nsm_pending <- dq.to_nsm_pending - 1

let rec schedule_release t (sh : shard) delay =
  if not sh.release_scheduled then begin
    sh.release_scheduled <- true;
    ignore
      (Engine.schedule t.engine ~delay (fun () ->
           sh.release_scheduled <- false;
           drain_deferred t sh))
  end

and drain_deferred t (sh : shard) =
  Nkspan.frame t.spans ~component:sh.sinstance ~stage:"drain" (fun () ->
      drain_deferred_framed t sh)

and drain_deferred_framed t (sh : shard) =
  let next_delay = ref infinity in
  (* VM-id order: which VM's parked traffic gets tokens / ring space first
     must not depend on hash-bucket layout. *)
  Nkutil.Det_tbl.iter ~cmp:Int.compare
    (fun vm_id dq ->
      let rec loop () =
        match Queue.peek_opt dq.entries with
        | None -> ()
        | Some entry -> (
            let raw =
              match entry with To_nsm raw -> raw | To_vm { raw; _ } -> raw
            in
            if not (Nqe.View.ok raw) then begin
              dq_pop_head dq;
              drop sh t None "decode";
              loop ()
            end
            else
              match entry with
              | To_vm { src_nsm; src_qset; _ } ->
                  if route_nsm_to_vm t sh ~src_nsm ~src_qset raw then begin
                    dq_pop_head dq;
                    Cpu.charge sh.cpu ~cycles:t.costs.Nk_costs.ce_switch;
                    loop ()
                  end
                  else
                    next_delay :=
                      Float.min !next_delay t.costs.Nk_costs.ce_ring_release_delay
              | To_nsm _ ->
                  let tokens_ok =
                    match (Nqe.View.op raw, Hashtbl.find_opt t.buckets vm_id) with
                    | Nqe.Send, Some bucket ->
                        let now = Engine.now t.engine in
                        let need = float_of_int (Nqe.View.size raw) in
                        if Nkutil.Token_bucket.try_take bucket ~now need then true
                        else begin
                          next_delay :=
                            Float.min !next_delay
                              (Nkutil.Token_bucket.time_until bucket ~now need);
                          false
                        end
                    | _, _ -> true
                  in
                  if tokens_ok then
                    if route_vm_to_nsm t sh raw then begin
                      dq_pop_head dq;
                      Cpu.charge sh.cpu ~cycles:t.costs.Nk_costs.ce_switch;
                      loop ()
                    end
                    else
                      next_delay :=
                        Float.min !next_delay t.costs.Nk_costs.ce_ring_release_delay)
      in
      loop ())
    sh.deferred;
  if !next_delay < infinity then schedule_release t sh (Float.max 1e-6 !next_delay)

(* Deliver a CE-synthesized NSM->VM NQE, parking it with the VM's deferred
   traffic when the inbound ring is full (same ordering rules as dispatch). *)
and deliver_to_vm t (sh : shard) ~src_nsm ~src_qset raw =
  let dq = deferred_queue sh (Nqe.View.vm_id raw) in
  if dq.to_vm_pending > 0 || not (route_nsm_to_vm t sh ~src_nsm ~src_qset raw)
  then begin
    dq_add dq (To_vm { src_nsm; src_qset; raw });
    schedule_release t sh t.costs.Nk_costs.ce_ring_release_delay
  end

(* The socket's NSM is gone (crash or deregistration): complete the job NQE
   with an error instead of dropping it, so GuestLib never hangs on a reply
   that cannot come. Close acknowledges success — the socket is gone either
   way; Send keeps data_ptr/size so the VM reclaims the payload extent. *)
and reply_error t (sh : shard) raw err =
  let comp =
    match Nqe.View.op raw with
    | Nqe.Socket -> Some Nqe.Comp_socket
    | Nqe.Bind -> Some Nqe.Comp_bind
    | Nqe.Listen -> Some Nqe.Comp_listen
    | Nqe.Connect -> Some Nqe.Comp_connect
    | Nqe.Send -> Some Nqe.Comp_send
    | Nqe.Close -> Some Nqe.Comp_close
    | _ -> None
  in
  match comp with
  | None -> ()
  | Some op ->
      Nkmon.Registry.incr sh.ctr.c_error_completions;
      let op_data = if op = Nqe.Comp_close then Nqe.ok_code else Nqe.err_code err in
      let reply =
        Nqe.make ~op ~vm_id:(Nqe.View.vm_id raw) ~qset:(Nqe.View.qset raw)
          ~sock:(Nqe.View.sock raw) ~op_data ~data_ptr:(Nqe.View.data_ptr raw)
          ~size:(Nqe.View.size raw) ~span:(Nqe.View.span raw) ()
      in
      deliver_to_vm t sh ~src_nsm:(-1) ~src_qset:0 (Nqe.encode reply)

and route_vm_to_nsm t (sh : shard) raw =
  let vm_id = Nqe.View.vm_id raw in
  let sock = Nqe.View.sock raw in
  let op = Nqe.View.op raw in
  match Hashtbl.find_opt t.conn_table (vm_id, sock) with
  | Some r -> (
      match Hashtbl.find_opt t.nsms r.nsm_id with
      | None ->
          table_remove ~sh t (vm_id, sock);
          drop sh t (Some raw) "nsm_gone";
          reply_error t sh raw Types.Econnreset;
          true
      | Some dev ->
          let q = match op with Nqe.Send -> `Send | _ -> `Job in
          if op = Nqe.Close then table_remove ~sh t (vm_id, sock);
          if push_inbound t sh dev ~qset:r.nsm_qset q raw then begin
            switched sh t raw (`Nsm r.nsm_id);
            true
          end
          else false)
  | None -> (
      (* First NQE of this socket: assign an NSM and a queue set, skipping
         NSMs that are draining or gone (falling back to the raw pick if
         nothing else is available, so a misconfigured drain-all still
         yields a deterministic error path). *)
      match Hashtbl.find_opt t.assignment vm_id with
      | None ->
          drop sh t (Some raw) "no_nsm_assignment";
          reply_error t sh raw Types.Econnreset;
          true
      | Some (nsms, rr) -> (
          charge_table_miss t sh;
          let n = Array.length nsms in
          let base = !rr in
          incr rr;
          let nsm_id =
            let rec pick i =
              if i >= n then nsms.(base mod n)
              else
                let cand = nsms.((base + i) mod n) in
                if Hashtbl.mem t.nsms cand && not (Hashtbl.mem t.draining cand) then cand
                else pick (i + 1)
            in
            pick 0
          in
          match Hashtbl.find_opt t.nsms nsm_id with
          | None ->
              drop sh t (Some raw) "nsm_gone";
              reply_error t sh raw Types.Econnreset;
              true
          | Some dev ->
              let nsm_qset =
                sock * 2654435761 land max_int mod Nk_device.n_qsets dev
              in
              table_add ~sh t (vm_id, sock) { nsm_id; nsm_qset };
              let q = match op with Nqe.Send -> `Send | _ -> `Job in
              if push_inbound t sh dev ~qset:nsm_qset q raw then begin
                switched sh t raw (`Nsm nsm_id);
                true
              end
              else false))

(* One full sweep by shard [sh] over the queue sets it owns, popping at most
   [ce_batch] NQEs per outbound ring into the shard's reusable work
   buffers. Queue sets of the same devices owned by other shards are
   cross-kicked when they have pending outbound NQEs (e.g. overflow
   entries this shard just flushed into their rings).
   Sets [sh.sweep_len]. *)
let rec sweep t (sh : shard) =
  let batch = t.costs.Nk_costs.ce_batch in
  sh.sweep_len <- 0;
  let take src ring =
    let rec loop i =
      if i < batch then
        match Ring.pop ring with
        | None -> ()
        | Some raw ->
            let n = sh.sweep_len in
            if n = Array.length sh.sweep_raw then begin
              let cap = 2 * n in
              let src' = Array.make cap (-1) and raw' = Array.make cap Bytes.empty in
              Array.blit sh.sweep_src 0 src' 0 n;
              Array.blit sh.sweep_raw 0 raw' 0 n;
              sh.sweep_src <- src';
              sh.sweep_raw <- raw'
            end;
            sh.sweep_src.(n) <- src;
            sh.sweep_raw.(n) <- raw;
            sh.sweep_len <- n + 1;
            loop (i + 1)
    in
    loop 0
  in
  List.iter
    (fun (dev, side) ->
      let dev_id = Nk_device.id dev in
      let nq = Nk_device.n_qsets dev in
      let owns_any = ref false in
      for i = 0 to nq - 1 do
        if owner_idx t ~dev_id ~qset:i = sh.idx then owns_any := true
      done;
      if !owns_any then begin
        Nk_device.flush_overflow dev;
        for i = 0 to nq - 1 do
          if owner_idx t ~dev_id ~qset:i = sh.idx then begin
            let s = Nk_device.qset dev i in
            match side with
            | `Vm ->
                take (-1) s.Queue_set.job;
                take (-1) s.Queue_set.send
            | `Nsm ->
                let src = (dev_id lsl 16) lor i in
                take src s.Queue_set.completion;
                take src s.Queue_set.receive
          end
          else if Nk_device.outbound_pending dev ~qset:i > 0 then
            kick_shard t t.shards.(owner_idx t ~dev_id ~qset:i)
        done
      end)
    t.device_order

and dispatch t (sh : shard) src raw =
  if not (Nqe.View.ok raw) then drop sh t None "decode"
  else if src >= 0 then begin
    let src_nsm = src lsr 16 and src_qset = src land 0xFFFF in
    (* NSM->VM results must not jump ahead of deferred ones for the
       same VM, and a full VM ring parks them too. *)
    let dq = deferred_queue sh (Nqe.View.vm_id raw) in
    if dq.to_vm_pending > 0 || not (route_nsm_to_vm t sh ~src_nsm ~src_qset raw)
    then begin
      Nkmon.Registry.incr sh.ctr.c_ring_deferred;
      if Nkmon.tracing t.mon then
        Nkmon.event t.mon (Nkmon.Trace.Ring_defer { vm_id = Nqe.View.vm_id raw });
      dq_add dq (To_vm { src_nsm; src_qset; raw });
      schedule_release t sh t.costs.Nk_costs.ce_ring_release_delay
    end
  end
  else begin
    let vm_id = Nqe.View.vm_id raw in
    let dq = deferred_queue sh vm_id in
    let must_defer =
      dq.to_nsm_pending > 0
      ||
      match (Nqe.View.op raw, Hashtbl.find_opt t.buckets vm_id) with
      | Nqe.Send, Some bucket ->
          not
            (Nkutil.Token_bucket.try_take bucket ~now:(Engine.now t.engine)
               (float_of_int (Nqe.View.size raw)))
      | _, _ -> false
    in
    if must_defer then begin
      Nkmon.Registry.incr sh.ctr.c_rate_deferred;
      if Nkmon.tracing t.mon then
        Nkmon.event t.mon
          (Nkmon.Trace.Rate_limit_defer { vm_id; bytes = Nqe.View.size raw });
      dq_add dq (To_nsm raw);
      schedule_release t sh t.costs.Nk_costs.ce_rate_recheck_delay
    end
    else if not (route_vm_to_nsm t sh raw) then begin
      Nkmon.Registry.incr sh.ctr.c_ring_deferred;
      if Nkmon.tracing t.mon then
        Nkmon.event t.mon (Nkmon.Trace.Ring_defer { vm_id });
      dq_add dq (To_nsm raw);
      schedule_release t sh t.costs.Nk_costs.ce_ring_release_delay
    end
  end

and process t (sh : shard) =
  sweep t sh;
  let n = sh.sweep_len in
  if n = 0 then begin
    sh.running <- false;
    Nkspan.frame t.spans ~component:sh.sinstance ~stage:"poll" (fun () ->
        Cpu.charge sh.cpu ~cycles:t.costs.Nk_costs.ce_poll_iter)
  end
  else begin
    Nkmon.Registry.incr sh.ctr.c_sweeps;
    Nkutil.Histogram.record sh.sweep_batch (float_of_int n);
    (* Traced NQEs enter this shard's switch here: the ce-switch stage
       runs from ring pop until [switched] delivers them (including any
       time parked in the deferred queues). *)
    if Nkspan.enabled t.spans then
      for i = 0 to n - 1 do
        let span = Nqe.span_of_raw sh.sweep_raw.(i) in
        Nkspan.end_stage t.spans ~id:span "ring";
        Nkspan.begin_stage t.spans ~id:span ~component:sh.sinstance "ce-switch"
      done;
    let per_nqe, per_sweep =
      (* hardware-offloaded switching leaves only a residual descriptor
         cost on the CE core — no software queue sweeps either; table
         misses are charged where they occur *)
      if t.costs.Nk_costs.ce_hw_offload then (4.0, 10.0)
      else (t.costs.Nk_costs.ce_switch, t.costs.Nk_costs.ce_poll_iter)
    in
    let cycles = per_sweep +. (float_of_int n *. per_nqe) in
    Nkspan.frame t.spans ~component:sh.sinstance ~stage:"switch" (fun () ->
        Cpu.exec sh.cpu ~cycles (fun () ->
            for i = 0 to n - 1 do
              dispatch t sh sh.sweep_src.(i) sh.sweep_raw.(i)
            done;
            process t sh))
  end

and kick_shard t (sh : shard) =
  if not sh.running then begin
    sh.running <- true;
    ignore
      (Engine.schedule t.engine ~delay:t.costs.Nk_costs.ce_poll_latency (fun () ->
           process t sh))
  end

let kick t = Array.iter (fun sh -> kick_shard t sh) t.shards

(* Add fresh switching shards (CE scale-out): the affinity function is
   recomputed over the larger shard count, so queue-set ownership
   redistributes deterministically. Traffic already parked on an existing
   shard drains where it is (its release timers and the global tables are
   shard-agnostic); every shard is kicked so rings land with their new
   owners. *)
let scale_out t ~cores =
  if Array.length cores = 0 then invalid_arg "Coreengine.scale_out: need at least one core";
  let n0 = Array.length t.shards in
  let fresh =
    Array.mapi
      (fun i cpu -> make_shard t.mon ~instance:t.instance ~solo:false ~idx:(n0 + i) cpu)
      cores
  in
  t.shards <- Array.append t.shards fresh;
  ctl_event t "scale_out"
    (Printf.sprintf "shards=%d->%d" n0 (Array.length t.shards));
  kick t

let register_common t dev side =
  Nk_device.set_kick_ce dev (fun qset -> kick_shard t (owner_shard t dev qset));
  t.device_order <- t.device_order @ [ (dev, side) ]

let register_vm t dev =
  Hashtbl.replace t.vms (Nk_device.id dev) dev;
  register_common t dev `Vm

let register_nsm t dev =
  Hashtbl.replace t.nsms (Nk_device.id dev) dev;
  register_common t dev `Nsm

let deregister_vm t ~vm_id =
  (match Hashtbl.find_opt t.vms vm_id with
  | None -> ()
  | Some dev ->
      t.device_order <-
        List.filter (fun (d, _) -> not (d == dev)) t.device_order);
  Hashtbl.remove t.vms vm_id;
  Hashtbl.remove t.assignment vm_id;
  Hashtbl.remove t.buckets vm_id;
  Array.iter (fun sh -> Hashtbl.remove sh.deferred vm_id) t.shards;
  let keys =
    Nkutil.Det_tbl.fold ~cmp:conn_key_cmp
      (fun key _ acc -> if fst key = vm_id then key :: acc else acc)
      t.conn_table []
  in
  List.iter (table_remove t) keys

let deregister_nsm t ~nsm_id =
  (match Hashtbl.find_opt t.nsms nsm_id with
  | None -> ()
  | Some dev ->
      t.device_order <-
        List.filter (fun (d, _) -> not (d == dev)) t.device_order);
  Hashtbl.remove t.nsms nsm_id;
  Hashtbl.remove t.draining nsm_id;
  (* Take it out of every VM's round-robin pool. *)
  let vms_using =
    Nkutil.Det_tbl.fold ~cmp:Int.compare
      (fun vm_id (nsms, _) acc ->
        if Array.exists (fun id -> id = nsm_id) nsms then vm_id :: acc else acc)
      t.assignment []
  in
  List.iter (fun vm_id -> detach t ~vm_id ~nsm_id) vms_using;
  (* And forget its connection-table entries (satellite bugfix: a departed
     NSM used to leak them forever). *)
  let keys =
    Nkutil.Det_tbl.fold ~cmp:conn_key_cmp
      (fun key r acc -> if r.nsm_id = nsm_id then key :: acc else acc)
      t.conn_table []
  in
  List.iter (table_remove t) keys;
  Hashtbl.remove t.nsm_conns nsm_id;
  ctl_event t "deregister_nsm" (Printf.sprintf "nsm=%d" nsm_id)

let crash_nsm t ~nsm_id =
  let victims =
    (* Ascending ⟨vm,sock⟩ order: reset-event delivery order is part of the
       deterministic execution. *)
    Nkutil.Det_tbl.bindings ~cmp:conn_key_cmp t.conn_table
    |> List.filter_map (fun (key, r) -> if r.nsm_id = nsm_id then Some key else None)
  in
  deregister_nsm t ~nsm_id;
  (* Every socket the dead NSM served gets a reset event — an error, never
     a hang — so GuestLib can fail pending accepts/connects/reads. The
     synthesized event is injected on the VM's home shard. *)
  List.iter
    (fun (vm_id, sock) ->
      let nqe =
        Nqe.make ~op:Nqe.Ev_err ~vm_id ~qset:Nqe.qset_unassigned ~sock
          ~op_data:(Nqe.err_code Types.Econnreset) ()
      in
      deliver_to_vm t (vm_home_shard t vm_id) ~src_nsm:(-1) ~src_qset:0
        (Nqe.encode nqe))
    victims;
  ctl_event t "crash_nsm" (Printf.sprintf "nsm=%d sockets=%d" nsm_id (List.length victims))
