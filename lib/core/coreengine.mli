(** CoreEngine: the hypervisor-side NQE software switch (paper §4.3–§4.4).

    Runs on one or more dedicated cores, each driving one switching
    {e shard}. Every queue set of every registered NK device is owned by
    exactly one shard — the deterministic affinity function
    [(device id + queue-set index) mod n_shards] — so each SPSC ring keeps
    a single CE-side producer/consumer no matter how many shards run. A
    shard polls the outbound queues it owns round-robin in batches,
    switches each NQE to its destination device using the connection table
    ⟨VM id, socket id⟩ → ⟨NSM id, queue-set id⟩, and wakes the consumer.
    The connection table, NSM assignment and token buckets stay logically
    global; a shard touching state homed on another shard (or pushing into
    a ring another shard owns) is charged the cross-shard handoff cost
    [ce_xshard]. With a single core the engine is exactly the paper's
    single-core CoreEngine — same schedule, same cycle accounting, same
    metric names. Control-plane duties: device registration, VM→NSM
    assignment (static or round-robin across several NSMs, §7.5), and
    per-VM egress isolation with token buckets (§7.6).

    Polling is emulated event-wise: producers [kick] the engine, which then
    drains until all queues are empty, charging the owning shard's core for
    every iteration and switch — so the CE cores' cycle counters reflect
    the real switching work (Table 6/7 overhead accounting). *)

type t

val create :
  engine:Sim.Engine.t ->
  cores:Sim.Cpu.t array ->
  ?mon:Nkmon.t ->
  ?spans:Nkspan.t ->
  ?instance:string ->
  Nk_costs.t ->
  t
(** One shard per element of [cores] (at least one, else [Invalid_argument]).
    [mon] is the world's observability handle (metrics under
    [coreengine/<instance>/...] for a single shard, or
    [coreengine/<instance>.shard<k>/...] per shard otherwise; switch/defer/
    drop trace events); [spans] records the ce-switch stage of sampled
    requests on the owning shard; [instance] defaults to ["ce"]. *)

val core : t -> Sim.Cpu.t
(** Shard 0's core (the only core of a single-shard engine). *)

val cores : t -> Sim.Cpu.t array
(** Every shard's core, in shard order. *)

val n_shards : t -> int

val scale_out : t -> cores:Sim.Cpu.t array -> unit
(** Append one fresh shard per core (CE scale-out, the Nkctl autoscaling
    verb). Queue-set ownership redistributes under the affinity function
    with the new shard count; already-parked deferred traffic drains on the
    shard that parked it. *)

val register_vm : t -> Nk_device.t -> unit

val register_nsm : t -> Nk_device.t -> unit

val deregister_vm : t -> vm_id:int -> unit
(** Forget a VM device (it departed); its table entries are dropped. *)

val deregister_nsm : t -> nsm_id:int -> unit
(** Graceful symmetric counterpart of {!deregister_vm}: stop polling the
    NSM device, drop its connection-table entries and remove it from every
    VM's round-robin pool. Sockets still routed to it afterwards complete
    with [ECONNRESET]-style errors rather than hanging. *)

val crash_nsm : t -> nsm_id:int -> unit
(** Abrupt NSM death (failover pillar): {!deregister_nsm} plus a synthetic
    [Ev_err] (connection reset) delivered to every socket the dead NSM was
    serving, so every blocked accept/connect/read observes an error. Other
    VMs' traffic is untouched. *)

val attach : t -> vm_id:int -> nsm_ids:int list -> unit
(** Declare which NSM(s) serve the VM. With several NSMs, sockets are
    assigned round-robin at their first NQE (the paper's per-socket
    mapping). *)

val detach : t -> vm_id:int -> nsm_id:int -> unit
(** Remove one NSM from the VM's assignment pool. New sockets no longer
    land on it; established connections keep their route until they
    close. *)

val drain_nsm : t -> nsm_id:int -> unit
(** Exclude the NSM from new-socket assignment everywhere while letting its
    established connections finish (live-handover drain). Deregister it
    once {!nsm_conn_count} reaches zero. *)

val undrain_nsm : t -> nsm_id:int -> unit

val is_draining : t -> nsm_id:int -> bool

val nsm_conn_count : t -> nsm_id:int -> int
(** Live connection-table entries routed to the NSM (the drain-completion
    signal). *)

val forget_route : t -> vm_id:int -> sock:int -> unit
(** Drop one connection-table entry so the socket's next NQE re-runs NSM
    assignment (listener re-homing during handover). *)

val add_route : t -> vm_id:int -> sock:int -> nsm_id:int -> nsm_qset:int -> unit
(** Install one connection-table entry directly (live migration: the
    destination host pins imported sockets to the destination NSM). *)

val nsm_routes : t -> nsm_id:int -> (int * int * int) list
(** All [(vm_id, sock, nsm_qset)] routes currently pointing at the NSM, in
    ascending ⟨vm, sock⟩ order. *)

val rehome_nsm_routes : t -> from_nsm:int -> to_nsm:int -> int
(** Atomically re-point every route at [from_nsm] to [to_nsm] (same queue
    sets; [to_nsm] must expose at least as many). Returns how many routes
    moved. Live migration uses this to hand a departing NSM's flows to the
    relay stub in one step. *)

val forget_vm_routes : t -> vm_id:int -> nsm_id:int -> int
(** Drop every route of [vm_id] still pointing at [nsm_id] (next NQE per
    socket re-runs NSM assignment); returns how many were dropped. The
    relay unwind uses this when a VM migrates back home: sockets its export
    does not cover (listeners, bare sockets) would otherwise keep routing
    into the stand-in stub forever. *)

val set_rate_limit : ?burst:float -> t -> vm_id:int -> bytes_per_sec:float -> unit
(** Token-bucket cap on the VM's egress payload bytes (Fig 21). [burst]
    defaults to 50 ms worth of tokens. *)

val clear_rate_limit : t -> vm_id:int -> unit

val kick : t -> unit
(** Producer notification: outbound NQEs may be pending. *)

type stats = {
  switched : int;
  rate_deferred : int;  (** NQEs that waited for tokens *)
  ring_deferred : int;  (** NQEs that waited for ring space *)
  dropped : int;  (** undecodable or unroutable NQEs *)
  sweeps : int;  (** polling iterations executed *)
}

val stats : t -> stats
(** Immutable snapshot of the registry-backed counters, summed across
    shards. *)

val shard_stats : t -> stats array
(** Per-shard snapshots, in shard order (each shard also reports the same
    numbers under its own [coreengine/<instance>.shard<k>] metrics). *)

val conn_table_size : t -> int

val dump_conn_table : t -> string
(** Canonical rendering of the connection table, one
    ["vm=%d sock=%d -> nsm=%d qset=%d"] line per entry in ascending
    ⟨vm, sock⟩ order. Independent of hash-bucket layout and insertion
    history, so two identical runs must produce byte-identical dumps (the
    determinism suite asserts exactly that). *)
