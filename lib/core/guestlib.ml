module Cpu = Sim.Cpu
module Engine = Sim.Engine
module Types = Tcpstack.Types
module Socket_api = Tcpstack.Socket_api
module Epoll_core = Tcpstack.Epoll_core

type rx_chunk = { extent : Hugepages.extent; mutable off : int; synthetic : bool }

type gstate = Gfresh | Gconnecting | Gconnected | Glistening | Gclosed

type gsock = {
  gid : int;
  mutable qset : int;
  mutable state : gstate;
  mutable local : Addr.t option;
  mutable peer : Addr.t option;
  mutable backlog : int; (* remembered for listener re-homing *)
  mutable err : Types.err option;
  recvq : rx_chunk Queue.t;
  mutable recv_avail : int;
  mutable eof : bool;
  mutable eof_delivered : bool;
  mutable sendbuf_used : int;
  acceptq : (int * Addr.t) Queue.t;
  accept_waiters : ((Socket_api.sock * Addr.t, Types.err) result -> unit) Queue.t;
  mutable on_connect : ((unit, Types.err) result -> unit) option;
  mutable close_pending : bool;
}

type qset_state = {
  mutable scheduled : bool;
  mutable last_active : float;
  (* Reusable burst buffer for [process_qset]. Per queue set because the
     apply loop runs deferred (behind [Cpu.exec]) while another queue set
     may already be draining. *)
  scratch : bytes array;
}

type stats = {
  nqes_tx : int;
  nqes_rx : int;
  bytes_sent : int;
  bytes_received : int;
  send_eagain : int;
}

(* Live registry-backed counters; [stats] snapshots them. *)
type counters = {
  c_nqes_tx : Nkmon.Registry.counter;
  c_nqes_rx : Nkmon.Registry.counter;
  c_bytes_sent : Nkmon.Registry.counter;
  c_bytes_received : Nkmon.Registry.counter;
  c_send_eagain : Nkmon.Registry.counter;
}

type t = {
  engine : Engine.t;
  vm_id : int;
  cores : Cpu.Set.t;
  device : Nk_device.t;
  costs : Nk_costs.t;
  profile : Sim.Cost_profile.t;
  socks : (int, gsock) Hashtbl.t;
  epolls : (Socket_api.epoll, Socket_api.sock Epoll_core.t) Hashtbl.t;
  memberships : (Socket_api.sock, Socket_api.epoll list ref) Hashtbl.t;
  qstates : qset_state array;
  mon : Nkmon.t;
  spans : Nkspan.t;
  instance : string; (* "vm<id>", the span/metric component instance *)
  ctr : counters;
  mutable next_gid : int;
  mutable next_ep : int;
}

let stats t =
  let module R = Nkmon.Registry in
  {
    nqes_tx = R.counter_value t.ctr.c_nqes_tx;
    nqes_rx = R.counter_value t.ctr.c_nqes_rx;
    bytes_sent = R.counter_value t.ctr.c_bytes_sent;
    bytes_received = R.counter_value t.ctr.c_bytes_received;
    send_eagain = R.counter_value t.ctr.c_send_eagain;
  }

let nk_debug = Sys.getenv_opt "NKDEBUG" <> None

let dbg fmt = if nk_debug then Printf.eprintf fmt else Printf.ifprintf stderr fmt

let hash_qset t sock = sock * 2654435761 land max_int mod Cpu.Set.n t.cores

let core_for t gs = Cpu.Set.core t.cores gs.qset

let find t gid = Hashtbl.find_opt t.socks gid

(* ---- epoll plumbing ----------------------------------------------------- *)

let gsock_events t gid =
  match find t gid with
  | None -> { Types.readable = false; writable = false; hup = true }
  | Some gs -> (
      match gs.state with
      | Gfresh | Gconnecting -> Types.no_events
      | Gclosed -> { Types.readable = false; writable = false; hup = true }
      | Glistening ->
          let hup = gs.err <> None in
          {
            Types.readable = (not (Queue.is_empty gs.acceptq)) || hup;
            writable = false;
            hup;
          }
      | Gconnected ->
          let hup = gs.err <> None in
          {
            Types.readable = gs.recv_avail > 0 || (gs.eof && not gs.eof_delivered) || hup;
            writable = gs.sendbuf_used < t.costs.Nk_costs.guest_sendbuf;
            hup;
          })

let notify_epolls t gid =
  match Hashtbl.find_opt t.memberships gid with
  | None -> ()
  | Some eps ->
      List.iter
        (fun epid ->
          match Hashtbl.find_opt t.epolls epid with
          | None -> ()
          | Some ep -> Epoll_core.notify ep gid)
        !eps

(* ---- NQE posting -------------------------------------------------------- *)

let post t gs queue (nqe : Nqe.t) =
  Nkmon.Registry.incr t.ctr.c_nqes_tx;
  if Nkmon.tracing t.mon then
    Nkmon.event t.mon
      (Nkmon.Trace.Nqe_enqueue
         {
           device = Nk_device.id t.device;
           qset = gs.qset;
           queue = (match queue with `Send -> Nkmon.Trace.Send | _ -> Nkmon.Trace.Job);
           op = Nqe.op_to_string nqe.Nqe.op;
           vm_id = t.vm_id;
           sock = gs.gid;
         });
  Nk_device.post t.device ~qset:gs.qset queue (Nqe.encode nqe)

let post_op t gs op ?op_data ?data_ptr ?size ?synthetic ?span () =
  post t gs
    (match op with Nqe.Send -> `Send | _ -> `Job)
    (Nqe.make ~op ~vm_id:t.vm_id ~qset:gs.qset ~sock:gs.gid ?op_data ?data_ptr ?size
       ?synthetic ?span ())

(* ---- inbound NQE processing ---------------------------------------------- *)

let free_send_extent t (nqe : Nqe.t) =
  Hugepages.free (Nk_device.hugepages t.device)
    { Hugepages.offset = nqe.Nqe.data_ptr; len = nqe.Nqe.size }

let apply t (nqe : Nqe.t) =
  Nkmon.Registry.incr t.ctr.c_nqes_rx;
  if Nkmon.tracing t.mon then
    Nkmon.event t.mon
      (Nkmon.Trace.Nqe_deliver
         {
           component = "guestlib";
           instance = Printf.sprintf "vm%d" t.vm_id;
           qset = nqe.Nqe.qset;
           op = Nqe.op_to_string nqe.Nqe.op;
           vm_id = t.vm_id;
           sock = nqe.Nqe.sock;
         });
  let err = Nqe.err_of_code nqe.Nqe.op_data in
  match nqe.Nqe.op with
  | Nqe.Comp_socket | Nqe.Comp_bind | Nqe.Comp_listen -> (
      match find t nqe.Nqe.sock with
      | None -> ()
      | Some gs ->
          (match err with Some e -> gs.err <- Some e | None -> ());
          notify_epolls t gs.gid)
  | Nqe.Comp_connect -> (
      match find t nqe.Nqe.sock with
      | None -> ()
      | Some gs ->
          (match err with
          | None -> gs.state <- Gconnected
          | Some e ->
              gs.err <- Some e;
              gs.state <- Gclosed);
          (match gs.on_connect with
          | None -> ()
          | Some k ->
              gs.on_connect <- None;
              k (match err with None -> Ok () | Some e -> Error e));
          notify_epolls t gs.gid)
  | Nqe.Comp_send -> (
      free_send_extent t nqe;
      Nkspan.end_stage t.spans ~id:nqe.Nqe.span "completion";
      Nkspan.finish t.spans ~id:nqe.Nqe.span;
      match find t nqe.Nqe.sock with
      | None -> ()
      | Some gs ->
          gs.sendbuf_used <- Int.max 0 (gs.sendbuf_used - nqe.Nqe.size);
          (match err with Some e -> gs.err <- Some e | None -> ());
          if gs.close_pending && gs.sendbuf_used = 0 then begin
            gs.close_pending <- false;
            post_op t gs Nqe.Close ()
          end;
          notify_epolls t gs.gid)
  | Nqe.Comp_close -> Hashtbl.remove t.socks nqe.Nqe.sock
  | Nqe.Ev_accept -> (
      match find t nqe.Nqe.sock with
      | None -> ()
      | Some lsock when lsock.state = Glistening ->
          let gid = nqe.Nqe.size in
          let peer = Nqe.unpack_addr nqe.Nqe.op_data in
          let gs =
            {
              gid;
              qset = (if nqe.Nqe.qset < Cpu.Set.n t.cores then nqe.Nqe.qset else hash_qset t gid);
              state = Gconnected;
              local = lsock.local;
              peer = Some peer;
              backlog = 0;
              err = None;
              recvq = Queue.create ();
              recv_avail = 0;
              eof = false;
              eof_delivered = false;
              sendbuf_used = 0;
              acceptq = Queue.create ();
              accept_waiters = Queue.create ();
              on_connect = None;
              close_pending = false;
            }
          in
          Hashtbl.replace t.socks gid gs;
          if Queue.is_empty lsock.accept_waiters then begin
            Queue.add (gid, peer) lsock.acceptq;
            notify_epolls t lsock.gid
          end
          else begin
            let k = Queue.pop lsock.accept_waiters in
            Cpu.exec (core_for t gs) ~cycles:t.costs.Nk_costs.nk_syscall (fun () ->
                k (Ok (gid, peer)))
          end
      | Some _ -> ())
  | Nqe.Ev_data -> (
      match find t nqe.Nqe.sock with
      | None ->
          (* Socket already closed locally: return the extent. *)
          free_send_extent t nqe
      | Some gs ->
          Queue.add
            {
              extent = { Hugepages.offset = nqe.Nqe.data_ptr; len = nqe.Nqe.size };
              off = 0;
              synthetic = nqe.Nqe.synthetic;
            }
            gs.recvq;
          gs.recv_avail <- gs.recv_avail + nqe.Nqe.size;
          dbg "[%.4f] glib: gid=%x ev_data %d avail=%d members=%b\n"
            (Engine.now t.engine) gs.gid nqe.Nqe.size gs.recv_avail
            (Hashtbl.mem t.memberships gs.gid);
          Nkmon.Registry.add t.ctr.c_bytes_received nqe.Nqe.size;
          notify_epolls t gs.gid)
  | Nqe.Ev_eof -> (
      match find t nqe.Nqe.sock with
      | None -> ()
      | Some gs ->
          gs.eof <- true;
          notify_epolls t gs.gid)
  | Nqe.Ev_err -> (
      match find t nqe.Nqe.sock with
      | None -> ()
      | Some gs ->
          (match err with Some e -> gs.err <- Some e | None -> gs.err <- Some Types.Econnreset);
          let e = Option.value gs.err ~default:Types.Econnreset in
          (match gs.on_connect with
          | None -> ()
          | Some k ->
              gs.on_connect <- None;
              k (Error e));
          (* A dying listener must fail its parked accepts, not strand them. *)
          Queue.iter (fun k -> k (Error e)) gs.accept_waiters;
          Queue.clear gs.accept_waiters;
          notify_epolls t gs.gid)
  | Nqe.Socket | Nqe.Bind | Nqe.Listen | Nqe.Connect | Nqe.Send | Nqe.Recv_done | Nqe.Close
    ->
      (* VM-bound queues never carry VM-to-NSM ops. *)
      ()

let rec process_qset t qi =
  let s = Nk_device.qset t.device qi in
  let qs = t.qstates.(qi) in
  (* One wakeup drains a budgeted burst from both inbound rings into the
     per-qset scratch buffer: completions first, then receive events, each
     in ring order — the same order the one-at-a-time poll produced. *)
  let n = Queue_set.drain_into s ~toward:`Vm qs.scratch ~budget:64 ~shared:false in
  if n = 0 then qs.scheduled <- false
  else begin
    let now = Engine.now t.engine in
    let wake_extra =
      (* The device slept after the 20 us polling window; waking it costs an
         interrupt (interrupt-driven polling, §4.6). *)
      if now -. qs.last_active > t.costs.Nk_costs.guest_idle_window then
        t.costs.Nk_costs.guest_interrupt
      else 0.0
    in
    let cycles =
      t.costs.Nk_costs.guest_poll +. wake_extra
      +. (float_of_int n *. t.costs.Nk_costs.nqe_decode)
    in
    (* Traced completions leave the ring here: everything from now until
       [apply] runs (poll + decode + core queueing) is the completion
       stage. Only Comp_send NQEs carry a span id, the rest peek as 0. *)
    if Nkspan.enabled t.spans then
      for i = 0 to n - 1 do
        let span = Nqe.span_of_raw qs.scratch.(i) in
        Nkspan.end_stage t.spans ~id:span "ring";
        Nkspan.begin_stage t.spans ~id:span ~component:t.instance "completion"
      done;
    Nkspan.frame t.spans ~component:t.instance ~stage:"poll" (fun () ->
        Cpu.exec (Cpu.Set.core t.cores qi) ~cycles (fun () ->
            for i = 0 to n - 1 do
              (* Endpoint apply needs the whole record. nklint: decode-ok *)
              match Nqe.decode qs.scratch.(i) with
              | Error _ -> ()
              | Ok nqe -> apply t nqe
            done;
            qs.last_active <- Engine.now t.engine;
            process_qset t qi))
  end

let on_kick t qi =
  let qs = t.qstates.(qi) in
  if not qs.scheduled then begin
    qs.scheduled <- true;
    process_qset t qi
  end

(* ---- API ------------------------------------------------------------------ *)

let alloc_gsock t =
  let gid = t.next_gid in
  t.next_gid <- t.next_gid + 1;
  {
    gid;
    qset = hash_qset t gid;
    state = Gfresh;
    local = None;
    peer = None;
    backlog = 0;
    err = None;
    recvq = Queue.create ();
    recv_avail = 0;
    eof = false;
    eof_delivered = false;
    sendbuf_used = 0;
    acceptq = Queue.create ();
    accept_waiters = Queue.create ();
    on_connect = None;
    close_pending = false;
  }

let control_cycles t = t.costs.Nk_costs.nk_syscall +. t.costs.Nk_costs.nqe_encode

let api t =
  let socket () =
    let gs = alloc_gsock t in
    Hashtbl.replace t.socks gs.gid gs;
    Cpu.charge (core_for t gs) ~cycles:(control_cycles t);
    post_op t gs Nqe.Socket ();
    Ok gs.gid
  in
  let bind gid addr =
    match find t gid with
    | None -> Error Types.Einval
    | Some gs ->
        gs.local <- Some addr;
        Cpu.charge (core_for t gs) ~cycles:(control_cycles t);
        post_op t gs Nqe.Bind ~op_data:(Nqe.pack_addr addr) ();
        Ok ()
  in
  let listen gid ~backlog =
    match find t gid with
    | None -> Error Types.Einval
    | Some gs -> (
        match gs.local with
        | None -> Error Types.Einval
        | Some _ ->
            gs.state <- Glistening;
            gs.backlog <- backlog;
            Cpu.charge (core_for t gs) ~cycles:(control_cycles t);
            post_op t gs Nqe.Listen ~op_data:(Int64.of_int backlog) ();
            Ok ())
  in
  let accept gid ~k =
    match find t gid with
    | None -> k (Error Types.Einval)
    | Some gs when gs.state = Glistening && gs.err <> None ->
        k (Error (Option.value gs.err ~default:Types.Econnreset))
    | Some gs when gs.state = Glistening ->
        if Queue.is_empty gs.acceptq then Queue.add k gs.accept_waiters
        else begin
          let cgid, peer = Queue.pop gs.acceptq in
          Cpu.exec (core_for t gs) ~cycles:(control_cycles t) (fun () -> k (Ok (cgid, peer)))
        end
    | Some _ -> k (Error Types.Einval)
  in
  let connect gid dst ~k =
    match find t gid with
    | None -> k (Error Types.Einval)
    | Some gs when gs.state = Gfresh ->
        gs.state <- Gconnecting;
        gs.peer <- Some dst;
        gs.on_connect <- Some k;
        Cpu.charge (core_for t gs) ~cycles:(control_cycles t);
        post_op t gs Nqe.Connect ~op_data:(Nqe.pack_addr dst) ()
    | Some _ -> k (Error Types.Einval)
  in
  let send gid payload ~k =
    match find t gid with
    | None -> k (Error Types.Eclosed)
    | Some gs -> (
        match (gs.state, gs.err) with
        | _, Some e -> k (Error e)
        | Gconnected, None -> (
            let want = Types.payload_len payload in
            let room = t.costs.Nk_costs.guest_sendbuf - gs.sendbuf_used in
            let n = Int.min want room in
            if n <= 0 then begin
              Nkmon.Registry.incr t.ctr.c_send_eagain;
              Cpu.charge (core_for t gs) ~cycles:t.costs.Nk_costs.nk_syscall;
              k (Error Types.Eagain)
            end
            else
              match Hugepages.alloc (Nk_device.hugepages t.device) n with
              | None ->
                  Nkmon.Registry.incr t.ctr.c_send_eagain;
                  Cpu.charge (core_for t gs) ~cycles:t.costs.Nk_costs.nk_syscall;
                  k (Error Types.Eagain)
              | Some extent ->
                  let synthetic =
                    match payload with Types.Zeros _ -> true | Types.Data _ -> false
                  in
                  let cycles =
                    t.costs.Nk_costs.nk_syscall +. t.costs.Nk_costs.nqe_encode
                    +. t.costs.Nk_costs.hugepage_alloc
                    +. (float_of_int n *. t.profile.Sim.Cost_profile.per_byte_user_copy)
                  in
                  gs.sendbuf_used <- gs.sendbuf_used + n;
                  (* Span birth: the request is stamped here and the span id
                     rides the NQE through the whole datapath. *)
                  let span = Nkspan.sample t.spans ~vm:t.instance in
                  Nkspan.begin_stage t.spans ~id:span ~component:t.instance "guestlib";
                  Nkspan.frame t.spans ~component:t.instance ~stage:"send" (fun () ->
                      Cpu.exec (core_for t gs) ~cycles (fun () ->
                          (match payload with
                          | Types.Data s ->
                              Hugepages.write_payload (Nk_device.hugepages t.device) extent
                                (Types.Data
                                   (if String.length s = n then s else String.sub s 0 n))
                          | Types.Zeros _ -> ());
                          Nkmon.Registry.add t.ctr.c_bytes_sent n;
                          Nkspan.end_stage t.spans ~id:span "guestlib";
                          post_op t gs Nqe.Send ~data_ptr:extent.Hugepages.offset ~size:n
                            ~synthetic ~span ();
                          k (Ok n))))
        | (Gfresh | Gconnecting | Glistening | Gclosed), None -> k (Error Types.Enotconn))
  in
  let recv gid ~max ~mode ~k =
    match find t gid with
    | None -> k (Error Types.Eclosed)
    | Some gs ->
        if gs.recv_avail > 0 && max > 0 then begin
          (* Charge an estimate now; the chunk state is re-read at execution
             time because concurrent recv calls may race on this socket. *)
          let est = Int.min max gs.recv_avail in
          let cycles =
            t.costs.Nk_costs.nk_syscall +. t.costs.Nk_costs.nqe_encode
            +. (float_of_int est *. t.profile.Sim.Cost_profile.per_byte_user_copy)
          in
          Cpu.exec (core_for t gs) ~cycles (fun () ->
              match Queue.peek_opt gs.recvq with
              | None ->
                  if gs.eof && not gs.eof_delivered then begin
                    gs.eof_delivered <- true;
                    k (Ok (match mode with
                          | `Discard -> Types.Zeros 0
                          | `Copy | `Auto -> Types.Data ""))
                  end
                  else k (Error Types.Eagain)
              | Some chunk ->
                  let n = Int.min max (chunk.extent.Hugepages.len - chunk.off) in
                  let finished = chunk.off + n = chunk.extent.Hugepages.len in
                  let payload =
                    match mode with
                    | `Discard -> Types.Zeros n
                    | `Copy | `Auto ->
                        Hugepages.read_payload (Nk_device.hugepages t.device) chunk.extent
                          ~pos:chunk.off ~len:n ~synthetic:chunk.synthetic
                  in
                  chunk.off <- chunk.off + n;
                  gs.recv_avail <- gs.recv_avail - n;
                  if finished then begin
                    Hugepages.free (Nk_device.hugepages t.device) chunk.extent;
                    ignore (Queue.pop gs.recvq)
                  end;
                  (* Return the receive credit to the NSM. *)
                  post_op t gs Nqe.Recv_done ~size:n ();
                  k (Ok payload))
        end
        else if gs.eof && not gs.eof_delivered then begin
          gs.eof_delivered <- true;
          k (Ok (match mode with `Discard -> Types.Zeros 0 | `Copy | `Auto -> Types.Data ""))
        end
        else begin
          Cpu.charge (core_for t gs) ~cycles:t.costs.Nk_costs.nk_syscall;
          match gs.err with Some e -> k (Error e) | None -> k (Error Types.Eagain)
        end
  in
  let close gid =
    match find t gid with
    | None -> ()
    | Some gs ->
        Cpu.charge (core_for t gs) ~cycles:(control_cycles t);
        (* Free any unread receive extents; the NSM stops delivering after
           the close NQE. *)
        Queue.iter
          (fun chunk -> Hugepages.free (Nk_device.hugepages t.device) chunk.extent)
          gs.recvq;
        Queue.clear gs.recvq;
        gs.recv_avail <- 0;
        Queue.iter (fun k -> k (Error Types.Eclosed)) gs.accept_waiters;
        Queue.clear gs.accept_waiters;
        gs.state <- Gclosed;
        (* Job and send queues have no mutual ordering; defer the close NQE
           until every in-flight send has been acknowledged so it cannot
           overtake data. *)
        if gs.sendbuf_used > 0 then gs.close_pending <- true
        else post_op t gs Nqe.Close ();
        (match Hashtbl.find_opt t.memberships gid with
        | None -> ()
        | Some eps ->
            List.iter
              (fun epid ->
                match Hashtbl.find_opt t.epolls epid with
                | None -> ()
                | Some ep -> Epoll_core.del ep gid)
              !eps;
            Hashtbl.remove t.memberships gid)
  in
  let epoll_create () =
    let epid = t.next_ep in
    t.next_ep <- t.next_ep + 1;
    let core_of gid =
      match find t gid with
      | Some gs -> core_for t gs
      | None -> Cpu.Set.core t.cores 0
    in
    Hashtbl.replace t.epolls epid
      (Epoll_core.create ~engine:t.engine ~cmp:Int.compare ~events_of:(gsock_events t)
         ~core_of ~wake_cycles:t.costs.Nk_costs.guest_epoll_wake ());
    epid
  in
  let epoll_add epid gid ~mask =
    match Hashtbl.find_opt t.epolls epid with
    | None -> ()
    | Some ep ->
        Epoll_core.add ep gid ~mask;
        let eps =
          match Hashtbl.find_opt t.memberships gid with
          | Some l -> l
          | None ->
              let l = ref [] in
              Hashtbl.replace t.memberships gid l;
              l
        in
        if not (List.mem epid !eps) then eps := epid :: !eps
  in
  let epoll_del epid gid =
    match Hashtbl.find_opt t.epolls epid with
    | None -> ()
    | Some ep ->
        Epoll_core.del ep gid;
        (match Hashtbl.find_opt t.memberships gid with
        | None -> ()
        | Some eps -> eps := List.filter (fun e -> e <> epid) !eps)
  in
  let epoll_wait epid ~timeout ~k =
    match Hashtbl.find_opt t.epolls epid with
    | None -> k []
    | Some ep -> Epoll_core.wait ep ~timeout ~k
  in
  let local_addr gid = Option.bind (find t gid) (fun gs -> gs.local) in
  let peer_addr gid = Option.bind (find t gid) (fun gs -> gs.peer) in
  {
    Socket_api.socket;
    bind;
    listen;
    accept;
    connect;
    send;
    recv;
    close;
    epoll_create;
    epoll_add;
    epoll_del;
    epoll_wait;
    local_addr;
    peer_addr;
  }

(* ---- listener re-homing (control plane) --------------------------------- *)

let listening_socks t =
  Nkutil.Det_tbl.bindings ~cmp:Int.compare t.socks
  |> List.filter_map (fun (gid, gs) -> if gs.state = Glistening then Some gid else None)

let remigrate_listeners t =
  List.iter
    (fun gid ->
      match find t gid with
      | Some gs when gs.state = Glistening -> (
          match gs.local with
          | None -> ()
          | Some addr ->
              (* The listener is being re-homed: its route was forgotten, so
                 replaying the socket/bind/listen NQEs re-runs NSM assignment
                 and re-registers the endpoint on the new NSM. A crash error
                 is wiped — the reborn listener starts clean. *)
              gs.err <- None;
              Cpu.charge (core_for t gs) ~cycles:(3.0 *. control_cycles t);
              post_op t gs Nqe.Socket ();
              post_op t gs Nqe.Bind ~op_data:(Nqe.pack_addr addr) ();
              post_op t gs Nqe.Listen ~op_data:(Int64.of_int gs.backlog) ();
              notify_epolls t gs.gid)
      | _ -> ())
    (listening_socks t)

let create ~engine ~vm_id ~cores ~device ~costs ~profile ?(mon = Nkmon.null ())
    ?(spans = Nkspan.null ()) () =
  let instance = Printf.sprintf "vm%d" vm_id in
  let c name = Nkmon.counter mon ~component:"guestlib" ~instance ~name in
  let t =
    {
      engine;
      vm_id;
      cores;
      device;
      costs;
      profile;
      socks = Hashtbl.create 256;
      epolls = Hashtbl.create 4;
      memberships = Hashtbl.create 256;
      qstates =
        Array.init (Nk_device.n_qsets device) (fun _ ->
            { scheduled = false; last_active = 0.0; scratch = Array.make 128 Bytes.empty });
      mon;
      spans;
      instance;
      ctr =
        {
          c_nqes_tx = c "nqes_tx";
          c_nqes_rx = c "nqes_rx";
          c_bytes_sent = c "bytes_sent";
          c_bytes_received = c "bytes_received";
          c_send_eagain = c "send_eagain";
        };
      next_gid = 1;
      next_ep = 1;
    }
  in
  Nk_device.set_kick_owner device (fun qi -> on_kick t qi);
  t
