(** GuestLib: transparent BSD-socket redirection inside the guest (paper
    §4.1–§4.2).

    Presents the same {!Tcpstack.Socket_api.t} applications use over the
    in-VM stack, but implements every call by translating it into NQEs on
    the VM's NK device: control operations go to the job queue, sends copy
    payload into the shared hugepages and enqueue a send NQE, results and
    receive events come back through the completion and receive queues.
    I/O event notification (epoll) is served locally from GuestLib state,
    woken by the NK device's interrupt-driven polling (§4.6).

    Send-buffer semantics follow the paper's pipelining: [send] returns as
    soon as payload is in the hugepages; the NSM's completion NQE returns
    the buffer credit. *)

type t

val create :
  engine:Sim.Engine.t ->
  vm_id:int ->
  cores:Sim.Cpu.Set.t ->
  device:Nk_device.t ->
  costs:Nk_costs.t ->
  profile:Sim.Cost_profile.t ->
  ?mon:Nkmon.t ->
  ?spans:Nkspan.t ->
  unit ->
  t
(** [device] must have one queue set per core in [cores]. [profile] is the
    guest kernel's cost profile (syscall entry, copies, epoll wake).
    [spans] (default a disabled {!Nkspan.null}) makes [send] the span birth
    point: sampled requests get a span id stamped into their NQE and the
    guestlib/completion stages recorded here. *)

val api : t -> Tcpstack.Socket_api.t

type stats = {
  nqes_tx : int;
  nqes_rx : int;
  bytes_sent : int;
  bytes_received : int;
  send_eagain : int;  (** sends rejected for lack of buffer/extent *)
}

val stats : t -> stats
(** Immutable snapshot of the registry-backed [guestlib/vm<id>/...]
    counters. *)

val listening_socks : t -> int list
(** Guest socket ids currently in the listening state (sorted). *)

val remigrate_listeners : t -> unit
(** Replay socket/bind/listen NQEs for every listening socket. Used by the
    control plane after the listeners' routes were forgotten
    ({!Coreengine.forget_route}) and their source-NSM listeners closed: the
    replayed NQEs re-run NSM assignment, landing the listeners on the VM's
    current NSM. Clears any pending crash error on the listeners. *)
