type t = {
  engine : Sim.Engine.t;
  fabric : Fabric.t;
  registry : Tcpstack.Conn_registry.t;
  master_rng : Nkutil.Rng.t;
  costs : Nk_costs.t;
  name : string;
  pressure : Sim.Pressure.t;
  nic : Nic.t;
  vswitch : Vswitch.t;
  mon : Nkmon.t;
  spans : Nkspan.t;
  mutable ce : Coreengine.t option;
  mutable ce_cores : Sim.Cpu.t array;
  mutable next_vm_id : int;
  mutable next_nsm_id : int;
}

let create ~engine ~fabric ~registry ~rng ~costs ~name ?mon ?(spans = Nkspan.null ()) () =
  let mon =
    match mon with
    | Some m -> m
    | None -> Nkmon.create ~now:(fun () -> Sim.Engine.now engine) ()
  in
  let pressure = Sim.Pressure.create engine () in
  let nic = Nic.create engine ~name:(name ^ ".pnic") ~pressure () in
  Fabric.attach fabric nic;
  let vswitch = Vswitch.create engine ~nic () in
  { engine; fabric; registry; master_rng = rng; costs; name; pressure; nic; vswitch;
    mon; spans; ce = None; ce_cores = [||]; next_vm_id = 1; next_nsm_id = 1 }

let name t = t.name
let engine t = t.engine
let nic t = t.nic
let vswitch t = t.vswitch
let pressure t = t.pressure
let registry t = t.registry
let rng t = Nkutil.Rng.split t.master_rng
let costs t = t.costs
let mon t = t.mon
let spans t = t.spans

let own_ip t ip = Fabric.add_route t.fabric ip t.nic

let new_cores t ~name ~n =
  Sim.Cpu.Set.create t.engine ~name:(t.name ^ "." ^ name) ~n ()

(* Core 0 keeps the historic name so single-core cycle accounting (and any
   tooling keyed on it) is unchanged; extra shard cores are numbered. *)
let ce_core_name t k =
  if k = 0 then t.name ^ ".coreengine" else Printf.sprintf "%s.coreengine%d" t.name k

let enable_netkernel ?(ce_cores = 1) t =
  match t.ce with
  | Some _ -> ()
  | None ->
      if ce_cores < 1 then
        invalid_arg (t.name ^ ": need at least one CoreEngine core");
      let cores =
        Array.init ce_cores (fun k ->
            Sim.Cpu.create t.engine ~name:(ce_core_name t k) ())
      in
      t.ce_cores <- cores;
      t.ce <-
        Some
          (Coreengine.create ~engine:t.engine ~cores ~mon:t.mon ~spans:t.spans
             ~instance:(t.name ^ ".ce") t.costs)

let coreengine t =
  match t.ce with
  | Some ce -> ce
  | None -> invalid_arg (t.name ^ ": NetKernel is not enabled on this host")

let netkernel_enabled t = t.ce <> None

let ce_core t =
  if Array.length t.ce_cores = 0 then
    invalid_arg (t.name ^ ": NetKernel is not enabled on this host")
  else t.ce_cores.(0)

let ce_cores t =
  if Array.length t.ce_cores = 0 then
    invalid_arg (t.name ^ ": NetKernel is not enabled on this host")
  else Array.copy t.ce_cores

let scale_ce t ~add =
  let ce = coreengine t in
  if add < 1 then invalid_arg (t.name ^ ": scale_ce needs add >= 1");
  let n0 = Array.length t.ce_cores in
  let fresh =
    Array.init add (fun i -> Sim.Cpu.create t.engine ~name:(ce_core_name t (n0 + i)) ())
  in
  t.ce_cores <- Array.append t.ce_cores fresh;
  Coreengine.scale_out ce ~cores:fresh

let fresh_vm_id t =
  let id = t.next_vm_id in
  t.next_vm_id <- t.next_vm_id + 1;
  id

let fresh_nsm_id t =
  let id = t.next_nsm_id in
  t.next_nsm_id <- t.next_nsm_id + 1;
  id

let set_id_base t base =
  (* Cluster worlds give each host a disjoint id range so a VM or NSM can
     appear on a second host (migration proxies/stubs) without colliding
     with that host's own devices. Only meaningful before any allocation. *)
  if t.next_vm_id > 1 || t.next_nsm_id > 1 then
    invalid_arg "Host.set_id_base: ids already allocated";
  t.next_vm_id <- base;
  t.next_nsm_id <- base
