(** A physical server: NIC, vswitch, memory-pressure estimator, and (when
    NetKernel is enabled) the CoreEngine on its dedicated core. *)

type t

val create :
  engine:Sim.Engine.t ->
  fabric:Fabric.t ->
  registry:Tcpstack.Conn_registry.t ->
  rng:Nkutil.Rng.t ->
  costs:Nk_costs.t ->
  name:string ->
  ?mon:Nkmon.t ->
  ?spans:Nkspan.t ->
  unit ->
  t
(** Attaches a NIC to the fabric and builds the host vswitch. [mon] is the
    observability handle shared with every component built on this host;
    defaults to a fresh handle clocked by [engine] (tracing off). [spans]
    is the request-span recorder shared the same way (default disabled). *)

val name : t -> string

val engine : t -> Sim.Engine.t

val nic : t -> Nic.t

val vswitch : t -> Vswitch.t

val pressure : t -> Sim.Pressure.t

val registry : t -> Tcpstack.Conn_registry.t

val rng : t -> Nkutil.Rng.t
(** A fresh independent RNG split per call. *)

val costs : t -> Nk_costs.t

val mon : t -> Nkmon.t

val spans : t -> Nkspan.t

val own_ip : t -> Addr.ip -> unit
(** Route [ip] to this host in the fabric. *)

val new_cores : t -> name:string -> n:int -> Sim.Cpu.Set.t

val enable_netkernel : ?ce_cores:int -> t -> unit
(** Allocate [ce_cores] dedicated CoreEngine cores (default 1, one switching
    shard per core) and start the CoreEngine. Idempotent: once enabled,
    later calls — whatever their [ce_cores] — are no-ops; grow a live engine
    with {!scale_ce} instead. *)

val coreengine : t -> Coreengine.t
(** Raises [Invalid_argument] if NetKernel was not enabled. *)

val netkernel_enabled : t -> bool

val ce_core : t -> Sim.Cpu.t
(** Shard 0's core (the CE core of a single-core engine). *)

val ce_cores : t -> Sim.Cpu.t array
(** All CoreEngine cores in shard order. *)

val scale_ce : t -> add:int -> unit
(** Allocate [add] fresh cores and hand them to the CoreEngine as new
    switching shards ({!Coreengine.scale_out}). *)

val fresh_vm_id : t -> int

val fresh_nsm_id : t -> int

val set_id_base : t -> int -> unit
(** Start this host's VM and NSM id counters at [base] (cluster worlds use
    disjoint per-host ranges so ids stay unique fabric-wide; a migrated
    NSM's id can then exist on two hosts without clashing). Raises if any
    id was already allocated. Note the NQE [vm_id] field is one byte, so
    bases must stay below 256 minus the host's device count. *)
