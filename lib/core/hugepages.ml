type extent = { offset : int; len : int }

type t = {
  (* Backing store for the region's payload bytes. The allocator hands out
     offsets over the full [size], but the [bytes] itself is materialized
     lazily: regions default to 64 MB per VM and a first-fit allocator keeps
     the working set near offset 0, so eagerly zero-filling the whole span
     (the former [Bytes.create size]) dominated experiment setup wall-clock.
     [Bytes.create] zero-fills, and growth copies the old prefix, so the
     observable contents are identical to an eagerly allocated region. *)
  mutable buf : bytes;
  size : int;
  mutable free_list : (int * int) list; (* (offset, len), sorted by offset *)
  mutable in_use : int;
  live : (int, int) Hashtbl.t; (* offset -> len, for double-free detection *)
  mon : Nkmon.t;
  region : string;
}

(* Grow the backing store to cover at least [need] bytes (next power of two,
   capped at the region size). *)
let ensure_backing t need =
  if need > Bytes.length t.buf then begin
    let cap = ref (Int.max 1 (Bytes.length t.buf)) in
    while !cap < need do
      cap := !cap * 2
    done;
    let cap = Int.min !cap t.size in
    let fresh = Bytes.create cap in
    Bytes.blit t.buf 0 fresh 0 (Bytes.length t.buf);
    t.buf <- fresh
  end

let create ?(page_size = 2 * 1024 * 1024) ?(pages = 32) ?(mon = Nkmon.null ())
    ?(region = "hugepages") () =
  let size = page_size * pages in
  let t =
    {
      buf = Bytes.create (Int.min size 4096);
      size;
      free_list = [ (0, size) ];
      in_use = 0;
      live = Hashtbl.create 64;
      mon;
      region;
    }
  in
  Nkmon.sampler mon ~component:"hugepages" ~instance:region ~name:"bytes_in_use" (fun () ->
      float_of_int t.in_use);
  Nkmon.sampler mon ~component:"hugepages" ~instance:region ~name:"allocations" (fun () ->
      float_of_int (Hashtbl.length t.live));
  (* Capacity next to bytes_in_use so pressure (in_use / capacity) is
     computable from a registry snapshot alone — the Nkobs hugepage
     pressure alert reads exactly these two rows. *)
  Nkmon.sampler mon ~component:"hugepages" ~instance:region ~name:"capacity_bytes" (fun () ->
      float_of_int t.size);
  t

let capacity t = t.size

let bytes_in_use t = t.in_use

let allocations t = Hashtbl.length t.live

(* Round to 64-byte cache lines so adjacent extents don't false-share. *)
let round n = (n + 63) land lnot 63

let alloc t n =
  if n <= 0 then invalid_arg "Hugepages.alloc: size must be positive";
  let need = round n in
  let rec take acc = function
    | [] -> None
    | (off, len) :: rest when len >= need ->
        let remainder = if len > need then [ (off + need, len - need) ] else [] in
        t.free_list <- List.rev_append acc (remainder @ rest);
        t.in_use <- t.in_use + need;
        Hashtbl.replace t.live off need;
        if Nkmon.tracing t.mon then
          Nkmon.event t.mon
            (Nkmon.Trace.Hugepage_alloc { region = t.region; offset = off; len = n });
        Some { offset = off; len = n }
    | hole :: rest -> take (hole :: acc) rest
  in
  take [] t.free_list

let free t e =
  match Hashtbl.find_opt t.live e.offset with
  | None -> invalid_arg "Hugepages.free: extent is not live (double free?)"
  | Some rounded ->
      Hashtbl.remove t.live e.offset;
      t.in_use <- t.in_use - rounded;
      if Nkmon.tracing t.mon then
        Nkmon.event t.mon
          (Nkmon.Trace.Hugepage_free { region = t.region; offset = e.offset; len = e.len });
      (* Insert sorted by offset, then coalesce adjacent holes. Both passes
         are tail-recursive: a long-lived fragmented region accumulates
         thousands of holes, and freeing must not grow the OCaml stack with
         the free list. *)
      let rec insert acc = function
        | [] -> List.rev ((e.offset, rounded) :: acc)
        | (off, len) :: rest ->
            if e.offset < off then
              List.rev_append acc ((e.offset, rounded) :: (off, len) :: rest)
            else insert ((off, len) :: acc) rest
      in
      let coalesce holes =
        let merged =
          List.fold_left
            (fun acc (o2, l2) ->
              match acc with
              | (o1, l1) :: tl when o1 + l1 = o2 -> (o1, l1 + l2) :: tl
              | _ -> (o2, l2) :: acc)
            [] holes
        in
        List.rev merged
      in
      t.free_list <- coalesce (insert [] t.free_list)

let write_payload t e payload =
  let len = Tcpstack.Types.payload_len payload in
  if len > e.len then invalid_arg "Hugepages.write_payload: payload larger than extent";
  match payload with
  | Tcpstack.Types.Zeros _ -> ()
  | Tcpstack.Types.Data s ->
      ensure_backing t (e.offset + len);
      Bytes.blit_string s 0 t.buf e.offset len

let read_payload t e ~pos ~len ~synthetic =
  if pos < 0 || len < 0 || pos + len > e.len then
    invalid_arg "Hugepages.read_payload: slice out of extent";
  if synthetic then Tcpstack.Types.Zeros len
  else begin
    ensure_backing t (e.offset + pos + len);
    Tcpstack.Types.Data (Bytes.sub_string t.buf (e.offset + pos) len)
  end

let blit_between ~src ~src_extent ~dst ~dst_extent ~len =
  if len > src_extent.len || len > dst_extent.len then
    invalid_arg "Hugepages.blit_between: length exceeds an extent";
  ensure_backing src (src_extent.offset + len);
  ensure_backing dst (dst_extent.offset + len);
  Bytes.blit src.buf src_extent.offset dst.buf dst_extent.offset len
