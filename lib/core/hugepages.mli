(** Shared hugepage region for application payloads (paper §4.5).

    One region is shared per VM–NSM tuple: GuestLib copies outgoing payload
    in and passes ⟨offset, size⟩ through NQEs; ServiceLib copies incoming
    payload in for the VM to read. The region is backed by a real [bytes]
    buffer managed by a first-fit free-list allocator with coalescing, so
    offsets in NQEs are genuine and the Fig 12 copy microbenchmark measures
    actual memory traffic. Synthetic ([Zeros]) payloads allocate extents
    but skip the byte copies. *)

type t

type extent = { offset : int; len : int }

val create : ?page_size:int -> ?pages:int -> ?mon:Nkmon.t -> ?region:string -> unit -> t
(** Defaults: 2 MB pages × 32. (The paper uses 128 pages; experiments that
    need more pass [~pages].) [region] names the instance in Nkmon
    ([hugepages/<region>/...] gauges, alloc/free trace events). *)

val capacity : t -> int

val bytes_in_use : t -> int

val allocations : t -> int
(** Number of live extents. *)

val alloc : t -> int -> extent option
(** [alloc t n] returns an extent of exactly [n] bytes, or [None] when no
    contiguous space fits (caller backpressures and retries). *)

val free : t -> extent -> unit
(** Return an extent. Freeing an extent that is not live raises
    [Invalid_argument] (catches double-frees in tests). *)

val write_payload : t -> extent -> Tcpstack.Types.payload -> unit
(** Copy a payload into an extent ([Zeros] writes nothing). The payload
    must fit. *)

val read_payload : t -> extent -> pos:int -> len:int -> synthetic:bool ->
  Tcpstack.Types.payload
(** Read [len] bytes starting at [pos] within the extent; returns [Zeros]
    without touching memory when [synthetic]. *)

val blit_between : src:t -> src_extent:extent -> dst:t -> dst_extent:extent -> len:int -> unit
(** Raw copy between regions (the shared-memory NSM's data path, §6.4). *)
