type t = {
  nk_syscall : float;
  guest_epoll_wake : float;
  nqe_encode : float;
  nqe_decode : float;
  guest_poll : float;
  guest_interrupt : float;
  guest_idle_window : float;
  ce_poll_iter : float;
  ce_switch : float;
  ce_xshard : float;
  ce_poll_latency : float;
  ce_ring_release_delay : float;
  ce_rate_recheck_delay : float;
  service_poll : float;
  hugepage_alloc : float;
  hugepage_copy_base : float;
  hugepage_copy_contention : float;
  wake_latency : float;
  ce_batch : int;
  guest_sendbuf : int;
  nsm_rwnd : int;
  nsm_zerocopy : bool;
  ce_hw_offload : bool;
}

let default =
  {
    nk_syscall = 500.0;
    guest_epoll_wake = 900.0;
    nqe_encode = 60.0;
    nqe_decode = 60.0;
    guest_poll = 80.0;
    guest_interrupt = 1500.0;
    guest_idle_window = 20e-6;
    ce_poll_iter = 120.0;
    ce_switch = 170.0;
    ce_xshard = 60.0;
    ce_poll_latency = 2e-7;
    ce_ring_release_delay = 5e-6;
    ce_rate_recheck_delay = 1e-5;
    service_poll = 80.0;
    hugepage_alloc = 100.0;
    hugepage_copy_base = 0.02;
    hugepage_copy_contention = 0.2;
    wake_latency = 5e-7;
    ce_batch = 4;
    guest_sendbuf = 512 * 1024;
    nsm_rwnd = 256 * 1024;
    nsm_zerocopy = false;
    ce_hw_offload = false;
  }

let hugepage_copy_cycles t pressure n =
  if t.nsm_zerocopy then
    (* page pinning / address translation only; no data movement, so no
       memory-bandwidth contention term *)
    float_of_int n *. 0.002
  else
    float_of_int n
    *. Sim.Pressure.hugepage_copy_cost pressure ~base:t.hugepage_copy_base
         ~contention:t.hugepage_copy_contention

let zerocopy t = { t with nsm_zerocopy = true }

let ce_offloaded t = { t with ce_hw_offload = true }
