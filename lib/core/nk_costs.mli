(** CPU cycle costs of NetKernel's own machinery.

    Calibration anchors (DESIGN.md §5):
    - CoreEngine switches ~8M NQEs/s on one 2.3 GHz core without batching
      (Fig 11) → ~290 cycles per unbatched switch; batching amortizes the
      per-iteration part.
    - Table 7: NetKernel adds only 5–9% CPU for short connections → the
      per-NQE translation costs must be tens of cycles, small against a
      ~30 K-cycle connection lifecycle.
    - Table 6: the overhead for bulk throughput grows 1.14x → 1.70x between
      20 and 100 Gb/s → the NSM-side hugepage copy's per-byte cost carries a
      quadratic memory-pressure term (see {!Sim.Pressure}). *)

type t = {
  nk_syscall : float;
      (** guest kernel crossing for a redirected socket call: the
          SOCK_NETKERNEL path enters the guest kernel but skips the whole
          socket layer below it *)
  guest_epoll_wake : float;
      (** waking an epoll waiter in GuestLib — nk_poll checks the receive
          queue directly (paper §4.2), cheaper than a full kernel epoll *)
  nqe_encode : float;  (** translate a socket op into an NQE *)
  nqe_decode : float;  (** parse an NQE back into an op/result *)
  guest_poll : float;  (** GuestLib NK-device poll, per inbound batch *)
  guest_interrupt : float;
      (** waking a GuestLib device that had gone idle (interrupt-driven
          polling, paper §4.6) *)
  guest_idle_window : float;
      (** polling window after which the device sleeps (20 us in the
          paper) *)
  ce_poll_iter : float;  (** CoreEngine polling iteration *)
  ce_switch : float;  (** CoreEngine per-NQE switch: lookup + two copies *)
  ce_xshard : float;
      (** cross-shard handoff on a multi-core CoreEngine: pushing an NQE
          into a queue set owned by another switching shard, or mutating a
          connection-table entry owned by another shard's VM (the cacheline
          transfer between CE cores); never charged with one shard *)
  ce_poll_latency : float;  (** producer kick to CE processing *)
  ce_ring_release_delay : float;
      (** re-dispatch delay after parking an NQE on a full inbound ring *)
  ce_rate_recheck_delay : float;
      (** re-dispatch delay after parking a send that found an empty token
          bucket (the bucket itself supplies the exact refill wait; this is
          the scheduling granularity) *)
  service_poll : float;  (** ServiceLib poll, per inbound batch *)
  hugepage_alloc : float;  (** allocate/free an extent *)
  hugepage_copy_base : float;  (** per-byte copy in/out of hugepages *)
  hugepage_copy_contention : float;
      (** quadratic memory-pressure coefficient (Table 6) *)
  wake_latency : float;  (** CE-to-device wake latency *)
  ce_batch : int;  (** CoreEngine NQE batch size (4, per §7.2) *)
  guest_sendbuf : int;  (** per-socket hugepage send-buffer budget *)
  nsm_rwnd : int;  (** per-connection receive credit towards the VM *)
  nsm_zerocopy : bool;
      (** paper future work (§7.8, §10): map hugepage extents straight into
          the NSM stack instead of copying — the per-byte copy cost drops to
          a small pin/translate overhead *)
  ce_hw_offload : bool;
      (** paper future work (§7.8): NQE switching offloaded to SmartNIC
          hardware queues; only connection-table misses consume CE CPU *)
}

val default : t

val hugepage_copy_cycles : t -> Sim.Pressure.t -> int -> float
(** [hugepage_copy_cycles t pressure n] is the cycle cost of copying [n]
    bytes through hugepages under current memory pressure; with
    [nsm_zerocopy] it is a small constant-per-byte pin/translate cost that
    ignores memory pressure. *)

val zerocopy : t -> t
(** The same costs with [nsm_zerocopy] enabled. *)

val ce_offloaded : t -> t
(** The same costs with [ce_hw_offload] enabled. *)
