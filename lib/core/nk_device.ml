type role = Vm_side | Nsm_side

type overflow = { q : [ `Job | `Completion | `Send | `Receive ]; qset : int; nqe : bytes }

type t = {
  id : int;
  role : role;
  qsets : Queue_set.t array;
  hugepages : Hugepages.t;
  overflow : overflow Queue.t;
  (* Fire time of the last owner wake armed per queue set. A burst of
     deliveries from one CoreEngine callback all want a wake at the same
     instant; arming one is enough — the owner's budgeted poll drains the
     whole burst. Never cleared: the clock only moves forward, so a stale
     stamp can't equal a future fire time. *)
  wake_armed_at : float array;
  (* One preallocated kick-owner thunk per queue set, so arming a wake
     (millions per run) schedules a shared closure instead of building a
     fresh one each time. *)
  mutable wake_thunks : (unit -> unit) array;
  mutable kick_ce : (int -> unit) option;
  mutable kick_owner : (int -> unit) option;
  mon : Nkmon.t;
  spans : Nkspan.t;
  instance : string;
  c_posted : Nkmon.Registry.counter;
  c_ring_full : Nkmon.Registry.counter;
}

let create ~id ~role ~qsets ?capacity ~hugepages ?(mon = Nkmon.null ())
    ?(spans = Nkspan.null ()) () =
  if qsets < 1 then invalid_arg "Nk_device.create: need at least one queue set";
  let instance = Printf.sprintf "dev%d" id in
  let t =
    {
      id;
      role;
      qsets = Array.init qsets (fun _ -> Queue_set.create ?capacity ());
      hugepages;
      overflow = Queue.create ();
      wake_armed_at = Array.make qsets neg_infinity;
      wake_thunks = [||];
      kick_ce = None;
      kick_owner = None;
      mon;
      spans;
      instance;
      c_posted = Nkmon.counter mon ~component:"nk_device" ~instance ~name:"posted";
      c_ring_full = Nkmon.counter mon ~component:"nk_device" ~instance ~name:"ring_full";
    }
  in
  Nkmon.sampler mon ~component:"nk_device" ~instance ~name:"queued" (fun () ->
      float_of_int
        (Array.fold_left (fun acc s -> acc + Queue_set.total_queued s) 0 t.qsets
        + Queue.length t.overflow));
  t.wake_thunks <-
    Array.init qsets (fun i () -> match t.kick_owner with None -> () | Some f -> f i);
  t

let id t = t.id

let role t = t.role

let n_qsets t = Array.length t.qsets

let qset t i = t.qsets.(i)

let hugepages t = t.hugepages

let set_kick_ce t f = t.kick_ce <- Some f

let set_kick_owner t f = t.kick_owner <- Some f

let kick_owner t i = match t.kick_owner with None -> () | Some f -> f i

let wake_thunk t ~qset = t.wake_thunks.(qset)

let wake_armed_at t ~qset = t.wake_armed_at.(qset)

let set_wake_armed_at t ~qset at = t.wake_armed_at.(qset) <- at

let ring t ~qset q =
  let s = t.qsets.(qset) in
  match q with
  | `Job -> s.Queue_set.job
  | `Completion -> s.Queue_set.completion
  | `Send -> s.Queue_set.send
  | `Receive -> s.Queue_set.receive

let flush_overflow t =
  let rec loop () =
    match Queue.peek_opt t.overflow with
    | None -> ()
    | Some o ->
        if Nkutil.Spsc_ring.push (ring t ~qset:o.qset o.q) o.nqe then begin
          ignore (Queue.pop t.overflow);
          loop ()
        end
  in
  loop ()

let trace_queue = function
  | `Job -> Nkmon.Trace.Job
  | `Completion -> Nkmon.Trace.Completion
  | `Send -> Nkmon.Trace.Send
  | `Receive -> Nkmon.Trace.Receive

let post t ~qset q nqe =
  flush_overflow t;
  Nkmon.Registry.incr t.c_posted;
  (* Device enqueue opens the ring stage of a traced request; whichever
     component dequeues it closes the stage, so ring time covers the SPSC
     wait plus any overflow spill. *)
  if Nkspan.enabled t.spans then begin
    let span = Nqe.span_of_raw nqe in
    if span > 0 then
      Nkspan.begin_stage t.spans ~id:span
        ~component:(t.instance ^ "." ^ Queue_set.queue_name q)
        "ring"
  end;
  if
    (not (Queue.is_empty t.overflow)) || not (Nkutil.Spsc_ring.push (ring t ~qset q) nqe)
  then begin
    Nkmon.Registry.incr t.c_ring_full;
    if Nkmon.tracing t.mon then
      Nkmon.event t.mon
        (Nkmon.Trace.Ring_full { device = t.id; qset; queue = trace_queue q });
    Queue.add { q; qset; nqe } t.overflow
  end;
  match t.kick_ce with None -> () | Some f -> f qset

let outbound_pending t ~qset =
  let s = t.qsets.(qset) in
  let ring_part =
    match t.role with
    | Vm_side ->
        Nkutil.Spsc_ring.length s.Queue_set.job + Nkutil.Spsc_ring.length s.Queue_set.send
    | Nsm_side ->
        Nkutil.Spsc_ring.length s.Queue_set.completion
        + Nkutil.Spsc_ring.length s.Queue_set.receive
  in
  ring_part + Queue.length t.overflow
