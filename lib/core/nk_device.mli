(** NK device: the virtual device pairing a VM or NSM with CoreEngine.

    Bundles one queue set per vCPU plus the hugepage region reference, and
    carries the two notification directions:
    - [kick_ce]: the device owner produced outbound NQEs (GuestLib's job and
      send queues, or ServiceLib's completion and receive queues);
    - [kick_owner]: CoreEngine delivered inbound NQEs to queue set [i].

    Outbound posting goes through a per-queue overflow buffer so a full
    ring backpressures instead of dropping (the simulated analogue of the
    producer spinning on a full lockless queue). *)

type role = Vm_side | Nsm_side

type t

val create :
  id:int ->
  role:role ->
  qsets:int ->
  ?capacity:int ->
  hugepages:Hugepages.t ->
  ?mon:Nkmon.t ->
  ?spans:Nkspan.t ->
  unit ->
  t
(** [mon] records [nk_device/dev<id>/...] metrics (posted NQEs, ring-full
    spills, queued depth) and [Ring_full] trace events. [spans] lets the
    device mark the ring stage of traced requests at enqueue time. *)

val id : t -> int

val role : t -> role

val n_qsets : t -> int

val qset : t -> int -> Queue_set.t

val hugepages : t -> Hugepages.t

val set_kick_ce : t -> (int -> unit) -> unit
(** Installed by CoreEngine at registration; the argument is the queue-set
    index the owner posted on, so a sharded CoreEngine wakes only the
    switching shard that owns that queue set. *)

val set_kick_owner : t -> (int -> unit) -> unit
(** Installed by GuestLib / ServiceLib; argument is the queue-set index. *)

val kick_owner : t -> int -> unit

val wake_thunk : t -> qset:int -> unit -> unit
(** Preallocated [fun () -> kick_owner t qset] — the callback CoreEngine
    arms as a delayed owner wake. Shared so the per-delivery wake path
    does not allocate a closure. *)

val wake_armed_at : t -> qset:int -> float
(** Fire time of the last kick-owner wake armed for this queue set
    ([neg_infinity] before the first). When a delivery wants a wake at
    exactly this time, one is already scheduled and the new one may be
    elided: the owner-side polls are budgeted bursts, so the armed wake
    drains the whole same-instant burst. *)

val set_wake_armed_at : t -> qset:int -> float -> unit
(** Recorded by CoreEngine when it arms a wake; never cleared (virtual
    time is monotone, so a past stamp can never alias a future one). *)

val post : t -> qset:int -> [ `Job | `Completion | `Send | `Receive ] -> bytes -> unit
(** Owner-side enqueue of an encoded NQE + CE kick; spills to the overflow
    buffer when the ring is full. *)

val flush_overflow : t -> unit
(** Move spilled NQEs into their rings as space allows (CoreEngine calls
    this as it drains). *)

val outbound_pending : t -> qset:int -> int
(** Encoded NQEs waiting for the CoreEngine in [qset] (rings + overflow),
    counting the queues this device's owner produces. *)
