type op =
  | Socket
  | Bind
  | Listen
  | Connect
  | Send
  | Recv_done
  | Close
  | Comp_socket
  | Comp_bind
  | Comp_listen
  | Comp_connect
  | Comp_send
  | Comp_close
  | Ev_accept
  | Ev_data
  | Ev_eof
  | Ev_err

let op_to_byte = function
  | Socket -> 1
  | Bind -> 2
  | Listen -> 3
  | Connect -> 4
  | Send -> 5
  | Recv_done -> 6
  | Close -> 7
  | Comp_socket -> 16
  | Comp_bind -> 17
  | Comp_listen -> 18
  | Comp_connect -> 19
  | Comp_send -> 20
  | Comp_close -> 21
  | Ev_accept -> 32
  | Ev_data -> 33
  | Ev_eof -> 34
  | Ev_err -> 35

let op_of_byte = function
  | 1 -> Some Socket
  | 2 -> Some Bind
  | 3 -> Some Listen
  | 4 -> Some Connect
  | 5 -> Some Send
  | 6 -> Some Recv_done
  | 7 -> Some Close
  | 16 -> Some Comp_socket
  | 17 -> Some Comp_bind
  | 18 -> Some Comp_listen
  | 19 -> Some Comp_connect
  | 20 -> Some Comp_send
  | 21 -> Some Comp_close
  | 32 -> Some Ev_accept
  | 33 -> Some Ev_data
  | 34 -> Some Ev_eof
  | 35 -> Some Ev_err
  | _ -> None

let op_to_string = function
  | Socket -> "socket"
  | Bind -> "bind"
  | Listen -> "listen"
  | Connect -> "connect"
  | Send -> "send"
  | Recv_done -> "recv_done"
  | Close -> "close"
  | Comp_socket -> "comp_socket"
  | Comp_bind -> "comp_bind"
  | Comp_listen -> "comp_listen"
  | Comp_connect -> "comp_connect"
  | Comp_send -> "comp_send"
  | Comp_close -> "comp_close"
  | Ev_accept -> "ev_accept"
  | Ev_data -> "ev_data"
  | Ev_eof -> "ev_eof"
  | Ev_err -> "ev_err"

type t = {
  op : op;
  vm_id : int;
  qset : int;
  sock : int;
  op_data : int64;
  data_ptr : int;
  size : int;
  synthetic : bool;
  span : int;
}

let qset_unassigned = 0xFF

let nsm_sock_bit = 1 lsl 30

let size_bytes = 32

let make ~op ~vm_id ~qset ~sock ?(op_data = 0L) ?(data_ptr = 0) ?(size = 0)
    ?(synthetic = false) ?(span = 0) () =
  { op; vm_id; qset; sock; op_data; data_ptr; size; synthetic; span }

let encode_into t buf ~pos =
  if pos < 0 || pos + size_bytes > Bytes.length buf then
    invalid_arg "Nqe.encode_into: out of bounds";
  Bytes.set_uint8 buf pos (op_to_byte t.op);
  Bytes.set_uint8 buf (pos + 1) (t.vm_id land 0xFF);
  Bytes.set_uint8 buf (pos + 2) (t.qset land 0xFF);
  Bytes.set_int32_le buf (pos + 3) (Int32.of_int t.sock);
  Bytes.set_int64_le buf (pos + 7) t.op_data;
  Bytes.set_int64_le buf (pos + 15) (Int64.of_int t.data_ptr);
  Bytes.set_int32_le buf (pos + 23) (Int32.of_int t.size);
  Bytes.set_uint8 buf (pos + 27) (if t.synthetic then 1 else 0);
  Bytes.set_int32_le buf (pos + 28) (Int32.of_int t.span)

let encode t =
  let buf = Bytes.create size_bytes in
  encode_into t buf ~pos:0;
  buf

let decode_from buf ~pos =
  if pos < 0 || pos + size_bytes > Bytes.length buf then Error "short NQE buffer"
  else
    match op_of_byte (Bytes.get_uint8 buf pos) with
    | None -> Error (Printf.sprintf "unknown NQE op %d" (Bytes.get_uint8 buf pos))
    | Some op ->
        Ok
          {
            op;
            vm_id = Bytes.get_uint8 buf (pos + 1);
            qset = Bytes.get_uint8 buf (pos + 2);
            sock = Int32.to_int (Bytes.get_int32_le buf (pos + 3)) land 0xFFFFFFFF;
            op_data = Bytes.get_int64_le buf (pos + 7);
            data_ptr = Int64.to_int (Bytes.get_int64_le buf (pos + 15));
            size = Int32.to_int (Bytes.get_int32_le buf (pos + 23)) land 0xFFFFFFFF;
            synthetic = Bytes.get_uint8 buf (pos + 27) land 1 = 1;
            span = Int32.to_int (Bytes.get_int32_le buf (pos + 28)) land 0xFFFFFFFF;
          }

let decode buf = decode_from buf ~pos:0

let span_of_raw buf =
  if Bytes.length buf < size_bytes then 0
  else Int32.to_int (Bytes.get_int32_le buf 28) land 0xFFFFFFFF

(* Flat accessors over an encoded NQE. The datapath switches millions of
   raw records per run and almost never needs more than two or three
   fields, so reading them in place — as unboxed ints, via uint16 pairs
   rather than [Int32]/[Int64] loads — avoids allocating a record and two
   boxed words per NQE. Every accessor agrees with [decode] field-for-field
   (test_nqe.ml checks them against each other across all opcodes). *)
module View = struct
  let ok raw = Bytes.length raw >= size_bytes && op_of_byte (Bytes.get_uint8 raw 0) <> None

  let op raw =
    match op_of_byte (Bytes.get_uint8 raw 0) with
    | Some op -> op
    | None -> invalid_arg "Nqe.View.op: unknown opcode (check View.ok first)"

  let op_byte raw = Bytes.get_uint8 raw 0

  let vm_id raw = Bytes.get_uint8 raw 1

  let qset raw = Bytes.get_uint8 raw 2

  let set_qset raw q = Bytes.set_uint8 raw 2 (q land 0xFF)

  let sock raw = Bytes.get_uint16_le raw 3 lor (Bytes.get_uint16_le raw 5 lsl 16)

  let op_data raw = Bytes.get_int64_le raw 7

  let data_ptr raw =
    Bytes.get_uint16_le raw 15
    lor (Bytes.get_uint16_le raw 17 lsl 16)
    lor (Bytes.get_uint16_le raw 19 lsl 32)
    lor (Bytes.get_uint16_le raw 21 lsl 48)

  let size raw = Bytes.get_uint16_le raw 23 lor (Bytes.get_uint16_le raw 25 lsl 16)

  let synthetic raw = Bytes.get_uint8 raw 27 land 1 = 1

  let span raw = Bytes.get_uint16_le raw 28 lor (Bytes.get_uint16_le raw 30 lsl 16)
end

let pack_addr (a : Addr.t) =
  Int64.logor
    (Int64.of_int (a.Addr.ip land 0xFFFFFFFF))
    (Int64.shift_left (Int64.of_int (a.Addr.port land 0xFFFF)) 32)

let unpack_addr v =
  let ip = Int64.to_int (Int64.logand v 0xFFFFFFFFL) in
  let port = Int64.to_int (Int64.logand (Int64.shift_right_logical v 32) 0xFFFFL) in
  Addr.make ip port

let err_code (e : Tcpstack.Types.err) =
  Int64.of_int
    (match e with
    | Tcpstack.Types.Econnrefused -> 1
    | Econnreset -> 2
    | Etimedout -> 3
    | Eaddrinuse -> 4
    | Einval -> 5
    | Enotconn -> 6
    | Eclosed -> 7
    | Eagain -> 8
    | Enobufs -> 9)

let err_of_code v =
  match Int64.to_int v with
  | 0 -> None
  | 1 -> Some Tcpstack.Types.Econnrefused
  | 2 -> Some Tcpstack.Types.Econnreset
  | 3 -> Some Tcpstack.Types.Etimedout
  | 4 -> Some Tcpstack.Types.Eaddrinuse
  | 5 -> Some Tcpstack.Types.Einval
  | 6 -> Some Tcpstack.Types.Enotconn
  | 7 -> Some Tcpstack.Types.Eclosed
  | 8 -> Some Tcpstack.Types.Eagain
  | _ -> Some Tcpstack.Types.Enobufs

let ok_code = 0L
