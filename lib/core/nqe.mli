(** NetKernel Queue Elements — the fixed 32-byte socket-semantics units.

    This is the paper's Figure 3 laid out for real: every socket operation
    and every result crossing the VM/NSM boundary is marshalled into 32
    bytes, transmitted through the lockless queues and switched by
    CoreEngine. The codec is an actual binary serializer over [bytes] so
    the Fig 11 microbenchmark measures genuine encode/switch/decode work.

    Layout (little-endian):
    {v
    off len field
      0   1  op type
      1   1  VM id
      2   1  queue-set id
      3   4  VM socket id
      7   8  op_data (addresses, backlog, result codes)
     15   8  data pointer (hugepage offset)
     23   4  size
     27   1  flags (bit 0: synthetic payload)
     28   4  span id (Nkspan sample; 0 = untraced)
    v} *)

type op =
  (* VM -> NSM *)
  | Socket
  | Bind
  | Listen
  | Connect
  | Send
  | Recv_done  (** return receive-buffer credit after the app consumed data *)
  | Close
  (* NSM -> VM *)
  | Comp_socket
  | Comp_bind
  | Comp_listen
  | Comp_connect
  | Comp_send
  | Comp_close
  | Ev_accept  (** new connection on a listener (pipelined accept, §4.6) *)
  | Ev_data  (** newly received data sitting in hugepages *)
  | Ev_eof
  | Ev_err

val op_to_string : op -> string

type t = {
  op : op;
  vm_id : int;  (** 0–255 *)
  qset : int;  (** queue-set id; {!qset_unassigned} lets CoreEngine pick *)
  sock : int;  (** VM socket id (GuestLib- or NSM-allocated) *)
  op_data : int64;
  data_ptr : int;  (** hugepage offset for Send / Ev_data *)
  size : int;
  synthetic : bool;  (** payload is content-free filler *)
  span : int;  (** Nkspan span id carried end-to-end; 0 = untraced *)
}

val qset_unassigned : int
(** Placed in [qset] by the NSM for events with no VM-side history
    (e.g. [Ev_accept]); CoreEngine then picks the target queue set. *)

val nsm_sock_bit : int
(** Socket ids with this bit set were allocated by the NSM side (accepted
    connections), so the two allocators never collide. *)

val size_bytes : int
(** 32. *)

val make :
  op:op -> vm_id:int -> qset:int -> sock:int -> ?op_data:int64 -> ?data_ptr:int ->
  ?size:int -> ?synthetic:bool -> ?span:int -> unit -> t

val encode : t -> bytes
(** Always returns a fresh 32-byte buffer. *)

val encode_into : t -> bytes -> pos:int -> unit

val decode : bytes -> (t, string) result

val decode_from : bytes -> pos:int -> (t, string) result

val span_of_raw : bytes -> int
(** Peek the span id of an encoded NQE without a full decode (for
    batch-dispatch loops that only need to open a stage). 0 on short
    buffers. *)

(** Zero-allocation accessors over an encoded NQE.

    The hot path (CoreEngine switching, queue-set routing, Nsm_shmem
    dispatch) reads at most a few fields per record; these read them
    directly from the wire bytes as unboxed ints, so switching never
    allocates a {!t} record. [decode] remains the reference codec for
    tests, tracing, and cold paths — every accessor here must agree with
    it field-for-field (enforced by test_nqe.ml across all opcodes).

    All accessors except {!View.ok} assume a well-formed buffer:
    [Bytes.length raw >= size_bytes]. Call {!View.ok} first on untrusted
    input; {!View.op} raises [Invalid_argument] on an unknown opcode. *)
module View : sig
  val ok : bytes -> bool
  (** Length and opcode check — the raw-record analogue of
      [decode raw |> Result.is_ok]. *)

  val op : bytes -> op

  val op_byte : bytes -> int
  (** The raw opcode byte, for dispatch tables / error messages. *)

  val vm_id : bytes -> int

  val qset : bytes -> int

  val set_qset : bytes -> int -> unit
  (** In-place queue-set patch, used when CoreEngine assigns a queue set
      to an NSM-originated event ({!qset_unassigned}). *)

  val sock : bytes -> int

  val op_data : bytes -> int64

  val data_ptr : bytes -> int

  val size : bytes -> int

  val synthetic : bytes -> bool

  val span : bytes -> int
end

(** {1 Field packing helpers} *)

val pack_addr : Addr.t -> int64

val unpack_addr : int64 -> Addr.t

val err_code : Tcpstack.Types.err -> int64

val err_of_code : int64 -> Tcpstack.Types.err option
(** [None] for 0 (success). *)

val ok_code : int64
