module Cpu = Sim.Cpu

type backend =
  | Svc of { service : Servicelib.t; proto : string; stacks : Tcpstack.Stack.t list }
  | Shm of Nsm_shmem.t

type t = {
  host : Host.t;
  nsm_id : int;
  name : string;
  cores : Cpu.Set.t;
  device : Nk_device.t;
  backend : backend;
  mutable failed : bool;
}

let id t = t.nsm_id
let name t = t.name
let cores t = t.cores
let device t = t.device
let failed t = t.failed

let make_device host ~nsm_id ~vcpus =
  (* The NSM-side device needs no payload region of its own: payloads live
     in the per-VM hugepages (so the dummy region stays unmonitored). *)
  Nk_device.create ~id:nsm_id ~role:Nk_device.Nsm_side ~qsets:vcpus
    ~hugepages:(Hugepages.create ~page_size:4096 ~pages:1 ())
    ~mon:(Host.mon host) ~spans:(Host.spans host) ()

let finish host ~name ~cores ~device ~backend ~nsm_id =
  Host.enable_netkernel host;
  Coreengine.register_nsm (Host.coreengine host) device;
  { host; nsm_id; name; cores; device; backend; failed = false }

let create_kernel host ~name ~vcpus ?(profile = Sim.Cost_profile.linux_kernel) ?cc_factory
    ?tcb () =
  let nsm_id = Host.fresh_nsm_id host in
  let cores = Host.new_cores host ~name ~n:vcpus in
  let device = make_device host ~nsm_id ~vcpus in
  let base = Tcpstack.Stack.default_config profile in
  let cfg =
    {
      base with
      Tcpstack.Stack.charge_syscalls = false (* ServiceLib calls kernel APIs directly *);
      charge_user_copy = false (* the hugepage copy is charged by ServiceLib *);
      cc_factory = (match cc_factory with Some f -> f | None -> base.Tcpstack.Stack.cc_factory);
      tcb = (match tcb with Some c -> c | None -> base.Tcpstack.Stack.tcb);
      (* several NSMs may originate connections from one VM IP: give each a
         disjoint ephemeral slice *)
      ephemeral_range =
        (let slice = 3500 in
         let base_port = 32768 + (nsm_id mod 8 * slice) in
         (base_port, base_port + slice - 1));
    }
  in
  let stack =
    Tcpstack.Stack.create ~engine:(Host.engine host) ~name ~cores ~vswitch:(Host.vswitch host)
      ~registry:(Host.registry host) ~rng:(Host.rng host) ~mon:(Host.mon host)
      ~spans:(Host.spans host) cfg
  in
  let service =
    Servicelib.create ~engine:(Host.engine host) ~device
      ~ops:(Tcpstack.Tcp_ops.of_stack stack) ~cores ~costs:(Host.costs host)
      ~pressure:(Host.pressure host) ~mon:(Host.mon host) ~spans:(Host.spans host) ()
  in
  finish host ~name ~cores ~device
    ~backend:(Svc { service; proto = Tcpstack.Tcp_ops.proto; stacks = [ stack ] })
    ~nsm_id

let create_mtcp host ~name ~vcpus ?cc_factory ?tcb () =
  let nsm_id = Host.fresh_nsm_id host in
  let cores = Host.new_cores host ~name ~n:vcpus in
  let device = make_device host ~nsm_id ~vcpus in
  let mtcp =
    Mtcpstack.Mtcp.create ~engine:(Host.engine host) ~name ~cores
      ~vswitch:(Host.vswitch host) ~registry:(Host.registry host) ~rng:(Host.rng host)
      ?cc_factory ?tcb ~charge_user_copy:false ~mon:(Host.mon host) ()
  in
  let service =
    Servicelib.create ~engine:(Host.engine host) ~device ~ops:(Mtcpstack.Mtcp.ops mtcp)
      ~cores ~costs:(Host.costs host) ~pressure:(Host.pressure host) ~mon:(Host.mon host)
      ~spans:(Host.spans host) ()
  in
  finish host ~name ~cores ~device
    ~backend:
      (Svc
         {
           service;
           proto = Tcpstack.Tcp_ops.proto;
           stacks = Array.to_list (Mtcpstack.Mtcp.shards mtcp);
         })
    ~nsm_id

let create_homa host ~name ~vcpus ?cfg () =
  let nsm_id = Host.fresh_nsm_id host in
  let cores = Host.new_cores host ~name ~n:vcpus in
  let device = make_device host ~nsm_id ~vcpus in
  let base = match cfg with Some c -> c | None -> Homastack.Homa.default_config in
  let cfg =
    {
      base with
      (* Same slicing rule as the TCP NSMs: several NSMs may originate
         connections from one VM IP, so each takes a disjoint ephemeral
         range. *)
      Homastack.Homa.ephemeral_base = 32768 + (nsm_id mod 8 * 3500);
      ephemeral_count = 3500;
    }
  in
  let homa =
    Homastack.Homa.create ~engine:(Host.engine host) ~name ~cores
      ~vswitch:(Host.vswitch host) ~registry:(Host.registry host) ~mon:(Host.mon host)
      ~spans:(Host.spans host) ~cfg ()
  in
  let service =
    Servicelib.create ~engine:(Host.engine host) ~device ~ops:(Homastack.Homa.ops homa)
      ~cores ~costs:(Host.costs host) ~pressure:(Host.pressure host) ~mon:(Host.mon host)
      ~spans:(Host.spans host) ()
  in
  finish host ~name ~cores ~device
    ~backend:(Svc { service; proto = Homastack.Homa.proto; stacks = [] })
    ~nsm_id

let create_shmem host ~name ~vcpus ?copy_cycles_per_byte () =
  let nsm_id = Host.fresh_nsm_id host in
  let cores = Host.new_cores host ~name ~n:vcpus in
  let device = make_device host ~nsm_id ~vcpus in
  let shm =
    Nsm_shmem.create ~engine:(Host.engine host) ~device ~cores ~costs:(Host.costs host)
      ?copy_cycles_per_byte ~mon:(Host.mon host) ~spans:(Host.spans host) ()
  in
  finish host ~name ~cores ~device ~backend:(Shm shm) ~nsm_id

let register_vm t ~vm_id ~hugepages ~ips =
  match t.backend with
  | Svc { service; _ } -> Servicelib.register_vm service ~vm_id ~hugepages ~ips
  | Shm shm -> Nsm_shmem.register_vm shm ~vm_id ~hugepages ~ips

let deregister_vm t ~vm_id =
  match t.backend with
  | Svc { service; _ } -> Servicelib.deregister_vm service ~vm_id
  | Shm shm -> Nsm_shmem.deregister_vm shm ~vm_id

let close_vm_listeners t ~vm_id =
  match t.backend with
  | Svc { service; _ } -> Servicelib.close_vm_listeners service ~vm_id
  | Shm _ -> ()

(* Live-migration verbs (Nkfabric): only ServiceLib-backed NSMs carry
   serializable per-VM state; the shared-memory NSM has no cross-host
   story. *)

let service_exn t ~verb =
  match t.backend with
  | Svc { service; _ } -> service
  | Shm _ -> invalid_arg (Printf.sprintf "Nsm.%s: %s is a shared-memory NSM" verb t.name)

let export_vm t ~vm_id = Servicelib.export_vm (service_exn t ~verb:"export_vm") ~vm_id

let import_vm t x ~hugepages ~ips =
  Servicelib.import_vm (service_exn t ~verb:"import_vm") x ~hugepages ~ips

let set_vm_forwarder t ~vm_id f =
  Servicelib.set_vm_forwarder (service_exn t ~verb:"set_vm_forwarder") ~vm_id f

let clear_vm_forwarder t ~vm_id =
  Servicelib.clear_vm_forwarder (service_exn t ~verb:"clear_vm_forwarder") ~vm_id

let release_vm_ips t ~ips =
  match t.backend with
  | Svc { service; _ } -> Servicelib.release_ips service ips
  | Shm _ -> ()

let quiesce_vm_listeners t ~vm_id =
  Servicelib.quiesce_vm_listeners (service_exn t ~verb:"quiesce_vm_listeners") ~vm_id

let fail t =
  if not t.failed then begin
    t.failed <- true;
    (* Silence the module first (no parting NQEs), then let CoreEngine drop
       the device and error out every socket it was serving. *)
    (match t.backend with Svc { service; _ } -> Servicelib.fail service | Shm _ -> ());
    Coreengine.crash_nsm (Host.coreengine t.host) ~nsm_id:t.nsm_id
  end

let retire t =
  if not t.failed then begin
    t.failed <- true;
    Coreengine.deregister_nsm (Host.coreengine t.host) ~nsm_id:t.nsm_id
  end

let stack_stats t =
  match t.backend with
  | Svc { stacks; _ } -> List.map Tcpstack.Stack.stats stacks
  | Shm _ -> []

let proto t =
  match t.backend with Svc { proto; _ } -> proto | Shm _ -> "shm"

let servicelib_stats t =
  match t.backend with Svc { service; _ } -> Some (Servicelib.stats service) | Shm _ -> None

let busy_cycles t = Cpu.Set.total_busy_cycles t.cores
