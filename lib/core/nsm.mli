(** Network Stack Modules: the operator-managed stacks VMs attach to.

    An NSM is "an individual VM" on the host (paper §3) with its own vCPUs,
    a vNIC into the host vswitch, an NK device towards CoreEngine, and a
    ServiceLib driving a network stack. Three kinds are provided, mirroring
    the paper's implementation and use cases:

    - {!create_kernel}: the Linux-kernel-stack NSM (ServiceLib calls kernel
      APIs directly — no syscall cost, §5);
    - {!create_mtcp}: the mTCP NSM ({!Mtcpstack.Mtcp}, §6.3);
    - {!create_homa}: the Homa-style RPC NSM ({!Homastack.Homa}) — the
      non-TCP transport a tenant can switch to live ("changing the network
      stack on the fly", paper §3.2);
    - {!create_shmem}: the shared-memory NSM for colocated VMs (§6.4). *)

type t

val create_kernel :
  Host.t ->
  name:string ->
  vcpus:int ->
  ?profile:Sim.Cost_profile.t ->
  ?cc_factory:Tcpstack.Cc.factory ->
  ?tcb:Tcpstack.Tcb.config ->
  unit ->
  t

val create_mtcp :
  Host.t ->
  name:string ->
  vcpus:int ->
  ?cc_factory:Tcpstack.Cc.factory ->
  ?tcb:Tcpstack.Tcb.config ->
  unit ->
  t

val create_homa :
  Host.t -> name:string -> vcpus:int -> ?cfg:Homastack.Homa.config -> unit -> t
(** The Homa-style RPC NSM ({!Homastack.Homa}): message-oriented,
    backlog-free, receiver-driven. The ephemeral-port slice is carved per
    NSM id exactly like the TCP NSMs'. *)

val create_shmem : Host.t -> name:string -> vcpus:int -> ?copy_cycles_per_byte:float -> unit -> t

val id : t -> int

val name : t -> string

val cores : t -> Sim.Cpu.Set.t

val device : t -> Nk_device.t

val register_vm : t -> vm_id:int -> hugepages:Hugepages.t -> ips:Addr.ip list -> unit
(** Called by {!Vm.create_nk}; wires the VM's payload region and IPs. *)

val deregister_vm : t -> vm_id:int -> unit
(** Stop serving the VM on this NSM: its connections here are aborted and
    its listeners closed. *)

val close_vm_listeners : t -> vm_id:int -> unit
(** Release the VM's listening endpoints on this NSM only (listener
    re-homing); established connections keep running. No-op for the
    shared-memory NSM. *)

(** {1 Live migration (Nkfabric)}

    These dispatch to the {!Servicelib} export/import verbs; they raise
    [Invalid_argument] on a shared-memory NSM (no serializable state). *)

val export_vm : t -> vm_id:int -> Servicelib.vm_export option

val import_vm : t -> Servicelib.vm_export -> hugepages:Hugepages.t -> ips:Addr.ip list -> unit

val set_vm_forwarder : t -> vm_id:int -> (Nqe.t -> unit) -> unit

val clear_vm_forwarder : t -> vm_id:int -> unit

val release_vm_ips : t -> ips:Addr.ip list -> unit
(** Disown the migrated VM's IPs on the backend stack so stray in-flight
    segments drop silently instead of drawing RSTs. No-op for the
    shared-memory NSM. *)

val quiesce_vm_listeners : t -> vm_id:int -> unit
(** Migration quiesce (before the cut): the VM's listeners silently stop
    admitting new connections (peers retry per their protocol's own
    recovery) while in-flight handshakes and queued accepts settle, so
    the later {!export_vm} finds nothing half-done to abort. *)

val fail : t -> unit
(** Inject an NSM crash: the module goes silent, every connection it
    carried is reset, and {!Coreengine.crash_nsm} errors out the affected
    VM sockets. Idempotent. *)

val retire : t -> unit
(** Graceful removal (scale-down after a completed drain): deregister from
    CoreEngine without the crash semantics. Marks the NSM {!failed} so the
    control plane stops considering it. *)

val failed : t -> bool
(** True once {!fail} or {!retire} ran. *)

val stack_stats : t -> Tcpstack.Stack.stats list
(** Per-TCP-stack (or per-shard) statistics; empty for non-TCP NSMs. *)

val proto : t -> string
(** Transport protocol id this NSM serves ("tcp", "homa", "shm") — what
    the control plane reports on a live protocol handover. *)

val servicelib_stats : t -> Servicelib.stats option

val busy_cycles : t -> float
(** Total CPU cycles consumed by the NSM's cores. *)
