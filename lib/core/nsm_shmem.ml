module Cpu = Sim.Cpu
module Engine = Sim.Engine
module Types = Tcpstack.Types
module Ring = Nkutil.Spsc_ring

type vm_ctx = { vm_id : int; hugepages : Hugepages.t; mutable next_gid : int }

type pending = { extent : Hugepages.extent; synthetic : bool; pd_span : int }

type endpoint = {
  ep_vm : vm_ctx;
  ep_gid : int;
  mutable nsm_qset : int;
  mutable vm_qset : int;
  mutable peer : endpoint option;
  outbox : pending Queue.t; (* sent extents awaiting peer credit *)
  mutable credit_used : int; (* bytes delivered to this endpoint's VM *)
  mutable bound : Addr.t option;
  mutable closed : bool;
  mutable eof_sent : bool; (* we told this endpoint's VM about peer close *)
}

type listener = { l_vm : vm_ctx; l_gid : int; l_ep : endpoint }

module Endpoint_table = Hashtbl.Make (struct
  type t = Addr.t

  let equal = Addr.equal
  let hash = Addr.hash
end)

type qset_state = {
  mutable scheduled : bool;
  (* Reusable burst buffer for [process_qset]; per queue set because the
     dispatch loop runs deferred behind [Cpu.exec]. *)
  scratch : bytes array;
}

type stats = { bytes_copied : int; conns : int }

(* Live registry-backed counters; [stats] snapshots them. *)
type counters = {
  c_bytes_copied : Nkmon.Registry.counter;
  c_conns : Nkmon.Registry.counter;
}

type t = {
  engine : Engine.t;
  device : Nk_device.t;
  cores : Cpu.Set.t;
  costs : Nk_costs.t;
  copy_cost : float;
  vms : (int, vm_ctx) Hashtbl.t;
  socks : (int * int, endpoint) Hashtbl.t; (* (vm_id, gid) -> endpoint *)
  listeners : listener Endpoint_table.t;
  qstates : qset_state array;
  spans : Nkspan.t;
  instance : string;
  ctr : counters;
}

let stats t =
  let module R = Nkmon.Registry in
  {
    bytes_copied = R.counter_value t.ctr.c_bytes_copied;
    conns = R.counter_value t.ctr.c_conns;
  }

let register_vm t ~vm_id ~hugepages ~ips =
  ignore ips;
  Hashtbl.replace t.vms vm_id { vm_id; hugepages; next_gid = 1 }

let deregister_vm t ~vm_id = Hashtbl.remove t.vms vm_id

(* ---- replies ------------------------------------------------------------- *)

let post t (ep : endpoint) op ?op_data ?data_ptr ?size ?synthetic ?span () =
  Cpu.charge (Cpu.Set.core t.cores ep.nsm_qset) ~cycles:t.costs.Nk_costs.nqe_encode;
  let queue =
    match op with Nqe.Ev_accept | Nqe.Ev_data | Nqe.Ev_eof -> `Receive | _ -> `Completion
  in
  Nk_device.post t.device ~qset:ep.nsm_qset queue
    (Nqe.encode
       (Nqe.make ~op ~vm_id:ep.ep_vm.vm_id ~qset:ep.vm_qset ~sock:ep.ep_gid ?op_data
          ?data_ptr ?size ?synthetic ?span ()))

let post_result t ep op err =
  post t ep op ~op_data:(match err with None -> Nqe.ok_code | Some e -> Nqe.err_code e) ()

(* ---- data movement --------------------------------------------------------- *)

(* Move queued chunks from [src]'s outbox into [dst]'s VM while credit and
   hugepage space allow. *)
let rec drain t (src : endpoint) (dst : endpoint) =
  match Queue.peek_opt src.outbox with
  | None ->
      if src.closed && not dst.eof_sent then begin
        dst.eof_sent <- true;
        if not dst.closed then post t dst Nqe.Ev_eof ()
      end
  | Some p ->
      if dst.closed then begin
        (* Peer is gone: return the extents to the sender. *)
        ignore (Queue.pop src.outbox);
        post t src Nqe.Comp_send ~data_ptr:p.extent.Hugepages.offset
          ~size:p.extent.Hugepages.len ~span:p.pd_span ();
        Nkspan.end_stage t.spans ~id:p.pd_span "servicelib";
        drain t src dst
      end
      else begin
        let len = p.extent.Hugepages.len in
        if dst.credit_used + len > t.costs.Nk_costs.nsm_rwnd then ()
        else
          match Hugepages.alloc dst.ep_vm.hugepages len with
          | None ->
              ignore
                (Engine.schedule t.engine ~delay:50e-6 (fun () -> drain t src dst))
          | Some dst_extent ->
              ignore (Queue.pop src.outbox);
              if not p.synthetic then
                Hugepages.blit_between ~src:src.ep_vm.hugepages ~src_extent:p.extent
                  ~dst:dst.ep_vm.hugepages ~dst_extent ~len;
              Cpu.charge
                (Cpu.Set.core t.cores dst.nsm_qset)
                ~cycles:(float_of_int len *. t.copy_cost);
              Nkmon.Registry.add t.ctr.c_bytes_copied len;
              dst.credit_used <- dst.credit_used + len;
              post t dst Nqe.Ev_data ~data_ptr:dst_extent.Hugepages.offset ~size:len
                ~synthetic:p.synthetic ();
              post t src Nqe.Comp_send ~data_ptr:p.extent.Hugepages.offset ~size:len
                ~span:p.pd_span ();
              Nkspan.end_stage t.spans ~id:p.pd_span "servicelib";
              drain t src dst
      end

(* ---- NQE dispatch ------------------------------------------------------------ *)

let fresh_endpoint vm ~gid ~nsm_qset ~vm_qset =
  {
    ep_vm = vm;
    ep_gid = gid;
    nsm_qset;
    vm_qset;
    peer = None;
    outbox = Queue.create ();
    credit_used = 0;
    bound = None;
    closed = false;
    eof_sent = false;
  }

let lookup_or_create t vm (nqe : Nqe.t) ~qset_idx =
  let key = (vm.vm_id, nqe.Nqe.sock) in
  match Hashtbl.find_opt t.socks key with
  | Some ep ->
      ep.vm_qset <- nqe.Nqe.qset;
      Some ep
  | None ->
      if nqe.Nqe.op = Nqe.Socket then begin
        let ep = fresh_endpoint vm ~gid:nqe.Nqe.sock ~nsm_qset:qset_idx ~vm_qset:nqe.Nqe.qset in
        Hashtbl.replace t.socks key ep;
        Some ep
      end
      else None

let apply t ~qset_idx (nqe : Nqe.t) =
  match Hashtbl.find_opt t.vms nqe.Nqe.vm_id with
  | None -> ()
  | Some vm -> (
      match lookup_or_create t vm nqe ~qset_idx with
      | None -> ()
      | Some ep -> (
          match nqe.Nqe.op with
          | Nqe.Socket -> post_result t ep Nqe.Comp_socket None
          | Nqe.Bind ->
              ep.bound <- Some (Nqe.unpack_addr nqe.Nqe.op_data);
              post_result t ep Nqe.Comp_bind None
          | Nqe.Listen -> (
              match ep.bound with
              | None -> post_result t ep Nqe.Comp_listen (Some Types.Einval)
              | Some addr ->
                  Endpoint_table.replace t.listeners addr
                    { l_vm = vm; l_gid = ep.ep_gid; l_ep = ep };
                  post_result t ep Nqe.Comp_listen None)
          | Nqe.Connect -> (
              let dst = Nqe.unpack_addr nqe.Nqe.op_data in
              match Endpoint_table.find_opt t.listeners dst with
              | None -> post_result t ep Nqe.Comp_connect (Some Types.Econnrefused)
              | Some l ->
                  let sgid =
                    Nqe.nsm_sock_bit
                    lor (Nk_device.id t.device lsl 22)
                    lor (l.l_vm.next_gid land 0x3FFFFF)
                  in
                  l.l_vm.next_gid <- l.l_vm.next_gid + 1;
                  let server =
                    fresh_endpoint l.l_vm ~gid:sgid
                      ~nsm_qset:(sgid * 2654435761 land max_int mod Cpu.Set.n t.cores)
                      ~vm_qset:Nqe.qset_unassigned
                  in
                  Hashtbl.replace t.socks (l.l_vm.vm_id, sgid) server;
                  ep.peer <- Some server;
                  server.peer <- Some ep;
                  Nkmon.Registry.incr t.ctr.c_conns;
                  (* Announce the connection to the listener's VM. *)
                  Cpu.charge
                    (Cpu.Set.core t.cores server.nsm_qset)
                    ~cycles:t.costs.Nk_costs.nqe_encode;
                  Nk_device.post t.device ~qset:server.nsm_qset `Receive
                    (Nqe.encode
                       (Nqe.make ~op:Nqe.Ev_accept ~vm_id:l.l_vm.vm_id
                          ~qset:Nqe.qset_unassigned ~sock:l.l_gid
                          ~op_data:
                            (Nqe.pack_addr
                               (match ep.bound with
                               | Some a -> a
                               | None -> Addr.make vm.vm_id 0))
                          ~size:sgid ()));
                  post_result t ep Nqe.Comp_connect None)
          | Nqe.Send -> (
              Queue.add
                {
                  extent = { Hugepages.offset = nqe.Nqe.data_ptr; len = nqe.Nqe.size };
                  synthetic = nqe.Nqe.synthetic;
                  pd_span = nqe.Nqe.span;
                }
                ep.outbox;
              match ep.peer with Some peer -> drain t ep peer | None -> ())
          | Nqe.Recv_done -> (
              ep.credit_used <- Int.max 0 (ep.credit_used - nqe.Nqe.size);
              match ep.peer with Some peer -> drain t peer ep | None -> ())
          | Nqe.Close ->
              ep.closed <- true;
              (match ep.bound with
              | Some addr -> (
                  match Endpoint_table.find_opt t.listeners addr with
                  | Some l when l.l_gid = ep.ep_gid -> Endpoint_table.remove t.listeners addr
                  | Some _ | None -> ())
              | None -> ());
              (match ep.peer with
              | Some peer ->
                  drain t ep peer;
                  (* Anything the peer still owes us can be dropped. *)
                  Queue.iter
                    (fun p ->
                      post t peer Nqe.Comp_send ~data_ptr:p.extent.Hugepages.offset
                        ~size:p.extent.Hugepages.len ~span:p.pd_span ();
                      Nkspan.end_stage t.spans ~id:p.pd_span "servicelib")
                    peer.outbox;
                  Queue.clear peer.outbox
              | None -> ());
              post_result t ep Nqe.Comp_close None;
              Hashtbl.remove t.socks (vm.vm_id, ep.ep_gid)
          | Nqe.Comp_socket | Nqe.Comp_bind | Nqe.Comp_listen | Nqe.Comp_connect
          | Nqe.Comp_send | Nqe.Comp_close | Nqe.Ev_accept | Nqe.Ev_data | Nqe.Ev_eof
          | Nqe.Ev_err ->
              ()))

(* ---- polling ------------------------------------------------------------------ *)

let rec process_qset t qi =
  let s = Nk_device.qset t.device qi in
  let qs = t.qstates.(qi) in
  (* One burst of at most 64 NQEs across the job + send pair (jobs first),
     drained into the per-qset scratch buffer in ring order. *)
  let n = Queue_set.drain_into s ~toward:`Nsm qs.scratch ~budget:64 ~shared:true in
  if n = 0 then qs.scheduled <- false
  else begin
    if Nkspan.enabled t.spans then
      for i = 0 to n - 1 do
        let span = Nqe.span_of_raw qs.scratch.(i) in
        Nkspan.end_stage t.spans ~id:span "ring";
        Nkspan.begin_stage t.spans ~id:span ~component:t.instance "servicelib"
      done;
    let cycles =
      t.costs.Nk_costs.service_poll +. (float_of_int n *. t.costs.Nk_costs.nqe_decode)
    in
    Nkspan.frame t.spans ~component:t.instance ~stage:"dispatch" (fun () ->
        Cpu.exec (Cpu.Set.core t.cores qi) ~cycles (fun () ->
            for i = 0 to n - 1 do
              (* Endpoint apply needs the whole record. nklint: decode-ok *)
              match Nqe.decode qs.scratch.(i) with
              | Error _ -> ()
              | Ok nqe -> apply t ~qset_idx:qi nqe
            done;
            process_qset t qi))
  end

let on_kick t qi =
  let qs = t.qstates.(qi) in
  if not qs.scheduled then begin
    qs.scheduled <- true;
    process_qset t qi
  end

let create ~engine ~device ~cores ~costs ?(copy_cycles_per_byte = 0.3) ?(mon = Nkmon.null ())
    ?(spans = Nkspan.null ()) () =
  let instance = Printf.sprintf "nsm%d" (Nk_device.id device) in
  let c name = Nkmon.counter mon ~component:"nsm_shmem" ~instance ~name in
  let t =
    {
      engine;
      device;
      cores;
      costs;
      copy_cost = copy_cycles_per_byte;
      vms = Hashtbl.create 8;
      socks = Hashtbl.create 256;
      listeners = Endpoint_table.create 16;
      qstates =
        Array.init (Nk_device.n_qsets device) (fun _ ->
            { scheduled = false; scratch = Array.make 64 Bytes.empty });
      spans;
      instance;
      ctr = { c_bytes_copied = c "bytes_copied"; c_conns = c "conns" };
    }
  in
  Nk_device.set_kick_owner device (fun qi -> on_kick t qi);
  t
