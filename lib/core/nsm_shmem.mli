(** Shared-memory NSM (paper §6.4).

    Serves colocated VMs of the same user: instead of running a TCP stack,
    it moves message chunks directly between the two VMs' hugepage regions
    and bypasses transport processing entirely. Connection semantics
    (connect/accept/EOF/close) are preserved at NQE level, and the same
    per-connection receive credit provides flow control. *)

type t

val create :
  engine:Sim.Engine.t ->
  device:Nk_device.t ->
  cores:Sim.Cpu.Set.t ->
  costs:Nk_costs.t ->
  ?copy_cycles_per_byte:float ->
  ?mon:Nkmon.t ->
  ?spans:Nkspan.t ->
  unit ->
  t
(** [copy_cycles_per_byte] is the cross-region memcpy cost (default 0.3,
    calibrated so a 2-core shared-memory NSM sustains ~100 Gb/s as in the
    paper's Fig 10). [spans] records the servicelib stage of sampled
    requests (there is no stack stage on the shared-memory path). *)

val register_vm : t -> vm_id:int -> hugepages:Hugepages.t -> ips:Addr.ip list -> unit
(** The VM's IPs become resolvable for colocated connects. *)

val deregister_vm : t -> vm_id:int -> unit

type stats = { bytes_copied : int; conns : int }

val stats : t -> stats
(** Immutable snapshot of the registry-backed [nsm_shmem/nsm<id>/...]
    counters. *)
