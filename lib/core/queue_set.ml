type queue = bytes Nkutil.Spsc_ring.t

type t = {
  job : queue;
  completion : queue;
  send : queue;
  receive : queue;
}

let create ?(capacity = 8192) () =
  {
    job = Nkutil.Spsc_ring.create ~capacity;
    completion = Nkutil.Spsc_ring.create ~capacity;
    send = Nkutil.Spsc_ring.create ~capacity;
    receive = Nkutil.Spsc_ring.create ~capacity;
  }

let queue_name = function
  | `Job -> "job"
  | `Completion -> "completion"
  | `Send -> "send"
  | `Receive -> "receive"

let total_queued t =
  Nkutil.Spsc_ring.length t.job
  + Nkutil.Spsc_ring.length t.completion
  + Nkutil.Spsc_ring.length t.send
  + Nkutil.Spsc_ring.length t.receive

let depths t =
  ( Nkutil.Spsc_ring.length t.job,
    Nkutil.Spsc_ring.length t.completion,
    Nkutil.Spsc_ring.length t.send,
    Nkutil.Spsc_ring.length t.receive )
