type queue = bytes Nkutil.Spsc_ring.t

type t = {
  job : queue;
  completion : queue;
  send : queue;
  receive : queue;
}

let create ?(capacity = 8192) () =
  {
    job = Nkutil.Spsc_ring.create ~capacity;
    completion = Nkutil.Spsc_ring.create ~capacity;
    send = Nkutil.Spsc_ring.create ~capacity;
    receive = Nkutil.Spsc_ring.create ~capacity;
  }

let queue_name = function
  | `Job -> "job"
  | `Completion -> "completion"
  | `Send -> "send"
  | `Receive -> "receive"

let drain_into t ~toward buf ~budget ~shared =
  let r1, r2 =
    match toward with `Vm -> (t.completion, t.receive) | `Nsm -> (t.job, t.send)
  in
  let n1 = Nkutil.Spsc_ring.pop_slice r1 buf ~pos:0 ~max:budget in
  let b2 = if shared then budget - n1 else budget in
  n1 + Nkutil.Spsc_ring.pop_slice r2 buf ~pos:n1 ~max:b2

let total_queued t =
  Nkutil.Spsc_ring.length t.job
  + Nkutil.Spsc_ring.length t.completion
  + Nkutil.Spsc_ring.length t.send
  + Nkutil.Spsc_ring.length t.receive

let depths t =
  ( Nkutil.Spsc_ring.length t.job,
    Nkutil.Spsc_ring.length t.completion,
    Nkutil.Spsc_ring.length t.send,
    Nkutil.Spsc_ring.length t.receive )
