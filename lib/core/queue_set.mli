(** One queue set of an NK device (paper §4.2).

    Four independent single-producer/single-consumer rings of encoded NQEs:
    {e job} for control operations from the VM, {e completion} for their
    results, {e send} for data-carrying operations, and {e receive} for
    events of newly received data. Each ring is shared memory with the
    CoreEngine, which is what keeps them lockless. *)

type queue = bytes Nkutil.Spsc_ring.t

type t = {
  job : queue;
  completion : queue;
  send : queue;
  receive : queue;
}

val create : ?capacity:int -> unit -> t
(** [capacity] per ring, default 8192. *)

val queue_name : [ `Job | `Completion | `Send | `Receive ] -> string
(** Canonical lowercase ring name, used by Nkmon labels and Nkspan ring-stage
    component tags. *)

val drain_into :
  t -> toward:[ `Vm | `Nsm ] -> bytes array -> budget:int -> shared:bool -> int
(** Burst-drain the pair of rings flowing toward one side into a reusable
    scratch buffer, returning how many records were written from index 0:
    completion then receive for [`Vm] (GuestLib's inbound pair), job then
    send for [`Nsm]. Ring pop order is preserved, first ring's records
    first. [budget] bounds the first ring's take; with [shared:true] the
    second ring gets the remainder ([budget - n1], one burst across the
    pair), with [shared:false] it gets its own full [budget]. The buffer
    must hold [budget] ([shared]) or [2 * budget] records. *)

val total_queued : t -> int

val depths : t -> int * int * int * int
(** Current [(job, completion, send, receive)] ring occupancies, for
    Nkmon queue-depth gauges. *)
