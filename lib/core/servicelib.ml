module Cpu = Sim.Cpu
module Engine = Sim.Engine
module Types = Tcpstack.Types
module Stack_ops = Tcpstack.Stack_ops
module Ring = Nkutil.Spsc_ring

type pending_send = {
  extent : Hugepages.extent;
  mutable off : int;
  p_synthetic : bool;
  p_span : int; (* span id echoed on the eventual Comp_send *)
}

type vm_ctx = {
  vm_id : int;
  hugepages : Hugepages.t;
  socks : (int, ssock) Hashtbl.t;
  mutable next_gid : int;
}

and ssock = {
  gid : int;
  vm : vm_ctx;
  mutable conn : Stack_ops.conn option;
  mutable listener : Stack_ops.listener option;
  mutable bound : Addr.t option;
  mutable vm_qset : int; (* VM-side queue set echoed in replies *)
  mutable nsm_qset : int; (* NSM-side queue set this sock is pinned to *)
  sendq : pending_send Queue.t;
  mutable send_pumping : bool;
  mutable recv_credit_used : int;
  mutable recv_pumping : bool;
  mutable closing : bool;
  mutable closed : bool;
  mutable eof_sent : bool;
  mutable err_sent : bool;
}

type qset_state = {
  mutable scheduled : bool;
  (* Reusable burst buffer for [process_qset]; per queue set because the
     dispatch loop runs deferred behind [Cpu.exec]. *)
  scratch : bytes array;
}

type stats = {
  nqes_rx : int;
  nqes_tx : int;
  bytes_to_stack : int;
  bytes_to_vm : int;
}

(* Live registry-backed counters; [stats] snapshots them. *)
type counters = {
  c_nqes_rx : Nkmon.Registry.counter;
  c_nqes_tx : Nkmon.Registry.counter;
  c_bytes_to_stack : Nkmon.Registry.counter;
  c_bytes_to_vm : Nkmon.Registry.counter;
}

type t = {
  engine : Engine.t;
  device : Nk_device.t;
  ops : Stack_ops.t;
  cores : Cpu.Set.t;
  costs : Nk_costs.t;
  pressure : Sim.Pressure.t;
  vms : (int, vm_ctx) Hashtbl.t;
  vm_forwarders : (int, Nqe.t -> unit) Hashtbl.t;
      (* per-VM hooks for NQEs that were drained before the VM migrated
         away but applied after; they ship to the destination NSM *)
  qstates : qset_state array;
  mon : Nkmon.t;
  spans : Nkspan.t;
  instance : string;
  ctr : counters;
  mutable dead : bool; (* crashed: no NQEs in or out, ever again *)
}

let stats t =
  let module R = Nkmon.Registry in
  {
    nqes_rx = R.counter_value t.ctr.c_nqes_rx;
    nqes_tx = R.counter_value t.ctr.c_nqes_tx;
    bytes_to_stack = R.counter_value t.ctr.c_bytes_to_stack;
    bytes_to_vm = R.counter_value t.ctr.c_bytes_to_vm;
  }

let nk_debug = Sys.getenv_opt "NKDEBUG" <> None

let dbg fmt = if nk_debug then Printf.eprintf fmt else Printf.ifprintf stderr fmt

let core_index t core =
  let cores = Cpu.Set.cores t.cores in
  let rec loop i = if i >= Array.length cores then 0 else if cores.(i) == core then i else loop (i + 1) in
  loop 0

(* ---- NQE replies --------------------------------------------------------- *)

let post t (ss : ssock) op ?op_data ?data_ptr ?size ?synthetic ?span () =
  if not t.dead then begin
    Nkmon.Registry.incr t.ctr.c_nqes_tx;
    Cpu.charge (Cpu.Set.core t.cores ss.nsm_qset) ~cycles:t.costs.Nk_costs.nqe_encode;
    let queue =
      match op with Nqe.Ev_accept | Nqe.Ev_data | Nqe.Ev_eof -> `Receive | _ -> `Completion
    in
    Nk_device.post t.device ~qset:ss.nsm_qset queue
      (Nqe.encode
         (Nqe.make ~op ~vm_id:ss.vm.vm_id ~qset:ss.vm_qset ~sock:ss.gid ?op_data ?data_ptr
            ?size ?synthetic ?span ()))
  end

let post_result t ss op err =
  let op_data = match err with None -> Nqe.ok_code | Some e -> Nqe.err_code e in
  post t ss op ~op_data ()

(* ---- send path ------------------------------------------------------------ *)

let rec pump_send t ss =
  match ss.conn with
  | None -> ()
  | Some conn ->
      if not ss.send_pumping then begin
        ss.send_pumping <- true;
        (* ServiceLib busy-polls its queues (paper §4.5); picking up send
           work costs a poll iteration, not a kernel epoll wake. *)
        Cpu.charge (t.ops.Stack_ops.conn_core conn) ~cycles:t.costs.Nk_costs.service_poll;
        let rec go () =
          match Queue.peek_opt ss.sendq with
          | None ->
              ss.send_pumping <- false;
              if ss.closing then finish_close t ss
          | Some p ->
              let len = p.extent.Hugepages.len - p.off in
              let payload =
                if p.p_synthetic then Types.Zeros len
                else
                  Hugepages.read_payload ss.vm.hugepages p.extent ~pos:p.off ~len
                    ~synthetic:false
              in
              (* The request crosses into the TCP stack here. Eagain leaves
                 the stack stage open, so time blocked on the send buffer
                 accrues to the stack, not ServiceLib. *)
              Nkspan.end_stage t.spans ~id:p.p_span "servicelib";
              Nkspan.begin_stage t.spans ~id:p.p_span ~component:t.instance "stack";
              t.ops.Stack_ops.send conn payload ~k:(fun r ->
                  match r with
                  | Ok n ->
                      Nkspan.end_stage t.spans ~id:p.p_span "stack";
                      Nkspan.begin_stage t.spans ~id:p.p_span ~component:t.instance
                        "servicelib";
                      (* The "extra copy" from hugepages into the NSM stack
                         (paper Table 6), charged with memory pressure. *)
                      Cpu.charge
                        (t.ops.Stack_ops.conn_core conn)
                        ~cycles:(Nk_costs.hugepage_copy_cycles t.costs t.pressure n);
                      Nkmon.Registry.add t.ctr.c_bytes_to_stack n;
                      p.off <- p.off + n;
                      if p.off >= p.extent.Hugepages.len then begin
                        ignore (Queue.pop ss.sendq);
                        post t ss Nqe.Comp_send ~data_ptr:p.extent.Hugepages.offset
                          ~size:p.extent.Hugepages.len ~span:p.p_span ();
                        Nkspan.end_stage t.spans ~id:p.p_span "servicelib"
                      end;
                      go ()
                  | Error Types.Eagain -> ss.send_pumping <- false
                  | Error _ ->
                      ss.send_pumping <- false;
                      flush_sendq t ss)
        in
        go ()
      end

(* Return all queued send extents to the VM (connection died). *)
and flush_sendq t ss =
  let rec loop () =
    match Queue.pop ss.sendq with
    | exception Queue.Empty -> ()
    | p ->
        post t ss Nqe.Comp_send ~data_ptr:p.extent.Hugepages.offset
          ~size:p.extent.Hugepages.len ~span:p.p_span ();
        loop ()
  in
  loop ()

and finish_close t ss =
  if not ss.closed then begin
    ss.closed <- true;
    (match ss.conn with Some conn -> t.ops.Stack_ops.close_conn conn | None -> ());
    (match ss.listener with Some l -> t.ops.Stack_ops.close_listener l | None -> ());
    post_result t ss Nqe.Comp_close None;
    Hashtbl.remove ss.vm.socks ss.gid
  end

(* ---- receive path ---------------------------------------------------------- *)

let rec pump_recv t ss =
  match ss.conn with
  | None -> ()
  | Some conn ->
      if (not ss.recv_pumping) && (not ss.closing) && not ss.closed then begin
        ss.recv_pumping <- true;
        Cpu.charge (t.ops.Stack_ops.conn_core conn)
          ~cycles:t.ops.Stack_ops.wake_cycles;
        let rec go () =
          let credit = t.costs.Nk_costs.nsm_rwnd - ss.recv_credit_used in
          if credit <= 0 then begin
            dbg "[%.4f] slib: gid=%x credit exhausted\n" (Engine.now t.engine) ss.gid;
            ss.recv_pumping <- false
          end
          else begin
            let max = Int.min 65536 credit in
            match Hugepages.alloc ss.vm.hugepages max with
            | None ->
                (* Hugepage pressure: retry once the VM frees extents. *)
                ss.recv_pumping <- false;
                ignore (Engine.schedule t.engine ~delay:50e-6 (fun () -> pump_recv t ss))
            | Some extent ->
                t.ops.Stack_ops.recv conn ~max ~mode:`Auto ~k:(fun r ->
                    match r with
                    | Ok payload when Types.payload_len payload = 0 ->
                        Hugepages.free ss.vm.hugepages extent;
                        if not ss.eof_sent then begin
                          ss.eof_sent <- true;
                          post t ss Nqe.Ev_eof ()
                        end;
                        ss.recv_pumping <- false
                    | Ok payload ->
                        let n = Types.payload_len payload in
                        let synthetic =
                          match payload with Types.Zeros _ -> true | Types.Data _ -> false
                        in
                        Hugepages.write_payload ss.vm.hugepages extent payload;
                        Cpu.charge
                          (t.ops.Stack_ops.conn_core conn)
                          ~cycles:
                            (Nk_costs.hugepage_copy_cycles t.costs t.pressure n
                            +. t.costs.Nk_costs.hugepage_alloc);
                        ss.recv_credit_used <- ss.recv_credit_used + n;
                        Nkmon.Registry.add t.ctr.c_bytes_to_vm n;
                        post t ss Nqe.Ev_data ~data_ptr:extent.Hugepages.offset ~size:n
                          ~synthetic ();
                        go ()
                    | Error Types.Eagain ->
                        Hugepages.free ss.vm.hugepages extent;
                        ss.recv_pumping <- false
                    | Error e ->
                        Hugepages.free ss.vm.hugepages extent;
                        ss.recv_pumping <- false;
                        if not ss.err_sent then begin
                          ss.err_sent <- true;
                          post t ss Nqe.Ev_err ~op_data:(Nqe.err_code e) ()
                        end)
          end
        in
        go ()
      end

(* ---- connection events ------------------------------------------------------ *)

let on_conn_event t ss (ev : Types.events) =
  if (not t.dead) && not ss.closed then begin
    if ev.Types.readable then pump_recv t ss;
    if ev.Types.writable then pump_send t ss;
    if ev.Types.hup then begin
      (match ss.conn with
      | Some conn -> (
          match t.ops.Stack_ops.conn_error conn with
          | Some e ->
              if not ss.err_sent then begin
                ss.err_sent <- true;
                flush_sendq t ss;
                post t ss Nqe.Ev_err ~op_data:(Nqe.err_code e) ()
              end
          | None -> ())
      | None -> ());
      (* Remaining in-order data (before a FIN) is still pumped above. *)
      if ev.Types.readable then () else pump_recv t ss
    end
  end

let wire_conn t ss conn =
  ss.conn <- Some conn;
  ss.nsm_qset <- core_index t (t.ops.Stack_ops.conn_core conn);
  t.ops.Stack_ops.set_conn_handler conn (fun ev -> on_conn_event t ss ev);
  pump_recv t ss

(* ---- accepting ---------------------------------------------------------------- *)

let fresh_ssock vm ~gid ~qset =
  {
    gid;
    vm;
    conn = None;
    listener = None;
    bound = None;
    vm_qset = qset;
    nsm_qset = 0;
    sendq = Queue.create ();
    send_pumping = false;
    recv_credit_used = 0;
    recv_pumping = false;
    closing = false;
    closed = false;
    eof_sent = false;
    err_sent = false;
  }

let on_accept t vm (lsock : ssock) conn ~peer =
  (* NSM-allocated ids carry the NSM id so several NSMs serving one VM
     never collide (bit 30 | nsm_id | counter). *)
  let gid =
    Nqe.nsm_sock_bit
    lor (Nk_device.id t.device lsl 22)
    lor (vm.next_gid land 0x3FFFFF)
  in
  vm.next_gid <- vm.next_gid + 1;
  let ss = fresh_ssock vm ~gid ~qset:Nqe.qset_unassigned in
  Hashtbl.replace vm.socks gid ss;
  wire_conn t ss conn;
  (* Announce the pipelined accept: the VM learns the new socket id through
     the size field, the peer address through op_data. *)
  Nkmon.Registry.incr t.ctr.c_nqes_tx;
  Cpu.charge (Cpu.Set.core t.cores ss.nsm_qset) ~cycles:t.costs.Nk_costs.nqe_encode;
  Nk_device.post t.device ~qset:ss.nsm_qset `Receive
    (Nqe.encode
       (Nqe.make ~op:Nqe.Ev_accept ~vm_id:vm.vm_id ~qset:Nqe.qset_unassigned
          ~sock:lsock.gid ~op_data:(Nqe.pack_addr peer) ~size:gid ()))

(* ---- NQE dispatch ---------------------------------------------------------------- *)

let lookup_or_create t vm (nqe : Nqe.t) =
  match Hashtbl.find_opt vm.socks nqe.Nqe.sock with
  | Some ss ->
      ss.vm_qset <- nqe.Nqe.qset;
      Some ss
  | None ->
      if nqe.Nqe.op = Nqe.Socket then begin
        let ss = fresh_ssock vm ~gid:nqe.Nqe.sock ~qset:nqe.Nqe.qset in
        Hashtbl.replace vm.socks nqe.Nqe.sock ss;
        Some ss
      end
      else begin
        ignore t;
        None
      end

let apply t ~qset_idx (nqe : Nqe.t) =
  Nkmon.Registry.incr t.ctr.c_nqes_rx;
  if Nkmon.tracing t.mon then
    Nkmon.event t.mon
      (Nkmon.Trace.Nqe_deliver
         {
           component = "servicelib";
           instance = t.instance;
           qset = qset_idx;
           op = Nqe.op_to_string nqe.Nqe.op;
           vm_id = nqe.Nqe.vm_id;
           sock = nqe.Nqe.sock;
         });
  match Hashtbl.find_opt t.vms nqe.Nqe.vm_id with
  | None -> (
      (* The VM migrated away between this NQE's drain and its apply (the
         scratch window): forward it to wherever the VM's stack now lives
         instead of dropping or error-replying. *)
      match Hashtbl.find_opt t.vm_forwarders nqe.Nqe.vm_id with
      | Some forward -> forward nqe
      | None -> ())
  | Some vm -> (
      match lookup_or_create t vm nqe with
      | None -> (
          (* A socket this NSM never saw — e.g. an NQE re-routed here after
             the socket's original NSM crashed. Complete it with an error so
             the VM never waits on a reply that cannot come; the Send reply
             echoes data_ptr/size so GuestLib reclaims the payload extent. *)
          let reply op ~op_data =
            Nkmon.Registry.incr t.ctr.c_nqes_tx;
            Cpu.charge (Cpu.Set.core t.cores qset_idx) ~cycles:t.costs.Nk_costs.nqe_encode;
            Nk_device.post t.device ~qset:qset_idx `Completion
              (Nqe.encode
                 (Nqe.make ~op ~vm_id:nqe.Nqe.vm_id ~qset:nqe.Nqe.qset ~sock:nqe.Nqe.sock
                    ~op_data ~data_ptr:nqe.Nqe.data_ptr ~size:nqe.Nqe.size
                    ~span:nqe.Nqe.span ()))
          in
          match nqe.Nqe.op with
          | Nqe.Send -> reply Nqe.Comp_send ~op_data:(Nqe.err_code Types.Econnreset)
          | Nqe.Close -> reply Nqe.Comp_close ~op_data:Nqe.ok_code
          | Nqe.Connect -> reply Nqe.Comp_connect ~op_data:(Nqe.err_code Types.Econnreset)
          | _ -> ())
      | Some ss -> (
          if ss.conn = None && ss.listener = None then ss.nsm_qset <- qset_idx;
          match nqe.Nqe.op with
          | Nqe.Socket -> post_result t ss Nqe.Comp_socket None
          | Nqe.Bind ->
              ss.bound <- Some (Nqe.unpack_addr nqe.Nqe.op_data);
              post_result t ss Nqe.Comp_bind None
          | Nqe.Listen -> (
              match ss.bound with
              | None -> post_result t ss Nqe.Comp_listen (Some Types.Einval)
              | Some addr -> (
                  match
                    t.ops.Stack_ops.new_listener ~addr
                      ~backlog:(Int64.to_int nqe.Nqe.op_data)
                      ~on_accept:(fun conn ~peer -> on_accept t vm ss conn ~peer)
                  with
                  | Ok l ->
                      ss.listener <- Some l;
                      post_result t ss Nqe.Comp_listen None
                  | Error e -> post_result t ss Nqe.Comp_listen (Some e)))
          | Nqe.Connect ->
              let dst = Nqe.unpack_addr nqe.Nqe.op_data in
              t.ops.Stack_ops.connect ~dst ~k:(fun r ->
                  match r with
                  | Ok conn ->
                      if ss.closing || ss.closed then t.ops.Stack_ops.abort_conn conn
                      else begin
                        wire_conn t ss conn;
                        post_result t ss Nqe.Comp_connect None
                      end
                  | Error e -> post_result t ss Nqe.Comp_connect (Some e))
          | Nqe.Send ->
              Queue.add
                {
                  extent = { Hugepages.offset = nqe.Nqe.data_ptr; len = nqe.Nqe.size };
                  off = 0;
                  p_synthetic = nqe.Nqe.synthetic;
                  p_span = nqe.Nqe.span;
                }
                ss.sendq;
              pump_send t ss
          | Nqe.Recv_done ->
              ss.recv_credit_used <- Int.max 0 (ss.recv_credit_used - nqe.Nqe.size);
              dbg "[%.4f] slib: gid=%x recv_done %d -> used %d\n" (Engine.now t.engine)
                ss.gid nqe.Nqe.size ss.recv_credit_used;
              pump_recv t ss
          | Nqe.Close ->
              ss.closing <- true;
              if Queue.is_empty ss.sendq then finish_close t ss
          | Nqe.Comp_socket | Nqe.Comp_bind | Nqe.Comp_listen | Nqe.Comp_connect
          | Nqe.Comp_send | Nqe.Comp_close | Nqe.Ev_accept | Nqe.Ev_data | Nqe.Ev_eof
          | Nqe.Ev_err ->
              (* NSM-bound queues never carry NSM-to-VM results. *)
              ()))

(* ---- polling ------------------------------------------------------------------------ *)

let rec process_qset t qi =
  if t.dead then t.qstates.(qi).scheduled <- false
  else process_qset_live t qi

and process_qset_live t qi =
  let s = Nk_device.qset t.device qi in
  let qs = t.qstates.(qi) in
  (* One burst of at most 64 NQEs across the job + send pair (jobs first),
     drained into the per-qset scratch buffer in ring order. *)
  let n = Queue_set.drain_into s ~toward:`Nsm qs.scratch ~budget:64 ~shared:true in
  if n = 0 then qs.scheduled <- false
  else begin
    (* Traced sends leave the NSM-side ring here: poll + decode + core
       queueing accrue to the servicelib stage (only Send NQEs carry a
       span id). *)
    if Nkspan.enabled t.spans then
      for i = 0 to n - 1 do
        let span = Nqe.span_of_raw qs.scratch.(i) in
        Nkspan.end_stage t.spans ~id:span "ring";
        Nkspan.begin_stage t.spans ~id:span ~component:t.instance "servicelib"
      done;
    let cycles =
      t.costs.Nk_costs.service_poll +. (float_of_int n *. t.costs.Nk_costs.nqe_decode)
    in
    Nkspan.frame t.spans ~component:t.instance ~stage:"dispatch" (fun () ->
        Cpu.exec (Cpu.Set.core t.cores qi) ~cycles (fun () ->
            for i = 0 to n - 1 do
              (* Endpoint apply needs the whole record. nklint: decode-ok *)
              match Nqe.decode qs.scratch.(i) with
              | Error _ -> ()
              | Ok nqe -> apply t ~qset_idx:qi nqe
            done;
            process_qset t qi))
  end

let on_kick t qi =
  let qs = t.qstates.(qi) in
  if not qs.scheduled then begin
    qs.scheduled <- true;
    process_qset t qi
  end

(* ---- construction -------------------------------------------------------------------- *)

let create ~engine ~device ~ops ~cores ~costs ~pressure ?(mon = Nkmon.null ())
    ?(spans = Nkspan.null ()) () =
  let instance = Printf.sprintf "nsm%d" (Nk_device.id device) in
  let c name = Nkmon.counter mon ~component:"servicelib" ~instance ~name in
  let t =
    {
      engine;
      device;
      ops;
      cores;
      costs;
      pressure;
      vms = Hashtbl.create 8;
      vm_forwarders = Hashtbl.create 4;
      qstates =
        Array.init (Nk_device.n_qsets device) (fun _ ->
            { scheduled = false; scratch = Array.make 64 Bytes.empty });
      mon;
      spans;
      instance;
      dead = false;
      ctr =
        {
          c_nqes_rx = c "nqes_rx";
          c_nqes_tx = c "nqes_tx";
          c_bytes_to_stack = c "bytes_to_stack";
          c_bytes_to_vm = c "bytes_to_vm";
        };
    }
  in
  Nk_device.set_kick_owner device (fun qi -> on_kick t qi);
  t

let register_vm t ~vm_id ~hugepages ~ips =
  (* Idempotent: re-registering (e.g. a control-plane re-attach) must not
     wipe the VM's live sockets. *)
  if not (Hashtbl.mem t.vms vm_id) then
    Hashtbl.replace t.vms vm_id
      { vm_id; hugepages; socks = Hashtbl.create 256; next_gid = 1 };
  List.iter t.ops.Stack_ops.add_ip ips

(* Disown IPs whose VM migrated away: in-flight segments for its flows must
   fall through to the vswitch's silent drop rather than draw an RST from
   this stack at the peer (which would reset the very connections the
   migration preserved). *)
let release_ips t ips = List.iter t.ops.Stack_ops.remove_ip ips

let close_vm_listeners t ~vm_id =
  match Hashtbl.find_opt t.vms vm_id with
  | None -> ()
  | Some vm ->
      let listeners =
        Nkutil.Det_tbl.fold ~cmp:Int.compare
          (fun gid ss acc ->
            match ss.listener with Some l -> (gid, ss, l) :: acc | None -> acc)
          vm.socks []
      in
      List.iter
        (fun (gid, ss, l) ->
          (* Silent close: the listener is moving to another NSM, the VM's
             socket stays listening. Established connections accepted here
             keep running — only the endpoint registration is released. *)
          t.ops.Stack_ops.close_listener l;
          ss.listener <- None;
          ss.closed <- true;
          Hashtbl.remove vm.socks gid)
        listeners

(* Migration quiesce: stop the VM's listeners from admitting fresh
   connections while in-flight handshakes finish and queued accepts drain,
   so the cut moments later finds nothing half-done to abort. Peers retry
   per their protocol's own recovery and land on the post-cut owner. *)
let quiesce_vm_listeners t ~vm_id =
  match Hashtbl.find_opt t.vms vm_id with
  | None -> ()
  | Some vm ->
      Nkutil.Det_tbl.iter ~cmp:Int.compare
        (fun _ ss ->
          match ss.listener with
          | Some l -> t.ops.Stack_ops.quiesce_listener l
          | None -> ())
        vm.socks

let fail t =
  if not t.dead then begin
    t.dead <- true;
    (* Kill the stack state under every VM's sockets: aborts send RSTs so
       remote peers observe resets, exactly like a crashed middlebox. *)
    (* Abort order is externally visible (RSTs on the wire), so walk VMs
       and sockets in id order. *)
    Nkutil.Det_tbl.iter ~cmp:Int.compare
      (fun _ vm ->
        Nkutil.Det_tbl.iter ~cmp:Int.compare
          (fun _ ss ->
            (match ss.conn with
            | Some conn -> t.ops.Stack_ops.abort_conn conn
            | None -> ());
            match ss.listener with
            | Some l -> t.ops.Stack_ops.close_listener l
            | None -> ())
          vm.socks)
      t.vms;
    Hashtbl.reset t.vms
  end

let deregister_vm t ~vm_id =
  match Hashtbl.find_opt t.vms vm_id with
  | None -> ()
  | Some vm ->
      Nkutil.Det_tbl.iter ~cmp:Int.compare
        (fun _ ss ->
          (match ss.conn with Some conn -> t.ops.Stack_ops.abort_conn conn | None -> ());
          match ss.listener with
          | Some l -> t.ops.Stack_ops.close_listener l
          | None -> ())
        vm.socks;
      Hashtbl.remove t.vms vm_id

(* ---- VM export/import (live NSM migration) ------------------------------ *)

type pending_export = {
  x_offset : int;
  x_len : int;
  x_off : int;
  x_synthetic : bool;
  x_span : int;
}

type sock_export = {
  x_gid : int;
  x_vm_qset : int;
  x_bound : Addr.t option;
  x_recv_credit_used : int;
  x_sendq : pending_export list;
  x_closing : bool;
  x_eof_sent : bool;
  x_err_sent : bool;
  x_conn : Stack_ops.export option;
}

type vm_export = { x_vm_id : int; x_next_gid : int; x_socks : sock_export list }

let set_vm_forwarder t ~vm_id forward = Hashtbl.replace t.vm_forwarders vm_id forward

let clear_vm_forwarder t ~vm_id = Hashtbl.remove t.vm_forwarders vm_id

let export_vm t ~vm_id =
  match Hashtbl.find_opt t.vms vm_id with
  | None -> None
  | Some vm ->
      let socks =
        Nkutil.Det_tbl.fold ~cmp:Int.compare
          (fun gid ss acc ->
            if ss.closed then acc
            else
              match ss.listener with
              | Some l ->
                  (* Listeners are not serialized: the migration protocol
                     replays the VM's Socket/Bind/Listen sequence at the
                     destination ({!Guestlib.remigrate_listeners}), which
                     re-creates them there with fresh accept plumbing. *)
                  t.ops.Stack_ops.close_listener l;
                  ss.listener <- None;
                  ss.closed <- true;
                  acc
              | None -> (
                  let finish x_conn =
                    let was_eof = ss.eof_sent and was_err = ss.err_sent in
                    let sendq =
                      List.rev
                        (Queue.fold
                           (fun acc (p : pending_send) ->
                             {
                               x_offset = p.extent.Hugepages.offset;
                               x_len = p.extent.Hugepages.len;
                               x_off = p.off;
                               x_synthetic = p.p_synthetic;
                               x_span = p.p_span;
                             }
                             :: acc)
                           [] ss.sendq)
                    in
                    Queue.clear ss.sendq;
                    (* Gag the husk: callbacks already in flight (deferred
                       behind [Cpu.exec]) find a closed sock and post
                       nothing. *)
                    ss.closed <- true;
                    ss.eof_sent <- true;
                    ss.err_sent <- true;
                    {
                      x_gid = gid;
                      x_vm_qset = ss.vm_qset;
                      x_bound = ss.bound;
                      x_recv_credit_used = ss.recv_credit_used;
                      x_sendq = sendq;
                      x_closing = ss.closing;
                      x_eof_sent = was_eof;
                      x_err_sent = was_err;
                      x_conn;
                    }
                    :: acc
                  in
                  match ss.conn with
                  | None -> finish None
                  | Some conn -> (
                      match t.ops.Stack_ops.export_conn conn with
                      | Ok ex -> finish (Some ex)
                      | Error _ ->
                          (* Connection already dead on the stack side; its
                             error event was delivered (or never will be).
                             Nothing to move. *)
                          ss.closed <- true;
                          acc)))
          vm.socks []
      in
      let x = { x_vm_id = vm_id; x_next_gid = vm.next_gid; x_socks = List.rev socks } in
      Hashtbl.remove t.vms vm_id;
      Some x

let import_vm t (x : vm_export) ~hugepages ~ips =
  register_vm t ~vm_id:x.x_vm_id ~hugepages ~ips;
  match Hashtbl.find_opt t.vms x.x_vm_id with
  | None -> ()
  | Some vm ->
      vm.next_gid <- Int.max vm.next_gid x.x_next_gid;
      List.iter
        (fun sx ->
          let ss = fresh_ssock vm ~gid:sx.x_gid ~qset:sx.x_vm_qset in
          ss.bound <- sx.x_bound;
          ss.recv_credit_used <- sx.x_recv_credit_used;
          ss.closing <- sx.x_closing;
          ss.eof_sent <- sx.x_eof_sent;
          ss.err_sent <- sx.x_err_sent;
          List.iter
            (fun p ->
              Queue.add
                {
                  extent = { Hugepages.offset = p.x_offset; len = p.x_len };
                  off = p.x_off;
                  p_synthetic = p.x_synthetic;
                  p_span = p.x_span;
                }
                ss.sendq)
            sx.x_sendq;
          Hashtbl.replace vm.socks sx.x_gid ss;
          match sx.x_conn with
          | None -> ()
          | Some ex -> (
              match t.ops.Stack_ops.import_conn ex with
              | Ok conn ->
                  wire_conn t ss conn;
                  if not (Queue.is_empty ss.sendq) then pump_send t ss
              | Error e ->
                  (* The peer vanished while the snapshot was in flight:
                     surface it exactly like a reset on an owned conn. *)
                  if not ss.err_sent then begin
                    ss.err_sent <- true;
                    post t ss Nqe.Ev_err ~op_data:(Nqe.err_code e) ()
                  end))
        x.x_socks
