(** ServiceLib: the NSM-side shim between NQEs and the network stack
    (paper §4.5, §5).

    Polls the NSM device's job and send queues (busy-polling, emulated
    kick-driven), translates each NQE into the corresponding call of the
    backend transport ({!Tcpstack.Stack_ops.t} — kernel stack, mTCP, or a
    non-TCP protocol such as Homa), and translates backend results and
    received data back into NQEs:

    - accepted connections are announced eagerly ([Ev_accept], pipelined
      accept per §4.6), with NSM-allocated socket ids;
    - received data is copied into the VM's hugepages and announced with
      [Ev_data]; a per-connection receive credit bounds in-flight data and
      exerts backpressure on the transport when the VM stops reading;
    - sends drain from hugepages into the stack, buffering when the stack's
      send buffer is full, and return the credit with [Comp_send].

    One ServiceLib can serve several VMs (multiplexing, §6.1): each VM is
    registered with its device's hugepage region. *)

type t

val create :
  engine:Sim.Engine.t ->
  device:Nk_device.t ->
  ops:Tcpstack.Stack_ops.t ->
  cores:Sim.Cpu.Set.t ->
  costs:Nk_costs.t ->
  pressure:Sim.Pressure.t ->
  ?mon:Nkmon.t ->
  ?spans:Nkspan.t ->
  unit ->
  t
(** [device] is the NSM's NK device (one queue set per core in [cores]).
    [spans] records the servicelib/stack stages of sampled requests. *)

val register_vm : t -> vm_id:int -> hugepages:Hugepages.t -> ips:Addr.ip list -> unit
(** Serve [vm_id]: its payloads live in [hugepages]; the NSM stack takes
    ownership of the VM's IPs. Idempotent: re-registering an already-served
    VM only (re-)adds IPs and never disturbs live sockets. *)

val deregister_vm : t -> vm_id:int -> unit

val close_vm_listeners : t -> vm_id:int -> unit
(** Release the VM's listening endpoints on this NSM (the listeners are
    being re-homed to another NSM); established connections accepted
    through them keep running. *)

val fail : t -> unit
(** Simulated crash: abort every connection (remote peers observe resets),
    close every listener, and go permanently silent — no NQE is consumed or
    produced afterwards. *)

(** {1 VM export/import (live NSM migration)} *)

type pending_export = {
  x_offset : int;
  x_len : int;
  x_off : int;
  x_synthetic : bool;
  x_span : int;
}
(** A queued-but-unsent payload extent, by hugepage offset — the hugepage
    region itself is shared with the destination, so only coordinates
    travel. *)

type sock_export = {
  x_gid : int;
  x_vm_qset : int;
  x_bound : Addr.t option;
  x_recv_credit_used : int;
  x_sendq : pending_export list;
  x_closing : bool;
  x_eof_sent : bool;
  x_err_sent : bool;
  x_conn : Tcpstack.Stack_ops.export option;  (** [None] for a bare socket *)
}

type vm_export = { x_vm_id : int; x_next_gid : int; x_socks : sock_export list }

val export_vm : t -> vm_id:int -> vm_export option
(** Quietly detach every one of the VM's sockets: connections are
    serialized via the backend's [export_conn] (no parting segment, no
    events), listeners are closed silently (the migration protocol replays
    them at the destination via {!Guestlib.remigrate_listeners}), and the
    VM leaves this ServiceLib. [None] if the VM is not registered here. *)

val import_vm : t -> vm_export -> hugepages:Hugepages.t -> ips:Addr.ip list -> unit
(** Resume an exported VM here: registers it, rebuilds each socket,
    re-imports connections over their original content channels, and
    restarts the send/receive pumps. A connection whose channel vanished
    mid-flight surfaces as [Ev_err] to the VM. *)

val set_vm_forwarder : t -> vm_id:int -> (Nqe.t -> unit) -> unit
(** After [export_vm], NQEs already drained into a scratch burst but not
    yet applied would find no VM; the forwarder ships them to the
    destination instead (the migration protocol's late-NQE hook). *)

val clear_vm_forwarder : t -> vm_id:int -> unit

val release_ips : t -> Addr.ip list -> unit
(** Disown IPs after [export_vm] (their VM now lives on another host), so
    stray in-flight segments are silently dropped by the vswitch instead of
    drawing an RST from this stack. *)

val quiesce_vm_listeners : t -> vm_id:int -> unit
(** Migration quiesce, before [export_vm]: the VM's listeners silently
    stop admitting new connections (peers retry per their protocol's own
    recovery and land on the post-cut owner) while in-flight handshakes
    finish and queued accepts drain — so the cut finds empty accept
    queues and aborts nothing. *)

type stats = {
  nqes_rx : int;
  nqes_tx : int;
  bytes_to_stack : int;
  bytes_to_vm : int;
}

val stats : t -> stats
(** Immutable snapshot of the registry-backed [servicelib/nsm<id>/...]
    counters. *)
