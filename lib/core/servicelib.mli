(** ServiceLib: the NSM-side shim between NQEs and the network stack
    (paper §4.5, §5).

    Polls the NSM device's job and send queues (busy-polling, emulated
    kick-driven), translates each NQE into the corresponding call of the
    backend stack ({!Tcpstack.Stack_ops.t} — kernel stack or mTCP), and
    translates stack results and received data back into NQEs:

    - accepted connections are announced eagerly ([Ev_accept], pipelined
      accept per §4.6), with NSM-allocated socket ids;
    - received data is copied into the VM's hugepages and announced with
      [Ev_data]; a per-connection receive credit bounds in-flight data and
      closes the TCP window when the VM stops reading;
    - sends drain from hugepages into the stack, buffering when the stack's
      send buffer is full, and return the credit with [Comp_send].

    One ServiceLib can serve several VMs (multiplexing, §6.1): each VM is
    registered with its device's hugepage region. *)

type t

val create :
  engine:Sim.Engine.t ->
  device:Nk_device.t ->
  ops:Tcpstack.Stack_ops.t ->
  cores:Sim.Cpu.Set.t ->
  costs:Nk_costs.t ->
  pressure:Sim.Pressure.t ->
  ?mon:Nkmon.t ->
  ?spans:Nkspan.t ->
  unit ->
  t
(** [device] is the NSM's NK device (one queue set per core in [cores]).
    [spans] records the servicelib/stack stages of sampled requests. *)

val register_vm : t -> vm_id:int -> hugepages:Hugepages.t -> ips:Addr.ip list -> unit
(** Serve [vm_id]: its payloads live in [hugepages]; the NSM stack takes
    ownership of the VM's IPs. Idempotent: re-registering an already-served
    VM only (re-)adds IPs and never disturbs live sockets. *)

val deregister_vm : t -> vm_id:int -> unit

val close_vm_listeners : t -> vm_id:int -> unit
(** Release the VM's listening endpoints on this NSM (the listeners are
    being re-homed to another NSM); established connections accepted
    through them keep running. *)

val fail : t -> unit
(** Simulated crash: abort every connection (remote peers observe resets),
    close every listener, and go permanently silent — no NQE is consumed or
    produced afterwards. *)

type stats = {
  nqes_rx : int;
  nqes_tx : int;
  bytes_to_stack : int;
  bytes_to_vm : int;
}

val stats : t -> stats
(** Immutable snapshot of the registry-backed [servicelib/nsm<id>/...]
    counters. *)
