module Config = struct
  type t = {
    rate_gbps : float;
    delay : float;
    buffer_bytes : int option;
    ecn_threshold_bytes : int option;
    seed : int;
    costs : Nk_costs.t;
    trace_capacity : int option;
    trace_enabled : bool;
    span_every : int;
  }

  let default =
    {
      rate_gbps = 100.0;
      delay = 20e-6;
      buffer_bytes = None;
      ecn_threshold_bytes = None;
      seed = 42;
      costs = Nk_costs.default;
      trace_capacity = None;
      trace_enabled = false;
      span_every = 0;
    }
end

type t = {
  engine : Sim.Engine.t;
  registry : Tcpstack.Conn_registry.t;
  fabric : Fabric.t;
  rng : Nkutil.Rng.t;
  costs : Nk_costs.t;
  mon : Nkmon.t;
  spans : Nkspan.t;
  config : Config.t;
}

let create ?(config = Config.default) () =
  let {
    Config.rate_gbps;
    delay;
    buffer_bytes;
    ecn_threshold_bytes;
    seed;
    costs;
    trace_capacity;
    trace_enabled;
    span_every;
  } =
    config
  in
  let engine = Sim.Engine.create () in
  let fabric =
    Fabric.create engine ~rate_bps:(rate_gbps *. 1e9) ~delay ?buffer_bytes
      ?ecn_threshold_bytes ()
  in
  let mon =
    Nkmon.create ?trace_capacity ~trace_enabled
      ~now:(fun () -> Sim.Engine.now engine)
      ()
  in
  let spans = Nkspan.create ~span_every ~now:(fun () -> Sim.Engine.now engine) () in
  { engine; registry = Tcpstack.Conn_registry.create (); fabric;
    rng = Nkutil.Rng.create ~seed; costs; mon; spans; config }

let add_host ?mon ?spans t ~name =
  let mon = Option.value mon ~default:t.mon in
  let spans = Option.value spans ~default:t.spans in
  Host.create ~engine:t.engine ~fabric:t.fabric ~registry:t.registry
    ~rng:(Nkutil.Rng.split t.rng) ~costs:t.costs ~name ~mon ~spans ()

let run ?until t = Sim.Engine.run ?until t.engine

let now t = Sim.Engine.now t.engine
