(** Simulated testbed: engine + fabric + shared connection registry.

    Mirrors the paper's setup (§7.1): servers with 16-core 2.3 GHz CPUs and
    100G NICs behind a switch. Experiments, tests and examples all build
    their worlds through this module. *)

(** All construction knobs in one record, so a new knob is one field (plus
    its default) instead of another optional argument rippling through every
    constructor signature. Build variants with record update:
    [{ Config.default with seed = 7 }]. *)
module Config : sig
  type t = {
    rate_gbps : float;  (** port speed (default 100) *)
    delay : float;  (** one-way fabric delay in seconds (default 20 us) *)
    buffer_bytes : int option;  (** fabric link buffer ([None] = Fabric default) *)
    ecn_threshold_bytes : int option;  (** ECN marking threshold ([None] = off) *)
    seed : int;  (** root RNG seed (default 42) *)
    costs : Nk_costs.t;  (** datapath cost model *)
    trace_capacity : int option;  (** Nkmon trace ring size ([None] = default) *)
    trace_enabled : bool;  (** event tracing on from the start (default off) *)
    span_every : int;  (** sample one request span per N sends (0 = off) *)
  }

  val default : t
end

type t = {
  engine : Sim.Engine.t;
  registry : Tcpstack.Conn_registry.t;
  fabric : Fabric.t;
  rng : Nkutil.Rng.t;
  costs : Nk_costs.t;
  mon : Nkmon.t;  (** shared observability handle for the whole world *)
  spans : Nkspan.t;  (** shared request-span recorder (disabled by default) *)
  config : Config.t;
      (** the knobs this world was built with, retained so cluster layers
          (Nkfabric) can derive per-node observability instances with the
          same trace/span settings *)
}

val create : ?config:Config.t -> unit -> t
(** Defaults ({!Config.default}): 100 Gb/s ports, 20 us one-way delay,
    seed 42. Every host added to the testbed shares [mon], so all component
    metrics land in one registry; [trace_enabled] turns on event tracing
    with a ring of [trace_capacity] records. [span_every] (0 = spans off)
    samples one request span per that many GuestLib sends, shared across
    hosts like [mon]. *)

val add_host : ?mon:Nkmon.t -> ?spans:Nkspan.t -> t -> name:string -> Host.t
(** Hosts default to the testbed-wide [mon]/[spans]; cluster layers pass
    per-node instances so each node keeps its own registry, trace ring and
    host-unique span ids (federated back together by Nkobs). *)

val run : ?until:float -> t -> unit

val now : t -> float
