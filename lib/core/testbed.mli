(** Simulated testbed: engine + fabric + shared connection registry.

    Mirrors the paper's setup (§7.1): servers with 16-core 2.3 GHz CPUs and
    100G NICs behind a switch. Experiments, tests and examples all build
    their worlds through this module. *)

type t = {
  engine : Sim.Engine.t;
  registry : Tcpstack.Conn_registry.t;
  fabric : Fabric.t;
  rng : Nkutil.Rng.t;
  costs : Nk_costs.t;
  mon : Nkmon.t;  (** shared observability handle for the whole world *)
  spans : Nkspan.t;  (** shared request-span recorder (disabled by default) *)
}

val create :
  ?rate_gbps:float ->
  ?delay:float ->
  ?buffer_bytes:int ->
  ?ecn_threshold_bytes:int ->
  ?seed:int ->
  ?costs:Nk_costs.t ->
  ?trace_capacity:int ->
  ?trace_enabled:bool ->
  ?span_every:int ->
  unit ->
  t
(** Defaults: 100 Gb/s ports, 20 us one-way delay, seed 42. Every host
    added to the testbed shares [mon], so all component metrics land in one
    registry; [trace_enabled] (default false) turns on event tracing with a
    ring of [trace_capacity] records. [span_every] (default 0 = spans off)
    samples one request span per that many GuestLib sends, shared across
    hosts like [mon]. *)

val add_host : t -> name:string -> Host.t

val run : ?until:float -> t -> unit

val now : t -> float
