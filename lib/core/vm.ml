module Cpu = Sim.Cpu

type backend =
  | Baseline of Tcpstack.Stack.t
  | Nk of { guestlib : Guestlib.t; device : Nk_device.t; hugepages : Hugepages.t }

type t = {
  host : Host.t;
  name : string;
  vm_id : int;
  cores : Cpu.Set.t;
  ips : Addr.ip list;
  backend : backend;
  api : Tcpstack.Socket_api.t;
}

let attach_nsm t nsm =
  match t.backend with
  | Baseline _ -> invalid_arg (t.name ^ ": not a NetKernel VM")
  | Nk { hugepages; _ } ->
      let ce = Host.coreengine t.host in
      Coreengine.attach ce ~vm_id:t.vm_id ~nsm_ids:[ Nsm.id nsm ];
      Nsm.register_vm nsm ~vm_id:t.vm_id ~hugepages ~ips:t.ips

let detach_nsm t nsm =
  match t.backend with
  | Baseline _ -> invalid_arg (t.name ^ ": not a NetKernel VM")
  | Nk _ -> Coreengine.detach (Host.coreengine t.host) ~vm_id:t.vm_id ~nsm_id:(Nsm.id nsm)

let name t = t.name
let vm_id t = t.vm_id
let api t = t.api
let cores t = t.cores
let ips t = t.ips
let busy_cycles t = Cpu.Set.total_busy_cycles t.cores

let guestlib t = match t.backend with Nk { guestlib; _ } -> Some guestlib | Baseline _ -> None

let baseline_stack t =
  match t.backend with Baseline stack -> Some stack | Nk _ -> None

let hugepages t =
  match t.backend with Nk { hugepages; _ } -> Some hugepages | Baseline _ -> None

let device t = match t.backend with Nk { device; _ } -> Some device | Baseline _ -> None

let create_baseline host ~name ~vcpus ~ips ?(profile = Sim.Cost_profile.linux_kernel)
    ?config () =
  let cores = Host.new_cores host ~name ~n:vcpus in
  let cfg = match config with Some c -> c | None -> Tcpstack.Stack.default_config profile in
  let stack =
    Tcpstack.Stack.create ~engine:(Host.engine host) ~name ~cores
      ~vswitch:(Host.vswitch host) ~registry:(Host.registry host) ~rng:(Host.rng host)
      ~mon:(Host.mon host) ~spans:(Host.spans host) cfg
  in
  List.iter
    (fun ip ->
      Tcpstack.Stack.add_ip stack ip;
      Host.own_ip host ip)
    ips;
  { host; name; vm_id = 0; cores; ips; backend = Baseline stack;
    api = Tcpstack.Direct_socket.make stack }

let create_nk host ~name ~vcpus ~ips ~nsms ?(profile = Sim.Cost_profile.linux_kernel)
    ?(hugepage_pages = 32) () =
  if nsms = [] then invalid_arg "Vm.create_nk: need at least one NSM";
  Host.enable_netkernel host;
  let vm_id = Host.fresh_vm_id host in
  let cores = Host.new_cores host ~name ~n:vcpus in
  let mon = Host.mon host in
  let hugepages =
    Hugepages.create ~pages:hugepage_pages ~mon ~region:(Printf.sprintf "vm%d" vm_id) ()
  in
  let spans = Host.spans host in
  let device =
    Nk_device.create ~id:vm_id ~role:Nk_device.Vm_side ~qsets:vcpus ~hugepages ~mon
      ~spans ()
  in
  let guestlib =
    Guestlib.create ~engine:(Host.engine host) ~vm_id ~cores ~device
      ~costs:(Host.costs host) ~profile ~mon ~spans ()
  in
  let ce = Host.coreengine host in
  Coreengine.register_vm ce device;
  Coreengine.attach ce ~vm_id ~nsm_ids:(List.map Nsm.id nsms);
  List.iter
    (fun nsm ->
      Nsm.register_vm nsm ~vm_id ~hugepages ~ips)
    nsms;
  List.iter (Host.own_ip host) ips;
  { host; name; vm_id; cores; ips; backend = Nk { guestlib; device; hugepages };
    api = Guestlib.api guestlib }
