(** User virtual machines.

    A VM owns vCPUs and IPs and exposes one {!Tcpstack.Socket_api.t} to the
    application regardless of how networking is provided — the paper's
    transparency claim:

    - {!create_baseline}: status quo, a full TCP stack inside the guest;
    - {!create_nk}: NetKernel — GuestLib redirection, an NK device with one
      queue set per vCPU, a hugepage region shared with the NSM(s), and a
      CoreEngine attachment. With several NSMs, CoreEngine spreads sockets
      round-robin (paper §7.5). *)

type t

val create_baseline :
  Host.t ->
  name:string ->
  vcpus:int ->
  ips:Addr.ip list ->
  ?profile:Sim.Cost_profile.t ->
  ?config:Tcpstack.Stack.config ->
  unit ->
  t

val create_nk :
  Host.t ->
  name:string ->
  vcpus:int ->
  ips:Addr.ip list ->
  nsms:Nsm.t list ->
  ?profile:Sim.Cost_profile.t ->
  ?hugepage_pages:int ->
  unit ->
  t
(** [profile] is the guest-kernel cost profile used for syscall/copy/epoll
    costs of the redirected calls (default [linux_kernel]).
    [hugepage_pages] sizes the shared payload region in 2 MB pages
    (default 32). *)

val attach_nsm : t -> Nsm.t -> unit
(** Switch the VM to [nsm] on the fly (paper §3: the queue/switch design
    makes the VM-to-NSM mapping dynamic). New sockets are served by the new
    NSM; established connections keep their current NSM until they close.
    Only valid for NetKernel VMs. *)

val detach_nsm : t -> Nsm.t -> unit
(** Remove [nsm] from the VM's assignment pool: it receives no new sockets
    from this VM; established connections keep their route until they
    close. Only valid for NetKernel VMs. *)

val name : t -> string

val vm_id : t -> int
(** 0 for baseline VMs (they have no NK identity). *)

val api : t -> Tcpstack.Socket_api.t

val cores : t -> Sim.Cpu.Set.t

val ips : t -> Addr.ip list

val busy_cycles : t -> float

val guestlib : t -> Guestlib.t option

val baseline_stack : t -> Tcpstack.Stack.t option

val hugepages : t -> Hugepages.t option

val device : t -> Nk_device.t option
(** The VM-side NK device ([None] for baseline VMs). Nkfabric mirrors its
    queue-set geometry when it builds the proxy device on a migration
    destination host. *)
