(* Ablation: CoreEngine batch size in the full system.

   Fig 11 microbenchmarks the switch alone; here the whole NetKernel stack
   runs a short-connection workload while the CoreEngine's batch size
   varies, showing how batching trades CE efficiency against NQE latency.
   The paper settles on a batch of 4 (§7.2). *)

let batches = [ 1; 4; 16; 64 ]

let run ?(quick = false) () =
  let total = if quick then 10_000 else 30_000 in
  let rows =
    List.map
      (fun batch ->
        let costs = { Nkcore.Nk_costs.default with Nkcore.Nk_costs.ce_batch = batch } in
        let w =
          Worlds.netkernel
            ~config:
              (Worlds.Config.with_costs costs
                 { Worlds.Config.default with vcpus = 2; nsm_cores = 2 })
            ()
        in
        let r = Worlds.measure_rps w ~concurrency:200 ~total () in
        [
          string_of_int batch;
          Report.cell_krps r.Worlds.rps;
          Printf.sprintf "%.0f" (r.Worlds.ce_cycles /. float_of_int total);
          Printf.sprintf "%.2f"
            (Nkutil.Histogram.mean r.Worlds.latency *. 1e3);
        ])
      batches
  in
  Report.make ~id:"abl-batching"
    ~title:"Ablation: CoreEngine batch size under a live RPS workload"
    ~headers:[ "ce batch"; "RPS"; "CE cycles/req"; "mean latency ms" ]
    ~notes:
      [
        "the paper uses batch 4 for all experiments (§7.2)";
        "bigger batches amortize polling sweeps; at these request rates the CE is far from\n         saturated, so the end-to-end effect is deliberately small — Fig 11 shows the\n         switch-level effect in isolation";
      ]
    rows
