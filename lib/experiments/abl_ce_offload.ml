(* Ablation: offloading CoreEngine NQE switching to SmartNIC hardware
   queues (paper §7.8: "this way CoreEngine does not consume CPU for the
   majority of the NQEs: only the first NQE of a new connection needs to be
   handled in CPU").

   Measures the CE core's busy cycles per served request under a fixed
   short-connection workload, software switching vs hardware offload. *)

let run ?(quick = false) () =
  let total = if quick then 10_000 else 40_000 in
  let measure costs =
    let w =
      Worlds.netkernel
        ~config:
          (Worlds.Config.with_costs costs
             { Worlds.Config.default with vcpus = 2; nsm_cores = 2 })
        ()
    in
    let r = Worlds.measure_rps w ~concurrency:200 ~total () in
    (r.Worlds.rps, r.Worlds.ce_cycles /. float_of_int total)
  in
  let sw_rps, sw_cycles = measure Nkcore.Nk_costs.default in
  let hw_rps, hw_cycles = measure (Nkcore.Nk_costs.ce_offloaded Nkcore.Nk_costs.default) in
  Report.make ~id:"abl-ce-offload"
    ~title:"Ablation: software vs SmartNIC-offloaded CoreEngine switching"
    ~headers:[ "CoreEngine"; "RPS"; "CE cycles / request" ]
    ~notes:
      [
        "paper §7.8: with hardware offload only a connection's first NQE costs CE CPU";
        "expect a several-fold drop in CE cycles per request at identical RPS (the \
         remainder is connection-setup table misses and residual descriptor handling)";
      ]
    [
      [ "software switch"; Report.cell_krps sw_rps; Printf.sprintf "%.0f" sw_cycles ];
      [ "SmartNIC offload"; Report.cell_krps hw_rps; Printf.sprintf "%.0f" hw_cycles ];
      [
        "reduction"; "";
        Printf.sprintf "%.1fx" (sw_cycles /. Float.max hw_cycles 1e-9);
      ];
    ]
