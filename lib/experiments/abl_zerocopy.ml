(* Ablation: zerocopy into the NSM (the paper's stated future work, §7.8 and
   §10 — "we are implementing zerocopy to the NSM").

   Reruns the Table 6 protocol (paced bulk streams, VM+NSM cycles normalized
   over Baseline) with the NSM-side hugepage copy replaced by a pin/translate
   cost. The paper claims the extra-copy overhead "can be optimized away";
   this quantifies how much of the 1.14-1.70x curve that recovers. *)

open Nkcore

let levels = [ 20.0; 60.0; 100.0 ]

let run ?(quick = false) () =
  let duration = if quick then 0.5 else 1.0 in
  let rows =
    List.map
      (fun gbps ->
        let baseline_cycles, _ =
          Table6_overhead_tput.cycles_at
            (Worlds.baseline ~config:{ Worlds.Config.default with vcpus = 4 } ())
            ~gbps ~duration
        in
        let copy_cycles, _ =
          Table6_overhead_tput.cycles_at
            (Worlds.netkernel ~config:{ Worlds.Config.default with vcpus = 4; nsm_cores = 4 } ())
            ~gbps ~duration
        in
        let zc_cycles, _ =
          Table6_overhead_tput.cycles_at
            (Worlds.netkernel
               ~config:
                 (Worlds.Config.with_costs
                    (Nk_costs.zerocopy Nk_costs.default)
                    { Worlds.Config.default with vcpus = 4; nsm_cores = 4 })
               ())
            ~gbps ~duration
        in
        [
          Printf.sprintf "%.0fG" gbps;
          Printf.sprintf "%.2f" (copy_cycles /. baseline_cycles);
          Printf.sprintf "%.2f" (zc_cycles /. baseline_cycles);
        ])
      levels
  in
  Report.make ~id:"abl-zerocopy"
    ~title:"Ablation: NSM zerocopy vs the extra hugepage copy (normalized CPU)"
    ~headers:[ "throughput"; "NetKernel (copy)"; "NetKernel (zerocopy)" ]
    ~notes:
      [
        "paper §7.8: the throughput overhead 'can be optimized away by implementing \
         zerocopy between the hugepages and the NSM'";
        "expect the rising copy-overhead curve to flatten toward ~1.0x";
      ]
    rows
