(* Committed performance baselines and the `nk bench --compare` diff.

   A bench snapshot is the simulated result table of a quick-mode
   experiment (deterministic, so any drift is a real behaviour change)
   plus the wall-clock seconds the run took (machine-dependent, reported
   but never gating). Snapshots serialize to a small JSON file that gets
   committed (BENCH_<id>.json) and diffed by CI against a fresh run. *)

type entry = {
  b_id : string;
  b_headers : string list;
  b_rows : string list list;
  b_percentiles : Report.pctl list;
  b_wall_s : float;
}

(* ---- serialization ------------------------------------------------------ *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json entries =
  let str s = "\"" ^ escape s ^ "\"" in
  let arr items = "[" ^ String.concat ", " items ^ "]" in
  (* Fixed decimals keep the rendering deterministic across runs. *)
  let pctl (p : Report.pctl) =
    Printf.sprintf
      "{\"label\": %s, \"p50_ms\": %.4f, \"p90_ms\": %.4f, \"p99_ms\": %.4f, \
       \"p999_ms\": %.4f}"
      (str p.Report.p_label) p.Report.p50_ms p.Report.p90_ms p.Report.p99_ms
      p.Report.p999_ms
  in
  let entry e =
    String.concat "\n"
      ([
         "  {";
         Printf.sprintf "    \"id\": %s," (str e.b_id);
         Printf.sprintf "    \"headers\": %s," (arr (List.map str e.b_headers));
         Printf.sprintf "    \"rows\": %s,"
           (arr (List.map (fun r -> arr (List.map str r)) e.b_rows));
       ]
      @ (if e.b_percentiles = [] then []
         else
           [
             Printf.sprintf "    \"percentiles\": %s,"
               (arr (List.map pctl e.b_percentiles));
           ])
      @ [ Printf.sprintf "    \"wall_s\": %.3f" e.b_wall_s; "  }" ])
  in
  "[\n" ^ String.concat ",\n" (List.map entry entries) ^ "\n]\n"

(* Minimal recursive-descent parser for the JSON subset we emit (objects,
   arrays, strings, numbers). Good enough to read our own baselines back
   without a JSON dependency. *)
type json = S of string | N of float | A of json list | O of (string * json) list

exception Parse of string

let of_json text =
  let pos = ref 0 in
  let len = String.length text in
  let peek () = if !pos < len then Some text.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> raise (Parse (Printf.sprintf "expected %c at offset %d" c !pos))
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | None -> raise (Parse "unterminated string")
      | Some '"' -> advance ()
      | Some '\\' ->
          advance ();
          (match peek () with
          | Some 'n' -> Buffer.add_char b '\n'
          | Some 't' -> Buffer.add_char b '\t'
          | Some 'u' ->
              if !pos + 4 >= len then raise (Parse "bad \\u escape");
              let code = int_of_string ("0x" ^ String.sub text (!pos + 1) 4) in
              pos := !pos + 4;
              Buffer.add_char b (Char.chr (code land 0xFF))
          | Some c -> Buffer.add_char b c
          | None -> raise (Parse "unterminated escape"));
          advance ();
          loop ()
      | Some c ->
          Buffer.add_char b c;
          advance ();
          loop ()
    in
    loop ();
    Buffer.contents b
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> S (parse_string ())
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          A []
        end
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> raise (Parse "expected , or ] in array")
          in
          A (items [])
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          O []
        end
        else begin
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields ((k, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> raise (Parse "expected , or } in object")
          in
          O (fields [])
        end
    | Some _ ->
        let start = !pos in
        let is_num c =
          (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
        in
        while (match peek () with Some c -> is_num c | None -> false) do
          advance ()
        done;
        if !pos = start then raise (Parse (Printf.sprintf "unexpected input at %d" start));
        N (float_of_string (String.sub text start (!pos - start)))
    | None -> raise (Parse "unexpected end of input")
  in
  try
    let v = parse_value () in
    skip_ws ();
    let field o k =
      match List.assoc_opt k o with
      | Some v -> v
      | None -> raise (Parse ("missing field " ^ k))
    in
    let as_string = function S s -> s | _ -> raise (Parse "expected string") in
    let as_list = function A l -> l | _ -> raise (Parse "expected array") in
    let as_float = function N f -> f | _ -> raise (Parse "expected number") in
    let pctl = function
      | O o ->
          {
            Report.p_label = as_string (field o "label");
            p50_ms = as_float (field o "p50_ms");
            p90_ms = as_float (field o "p90_ms");
            p99_ms = as_float (field o "p99_ms");
            p999_ms = as_float (field o "p999_ms");
          }
      | _ -> raise (Parse "expected percentile object")
    in
    let entry = function
      | O o ->
          {
            b_id = as_string (field o "id");
            b_headers = List.map as_string (as_list (field o "headers"));
            b_rows = List.map (fun r -> List.map as_string (as_list r)) (as_list (field o "rows"));
            (* Baselines predate the percentiles key; absent means none
               recorded, not a malformed snapshot. *)
            b_percentiles =
              (match List.assoc_opt "percentiles" o with
              | None -> []
              | Some v -> List.map pctl (as_list v));
            b_wall_s = as_float (field o "wall_s");
          }
      | _ -> raise (Parse "expected entry object")
    in
    Ok (List.map entry (as_list v))
  with
  | Parse msg -> Error msg
  | Failure msg -> Error msg

(* ---- comparison --------------------------------------------------------- *)

(* Cells are rendered numbers with unit suffixes ("1687.6K", "34.8",
   "86%"). Compare the numeric prefix with a relative tolerance when both
   sides have one (suffixes must still match); fall back to string
   equality otherwise. *)
let split_number cell =
  let n = String.length cell in
  let i = ref 0 in
  if !i < n && (cell.[0] = '-' || cell.[0] = '+') then incr i;
  let digits = ref false in
  while
    !i < n && (match cell.[!i] with '0' .. '9' -> true | '.' -> true | _ -> false)
  do
    (match cell.[!i] with '0' .. '9' -> digits := true | _ -> ());
    incr i
  done;
  if not !digits then None
  else
    match float_of_string_opt (String.sub cell 0 !i) with
    | None -> None
    | Some f -> Some (f, String.sub cell !i (n - !i))

type mismatch = { m_id : string; m_where : string; m_old : string; m_new : string }

let compare_entries ~tolerance ~baseline ~fresh =
  let mismatches = ref [] in
  let fail ~id ~where ~old_v ~new_v =
    mismatches := { m_id = id; m_where = where; m_old = old_v; m_new = new_v } :: !mismatches
  in
  let check_cell ~id ~where old_c new_c =
    match (split_number old_c, split_number new_c) with
    | Some (a, sa), Some (b, sb) when sa = sb ->
        let scale = Float.max (Float.abs a) (Float.abs b) in
        let delta = Float.abs (a -. b) in
        if scale > 0.0 && delta /. scale > tolerance then
          fail ~id ~where ~old_v:old_c ~new_v:new_c
    | _ -> if old_c <> new_c then fail ~id ~where ~old_v:old_c ~new_v:new_c
  in
  List.iter
    (fun old_e ->
      match List.find_opt (fun e -> e.b_id = old_e.b_id) fresh with
      | None ->
          fail ~id:old_e.b_id ~where:"entry" ~old_v:"present" ~new_v:"missing"
      | Some new_e ->
          if old_e.b_headers <> new_e.b_headers then
            fail ~id:old_e.b_id ~where:"headers"
              ~old_v:(String.concat "," old_e.b_headers)
              ~new_v:(String.concat "," new_e.b_headers)
          else if List.length old_e.b_rows <> List.length new_e.b_rows then
            fail ~id:old_e.b_id ~where:"row count"
              ~old_v:(string_of_int (List.length old_e.b_rows))
              ~new_v:(string_of_int (List.length new_e.b_rows))
          else
            List.iteri
              (fun ri (old_r, new_r) ->
                if List.length old_r <> List.length new_r then
                  fail ~id:old_e.b_id
                    ~where:(Printf.sprintf "row %d width" ri)
                    ~old_v:(String.concat "," old_r) ~new_v:(String.concat "," new_r)
                else
                  List.iteri
                    (fun ci (old_c, new_c) ->
                      let where =
                        Printf.sprintf "row %d, %s" ri
                          (match List.nth_opt old_e.b_headers ci with
                          | Some h -> h
                          | None -> Printf.sprintf "col %d" ci)
                      in
                      check_cell ~id:old_e.b_id ~where old_c new_c)
                    (List.combine old_r new_r))
              (List.combine old_e.b_rows new_e.b_rows);
          (* An empty baseline list means the snapshot predates percentile
             recording — nothing to hold the fresh run to. *)
          List.iter
            (fun (op : Report.pctl) ->
              match
                List.find_opt
                  (fun (np : Report.pctl) -> np.Report.p_label = op.Report.p_label)
                  new_e.b_percentiles
              with
              | None ->
                  fail ~id:old_e.b_id
                    ~where:(Printf.sprintf "percentiles %s" op.Report.p_label)
                    ~old_v:"present" ~new_v:"missing"
              | Some np ->
                  List.iter
                    (fun (metric, a, b) ->
                      let scale = Float.max (Float.abs a) (Float.abs b) in
                      let delta = Float.abs (a -. b) in
                      if scale > 0.0 && delta /. scale > tolerance then
                        fail ~id:old_e.b_id
                          ~where:(Printf.sprintf "%s %s" op.Report.p_label metric)
                          ~old_v:(Printf.sprintf "%.4f" a)
                          ~new_v:(Printf.sprintf "%.4f" b))
                    [
                      ("p50_ms", op.Report.p50_ms, np.Report.p50_ms);
                      ("p90_ms", op.Report.p90_ms, np.Report.p90_ms);
                      ("p99_ms", op.Report.p99_ms, np.Report.p99_ms);
                      ("p999_ms", op.Report.p999_ms, np.Report.p999_ms);
                    ])
            old_e.b_percentiles)
    baseline;
  List.rev !mismatches

(* The DRIFT line an operator actually reads: which metric moved and by how
   much, relative to the baseline, when both cells carry a number. *)
let describe m =
  let delta =
    match (split_number m.m_old, split_number m.m_new) with
    | Some (a, _), Some (b, _) when Float.abs a > 0.0 ->
        Printf.sprintf " (%+.1f%%)" (100.0 *. (b -. a) /. Float.abs a)
    | _ -> ""
  in
  Printf.sprintf "%-20s %s -> %s%s" m.m_where m.m_old m.m_new delta

let wall_ratios ~baseline ~fresh =
  List.filter_map
    (fun old_e ->
      match List.find_opt (fun e -> e.b_id = old_e.b_id) fresh with
      | Some new_e when old_e.b_wall_s > 0.0 ->
          Some (old_e.b_id, old_e.b_wall_s, new_e.b_wall_s, new_e.b_wall_s /. old_e.b_wall_s)
      | _ -> None)
    baseline

let of_report ~wall_s (r : Report.t) =
  {
    b_id = r.Report.id;
    b_headers = r.Report.headers;
    b_rows = r.Report.rows;
    b_percentiles = r.Report.percentiles;
    b_wall_s = wall_s;
  }
