(** Committed performance baselines for `nk bench`.

    A snapshot records a quick-mode experiment's simulated result table
    (deterministic — any drift is a behaviour change, which is why CI can
    diff it with a tight tolerance) together with the run's wall-clock
    seconds (machine-dependent, so only ever reported as a ratio, never
    gated on). Snapshots live in committed BENCH_<id>.json files. *)

type entry = {
  b_id : string;
  b_headers : string list;
  b_rows : string list list;  (** rendered cells, exactly as the report prints *)
  b_percentiles : Report.pctl list;
      (** the report's latency percentile summaries, gated per metric *)
  b_wall_s : float;  (** wall-clock seconds of the quick run that produced it *)
}

val of_report : wall_s:float -> Report.t -> entry

val to_json : entry list -> string

val of_json : string -> (entry list, string) result
(** Parses only the JSON subset {!to_json} emits. A baseline written before
    percentile recording (no ["percentiles"] key) parses with an empty list
    rather than failing. *)

type mismatch = {
  m_id : string;
  m_where : string;  (** e.g. ["row 2, p99"] *)
  m_old : string;
  m_new : string;
}

val compare_entries :
  tolerance:float -> baseline:entry list -> fresh:entry list -> mismatch list
(** Cell-by-cell diff of every baseline entry against the fresh run with
    the same id. Cells with a numeric prefix and matching unit suffix
    compare as relative difference against [tolerance]; all other cells
    must match exactly. Baseline percentile summaries gate the fresh run's
    per metric (one mismatch per drifted [label pXX_ms]); a baseline with
    none recorded gates nothing. Wall-clock is not compared. *)

val describe : mismatch -> string
(** The one-line human rendering: metric name, old and new values, and the
    relative change in percent when both sides are numeric — e.g.
    ["tcp-before p99_ms    3087.0080 -> 2401.1200 (-22.2%)"]. *)

val wall_ratios :
  baseline:entry list -> fresh:entry list -> (string * float * float * float) list
(** [(id, old_wall_s, new_wall_s, new/old)] for every matched entry. *)
