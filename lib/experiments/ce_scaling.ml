(* CoreEngine shard scaling. One CE core switches ~8M NQEs/s (Fig 11), so
   a single tenant never saturates it — the CE becomes the bottleneck on a
   multi-tenant host, where every VM<->NSM pair funnels through the same
   switch. This sweep packs [n_tenants] NetKernel VMs (each with its own
   single-core kernel NSM and a closed-loop 64B RPS workload) onto one
   host and scales the number of CE switching shards: aggregate RPS must
   rise monotonically with shards until the VM/NSM side saturates, while
   the maximum per-shard core load drops. *)

open Nkcore
module Types = Tcpstack.Types

let shard_points = [ 1; 2; 4 ]

let n_tenants = 32

let run_point ~ce_cores ~total_per_tenant =
  let tb = Testbed.create ~config:{ Testbed.Config.default with seed = 42 } () in
  let server_host = Testbed.add_host tb ~name:"hostA" in
  let client_host = Testbed.add_host tb ~name:"hostB" in
  Host.enable_netkernel ~ce_cores server_host;
  let proto = Nkapps.Proto.Fixed { request = 64; response = 64; keepalive = false } in
  let client =
    Vm.create_baseline client_host ~name:"client" ~vcpus:16
      ~ips:(List.init 8 (fun i -> 100 + i))
      ~profile:Sim.Cost_profile.ideal ()
  in
  let lgs =
    List.init n_tenants (fun i ->
        let nsm =
          Nsm.create_kernel server_host ~name:(Printf.sprintf "nsm%d" i) ~vcpus:1 ()
        in
        let vm =
          Vm.create_nk server_host
            ~name:(Printf.sprintf "vm%d" i)
            ~vcpus:1 ~ips:[ 10 + i ] ~nsms:[ nsm ] ()
        in
        let addr = Addr.make (10 + i) 80 in
        (match
           Nkapps.Epoll_server.start ~engine:tb.Testbed.engine ~api:(Vm.api vm)
             (Nkapps.Epoll_server.config ~proto addr)
         with
        | Ok _ -> ()
        | Error e -> failwith (Types.err_to_string e));
        let lg = ref None in
        ignore
          (Sim.Engine.schedule tb.Testbed.engine ~delay:1e-3 (fun () ->
               lg :=
                 Some
                   (Nkapps.Loadgen.start ~engine:tb.Testbed.engine ~api:(Vm.api client)
                      {
                        Nkapps.Loadgen.server = addr;
                        proto;
                        mode =
                          Nkapps.Loadgen.Closed
                            {
                              concurrency = 64;
                              total = Some total_per_tenant;
                              duration = None;
                            };
                        warmup = 0.0;
                      })));
        lg)
  in
  Testbed.run tb ~until:120.0;
  let rps =
    List.fold_left
      (fun acc lg ->
        match !lg with
        | None -> failwith "loadgen never started"
        | Some lg -> acc +. (Nkapps.Loadgen.results lg).Nkapps.Loadgen.rps)
      0.0 lgs
  in
  let shard_cycles = Array.map Sim.Cpu.busy_cycles (Host.ce_cores server_host) in
  let total_cycles = Array.fold_left ( +. ) 0.0 shard_cycles in
  let max_shard = Array.fold_left Float.max 0.0 shard_cycles in
  (rps, total_cycles, max_shard)

let run ?(quick = false) () =
  let total_per_tenant = if quick then 800 else 4_000 in
  let rows =
    List.map
      (fun ce_cores ->
        let rps, total_cycles, max_shard = run_point ~ce_cores ~total_per_tenant in
        [
          string_of_int ce_cores;
          Report.cell_krps rps;
          Printf.sprintf "%.1f" (total_cycles /. 1e6);
          Printf.sprintf "%.1f" (max_shard /. 1e6);
        ])
      shard_points
  in
  Report.make ~id:"ce-scale"
    ~title:
      (Printf.sprintf
         "Aggregate RPS vs CoreEngine shards (%d tenants, 64B messages, concurrency 64 \
          each)"
         n_tenants)
    ~headers:[ "CE shards"; "RPS"; "CE Mcycles total"; "CE Mcycles max/shard" ]
    ~notes:
      [
        "the paper runs one CoreEngine core; sharding is the multi-core extension";
        "aggregate RPS must rise monotonically with shards until the VM/NSM side saturates";
        "max/shard shows the affinity function spreading queue sets across cores";
      ]
    rows
