(* Figs 7+8 operated (use case 1, §6.1 + §7.5): NSM autoscaling under the
   AG trace.

   Where fig08 provisions one NSM for the aggregate peak, here the Nkctl
   control plane operates the pool: three AG VMs replay their bursty
   diurnal+spike traces while the autoscaler samples NSM vCPU utilization
   every period and grows/shrinks the kernel-NSM pool between its
   watermarks. VM re-homing is a live handover (listeners re-created on the
   target NSM, established connections finish on the source), and the
   emptied NSM drains to zero connections before it is retired.

   Shape to check: the active-NSM count tracks the offered load — up at the
   spike, back down at the trough — and the run is deterministic (same
   samples, same scale decisions on every run). *)

open Nkcore

let sparkline values =
  let ramp = [| ' '; '.'; ':'; '-'; '='; '+'; '*'; '#' |] in
  let peak = Array.fold_left Float.max 1e-9 values in
  String.init (Array.length values) (fun i ->
      let level = int_of_float (values.(i) /. peak *. 7.0) in
      ramp.(Int.max 0 (Int.min 7 level)))

(* Bucket a (time, value) series into [k] equal bins over [0, duration],
   averaging within each bin (empty bins repeat the previous value). *)
let bucket ~k ~duration series =
  let sums = Array.make k 0.0 and counts = Array.make k 0 in
  List.iter
    (fun (time, v) ->
      let i = Int.min (k - 1) (Int.max 0 (int_of_float (time /. duration *. float_of_int k))) in
      sums.(i) <- sums.(i) +. v;
      counts.(i) <- counts.(i) + 1)
    series;
  let out = Array.make k 0.0 in
  let prev = ref 0.0 in
  for i = 0 to k - 1 do
    if counts.(i) > 0 then prev := sums.(i) /. float_of_int counts.(i);
    out.(i) <- !prev
  done;
  out

let nsm_vcpus = 1

let run ?(quick = false) () =
  let duration = if quick then 12.0 else 30.0 in
  let time_compress = 3600.0 /. duration (* whole trace hour in [duration] *) in
  let rate_scale = 1.75 in
  let traces =
    Nktrace.Traffic.top_k_by_utilization
      (Nktrace.Traffic.generate_fleet ~seed:2018 ~n:64 ())
      3
  in
  let tb = Testbed.create ~config:{ Testbed.Config.default with seed = 7 } () in
  let hosta = Testbed.add_host tb ~name:"hostA" in
  let hostb = Testbed.add_host tb ~name:"hostB" in
  let spawn i =
    Nsm.create_kernel hosta ~name:(Printf.sprintf "nsm%d" i) ~vcpus:nsm_vcpus ()
  in
  let nsm0 = spawn 0 in
  let ctl =
    Nkctl.create hosta
      ~policy:
        {
          Nkctl.Policy.period = 0.25;
          high_watermark = 0.6;
          low_watermark = 0.25;
          min_nsms = 1;
          max_nsms = 4;
          cooldown = 1.0;
          ce_scale_watermark = infinity;
          max_ce_shards = 4;
        }
      ~spawn:(fun i -> spawn (i + 1))
      ()
  in
  Nkctl.manage ctl nsm0;
  let vms =
    List.mapi
      (fun i _trace ->
        let vm =
          Vm.create_nk hosta
            ~name:(Printf.sprintf "ag%d" i)
            ~vcpus:1 ~ips:[ 10 + i ] ~nsms:[ nsm0 ] ()
        in
        Nkctl.add_vm ctl vm ~home:nsm0;
        vm)
      traces
  in
  let client =
    Vm.create_baseline hostb ~name:"clients" ~vcpus:16
      ~ips:(List.init 8 (fun i -> 20 + i))
      ~profile:Sim.Cost_profile.ideal ()
  in
  let proto = Nkapps.Proto.Fixed { request = 256; response = 1024; keepalive = false } in
  let lgs =
    List.mapi
      (fun i (trace : Nktrace.Traffic.t) ->
        let vm = List.nth vms i in
        let addr = Addr.make (10 + i) 80 in
        (match
           Nkapps.Epoll_server.start ~engine:tb.Testbed.engine ~api:(Vm.api vm)
             (Nkapps.Epoll_server.config ~proto addr)
         with
        | Ok _ -> ()
        | Error e -> failwith (Tcpstack.Types.err_to_string e));
        let lg = ref None in
        ignore
          (Sim.Engine.schedule tb.Testbed.engine ~delay:1e-3 (fun () ->
               lg :=
                 Some
                   (Nkapps.Loadgen.start ~engine:tb.Testbed.engine ~api:(Vm.api client)
                      {
                        Nkapps.Loadgen.server = addr;
                        proto;
                        mode =
                          Nkapps.Loadgen.Open
                            {
                              rate_at =
                                (fun t ->
                                  rate_scale
                                  *. Nktrace.Traffic.rate_at trace (t *. time_compress));
                              duration;
                            };
                        warmup = 0.0;
                      })));
        lg)
      traces
  in
  Nkctl.start ctl;
  Testbed.run tb ~until:(duration +. 1.0);
  Nkctl.stop ctl;
  let completed, errors =
    List.fold_left
      (fun (c, e) lg ->
        match !lg with
        | None -> (c, e)
        | Some lg ->
            let r = Nkapps.Loadgen.results lg in
            (c + r.Nkapps.Loadgen.completed, e + r.Nkapps.Loadgen.errors))
      (0, 0) lgs
  in
  let samples = Nkctl.samples ctl in
  let stats = Nkctl.stats ctl in
  let k = 40 in
  let of_samples f =
    bucket ~k ~duration (List.map (fun s -> (s.Nkctl.s_time, f s)) samples)
  in
  let offered =
    bucket ~k ~duration
      (List.init 120 (fun i ->
           let t = float_of_int i /. 119.0 *. duration in
           ( t,
             List.fold_left
               (fun acc tr -> acc +. Nktrace.Traffic.rate_at tr (t *. time_compress))
               0.0 traces )))
  in
  let nsms = of_samples (fun s -> float_of_int s.Nkctl.s_active) in
  let util = of_samples (fun s -> s.Nkctl.s_utilization) in
  let conns = of_samples (fun s -> float_of_int s.Nkctl.s_conns) in
  let fmin a = Array.fold_left Float.min infinity a in
  let fmax a = Array.fold_left Float.max neg_infinity a in
  let digits a =
    String.init (Array.length a) (fun i ->
        let v = Int.max 0 (Int.min 9 (int_of_float (Float.round a.(i)))) in
        Char.chr (Char.code '0' + v))
  in
  let frow name a render =
    [ name; Printf.sprintf "%.2f" (fmin a); Printf.sprintf "%.2f" (fmax a); render a ]
  in
  let rows =
    [
      frow "offered load (rps, 3 AGs)" offered sparkline;
      frow "NSM vCPU utilization" util sparkline;
      frow "active NSMs" nsms digits;
      frow "CE connection entries" conns sparkline;
    ]
  in
  Report.make ~id:"fig0708"
    ~title:"Autoscaling NSMs under the AG trace (Nkctl control plane)"
    ~headers:[ "series"; "min"; "max"; Printf.sprintf "time 0..%.0fs" duration ]
    ~notes:
      [
        Printf.sprintf
          "requests served %d, errors %d; scale-ups %d, scale-downs %d, handovers %d, \
           drains completed %d, failovers %d"
          completed errors stats.Nkctl.scale_ups stats.Nkctl.scale_downs
          stats.Nkctl.handovers stats.Nkctl.drains_completed stats.Nkctl.failovers;
        Printf.sprintf
          "policy: period 0.25s, watermarks 0.60/0.25, 1..4 x %d-vCPU kernel NSMs; \
           trace hour compressed %.0fx, rates x%.2f"
          nsm_vcpus time_compress rate_scale;
        "shape to check: active-NSM count follows the load - up at the spike, \
         consolidated at the trough; deterministic across runs";
      ]
    rows
