(* Fig 8 (use case 1, §6.1): multiplexing AGs onto one NSM.

   The three most-utilized AGs replay their (synthetic) traces:
   - Baseline: each AG is a 4-core VM (provisioned for peak) with its own
     in-guest stack — 12 cores total.
   - NetKernel: each AG is a 1-core VM holding only the application logic;
     one shared 5-core kernel-stack NSM carries the aggregate, plus the
     CoreEngine core — 9 cores total.

   Both systems must serve every request (no loss); the win is the per-core
   RPS: the paper reports +33% (12 -> 9 cores). Trace time is compressed
   (1 trace-minute = 1 simulated second) and rates scaled for simulation
   cost; both are noted in the report. *)

open Nkcore

let ag_app_cycles = 30_000.0 (* per-request application-gateway logic *)

let time_compress = 60.0 (* one trace minute per simulated second *)

let run_system ~system ~traces ~duration ~rate_scale ~tb_seed =
  let tb = Testbed.create ~config:{ Testbed.Config.default with seed = tb_seed } () in
  let hosta = Testbed.add_host tb ~name:"hostA" in
  let hostb = Testbed.add_host tb ~name:"hostB" in
  let nsm =
    match system with
    | `Netkernel -> Some (Nsm.create_kernel hosta ~name:"nsm" ~vcpus:5 ())
    | `Baseline -> None
  in
  let vms =
    List.mapi
      (fun i _trace ->
        let name = Printf.sprintf "ag%d" i in
        match nsm with
        | Some nsm -> Vm.create_nk hosta ~name ~vcpus:1 ~ips:[ 10 + i ] ~nsms:[ nsm ] ()
        | None -> Vm.create_baseline hosta ~name ~vcpus:4 ~ips:[ 10 + i ] ())
      traces
  in
  let client =
    Vm.create_baseline hostb ~name:"clients" ~vcpus:16
      ~ips:(List.init 8 (fun i -> 20 + i))
      ~profile:Sim.Cost_profile.ideal ()
  in
  let proto = Nkapps.Proto.Fixed { request = 256; response = 1024; keepalive = false } in
  let lgs =
    List.mapi
      (fun i (trace : Nktrace.Traffic.t) ->
        let vm = List.nth vms i in
        let addr = Addr.make (10 + i) 80 in
        let server =
          match
            Nkapps.Epoll_server.start ~engine:tb.Testbed.engine ~api:(Vm.api vm)
              (Nkapps.Epoll_server.config ~proto ~app_cycles:ag_app_cycles
                 ~app_cores:(Vm.cores vm) addr)
          with
          | Ok s -> s
          | Error e -> failwith (Tcpstack.Types.err_to_string e)
        in
        ignore server;
        let lg = ref None in
        ignore
          (Sim.Engine.schedule tb.Testbed.engine ~delay:1e-3 (fun () ->
               lg :=
                 Some
                   (Nkapps.Loadgen.start ~engine:tb.Testbed.engine ~api:(Vm.api client)
                      {
                        Nkapps.Loadgen.server = addr;
                        proto;
                        mode =
                          Nkapps.Loadgen.Open
                            {
                              rate_at =
                                (fun t ->
                                  rate_scale
                                  *. Nktrace.Traffic.rate_at trace (t *. time_compress));
                              duration;
                            };
                        warmup = 0.0;
                      })));
        lg)
      traces
  in
  Testbed.run tb ~until:(duration +. 0.5);
  let completed, errors =
    List.fold_left
      (fun (c, e) lg ->
        match !lg with
        | None -> (c, e)
        | Some lg ->
            let r = Nkapps.Loadgen.results lg in
            (c + r.Nkapps.Loadgen.completed, e + r.Nkapps.Loadgen.errors))
      (0, 0) lgs
  in
  (completed, errors)

let run ?(quick = false) () =
  let duration = if quick then 10.0 else 30.0 in
  let rate_scale = 0.5 in
  let fleet = Nktrace.Traffic.generate_fleet ~seed:2018 ~n:64 () in
  let traces = Nktrace.Traffic.top_k_by_utilization fleet 3 in
  let b_completed, b_errors =
    run_system ~system:`Baseline ~traces ~duration ~rate_scale ~tb_seed:7
  in
  let n_completed, n_errors =
    run_system ~system:`Netkernel ~traces ~duration ~rate_scale ~tb_seed:7
  in
  let baseline_cores = 12.0 and nk_cores = 9.0 in
  let per_core c cores = float_of_int c /. duration /. cores in
  let rows =
    [
      [
        "Baseline (3 x 4-core VMs)";
        "12";
        string_of_int b_completed;
        string_of_int b_errors;
        Report.cell_krps (per_core b_completed baseline_cores);
      ];
      [
        "NetKernel (3 x 1-core VMs + 5-core NSM + CE)";
        "9";
        string_of_int n_completed;
        string_of_int n_errors;
        Report.cell_krps (per_core n_completed nk_cores);
      ];
      [
        "per-core RPS gain";
        "";
        "";
        "";
        Printf.sprintf "%.0f%%"
          ((per_core n_completed nk_cores /. per_core b_completed baseline_cores -. 1.0)
          *. 100.0);
      ];
    ]
  in
  Report.make ~id:"fig08"
    ~title:"Multiplexing the 3 most-utilized AGs: trace replay, same served load"
    ~headers:[ "system"; "cores"; "requests served"; "errors"; "per-core RPS" ]
    ~notes:
      [
        "paper: 12 cores -> 9 cores for identical RPS and no loss; per-core RPS +33%";
        Printf.sprintf
          "substitution+scale-down: synthetic traces, time compressed %.0fx, rates x%.1f"
          time_compress rate_scale;
      ]
    rows
