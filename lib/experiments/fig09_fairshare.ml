(* Fig 9 (use case 2, §6.2): VM-level fair bandwidth sharing.

   A well-behaved VM with 8 flows competes with a selfish VM running 1..16
   flows over a shared 10G uplink.

   - Baseline: per-flow CUBIC — the selfish VM's share grows with its flow
     count (TCP flow-level fairness).
   - NetKernel: each VM's NSM runs the VM-level congestion controller
     ({!Tcpstack.Cc_vm}): one shared window per VM — the split stays ~50/50
     regardless of flow count. *)

open Nkcore
module T = Tcpstack

let flow_counts = [ 1; 2; 4; 8; 16 ]

let run_pair ~system ~selfish_flows ~duration =
  (* A shallow drop-tail switch buffer (1MB at 10G) so losses — not receive
     windows — govern the shares; synchronized overflow losses are exactly
     the signal the Seawall-style shared window divides fairly. *)
  let tb = Testbed.create
      ~config:
        { Testbed.Config.default with rate_gbps = 10.0; buffer_bytes = Some (1024 * 1024) }
      () in
  let hosta = Testbed.add_host tb ~name:"hostA" in
  let hostb = Testbed.add_host tb ~name:"hostB" in
  let mk_vm name ip =
    match system with
    | `Baseline -> Vm.create_baseline hosta ~name ~vcpus:2 ~ips:[ ip ] ()
    | `Netkernel ->
        (* One VM-CC NSM per VM: all of the VM's flows share one window. *)
        let group = T.Cc_vm.create_group ~mss:Segment.mss () in
        let nsm =
          Nsm.create_kernel hosta ~name:(name ^ ".nsm") ~vcpus:2
            ~cc_factory:(T.Cc_vm.factory group) ()
        in
        Vm.create_nk hosta ~name ~vcpus:2 ~ips:[ ip ] ~nsms:[ nsm ] ()
  in
  let vm1 = mk_vm "fair-vm" 10 in
  let vm2 = mk_vm "selfish-vm" 11 in
  let client =
    Vm.create_baseline hostb ~name:"client" ~vcpus:16 ~ips:[ 20 ]
      ~profile:Sim.Cost_profile.ideal ()
  in
  let sink port =
    match
      Nkapps.Stream.sink ~engine:tb.Testbed.engine ~api:(Vm.api client)
        ~addr:(Addr.make 20 port)
    with
    | Ok s -> s
    | Error e -> failwith (T.Types.err_to_string e)
  in
  let s1 = sink 5001 and s2 = sink 5002 in
  ignore
    (Sim.Engine.schedule tb.Testbed.engine ~delay:1e-3 (fun () ->
         ignore
           (Nkapps.Stream.senders ~engine:tb.Testbed.engine ~api:(Vm.api vm1)
              ~dst:(Addr.make 20 5001) ~streams:8 ~msg_size:16384 ~stop:duration ());
         ignore
           (Nkapps.Stream.senders ~engine:tb.Testbed.engine ~api:(Vm.api vm2)
              ~dst:(Addr.make 20 5002) ~streams:selfish_flows ~msg_size:16384
              ~stop:duration ())));
  Testbed.run tb ~until:(duration +. 0.1);
  (* Measure the steady second half of the run, past slow-start convergence. *)
  let steady sink =
    let ts = Nkapps.Stream.sink_timeseries sink in
    let bins = Nkutil.Timeseries.num_bins ts in
    let from = bins / 2 in
    let bytes = ref 0.0 in
    for b = from to bins - 1 do
      bytes := !bytes +. Nkutil.Timeseries.get ts b
    done;
    !bytes *. 8.0 /. (float_of_int (Int.max 1 (bins - from)) *. 0.1) /. 1e9
  in
  (steady s1, steady s2)

let run ?(quick = false) () =
  let duration = if quick then 2.0 else 6.0 in
  let rows =
    List.map
      (fun selfish_flows ->
        let b1, b2 = run_pair ~system:`Baseline ~selfish_flows ~duration in
        let n1, n2 = run_pair ~system:`Netkernel ~selfish_flows ~duration in
        [
          string_of_int selfish_flows;
          Printf.sprintf "%.1f / %.1f" b1 b2;
          Printf.sprintf "%.1f / %.1f" n1 n2;
          Printf.sprintf "%.2f"
            (Nkutil.Stats.jain_fairness [| n1; n2 |]);
        ])
      flow_counts
  in
  Report.make ~id:"fig09"
    ~title:
      "VM-level fair sharing on 10G: well-behaved VM (8 flows) vs selfish VM (N flows)"
    ~headers:
      [ "selfish flows"; "Baseline G (vm1/vm2)"; "NetKernel+VMCC G (vm1/vm2)"; "NK Jain" ]
    ~notes:
      [
        "paper: with the VM-level CC NSM the split stays ~equal regardless of flow count; \
         baseline TCP gives the selfish VM share proportional to its flows";
      ]
    rows
