(* Fig 11: CoreEngine switching throughput (single core) vs batch size.

   This drives the REAL mechanism — the actual NQE codec and the actual
   lockless SPSC rings through the CoreEngine's data movement: pop a batch
   from the source ring, decode the header, look up the connection table,
   copy into the destination ring — but charges every modeled operation its
   cycle cost from the calibrated NetKernel cost model (Nk_costs) instead of
   timing the host with a wall clock. Reported NQEs/s is therefore a pure
   function of the cost model at the paper's 2.3 GHz core clock and is
   bit-identical across runs and machines (nklint rule D1 forbids
   [Unix.gettimeofday] under lib/); wall-clock measurement of the same
   primitives lives in bench/main.ml where it belongs.

   The paper measures ~8M NQEs/s unbatched and 41.4M / 65.9M / up to 198M
   NQEs/s with batches of 4 / 8 / larger on a 2.3 GHz Xeon core; the shape
   (batching amortizes the per-iteration poll sweep across every registered
   device's queues) is reproduced from the same mechanism. *)

open Nkcore

let batch_sizes = [ 1; 4; 8; 16; 32; 64 ]

(* The paper's testbed core clock: converts modeled cycles to seconds. *)
let cycles_per_sec = 2.3e9

let run_one ~batch ~iterations =
  let costs = Nk_costs.default in
  let src = Nkutil.Spsc_ring.create ~capacity:4096 in
  let dst = Nkutil.Spsc_ring.create ~capacity:4096 in
  (* CoreEngine sweeps every registered device's queues each polling
     iteration; most are empty. Smaller batches pay that sweep more often —
     this is exactly what the paper's Fig 11 batching amortizes. *)
  let idle_queues = Array.init 32 (fun _ -> Nkutil.Spsc_ring.create ~capacity:64) in
  let poll_idle () =
    Array.iter (fun q -> ignore (Nkutil.Spsc_ring.pop q)) idle_queues
  in
  let sweep_cycles = costs.Nk_costs.ce_poll_iter *. float_of_int (Array.length idle_queues + 1) in
  let per_nqe_cycles = costs.Nk_costs.nqe_decode +. costs.Nk_costs.ce_switch in
  let table = Hashtbl.create 1024 in
  Hashtbl.replace table (1, 42) (0, 0);
  let proto =
    Nqe.encode
      (Nqe.make ~op:Nqe.Send ~vm_id:1 ~qset:0 ~sock:42 ~data_ptr:4096 ~size:8192 ())
  in
  (* Pre-fill a pool of independent 32-byte NQEs (CoreEngine never reuses a
     buffer before the consumer drained it). *)
  let pool = Array.init 4096 (fun _ -> Bytes.copy proto) in
  let switched = ref 0 in
  let cycles = ref 0.0 in
  for i = 0 to iterations - 1 do
    poll_idle ();
    cycles := !cycles +. sweep_cycles;
    (* producer side: enqueue a batch *)
    for j = 0 to batch - 1 do
      ignore (Nkutil.Spsc_ring.push src pool.(((i * batch) + j) land 4095))
    done;
    (* CoreEngine: pop batch, decode, look up, copy into destination *)
    let rec loop n =
      if n < batch then
        match Nkutil.Spsc_ring.pop src with
        | None -> ()
        | Some raw ->
            (match Nqe.decode raw with
            | Ok nqe ->
                (match Hashtbl.find_opt table (nqe.Nqe.vm_id, nqe.Nqe.sock) with
                | Some _ -> ()
                | None -> Hashtbl.replace table (nqe.Nqe.vm_id, nqe.Nqe.sock) (0, 0));
                ignore (Nkutil.Spsc_ring.push dst raw);
                cycles := !cycles +. per_nqe_cycles;
                incr switched
            | Error _ -> ());
            loop (n + 1)
    in
    loop 0;
    (* consumer side: drain the destination *)
    let rec drain () =
      match Nkutil.Spsc_ring.pop dst with Some _ -> drain () | None -> ()
    in
    drain ()
  done;
  float_of_int !switched /. (!cycles /. cycles_per_sec)

let run ?(quick = false) () =
  let iterations = if quick then 20_000 else 100_000 in
  let rows =
    List.map
      (fun batch ->
        let rate = run_one ~batch ~iterations:(iterations / batch) in
        [ string_of_int batch; Printf.sprintf "%.1fM" (rate /. 1e6) ])
      batch_sizes
  in
  Report.make ~id:"fig11" ~title:"CoreEngine NQE switching throughput vs batch size"
    ~headers:[ "batch size"; "NQEs/s" ]
    ~notes:
      [
        "deterministic microbenchmark: real codec + rings, cycle-cost model (Nk_costs) \
         at 2.3 GHz — wall-clock timing lives in bench/main.ml";
        "paper, 2.3GHz Xeon core: ~8M/s unbatched; 41.4M/s at batch 4; 65.9M/s at 8; up \
         to 198M/s";
        "shape to check: throughput grows with batch size then saturates";
      ]
    rows
