(* Fig 12: message copy throughput through hugepages vs message size.

   Deterministic microbenchmark of the paper's §7.2 memory-copy path: the
   sender copies a message into the hugepage region and builds a send NQE
   with the data pointer; the NQE crosses two rings (GuestLib device ->
   CoreEngine -> ServiceLib device); the receiver resolves the pointer and
   copies the message out. The data movement is real; time is charged from
   the calibrated cycle-cost model (Nk_costs) with the memory-bandwidth
   pressure feedback of Sim.Pressure (the Table 6 mechanism: per-byte copy
   cost grows with the modeled throughput), so the result is bit-identical
   across runs and machines. Wall-clock measurement of the raw primitives
   lives in bench/main.ml (nklint rule D1 keeps wall clocks out of lib/).

   Paper: >100 Gb/s for messages >= 4KB, ~144 Gb/s at 8KB. *)

open Nkcore

let sizes = [ 64; 256; 1024; 4096; 8192; 16384; 65536 ]

(* The paper's testbed core clock: converts modeled cycles to seconds. *)
let cycles_per_sec = 2.3e9

let run_one ~size ~iterations =
  let costs = Nk_costs.default in
  let engine = Sim.Engine.create () in
  (* A time constant that spans many modeled messages at every size (the
     largest message costs a few µs of modeled time): long enough to damp
     the quadratic contention feedback into its fixed point, short enough
     to converge well inside the run (the default 10 ms tau is sized for
     full simulation runs, not a microbenchmark's sub-ms horizon). *)
  let pressure = Sim.Pressure.create engine ~tau:1e-4 () in
  let hp = Hugepages.create ~page_size:(2 * 1024 * 1024) ~pages:8 () in
  let ring_a = Nkutil.Spsc_ring.create ~capacity:1024 in
  let ring_b = Nkutil.Spsc_ring.create ~capacity:1024 in
  let message = String.make size 'x' in
  let out = Bytes.create size in
  let moved = ref 0 in
  let cycles = ref 0.0 in
  for _ = 1 to iterations do
    (match Hugepages.alloc hp size with
    | None -> failwith "fig12: hugepage exhausted"
    | Some extent ->
        (* sender: copy in, emit NQE *)
        Hugepages.write_payload hp extent (Tcpstack.Types.Data message);
        let nqe =
          Nqe.encode
            (Nqe.make ~op:Nqe.Send ~vm_id:1 ~qset:0 ~sock:7
               ~data_ptr:extent.Hugepages.offset ~size ())
        in
        ignore (Nkutil.Spsc_ring.push ring_a nqe);
        (* CoreEngine: one ring to the other *)
        (match Nkutil.Spsc_ring.pop ring_a with
        | Some raw -> ignore (Nkutil.Spsc_ring.push ring_b raw)
        | None -> ());
        (* receiver: decode, copy out, free *)
        (match Nkutil.Spsc_ring.pop ring_b with
        | Some raw -> (
            match Nqe.decode raw with
            | Ok d -> (
                match
                  Hugepages.read_payload hp
                    { Hugepages.offset = d.Nqe.data_ptr; len = d.Nqe.size }
                    ~pos:0 ~len:d.Nqe.size ~synthetic:false
                with
                | Tcpstack.Types.Data s ->
                    Bytes.blit_string s 0 out 0 (String.length s);
                    moved := !moved + d.Nqe.size
                | Tcpstack.Types.Zeros _ -> ())
            | Error _ -> ())
        | None -> ());
        Hugepages.free hp extent;
        (* charge the modeled path: alloc + encode + switch + decode plus
           the two pressure-dependent hugepage copies (in and out) *)
        let msg_cycles =
          costs.Nk_costs.hugepage_alloc +. costs.Nk_costs.nqe_encode
          +. costs.Nk_costs.ce_switch +. costs.Nk_costs.nqe_decode
          +. (2.0 *. Nk_costs.hugepage_copy_cycles costs pressure size)
        in
        cycles := !cycles +. msg_cycles;
        (* advance virtual time and feed the bandwidth estimator, closing
           the Table 6 contention loop deterministically *)
        Sim.Engine.run engine ~until:(Sim.Engine.now engine +. (msg_cycles /. cycles_per_sec));
        Sim.Pressure.observe pressure ~bits:(8.0 *. float_of_int size))
  done;
  float_of_int !moved *. 8.0 /. (!cycles /. cycles_per_sec) /. 1e9

let run ?(quick = false) () =
  let iterations = if quick then 512 else 2048 in
  let rows =
    List.map
      (fun size ->
        let gbps = run_one ~size ~iterations in
        [ Format.asprintf "%a" Nkutil.Units.pp_bytes size; Printf.sprintf "%.1f" gbps ])
      sizes
  in
  Report.make ~id:"fig12" ~title:"Hugepage message copy throughput vs message size"
    ~headers:[ "message size"; "Gb/s" ]
    ~notes:
      [
        "deterministic microbenchmark: real copy path, cycle-cost model (Nk_costs + \
         Sim.Pressure bandwidth feedback) at 2.3 GHz — wall-clock timing lives in \
         bench/main.ml";
        "paper: >100 Gb/s from 4KB messages; ~144 Gb/s at 8KB";
        "shape to check: rises with message size (per-message costs amortize), then \
         saturates at the modeled memory-bandwidth limit";
      ]
    rows
