(* Figs 18-19: throughput scalability with vCPUs. 8 TCP streams, 8KB
   messages; NetKernel gives the NSM the same number of vCPUs as the VM.

   Paper: send reaches the ~94 Gb/s line rate with 3 vCPUs (Fig 18);
   receive scales to 91 Gb/s at 8 vCPUs (Fig 19); NK == Baseline. *)

let vcpu_points = [ 1; 2; 3; 4; 8 ]

let figure ~id ~title ~direction ~duration ~ce_cores ~notes =
  let rows =
    List.map
      (fun vcpus ->
        let baseline =
          let w = Worlds.baseline ~config:{ Worlds.Config.default with vcpus } () in
          match direction with
          | `Send -> Worlds.measure_send_throughput w ~streams:8 ~msg_size:8192 ~duration ()
          | `Recv -> Worlds.measure_recv_throughput w ~streams:8 ~msg_size:8192 ~duration ()
        in
        let nk =
          let w =
            Worlds.netkernel
              ~config:{ Worlds.Config.default with vcpus; nsm_cores = vcpus; ce_cores }
              ()
          in
          match direction with
          | `Send -> Worlds.measure_send_throughput w ~streams:8 ~msg_size:8192 ~duration ()
          | `Recv -> Worlds.measure_recv_throughput w ~streams:8 ~msg_size:8192 ~duration ()
        in
        [ string_of_int vcpus; Report.cell_gbps baseline; Report.cell_gbps nk ])
      vcpu_points
  in
  Report.make ~id ~title ~headers:[ "vCPUs"; "Baseline Gb/s"; "NetKernel Gb/s" ] ~notes rows

let run_fig18 ?(quick = false) ?(ce_cores = 1) () =
  figure ~id:"fig18" ~title:"Send throughput scaling, 8 streams x 8KB"
    ~direction:`Send
    ~duration:(if quick then 0.3 else 1.0)
    ~ce_cores
    ~notes:[ "paper: line rate (~94 Gb/s after framing) from 3 vCPUs; NK == Baseline" ]

let run_fig19 ?(quick = false) ?(ce_cores = 1) () =
  figure ~id:"fig19" ~title:"Receive throughput scaling, 8 streams x 8KB"
    ~direction:`Recv
    ~duration:(if quick then 0.3 else 1.0)
    ~ce_cores
    ~notes:[ "paper: 91 Gb/s at 8 vCPUs, near-linear scaling; NK == Baseline" ]
