(* Fig 20: short-connection RPS scaling with vCPUs, 64B messages,
   concurrency 1000, SO_REUSEPORT-style parallel accepts. Kernel-stack and
   mTCP NSMs (the paper runs mTCP at 1/2/4/8 vCPUs only).

   Paper: Baseline == NetKernel(kernel) reaching ~400K rps at 8 vCPUs
   (5.7x one core); mTCP: 190K / 366K / 652K / 1.1M rps. *)

let run ?(quick = false) ?(ce_cores = 1) () =
  let total n = (if quick then 4_000 else 20_000) * n in
  let kernel_points = [ 1; 2; 3; 4; 8 ] in
  let mtcp_points = [ 1; 2; 4; 8 ] in
  let measure_baseline vcpus =
    let w = Worlds.baseline ~config:{ Worlds.Config.default with vcpus } () in
    (Worlds.measure_rps w ~concurrency:1000 ~total:(total vcpus) ()).Worlds.rps
  in
  let measure_nk kind vcpus =
    let w =
      Worlds.netkernel
        ~config:
          { Worlds.Config.default with vcpus; nsm_cores = vcpus; nsm_kind = kind; ce_cores }
        ()
    in
    (Worlds.measure_rps w ~concurrency:1000 ~total:(total vcpus) ()).Worlds.rps
  in
  let rows =
    List.map
      (fun vcpus ->
        let baseline = measure_baseline vcpus in
        let nk_kernel = measure_nk `Kernel vcpus in
        let nk_mtcp =
          if List.mem vcpus mtcp_points then Report.cell_krps (measure_nk `Mtcp vcpus)
          else "-"
        in
        [
          string_of_int vcpus;
          Report.cell_krps baseline;
          Report.cell_krps nk_kernel;
          nk_mtcp;
        ])
      kernel_points
  in
  Report.make ~id:"fig20"
    ~title:"Short-connection RPS scaling with vCPUs (64B messages, concurrency 1000)"
    ~headers:[ "vCPUs"; "Baseline"; "NK kernel NSM"; "NK mTCP NSM" ]
    ~notes:
      [
        "paper: kernel reaches ~400K rps at 8 vCPUs (5.7x single core); NK == Baseline";
        "paper mTCP NSM: 190K / 366K / 652K / 1.1M rps at 1/2/4/8 vCPUs";
        "scale-down: 20K requests per vCPU per point (paper: 10M total)";
      ]
    rows
