(* Fig 21: isolation between VMs sharing one NSM.

   Three NK VMs share a 1-vCPU kernel-stack NSM with a 10G uplink. VM1 is
   capped at 1 Gb/s (joins at 0s, leaves at 25s), VM2 at 500 Mb/s (4.5s to
   21s), VM3 is uncapped (8s to 30s). CoreEngine token buckets enforce the
   caps; VM3 takes the remaining capacity, work-conserving.

   Paper: VM1 and VM2 pinned at their caps; VM3 gets ~8.5G, then 9G after
   VM2 leaves, 10G after VM1 leaves. *)

open Nkcore

let run ?(quick = false) () =
  let horizon = if quick then 15.0 else 30.0 in
  let scale = horizon /. 30.0 in
  let tb = Testbed.create ~config:{ Testbed.Config.default with rate_gbps = 10.0 } () in
  let hosta = Testbed.add_host tb ~name:"hostA" in
  let hostb = Testbed.add_host tb ~name:"hostB" in
  let nsm = Nsm.create_kernel hosta ~name:"nsm" ~vcpus:1 () in
  let vms =
    List.init 3 (fun i ->
        Vm.create_nk hosta ~name:(Printf.sprintf "vm%d" (i + 1)) ~vcpus:1
          ~ips:[ 10 + i ] ~nsms:[ nsm ] ())
  in
  let client =
    Vm.create_baseline hostb ~name:"client" ~vcpus:16 ~ips:[ 20 ]
      ~profile:Sim.Cost_profile.ideal ()
  in
  let ce = Host.coreengine hosta in
  Coreengine.set_rate_limit ce ~vm_id:(Vm.vm_id (List.nth vms 0))
    ~bytes_per_sec:(1e9 /. 8.0);
  Coreengine.set_rate_limit ce ~vm_id:(Vm.vm_id (List.nth vms 1))
    ~bytes_per_sec:(0.5e9 /. 8.0);
  (* One sink per VM so throughput is attributable. *)
  let sinks =
    List.mapi
      (fun i _vm ->
        match
          Nkapps.Stream.sink ~engine:tb.Testbed.engine ~api:(Vm.api client)
            ~addr:(Addr.make 20 (5001 + i))
        with
        | Ok s -> s
        | Error e -> failwith (Tcpstack.Types.err_to_string e))
      vms
  in
  let windows = [ (0.0, 25.0); (4.5, 21.0); (8.0, 30.0) ] in
  List.iteri
    (fun i vm ->
      let start, stop = List.nth windows i in
      ignore
        (Nkapps.Stream.senders ~engine:tb.Testbed.engine ~api:(Vm.api vm)
           ~dst:(Addr.make 20 (5001 + i))
           ~streams:4 ~msg_size:65536
           ~start:(Float.max 1e-3 (start *. scale))
           ~stop:(stop *. scale) ()))
    vms;
  Testbed.run tb ~until:(horizon +. 0.2);
  (* Report 1-second average throughput per VM (the figure's series). *)
  let series = List.map Nkapps.Stream.sink_timeseries sinks in
  let seconds = int_of_float horizon in
  let rows =
    List.init seconds (fun sec ->
        let cell ts =
          (* sum ten 100ms bins *)
          let bytes = ref 0.0 in
          for b = sec * 10 to (sec * 10) + 9 do
            bytes := !bytes +. Nkutil.Timeseries.get ts b
          done;
          Printf.sprintf "%.2f" (!bytes *. 8.0 /. 1e9)
        in
        string_of_int sec :: List.map cell series)
  in
  Report.make ~id:"fig21"
    ~title:"Isolation: per-VM throughput (Gb/s per 1s bin), shared kernel NSM on 10G"
    ~headers:[ "t (s)"; "VM1 (cap 1G)"; "VM2 (cap 0.5G)"; "VM3 (uncapped)" ]
    ~notes:
      [
        "paper: VM1/VM2 pinned at caps through arrivals/departures; VM3 work-conserving \
         (~8.5G, 9G after VM2 leaves, 10G after VM1 leaves)";
        (if quick then "time compressed 2x for the quick run" else "full 30s run");
      ]
    rows
