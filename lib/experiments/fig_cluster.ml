(* fig-cluster (beyond the paper, §2/§8 taken across the host boundary):
   a two-node Nkfabric cluster serving keep-alive RPC traffic while NSMs
   are live-migrated between hosts mid-run.

   Four server VMs are spread across node A and node B (two kernel NSMs,
   one per node); a baseline client host drives a closed loop of
   keep-alive requests at each VM, so every connection established before
   the migration must survive it. At one third of the run node A's NSM is
   live-migrated to node B (quick mode stops there); at two thirds the
   full run migrates node B's original NSM to node A, swapping the
   serving load between the hosts a second time.

   Shape to check: per-node NSM utilization crosses over at each
   migration (A's pool empties, B's picks up the relayed VMs, then the
   reverse), the spine NQE counter only moves after the first cut, and
   the client sees zero errors — no connection is reset by either
   migration. Deterministic: byte-identical output across runs. *)

open Nkcore

let sparkline values =
  let ramp = [| ' '; '.'; ':'; '-'; '='; '+'; '*'; '#' |] in
  let peak = Array.fold_left Float.max 1e-9 values in
  String.init (Array.length values) (fun i ->
      let level = int_of_float (values.(i) /. peak *. 7.0) in
      ramp.(Int.max 0 (Int.min 7 level)))

(* Bucket a (time, value) series into [k] equal bins over [0, duration],
   averaging within each bin (empty bins repeat the previous value). *)
let bucket ~k ~duration series =
  let sums = Array.make k 0.0 and counts = Array.make k 0 in
  List.iter
    (fun (time, v) ->
      let i = Int.min (k - 1) (Int.max 0 (int_of_float (time /. duration *. float_of_int k))) in
      sums.(i) <- sums.(i) +. v;
      counts.(i) <- counts.(i) + 1)
    series;
  let out = Array.make k 0.0 in
  let prev = ref 0.0 in
  for i = 0 to k - 1 do
    if counts.(i) > 0 then prev := sums.(i) /. float_of_int counts.(i);
    out.(i) <- !prev
  done;
  out

let n_vms = 4

let run ?(quick = false) () =
  let duration = if quick then 6.0 else 15.0 in
  let tb = Testbed.create ~config:{ Testbed.Config.default with seed = 7 } () in
  let cluster = Nkfabric.create ~policy:Nkfabric.Spread tb in
  let nodea = Nkfabric.add_node cluster ~name:"nodeA" in
  let nodeb = Nkfabric.add_node cluster ~name:"nodeB" in
  let nsma = Nsm.create_kernel (Nkfabric.node_host nodea) ~name:"nsmA" ~vcpus:1 () in
  let nsmb = Nsm.create_kernel (Nkfabric.node_host nodeb) ~name:"nsmB" ~vcpus:1 () in
  Nkfabric.add_nsm cluster nodea nsma;
  Nkfabric.add_nsm cluster nodeb nsmb;
  (* Spread placement: VMs alternate A, B, A, B (equal utilization, ties by
     VM count then node order). *)
  let vms =
    List.init n_vms (fun i ->
        Nkfabric.place_vm cluster
          ~name:(Printf.sprintf "srv%d" i)
          ~vcpus:1 ~ips:[ 10 + i ] ())
  in
  let clients_host = Testbed.add_host tb ~name:"clients" in
  let client =
    Vm.create_baseline clients_host ~name:"clients" ~vcpus:16
      ~ips:(List.init 8 (fun i -> 100 + i))
      ~profile:Sim.Cost_profile.ideal ()
  in
  (* Keep-alive: the same connections carry requests across the migration
     cut, so any reset shows up as a client error. *)
  let proto = Nkapps.Proto.Fixed { request = 128; response = 1024; keepalive = true } in
  let lgs =
    List.mapi
      (fun i vm ->
        let addr = Addr.make (10 + i) 80 in
        (match
           Nkapps.Epoll_server.start ~engine:tb.Testbed.engine ~api:(Vm.api vm)
             (Nkapps.Epoll_server.config ~proto addr)
         with
        | Ok _ -> ()
        | Error e -> failwith (Tcpstack.Types.err_to_string e));
        let lg = ref None in
        ignore
          (Sim.Engine.schedule tb.Testbed.engine ~delay:1e-3 (fun () ->
               lg :=
                 Some
                   (Nkapps.Loadgen.start ~engine:tb.Testbed.engine ~api:(Vm.api client)
                      {
                        Nkapps.Loadgen.server = addr;
                        proto;
                        mode =
                          Nkapps.Loadgen.Closed
                            { concurrency = 8; total = None; duration = Some (duration -. 0.5) };
                        warmup = 0.0;
                      })));
        lg)
      vms
  in
  let migration_times = ref [] in
  ignore
    (Sim.Engine.schedule tb.Testbed.engine ~delay:(duration /. 3.0) (fun () ->
         ignore (Nkfabric.migrate_nsm cluster ~nsm:nsma ~dst:nodeb ());
         migration_times := Sim.Engine.now tb.Testbed.engine :: !migration_times));
  if not quick then
    ignore
      (Sim.Engine.schedule tb.Testbed.engine
         ~delay:(2.0 *. duration /. 3.0)
         (fun () ->
           ignore (Nkfabric.migrate_nsm cluster ~nsm:nsmb ~dst:nodea ());
           migration_times := Sim.Engine.now tb.Testbed.engine :: !migration_times));
  (* Sample windowed per-node utilization over the node's current NSM pool
     (a just-emptied pool reads as zero — exactly the load shift we want to
     see), plus served-VM counts and the cumulative spine NQE counter. *)
  let nodes = [| nodea; nodeb |] in
  let prev_busy = Array.make (Array.length nodes) 0.0 in
  let prev_t = ref 0.0 in
  let samples = ref [] in
  let node_busy n =
    List.fold_left (fun acc nsm -> acc +. Nsm.busy_cycles nsm) 0.0 (Nkfabric.node_nsms n)
  in
  let node_cap n =
    List.fold_left
      (fun acc nsm ->
        Array.fold_left
          (fun acc core -> acc +. Sim.Cpu.freq_hz core)
          acc
          (Sim.Cpu.Set.cores (Nsm.cores nsm)))
      0.0 (Nkfabric.node_nsms n)
  in
  let period = 0.1 in
  let rec tick () =
    let t = Sim.Engine.now tb.Testbed.engine in
    let dt = t -. !prev_t in
    if dt > 0.0 then begin
      let util =
        Array.mapi
          (fun i n ->
            let busy = node_busy n in
            let delta = Float.max 0.0 (busy -. prev_busy.(i)) in
            prev_busy.(i) <- busy;
            let cap = node_cap n in
            if cap <= 0.0 then 0.0 else Float.min 1.0 (delta /. (cap *. dt)))
          nodes
      in
      let counts = Array.map (fun n -> Nkfabric.node_vm_count cluster n) nodes in
      let st = Nkfabric.stats cluster in
      samples := (t, util, counts, st.Nkfabric.nqes_shipped) :: !samples;
      prev_t := t
    end;
    if t < duration then ignore (Sim.Engine.schedule tb.Testbed.engine ~delay:period tick)
  in
  ignore (Sim.Engine.schedule tb.Testbed.engine ~delay:period tick);
  Testbed.run tb ~until:(duration +. 0.5);
  let completed, errors =
    List.fold_left
      (fun (c, e) lg ->
        match !lg with
        | None -> (c, e)
        | Some lg ->
            let r = Nkapps.Loadgen.results lg in
            (c + r.Nkapps.Loadgen.completed, e + r.Nkapps.Loadgen.errors))
      (0, 0) lgs
  in
  let samples = List.rev !samples in
  let k = 40 in
  let series f = bucket ~k ~duration (List.map f samples) in
  let util_a = series (fun (t, u, _, _) -> (t, u.(0))) in
  let util_b = series (fun (t, u, _, _) -> (t, u.(1))) in
  let vms_a = series (fun (t, _, c, _) -> (t, float_of_int c.(0))) in
  let vms_b = series (fun (t, _, c, _) -> (t, float_of_int c.(1))) in
  let spine =
    (* per-bucket growth of the cumulative spine counter *)
    let cum = series (fun (t, _, _, nq) -> (t, float_of_int nq)) in
    Array.mapi (fun i v -> if i = 0 then v else Float.max 0.0 (v -. cum.(i - 1))) cum
  in
  let st = Nkfabric.stats cluster in
  let fmin a = Array.fold_left Float.min infinity a in
  let fmax a = Array.fold_left Float.max neg_infinity a in
  let digits a =
    String.init (Array.length a) (fun i ->
        let v = Int.max 0 (Int.min 9 (int_of_float (Float.round a.(i)))) in
        Char.chr (Char.code '0' + v))
  in
  let frow name a render =
    [ name; Printf.sprintf "%.2f" (fmin a); Printf.sprintf "%.2f" (fmax a); render a ]
  in
  let rows =
    [
      frow "nodeA NSM vCPU utilization" util_a sparkline;
      frow "nodeB NSM vCPU utilization" util_b sparkline;
      frow "VMs served on nodeA" vms_a digits;
      frow "VMs served on nodeB" vms_b digits;
      frow "spine NQEs shipped (per bucket)" spine sparkline;
    ]
  in
  Report.make ~id:"fig-cluster"
    ~title:"Cluster fabric: cross-host live NSM migration (Nkfabric)"
    ~headers:[ "series"; "min"; "max"; Printf.sprintf "time 0..%.0fs" duration ]
    ~notes:
      [
        Printf.sprintf
          "requests served %d, errors %d; migrations %d, VMs relayed %d, spine NQEs %d \
           (%d bytes)"
          completed errors st.Nkfabric.migrations st.Nkfabric.vms_relayed
          st.Nkfabric.nqes_shipped st.Nkfabric.bytes_shipped;
        Printf.sprintf "migrations at [%s] of a %.0fs run; %d VMs spread over 2 nodes, \
                        keep-alive closed loop x8 per VM"
          (String.concat "; "
             (List.rev_map (fun t -> Printf.sprintf "%.2fs" t) !migration_times))
          duration n_vms;
        "shape to check: per-node utilization crosses over at each migration, spine \
         traffic starts at the first cut, and errors stay zero (no connection is \
         reset by a migration)";
      ]
    rows
