(* Incast: N-to-1 RPC fan-in into one aggregator, before and after a live
   TCP → Homa protocol handover.

   One tenant runs an aggregation tier on a single host: N worker VMs fire
   closed-loop RPCs at one aggregator VM whose listener has a small accept
   backlog, all homed on one shared kernel-TCP NSM. The synchronized
   connection bursts overflow the SYN backlog; dropped SYNs are silent, so
   the affected workers stall in the client's SYN retransmit timer (>= 0.5 s)
   and the tail latency is thousands of times the median — the classic
   incast/backlog pathology.

   Mid-experiment the operator performs a live protocol handover
   ({!Nkctl.switch_protocol}): a Homa NSM is spawned and every tenant VM is
   re-homed onto it — listeners are transparently replayed by GuestLib, new
   sockets speak Homa, the application binaries are untouched. Homa has no
   backlog to overflow (REQUESTs are admitted on first contact and paced by
   receiver grants), so the same workload's p99 collapses back toward the
   median.

   Shape to check: p99 before the switch is dominated by the 0.5 s+ SYN
   retransmit stalls; after the switch p99 is within a small factor of p50.
   The whole run is deterministic — two invocations print byte-identical
   reports. *)

open Nkcore

let agg_ip = 10

let worker_ip i = 20 + i

let backlog = 4

let merge_latencies lgs =
  let h = Nkutil.Histogram.create () in
  let completed = ref 0 and errors = ref 0 in
  List.iter
    (fun lg ->
      match !lg with
      | None -> ()
      | Some lg ->
          let r = Nkapps.Loadgen.results lg in
          completed := !completed + r.Nkapps.Loadgen.completed;
          errors := !errors + r.Nkapps.Loadgen.errors;
          Nkutil.Histogram.merge_into ~src:r.Nkapps.Loadgen.latency ~dst:h)
    lgs;
  (h, !completed, !errors)

let start_phase tb workers ~addr ~proto ~per_worker =
  List.map
    (fun vm ->
      let lg = ref None in
      ignore
        (Sim.Engine.schedule tb.Testbed.engine ~delay:1e-3 (fun () ->
             lg :=
               Some
                 (Nkapps.Loadgen.start ~engine:tb.Testbed.engine ~api:(Vm.api vm)
                    {
                      Nkapps.Loadgen.server = addr;
                      proto;
                      mode =
                        Nkapps.Loadgen.Closed
                          { concurrency = 1; total = Some per_worker; duration = None };
                      warmup = 0.0;
                    })));
      lg)
    workers

let run ?(quick = false) () =
  let n_workers = if quick then 12 else 24 in
  let per_worker = if quick then 6 else 20 in
  let phase_window = if quick then 30.0 else 60.0 in
  let tb = Testbed.create ~config:{ Testbed.Config.default with seed = 11 } () in
  let host = Testbed.add_host tb ~name:"hostA" in
  Host.enable_netkernel host;
  let nsm_tcp = Nsm.create_kernel host ~name:"nsm-tcp" ~vcpus:2 () in
  let agg = Vm.create_nk host ~name:"agg" ~vcpus:2 ~ips:[ agg_ip ] ~nsms:[ nsm_tcp ] () in
  let workers =
    List.init n_workers (fun i ->
        Vm.create_nk host
          ~name:(Printf.sprintf "worker%d" i)
          ~vcpus:1
          ~ips:[ worker_ip i ]
          ~nsms:[ nsm_tcp ] ())
  in
  let ctl = Nkctl.create host ~spawn:(fun _ -> assert false) () in
  Nkctl.manage ctl nsm_tcp;
  Nkctl.add_vm ctl agg ~home:nsm_tcp;
  List.iter (fun vm -> Nkctl.add_vm ctl vm ~home:nsm_tcp) workers;
  let proto = Nkapps.Proto.Fixed { request = 256; response = 256; keepalive = false } in
  let addr = Addr.make agg_ip 80 in
  (match
     Nkapps.Epoll_server.start ~engine:tb.Testbed.engine ~api:(Vm.api agg)
       (Nkapps.Epoll_server.config ~backlog ~proto addr)
   with
  | Ok _ -> ()
  | Error e -> failwith (Tcpstack.Types.err_to_string e));
  (* Phase A: the fan-in over the shared kernel-TCP NSM. *)
  let lgs_tcp = start_phase tb workers ~addr ~proto ~per_worker in
  Testbed.run tb ~until:phase_window;
  let tcp_hist, tcp_done, tcp_errs = merge_latencies lgs_tcp in
  let tcp_syn_drops =
    List.fold_left
      (fun acc (s : Tcpstack.Stack.stats) -> acc + s.Tcpstack.Stack.syn_drops)
      0 (Nsm.stack_stats nsm_tcp)
  in
  (* The live protocol handover: one Homa NSM for the tenant, every VM
     re-homed. The aggregator goes first so its listener is already
     speaking Homa when the workers' fresh sockets arrive. *)
  let nsm_homa = Nsm.create_homa host ~name:"nsm-homa" ~vcpus:2 () in
  Nkctl.manage ctl nsm_homa;
  Nkctl.switch_protocol ctl ~vm:agg ~target:nsm_homa;
  List.iter (fun vm -> Nkctl.switch_protocol ctl ~vm ~target:nsm_homa) workers;
  (* Phase B: the same workload over the Homa NSM. *)
  let t_switch = Sim.Engine.now tb.Testbed.engine in
  let lgs_homa = start_phase tb workers ~addr ~proto ~per_worker in
  Testbed.run tb ~until:(t_switch +. phase_window);
  let homa_hist, homa_done, homa_errs = merge_latencies lgs_homa in
  let stats = Nkctl.stats ctl in
  let pct label h = Report.percentiles_of ~label h in
  let p_tcp = pct "tcp-before" tcp_hist in
  let p_homa = pct "homa-after" homa_hist in
  let row phase (p : Report.pctl) completed errs =
    [
      phase;
      string_of_int n_workers;
      string_of_int completed;
      string_of_int errs;
      Report.cell_f ~decimals:3 p.Report.p50_ms;
      Report.cell_f ~decimals:3 p.Report.p99_ms;
      Report.cell_f ~decimals:3 p.Report.p999_ms;
    ]
  in
  Report.make ~id:"incast"
    ~title:"N-to-1 incast: live TCP->Homa protocol handover (Nkctl)"
    ~headers:[ "phase"; "workers"; "completed"; "errors"; "p50 ms"; "p99 ms"; "p99.9 ms" ]
    ~notes:
      [
        Printf.sprintf
          "backlog %d, %d workers x %d closed-loop RPCs per phase, 256B request/response, \
           no keepalive; one shared kernel-TCP NSM, then one Homa NSM"
          backlog n_workers per_worker;
        Printf.sprintf
          "TCP phase: %d silent SYN drops -> clients stall in the 0.5s+ SYN retransmit \
           timer (the p99/p50 gap); Homa admits REQUESTs on first contact (no backlog)"
          tcp_syn_drops;
        Printf.sprintf
          "protocol handover: Nkctl.switch_protocol re-homed %d VMs (listener replayed \
           by GuestLib, binaries untouched); control plane recorded %d protocol switches"
          (n_workers + 1) stats.Nkctl.protocol_switches;
        "shape to check: p99 collapses toward p50 after the switch; byte-identical \
         report across runs";
      ]
    ~percentiles:[ p_tcp; p_homa ]
    [ row "tcp (before)" p_tcp tcp_done tcp_errs;
      row "homa (after)" p_homa homa_done homa_errs ]
