(* Per-stage latency decomposition of the NetKernel request path (the
   latency analogue of the paper's Table 6 cycle breakdown).

   Nkspan samples one in [span_every] requests at the GuestLib send call;
   the span id rides the NQE through CoreEngine, ServiceLib and the stack,
   and every component records its stage against virtual time. Stage
   segments tile the request's lifetime — the implicit "ring" stage owns
   whatever no component claims — so per-stage mean latencies sum to the
   end-to-end mean exactly (up to float rounding), which the reported
   "sum of stages" row makes visible. *)

let us v = v *. 1e6

let fmt_us v = Printf.sprintf "%.2f" (us v)

(* Runs the workload and returns the report together with the world's span
   recorder, so [nk span] can also export the catapult trace of the same
   run. *)
let run_world ?(quick = false) ?(span_every = 16) ?(ce_cores = 1) () =
  let total = if quick then 4_000 else 20_000 in
  let w =
    Worlds.netkernel
      ~config:
        (Worlds.Config.with_span_every span_every { Worlds.Config.default with ce_cores })
      ()
  in
  let r = Worlds.measure_rps w ~concurrency:32 ~total () in
  let spans = w.Worlds.tb.Nkcore.Testbed.spans in
  let b = Nkspan.breakdown spans in
  let module H = Nkutil.Histogram in
  let stage_row (name, h) =
    [ name; fmt_us (H.mean h); fmt_us (H.percentile h 50.0); fmt_us (H.percentile h 90.0);
      fmt_us (H.percentile h 99.0); fmt_us (H.percentile h 99.9) ]
  in
  let sum_of_means =
    List.fold_left (fun acc (_, h) -> acc +. H.mean h) 0.0 b.Nkspan.b_stages
  in
  let e2e = b.Nkspan.b_e2e in
  let rows =
    List.map stage_row b.Nkspan.b_stages
    @ [
        [ "sum of stages"; fmt_us sum_of_means; ""; ""; ""; "" ];
        stage_row ("end-to-end", e2e);
      ]
  in
  let report =
    Report.make ~id:"latency-breakdown"
      ~title:
        (Printf.sprintf
           "Per-stage request latency (us), 64B RPC, %d CE shard%s, 1 in %d sampled"
           ce_cores
           (if ce_cores = 1 then "" else "s")
           span_every)
      ~headers:[ "stage"; "mean"; "p50"; "p90"; "p99"; "p99.9" ]
      ~percentiles:
        (Report.percentiles_of ~label:"e2e" e2e
        :: List.map
             (fun (name, h) -> Report.percentiles_of ~label:name h)
             b.Nkspan.b_stages)
      ~notes:
        [
          Printf.sprintf "%d spans over %d requests (%.1fK rps measured)"
            b.Nkspan.b_spans total (r.Worlds.rps /. 1e3);
          "stage segments tile each request's lifetime: the ring stage owns all time \
           no component claims, so stage means sum to the end-to-end mean";
          (if Nkspan.dropped spans > 0 then
             Printf.sprintf "WARNING: %d spans dropped (capacity)" (Nkspan.dropped spans)
           else "no spans dropped");
        ]
      rows
  in
  (report, spans)

let run ?quick () = fst (run_world ?quick ())
