let table ?(id = "stats") ?(title = "Nkmon metrics") mon =
  Report.make ~id ~title ~headers:Nkmon.Registry.row_headers
    (Nkmon.Registry.to_rows (Nkmon.registry mon))
