let table ?(id = "stats") ?(title = "Nkmon metrics") ?(filter = "") mon =
  let rows = Nkmon.Registry.to_rows (Nkmon.registry mon) in
  let rows =
    if filter = "" then rows
    else
      List.filter
        (fun row ->
          match row with
          | component :: _ ->
              String.length component >= String.length filter
              && String.equal (String.sub component 0 (String.length filter)) filter
          | [] -> false)
        rows
  in
  Report.make ~id ~title ~headers:Nkmon.Registry.row_headers rows
