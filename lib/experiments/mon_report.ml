let table ?(id = "stats") ?(title = "Nkmon metrics") ?(filter = "") mon =
  let rows = Nkmon.Registry.to_rows (Nkmon.registry mon) in
  let rows =
    if filter = "" then rows
    else
      List.filter
        (fun row ->
          match row with
          | component :: _ ->
              String.length component >= String.length filter
              && String.equal (String.sub component 0 (String.length filter)) filter
          | [] -> false)
        rows
  in
  (* Truncation must be visible in the snapshot itself: a trace ring that
     wrapped silently would make every downstream event count a lie. *)
  let notes =
    let d = Nkmon.dropped_events mon in
    if d = 0 then []
    else [ Printf.sprintf "trace ring dropped %d events (oldest overwritten)" d ]
  in
  Report.make ~id ~title ~headers:Nkmon.Registry.row_headers ~notes rows

let cluster_table ?(id = "stats-cluster") ?(title = "Nkobs federated metrics")
    ?(filter = "") obs =
  let rows = Nkobs.to_rows obs in
  let rows =
    if filter = "" then rows
    else
      List.filter
        (fun row ->
          match row with
          | _host :: component :: _ ->
              String.length component >= String.length filter
              && String.equal (String.sub component 0 (String.length filter)) filter
          | _ -> false)
        rows
  in
  let notes =
    List.filter_map
      (fun (host, mon) ->
        let d = Nkmon.dropped_events mon in
        if d = 0 then None
        else Some (Printf.sprintf "host %s: trace ring dropped %d events" host d))
      (Nkobs.sources obs)
  in
  Report.make ~id ~title ~headers:Nkobs.row_headers ~notes rows
