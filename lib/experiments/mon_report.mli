(** Render an {!Nkmon} registry as a {!Report} table, so observability
    snapshots print and export exactly like experiment results. *)

val table : ?id:string -> ?title:string -> ?filter:string -> Nkmon.t -> Report.t
(** One row per registered metric in deterministic
    [component/instance/metric] order; histograms and time series are
    summarised into the value cell. [filter] keeps only rows whose
    component name starts with it (default "": keep everything). *)
