(** Render an {!Nkmon} registry (or an {!Nkobs} federation of them) as a
    {!Report} table, so observability snapshots print and export exactly
    like experiment results. *)

val table : ?id:string -> ?title:string -> ?filter:string -> Nkmon.t -> Report.t
(** One row per registered metric in deterministic
    [component/instance/metric] order; histograms and time series are
    summarised into the value cell. [filter] keeps only rows whose
    component name starts with it (default "": keep everything). A note
    reports the trace ring's [dropped_events] count when it is nonzero,
    so truncation shows up in every output format (table, CSV, JSON). *)

val cluster_table :
  ?id:string -> ?title:string -> ?filter:string -> Nkobs.t -> Report.t
(** The cluster view [nk stats --cluster] prints: one host-tagged row per
    metric of every federated source ({!Nkobs.to_rows} order), with one
    note per source whose trace ring dropped events. *)
