type entry = {
  id : string;
  title : string;
  run : ?quick:bool -> unit -> Report.t;
}

let all =
  [
    { id = "fig07"; title = "AG traffic burstiness"; run = Fig07_trace.run };
    { id = "fig08"; title = "Multiplexing AGs on one NSM"; run = Fig08_multiplexing.run };
    { id = "fig0708"; title = "Autoscaling NSMs under the AG trace"; run = Fig0708_autoscale.run };
    { id = "table2"; title = "AG packing / core saving"; run = Table2_packing.run };
    { id = "fig09"; title = "VM-level fair bandwidth sharing"; run = Fig09_fairshare.run };
    { id = "table3"; title = "nginx: kernel vs mTCP NSM"; run = Table3_nginx.run };
    { id = "fig10"; title = "Shared-memory NSM"; run = Fig10_shmem.run };
    { id = "fig11"; title = "CoreEngine NQE switching"; run = Fig11_nqe_switch.run };
    { id = "fig12"; title = "Hugepage copy throughput"; run = Fig12_memcopy.run };
    { id = "fig13"; title = "Single-stream send"; run = Fig13_16_streams.run_fig13 };
    { id = "fig14"; title = "Single-stream receive"; run = Fig13_16_streams.run_fig14 };
    { id = "fig15"; title = "8-stream send"; run = Fig13_16_streams.run_fig15 };
    { id = "fig16"; title = "8-stream receive"; run = Fig13_16_streams.run_fig16 };
    { id = "fig17"; title = "RPS vs message size"; run = Fig17_rps.run };
    { id = "fig18"; title = "Send scaling with vCPUs";
      run = (fun ?quick () -> Fig18_19_scaling.run_fig18 ?quick ()) };
    { id = "fig19"; title = "Receive scaling with vCPUs";
      run = (fun ?quick () -> Fig18_19_scaling.run_fig19 ?quick ()) };
    { id = "fig20"; title = "RPS scaling (kernel + mTCP)";
      run = (fun ?quick () -> Fig20_rps_scaling.run ?quick ()) };
    { id = "ce-scale"; title = "RPS scaling with CoreEngine shards"; run = Ce_scaling.run };
    { id = "cluster"; title = "Cluster fabric: cross-host live NSM migration";
      run = Fig_cluster.run };
    { id = "incast"; title = "N-to-1 incast: live TCP->Homa protocol handover";
      run = Incast.run };
    { id = "slo"; title = "Tenant SLO breach -> Nkobs alert -> Nkctl reaction";
      run = Slo.run };
    { id = "table4"; title = "Multi-NSM scalability"; run = Table4_multi_nsm.run };
    { id = "fig21"; title = "Isolation time series"; run = Fig21_isolation.run };
    { id = "table5"; title = "Latency distribution"; run = Table5_latency.run };
    { id = "latency-breakdown"; title = "Per-stage latency decomposition (Nkspan)";
      run = (fun ?quick () -> Latency_breakdown.run ?quick ()) };
    { id = "table6"; title = "CPU overhead, throughput";
      run = (fun ?quick () -> Table6_overhead_tput.run ?quick ()) };
    { id = "table7"; title = "CPU overhead, RPS"; run = Table7_overhead_rps.run };
    { id = "abl-zerocopy"; title = "Ablation: NSM zerocopy"; run = Abl_zerocopy.run };
    { id = "abl-ce-offload"; title = "Ablation: SmartNIC CoreEngine"; run = Abl_ce_offload.run };
    { id = "abl-batching"; title = "Ablation: CE batch size"; run = Abl_batching.run };
  ]

let find id = List.find_opt (fun e -> e.id = id) all

let ids () = List.map (fun e -> e.id) all
