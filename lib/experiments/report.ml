type pctl = {
  p_label : string;
  p50_ms : float;
  p90_ms : float;
  p99_ms : float;
  p999_ms : float;
}

type t = {
  id : string;
  title : string;
  headers : string list;
  rows : string list list;
  notes : string list;
  percentiles : pctl list;
}

let make ~id ~title ~headers ?(notes = []) ?(percentiles = []) rows =
  { id; title; headers; rows; notes; percentiles }

let percentiles_of ~label h =
  let p q = Nkutil.Histogram.percentile h q *. 1e3 in
  { p_label = label; p50_ms = p 50.0; p90_ms = p 90.0; p99_ms = p 99.0; p999_ms = p 99.9 }

let print fmt t =
  let all = t.headers :: t.rows in
  let ncols = List.fold_left (fun acc r -> Int.max acc (List.length r)) 0 all in
  let widths = Array.make ncols 0 in
  List.iter
    (fun row ->
      List.iteri (fun i cell -> widths.(i) <- Int.max widths.(i) (String.length cell)) row)
    all;
  let total_width =
    Array.fold_left ( + ) 0 widths + (3 * Int.max 0 (ncols - 1))
  in
  let line c = Format.fprintf fmt "%s@." (String.make (Int.max total_width 40) c) in
  Format.fprintf fmt "@.";
  line '=';
  Format.fprintf fmt "[%s] %s@." t.id t.title;
  line '=';
  let print_row row =
    List.iteri
      (fun i cell ->
        if i > 0 then Format.fprintf fmt " | ";
        Format.fprintf fmt "%-*s" widths.(i) cell)
      row;
    Format.fprintf fmt "@."
  in
  print_row t.headers;
  line '-';
  List.iter print_row t.rows;
  if t.notes <> [] then begin
    Format.fprintf fmt "@.";
    List.iter (fun n -> Format.fprintf fmt "  note: %s@." n) t.notes
  end

let to_csv t =
  let escape cell =
    if String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell then
      "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
    else cell
  in
  (t.headers :: t.rows)
  |> List.map (fun row -> String.concat "," (List.map escape row))
  |> String.concat "\n"

let to_json t =
  let escape s =
    let b = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\r' -> Buffer.add_string b "\\r"
        | '\t' -> Buffer.add_string b "\\t"
        | c when Char.code c < 0x20 ->
            Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b
  in
  let str s = "\"" ^ escape s ^ "\"" in
  let arr items = "[" ^ String.concat ", " items ^ "]" in
  let row r = arr (List.map str r) in
  (* Fixed decimals keep the rendering deterministic across runs. *)
  let pctl p =
    Printf.sprintf
      "{\"label\": %s, \"p50_ms\": %.4f, \"p90_ms\": %.4f, \"p99_ms\": %.4f, \
       \"p999_ms\": %.4f}"
      (str p.p_label) p.p50_ms p.p90_ms p.p99_ms p.p999_ms
  in
  String.concat "\n"
    ([
       "{";
       Printf.sprintf "  \"id\": %s," (str t.id);
       Printf.sprintf "  \"title\": %s," (str t.title);
       Printf.sprintf "  \"headers\": %s," (row t.headers);
       Printf.sprintf "  \"rows\": %s," (arr (List.map row t.rows));
     ]
    @ (if t.percentiles = [] then []
       else
         [
           Printf.sprintf "  \"percentiles\": %s," (arr (List.map pctl t.percentiles));
         ])
    @ [ Printf.sprintf "  \"notes\": %s" (row t.notes); "}" ])

let cell_f ?(decimals = 1) v = Printf.sprintf "%.*f" decimals v

let cell_gbps v = Printf.sprintf "%.1f" v

let cell_krps v = Printf.sprintf "%.1fK" (v /. 1e3)

let cell_pct v = Printf.sprintf "%.0f%%" (v *. 100.0)
