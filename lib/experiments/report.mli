(** Experiment result tables, printed in the paper's layout.

    Every table/figure reproduction returns one of these; the bench driver
    prints them all, and EXPERIMENTS.md records paper-vs-measured. *)

type pctl = {
  p_label : string;  (** e.g. "e2e" or a span stage name *)
  p50_ms : float;
  p90_ms : float;
  p99_ms : float;
  p999_ms : float;
}

type t = {
  id : string;  (** e.g. "fig18" or "table4" *)
  title : string;
  headers : string list;
  rows : string list list;
  notes : string list;
      (** paper reference points, substitutions, scale-down factors *)
  percentiles : pctl list;
      (** optional latency percentile summary, emitted by {!to_json} *)
}

val make :
  id:string -> title:string -> headers:string list -> ?notes:string list ->
  ?percentiles:pctl list -> string list list -> t

val percentiles_of : label:string -> Nkutil.Histogram.t -> pctl
(** Summarise a histogram of latencies in seconds as milliseconds at
    p50/p90/p99/p99.9. *)

val print : Format.formatter -> t -> unit
(** Render with aligned columns, the id/title banner and notes. *)

val to_csv : t -> string

val to_json : t -> string
(** One JSON object: id, title, headers, rows (array of arrays), notes. *)

val cell_f : ?decimals:int -> float -> string

val cell_gbps : float -> string

val cell_krps : float -> string
(** Thousands of requests per second with one decimal. *)

val cell_pct : float -> string
