(* slo (beyond the paper, §2/§8 operated as a service): the Nkobs
   observability plane closing the loop from a tenant SLO breach to an
   Nkctl verb and back to recovery.

   A two-node Nkfabric cluster serves a "gold" tenant VM and two noisy
   neighbour VMs, all homed on node A's single 1-vCPU NSM. The gold
   tenant runs a steady request loop with a declared SLO (windowed p99
   ceiling); Nkobs ticks over the cluster, evaluating the SLO per window
   and federating every node's metrics. Mid-run the noisy neighbours ramp
   up and saturate the shared NSM: the gold p99 blows through its target,
   Nkobs raises an [slo_breach] alert (capturing a flight-recorder dump of
   the most recent per-host trace events), and the subscribed responder
   reacts with existing Nkctl verbs — [spawn_nsm] brings up a fresh
   2-vCPU NSM and [handover] re-homes the gold VM onto it. New gold
   connections land on the fresh NSM, the windowed p99 falls back under
   target, and Nkobs raises [slo_recovered].

   Shape to check: the p99 series spikes at the ramp and drops after the
   reaction; exactly one breach and one recovery for the gold tenant; the
   flight dump digest (printed in the notes) is byte-identical across
   runs of the same seed. *)

open Nkcore

let sparkline values =
  let ramp = [| ' '; '.'; ':'; '-'; '='; '+'; '*'; '#' |] in
  let peak = Array.fold_left Float.max 1e-9 values in
  String.init (Array.length values) (fun i ->
      let level = int_of_float (values.(i) /. peak *. 7.0) in
      ramp.(Int.max 0 (Int.min 7 level)))

let digits a =
  String.init (Array.length a) (fun i ->
      let v = Int.max 0 (Int.min 9 (int_of_float (Float.round a.(i)))) in
      Char.chr (Char.code '0' + v))

(* Bucket a (time, value) series into [k] equal bins over [0, duration],
   averaging within each bin (empty bins repeat the previous value). *)
let bucket ~k ~duration series =
  let sums = Array.make k 0.0 and counts = Array.make k 0 in
  List.iter
    (fun (time, v) ->
      let i =
        Int.min (k - 1) (Int.max 0 (int_of_float (time /. duration *. float_of_int k)))
      in
      sums.(i) <- sums.(i) +. v;
      counts.(i) <- counts.(i) + 1)
    series;
  let out = Array.make k 0.0 in
  let prev = ref 0.0 in
  for i = 0 to k - 1 do
    if counts.(i) > 0 then prev := sums.(i) /. float_of_int counts.(i);
    out.(i) <- !prev
  done;
  out

let p99_target = 0.0005 (* seconds: the gold tenant's declared p99 ceiling *)

let run ?(quick = false) () =
  let duration = if quick then 5.0 else 12.0 in
  let ramp_at = 0.35 *. duration in
  (* Tracing on: the flight recorder dumps the per-host rings on alert. *)
  let tb =
    Testbed.create
      ~config:{ Testbed.Config.default with seed = 7; trace_enabled = true }
      ()
  in
  let cluster = Nkfabric.create ~policy:Nkfabric.Spread tb in
  let nodea = Nkfabric.add_node cluster ~name:"nodeA" in
  let _nodeb = Nkfabric.add_node cluster ~name:"nodeB" in
  let hosta = Nkfabric.node_host nodea in
  let nsm0 = Nsm.create_kernel hosta ~name:"nsmA" ~vcpus:1 () in
  Nkfabric.add_nsm cluster nodea nsm0;
  (* Local control plane on node A; watermarks parked out of reach — every
     action in this run is alert-driven, not load-driven. *)
  let ctl =
    Nkctl.create hosta
      ~policy:
        {
          Nkctl.Policy.default with
          Nkctl.Policy.period = 0.1;
          high_watermark = infinity;
          low_watermark = 0.0;
          max_nsms = 4;
        }
      ~spawn:(fun i -> Nsm.create_kernel hosta ~name:(Printf.sprintf "nsmA%d" (i + 1)) ~vcpus:2 ())
      ()
  in
  Nkctl.manage ctl nsm0;
  Nkfabric.set_ctl nodea ctl;
  let gold = Nkfabric.place_vm cluster ~name:"gold" ~vcpus:1 ~ips:[ 10 ] () in
  let noisy =
    List.init 2 (fun i ->
        Nkfabric.place_vm cluster
          ~name:(Printf.sprintf "noisy%d" i)
          ~vcpus:1
          ~ips:[ 11 + i ]
          ())
  in
  let clients_host = Testbed.add_host tb ~name:"clients" in
  let client =
    Vm.create_baseline clients_host ~name:"clients" ~vcpus:16
      ~ips:(List.init 8 (fun i -> 100 + i))
      ~profile:Sim.Cost_profile.ideal ()
  in
  (* Gold: steady closed loop, fresh connection per request — after the
     handover, new connections land on the fresh NSM, which is what lets
     the windowed p99 recover. *)
  let gold_proto = Nkapps.Proto.Fixed { request = 128; response = 1024; keepalive = false } in
  let gold_addr = Addr.make 10 80 in
  (match
     Nkapps.Epoll_server.start ~engine:tb.Testbed.engine ~api:(Vm.api gold)
       (Nkapps.Epoll_server.config ~proto:gold_proto gold_addr)
   with
  | Ok _ -> ()
  | Error e -> failwith (Tcpstack.Types.err_to_string e));
  let gold_lg = ref None in
  ignore
    (Sim.Engine.schedule tb.Testbed.engine ~delay:1e-3 (fun () ->
         gold_lg :=
           Some
             (Nkapps.Loadgen.start ~engine:tb.Testbed.engine ~api:(Vm.api client)
                {
                  Nkapps.Loadgen.server = gold_addr;
                  proto = gold_proto;
                  mode =
                    Nkapps.Loadgen.Closed
                      { concurrency = 2; total = None; duration = Some (duration -. 0.5) };
                  warmup = 0.0;
                })));
  (* Noisy neighbours: keep-alive closed loops pinned to the shared NSM
     (established connections never move), ramped up mid-run. *)
  let noisy_proto = Nkapps.Proto.Fixed { request = 256; response = 16384; keepalive = true } in
  List.iteri
    (fun i vm ->
      let addr = Addr.make (11 + i) 80 in
      (match
         Nkapps.Epoll_server.start ~engine:tb.Testbed.engine ~api:(Vm.api vm)
           (Nkapps.Epoll_server.config ~proto:noisy_proto addr)
       with
      | Ok _ -> ()
      | Error e -> failwith (Tcpstack.Types.err_to_string e));
      ignore
        (Sim.Engine.schedule tb.Testbed.engine ~delay:ramp_at (fun () ->
             ignore
               (Nkapps.Loadgen.start ~engine:tb.Testbed.engine ~api:(Vm.api client)
                  {
                    Nkapps.Loadgen.server = addr;
                    proto = noisy_proto;
                    mode =
                      Nkapps.Loadgen.Closed
                        {
                          concurrency = 32;
                          total = None;
                          duration = Some (duration -. 0.5 -. ramp_at);
                        };
                    warmup = 0.0;
                  }))))
    noisy;
  (* The observability plane: federate the cluster, declare the gold SLO,
     and close the loop with Nkctl verbs on breach. *)
  let obs = Nkobs.of_fabric ~period:0.05 cluster in
  Nkobs.add_tenant obs ~name:"gold"
    ~target:{ Nkobs.latency_p99 = Some p99_target; max_error_rate = 0.0; min_requests = 10 }
    ~probe:(fun () ->
      match !gold_lg with
      | None ->
          {
            Nkobs.p_requests = 0;
            p_errors = 0;
            p_latency = Nkutil.Histogram.create ();
          }
      | Some lg ->
          let r = Nkapps.Loadgen.results lg in
          {
            Nkobs.p_requests = r.Nkapps.Loadgen.completed;
            p_errors = r.Nkapps.Loadgen.errors;
            p_latency = r.Nkapps.Loadgen.latency;
          });
  let reactions = ref [] in
  Nkobs.on_alert obs (fun ~time alert ->
      match alert with
      | Nkobs.Slo_breach { tenant = "gold"; _ } when !reactions = [] ->
          let fresh = Nkctl.spawn_nsm ctl in
          Nkctl.handover ctl ~vm:gold ~target:fresh;
          reactions :=
            [ Printf.sprintf "%.2fs spawn_nsm %s + handover gold" time (Nsm.name fresh) ]
      | _ -> ());
  Nkctl.start ctl;
  Nkobs.start obs;
  (* Sample the tenant's windowed p99 and the cumulative alert count on a
     cadence offset from the plane's ticks (phase 5 ms behind). *)
  let samples = ref [] in
  let rec sample () =
    let t = Sim.Engine.now tb.Testbed.engine in
    (match Nkobs.slo_status obs with
    | [ st ] ->
        samples :=
          (t, st.Nkobs.st_last_p99, float_of_int (Nkobs.alert_count obs)) :: !samples
    | _ -> ());
    if t < duration then ignore (Sim.Engine.schedule tb.Testbed.engine ~delay:0.05 sample)
  in
  ignore (Sim.Engine.schedule tb.Testbed.engine ~delay:0.055 sample);
  Testbed.run tb ~until:(duration +. 0.5);
  Nkobs.stop obs;
  Nkctl.stop ctl;
  let samples = List.rev !samples in
  let k = 40 in
  let series f = bucket ~k ~duration (List.map f samples) in
  let p99_ms = series (fun (t, p, _) -> (t, p *. 1e3)) in
  let alerts_cum = series (fun (t, _, a) -> (t, a)) in
  let gold_results =
    match !gold_lg with
    | Some lg -> Nkapps.Loadgen.results lg
    | None -> failwith "slo: gold load generator never started"
  in
  let st =
    match Nkobs.slo_status obs with
    | [ st ] -> st
    | _ -> failwith "slo: expected exactly one tenant"
  in
  let alert_log =
    List.map
      (fun (time, a) ->
        Printf.sprintf "%.2fs %s %s" time (Nkobs.alert_type a) (Nkobs.alert_detail a))
      (Nkobs.alerts obs)
  in
  let flight_note =
    let dumps = Nkobs.dumps obs in
    let breach_dump =
      List.find_opt (fun (_, a, _) -> Nkobs.alert_type a = "slo_breach") dumps
    in
    match (breach_dump, dumps) with
    | Some (time, alert, snap), _ | None, (time, alert, snap) :: _ ->
        let lines = List.length (String.split_on_char '\n' snap) - 1 in
        Printf.sprintf "flight dump @%.2fs on %s: %d lines, md5 %s" time
          (Nkobs.alert_type alert) lines
          (Digest.to_hex (Digest.string snap))
    | None, [] -> "flight dump: none captured"
  in
  let fmin a = Array.fold_left Float.min infinity a in
  let fmax a = Array.fold_left Float.max neg_infinity a in
  let frow name a render =
    [ name; Printf.sprintf "%.2f" (fmin a); Printf.sprintf "%.2f" (fmax a); render a ]
  in
  let rows =
    [
      frow "gold windowed p99 (ms)" p99_ms sparkline;
      frow "alerts raised (cumulative)" alerts_cum digits;
    ]
  in
  Report.make ~id:"slo"
    ~title:"Tenant SLO: breach -> alert -> Nkctl reaction -> recovery (Nkobs)"
    ~headers:[ "series"; "min"; "max"; Printf.sprintf "time 0..%.0fs" duration ]
    ~notes:
      ([
         Printf.sprintf
           "gold SLO p99 <= %.1fms: %d windows evaluated, %d in breach, final %s \
            (last window p99 %.2fms over %d requests)"
           (p99_target *. 1e3) st.Nkobs.st_windows st.Nkobs.st_breaches
           (if st.Nkobs.st_ok then "OK" else "IN BREACH")
           (st.Nkobs.st_last_p99 *. 1e3)
           st.Nkobs.st_last_requests;
         Printf.sprintf "gold served %d requests, %d errors; noisy ramp at %.2fs"
           gold_results.Nkapps.Loadgen.completed gold_results.Nkapps.Loadgen.errors ramp_at;
         Printf.sprintf "federation: %d hosts, %d metric rows; plane ticks %d"
           (List.length (Nkobs.sources obs))
           (List.length (Nkobs.to_rows obs))
           (Nkobs.ticks obs);
       ]
      @ List.map (fun l -> "alert: " ^ l) alert_log
      @ List.map (fun l -> "reaction: " ^ l) (List.rev !reactions)
      @ [ flight_note ])
    rows
