(* Table 2: AG consolidation on a 32-core machine.

   Baseline: the operator reserves 2 cores per AG -> 16 AGs per machine.
   NetKernel: 1 core per AG of application logic + a shared 2-core NSM +
   1 CoreEngine core -> 29 AGs, provided the NSM absorbs the aggregate
   (paper: worst-case utilization well under 60% for ~97% of the time).

   The NSM's per-core capacity comes from a measured kernel-stack NSM run
   rather than a constant, tying the arithmetic to the simulator. *)

let run ?(quick = false) () =
  (* Measure what one NSM core actually sustains for AG-sized requests. *)
  let capacity_per_core =
    let w = Worlds.netkernel ~config:{ Worlds.Config.default with vcpus = 4 } () in
    let r =
      Worlds.measure_rps w ~concurrency:64
        ~total:(if quick then 5_000 else 20_000)
        ~msg_size:256 ()
    in
    r.Worlds.rps
  in
  let fleet =
    Nktrace.Traffic.generate_fleet ~seed:2018 ~n:64
      ~params:
        { Nktrace.Traffic.default_params with Nktrace.Traffic.base_rps = 800.0 }
      ()
  in
  let result =
    Nktrace.Agpack.pack ~traces:fleet ~machine_cores:32 ~baseline_cores_per_ag:2
      ~nsm_cores:2 ~ce_cores:1 ~nsm_capacity_rps_per_core:capacity_per_core
  in
  Report.make ~id:"table2" ~title:"AG packing on a 32-core machine"
    ~headers:[ "metric"; "Baseline"; "NetKernel" ]
    ~notes:
      [
        "paper: 16 vs 29 AGs (81% more), saving >40% cores; NSM worst-case utilization \
         well under 60% for ~97% of AGs";
        Printf.sprintf "NSM capacity measured from the simulator: %.0f rps/core"
          capacity_per_core;
      ]
    [
      [ "total cores"; "32"; "32" ];
      [ "NSM cores"; "0"; "2" ];
      [ "CoreEngine cores"; "0"; "1" ];
      [
        "# AGs";
        string_of_int result.Nktrace.Agpack.baseline_ags;
        string_of_int result.Nktrace.Agpack.netkernel_ags;
      ];
      [
        "NSM utilization (worst / P97)";
        "-";
        Printf.sprintf "%.0f%% / %.0f%%"
          (result.Nktrace.Agpack.nsm_worst_utilization *. 100.0)
          (result.Nktrace.Agpack.nsm_p97_utilization *. 100.0);
      ];
      [
        "core saving at equal population";
        "-";
        Report.cell_pct result.Nktrace.Agpack.core_saving_fraction;
      ];
    ]
