(* Table 3: unmodified nginx under ab, kernel-stack NSM vs mTCP NSM, with
   VM and NSM using the same number of vCPUs.

   The "nginx" is our HTTP epoll server (real HTTP parsing) and "ab" is the
   HTTP mode of the load generator with concurrency 100, non-keepalive,
   64-byte html responses — the paper's exact workload shape.

   Paper: kernel 71.9K / 133.6K / 200.1K rps and mTCP 98.1K / 183.6K /
   379.2K rps at 1/2/4 vCPUs — mTCP wins 1.4-1.9x. *)

let vcpu_points = [ 1; 2; 4 ]

let proto = Nkapps.Proto.Http { path = "/index.html"; response = 64; keepalive = false }

(* nginx's own per-request processing (parsing, logging, buffer management):
   with a fast NSM this VM-side work is what bounds RPS, which is why the
   paper's mTCP column sits well below raw mTCP capacity. *)
let nginx_app_cycles = 17_000.0

let run ?(quick = false) () =
  let total n = (if quick then 4_000 else 20_000) * n in
  let measure kind vcpus =
    let w =
      Worlds.netkernel
        ~config:{ Worlds.Config.default with vcpus; nsm_cores = vcpus; nsm_kind = kind }
        ()
    in
    (Worlds.measure_rps w ~concurrency:100 ~total:(total vcpus)
       ~app_cycles:nginx_app_cycles ~proto ())
      .Worlds.rps
  in
  let rows =
    List.map
      (fun vcpus ->
        let kernel = measure `Kernel vcpus in
        let mtcp = measure `Mtcp vcpus in
        [
          string_of_int vcpus;
          Report.cell_krps kernel;
          Report.cell_krps mtcp;
          Printf.sprintf "%.1fx" (mtcp /. kernel);
        ])
      vcpu_points
  in
  Report.make ~id:"table3"
    ~title:"nginx (unmodified) under ab: kernel-stack NSM vs mTCP NSM"
    ~headers:[ "vCPUs"; "kernel NSM"; "mTCP NSM"; "speedup" ]
    ~notes:
      [
        "paper: kernel 71.9K/133.6K/200.1K; mTCP 98.1K/183.6K/379.2K (1.4x-1.9x)";
        "HTTP GET, 64B body, concurrency 100, non-keepalive; real HTTP parsing end-to-end";
        "scale-down: 20K requests per vCPU (paper: 10M)";
      ]
    rows
