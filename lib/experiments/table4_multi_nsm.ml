(* Table 4: NetKernel scalability across NSMs — a 1-vCPU VM served by 1..4
   kernel-stack NSMs of 2 vCPUs each. Servers in different NSMs listen on
   different ports (CoreEngine assigns sockets round-robin across NSMs).

   Paper: send 85.1/94.0/94.1/94.2 Gb/s; receive 33.6/61.2/91.0/91.0 Gb/s;
   131.6K/260.4K/399.1K/520.1K rps. *)

open Nkcore

let base_port = 5000

(* Bulk throughput through n listeners (one per NSM, distinct ports). *)
let throughput w ~n_nsms ~direction ~duration =
  let engine = w.Worlds.tb.Testbed.engine in
  let sink_api, sender_api, sink_ip =
    match direction with
    | `Send -> (Vm.api w.Worlds.client_vm, Vm.api w.Worlds.server_vm, Worlds.client_ip)
    | `Recv -> (Vm.api w.Worlds.server_vm, Vm.api w.Worlds.client_vm, Worlds.server_ip)
  in
  let sinks =
    List.init n_nsms (fun i ->
        match
          Nkapps.Stream.sink ~engine ~api:sink_api ~addr:(Addr.make sink_ip (base_port + i))
        with
        | Ok s -> s
        | Error e -> failwith (Tcpstack.Types.err_to_string e))
  in
  ignore
    (Sim.Engine.schedule engine ~delay:1e-3 (fun () ->
         List.iteri
           (fun i _ ->
             ignore
               (Nkapps.Stream.senders ~engine ~api:sender_api
                  ~dst:(Addr.make sink_ip (base_port + i))
                  ~streams:8 ~msg_size:8192
                  ~stop:(Sim.Engine.now engine +. duration)
                  ()))
           sinks));
  Testbed.run w.Worlds.tb ~until:(duration +. 0.1);
  List.fold_left (fun acc s -> acc +. Nkapps.Stream.sink_throughput_gbps s) 0.0 sinks

let rps w ~n_nsms ~total =
  let proto = Nkapps.Proto.Fixed { request = 64; response = 64; keepalive = false } in
  let lgs =
    List.init n_nsms (fun i ->
        let addr = Addr.make Worlds.server_ip (80 + i) in
        let _server = Worlds.run_server w (Nkapps.Epoll_server.config ~proto addr) in
        Worlds.start_loadgen w
          {
            Nkapps.Loadgen.server = addr;
            proto;
            mode =
              Nkapps.Loadgen.Closed
                { concurrency = 250; total = Some (total / n_nsms); duration = None };
            warmup = 0.0;
          })
  in
  Testbed.run w.Worlds.tb ~until:120.0;
  List.fold_left
    (fun acc lg ->
      match !lg with
      | None -> acc
      | Some lg -> acc +. (Nkapps.Loadgen.results lg).Nkapps.Loadgen.rps)
    0.0 lgs

let run ?(quick = false) () =
  let duration = if quick then 0.3 else 1.0 in
  let total = if quick then 8_000 else 40_000 in
  let rows =
    List.map
      (fun n_nsms ->
        let send =
          throughput
            (Worlds.netkernel ~config:{ Worlds.Config.default with nsm_cores = 2; n_nsms } ())
            ~n_nsms ~direction:`Send ~duration
        in
        let recv =
          throughput
            (Worlds.netkernel ~config:{ Worlds.Config.default with nsm_cores = 2; n_nsms } ())
            ~n_nsms ~direction:`Recv ~duration
        in
        let krps = rps (Worlds.netkernel ~config:{ Worlds.Config.default with nsm_cores = 2; n_nsms } ()) ~n_nsms ~total in
        [
          string_of_int n_nsms;
          Report.cell_gbps send;
          Report.cell_gbps recv;
          Report.cell_krps krps;
        ])
      [ 1; 2; 3; 4 ]
  in
  Report.make ~id:"table4"
    ~title:"Scaling with multiple 2-vCPU kernel-stack NSMs serving one 1-vCPU VM"
    ~headers:[ "# NSMs"; "send Gb/s"; "recv Gb/s"; "RPS" ]
    ~notes:
      [
        "paper: send 85.1/94.0/94.1/94.2; recv 33.6/61.2/91.0/91.0; rps \
         131.6K/260.4K/399.1K/520.1K";
        "shape: send saturates line rate early; receive and RPS scale near-linearly";
      ]
    rows
