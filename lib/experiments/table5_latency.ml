(* Table 5: response-time distribution, 64B messages, concurrency 1000.

   Paper (ms): Baseline  min 0 mean 16 stddev 105.6 median 2 max 7019
               NetKernel min 0 mean 16 stddev 105.9 median 2 max 7019
               NK+mTCP   min 3 mean  4 stddev   0.23 median 4 max 11

   The kernel rows' enormous max comes from SYN drops under overload (NIC
   ring / SYN queue) retransmitted after 1s/2s/4s; mTCP's polling design
   absorbs the bursts so its tail is tight. Scale-down: 100K requests per
   system (paper: 5M). *)

let fmt_ms v = Printf.sprintf "%.2f" (v *. 1e3)

let row name (h : Nkutil.Histogram.t) =
  [
    name;
    fmt_ms (Nkutil.Histogram.min h);
    fmt_ms (Nkutil.Histogram.mean h);
    fmt_ms (Nkutil.Histogram.stddev h);
    fmt_ms (Nkutil.Histogram.median h);
    fmt_ms (Nkutil.Histogram.max h);
  ]

let run ?(quick = false) () =
  let total = if quick then 20_000 else 100_000 in
  (* The kernel rows run with Linux's default listen backlog (somaxconn=128):
     at concurrency 1000 the accept queue overflows, dropped SYNs back off
     1s/2s/4s, and that is the whole story of the paper's median-2ms /
     max-7s distribution. mTCP sizes its own listener queues (4096). *)
  let measure ?backlog w =
    (Worlds.measure_rps w ~concurrency:1000 ~total ?backlog ()).Worlds.latency
  in
  let latencies =
    [
      ("Baseline", measure ~backlog:128 (Worlds.baseline ()));
      ("NetKernel", measure ~backlog:128 (Worlds.netkernel ()));
      ("NetKernel, mTCP NSM", measure (Worlds.netkernel ~config:{ Worlds.Config.default with nsm_kind = `Mtcp } ()));
    ]
  in
  let rows = List.map (fun (name, h) -> row name h) latencies in
  Report.make ~id:"table5"
    ~title:"Response time distribution (ms), 64B messages, concurrency 1000"
    ~headers:[ "system"; "min"; "mean"; "stddev"; "median"; "max" ]
    ~percentiles:
      (List.map (fun (name, h) -> Report.percentiles_of ~label:name h) latencies)
    ~notes:
      [
        "paper: Baseline/NetKernel mean 16, median 2, max 7019; mTCP mean 4, stddev 0.23, \
         max 11";
        "the kernel tail comes from dropped SYNs backing off 1s/2s/4s; mTCP stays tight";
        Printf.sprintf "scale-down: %d requests per system (paper: 5M)" total;
      ]
    rows
