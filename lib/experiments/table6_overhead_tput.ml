(* Table 6: NetKernel CPU overhead at fixed bulk-throughput levels.

   8 TCP streams of 8KB messages paced to 20..100 Gb/s; we count the cycles
   spent by the VM (Baseline) against VM+NSM (NetKernel) over the same
   interval and report the ratio.

   Paper: 1.14 / 1.28 / 1.42 / 1.56 / 1.70 at 20/40/60/80/100G — the rise
   comes from the extra hugepage copy competing for memory bandwidth. *)

open Nkcore

let levels = [ 20.0; 40.0; 60.0; 80.0; 100.0 ]

let cycles_at w ~gbps ~duration =
  let engine = w.Worlds.tb.Testbed.engine in
  let sink_addr = Addr.make Worlds.client_ip 5001 in
  let sink =
    match
      Nkapps.Stream.sink ~engine ~api:(Vm.api w.Worlds.client_vm) ~addr:sink_addr
    with
    | Ok s -> s
    | Error e -> failwith (Tcpstack.Types.err_to_string e)
  in
  let vm0 = ref 0.0 and nsm0 = ref 0.0 in
  ignore
    (Sim.Engine.schedule engine ~delay:1e-3 (fun () ->
         ignore
           (Nkapps.Stream.senders ~engine ~api:(Vm.api w.Worlds.server_vm) ~dst:sink_addr
              ~streams:8 ~msg_size:8192 ~pace_gbps:gbps
              ~stop:(Sim.Engine.now engine +. duration +. 1e-3)
              ());
         (* Skip the slow-start warmup in the accounting. *)
         ignore
           (Sim.Engine.schedule engine ~delay:0.2 (fun () ->
                vm0 := Vm.busy_cycles w.Worlds.server_vm;
                nsm0 :=
                  List.fold_left (fun acc n -> acc +. Nsm.busy_cycles n) 0.0 w.Worlds.nsms))));
  Testbed.run w.Worlds.tb ~until:(duration +. 0.05);
  let vm = Vm.busy_cycles w.Worlds.server_vm -. !vm0 in
  let nsm =
    List.fold_left (fun acc n -> acc +. Nsm.busy_cycles n) 0.0 w.Worlds.nsms -. !nsm0
  in
  let achieved = Nkapps.Stream.sink_throughput_gbps sink in
  (vm +. nsm, achieved)

let run ?(quick = false) ?(ce_cores = 1) () =
  let duration = if quick then 0.5 else 1.0 in
  let rows =
    List.map
      (fun gbps ->
        let baseline_cycles, base_achieved =
          cycles_at (Worlds.baseline ~config:{ Worlds.Config.default with vcpus = 4 } ()) ~gbps
            ~duration
        in
        let nk_cycles, nk_achieved =
          cycles_at
            (Worlds.netkernel
               ~config:{ Worlds.Config.default with vcpus = 4; nsm_cores = 4; ce_cores }
               ())
            ~gbps ~duration
        in
        [
          Printf.sprintf "%.0fG" gbps;
          Printf.sprintf "%.1f/%.1f" base_achieved nk_achieved;
          Printf.sprintf "%.2f" (nk_cycles /. baseline_cycles);
        ])
      levels
  in
  Report.make ~id:"table6" ~title:"CPU overhead for bulk throughput (normalized over Baseline)"
    ~headers:[ "target"; "achieved Gb/s (base/NK)"; "normalized CPU" ]
    ~notes:
      [
        "paper: 1.14 / 1.28 / 1.42 / 1.56 / 1.70 at 20..100G";
        "VM+NSM cycles over VM cycles at the same paced throughput; CE's dedicated core \
         is reported separately by the paper and excluded here too";
      ]
    rows
