(* Table 7: NetKernel CPU overhead at fixed request rates.

   Open-loop load of 100K..500K requests/s (64B messages, concurrency-
   bounded); cycles spent by VM (Baseline) vs VM+NSM (NetKernel).

   Paper: 1.06 / 1.05 / 1.08 / 1.08 / 1.09 — mild, the NQE machinery is
   cheap against the connection lifecycle. *)

open Nkcore

let levels = [ 100e3; 200e3; 300e3; 400e3; 500e3 ]

let proto = Nkapps.Proto.Fixed { request = 64; response = 64; keepalive = false }

let cycles_at w ~rate ~duration =
  let addr = Addr.make Worlds.server_ip 80 in
  let _server = Worlds.run_server w (Nkapps.Epoll_server.config ~proto addr) in
  let vm0 = ref 0.0 and nsm0 = ref 0.0 and served = ref 0 in
  ignore
    (Sim.Engine.schedule w.Worlds.tb.Testbed.engine ~delay:1e-3 (fun () ->
         let lg =
           Nkapps.Loadgen.start ~engine:w.Worlds.tb.Testbed.engine
             ~api:(Vm.api w.Worlds.client_vm)
             {
               Nkapps.Loadgen.server = addr;
               proto;
               mode = Nkapps.Loadgen.Open { rate_at = (fun _ -> rate); duration };
               warmup = 0.0;
             }
         in
         ignore
           (Sim.Engine.schedule w.Worlds.tb.Testbed.engine ~delay:0.1 (fun () ->
                vm0 := Vm.busy_cycles w.Worlds.server_vm;
                nsm0 :=
                  List.fold_left (fun acc n -> acc +. Nsm.busy_cycles n) 0.0 w.Worlds.nsms;
                served := (Nkapps.Loadgen.results lg).Nkapps.Loadgen.completed))));
  Testbed.run w.Worlds.tb ~until:(duration +. 0.05);
  let vm = Vm.busy_cycles w.Worlds.server_vm -. !vm0 in
  let nsm =
    List.fold_left (fun acc n -> acc +. Nsm.busy_cycles n) 0.0 w.Worlds.nsms -. !nsm0
  in
  (vm +. nsm)

let run ?(quick = false) () =
  let duration = if quick then 0.4 else 1.0 in
  let rows =
    List.map
      (fun rate ->
        let baseline = cycles_at (Worlds.baseline ~config:{ Worlds.Config.default with vcpus = 8 } ()) ~rate ~duration in
        let nk = cycles_at
            (Worlds.netkernel ~config:{ Worlds.Config.default with vcpus = 8; nsm_cores = 8 } ())
            ~rate ~duration in
        [ Report.cell_krps rate; Printf.sprintf "%.2f" (nk /. baseline) ])
      levels
  in
  Report.make ~id:"table7"
    ~title:"CPU overhead for short TCP connections (normalized over Baseline)"
    ~headers:[ "request rate"; "normalized CPU" ]
    ~notes:
      [
        "paper: 1.06 / 1.05 / 1.08 / 1.08 / 1.09 at 100K..500K rps";
        "open-loop arrivals at the target rate; 64B messages, non-keepalive";
      ]
    rows
