open Nkcore
module Types = Tcpstack.Types

type world = {
  tb : Testbed.t;
  server_host : Host.t;
  client_host : Host.t;
  server_vm : Vm.t;
  client_vm : Vm.t;
  nsms : Nsm.t list;
}

let server_ip = 10

let client_ip = 20

let client_ips = List.init 8 (fun i -> client_ip + i)

let make_client host =
  Vm.create_baseline host ~name:"client" ~vcpus:16 ~ips:client_ips
    ~profile:Sim.Cost_profile.ideal ()

module Config = struct
  type t = {
    tb : Testbed.Config.t;
    vcpus : int;
    nsm_cores : int;
    nsm_kind : [ `Kernel | `Mtcp ];
    n_nsms : int;
    cc_factory : Tcpstack.Cc.factory option;
    ce_cores : int;
    server_config : Tcpstack.Stack.config option;
  }

  let default =
    {
      tb = Testbed.Config.default;
      vcpus = 1;
      nsm_cores = 1;
      nsm_kind = `Kernel;
      n_nsms = 1;
      cc_factory = None;
      ce_cores = 1;
      server_config = None;
    }

  let with_seed seed t = { t with tb = { t.tb with Testbed.Config.seed } }

  let with_costs costs t = { t with tb = { t.tb with Testbed.Config.costs } }

  let with_span_every span_every t = { t with tb = { t.tb with Testbed.Config.span_every } }
end

let baseline ?(config = Config.default) () =
  let tb = Testbed.create ~config:config.Config.tb () in
  let server_host = Testbed.add_host tb ~name:"hostA" in
  let client_host = Testbed.add_host tb ~name:"hostB" in
  let server_vm =
    Vm.create_baseline server_host ~name:"vm" ~vcpus:config.Config.vcpus ~ips:[ server_ip ]
      ?config:config.Config.server_config ()
  in
  let client_vm = make_client client_host in
  { tb; server_host; client_host; server_vm; client_vm; nsms = [] }

let netkernel ?(config = Config.default) () =
  let { Config.tb = tb_cfg; vcpus; nsm_cores; nsm_kind; n_nsms; cc_factory; ce_cores; _ } =
    config
  in
  let tb = Testbed.create ~config:tb_cfg () in
  let server_host = Testbed.add_host tb ~name:"hostA" in
  let client_host = Testbed.add_host tb ~name:"hostB" in
  (* First enabler wins the shard count (NSM/VM creation enables it
     idempotently with the default single core). *)
  Host.enable_netkernel ~ce_cores server_host;
  let nsms =
    List.init n_nsms (fun i ->
        let name = Printf.sprintf "nsm%d" i in
        match nsm_kind with
        | `Kernel -> Nsm.create_kernel server_host ~name ~vcpus:nsm_cores ?cc_factory ()
        | `Mtcp -> Nsm.create_mtcp server_host ~name ~vcpus:nsm_cores ?cc_factory ())
  in
  let server_vm = Vm.create_nk server_host ~name:"vm" ~vcpus ~ips:[ server_ip ] ~nsms () in
  let client_vm = make_client client_host in
  { tb; server_host; client_host; server_vm; client_vm; nsms }

(* ---- drivers ------------------------------------------------------------- *)

let get_exn what = function
  | Ok v -> v
  | Error e -> failwith (Printf.sprintf "%s: %s" what (Types.err_to_string e))

let measure_send_throughput w ?(streams = 8) ?(msg_size = 8192) ?(duration = 1.0) () =
  let engine = w.tb.Testbed.engine in
  let sink_addr = Addr.make client_ip 5001 in
  let sink =
    get_exn "sink" (Nkapps.Stream.sink ~engine ~api:(Vm.api w.client_vm) ~addr:sink_addr)
  in
  ignore
    (Sim.Engine.schedule engine ~delay:1e-3 (fun () ->
         ignore
           (Nkapps.Stream.senders ~engine ~api:(Vm.api w.server_vm) ~dst:sink_addr ~streams
              ~msg_size
              ~stop:(Sim.Engine.now engine +. duration)
              ())));
  Testbed.run w.tb ~until:(duration +. 0.1);
  Nkapps.Stream.sink_throughput_gbps sink

let measure_recv_throughput w ?(streams = 8) ?(msg_size = 8192) ?(duration = 1.0) () =
  let engine = w.tb.Testbed.engine in
  let sink_addr = Addr.make server_ip 5001 in
  let sink =
    get_exn "sink" (Nkapps.Stream.sink ~engine ~api:(Vm.api w.server_vm) ~addr:sink_addr)
  in
  (* The paper's traffic source is the other testbed server running a real
     kernel stack, so per-message send costs shape the small-message end of
     the receive curves. A 16-core sender with no cross-core contention
     never limits the aggregate. *)
  let sender_vm =
    Vm.create_baseline w.client_host ~name:"bulk-sender" ~vcpus:16
      ~ips:(List.init 4 (fun i -> client_ip + 100 + i))
      ~profile:
        { Sim.Cost_profile.linux_kernel with
          Sim.Cost_profile.tx_contention = 0.0; rx_contention = 0.0; rps_contention = 0.0 }
      ()
  in
  ignore
    (Sim.Engine.schedule engine ~delay:1e-3 (fun () ->
         ignore
           (Nkapps.Stream.senders ~engine ~api:(Vm.api sender_vm) ~dst:sink_addr ~streams
              ~msg_size
              ~stop:(Sim.Engine.now engine +. duration)
              ())));
  Testbed.run w.tb ~until:(duration +. 0.1);
  Nkapps.Stream.sink_throughput_gbps sink

type rps_result = {
  rps : float;
  errors : int;
  latency : Nkutil.Histogram.t;
  vm_cycles : float;
  nsm_cycles : float;
  ce_cycles : float;
}

let run_server w cfg =
  get_exn "epoll server"
    (Nkapps.Epoll_server.start ~engine:w.tb.Testbed.engine ~api:(Vm.api w.server_vm) cfg)

let start_loadgen w ?(delay = 1e-3) ?on_done cfg =
  let lg = ref None in
  ignore
    (Sim.Engine.schedule w.tb.Testbed.engine ~delay (fun () ->
         lg := Some (Nkapps.Loadgen.start ~engine:w.tb.Testbed.engine
                       ~api:(Vm.api w.client_vm) ?on_done cfg)));
  lg

let nsm_cycles w = List.fold_left (fun acc nsm -> acc +. Nsm.busy_cycles nsm) 0.0 w.nsms

let ce_cycles w =
  if Host.netkernel_enabled w.server_host then
    Array.fold_left
      (fun acc c -> acc +. Sim.Cpu.busy_cycles c)
      0.0
      (Host.ce_cores w.server_host)
  else 0.0

let ce_shard_cycles w =
  if Host.netkernel_enabled w.server_host then
    Array.map Sim.Cpu.busy_cycles (Host.ce_cores w.server_host)
  else [||]

let measure_rps w ?(concurrency = 100) ?(total = 50_000) ?(msg_size = 64)
    ?(app_cycles = 0.0) ?(backlog = 8192) ?proto () =
  let proto =
    match proto with
    | Some p -> p
    | None -> Nkapps.Proto.Fixed { request = msg_size; response = msg_size; keepalive = false }
  in
  let addr = Addr.make server_ip 80 in
  let _server =
    run_server w
      (Nkapps.Epoll_server.config ~backlog ~proto ~app_cycles
         ~app_cores:(Vm.cores w.server_vm) addr)
  in
  let vm0 = Vm.busy_cycles w.server_vm in
  let nsm0 = nsm_cycles w in
  let ce0 = ce_cycles w in
  let lg =
    start_loadgen w
      {
        Nkapps.Loadgen.server = addr;
        proto;
        mode = Nkapps.Loadgen.Closed { concurrency; total = Some total; duration = None };
        warmup = 0.0;
      }
  in
  Testbed.run w.tb ~until:120.0;
  match !lg with
  | None -> failwith "loadgen never started"
  | Some lg ->
      let r = Nkapps.Loadgen.results lg in
      {
        rps = r.Nkapps.Loadgen.rps;
        errors = r.Nkapps.Loadgen.errors;
        latency = r.Nkapps.Loadgen.latency;
        vm_cycles = Vm.busy_cycles w.server_vm -. vm0;
        nsm_cycles = nsm_cycles w -. nsm0;
        ce_cycles = ce_cycles w -. ce0;
      }
