(** Shared experiment scaffolding: the paper's testbed configurations and
    the measurement drivers used across figures. *)

open Nkcore

type world = {
  tb : Testbed.t;
  server_host : Host.t;
  client_host : Host.t;
  server_vm : Vm.t;
  client_vm : Vm.t;
  nsms : Nsm.t list;
}

val server_ip : Addr.ip

val client_ip : Addr.ip

val baseline :
  ?vcpus:int -> ?server_config:Tcpstack.Stack.config -> ?seed:int ->
  ?costs:Nk_costs.t -> ?span_every:int -> unit -> world
(** Status quo: the VM runs its own kernel stack; the remote client machine
    is an ideal-profile 16-core load generator. [span_every] enables Nkspan
    request sampling on the testbed (default off). *)

val netkernel :
  ?vcpus:int ->
  ?nsm_cores:int ->
  ?nsm_kind:[ `Kernel | `Mtcp ] ->
  ?n_nsms:int ->
  ?cc_factory:Tcpstack.Cc.factory ->
  ?ce_cores:int ->
  ?seed:int ->
  ?costs:Nk_costs.t ->
  ?span_every:int ->
  unit ->
  world
(** NetKernel: VM with GuestLib + NSM(s) on the server host, CoreEngine on
    [ce_cores] dedicated cores (default 1, one switching shard each).
    [span_every] enables Nkspan request sampling (default off). *)

(** {1 Measurement drivers} *)

val measure_send_throughput :
  world -> ?streams:int -> ?msg_size:int -> ?duration:float -> unit -> float
(** VM sends bulk streams to a remote sink; returns goodput in Gb/s. *)

val measure_recv_throughput :
  world -> ?streams:int -> ?msg_size:int -> ?duration:float -> unit -> float
(** Remote machine sends to a sink in the VM. *)

type rps_result = {
  rps : float;
  errors : int;
  latency : Nkutil.Histogram.t;
  vm_cycles : float;  (** VM cores' busy cycles during the measured run *)
  nsm_cycles : float;  (** NSM cores' (0 for baseline) *)
  ce_cycles : float;
}

val ce_cycles : world -> float
(** Total busy cycles across every CoreEngine shard core (0 when NetKernel
    is off). *)

val ce_shard_cycles : world -> float array
(** Per-shard CE core busy cycles, in shard order (empty when NetKernel is
    off). *)

val measure_rps :
  world ->
  ?concurrency:int ->
  ?total:int ->
  ?msg_size:int ->
  ?app_cycles:float ->
  ?backlog:int ->
  ?proto:Nkapps.Proto.t ->
  unit ->
  rps_result
(** Non-keepalive epoll server in the VM under closed-loop load. *)

val run_server :
  world -> Nkapps.Epoll_server.config -> Nkapps.Epoll_server.t
(** Start an epoll server in the server VM (raises on setup failure). *)

val start_loadgen :
  world -> ?delay:float -> ?on_done:(unit -> unit) -> Nkapps.Loadgen.config ->
  Nkapps.Loadgen.t option ref
(** Start a load generator on the client machine after [delay] (default
    1 ms, letting listeners come up). *)
