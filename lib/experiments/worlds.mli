(** Shared experiment scaffolding: the paper's testbed configurations and
    the measurement drivers used across figures. *)

open Nkcore

type world = {
  tb : Testbed.t;
  server_host : Host.t;
  client_host : Host.t;
  server_vm : Vm.t;
  client_vm : Vm.t;
  nsms : Nsm.t list;
}

val server_ip : Addr.ip

val client_ip : Addr.ip

(** One record instead of nine optional arguments: world-level knobs plus
    the embedded {!Testbed.Config.t} ([tb]) for testbed-level ones (seed,
    cost model, span sampling, fabric shape). Build variants with record
    update — [{ Config.default with vcpus = 4; nsm_cores = 4 }] — or the
    [with_*] helpers for the common testbed fields. *)
module Config : sig
  type t = {
    tb : Testbed.Config.t;  (** testbed knobs: seed, costs, span_every, fabric *)
    vcpus : int;  (** server-VM cores (default 1) *)
    nsm_cores : int;  (** cores per NSM (default 1) *)
    nsm_kind : [ `Kernel | `Mtcp ];  (** NSM stack flavour (default [`Kernel]) *)
    n_nsms : int;  (** how many NSMs serve the VM (default 1) *)
    cc_factory : Tcpstack.Cc.factory option;  (** NSM congestion control override *)
    ce_cores : int;  (** CoreEngine switching shards (default 1) *)
    server_config : Tcpstack.Stack.config option;  (** baseline-stack override *)
  }

  val default : t

  val with_seed : int -> t -> t

  val with_costs : Nk_costs.t -> t -> t

  val with_span_every : int -> t -> t
end

val baseline : ?config:Config.t -> unit -> world
(** Status quo: the VM runs its own kernel stack; the remote client machine
    is an ideal-profile 16-core load generator. Only [tb], [vcpus] and
    [server_config] are read — the NSM/CE fields don't apply. *)

val netkernel : ?config:Config.t -> unit -> world
(** NetKernel: VM with GuestLib + NSM(s) on the server host, CoreEngine on
    [ce_cores] dedicated cores (default 1, one switching shard each). *)

(** {1 Measurement drivers} *)

val measure_send_throughput :
  world -> ?streams:int -> ?msg_size:int -> ?duration:float -> unit -> float
(** VM sends bulk streams to a remote sink; returns goodput in Gb/s. *)

val measure_recv_throughput :
  world -> ?streams:int -> ?msg_size:int -> ?duration:float -> unit -> float
(** Remote machine sends to a sink in the VM. *)

type rps_result = {
  rps : float;
  errors : int;
  latency : Nkutil.Histogram.t;
  vm_cycles : float;  (** VM cores' busy cycles during the measured run *)
  nsm_cycles : float;  (** NSM cores' (0 for baseline) *)
  ce_cycles : float;
}

val ce_cycles : world -> float
(** Total busy cycles across every CoreEngine shard core (0 when NetKernel
    is off). *)

val ce_shard_cycles : world -> float array
(** Per-shard CE core busy cycles, in shard order (empty when NetKernel is
    off). *)

val measure_rps :
  world ->
  ?concurrency:int ->
  ?total:int ->
  ?msg_size:int ->
  ?app_cycles:float ->
  ?backlog:int ->
  ?proto:Nkapps.Proto.t ->
  unit ->
  rps_result
(** Non-keepalive epoll server in the VM under closed-loop load. *)

val run_server :
  world -> Nkapps.Epoll_server.config -> Nkapps.Epoll_server.t
(** Start an epoll server in the server VM (raises on setup failure). *)

val start_loadgen :
  world -> ?delay:float -> ?on_done:(unit -> unit) -> Nkapps.Loadgen.config ->
  Nkapps.Loadgen.t option ref
(** Start a load generator on the client machine after [delay] (default
    1 ms, letting listeners come up). *)
