(* Homa connection block: the per-connection state of the receiver-driven
   RPC transport. Pure protocol state plus its migration snapshot — the
   wire machinery (grant pacing, request retry, segment emission) lives in
   {!Homa}, which drives these records.

   A "connection" is a long-lived message channel between two endpoints,
   identified by its client → server flow and a connection id (no
   handshake state machine, no SYN backlog: the server admits a REQUEST on
   first contact). Each send is one message; the sender streams messages
   strictly FIFO, so at most one inbound message per connection is
   incomplete at any moment — Homa's SRPT scheduling happens across
   connections, at the receiver's grant pacer. *)

module Cc = Tcpstack.Cc
module Types = Tcpstack.Types
module Conn_registry = Tcpstack.Conn_registry

type role = Client | Server

type state = Opening | Open | Closed

(* One outbound message. [om_granted] includes the unscheduled first-RTT
   allotment; the receiver's grants move it toward [om_len]. *)
type out_msg = {
  om_len : int;
  mutable om_hdr_sent : bool;
  mutable om_sent : int;
  mutable om_granted : int;
}

(* The (single) inbound message currently arriving. *)
type in_msg = {
  im_len : int;
  mutable im_rcvd : int;
  mutable im_granted : int;
}

type t = {
  flow : Addr.Flow.t;  (** client → server — the content-channel key *)
  cid : int;  (** connection id (the channel's isn slot) *)
  role : role;
  cc : Cc.t;
  (* The fifos belong to the conn-registry channel [restore] is handed —
     payload bytes migrate with the channel, not the connection block. *)
  write_fifo : Nkutil.Byte_fifo.t; (* nkscope: volatile *)
  read_fifo : Nkutil.Byte_fifo.t; (* nkscope: volatile *)
  mutable state : state;
  mutable error : Types.err option;
  (* tx: FIFO of outbound messages; the head is the one being streamed. *)
  txq : out_msg Queue.t;
  mutable tx_msg_base : int;  (** message index of the txq head *)
  mutable tx_bytes : int;  (** cumulative payload bytes emitted *)
  mutable tx_acked : int;  (** cumulative bytes the peer reported received *)
  mutable fin_queued : bool;
  mutable fin_sent : bool;
  (* rx *)
  mutable rx_cur : in_msg option;
  mutable rx_msg_count : int;  (** headers seen, = index of current + 1 *)
  mutable ready : int list;  (** unread remainders of completed messages *)
  mutable rx_bytes : int;  (** cumulative payload bytes arrived *)
  mutable peer_closed : bool;
  mutable eof_delivered : bool;
  (* request retry (client, [Opening]) *)
  mutable req_retx : int;
  mutable request_timer : Sim.Engine.Timer.t option;
  (* runtime wiring, rebuilt at the destination of a migration *)
  mutable core : Sim.Cpu.t; (* nkscope: volatile *)
  mutable handler : (Types.events -> unit) option; (* nkscope: volatile *)
  mutable connect_k : ((unit, Types.err) result -> unit) option; (* nkscope: volatile *)
  mutable endpoint_registered : bool;
  mutable flow_registered : bool;
  (* A restored copy is live by definition; the source side is detached. *)
  mutable destroyed : bool; (* nkscope: volatile *)
}

let fifos_of ~channel ~role =
  match role with
  | Client -> (channel.Conn_registry.c2s, channel.Conn_registry.s2c)
  | Server -> (channel.Conn_registry.s2c, channel.Conn_registry.c2s)

let create ~flow ~cid ~role ~cc ~channel ~core ~state =
  let write_fifo, read_fifo = fifos_of ~channel ~role in
  {
    flow;
    cid;
    role;
    cc;
    write_fifo;
    read_fifo;
    state;
    error = None;
    txq = Queue.create ();
    tx_msg_base = 0;
    tx_bytes = 0;
    tx_acked = 0;
    fin_queued = false;
    fin_sent = false;
    rx_cur = None;
    rx_msg_count = 0;
    ready = [];
    rx_bytes = 0;
    peer_closed = false;
    eof_delivered = false;
    req_retx = 0;
    request_timer = None;
    core;
    handler = None;
    connect_k = None;
    endpoint_registered = false;
    flow_registered = false;
    destroyed = false;
  }

(* The flow this end transmits on ([flow] is always client → server). *)
let tx_flow t = match t.role with Client -> t.flow | Server -> Addr.Flow.reverse t.flow

(* The flow this end receives on — the connection-table key. *)
let rx_flow t = match t.role with Client -> Addr.Flow.reverse t.flow | Server -> t.flow

let local_addr t =
  match t.role with Client -> t.flow.Addr.Flow.src | Server -> t.flow.Addr.Flow.dst

let peer_addr t =
  match t.role with Client -> t.flow.Addr.Flow.dst | Server -> t.flow.Addr.Flow.src

let ready_bytes t = List.fold_left ( + ) 0 t.ready

let eof_pending t =
  t.peer_closed && t.rx_cur = None && t.ready = [] && not t.eof_delivered

let inflight t = t.tx_bytes - t.tx_acked

let events t =
  {
    Types.readable = t.ready <> [] || eof_pending t;
    writable = t.state = Open && not t.fin_queued;
    hup = t.peer_closed || t.error <> None;
  }

(* ---- Serialization (live NSM migration) -------------------------------- *)

module Snapshot = struct
  type msg = { sm_len : int; sm_hdr_sent : bool; sm_sent : int; sm_granted : int }

  type full = {
    s_flow : Addr.Flow.t;
    s_cid : int;
    s_role : role;
    s_state : state;
    s_error : Types.err option;
    s_cc_name : string;
    s_cc_state : (string * float) list;
    s_txq : msg list;
    s_tx_msg_base : int;
    s_tx_bytes : int;
    s_tx_acked : int;
    s_fin_queued : bool;
    s_fin_sent : bool;
    s_rx_cur : msg option;  (** [sm_sent] carries [im_rcvd] *)
    s_rx_msg_count : int;
    s_ready : int list;
    s_rx_bytes : int;
    s_peer_closed : bool;
    s_eof_delivered : bool;
    s_req_retx : int;
    s_req_armed : bool;
    s_endpoint_registered : bool;
    s_flow_registered : bool;
  }

  type t = full
end

let snapshot t =
  {
    Snapshot.s_flow = t.flow;
    s_cid = t.cid;
    s_role = t.role;
    s_state = t.state;
    s_error = t.error;
    s_cc_name = t.cc.Cc.name;
    s_cc_state = t.cc.Cc.export ();
    s_txq =
      List.rev
        (Queue.fold
           (fun acc (m : out_msg) ->
             { Snapshot.sm_len = m.om_len; sm_hdr_sent = m.om_hdr_sent;
               sm_sent = m.om_sent; sm_granted = m.om_granted }
             :: acc)
           [] t.txq);
    s_tx_msg_base = t.tx_msg_base;
    s_tx_bytes = t.tx_bytes;
    s_tx_acked = t.tx_acked;
    s_fin_queued = t.fin_queued;
    s_fin_sent = t.fin_sent;
    s_rx_cur =
      Option.map
        (fun (m : in_msg) ->
          { Snapshot.sm_len = m.im_len; sm_hdr_sent = true; sm_sent = m.im_rcvd;
            sm_granted = m.im_granted })
        t.rx_cur;
    s_rx_msg_count = t.rx_msg_count;
    s_ready = t.ready;
    s_rx_bytes = t.rx_bytes;
    s_peer_closed = t.peer_closed;
    s_eof_delivered = t.eof_delivered;
    s_req_retx = t.req_retx;
    s_req_armed = t.request_timer <> None;
    s_endpoint_registered = t.endpoint_registered;
    s_flow_registered = t.flow_registered;
  }

(* Quiet detach for the source side of a migration: stop the request timer
   and release shared CC state without emitting a segment or firing any
   callback — the connection lives on elsewhere. *)
let detach ~cancel_timer t =
  if not t.destroyed then begin
    t.destroyed <- true;
    (match t.request_timer with Some tm -> cancel_timer tm | None -> ());
    t.request_timer <- None;
    t.cc.Cc.release ()
  end

let restore ~cc ~channel ~core (s : Snapshot.t) =
  if String.equal cc.Cc.name s.Snapshot.s_cc_name then cc.Cc.import s.Snapshot.s_cc_state;
  let write_fifo, read_fifo = fifos_of ~channel ~role:s.Snapshot.s_role in
  let t =
    {
      flow = s.Snapshot.s_flow;
      cid = s.Snapshot.s_cid;
      role = s.Snapshot.s_role;
      cc;
      write_fifo;
      read_fifo;
      state = s.Snapshot.s_state;
      error = s.Snapshot.s_error;
      txq = Queue.create ();
      tx_msg_base = s.Snapshot.s_tx_msg_base;
      tx_bytes = s.Snapshot.s_tx_bytes;
      tx_acked = s.Snapshot.s_tx_acked;
      fin_queued = s.Snapshot.s_fin_queued;
      fin_sent = s.Snapshot.s_fin_sent;
      rx_cur =
        Option.map
          (fun (m : Snapshot.msg) ->
            { im_len = m.Snapshot.sm_len; im_rcvd = m.Snapshot.sm_sent;
              im_granted = m.Snapshot.sm_granted })
          s.Snapshot.s_rx_cur;
      rx_msg_count = s.Snapshot.s_rx_msg_count;
      ready = s.Snapshot.s_ready;
      rx_bytes = s.Snapshot.s_rx_bytes;
      peer_closed = s.Snapshot.s_peer_closed;
      eof_delivered = s.Snapshot.s_eof_delivered;
      req_retx = s.Snapshot.s_req_retx;
      request_timer = None (* re-armed by the importing stack *);
      core;
      handler = None;
      connect_k = None;
      endpoint_registered = s.Snapshot.s_endpoint_registered;
      flow_registered = s.Snapshot.s_flow_registered;
      destroyed = false;
    }
  in
  List.iter
    (fun (m : Snapshot.msg) ->
      Queue.add
        { om_len = m.Snapshot.sm_len; om_hdr_sent = m.Snapshot.sm_hdr_sent;
          om_sent = m.Snapshot.sm_sent; om_granted = m.Snapshot.sm_granted }
        t.txq)
    s.Snapshot.s_txq;
  t
