(** Homa connection block: per-connection protocol state and its migration
    snapshot. The wire machinery (grants, request retry, emission) lives in
    {!Homa}; this module only holds and serializes state.

    A connection is a long-lived message channel identified by its
    client → server flow plus a connection id (the content-channel isn slot
    in {!Tcpstack.Conn_registry}). Senders stream messages strictly FIFO,
    so at most one inbound message per connection is incomplete at any
    moment; Homa's SRPT scheduling acts across connections in the
    receiver's grant pacer. *)

type role = Client | Server

type state = Opening | Open | Closed

type out_msg = {
  om_len : int;
  mutable om_hdr_sent : bool;
  mutable om_sent : int;  (** bytes already emitted *)
  mutable om_granted : int;  (** unscheduled allotment + received grants *)
}

type in_msg = {
  im_len : int;
  mutable im_rcvd : int;
  mutable im_granted : int;
}

type t = {
  flow : Addr.Flow.t;  (** client → server — the content-channel key *)
  cid : int;
  role : role;
  cc : Tcpstack.Cc.t;
  write_fifo : Nkutil.Byte_fifo.t;
  read_fifo : Nkutil.Byte_fifo.t;
  mutable state : state;
  mutable error : Tcpstack.Types.err option;
  txq : out_msg Queue.t;
  mutable tx_msg_base : int;
  mutable tx_bytes : int;
  mutable tx_acked : int;
  mutable fin_queued : bool;
  mutable fin_sent : bool;
  mutable rx_cur : in_msg option;
  mutable rx_msg_count : int;
  mutable ready : int list;  (** unread remainders of completed messages *)
  mutable rx_bytes : int;
  mutable peer_closed : bool;
  mutable eof_delivered : bool;
  mutable req_retx : int;
  mutable request_timer : Sim.Engine.Timer.t option;
  mutable core : Sim.Cpu.t;
  mutable handler : (Tcpstack.Types.events -> unit) option;
  mutable connect_k : ((unit, Tcpstack.Types.err) result -> unit) option;
  mutable endpoint_registered : bool;
  mutable flow_registered : bool;
  mutable destroyed : bool;
}

val create :
  flow:Addr.Flow.t ->
  cid:int ->
  role:role ->
  cc:Tcpstack.Cc.t ->
  channel:Tcpstack.Conn_registry.channel ->
  core:Sim.Cpu.t ->
  state:state ->
  t

val tx_flow : t -> Addr.Flow.t
(** The flow this end transmits on. *)

val rx_flow : t -> Addr.Flow.t
(** The flow this end receives on — the stack's connection-table key. *)

val local_addr : t -> Addr.t

val peer_addr : t -> Addr.t

val ready_bytes : t -> int
(** Total unread bytes of completed messages. *)

val eof_pending : t -> bool

val inflight : t -> int
(** Emitted-but-unacked bytes, bounded by the congestion window. *)

val events : t -> Tcpstack.Types.events

(** Serialized form carried across a live NSM migration. *)
module Snapshot : sig
  type msg = { sm_len : int; sm_hdr_sent : bool; sm_sent : int; sm_granted : int }

  type full = {
    s_flow : Addr.Flow.t;
    s_cid : int;
    s_role : role;
    s_state : state;
    s_error : Tcpstack.Types.err option;
    s_cc_name : string;
    s_cc_state : (string * float) list;
    s_txq : msg list;
    s_tx_msg_base : int;
    s_tx_bytes : int;
    s_tx_acked : int;
    s_fin_queued : bool;
    s_fin_sent : bool;
    s_rx_cur : msg option;  (** [sm_sent] carries [im_rcvd] *)
    s_rx_msg_count : int;
    s_ready : int list;
    s_rx_bytes : int;
    s_peer_closed : bool;
    s_eof_delivered : bool;
    s_req_retx : int;
    s_req_armed : bool;
    s_endpoint_registered : bool;
    s_flow_registered : bool;
  }

  type t = full
end

val snapshot : t -> Snapshot.t

val detach : cancel_timer:(Sim.Engine.Timer.t -> unit) -> t -> unit
(** Quiet source-side detach for migration: cancel the request timer and
    release CC shared state; no segment, no callback. *)

val restore :
  cc:Tcpstack.Cc.t ->
  channel:Tcpstack.Conn_registry.channel ->
  core:Sim.Cpu.t ->
  Snapshot.t ->
  t
(** Rebuild a connection block at the migration destination over the
    surviving content channel. Timers, the event handler and vswitch
    registrations are re-established by the importing {!Homa} stack. *)
