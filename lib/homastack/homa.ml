(* Homa-style receiver-driven RPC transport behind the protocol-neutral
   {!Tcpstack.Stack_ops} boundary.

   The transport is message-oriented and backlog-free:

   - a client opens a connection with a REQUEST segment; the server admits
     it on first contact (no SYN backlog, no half-open queue) and replies
     ACCEPT. A quiesced or absent listener silently drops the REQUEST and
     the client's request timer resends it — which is exactly what a live
     listener handover between NSMs relies on;
   - each [send] is one message. The sender streams a short message header
     then DATA segments; the first [unsched_bytes] of every message are
     unscheduled (sent eagerly, Homa's one-RTT allotment) and the rest is
     released by explicit GRANTs from the receiver;
   - the receiver's grant pacer runs SRPT across its incomplete inbound
     messages: every [grant_interval] it grants [grant_quantum] more bytes
     to the message with the fewest bytes still missing (ties break toward
     the oldest), so short messages preempt long ones — the property the
     incast experiment measures;
   - grants double as cumulative acks driving the pluggable per-connection
     congestion controller (any {!Tcpstack.Cc.factory}), which bounds
     ungranted/unacked bytes in flight.

   Like the TCP stack, segments carry metadata only: message payload bytes
   travel through the {!Tcpstack.Conn_registry} content channel keyed by
   ⟨client → server flow, connection id⟩.

   Segment encoding (reusing the TCP segment record):
   - REQUEST   [syn],            [seq] = connection id
   - ACCEPT    [syn]+[ack_flag], [seq] = connection id
   - header    plain, [len] = 0, [seq] = message index, [window] = length
   - DATA      plain, [len] > 0, [seq] = cumulative byte offset
   - GRANT/ack [ack_flag], [seq] = message index, [ack] = granted bytes
               within it, [window] = cumulative bytes received on the conn
   - FIN / RST as in TCP. *)

module Cc = Tcpstack.Cc
module Types = Tcpstack.Types
module Stack_ops = Tcpstack.Stack_ops
module Conn_registry = Tcpstack.Conn_registry
module Fifo = Nkutil.Byte_fifo
module Engine = Sim.Engine
module Cpu = Sim.Cpu
module R = Nkmon.Registry

let proto = "homa"

let caps = { Stack_ops.semantics = Stack_ops.Message; has_backlog = false }

type config = {
  profile : Sim.Cost_profile.t;
  cc_factory : Cc.factory;
  unsched_bytes : int;  (** per-message unscheduled (first-RTT) allotment *)
  grant_quantum : int;  (** bytes released per grant *)
  grant_interval : float;  (** pacer period, seconds *)
  request_rto : float;  (** REQUEST retransmit period *)
  max_request_retx : int;  (** give up connecting after this many resends *)
  ephemeral_base : int;
  ephemeral_count : int;
}

let default_config =
  {
    profile = Sim.Cost_profile.mtcp;
    cc_factory = Tcpstack.Cc_cubic.factory ~mss:Segment.mss;
    unsched_bytes = 10 * Segment.mss;
    grant_quantum = 4 * Segment.mss;
    (* 4 MSS per grant at 100G line rate: 4 * 1448 * 8 / 100e9 s. *)
    grant_interval = 4.6e-7;
    request_rto = 0.01;
    max_request_retx = 50;
    ephemeral_base = 32768;
    ephemeral_count = 16384;
  }

type listener = {
  l_addr : Addr.t;
  mutable l_open : bool;
  mutable l_quiesced : bool;
  l_on_accept : Stack_ops.conn -> peer:Addr.t -> unit;
}

module Flow_tbl = Hashtbl.Make (struct
  type t = Addr.Flow.t

  let equal = Addr.Flow.equal
  let hash = Addr.Flow.hash
end)

module Addr_tbl = Hashtbl.Make (struct
  type t = Addr.t

  let equal = Addr.equal
  let hash = Addr.hash
end)

type counters = {
  c_segs_rx : R.counter;
  c_segs_tx : R.counter;
  c_payload_rx : R.counter;
  c_payload_tx : R.counter;
  c_msgs_rx : R.counter;
  c_grants_tx : R.counter;
  c_req_drops : R.counter;
  c_established : R.counter;
  c_failed : R.counter;
}

type t = {
  engine : Engine.t;
  name : string;
  cores : Cpu.Set.t;
  vswitch : Vswitch.t;
  registry : Conn_registry.t;
  cfg : config;
  conns : Hcb.t Flow_tbl.t;  (* keyed by the flow the conn receives on *)
  listeners : listener Addr_tbl.t;  (* lookup-only: never iterated *)
  mutable ips : Addr.ip list;
  mutable next_port : int;
  mutable next_cid : int;
  mutable next_core : int;
  (* Incomplete inbound messages wanting grants, oldest first. *)
  mutable active : (Hcb.t * Hcb.in_msg) list;
  mutable pacer : Engine.Timer.t option;
  spans : Nkspan.t;
  ctr : counters;
  mutable self_input : Segment.t -> unit;
}

type Stack_ops.conn += Conn of Hcb.t

type Stack_ops.listener += Listener of listener

type Stack_ops.payload += Homa_state of Hcb.Snapshot.t

let unpack_conn = function
  | Conn h -> h
  | _ -> invalid_arg "Homa: foreign connection handle"

let unpack_listener = function
  | Listener l -> l
  | _ -> invalid_arg "Homa: foreign listener handle"

let pick_core t =
  let core = Cpu.Set.core t.cores (t.next_core mod Cpu.Set.n t.cores) in
  t.next_core <- t.next_core + 1;
  core

(* ---- Segment emission --------------------------------------------------- *)

let emit t (h : Hcb.t) seg =
  R.incr t.ctr.c_segs_tx;
  if seg.Segment.len > 0 then R.add t.ctr.c_payload_tx seg.Segment.len;
  let p = t.cfg.profile in
  let cycles =
    p.Sim.Cost_profile.per_chunk_tx
    +. (p.Sim.Cost_profile.per_byte_tx *. float_of_int seg.Segment.len)
  in
  Nkspan.frame t.spans ~component:"homastack" ~stage:"tx" (fun () ->
      Cpu.exec h.Hcb.core ~cycles (fun () -> Vswitch.output t.vswitch seg))

let send_request t (h : Hcb.t) =
  emit t h (Segment.make ~flow:h.Hcb.flow ~seq:h.Hcb.cid ~ack:0 ~syn:true ())

let send_accept t (h : Hcb.t) =
  emit t h
    (Segment.make ~flow:(Hcb.tx_flow h) ~seq:h.Hcb.cid ~ack:0 ~syn:true ~ack_flag:true ())

let send_ack t (h : Hcb.t) ~msg_idx ~granted =
  emit t h
    (Segment.make ~flow:(Hcb.tx_flow h) ~seq:msg_idx ~ack:granted ~ack_flag:true
       ~window:h.Hcb.rx_bytes ())

(* ---- Connection teardown ------------------------------------------------ *)

let teardown t (h : Hcb.t) =
  if not h.Hcb.destroyed then begin
    h.Hcb.destroyed <- true;
    (match h.Hcb.request_timer with
    | Some tm ->
        Engine.Timer.cancel tm;
        h.Hcb.request_timer <- None
    | None -> ());
    Flow_tbl.remove t.conns (Hcb.rx_flow h);
    if h.Hcb.endpoint_registered then begin
      Vswitch.unregister_endpoint t.vswitch (Hcb.local_addr h);
      h.Hcb.endpoint_registered <- false
    end;
    if h.Hcb.flow_registered then begin
      Vswitch.unregister_flow t.vswitch h.Hcb.flow;
      h.Hcb.flow_registered <- false
    end;
    (match h.Hcb.rx_cur with
    | Some im -> t.active <- List.filter (fun (_, m) -> m != im) t.active
    | None -> ());
    if h.Hcb.role = Hcb.Client then
      Conn_registry.remove t.registry ~flow:h.Hcb.flow ~isn:h.Hcb.cid;
    h.Hcb.cc.Cc.release ();
    Cpu.charge h.Hcb.core ~cycles:t.cfg.profile.Sim.Cost_profile.teardown
  end

let maybe_teardown t (h : Hcb.t) =
  if h.Hcb.fin_sent && h.Hcb.peer_closed then teardown t h

let fire_events (h : Hcb.t) =
  match h.Hcb.handler with Some f -> f (Hcb.events h) | None -> ()

let conn_fail t (h : Hcb.t) err =
  if not h.Hcb.destroyed then begin
    h.Hcb.error <- Some err;
    h.Hcb.state <- Hcb.Closed;
    R.incr t.ctr.c_failed;
    let k = h.Hcb.connect_k in
    h.Hcb.connect_k <- None;
    teardown t h;
    match k with Some k -> k (Error err) | None -> fire_events h
  end

(* ---- Transmit pump ------------------------------------------------------ *)

let rec tx_pump t (h : Hcb.t) =
  if (not h.Hcb.destroyed) && not h.Hcb.fin_sent then
    match Queue.peek_opt h.Hcb.txq with
    | None ->
        if h.Hcb.fin_queued then begin
          h.Hcb.fin_sent <- true;
          h.Hcb.state <- Hcb.Closed;
          emit t h
            (Segment.make ~flow:(Hcb.tx_flow h) ~seq:h.Hcb.tx_bytes ~ack:0 ~fin:true ());
          maybe_teardown t h
        end
    | Some m ->
        if not m.Hcb.om_hdr_sent then begin
          m.Hcb.om_hdr_sent <- true;
          emit t h
            (Segment.make ~flow:(Hcb.tx_flow h) ~seq:h.Hcb.tx_msg_base ~ack:0
               ~window:m.Hcb.om_len ())
        end;
        let cwnd = h.Hcb.cc.Cc.cwnd () in
        let budget = min (m.Hcb.om_granted - m.Hcb.om_sent) (cwnd - Hcb.inflight h) in
        if budget > 0 then begin
          let chunk = min budget Segment.gso_max in
          emit t h
            (Segment.make ~flow:(Hcb.tx_flow h) ~seq:h.Hcb.tx_bytes ~ack:0 ~len:chunk ());
          m.Hcb.om_sent <- m.Hcb.om_sent + chunk;
          h.Hcb.tx_bytes <- h.Hcb.tx_bytes + chunk;
          if m.Hcb.om_sent >= m.Hcb.om_len then begin
            ignore (Queue.pop h.Hcb.txq);
            h.Hcb.tx_msg_base <- h.Hcb.tx_msg_base + 1
          end;
          tx_pump t h
        end

(* ---- Receiver grant pacer (SRPT across connections) --------------------- *)

let grant_wanted (h : Hcb.t) (im : Hcb.in_msg) =
  (not h.Hcb.destroyed)
  && (match h.Hcb.rx_cur with Some cur -> cur == im | None -> false)
  && im.Hcb.im_granted < im.Hcb.im_len

let rec pacer_tick t () =
  t.pacer <- None;
  t.active <- List.filter (fun (h, im) -> grant_wanted h im) t.active;
  (match t.active with
  | [] -> ()
  | (h0, im0) :: rest ->
      let remaining (im : Hcb.in_msg) = im.Hcb.im_len - im.Hcb.im_rcvd in
      let best_h, best_im =
        List.fold_left
          (fun (bh, bim) (h, im) ->
            if remaining im < remaining bim then (h, im) else (bh, bim))
          (h0, im0) rest
      in
      Nkspan.frame t.spans ~component:"homastack" ~stage:"grant" (fun () ->
          best_im.Hcb.im_granted <-
            min best_im.Hcb.im_len (best_im.Hcb.im_granted + t.cfg.grant_quantum);
          R.incr t.ctr.c_grants_tx;
          send_ack t best_h ~msg_idx:(best_h.Hcb.rx_msg_count - 1)
            ~granted:best_im.Hcb.im_granted));
  arm_pacer t

and arm_pacer t =
  if t.pacer = None && t.active <> [] then
    t.pacer <- Some (Engine.schedule t.engine ~delay:t.cfg.grant_interval (pacer_tick t))

(* ---- Receive path ------------------------------------------------------- *)

let rx_cycles t (seg : Segment.t) =
  let p = t.cfg.profile in
  if seg.Segment.len > 0 then
    p.Sim.Cost_profile.per_chunk_rx
    +. (p.Sim.Cost_profile.per_byte_rx *. float_of_int seg.Segment.len)
  else p.Sim.Cost_profile.per_ack_rx

let conn_input t (h : Hcb.t) (seg : Segment.t) =
  if not h.Hcb.destroyed then begin
    Nkspan.frame t.spans ~component:"homastack" ~stage:"rx" (fun () ->
        Cpu.charge h.Hcb.core ~cycles:(rx_cycles t seg));
    if seg.Segment.rst then
      conn_fail t h
        (if h.Hcb.state = Hcb.Opening then Types.Econnrefused else Types.Econnreset)
    else if seg.Segment.syn && seg.Segment.ack_flag then begin
      (* ACCEPT: the client's REQUEST was admitted. *)
      if h.Hcb.state = Hcb.Opening then begin
        h.Hcb.state <- Hcb.Open;
        (match h.Hcb.request_timer with
        | Some tm ->
            Engine.Timer.cancel tm;
            h.Hcb.request_timer <- None
        | None -> ());
        R.incr t.ctr.c_established;
        let k = h.Hcb.connect_k in
        h.Hcb.connect_k <- None;
        match k with Some k -> k (Ok ()) | None -> ()
      end
    end
    else if seg.Segment.syn then
      (* Duplicate REQUEST (our ACCEPT crossed a retry): re-accept. *)
      send_accept t h
    else if seg.Segment.ack_flag then begin
      (* GRANT / cumulative ack. *)
      let delta = seg.Segment.window - h.Hcb.tx_acked in
      if delta > 0 then begin
        h.Hcb.tx_acked <- h.Hcb.tx_acked + delta;
        h.Hcb.cc.Cc.on_ack ~acked:delta ~rtt:(-1.) ~now:(Engine.now t.engine)
      end;
      (match Queue.peek_opt h.Hcb.txq with
      | Some m when seg.Segment.seq = h.Hcb.tx_msg_base ->
          if seg.Segment.ack > m.Hcb.om_granted then
            m.Hcb.om_granted <- min seg.Segment.ack m.Hcb.om_len
      | _ -> ());
      tx_pump t h
    end
    else if seg.Segment.fin then begin
      h.Hcb.peer_closed <- true;
      fire_events h;
      maybe_teardown t h
    end
    else if seg.Segment.len > 0 then begin
      (* DATA *)
      R.add t.ctr.c_payload_rx seg.Segment.len;
      match h.Hcb.rx_cur with
      | None -> ()  (* stray data for an already-completed message *)
      | Some im ->
          im.Hcb.im_rcvd <- min im.Hcb.im_len (im.Hcb.im_rcvd + seg.Segment.len);
          h.Hcb.rx_bytes <- h.Hcb.rx_bytes + seg.Segment.len;
          if im.Hcb.im_rcvd >= im.Hcb.im_len then begin
            h.Hcb.rx_cur <- None;
            h.Hcb.ready <- h.Hcb.ready @ [ im.Hcb.im_len ];
            t.active <- List.filter (fun (_, m) -> m != im) t.active;
            R.incr t.ctr.c_msgs_rx;
            send_ack t h ~msg_idx:(h.Hcb.rx_msg_count - 1) ~granted:im.Hcb.im_len;
            fire_events h
          end
          else
            (* Window-update ack: grants stop once a message is fully
               granted, but the sender may still be cwnd-limited — without
               acking received data its ack clock would go dead and the
               tail of the message would never drain. *)
            send_ack t h ~msg_idx:(h.Hcb.rx_msg_count - 1) ~granted:im.Hcb.im_granted
    end
    else begin
      (* Message header: one inbound message at a time per connection
         (senders stream messages strictly FIFO). *)
      match h.Hcb.rx_cur with
      | Some _ -> ()  (* duplicate header *)
      | None ->
          if seg.Segment.seq = h.Hcb.rx_msg_count then begin
            let len = seg.Segment.window in
            h.Hcb.rx_msg_count <- h.Hcb.rx_msg_count + 1;
            if len = 0 then begin
              h.Hcb.ready <- h.Hcb.ready @ [ 0 ];
              R.incr t.ctr.c_msgs_rx;
              send_ack t h ~msg_idx:(h.Hcb.rx_msg_count - 1) ~granted:0;
              fire_events h
            end
            else begin
              let im =
                { Hcb.im_len = len; im_rcvd = 0; im_granted = min t.cfg.unsched_bytes len }
              in
              h.Hcb.rx_cur <- Some im;
              if im.Hcb.im_granted < im.Hcb.im_len then begin
                t.active <- t.active @ [ (h, im) ];
                arm_pacer t
              end
            end
          end
    end
  end

let handle_request t (seg : Segment.t) =
  let dst = seg.Segment.flow.Addr.Flow.dst in
  match Addr_tbl.find_opt t.listeners dst with
  | Some l when l.l_open && not l.l_quiesced -> (
      match Conn_registry.lookup t.registry ~flow:seg.Segment.flow ~isn:seg.Segment.seq with
      | None -> R.incr t.ctr.c_req_drops
      | Some channel ->
          let core = pick_core t in
          let h =
            Hcb.create ~flow:seg.Segment.flow ~cid:seg.Segment.seq ~role:Hcb.Server
              ~cc:(t.cfg.cc_factory ()) ~channel ~core ~state:Hcb.Open
          in
          Flow_tbl.replace t.conns seg.Segment.flow h;
          Vswitch.register_flow t.vswitch seg.Segment.flow t.self_input;
          h.Hcb.flow_registered <- true;
          Cpu.charge core ~cycles:t.cfg.profile.Sim.Cost_profile.accept_op;
          R.incr t.ctr.c_established;
          send_accept t h;
          l.l_on_accept (Conn h) ~peer:seg.Segment.flow.Addr.Flow.src)
  | _ ->
      (* No listener willing to admit: silent drop — the client's request
         timer retries, and after a listener handover the retry lands on
         the new owner. *)
      R.incr t.ctr.c_req_drops

let input t (seg : Segment.t) =
  R.incr t.ctr.c_segs_rx;
  match Flow_tbl.find_opt t.conns seg.Segment.flow with
  | Some h -> conn_input t h seg
  | None ->
      if seg.Segment.syn && not seg.Segment.ack_flag then handle_request t seg
      (* else: stray segment for a departed connection — drop. *)

let create ~engine ~name ~cores ~vswitch ~registry ?(mon : Nkmon.t option)
    ?(spans : Nkspan.t option) ?(cfg = default_config) () =
  let mon = match mon with Some m -> m | None -> Nkmon.null () in
  let spans = match spans with Some s -> s | None -> Nkspan.null () in
  let c metric = Nkmon.counter mon ~component:"homastack" ~instance:name ~name:metric in
  let t =
    {
      engine;
      name;
      cores;
      vswitch;
      registry;
      cfg;
      conns = Flow_tbl.create 64;
      listeners = Addr_tbl.create 8;
      ips = [];
      next_port = cfg.ephemeral_base;
      next_cid = 1;
      next_core = 0;
      active = [];
      pacer = None;
      spans;
      ctr =
        {
          c_segs_rx = c "segs_rx";
          c_segs_tx = c "segs_tx";
          c_payload_rx = c "payload_rx";
          c_payload_tx = c "payload_tx";
          c_msgs_rx = c "msgs_rx";
          c_grants_tx = c "grants_tx";
          c_req_drops = c "req_drops";
          c_established = c "conns_established";
          c_failed = c "conns_failed";
        };
      self_input = (fun _ -> ());
    }
  in
  t.self_input <- (fun seg -> input t seg);
  t

(* ---- Connecting --------------------------------------------------------- *)

let rec arm_request_timer t (h : Hcb.t) =
  h.Hcb.request_timer <-
    Some
      (Engine.schedule t.engine ~delay:t.cfg.request_rto (fun () ->
           h.Hcb.request_timer <- None;
           if (not h.Hcb.destroyed) && h.Hcb.state = Hcb.Opening then begin
             h.Hcb.req_retx <- h.Hcb.req_retx + 1;
             if h.Hcb.req_retx > t.cfg.max_request_retx then conn_fail t h Types.Etimedout
             else begin
               send_request t h;
               arm_request_timer t h
             end
           end))

let connect t ~dst ~k =
  match t.ips with
  | [] -> k (Error Types.Einval)
  | src_ip :: _ ->
      let rec pick_port tries =
        if tries > t.cfg.ephemeral_count then None
        else begin
          let port = t.next_port in
          t.next_port <-
            t.cfg.ephemeral_base
            + ((t.next_port - t.cfg.ephemeral_base + 1) mod t.cfg.ephemeral_count);
          let src = Addr.make src_ip port in
          let flow = Addr.Flow.make ~src ~dst in
          if Flow_tbl.mem t.conns (Addr.Flow.reverse flow) then pick_port (tries + 1)
          else Some (src, flow)
        end
      in
      (match pick_port 1 with
      | None -> k (Error Types.Eaddrinuse)
      | Some (src, flow) ->
          let cid = t.next_cid in
          t.next_cid <- t.next_cid + 1;
          let channel = Conn_registry.register t.registry ~flow ~isn:cid in
          let core = pick_core t in
          let h =
            Hcb.create ~flow ~cid ~role:Hcb.Client ~cc:(t.cfg.cc_factory ()) ~channel
              ~core ~state:Hcb.Opening
          in
          h.Hcb.connect_k <- Some (fun r -> k (Result.map (fun () -> Conn h) r));
          Flow_tbl.replace t.conns (Addr.Flow.reverse flow) h;
          Vswitch.register_endpoint t.vswitch src t.self_input;
          h.Hcb.endpoint_registered <- true;
          Cpu.charge core ~cycles:t.cfg.profile.Sim.Cost_profile.handshake;
          send_request t h;
          arm_request_timer t h)

(* ---- IPs and listeners -------------------------------------------------- *)

let add_ip t ip =
  if not (List.mem ip t.ips) then begin
    t.ips <- t.ips @ [ ip ];
    Vswitch.register_ip t.vswitch ip t.self_input
  end

let remove_ip t ip =
  if List.mem ip t.ips then begin
    t.ips <- List.filter (fun i -> i <> ip) t.ips;
    if Vswitch.owns_ip t.vswitch ip then Vswitch.unregister_ip t.vswitch ip
  end

let listen t ~addr ~on_accept =
  match Addr_tbl.find_opt t.listeners addr with
  | Some l when l.l_open -> Error Types.Eaddrinuse
  | _ ->
      let l =
        { l_addr = addr; l_open = true; l_quiesced = false; l_on_accept = on_accept }
      in
      Addr_tbl.replace t.listeners addr l;
      Ok l

let close_listener t l =
  if l.l_open then begin
    l.l_open <- false;
    Addr_tbl.remove t.listeners l.l_addr
  end

let quiesce_listener _t l = l.l_quiesced <- true

(* ---- Socket-style verbs ------------------------------------------------- *)

let send t (h : Hcb.t) payload ~k =
  if h.Hcb.destroyed then k (Error Types.Eclosed)
  else
    match h.Hcb.error with
    | Some e -> k (Error e)
    | None ->
        if h.Hcb.state <> Hcb.Open || h.Hcb.fin_queued then k (Error Types.Eclosed)
        else begin
          let n = Types.payload_len payload in
          if n = 0 then k (Ok 0)
          else begin
            (match payload with
            | Types.Data s -> Fifo.write h.Hcb.write_fifo s
            | Types.Zeros z -> Fifo.write_zeros h.Hcb.write_fifo z);
            Queue.add
              { Hcb.om_len = n; om_hdr_sent = false; om_sent = 0;
                om_granted = min t.cfg.unsched_bytes n }
              h.Hcb.txq;
            Cpu.charge h.Hcb.core ~cycles:t.cfg.profile.Sim.Cost_profile.sockop;
            tx_pump t h;
            k (Ok n)
          end
        end

let recv t (h : Hcb.t) ~max ~mode ~k =
  if h.Hcb.destroyed then k (Error Types.Eclosed)
  else
    match h.Hcb.error with
    | Some e -> k (Error e)
    | None -> (
        match h.Hcb.ready with
        | rem :: rest ->
            (* Never cross a message boundary; [`Auto] additionally takes at
               most one homogeneous fifo run (synthetic filler stays O(1)). *)
            let want = min max rem in
            let payload =
              match mode with
              | `Copy -> Types.Data (Fifo.read h.Hcb.read_fifo want)
              | `Discard -> Types.Zeros (Fifo.discard h.Hcb.read_fifo want)
              | `Auto -> (
                  match Fifo.next_run h.Hcb.read_fifo with
                  | Some (`Zeros run) ->
                      Types.Zeros (Fifo.discard h.Hcb.read_fifo (Int.min want run))
                  | Some (`Data run) ->
                      Types.Data (Fifo.read h.Hcb.read_fifo (Int.min want run))
                  | None -> Types.Data (Fifo.read h.Hcb.read_fifo want))
            in
            let n = Types.payload_len payload in
            if n = rem then h.Hcb.ready <- rest else h.Hcb.ready <- (rem - n) :: rest;
            Cpu.charge h.Hcb.core ~cycles:t.cfg.profile.Sim.Cost_profile.sockop;
            k (Ok payload)
        | [] ->
            if Hcb.eof_pending h then begin
              h.Hcb.eof_delivered <- true;
              k
                (Ok
                   (match mode with
                   | `Discard -> Types.Zeros 0
                   | `Copy | `Auto -> Types.Data ""))
            end
            else k (Error Types.Eagain))

let close_conn t (h : Hcb.t) =
  if (not h.Hcb.destroyed) && not h.Hcb.fin_queued then
    match h.Hcb.state with
    | Hcb.Opening -> conn_fail t h Types.Eclosed
    | Hcb.Closed -> ()
    | Hcb.Open ->
        h.Hcb.fin_queued <- true;
        tx_pump t h

let abort_conn t (h : Hcb.t) =
  if not h.Hcb.destroyed then begin
    if h.Hcb.state = Hcb.Open then
      emit t h (Segment.make ~flow:(Hcb.tx_flow h) ~seq:h.Hcb.tx_bytes ~ack:0 ~rst:true ());
    h.Hcb.error <- Some Types.Econnreset;
    teardown t h
  end

(* ---- Live migration ----------------------------------------------------- *)

let export_conn t (h : Hcb.t) =
  if h.Hcb.destroyed then Error Types.Eclosed
  else begin
    let snap = Hcb.snapshot h in
    (match h.Hcb.rx_cur with
    | Some im -> t.active <- List.filter (fun (_, m) -> m != im) t.active
    | None -> ());
    if h.Hcb.endpoint_registered then
      Vswitch.unregister_endpoint t.vswitch (Hcb.local_addr h);
    if h.Hcb.flow_registered then Vswitch.unregister_flow t.vswitch h.Hcb.flow;
    Flow_tbl.remove t.conns (Hcb.rx_flow h);
    Hcb.detach ~cancel_timer:Engine.Timer.cancel h;
    Ok { Stack_ops.e_proto = proto; e_flow = h.Hcb.flow; e_payload = Homa_state snap }
  end

let import_conn t (x : Stack_ops.export) =
  match x.Stack_ops.e_payload with
  | Homa_state snap -> (
      match
        Conn_registry.lookup t.registry ~flow:snap.Hcb.Snapshot.s_flow
          ~isn:snap.Hcb.Snapshot.s_cid
      with
      | None -> Error Types.Econnreset
      | Some channel ->
          let core = pick_core t in
          let h = Hcb.restore ~cc:(t.cfg.cc_factory ()) ~channel ~core snap in
          Flow_tbl.replace t.conns (Hcb.rx_flow h) h;
          if h.Hcb.endpoint_registered then
            Vswitch.register_endpoint t.vswitch (Hcb.local_addr h) t.self_input;
          if h.Hcb.flow_registered then
            Vswitch.register_flow t.vswitch h.Hcb.flow t.self_input;
          if h.Hcb.state = Hcb.Opening then arm_request_timer t h;
          (match h.Hcb.rx_cur with
          | Some im when im.Hcb.im_granted < im.Hcb.im_len ->
              t.active <- t.active @ [ (h, im) ];
              arm_pacer t
          | _ -> ());
          tx_pump t h;
          Ok (Conn h))
  | _ -> Error Types.Einval

(* ---- Stats -------------------------------------------------------------- *)

type stats = {
  segs_rx : int;
  segs_tx : int;
  payload_rx : int;
  payload_tx : int;
  msgs_rx : int;
  grants_tx : int;
  req_drops : int;
  conns_established : int;
  conns_failed : int;
}

let stats t =
  {
    segs_rx = R.counter_value t.ctr.c_segs_rx;
    segs_tx = R.counter_value t.ctr.c_segs_tx;
    payload_rx = R.counter_value t.ctr.c_payload_rx;
    payload_tx = R.counter_value t.ctr.c_payload_tx;
    msgs_rx = R.counter_value t.ctr.c_msgs_rx;
    grants_tx = R.counter_value t.ctr.c_grants_tx;
    req_drops = R.counter_value t.ctr.c_req_drops;
    conns_established = R.counter_value t.ctr.c_established;
    conns_failed = R.counter_value t.ctr.c_failed;
  }

let conn_count t = Flow_tbl.length t.conns

(* ---- The Stack_ops boundary --------------------------------------------- *)

let ops t =
  {
    Stack_ops.name = t.name;
    proto;
    caps;
    engine = t.engine;
    add_ip = add_ip t;
    remove_ip = remove_ip t;
    new_listener =
      (fun ~addr ~backlog:_ ~on_accept ->
        match listen t ~addr ~on_accept with Ok l -> Ok (Listener l) | Error e -> Error e);
    close_listener = (fun l -> close_listener t (unpack_listener l));
    quiesce_listener = (fun l -> quiesce_listener t (unpack_listener l));
    connect = (fun ~dst ~k -> connect t ~dst ~k);
    send = (fun c p ~k -> send t (unpack_conn c) p ~k);
    recv = (fun c ~max ~mode ~k -> recv t (unpack_conn c) ~max ~mode ~k);
    close_conn = (fun c -> close_conn t (unpack_conn c));
    abort_conn = (fun c -> abort_conn t (unpack_conn c));
    set_conn_handler = (fun c f -> (unpack_conn c).Hcb.handler <- Some f);
    conn_events = (fun c -> Hcb.events (unpack_conn c));
    conn_core = (fun c -> (unpack_conn c).Hcb.core);
    conn_peer = (fun c -> Some (Hcb.peer_addr (unpack_conn c)));
    conn_local = (fun c -> Some (Hcb.local_addr (unpack_conn c)));
    conn_error = (fun c -> (unpack_conn c).Hcb.error);
    export_conn = (fun c -> export_conn t (unpack_conn c));
    import_conn = (fun x -> import_conn t x);
    default_core = Cpu.Set.core t.cores 0;
    wake_cycles = t.cfg.profile.Sim.Cost_profile.epoll_wake;
  }
