(** Homa-style receiver-driven RPC transport (message-oriented NSM
    backend).

    Connections are admitted on first contact — there is no SYN backlog to
    overflow, which is what removes the incast tail TCP suffers when many
    clients hit one listener at once. Each [send] is one message; the
    first [unsched_bytes] of a message travel unscheduled and the rest is
    released by receiver GRANTs paced SRPT across all incomplete inbound
    messages (shortest remaining first), so short RPCs preempt long
    transfers.

    The stack plugs into ServiceLib through {!ops} (the protocol-neutral
    {!Tcpstack.Stack_ops} boundary) and supports full connection
    export/import for live NSM migration and protocol handover; payload
    bytes travel through {!Tcpstack.Conn_registry} content channels like
    the TCP stack's. *)

type t

val proto : string
(** ["homa"] — the protocol id stamped into exports. *)

val caps : Tcpstack.Stack_ops.caps
(** Message semantics, no listener backlog. *)

type config = {
  profile : Sim.Cost_profile.t;
  cc_factory : Tcpstack.Cc.factory;
      (** per-connection congestion control (any TCP factory plugs in) *)
  unsched_bytes : int;  (** per-message unscheduled (first-RTT) allotment *)
  grant_quantum : int;  (** bytes released per grant *)
  grant_interval : float;  (** pacer period, seconds *)
  request_rto : float;  (** REQUEST retransmit period *)
  max_request_retx : int;  (** give up connecting after this many resends *)
  ephemeral_base : int;
  ephemeral_count : int;
}

val default_config : config

val create :
  engine:Sim.Engine.t ->
  name:string ->
  cores:Sim.Cpu.Set.t ->
  vswitch:Vswitch.t ->
  registry:Tcpstack.Conn_registry.t ->
  ?mon:Nkmon.t ->
  ?spans:Nkspan.t ->
  ?cfg:config ->
  unit ->
  t

val ops : t -> Tcpstack.Stack_ops.t
(** The backend boundary ServiceLib drives. *)

type Tcpstack.Stack_ops.conn += Conn of Hcb.t

type Tcpstack.Stack_ops.payload += Homa_state of Hcb.Snapshot.t

val input : t -> Segment.t -> unit
(** Segment ingress (registered with the vswitch by [add_ip]/connect). *)

val conn_count : t -> int

type stats = {
  segs_rx : int;
  segs_tx : int;
  payload_rx : int;
  payload_tx : int;
  msgs_rx : int;
  grants_tx : int;
  req_drops : int;  (** REQUESTs silently dropped (quiesced/absent listener) *)
  conns_established : int;
  conns_failed : int;
}

val stats : t -> stats
