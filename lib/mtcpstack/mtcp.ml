module T = Tcpstack
module Cpu = Sim.Cpu

type t = {
  engine : Sim.Engine.t;
  name : string;
  vswitch : Vswitch.t;
  shards : T.Stack.t array;
  mutable ips : Addr.ip list;
  mutable next_port : int;
}

let shards t = t.shards

let n_shards t = Array.length t.shards

let stats t = Array.to_list (Array.map T.Stack.stats t.shards)

let shard_for t flow = t.shards.(Addr.Flow.rss_hash flow mod Array.length t.shards)

(* RSS dispatch: what the NIC hardware does for mTCP's per-core queues. *)
let dispatch t (seg : Segment.t) = T.Stack.input (shard_for t seg.Segment.flow) seg

let create ~engine ~name ~cores ~vswitch ~registry ~rng ?(profile = Sim.Cost_profile.mtcp)
    ?cc_factory ?tcb ?(charge_user_copy = true) ?mon () =
  let n = Cpu.Set.n cores in
  let cc_factory =
    match cc_factory with
    | Some f -> f
    | None -> T.Cc_cubic.factory ~mss:Segment.mss
  in
  let base = T.Stack.default_config profile in
  let cfg =
    {
      base with
      T.Stack.cc_factory;
      rx_mode = T.Stack.Polling;
      charge_syscalls = false;
      charge_user_copy;
      contention_cores = Some n;
      register_vswitch = false;
      tcb = (match tcb with Some c -> c | None -> base.T.Stack.tcb);
    }
  in
  let mk i =
    T.Stack.create ~engine
      ~name:(Printf.sprintf "%s.shard%d" name i)
      ~cores:(Cpu.Set.of_array [| Cpu.Set.core cores i |])
      ~vswitch ~registry ~rng:(Nkutil.Rng.split rng) ?mon cfg
  in
  { engine; name; vswitch; shards = Array.init n mk; ips = []; next_port = 32768 }

let add_ip t ip =
  if not (List.mem ip t.ips) then begin
    t.ips <- ip :: t.ips;
    Array.iter (fun shard -> T.Stack.add_ip shard ip) t.shards;
    Vswitch.register_ip t.vswitch ip (dispatch t)
  end

let remove_ip t ip =
  if List.mem ip t.ips then begin
    t.ips <- List.filter (fun x -> x <> ip) t.ips;
    Array.iter (fun shard -> T.Stack.remove_ip shard ip) t.shards;
    (* Shards register with [register_vswitch = false]; the RSS dispatch
       entry is this facade's, so it releases it too. *)
    Vswitch.unregister_ip t.vswitch ip
  end

(* mTCP-style connect: walk the ephemeral port space until we find a port
   whose RSS hash maps the reply traffic onto an available shard slot. *)
let connect t ~dst ~k =
  match t.ips with
  | [] -> k (Error T.Types.Einval)
  | default_ip :: _ ->
      let rec attempt tries =
        if tries > 28000 then k (Error T.Types.Eaddrinuse)
        else begin
          let port = t.next_port in
          t.next_port <- (if t.next_port >= 60999 then 32768 else t.next_port + 1);
          let src = Addr.make default_ip port in
          let flow = Addr.Flow.make ~src ~dst in
          let shard = shard_for t flow in
          let s = T.Stack.socket shard in
          match T.Stack.bind shard s src with
          | Error _ -> attempt (tries + 1)
          | Ok () ->
              T.Stack.connect shard s dst ~k:(fun r ->
                  match r with
                  | Ok () -> k (Ok (T.Tcp_ops.conn_of_sock shard s))
                  | Error T.Types.Eaddrinuse -> attempt (tries + 1)
                  | Error e -> k (Error e))
        end
      in
      attempt 0

let ops t =
  let single = T.Tcp_ops.of_stack t.shards.(0) in
  {
    single with
    T.Stack_ops.name = t.name;
    add_ip = add_ip t;
    remove_ip = remove_ip t;
    new_listener =
      (fun ~addr ~backlog ~on_accept ->
        T.Tcp_ops.listener_on_group (Array.to_list t.shards) ~addr ~backlog ~on_accept);
    connect = (fun ~dst ~k -> connect t ~dst ~k);
    import_conn =
      (fun x ->
        match T.Tcp_ops.unpack_export x with
        | Error e -> Error e
        | Ok ex -> (
            (* Steer migrated-in flows across shards the same way RSS
               steers their segments, so imports spread like natively
               accepted connections. *)
            let shard = shard_for t x.T.Stack_ops.e_flow in
            match T.Stack.import_conn shard ex with
            | Ok s -> Ok (T.Tcp_ops.conn_of_sock shard s)
            | Error e -> Error e));
  }

let api t = T.Ops_socket.make (ops t)
