(** mTCP-style userspace stack: per-core sharding with batched polling.

    mTCP (Jeong et al., NSDI 2014) gets its performance from three design
    points, all modelled here with the calibrated {!Sim.Cost_profile.mtcp}
    profile:

    - {b kernel bypass}: socket operations are library calls, no syscall or
      interrupt costs (the profile's [syscall] and [interrupt] are 0);
    - {b batched event-driven polling}: each core runs a poll loop that
      drains NIC queues in batches;
    - {b per-core sharding}: one independent stack instance per core with
      RSS steering, no shared state between cores. Outgoing connections
      pick their source port so that the RSS hash lands on the issuing
      shard, exactly like mTCP's per-core port selection.

    The facade exposes the whole shard group through one {!Stack_ops.t}, so
    NetKernel's ServiceLib drives mTCP exactly as it drives the kernel
    stack — the paper's "deploying mTCP without API change" (§6.3). *)

type t

val create :
  engine:Sim.Engine.t ->
  name:string ->
  cores:Sim.Cpu.Set.t ->
  vswitch:Vswitch.t ->
  registry:Tcpstack.Conn_registry.t ->
  rng:Nkutil.Rng.t ->
  ?profile:Sim.Cost_profile.t ->
  ?cc_factory:Tcpstack.Cc.factory ->
  ?tcb:Tcpstack.Tcb.config ->
  ?charge_user_copy:bool ->
  ?mon:Nkmon.t ->
  unit ->
  t
(** One shard per core in [cores]. [profile] defaults to
    {!Sim.Cost_profile.mtcp}. *)

val add_ip : t -> Addr.ip -> unit
(** Own [ip]: registers the facade's RSS dispatch with the vswitch and the
    ownership with every shard. *)

val ops : t -> Tcpstack.Stack_ops.t
(** The backend interface used by ServiceLib. [new_listener] listens on
    every shard (shared ⟨ip, port⟩, RSS-spread accepts, as with
    [SO_REUSEPORT]); [connect] picks the shard the reply RSS hash maps
    to. *)

val api : t -> Tcpstack.Socket_api.t
(** Direct application API over the shard group (an mTCP application linked
    with the library, for baselines outside NetKernel). *)

val shards : t -> Tcpstack.Stack.t array

val n_shards : t -> int

val stats : t -> Tcpstack.Stack.stats list
