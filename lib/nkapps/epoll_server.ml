module Types = Tcpstack.Types
module Socket_api = Tcpstack.Socket_api

type config = {
  addr : Addr.t;
  backlog : int;
  proto : Proto.t;
  app_cycles : float;
  app_cores : Sim.Cpu.Set.t option;
}

let config ?(backlog = 1024)
    ?(proto = Proto.Fixed { request = 64; response = 64; keepalive = false })
    ?(app_cycles = 0.0) ?app_cores addr =
  { addr; backlog; proto; app_cycles; app_cores; }

type stats = {
  mutable accepted : int;
  mutable requests : int;
  mutable bytes_in : int;
  mutable bytes_out : int;
  mutable errors : int;
  mutable active : int;
}

type conn = {
  fd : Socket_api.sock;
  mutable req_pending : int; (* Fixed proto: bytes missing of current request *)
  parser : Http.Parser.t option;
  outq : Types.payload Queue.t;
  mutable keepalive : bool;
  mutable closing : bool;
  mutable watching_write : bool;
}

type t = {
  engine : Sim.Engine.t;
  api : Socket_api.t;
  cfg : config;
  reactor : Reactor.t;
  listener : Socket_api.sock;
  stats : stats;
  ts : Nkutil.Timeseries.t;
  mutable stopped : bool;
}

let stats t = t.stats

let requests_timeseries t = t.ts

let charge_app t fd =
  if t.cfg.app_cycles > 0.0 then
    match t.cfg.app_cores with
    | None -> ()
    | Some cores -> Sim.Cpu.charge (Sim.Cpu.Set.pick cores ~hash:fd) ~cycles:t.cfg.app_cycles

let close_conn t c =
  if not c.closing then begin
    c.closing <- true;
    t.stats.active <- t.stats.active - 1;
    Reactor.unwatch t.reactor c.fd;
    t.api.Socket_api.close c.fd
  end

(* Push queued response payloads into the socket until it backpressures. *)
let rec flush t c =
  match Queue.peek_opt c.outq with
  | None ->
      if c.watching_write then begin
        c.watching_write <- false;
        Reactor.rewatch t.reactor c.fd ~readable:true ~writable:false
      end;
      if (not c.keepalive) && not c.closing then close_conn t c
  | Some payload ->
      t.api.Socket_api.send c.fd payload ~k:(fun r ->
          match r with
          | Ok n ->
              t.stats.bytes_out <- t.stats.bytes_out + n;
              Nkutil.Timeseries.add t.ts ~time:(Sim.Engine.now t.engine) (float_of_int n);
              let len = Types.payload_len payload in
              ignore (Queue.pop c.outq);
              if n < len then begin
                let rest =
                  match payload with
                  | Types.Zeros z -> Types.Zeros (z - n)
                  | Types.Data s -> Types.Data (String.sub s n (String.length s - n))
                in
                (* Re-queue the remainder at the front. *)
                let tmp = Queue.create () in
                Queue.add rest tmp;
                Queue.transfer c.outq tmp;
                Queue.transfer tmp c.outq
              end;
              flush t c
          | Error Types.Eagain ->
              if not c.watching_write then begin
                c.watching_write <- true;
                Reactor.rewatch t.reactor c.fd ~readable:true ~writable:true
              end
          | Error _ ->
              t.stats.errors <- t.stats.errors + 1;
              close_conn t c)

let respond t c ~keepalive =
  t.stats.requests <- t.stats.requests + 1;
  charge_app t c.fd;
  (match t.cfg.proto with
  | Proto.Fixed f -> Queue.add (Types.Zeros f.response) c.outq
  | Proto.Http h ->
      c.keepalive <- keepalive;
      let head = Http.response_header ~content_length:h.response ~keepalive () in
      if h.response <= 1024 then
        (* writev-style: header and small body leave in one send *)
        Queue.add (Types.Data (head ^ String.make h.response '\000')) c.outq
      else begin
        Queue.add (Types.Data head) c.outq;
        Queue.add (Types.Zeros h.response) c.outq
      end);
  flush t c

let on_request_bytes t c n =
  (* Fixed protocol: count request bytes; possibly several pipelined
     requests complete in one chunk. *)
  match t.cfg.proto with
  | Proto.Http _ -> ()
  | Proto.Fixed f ->
      let rec account n =
        if n > 0 then
          if n >= c.req_pending then begin
            let n = n - c.req_pending in
            c.req_pending <- f.request;
            respond t c ~keepalive:f.keepalive;
            account n
          end
          else c.req_pending <- c.req_pending - n
      in
      account n

let rec drain t c =
  if not c.closing then
    t.api.Socket_api.recv c.fd ~max:65536
      ~mode:(match t.cfg.proto with Proto.Fixed _ -> `Discard | Proto.Http _ -> `Auto)
      ~k:(fun r ->
        match r with
        | Ok payload when Types.payload_len payload = 0 ->
            (* Peer closed its half; finish what is queued and go away. *)
            c.keepalive <- false;
            if Queue.is_empty c.outq then close_conn t c
        | Ok payload ->
            let n = Types.payload_len payload in
            t.stats.bytes_in <- t.stats.bytes_in + n;
            (match (t.cfg.proto, c.parser) with
            | Proto.Fixed _, _ -> on_request_bytes t c n
            | Proto.Http _, Some parser ->
                let msgs =
                  try Http.Parser.feed parser payload
                  with Failure _ ->
                    t.stats.errors <- t.stats.errors + 1;
                    close_conn t c;
                    []
                in
                List.iter
                  (fun msg -> respond t c ~keepalive:msg.Http.Parser.keepalive)
                  msgs
            | Proto.Http _, None -> ());
            drain t c
        | Error Types.Eagain -> ()
        | Error _ ->
            t.stats.errors <- t.stats.errors + 1;
            close_conn t c)

let handle_conn t fd =
  t.stats.accepted <- t.stats.accepted + 1;
  t.stats.active <- t.stats.active + 1;
  let c =
    {
      fd;
      req_pending =
        (match t.cfg.proto with Proto.Fixed f -> f.request | Proto.Http _ -> 0);
      parser =
        (match t.cfg.proto with
        | Proto.Http _ -> Some (Http.Parser.create ())
        | Proto.Fixed _ -> None);
      outq = Queue.create ();
      keepalive = Proto.keepalive t.cfg.proto;
      closing = false;
      watching_write = false;
    }
  in
  Reactor.watch t.reactor fd ~readable:true ~writable:false (fun ev ->
      if ev.Types.hup && Queue.is_empty c.outq then close_conn t c
      else begin
        if ev.Types.readable then drain t c;
        if ev.Types.writable then flush t c
      end);
  (* Level-triggered: data may already be waiting. *)
  drain t c

let rec accept_loop t =
  if not t.stopped then
    t.api.Socket_api.accept t.listener ~k:(fun r ->
        match r with
        | Error (Types.Eclosed | Types.Einval) -> () (* listener closed *)
        | Error _ ->
            (* Transient listener failure (e.g. its NSM crashed): count it
               and keep accepting — the operator may re-home the listener,
               after which connections flow again. *)
            if not t.stopped then begin
              t.stats.errors <- t.stats.errors + 1;
              ignore
                (Sim.Engine.schedule t.engine ~delay:0.01 (fun () -> accept_loop t))
            end
        | Ok (fd, _peer) ->
            handle_conn t fd;
            accept_loop t)

(* One accept chain per worker thread (SO_REUSEPORT-style parallelism). *)
let accept_parallelism = 16

let start ~engine ~api cfg =
  match api.Socket_api.socket () with
  | Error e -> Error e
  | Ok ls -> (
      match api.Socket_api.bind ls cfg.addr with
      | Error e -> Error e
      | Ok () -> (
          match api.Socket_api.listen ls ~backlog:cfg.backlog with
          | Error e -> Error e
          | Ok () ->
              let t =
                {
                  engine;
                  api;
                  cfg;
                  reactor = Reactor.create api;
                  listener = ls;
                  stats =
                    { accepted = 0; requests = 0; bytes_in = 0; bytes_out = 0; errors = 0;
                      active = 0 };
                  ts = Nkutil.Timeseries.create ~bin_width:0.1 ();
                  stopped = false;
                }
              in
              for _ = 1 to accept_parallelism do
                accept_loop t
              done;
              Reactor.run t.reactor;
              Ok t))

let stop t =
  t.stopped <- true;
  t.api.Socket_api.close t.listener;
  Reactor.stop t.reactor
