module Types = Tcpstack.Types
module Socket_api = Tcpstack.Socket_api

type stats = { mutable commands : int; mutable hits : int; mutable misses : int }

type t = {
  engine : Sim.Engine.t;
  api : Socket_api.t;
  reactor : Reactor.t;
  table : (string, string) Hashtbl.t;
  stats : stats;
}

let stats t = t.stats

(* Split a buffer into complete CRLF-terminated lines plus the remainder. *)
let split_lines buf =
  let s = Buffer.contents buf in
  let lines = ref [] in
  let start = ref 0 in
  let i = ref 0 in
  let n = String.length s in
  while !i + 1 < n do
    if s.[!i] = '\r' && s.[!i + 1] = '\n' then begin
      lines := String.sub s !start (!i - !start) :: !lines;
      i := !i + 2;
      start := !i
    end
    else incr i
  done;
  Buffer.clear buf;
  Buffer.add_substring buf s !start (n - !start);
  List.rev !lines

let execute t line =
  t.stats.commands <- t.stats.commands + 1;
  match String.split_on_char ' ' line with
  | [ "GET"; key ] -> (
      match Hashtbl.find_opt t.table key with
      | Some v ->
          t.stats.hits <- t.stats.hits + 1;
          "$" ^ v
      | None ->
          t.stats.misses <- t.stats.misses + 1;
          "$-1")
  | "SET" :: key :: rest when rest <> [] ->
      Hashtbl.replace t.table key (String.concat " " rest);
      "+OK"
  | [ "DEL"; key ] ->
      if Hashtbl.mem t.table key then begin
        Hashtbl.remove t.table key;
        ":1"
      end
      else ":0"
  | _ -> "-ERR unknown command"

let rec send_all api fd data k =
  api.Socket_api.send fd (Types.Data data) ~k:(fun r ->
      match r with
      | Ok n when n >= String.length data -> k ()
      | Ok n -> send_all api fd (String.sub data n (String.length data - n)) k
      | Error _ -> k ())

let handle_conn t fd =
  let inbuf = Buffer.create 128 in
  let rec drain () =
    t.api.Socket_api.recv fd ~max:65536 ~mode:`Copy ~k:(fun r ->
        match r with
        | Ok (Types.Data "") | Ok (Types.Zeros 0) ->
            Reactor.unwatch t.reactor fd;
            t.api.Socket_api.close fd
        | Ok (Types.Data s) ->
            Buffer.add_string inbuf s;
            let replies =
              split_lines inbuf |> List.map (execute t)
              |> List.map (fun r -> r ^ "\r\n")
              |> String.concat ""
            in
            if replies = "" then drain () else send_all t.api fd replies drain
        | Ok (Types.Zeros _) ->
            (* Synthetic payload makes no sense for a parsed protocol. *)
            Reactor.unwatch t.reactor fd;
            t.api.Socket_api.close fd
        | Error Types.Eagain -> ()
        | Error _ ->
            Reactor.unwatch t.reactor fd;
            t.api.Socket_api.close fd)
  in
  Reactor.watch t.reactor fd ~readable:true ~writable:false (fun ev ->
      if ev.Types.readable then drain ());
  drain ()

let start ~engine ~api ~addr =
  match api.Socket_api.socket () with
  | Error e -> Error e
  | Ok ls -> (
      match api.Socket_api.bind ls addr with
      | Error e -> Error e
      | Ok () -> (
          match api.Socket_api.listen ls ~backlog:512 with
          | Error e -> Error e
          | Ok () ->
              let t =
                { engine; api; reactor = Reactor.create api;
                  table = Hashtbl.create 1024;
                  stats = { commands = 0; hits = 0; misses = 0 } }
              in
              let rec accept_loop () =
                api.Socket_api.accept ls ~k:(fun r ->
                    match r with
                    | Error (Types.Eclosed | Types.Einval) -> ()
                    | Error _ ->
                        (* Transient listener failure (e.g. its NSM crashed):
                           keep accepting so service resumes once the operator
                           re-homes the listener. *)
                        ignore
                          (Sim.Engine.schedule t.engine ~delay:0.01 (fun () ->
                               accept_loop ()))
                    | Ok (fd, _) ->
                        handle_conn t fd;
                        accept_loop ())
              in
              accept_loop ();
              Reactor.run t.reactor;
              Ok t))

module Client = struct
  type conn = {
    c_api : Socket_api.t;
    c_fd : Socket_api.sock;
    c_reactor : Reactor.t;
    c_buf : Buffer.t;
    waiters : (string -> unit) Queue.t;
    mutable c_dead : bool;
  }

  (* A lost connection must error every outstanding command — a command
     whose server died gets a reply, never a hang. *)
  let fail_conn c =
    if not c.c_dead then begin
      c.c_dead <- true;
      Reactor.unwatch c.c_reactor c.c_fd;
      c.c_api.Socket_api.close c.c_fd;
      Queue.iter (fun waiter -> waiter "-ERR connection lost") c.waiters;
      Queue.clear c.waiters
    end

  let connect ~engine ~api addr ~k =
    ignore engine;
    match api.Socket_api.socket () with
    | Error e -> k (Error e)
    | Ok fd ->
        api.Socket_api.connect fd addr ~k:(fun r ->
            match r with
            | Error e -> k (Error e)
            | Ok () ->
                let c =
                  { c_api = api; c_fd = fd; c_reactor = Reactor.create api;
                    c_buf = Buffer.create 128; waiters = Queue.create ();
                    c_dead = false }
                in
                let rec drain () =
                  api.Socket_api.recv fd ~max:65536 ~mode:`Copy ~k:(fun r ->
                      match r with
                      | Ok (Types.Data s) when s <> "" ->
                          Buffer.add_string c.c_buf s;
                          List.iter
                            (fun line ->
                              match Queue.pop c.waiters with
                              | waiter -> waiter line
                              | exception Queue.Empty -> ())
                            (split_lines c.c_buf);
                          drain ()
                      | Ok _ -> fail_conn c (* EOF *)
                      | Error Types.Eagain -> ()
                      | Error _ -> fail_conn c)
                in
                Reactor.watch c.c_reactor fd ~readable:true ~writable:false (fun ev ->
                    if ev.Types.readable then drain ());
                Reactor.run c.c_reactor;
                k (Ok c))

  let command c line k =
    if c.c_dead then k "-ERR connection lost"
    else begin
      Queue.add k c.waiters;
      send_all c.c_api c.c_fd (line ^ "\r\n") (fun () -> ())
    end

  let set c ~key ~value ~k =
    command c (Printf.sprintf "SET %s %s" key value) (fun reply ->
        if reply = "+OK" then k (Ok ()) else k (Error reply))

  let get c ~key ~k =
    command c ("GET " ^ key) (fun reply ->
        if reply = "$-1" then k (Ok None)
        else if String.length reply > 0 && reply.[0] = '$' then
          k (Ok (Some (String.sub reply 1 (String.length reply - 1))))
        else k (Error reply))

  let del c ~key ~k =
    command c ("DEL " ^ key) (fun reply ->
        if reply = ":1" then k (Ok true)
        else if reply = ":0" then k (Ok false)
        else k (Error reply))

  let close c =
    if not c.c_dead then begin
      c.c_dead <- true;
      Reactor.unwatch c.c_reactor c.c_fd;
      c.c_api.Socket_api.close c.c_fd
    end
end
