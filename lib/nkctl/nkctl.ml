open Nkcore

module Engine = Sim.Engine
module Cpu = Sim.Cpu

module Policy = struct
  type t = {
    period : float;
    high_watermark : float;
    low_watermark : float;
    min_nsms : int;
    max_nsms : int;
    cooldown : float;
    ce_scale_watermark : float;
    max_ce_shards : int;
  }

  let default =
    {
      period = 0.5;
      high_watermark = 0.7;
      low_watermark = 0.25;
      min_nsms = 1;
      max_nsms = 8;
      cooldown = 1.0;
      (* CE scale-out is opt-in: infinity means the busiest shard can never
         cross the watermark, so the default policy only manages NSMs. *)
      ce_scale_watermark = infinity;
      max_ce_shards = 4;
    }
end

type nsm_state = Active | Draining

type managed_nsm = {
  nsm : Nsm.t;
  mutable nstate : nsm_state;
  mutable last_busy : float; (* busy cycles at the previous sample *)
}

type managed_vm = { vm : Vm.t; mutable home : managed_nsm }

type sample = {
  s_time : float;
  s_active : int;
  s_draining : int;
  s_utilization : float;
  s_conns : int;
  s_ce_utilization : float;
      (* busiest CoreEngine shard's core utilization over the period *)
}

type stats = {
  mutable scale_ups : int;
  mutable scale_downs : int;
  mutable handovers : int;
  mutable failovers : int;
  mutable drains_completed : int;
  mutable ce_scale_outs : int;
  mutable protocol_switches : int;
}

type t = {
  host : Host.t;
  policy : Policy.t;
  spawn : int -> Nsm.t;
  mutable pool : managed_nsm list; (* spawn order *)
  mutable vms : managed_vm list; (* add order *)
  mutable spawned : int;
  mutable samples_rev : sample list;
  stats : stats;
  mutable last_scale : float;
  mutable last_ce_scale : float;
  mutable ce_last_busy : float array; (* per-shard busy cycles at last sample *)
  mutable last_sample_time : float;
  mutable running : bool;
  c_scale_up : Nkmon.Registry.counter;
  c_scale_down : Nkmon.Registry.counter;
  c_handover : Nkmon.Registry.counter;
  c_failover : Nkmon.Registry.counter;
  c_drain_done : Nkmon.Registry.counter;
  c_ce_scale : Nkmon.Registry.counter;
  c_proto_switch : Nkmon.Registry.counter;
  g_active : Nkmon.Registry.gauge;
  g_draining : Nkmon.Registry.gauge;
}

let ctl_event t name detail =
  let mon = Host.mon t.host in
  if Nkmon.tracing mon then
    Nkmon.event mon (Nkmon.Trace.Custom { component = "nkctl"; name; detail })

let create host ?(policy = Policy.default) ~spawn () =
  let mon = Host.mon host in
  let c name = Nkmon.counter mon ~component:"nkctl" ~instance:"ctl" ~name in
  let g name = Nkmon.gauge mon ~component:"nkctl" ~instance:"ctl" ~name in
  {
    host;
    policy;
    spawn;
    pool = [];
    vms = [];
    spawned = 0;
    samples_rev = [];
    stats =
      { scale_ups = 0; scale_downs = 0; handovers = 0; failovers = 0;
        drains_completed = 0; ce_scale_outs = 0; protocol_switches = 0 };
    last_scale = -.infinity;
    last_ce_scale = -.infinity;
    ce_last_busy =
      (if Host.netkernel_enabled host then
         Array.map Cpu.busy_cycles (Host.ce_cores host)
       else [||]);
    last_sample_time = Engine.now (Host.engine host);
    running = false;
    c_scale_up = c "scale_ups";
    c_scale_down = c "scale_downs";
    c_handover = c "handovers";
    c_failover = c "failovers";
    c_drain_done = c "drains_completed";
    c_ce_scale = c "ce_scale_outs";
    c_proto_switch = c "protocol_switches";
    g_active = g "active_nsms";
    g_draining = g "draining_nsms";
  }

let find_managed t nsm =
  List.find_opt (fun m -> Nsm.id m.nsm = Nsm.id nsm) t.pool

(* A retired NSM set the same flag as a crashed one ([Nsm.retire] /
   [Nsm.fail]), and its device is gone from CoreEngine either way — flows
   routed there would pin on a corpse. Refuse loudly rather than re-adding
   it to the pool. *)
let check_live ~verb nsm =
  if Nsm.failed nsm then
    invalid_arg
      (Printf.sprintf "Nkctl.%s: NSM %s is retired or crashed" verb
         (Nsm.name nsm))

let manage t nsm =
  check_live ~verb:"manage" nsm;
  match find_managed t nsm with
  | Some _ -> ()
  | None ->
      t.pool <- t.pool @ [ { nsm; nstate = Active; last_busy = Nsm.busy_cycles nsm } ]

let managed t nsm =
  manage t nsm;
  Option.get (find_managed t nsm)

let add_vm t vm ~home =
  let home = managed t home in
  if not (List.exists (fun mv -> Vm.vm_id mv.vm = Vm.vm_id vm) t.vms) then
    t.vms <- t.vms @ [ { vm; home } ]

let actives t = List.filter (fun m -> m.nstate = Active) t.pool

let active_nsms t = List.map (fun m -> m.nsm) (actives t)

let pool_size t = List.length t.pool

let samples t = List.rev t.samples_rev

let stats t = t.stats

let vms_homed_on t m =
  List.filter (fun mv -> Nsm.id mv.home.nsm = Nsm.id m.nsm) t.vms

(* ---- live handover ------------------------------------------------------ *)

(* Re-home [mv] onto [target]: CoreEngine sends new sockets to the target at
   once (attach replaces the assignment), established connections keep their
   conn-table routes to the source, and the VM's listening sockets are closed
   on the source and transparently re-created — GuestLib replays
   socket/bind/listen NQEs which land on the target via first-NQE placement.
   Ordering matters: the source must release the ⟨ip, port⟩ endpoints before
   the target claims them, or closing the source listener would tear down the
   target's fresh vswitch entry. *)
let rehome t mv target ~source_alive =
  let vm_id = Vm.vm_id mv.vm in
  let ce = Host.coreengine t.host in
  (match Vm.guestlib mv.vm with
  | None -> invalid_arg "Nkctl: not a NetKernel VM"
  | Some gl ->
      let listeners = Guestlib.listening_socks gl in
      if source_alive then Nsm.close_vm_listeners mv.home.nsm ~vm_id;
      List.iter (fun sock -> Coreengine.forget_route ce ~vm_id ~sock) listeners;
      Vm.attach_nsm mv.vm target.nsm;
      Guestlib.remigrate_listeners gl);
  mv.home <- target;
  t.stats.handovers <- t.stats.handovers + 1;
  Nkmon.Registry.incr t.c_handover;
  ctl_event t "handover"
    (Printf.sprintf "vm=%d target=%s" vm_id (Nsm.name target.nsm))

(* Once no tracked VM calls [m] home, stop CoreEngine from placing new
   sockets there and let the policy loop retire it at zero connections. *)
let drain_if_empty t m =
  if m.nstate = Active && not (Nsm.failed m.nsm) && vms_homed_on t m = [] then begin
    m.nstate <- Draining;
    Coreengine.drain_nsm (Host.coreengine t.host) ~nsm_id:(Nsm.id m.nsm);
    ctl_event t "drain_start" (Printf.sprintf "nsm=%s" (Nsm.name m.nsm))
  end

let handover t ~vm ~target =
  check_live ~verb:"handover" target;
  let target = managed t target in
  let mv =
    match List.find_opt (fun mv -> Vm.vm_id mv.vm = Vm.vm_id vm) t.vms with
    | Some mv -> mv
    | None -> invalid_arg "Nkctl.handover: VM not tracked (use add_vm)"
  in
  if Nsm.id mv.home.nsm <> Nsm.id target.nsm then begin
    let source = mv.home in
    rehome t mv target ~source_alive:(not (Nsm.failed source.nsm));
    drain_if_empty t source
  end

(* Live protocol handover ("changing the network stack on the fly", §3.2):
   mechanically a rehome onto an NSM speaking a different transport. New
   sockets — and the listeners GuestLib replays — land on the target and
   speak its protocol at once; established connections finish on the source
   stack's protocol and the source drains out from under them. *)
let switch_protocol t ~vm ~target =
  check_live ~verb:"switch_protocol" target;
  let target = managed t target in
  let mv =
    match List.find_opt (fun mv -> Vm.vm_id mv.vm = Vm.vm_id vm) t.vms with
    | Some mv -> mv
    | None -> invalid_arg "Nkctl.switch_protocol: VM not tracked (use add_vm)"
  in
  if Nsm.id mv.home.nsm <> Nsm.id target.nsm then begin
    let source = mv.home in
    let from_proto = Nsm.proto source.nsm in
    let to_proto = Nsm.proto target.nsm in
    rehome t mv target ~source_alive:(not (Nsm.failed source.nsm));
    drain_if_empty t source;
    if not (String.equal from_proto to_proto) then begin
      t.stats.protocol_switches <- t.stats.protocol_switches + 1;
      Nkmon.Registry.incr t.c_proto_switch;
      ctl_event t "protocol_switch"
        (Printf.sprintf "vm=%d %s->%s target=%s" (Vm.vm_id mv.vm) from_proto
           to_proto (Nsm.name target.nsm))
    end
  end

(* Drop a VM or NSM from tracking with no side effects: Nkfabric is about to
   run its own cross-host migration and must not race the local policy loop
   (a retired source NSM would otherwise read as a crash and trigger a
   failover rehome fighting the migration). *)
let release_vm t ~vm =
  t.vms <- List.filter (fun mv -> Vm.vm_id mv.vm <> Vm.vm_id vm) t.vms

let release_nsm t nsm =
  t.pool <- List.filter (fun m -> Nsm.id m.nsm <> Nsm.id nsm) t.pool

(* ---- policy loop -------------------------------------------------------- *)

let spawn_managed t =
  let nsm = t.spawn t.spawned in
  t.spawned <- t.spawned + 1;
  let m = { nsm; nstate = Active; last_busy = Nsm.busy_cycles nsm } in
  t.pool <- t.pool @ [ m ];
  ctl_event t "spawn" (Printf.sprintf "nsm=%s" (Nsm.name nsm));
  m

(* The operator-facing spawn verb: alert responders (Nkobs subscribers)
   use it to bring up capacity outside the watermark loop, then [handover]
   the breaching tenant onto the returned NSM. *)
let spawn_nsm t = (spawn_managed t).nsm

(* Least-loaded active by tracked-VM count (ties broken by spawn order). *)
let pick_target t ~excluding =
  let candidates =
    List.filter (fun m -> Nsm.id m.nsm <> Nsm.id excluding.nsm) (actives t)
  in
  match candidates with
  | [] -> None
  | first :: rest ->
      Some
        (List.fold_left
           (fun best m ->
             if List.length (vms_homed_on t m) < List.length (vms_homed_on t best)
             then m
             else best)
           first rest)

(* 1. Failover: replace crashed NSMs and re-place their VMs. [Nsm.fail]
   already made CoreEngine error out every affected socket, so here the
   controller only restores capacity and re-homes listeners. *)
let detect_failures t =
  let failed, alive =
    List.partition (fun m -> Nsm.failed m.nsm && m.nstate <> Draining) t.pool
  in
  (* Draining NSMs that failed (or were retired) just leave the pool. *)
  let alive = List.filter (fun m -> not (Nsm.failed m.nsm)) alive in
  t.pool <- alive;
  List.iter
    (fun dead ->
      t.stats.failovers <- t.stats.failovers + 1;
      Nkmon.Registry.incr t.c_failover;
      ctl_event t "failover" (Printf.sprintf "nsm=%s" (Nsm.name dead.nsm));
      let orphans = vms_homed_on t dead in
      List.iter
        (fun mv ->
          let target =
            match pick_target t ~excluding:dead with
            | Some m -> m
            | None -> spawn_managed t
          in
          rehome t mv target ~source_alive:false)
        orphans)
    failed;
  if actives t = [] && t.vms <> [] then ignore (spawn_managed t)

(* 2. Retire drained NSMs whose last established connection closed. *)
let complete_drains t =
  let ce = Host.coreengine t.host in
  let done_, rest =
    List.partition
      (fun m ->
        m.nstate = Draining
        && Coreengine.nsm_conn_count ce ~nsm_id:(Nsm.id m.nsm) = 0)
      t.pool
  in
  t.pool <- rest;
  List.iter
    (fun m ->
      Nsm.retire m.nsm;
      t.stats.drains_completed <- t.stats.drains_completed + 1;
      Nkmon.Registry.incr t.c_drain_done;
      ctl_event t "drain_done" (Printf.sprintf "nsm=%s" (Nsm.name m.nsm)))
    done_

(* 3. Sample per-NSM load from Nkmon-visible signals: vCPU utilization over
   the last period plus CoreEngine connection counts. *)
let take_sample t =
  let now = Engine.now (Host.engine t.host) in
  let elapsed = now -. t.last_sample_time in
  let ce = Host.coreengine t.host in
  let util_of m =
    let busy = Nsm.busy_cycles m.nsm in
    let delta = busy -. m.last_busy in
    m.last_busy <- busy;
    let capacity =
      Array.fold_left
        (fun acc core -> acc +. (Cpu.freq_hz core *. elapsed))
        0.0
        (Cpu.Set.cores (Nsm.cores m.nsm))
    in
    if capacity > 0.0 then delta /. capacity else 0.0
  in
  let act = actives t in
  let utils = List.map util_of act in
  (* Draining NSMs still burn cycles; account them so last_busy stays fresh,
     but only actives drive the watermark decision. *)
  List.iter (fun m -> if m.nstate = Draining then ignore (util_of m)) t.pool;
  let mean =
    match utils with
    | [] -> 0.0
    | _ -> List.fold_left ( +. ) 0.0 utils /. float_of_int (List.length utils)
  in
  let conns =
    List.fold_left
      (fun acc m -> acc + Coreengine.nsm_conn_count ce ~nsm_id:(Nsm.id m.nsm))
      0 t.pool
  in
  (* The CE signal is the *busiest* shard, not the mean: the affinity
     function can leave one shard hot while others idle, and only the hot
     shard's saturation throttles switching. Shards added by a scale-out
     start with delta 0 (their busy at appearance becomes the baseline). *)
  let ce_util =
    if not (Host.netkernel_enabled t.host) || elapsed <= 0.0 then 0.0
    else begin
      let cores = Host.ce_cores t.host in
      if Array.length t.ce_last_busy < Array.length cores then begin
        let grown =
          Array.init (Array.length cores) (fun i ->
              if i < Array.length t.ce_last_busy then t.ce_last_busy.(i)
              else Cpu.busy_cycles cores.(i))
        in
        t.ce_last_busy <- grown
      end;
      Array.to_list cores
      |> List.mapi (fun i core ->
             let busy = Cpu.busy_cycles core in
             let delta = busy -. t.ce_last_busy.(i) in
             t.ce_last_busy.(i) <- busy;
             delta /. (Cpu.freq_hz core *. elapsed))
      |> List.fold_left Float.max 0.0
    end
  in
  let s =
    {
      s_time = now;
      s_active = List.length act;
      s_draining = List.length t.pool - List.length act;
      s_utilization = mean;
      s_conns = conns;
      s_ce_utilization = ce_util;
    }
  in
  t.samples_rev <- s :: t.samples_rev;
  t.last_sample_time <- now;
  Nkmon.Registry.set t.g_active (float_of_int s.s_active);
  Nkmon.Registry.set t.g_draining (float_of_int s.s_draining);
  s

(* Spread tracked VMs over the active pool: move VMs off the most crowded
   NSM while another has at least two fewer. *)
let rebalance t =
  let continue_ = ref true in
  while !continue_ do
    continue_ := false;
    match actives t with
    | [] | [ _ ] -> ()
    | act ->
        let count m = List.length (vms_homed_on t m) in
        let most =
          List.fold_left (fun b m -> if count m > count b then m else b)
            (List.hd act) act
        in
        let least =
          List.fold_left (fun b m -> if count m < count b then m else b)
            (List.hd act) act
        in
        if count most >= count least + 2 then begin
          (match vms_homed_on t most with
          | mv :: _ -> rehome t mv least ~source_alive:true
          | [] -> ());
          continue_ := true
        end
  done

let scale_out_ce t ~add =
  Host.scale_ce t.host ~add;
  t.stats.ce_scale_outs <- t.stats.ce_scale_outs + 1;
  Nkmon.Registry.incr t.c_ce_scale;
  ctl_event t "ce_scale_out"
    (Printf.sprintf "add=%d shards=%d" add
       (Coreengine.n_shards (Host.coreengine t.host)))

(* 4. Watermark decisions, rate-limited by the cooldown. NSM and CE
   scale-outs are gated by independent cooldowns: a host whose CE saturates
   while its NSMs also run hot needs both grown, and neither decision
   should starve the other. *)
let scale t (s : sample) =
  let now = Engine.now (Host.engine t.host) in
  let n_active = s.s_active in
  if
    Host.netkernel_enabled t.host
    && s.s_ce_utilization > t.policy.ce_scale_watermark
    && Coreengine.n_shards (Host.coreengine t.host) < t.policy.max_ce_shards
    && now -. t.last_ce_scale >= t.policy.cooldown
  then begin
    scale_out_ce t ~add:1;
    t.last_ce_scale <- now
  end;
  if now -. t.last_scale >= t.policy.cooldown then
    if s.s_utilization > t.policy.high_watermark && n_active < t.policy.max_nsms
    then begin
      ignore (spawn_managed t);
      t.stats.scale_ups <- t.stats.scale_ups + 1;
      Nkmon.Registry.incr t.c_scale_up;
      t.last_scale <- now;
      rebalance t
    end
    else if
      s.s_utilization < t.policy.low_watermark && n_active > t.policy.min_nsms
    then begin
      (* Drain the newest active NSM; its VMs move to the others first. *)
      match List.rev (actives t) with
      | [] -> ()
      | victim :: _ ->
          List.iter
            (fun mv ->
              match pick_target t ~excluding:victim with
              | Some target -> rehome t mv target ~source_alive:true
              | None -> ())
            (vms_homed_on t victim);
          if vms_homed_on t victim = [] then begin
            drain_if_empty t victim;
            t.stats.scale_downs <- t.stats.scale_downs + 1;
            Nkmon.Registry.incr t.c_scale_down;
            t.last_scale <- now
          end
    end

let tick t =
  detect_failures t;
  complete_drains t;
  let s = take_sample t in
  scale t s

let rec loop t =
  if t.running then
    ignore
      (Engine.schedule (Host.engine t.host) ~delay:t.policy.period (fun () ->
           if t.running then begin
             tick t;
             loop t
           end))

let start t =
  if not t.running then begin
    t.running <- true;
    t.last_sample_time <- Engine.now (Host.engine t.host);
    ctl_event t "start"
      (Printf.sprintf "period=%gs pool=%d" t.policy.period (pool_size t));
    loop t
  end

let stop t = t.running <- false
