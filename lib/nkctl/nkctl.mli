open Nkcore

(** Nkctl: the operator control plane for NSM lifecycle.

    The paper's central promise (§2, §7.5) is that once the network stack is
    part of the virtualized infrastructure, the {e operator} can manage it
    like any other infrastructure service: scale it with load, move VMs
    between stack modules without breaking connections, and survive a stack
    module crash without taking the tenants down. Nkctl is that operator:
    a policy loop driven entirely by simulator virtual time and Nkmon
    metrics, with three pillars —

    - {b autoscaling}: sample per-NSM vCPU utilization and connection counts
      every [period]; spawn a fresh NSM above [high_watermark], drain and
      retire the newest one below [low_watermark];
    - {b live handover}: re-home a VM to a target NSM — new sockets land on
      the target immediately, established connections finish on the source,
      and listening sockets are transparently re-created on the target (the
      vswitch 4-tuple flow table keeps accepted connections flowing to the
      source stack until they close);
    - {b failover}: when an NSM crashes ({!Nsm.fail}), CoreEngine errors out
      every affected socket (ECONNRESET, never a hang), and the next tick
      re-places the orphaned VMs on surviving or freshly spawned NSMs and
      re-homes their listeners.

    All decisions are deterministic: pool and VM lists are kept in insertion
    order, and every timer is virtual. *)

module Policy : sig
  type t = {
    period : float;  (** seconds of virtual time between control ticks *)
    high_watermark : float;
        (** mean active-NSM vCPU utilization above which to scale up *)
    low_watermark : float;
        (** mean active-NSM vCPU utilization below which to scale down *)
    min_nsms : int;  (** never drain below this many active NSMs *)
    max_nsms : int;  (** never spawn above this many active NSMs *)
    cooldown : float;
        (** seconds of virtual time between consecutive scale decisions *)
    ce_scale_watermark : float;
        (** busiest-CoreEngine-shard core utilization above which to add a
            switching shard ({!Host.scale_ce}); [infinity] disables CE
            scale-out. Gated by its own [cooldown] window, independent of
            NSM decisions. *)
    max_ce_shards : int;  (** never grow the CoreEngine past this many shards *)
  }

  val default : t
  (** [{ period = 0.5; high_watermark = 0.7; low_watermark = 0.25;
        min_nsms = 1; max_nsms = 8; cooldown = 1.0;
        ce_scale_watermark = infinity; max_ce_shards = 4 }] *)
end

type t

type sample = {
  s_time : float;
  s_active : int;  (** active (non-draining) NSMs in the pool *)
  s_draining : int;
  s_utilization : float;  (** mean vCPU utilization across active NSMs *)
  s_conns : int;  (** CoreEngine connection-table entries across the pool *)
  s_ce_utilization : float;
      (** busiest CoreEngine shard's core utilization over the period
          (0.0 when NetKernel is not enabled on the host) *)
}

type stats = {
  mutable scale_ups : int;
  mutable scale_downs : int;
  mutable handovers : int;  (** VM re-homings (operator- or scale-driven) *)
  mutable failovers : int;  (** crashed NSMs detected and replaced *)
  mutable drains_completed : int;  (** drained NSMs retired at zero conns *)
  mutable ce_scale_outs : int;  (** CoreEngine shards added by the policy *)
  mutable protocol_switches : int;
      (** live protocol handovers ({!switch_protocol}) *)
}

val create :
  Host.t -> ?policy:Policy.t -> spawn:(int -> Nsm.t) -> unit -> t
(** [spawn i] must create and return the [i]-th fresh NSM (0-based over the
    controller's lifetime); Nkctl calls it for scale-ups and failover
    re-placement. *)

val manage : t -> Nsm.t -> unit
(** Put an existing NSM under control (it joins the pool as active). Raises
    [Invalid_argument] if the NSM is retired or crashed ([Nsm.failed]) —
    a dead module must never re-enter the pool. *)

val add_vm : t -> Vm.t -> home:Nsm.t -> unit
(** Track a NetKernel VM; [home] is the NSM currently serving it (it is
    added to the pool if not yet managed). *)

val handover : t -> vm:Vm.t -> target:Nsm.t -> unit
(** Live handover: new sockets from [vm] land on [target] at once;
    established connections finish on the source NSM, which is marked
    draining in CoreEngine once no tracked VM calls it home and is retired
    by the policy loop when its connection count reaches zero. Listening
    sockets are closed on the source and transparently re-created on
    [target] without the application noticing. Raises [Invalid_argument]
    if [target] is retired or crashed — handing flows to a dead NSM would
    silently pin them on a module CoreEngine no longer polls. *)

val switch_protocol : t -> vm:Vm.t -> target:Nsm.t -> unit
(** Live protocol handover: move [vm] to an NSM speaking a different
    transport ("changing the network stack on the fly", paper §3.2).
    Mechanically a {!handover} — new sockets (and replayed listeners) land
    on [target] immediately and speak its protocol, while established
    connections finish on the source stack's protocol — plus a recorded
    [protocol_switch] control event naming the two protocol ids
    ({!Nsm.proto}). Raises [Invalid_argument] if [target] is dead or the
    VM is untracked; a same-protocol target degrades to a plain
    handover. *)

val release_vm : t -> vm:Vm.t -> unit
(** Stop tracking [vm] with no side effects (no drain, no handover): the
    cross-host migration path in Nkfabric takes over its placement and must
    not race the local policy loop. No-op if the VM is untracked. *)

val release_nsm : t -> Nsm.t -> unit
(** Drop an NSM from the pool with no side effects: Nkfabric retires the
    migration source itself, and leaving it in the pool would read as a
    crash on the next tick and trigger a spurious failover. No-op if the
    NSM is unmanaged. *)

val spawn_nsm : t -> Nsm.t
(** Spawn one fresh NSM via the controller's [spawn] closure and put it in
    the pool as active (a recorded [spawn] control event, like a policy
    scale-up but on operator demand). This is the verb an Nkobs alert
    responder pairs with {!handover}: bring up capacity the moment a
    tenant SLO breaches, without waiting for the watermark loop. *)

val scale_out_ce : t -> add:int -> unit
(** Grow the host's CoreEngine by [add] switching shards ({!Host.scale_ce})
    and record the action. The policy loop calls this when the busiest shard
    crosses [ce_scale_watermark]; operators may call it directly. *)

val start : t -> unit
(** Begin the periodic policy loop (idempotent). *)

val stop : t -> unit
(** Stop ticking; the pool is left as-is. *)

val tick : t -> unit
(** Run one control iteration now: failover detection, drain completion,
    sampling, then watermark decisions. [start] calls this on a timer; tests
    and experiments may call it directly. *)

val active_nsms : t -> Nsm.t list
(** Active (non-draining, non-failed) pool members, in spawn order. *)

val pool_size : t -> int
(** All pool members including draining ones. *)

val samples : t -> sample list
(** Every sample recorded so far, oldest first. *)

val stats : t -> stats
