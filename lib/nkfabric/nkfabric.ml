open Nkcore
module Engine = Sim.Engine
module Cpu = Sim.Cpu
module Ring = Nkutil.Spsc_ring

(* ---- inter-host NQE spine ----------------------------------------------- *)

module Spine = struct
  type link = {
    l_latency : float;
    l_bytes_per_sec : float;
    mutable l_free_at : float;
    mutable l_nqes : int;
    mutable l_bytes : int;
  }

  type t = {
    engine : Engine.t;
    latency : float;
    bytes_per_sec : float;
    links : (int * int, link) Hashtbl.t; (* directed (src node, dst node) *)
    c_nqes : Nkmon.Registry.counter;
    c_bytes : Nkmon.Registry.counter;
  }

  let create ~engine ~mon ?(latency = 50e-6) ?(gbps = 40.0) () =
    let c name = Nkmon.counter mon ~component:"nkfabric" ~instance:"spine" ~name in
    let bytes_per_sec = gbps *. 1e9 /. 8.0 in
    (* Default per-link capacity next to the shipped counters, so
       saturation (windowed bytes_shipped delta vs capacity) is computable
       from a registry snapshot alone — the Nkobs spine alert reads it. *)
    Nkmon.sampler mon ~component:"nkfabric" ~instance:"spine"
      ~name:"link_capacity_bytes_per_sec" (fun () -> bytes_per_sec);
    {
      engine;
      latency;
      bytes_per_sec;
      links = Hashtbl.create 16;
      c_nqes = c "nqes_shipped";
      c_bytes = c "bytes_shipped";
    }

  let link t ~src ~dst =
    match Hashtbl.find_opt t.links (src, dst) with
    | Some l -> l
    | None ->
        let l =
          {
            l_latency = t.latency;
            l_bytes_per_sec = t.bytes_per_sec;
            l_free_at = 0.0;
            l_nqes = 0;
            l_bytes = 0;
          }
        in
        Hashtbl.replace t.links (src, dst) l;
        l

  let set_link t ~src ~dst ~latency ~gbps =
    Hashtbl.replace t.links (src, dst)
      {
        l_latency = latency;
        l_bytes_per_sec = gbps *. 1e9 /. 8.0;
        l_free_at = 0.0;
        l_nqes = 0;
        l_bytes = 0;
      }

  (* Store-and-forward: serialization at the link rate, then propagation.
     [l_free_at] is monotone, so same-link deliveries stay FIFO — the
     relay's per-connection ordering guarantee rides on this. *)
  let ship t ~src ~dst ~bytes deliver =
    let l = link t ~src ~dst in
    let now = Engine.now t.engine in
    let start = Float.max now l.l_free_at in
    let txtime = float_of_int bytes /. l.l_bytes_per_sec in
    l.l_free_at <- start +. txtime;
    l.l_nqes <- l.l_nqes + 1;
    l.l_bytes <- l.l_bytes + bytes;
    Nkmon.Registry.incr t.c_nqes;
    Nkmon.Registry.add t.c_bytes bytes;
    ignore (Engine.schedule_at t.engine ~at:(start +. txtime +. l.l_latency) deliver)

  let shipped t =
    Nkutil.Det_tbl.fold
      ~cmp:(Nkutil.Det_tbl.pair Int.compare Int.compare)
      (fun _ l (n, b) -> (n + l.l_nqes, b + l.l_bytes))
      t.links (0, 0)
end

(* ---- cluster ------------------------------------------------------------- *)

type policy = Spread | Pack

type node = {
  n_index : int;
  n_host : Host.t;
  n_mon : Nkmon.t; (* per-node registry + trace ring *)
  n_spans : Nkspan.t; (* per-node spans, host-unique ids *)
  mutable n_nsms : Nsm.t list; (* serving pool, add order *)
  mutable n_ctl : Nkctl.t option;
}

(* The standing datapath of a migrated VM. The home side never changes (the
   VM's GuestLib lives there); the destination side is re-pointed on
   re-migration, and every spine delivery resolves [r_proxy] at arrival
   time, so shipments in flight across a re-migration still land on the
   current destination. *)
type relay = {
  r_vm_id : int;
  r_home : node;
  r_stub : Nk_device.t;
  mutable r_dest : node;
  mutable r_dest_nsm : Nsm.t;
  mutable r_proxy : Nk_device.t;
  mutable r_nqes_out : int; (* home -> dest *)
  mutable r_nqes_back : int; (* dest -> home *)
}

type vm_entry = {
  e_vm : Vm.t;
  e_home : node;
  mutable e_node : node; (* node currently serving the VM's flows *)
  mutable e_nsm : Nsm.t;
  mutable e_relay : relay option;
}

type stats = {
  migrations : int;
  vms_relayed : int;
  nqes_shipped : int;
  bytes_shipped : int;
}

type t = {
  tb : Testbed.t;
  spine : Spine.t;
  policy : policy;
  mutable nodes : node list; (* add order *)
  mutable vms : vm_entry list; (* add order *)
  relays : (int, relay) Hashtbl.t; (* vm_id -> relay (lookup only) *)
  scratch : bytes array; (* relay drain burst buffer *)
  mutable migrations : int;
  c_migrations : Nkmon.Registry.counter;
}

let fabric_event t name detail =
  let mon = t.tb.Testbed.mon in
  if Nkmon.tracing mon then
    Nkmon.event mon (Nkmon.Trace.Custom { component = "nkfabric"; name; detail })

let create ?(policy = Spread) ?latency ?gbps tb =
  {
    tb;
    spine = Spine.create ~engine:tb.Testbed.engine ~mon:tb.Testbed.mon ?latency ?gbps ();
    policy;
    nodes = [];
    vms = [];
    relays = Hashtbl.create 16;
    scratch = Array.make 256 Bytes.empty;
    migrations = 0;
    c_migrations =
      Nkmon.counter tb.Testbed.mon ~component:"nkfabric" ~instance:"cluster"
        ~name:"migrations";
  }

(* Disjoint per-node id ranges keep device ids unique cluster-wide, so a
   migrated NSM's id can exist on two hosts without clashing. The NQE vm_id
   field is one byte, which bounds the id space. *)
let ids_per_node = 40

let add_node t ~name =
  let idx = List.length t.nodes in
  let base = 1 + (ids_per_node * idx) in
  if base + ids_per_node > 256 then
    invalid_arg "Nkfabric.add_node: id space exhausted (max 6 nodes)";
  (* Each node keeps its own registry, trace ring and span recorder — built
     with the testbed's knobs, so one Config governs the whole cluster. Span
     host index [idx + 1] leaves 0 for the testbed-wide instance (plain
     hosts outside the cluster); ids can then never collide across hosts. *)
  let engine = t.tb.Testbed.engine in
  let cfg = t.tb.Testbed.config in
  let mon =
    Nkmon.create ?trace_capacity:cfg.Testbed.Config.trace_capacity
      ~trace_enabled:cfg.Testbed.Config.trace_enabled
      ~now:(fun () -> Engine.now engine)
      ()
  in
  let spans =
    Nkspan.create ~span_every:cfg.Testbed.Config.span_every ~host_index:(idx + 1)
      ~now:(fun () -> Engine.now engine)
      ()
  in
  let host = Testbed.add_host ~mon ~spans t.tb ~name in
  Host.set_id_base host base;
  let node =
    { n_index = idx; n_host = host; n_mon = mon; n_spans = spans; n_nsms = []; n_ctl = None }
  in
  t.nodes <- t.nodes @ [ node ];
  node

let testbed t = t.tb

let nodes t = t.nodes

let node_host n = n.n_host

let node_index n = n.n_index

let node_mon n = n.n_mon

let node_spans n = n.n_spans

let node_nsms n = n.n_nsms

let add_nsm _t node nsm =
  if not (List.exists (fun m -> Nsm.id m = Nsm.id nsm) node.n_nsms) then
    node.n_nsms <- node.n_nsms @ [ nsm ]

let set_ctl node ctl = node.n_ctl <- Some ctl

(* ---- placement ----------------------------------------------------------- *)

let live_nsms node = List.filter (fun m -> not (Nsm.failed m)) node.n_nsms

let node_vm_count t node =
  List.length (List.filter (fun e -> e.e_node.n_index = node.n_index) t.vms)

let node_utilization t node =
  let now = Engine.now t.tb.Testbed.engine in
  if now <= 0.0 then 0.0
  else begin
    let busy, cap =
      List.fold_left
        (fun (b, c) nsm ->
          let cores = Cpu.Set.cores (Nsm.cores nsm) in
          ( b +. Nsm.busy_cycles nsm,
            c +. Array.fold_left (fun acc core -> acc +. (Cpu.freq_hz core *. now)) 0.0 cores
          ))
        (0.0, 0.0) (live_nsms node)
    in
    if cap > 0.0 then busy /. cap else 0.0
  end

let pick_node t =
  match List.filter (fun n -> live_nsms n <> []) t.nodes with
  | [] -> invalid_arg "Nkfabric.place_vm: no node has a live NSM"
  | first :: rest -> (
      match t.policy with
      | Spread ->
          (* Lowest utilization; ties by VM count, then add order (the fold
             keeps the earlier node unless strictly better). *)
          List.fold_left
            (fun best n ->
              let fu = Float.compare (node_utilization t n) (node_utilization t best) in
              if fu < 0 || (fu = 0 && node_vm_count t n < node_vm_count t best) then n
              else best)
            first rest
      | Pack ->
          List.fold_left
            (fun best n -> if node_vm_count t n > node_vm_count t best then n else best)
            first rest)

let nsm_vm_count t nsm =
  List.length (List.filter (fun e -> Nsm.id e.e_nsm = Nsm.id nsm) t.vms)

let pick_nsm t node =
  match live_nsms node with
  | [] -> invalid_arg "Nkfabric.place_vm: node has no live NSM"
  | first :: rest ->
      List.fold_left
        (fun best nsm -> if nsm_vm_count t nsm < nsm_vm_count t best then nsm else best)
        first rest

let place_vm t ~name ~vcpus ~ips ?hugepage_pages () =
  let node = pick_node t in
  let nsm = pick_nsm t node in
  let vm = Vm.create_nk node.n_host ~name ~vcpus ~ips ~nsms:[ nsm ] ?hugepage_pages () in
  (match node.n_ctl with Some ctl -> Nkctl.add_vm ctl vm ~home:nsm | None -> ());
  t.vms <- t.vms @ [ { e_vm = vm; e_home = node; e_node = node; e_nsm = nsm; e_relay = None } ];
  fabric_event t "place"
    (Printf.sprintf "vm=%s node=%s nsm=%s" name (Host.name node.n_host) (Nsm.name nsm));
  vm

let vm_node t vm =
  match List.find_opt (fun e -> Vm.vm_id e.e_vm = Vm.vm_id vm) t.vms with
  | Some e -> Some e.e_node
  | None -> None

(* ---- the relay datapath -------------------------------------------------- *)

(* Wire cost of one relayed NQE: the 32-byte record, plus the payload bytes
   for data-carrying operations (the hugepage region is shared by reference
   in simulation, so the spine is where payload transfer is charged). *)
let wire_bytes raw =
  match Nqe.View.op raw with
  | Nqe.Send | Nqe.Ev_data -> Nqe.size_bytes + Nqe.View.size raw
  | _ -> Nqe.size_bytes

(* Home -> destination: a VM->NSM NQE switched into the stub travels to the
   proxy, whose post kicks the destination CoreEngine towards the serving
   NSM. The proxy is read at delivery time (re-migration re-points it). *)
let ship_to_dest t relay ~src raw =
  relay.r_nqes_out <- relay.r_nqes_out + 1;
  (* Traced requests crossing the spine record the flight as an explicit
     ["spine"] stage. The span was minted by the home host's GuestLib, so
     it lives in the home node's recorder; stage calls with a foreign id
     are no-ops there, which makes this safe for every shipment. *)
  let span = Nqe.View.span raw in
  if span <> 0 then
    Nkspan.begin_stage relay.r_home.n_spans ~id:span ~component:"nkfabric" "spine";
  Spine.ship t.spine ~src ~dst:relay.r_dest.n_index ~bytes:(wire_bytes raw) (fun () ->
      if span <> 0 then Nkspan.end_stage relay.r_home.n_spans ~id:span "spine";
      let q = match Nqe.View.op raw with Nqe.Send -> `Send | _ -> `Job in
      Nk_device.post relay.r_proxy ~qset:(Nqe.View.qset raw) q raw)

(* Destination -> home: an NSM->VM NQE drained from the proxy re-enters the
   home CoreEngine through the stub. Ring and queue set mirror CoreEngine's
   own choices ([route_nsm_to_vm]): events ride the receive ring, and the
   queue set hashes the socket the home CE will key its auto-added route on
   (the new-connection id for Ev_accept, the socket id otherwise), so
   follow-up NQEs of the same connection land on the same queue set. *)
let ship_back t relay ~src raw =
  relay.r_nqes_back <- relay.r_nqes_back + 1;
  let span = Nqe.View.span raw in
  if span <> 0 then
    Nkspan.begin_stage relay.r_home.n_spans ~id:span ~component:"nkfabric" "spine";
  Spine.ship t.spine ~src ~dst:relay.r_home.n_index ~bytes:(wire_bytes raw) (fun () ->
      if span <> 0 then Nkspan.end_stage relay.r_home.n_spans ~id:span "spine";
      let stub = relay.r_stub in
      let q, key =
        match Nqe.View.op raw with
        | Nqe.Ev_accept -> (`Receive, Nqe.View.size raw)
        | Nqe.Ev_data | Nqe.Ev_eof -> (`Receive, Nqe.View.sock raw)
        | _ -> (`Completion, Nqe.View.sock raw)
      in
      let qset = key * 2654435761 land max_int mod Nk_device.n_qsets stub in
      Nk_device.post stub ~qset q raw)

(* One stub can carry several VMs' routes (the departed NSM multiplexed
   them); each drained NQE finds its own relay by vm id. *)
let install_stub t stubdev =
  Nk_device.set_kick_owner stubdev (fun qi ->
      let s = Nk_device.qset stubdev qi in
      let rec loop () =
        let n =
          Queue_set.drain_into s ~toward:`Nsm t.scratch ~budget:(Array.length t.scratch)
            ~shared:true
        in
        if n > 0 then begin
          for i = 0 to n - 1 do
            let raw = t.scratch.(i) in
            match Hashtbl.find_opt t.relays (Nqe.View.vm_id raw) with
            | Some relay -> ship_to_dest t relay ~src:relay.r_home.n_index raw
            | None -> ()
          done;
          loop ()
        end
      in
      loop ())

(* The proxy captures its device: after a re-migration a stale wake on the
   old proxy must not drain the new one. *)
let install_proxy t relay proxy =
  Nk_device.set_kick_owner proxy (fun qi ->
      let s = Nk_device.qset proxy qi in
      let rec loop () =
        let n =
          Queue_set.drain_into s ~toward:`Vm t.scratch ~budget:(Array.length t.scratch)
            ~shared:true
        in
        if n > 0 then begin
          for i = 0 to n - 1 do
            ship_back t relay ~src:relay.r_dest.n_index t.scratch.(i)
          done;
          loop ()
        end
      in
      loop ())

(* Deterministic drain of a departing NSM device's VM-ward rings: once the
   source is deregistered the CoreEngine stops polling it, so whatever it
   has not consumed yet would be orphaned. Pop the completion and receive
   rings directly (never merged) so ring identity and order survive the
   replay. *)
let drain_vm_ward dev ~deliver =
  let n = Nk_device.n_qsets dev in
  let pending () =
    let p = ref 0 in
    for qi = 0 to n - 1 do
      p := !p + Nk_device.outbound_pending dev ~qset:qi
    done;
    !p
  in
  while pending () > 0 do
    Nk_device.flush_overflow dev;
    for qi = 0 to n - 1 do
      let s = Nk_device.qset dev qi in
      let rec pump ring which =
        match Ring.pop ring with
        | Some raw ->
            deliver which ~qset:qi raw;
            pump ring which
        | None -> ()
      in
      pump s.Queue_set.completion `Completion;
      pump s.Queue_set.receive `Receive
    done
  done

(* ---- live migration ------------------------------------------------------ *)

let ensure_dest t ~source ~dst dest =
  match dest with
  | Some nsm ->
      if Nsm.failed nsm then invalid_arg "Nkfabric.migrate_nsm: dest NSM is retired or crashed";
      add_nsm t dst nsm;
      nsm
  | None ->
      let nsm =
        Nsm.create_kernel dst.n_host
          ~name:(Printf.sprintf "%s@%s" (Nsm.name source) (Host.name dst.n_host))
          ~vcpus:(Cpu.Set.n (Nsm.cores source))
          ()
      in
      add_nsm t dst nsm;
      nsm

(* Per-VM half of the protocol: quiesce on the source, resume on the
   destination, stitch (or re-target) the relay. The caller then drains the
   source device, re-homes the routes and retires the source. *)
let migrate_vm t e ~source ~src_node ~dst ~dest_nsm ~get_stub =
  let vm_id = Vm.vm_id e.e_vm in
  let ips = Vm.ips e.e_vm in
  let hugepages =
    match Vm.hugepages e.e_vm with
    | Some h -> h
    | None -> invalid_arg "Nkfabric.migrate_nsm: not a NetKernel VM"
  in
  let vm_dev =
    match Vm.device e.e_vm with
    | Some d -> d
    | None -> invalid_arg "Nkfabric.migrate_nsm: not a NetKernel VM"
  in
  (* Quiesce: serialize every socket out of the source ServiceLib (no RST,
     no events; listeners close silently and are replayed at the end). *)
  let export =
    match Nsm.export_vm source ~vm_id with
    | Some x -> x
    | None ->
        invalid_arg
          (Printf.sprintf "Nkfabric.migrate_nsm: vm %d is not registered on %s" vm_id
             (Nsm.name source))
  in
  (* Destination side: the proxy impersonates the VM — same device id, same
     queue-set geometry, the VM's real hugepage region (payload extents in
     the export are plain offsets into it). *)
  let ce_dst = Host.coreengine dst.n_host in
  Coreengine.attach ce_dst ~vm_id ~nsm_ids:[ Nsm.id dest_nsm ];
  let make_proxy () =
    let proxy =
      Nk_device.create ~id:vm_id ~role:Nk_device.Vm_side ~qsets:(Nk_device.n_qsets vm_dev)
        ~hugepages ~mon:(Host.mon dst.n_host) ~spans:(Host.spans dst.n_host) ()
    in
    Coreengine.register_vm ce_dst proxy;
    proxy
  in
  let relay =
    match e.e_relay with
    | Some r when dst.n_index = r.r_home.n_index ->
        (* Coming home: unwind the relay instead of stacking a proxy on top
           of the VM's real device (they would share an id on this CE). The
           record stays in [t.relays] pointed at the real device, so spine
           shipments still in flight — and the stub wakes they trigger —
           deliver into the VM's own rings, where the home CE re-switches
           them to [dest_nsm] via the routes re-added below. *)
        r.r_dest <- dst;
        r.r_dest_nsm <- dest_nsm;
        r.r_proxy <- vm_dev;
        (* Routes the stub still holds for sockets the export does not
           cover (listeners, bare sockets) must go, or their replayed NQEs
           would bounce home CE -> stub -> home CE forever; exported
           connections are re-pinned to [dest_nsm] below. *)
        ignore (Coreengine.forget_vm_routes ce_dst ~vm_id ~nsm_id:(Nk_device.id r.r_stub));
        r
    | Some r ->
        (* Re-migration to a third host: keep the home-side stub and its
           routes; re-point the destination side. Shipments already in
           flight resolve [r_proxy] at delivery and land here. *)
        let proxy = make_proxy () in
        r.r_dest <- dst;
        r.r_dest_nsm <- dest_nsm;
        r.r_proxy <- proxy;
        install_proxy t r proxy;
        r
    | None ->
        let proxy = make_proxy () in
        let stubdev = get_stub () in
        let r =
          {
            r_vm_id = vm_id;
            r_home = src_node;
            r_stub = stubdev;
            r_dest = dst;
            r_dest_nsm = dest_nsm;
            r_proxy = proxy;
            r_nqes_out = 0;
            r_nqes_back = 0;
          }
        in
        Hashtbl.replace t.relays vm_id r;
        (* New sockets from the VM must reach the stub (first-NQE assignment
           consults the attach list). *)
        Coreengine.attach (Host.coreengine src_node.n_host) ~vm_id
          ~nsm_ids:[ Nk_device.id stubdev ];
        install_proxy t r proxy;
        r
  in
  (* Late VM->NSM NQEs already switched towards the gagged source surface
     through its armed wakes and follow the relay, in order. *)
  let fwd_src = src_node.n_index in
  Nsm.set_vm_forwarder source ~vm_id (fun nqe ->
      ship_to_dest t relay ~src:fwd_src (Nqe.encode nqe));
  (* The source stack must stop claiming the VM's IPs, or in-flight segments
     for migrated flows would draw RSTs and reset them at the peer. *)
  Nsm.release_vm_ips source ~ips;
  (* Resume: rebuild every socket over its original content channel, then
     pin the imported connections to the destination NSM in its CE. *)
  Nsm.import_vm dest_nsm export ~hugepages ~ips;
  let nq = Nk_device.n_qsets (Nsm.device dest_nsm) in
  List.iter
    (fun (s : Servicelib.sock_export) ->
      match s.Servicelib.x_conn with
      | Some _ ->
          Coreengine.add_route ce_dst ~vm_id ~sock:s.Servicelib.x_gid
            ~nsm_id:(Nsm.id dest_nsm)
            ~nsm_qset:(s.Servicelib.x_gid * 2654435761 land max_int mod nq)
      | None -> ())
    export.Servicelib.x_socks;
  (* The cluster fabric now delivers the VM's IPs to the destination host,
     whose vswitch carries the imported flow/endpoint registrations. *)
  List.iter (fun ip -> Fabric.add_route t.tb.Testbed.fabric ip (Host.nic dst.n_host)) ips;
  e.e_node <- dst;
  e.e_nsm <- dest_nsm;
  (* Once home, the VM is a plain local VM again; the relay record lives on
     in [t.relays] only for shipments still crossing the spine. *)
  e.e_relay <- (if dst.n_index = relay.r_home.n_index then None else Some relay)

(* The cut: serialize every VM off the (quiesced) source, resume them on the
   destination, stitch the relays, drain-and-replay the source device, and
   retire the source. Runs [quiesce] seconds after {!migrate_nsm}. *)
let migrate_cut t ~source ~src_node ~dst ~dest_nsm ~moving =
  let ce_src = Host.coreengine src_node.n_host in
  (* One stub inherits every first-migration VM's routes; lazily built so a
     pure re-migration allocates nothing on the current host. *)
  let stub = ref None in
  let get_stub () =
    match !stub with
    | Some d -> d
    | None ->
        let d =
          (* No payload region of its own: like a real NSM device, payloads
             live in the per-VM hugepages. *)
          Nk_device.create
            ~id:(Host.fresh_nsm_id src_node.n_host)
            ~role:Nk_device.Nsm_side
            ~qsets:(Nk_device.n_qsets (Nsm.device source))
            ~hugepages:(Hugepages.create ~page_size:4096 ~pages:1 ())
            ~mon:(Host.mon src_node.n_host) ~spans:(Host.spans src_node.n_host) ()
        in
        Coreengine.register_nsm ce_src d;
        install_stub t d;
        stub := Some d;
        d
  in
  (* A VM whose current serving node is not its home has a proxy device
     registered on this CE (its real device lives at home). Capture them
     before [migrate_vm] re-points — or, for a VM coming home, unwinds —
     the relay records. *)
  let stale_proxies =
    List.filter_map
      (fun e ->
        match e.e_relay with
        | Some r when r.r_home.n_index <> src_node.n_index ->
            Some (Vm.vm_id e.e_vm, r.r_proxy)
        | _ -> None)
      moving
  in
  List.iter (fun e -> migrate_vm t e ~source ~src_node ~dst ~dest_nsm ~get_stub) moving;
  (* Drain-and-replay: NSM->VM NQEs the source CoreEngine has not consumed
     yet would be orphaned by the deregistration below. First-migration VMs
     replay them into the stub on the same rings and queue sets (order and
     auto-route keys preserved); re-migrated VMs ship them to their home. *)
  drain_vm_ward (Nsm.device source) ~deliver:(fun which ~qset raw ->
      match Hashtbl.find_opt t.relays (Nqe.View.vm_id raw) with
      | Some r ->
          if r.r_home.n_index = src_node.n_index then Nk_device.post r.r_stub ~qset which raw
          else ship_back t r ~src:src_node.n_index raw
      | None -> ());
  (* Hand the departed NSM's established-flow routes to the stub in one
     step, then retire it (retire would wipe them in the other order). *)
  (match !stub with
  | Some d ->
      ignore
        (Coreengine.rehome_nsm_routes ce_src ~from_nsm:(Nsm.id source)
           ~to_nsm:(Nk_device.id d))
  | None -> ());
  (* A re-migrated VM's stale proxy on this host is done. First replay what
     the CE and the relay left in its rings: VM->NSM NQEs the CE had
     delivered but the departing ServiceLib not yet consumed re-enter the
     source device (appended after its backlog, so the forwarder ships them
     to the new destination in per-connection order), and NSM->VM NQEs a
     pending proxy wake would have carried ship back to the VM's home now.
     Then drop the proxy and its conn-table entries (the new destination
     owns them). *)
  let src_dev = Nsm.device source in
  let src_nq = Nk_device.n_qsets src_dev in
  List.iter
    (fun (vm_id, proxy) ->
      for qi = 0 to Nk_device.n_qsets proxy - 1 do
        let s = Nk_device.qset proxy qi in
        let rec loop () =
          let n =
            Queue_set.drain_into s ~toward:`Nsm t.scratch ~budget:(Array.length t.scratch)
              ~shared:true
          in
          if n > 0 then begin
            for i = 0 to n - 1 do
              let raw = t.scratch.(i) in
              let q = match Nqe.View.op raw with Nqe.Send -> `Send | _ -> `Job in
              Nk_device.post src_dev
                ~qset:(Nqe.View.sock raw * 2654435761 land max_int mod src_nq)
                q raw
            done;
            loop ()
          end
        in
        loop ()
      done;
      drain_vm_ward proxy ~deliver:(fun _which ~qset:_ raw ->
          match Hashtbl.find_opt t.relays vm_id with
          | Some r -> ship_back t r ~src:src_node.n_index raw
          | None -> ());
      Coreengine.deregister_vm ce_src ~vm_id)
    stale_proxies;
  Nsm.retire source;
  (* Listener handover: replay socket/bind/listen from the home GuestLib;
     the replayed NQEs follow stub -> spine -> proxy and re-create the
     listeners on the destination host's vswitch. *)
  List.iter
    (fun e ->
      match Vm.guestlib e.e_vm with
      | Some gl -> Guestlib.remigrate_listeners gl
      | None -> ())
    moving;
  t.migrations <- t.migrations + 1;
  Nkmon.Registry.incr t.c_migrations;
  fabric_event t "migrate"
    (Printf.sprintf "nsm=%s %s->%s vms=%d" (Nsm.name source) (Host.name src_node.n_host)
       (Host.name dst.n_host) (List.length moving))

let migrate_nsm t ~nsm:source ~dst ?dest ?(quiesce = 0.02) () =
  if Nsm.failed source then
    invalid_arg "Nkfabric.migrate_nsm: source NSM is retired or crashed";
  let src_node =
    match
      List.find_opt
        (fun n -> List.exists (fun m -> Nsm.id m = Nsm.id source) n.n_nsms)
        t.nodes
    with
    | Some n -> n
    | None -> invalid_arg "Nkfabric.migrate_nsm: source NSM is not in any node's pool"
  in
  if src_node.n_index = dst.n_index then
    invalid_arg "Nkfabric.migrate_nsm: source and destination are the same node";
  let dest_nsm = ensure_dest t ~source ~dst dest in
  let moving = List.filter (fun e -> Nsm.id e.e_nsm = Nsm.id source) t.vms in
  (* Pull the source out of the local control loop first: Nkctl would read
     the retired source as a crash on its next tick and fight the migration
     with a failover rehome. *)
  (match src_node.n_ctl with
  | Some ctl ->
      Nkctl.release_nsm ctl source;
      List.iter (fun e -> Nkctl.release_vm ctl ~vm:e.e_vm) moving
  | None -> ());
  (* Out of the serving pool at once: placement must not hand the departing
     source any new VMs during the quiesce window. *)
  src_node.n_nsms <- List.filter (fun m -> Nsm.id m <> Nsm.id source) src_node.n_nsms;
  (* Quiesce: the moving VMs' listeners silently drop fresh SYNs (their RTO
     retry lands on the destination after the cut) while in-flight
     handshakes and queued accepts settle — so the cut finds empty accept
     queues and resets nothing. *)
  List.iter (fun e -> Nsm.quiesce_vm_listeners source ~vm_id:(Vm.vm_id e.e_vm)) moving;
  fabric_event t "quiesce"
    (Printf.sprintf "nsm=%s vms=%d window=%gs" (Nsm.name source) (List.length moving) quiesce);
  ignore
    (Engine.schedule t.tb.Testbed.engine ~delay:quiesce (fun () ->
         migrate_cut t ~source ~src_node ~dst ~dest_nsm ~moving));
  dest_nsm

let stats t =
  let nqes_shipped, bytes_shipped = Spine.shipped t.spine in
  (* Relay records are kept for life (in-flight shipments and stub wakes
     look them up), but a VM whose relay was unwound is home again and no
     longer counts as relayed. *)
  let vms_relayed =
    Nkutil.Det_tbl.fold ~cmp:Int.compare
      (fun _ r acc -> if r.r_dest.n_index <> r.r_home.n_index then acc + 1 else acc)
      t.relays 0
  in
  { migrations = t.migrations; vms_relayed; nqes_shipped; bytes_shipped }
