open Nkcore

(** Nkfabric: a multi-host cluster world with live NSM migration.

    The paper's thesis is that once the network stack is part of the
    virtualized infrastructure, the operator can manage it like any other
    infrastructure service (§2, §8). Nkfabric takes that across the host
    boundary: it joins N simulated {!Host.t}s into one cluster behind the
    shared {!Fabric.t}, adds a second, NQE-level interconnect (the
    {!Spine}), places VMs across hosts under a {!policy}, and — the
    centerpiece — migrates a live NSM from one host to another without
    breaking a single established connection.

    {2 Addressing}

    Every node gets a disjoint VM/NSM id range ({!Host.set_id_base}), so
    device ids are unique cluster-wide and a migrated NSM's state can exist
    on two hosts at once. IP routing stays in the shared fabric: after a
    migration, {!Fabric.add_route} re-points the VM's IPs at the
    destination host, whose NSM stack now terminates the VM's TCP flows.

    {2 Migration protocol}

    The VM itself never moves — its GuestLib, NK device and hugepage region
    stay on the {e home} host. What moves is the serving NSM state
    ({!Nsm.export_vm} / {!Nsm.import_vm}): TCBs, reassembly buffers,
    congestion state, queued payload extents and listener intents. The
    datapath is then stitched with a relay pair:

    - a {e stub} NSM-side device on the home CoreEngine inherits the
      departed NSM's connection-table routes ({!Coreengine.rehome_nsm_routes})
      and ships every VM→NSM NQE over the spine;
    - a {e proxy} VM-side device on the destination CoreEngine impersonates
      the VM (same id, same queue-set geometry, the VM's real hugepage
      region) and ships every NSM→VM NQE back.

    Late NQEs drained by the gagged source ServiceLib follow the relay via
    {!Nsm.set_vm_forwarder}; NSM→VM NQEs the CoreEngine had not yet
    consumed are re-posted into the stub on their original rings and queue
    sets (deterministic drain-and-replay), so per-connection delivery order
    is preserved end to end. Listening sockets are replayed by
    {!Guestlib.remigrate_listeners} and land on the destination host. A VM
    can be re-migrated: the standing relay is re-targeted and in-flight
    spine shipments resolve the current proxy at delivery time. A VM
    migrated back to its home node {e unwinds} instead: no proxy is built
    (it would collide with the VM's real device), the relay record is
    re-pointed at the real device so straggling shipments land in the VM's
    own rings, and the home CoreEngine serves it directly again. *)

(** Inter-host NQE interconnect: one directed store-and-forward link per
    host pair, with per-link serialization rate and propagation latency.
    Deliveries are FIFO per link (monotone link-busy time), which is what
    carries the relay's ordering guarantee. *)
module Spine : sig
  type t

  val create :
    engine:Sim.Engine.t ->
    mon:Nkmon.t ->
    ?latency:float ->
    ?gbps:float ->
    unit ->
    t
  (** Defaults: 50 us one-way latency, 40 Gb/s per directed link. *)

  val set_link : t -> src:int -> dst:int -> latency:float -> gbps:float -> unit
  (** Override one directed link (node indices); resets its byte counters. *)

  val ship : t -> src:int -> dst:int -> bytes:int -> (unit -> unit) -> unit
  (** Occupy the [src]→[dst] link for [bytes] and run the continuation at
      arrival time (serialization + propagation). *)

  val shipped : t -> int * int
  (** Total [(nqes, bytes)] shipped across every link so far. *)
end

type policy =
  | Spread  (** lowest node utilization, ties by VM count then node order *)
  | Pack  (** most-loaded node first (bin packing) *)

type node

type t

type stats = {
  migrations : int;  (** completed {!migrate_nsm} calls *)
  vms_relayed : int;  (** VMs currently served by a remote NSM *)
  nqes_shipped : int;  (** NQEs carried by the spine, both directions *)
  bytes_shipped : int;
}

val create : ?policy:policy -> ?latency:float -> ?gbps:float -> Testbed.t -> t
(** A cluster over the testbed's engine, fabric and shared registry.
    [latency]/[gbps] configure the spine defaults. *)

val add_node : t -> name:string -> node
(** Add a host as a cluster node with its own disjoint id range. Raises
    after 6 nodes (the one-byte NQE vm-id field bounds the id space).

    Each node gets its own {!Nkmon.t} (registry + trace ring) and
    {!Nkspan.t} (span host index [node_index + 1], so span ids are
    host-unique cluster-wide), both built with the testbed's
    {!Testbed.Config} knobs. The testbed-wide [tb.mon]/[tb.spans] keep
    serving hosts added outside the cluster and cluster-scope metrics (the
    spine, migrations); Nkobs federates all of them back into one view. *)

val testbed : t -> Testbed.t
(** The world the cluster is built over (engine, fabric, cluster-scope
    [mon]/[spans]). *)

val nodes : t -> node list
(** In add order. *)

val node_host : node -> Host.t

val node_index : node -> int

val node_mon : node -> Nkmon.t
(** The node's own observability handle (all components on the node's host
    report here). *)

val node_spans : node -> Nkspan.t
(** The node's span recorder; {!Nkspan.host_index} is [node_index + 1].
    The spine relay records the ["spine"] stage against the {e home}
    node's recorder, since that is where a migrated VM's spans are
    minted. *)

val node_nsms : node -> Nsm.t list
(** The node's serving pool, in add order. *)

val add_nsm : t -> node -> Nsm.t -> unit
(** Put an NSM (created on the node's host) into the node's serving pool. *)

val set_ctl : node -> Nkctl.t -> unit
(** Give the node a local control loop. {!place_vm} registers placed VMs
    with it; {!migrate_nsm} releases the source NSM and its VMs from it
    before migrating, so the local policy never fights the cluster. *)

val node_utilization : t -> node -> float
(** Mean vCPU utilization of the node's pool since time zero (the placement
    signal; 0 before the clock starts). *)

val node_vm_count : t -> node -> int
(** VMs currently {e served} by this node (placed here, migrated in, minus
    migrated out). *)

val place_vm :
  t -> name:string -> vcpus:int -> ips:Addr.ip list -> ?hugepage_pages:int -> unit -> Vm.t
(** Create a NetKernel VM on the node chosen by the cluster {!policy} and
    home it on that node's least-loaded NSM. Raises if no node has a live
    NSM. *)

val vm_node : t -> Vm.t -> node option
(** The node currently serving the VM's flows. *)

val migrate_nsm :
  t -> nsm:Nsm.t -> dst:node -> ?dest:Nsm.t -> ?quiesce:float -> unit -> Nsm.t
(** Live-migrate [nsm] and every VM it serves to [dst], per the protocol
    above; returns the destination NSM ([?dest], or a fresh kernel-stack
    NSM with the source's vCPU count). The call starts the quiesce phase:
    the source leaves the serving pool and its VMs' listeners silently
    drop fresh SYNs (the client's SYN RTO retries against the destination)
    while in-flight handshakes and queued accepts settle; the cut itself —
    serialize, resume, relay, retire — runs [quiesce] seconds of virtual
    time later (default 20 ms). Established connections keep flowing with
    zero loss; new connections land on the destination host. Raises
    [Invalid_argument] if the source is not in any node's pool, already
    retired, or [dst] is its own node. *)

val stats : t -> stats
