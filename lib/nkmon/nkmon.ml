module Registry = Registry
module Trace = Trace

type t = { registry : Registry.t; trace : Trace.t }

let create ?trace_capacity ?trace_enabled ~now () =
  let registry = Registry.create () in
  let trace = Trace.create ?capacity:trace_capacity ?enabled:trace_enabled ~now () in
  (* Overwritten-event count as a first-class metric, so ring undersizing
     shows up in `nk stats` instead of silently truncating traces. *)
  Registry.sampler registry ~component:"nkmon" ~instance:"trace" ~name:"dropped_events"
    (fun () -> float_of_int (Trace.dropped trace));
  { registry; trace }

let null () =
  {
    registry = Registry.create ();
    trace = Trace.create ~capacity:1 ~enabled:false ~now:(fun () -> 0.0) ();
  }

let registry t = t.registry

let trace t = t.trace

let dropped_events t = Trace.dropped t.trace

let counter t = Registry.counter t.registry

let gauge t = Registry.gauge t.registry

let sampler t = Registry.sampler t.registry

let histogram ?sub_buckets ?max_value t =
  Registry.histogram ?sub_buckets ?max_value t.registry

let timeseries t = Registry.timeseries t.registry

let tracing t = Trace.enabled t.trace

let event t ev = Trace.record t.trace ev
