module Registry = Registry
module Trace = Trace

type t = { registry : Registry.t; trace : Trace.t }

let create ?trace_capacity ?trace_enabled ~now () =
  {
    registry = Registry.create ();
    trace = Trace.create ?capacity:trace_capacity ?enabled:trace_enabled ~now ();
  }

let null () =
  {
    registry = Registry.create ();
    trace = Trace.create ~capacity:1 ~enabled:false ~now:(fun () -> 0.0) ();
  }

let registry t = t.registry

let trace t = t.trace

let counter t = Registry.counter t.registry

let gauge t = Registry.gauge t.registry

let sampler t = Registry.sampler t.registry

let histogram ?sub_buckets ?max_value t =
  Registry.histogram ?sub_buckets ?max_value t.registry

let timeseries t = Registry.timeseries t.registry

let tracing t = Trace.enabled t.trace

let event t ev = Trace.record t.trace ev
