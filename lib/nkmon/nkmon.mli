(** Nkmon: the unified observability subsystem.

    One [Nkmon.t] per simulated world bundles the {!Registry} (named
    counters, gauges, histograms and time series keyed by
    [component/instance/metric]) with the {!Trace} layer (typed events
    stamped with {!Sim.Engine} virtual time, ring-buffer retention).
    {!Testbed.create} builds one and every component created under that
    testbed — CoreEngine, NK devices, GuestLib, ServiceLib, NSMs,
    hugepage regions, TCP stacks — reports through it instead of keeping
    a private mutable [stats] record.

    Components accept [?mon] at creation; when omitted (unit tests
    building components directly) they fall back to a detached handle
    from {!null}, so their snapshot accessors keep working without any
    shared registry. *)

module Registry = Registry
module Trace = Trace

type t

val create : ?trace_capacity:int -> ?trace_enabled:bool -> now:(unit -> float) -> unit -> t
(** [now] supplies virtual timestamps for trace events (pass
    [fun () -> Sim.Engine.now engine]). Tracing defaults to disabled;
    metrics are always live. *)

val null : unit -> t
(** A detached sink: a private registry, tracing disabled, clock pinned
    to 0. Used as the default by components created without [?mon]. *)

val registry : t -> Registry.t

val trace : t -> Trace.t

val dropped_events : t -> int
(** Trace-ring overwrites so far ([Trace.dropped] on this instance's
    trace). Surfaced in [nk stats] / [Mon_report] output and watched by
    the Nkobs federation so silent trace truncation raises an alert. *)

(** {1 Convenience forwarding} *)

val counter : t -> component:string -> instance:string -> name:string -> Registry.counter

val gauge : t -> component:string -> instance:string -> name:string -> Registry.gauge

val sampler :
  t -> component:string -> instance:string -> name:string -> (unit -> float) -> unit

val histogram :
  ?sub_buckets:int ->
  ?max_value:float ->
  t ->
  component:string ->
  instance:string ->
  name:string ->
  Nkutil.Histogram.t

val timeseries :
  t -> bin_width:float -> component:string -> instance:string -> name:string ->
  Nkutil.Timeseries.t

val tracing : t -> bool
(** Cheap guard for event-construction sites:
    [if Nkmon.tracing mon then Nkmon.event mon (...)]. *)

val event : t -> Trace.event -> unit
