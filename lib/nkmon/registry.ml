type counter = { mutable n : int }

type gauge = { mutable g : float }

type metric =
  | M_counter of counter
  | M_gauge of gauge
  | M_sampler of (unit -> float) ref
  | M_histogram of Nkutil.Histogram.t
  | M_timeseries of Nkutil.Timeseries.t

type t = { table : (string * string * string, metric) Hashtbl.t }

let create () = { table = Hashtbl.create 64 }

let kind_name = function
  | M_counter _ -> "counter"
  | M_gauge _ -> "gauge"
  | M_sampler _ -> "gauge"
  | M_histogram _ -> "histogram"
  | M_timeseries _ -> "timeseries"

let key ~component ~instance ~name = (component, instance, name)

let mismatch (c, i, n) m want =
  invalid_arg
    (Printf.sprintf "Nkmon.Registry: %s/%s/%s is a %s, not a %s" c i n (kind_name m) want)

let counter t ~component ~instance ~name =
  let k = key ~component ~instance ~name in
  match Hashtbl.find_opt t.table k with
  | Some (M_counter c) -> c
  | Some m -> mismatch k m "counter"
  | None ->
      let c = { n = 0 } in
      Hashtbl.replace t.table k (M_counter c);
      c

let incr c = c.n <- c.n + 1

let add c n = c.n <- c.n + n

let counter_value c = c.n

let gauge t ~component ~instance ~name =
  let k = key ~component ~instance ~name in
  match Hashtbl.find_opt t.table k with
  | Some (M_gauge g) -> g
  | Some m -> mismatch k m "gauge"
  | None ->
      let g = { g = 0.0 } in
      Hashtbl.replace t.table k (M_gauge g);
      g

let set g v = g.g <- v

let gauge_value g = g.g

let sampler t ~component ~instance ~name f =
  let k = key ~component ~instance ~name in
  match Hashtbl.find_opt t.table k with
  | Some (M_sampler r) -> r := f
  | Some m -> mismatch k m "sampler"
  | None -> Hashtbl.replace t.table k (M_sampler (ref f))

let histogram ?sub_buckets ?max_value t ~component ~instance ~name =
  let k = key ~component ~instance ~name in
  match Hashtbl.find_opt t.table k with
  | Some (M_histogram h) -> h
  | Some m -> mismatch k m "histogram"
  | None ->
      let h = Nkutil.Histogram.create ?sub_buckets ?max_value () in
      Hashtbl.replace t.table k (M_histogram h);
      h

let timeseries t ~bin_width ~component ~instance ~name =
  let k = key ~component ~instance ~name in
  match Hashtbl.find_opt t.table k with
  | Some (M_timeseries ts) -> ts
  | Some m -> mismatch k m "timeseries"
  | None ->
      let ts = Nkutil.Timeseries.create ~bin_width () in
      Hashtbl.replace t.table k (M_timeseries ts);
      ts

(* ---- enumeration and export --------------------------------------------- *)

type value =
  | Counter of int
  | Gauge of float
  | Histogram of Nkutil.Histogram.t
  | Timeseries of Nkutil.Timeseries.t

type entry = { component : string; instance : string; metric : string; value : value }

let value_of_metric = function
  | M_counter c -> Counter c.n
  | M_gauge g -> Gauge g.g
  | M_sampler r -> Gauge (!r ())
  | M_histogram h -> Histogram h
  | M_timeseries ts -> Timeseries ts

let find t ~component ~instance ~name =
  Option.map value_of_metric (Hashtbl.find_opt t.table (component, instance, name))

let entries t =
  Nkutil.Det_tbl.fold
    ~cmp:(Nkutil.Det_tbl.triple String.compare String.compare String.compare)
    (fun (component, instance, metric) m acc ->
      { component; instance; metric; value = value_of_metric m } :: acc)
    t.table []
  |> List.rev

let cardinality t = Hashtbl.length t.table

let fmt_float v =
  (* Compact but deterministic: integers print without a mantissa tail. *)
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%g" v

let value_cell = function
  | Counter n -> string_of_int n
  | Gauge v -> fmt_float v
  | Histogram h ->
      let module H = Nkutil.Histogram in
      Printf.sprintf "n=%d mean=%s p50=%s p99=%s max=%s" (H.count h) (fmt_float (H.mean h))
        (fmt_float (H.percentile h 50.0))
        (fmt_float (H.percentile h 99.0))
        (fmt_float (H.max h))
  | Timeseries ts ->
      let module T = Nkutil.Timeseries in
      let total = Array.fold_left ( +. ) 0.0 (T.to_array ts) in
      Printf.sprintf "bins=%d width=%s total=%s" (T.num_bins ts) (fmt_float (T.bin_width ts))
        (fmt_float total)

let row_headers = [ "component"; "instance"; "metric"; "value" ]

let to_rows t =
  List.map (fun e -> [ e.component; e.instance; e.metric; value_cell e.value ]) (entries t)

let to_csv t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (String.concat "," row_headers);
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (String.concat "," (List.map (fun c -> "\"" ^ c ^ "\"") row));
      Buffer.add_char buf '\n')
    (to_rows t);
  Buffer.contents buf

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_float v = Printf.sprintf "%.9g" v

let value_json = function
  | Counter n -> Printf.sprintf "\"kind\":\"counter\",\"value\":%d" n
  | Gauge v -> Printf.sprintf "\"kind\":\"gauge\",\"value\":%s" (json_float v)
  | Histogram h ->
      let module H = Nkutil.Histogram in
      Printf.sprintf
        "\"kind\":\"histogram\",\"count\":%d,\"mean\":%s,\"p50\":%s,\"p90\":%s,\"p99\":%s,\"max\":%s"
        (H.count h) (json_float (H.mean h))
        (json_float (H.percentile h 50.0))
        (json_float (H.percentile h 90.0))
        (json_float (H.percentile h 99.0))
        (json_float (H.max h))
  | Timeseries ts ->
      let module T = Nkutil.Timeseries in
      let bins =
        T.to_array ts |> Array.to_list |> List.map json_float |> String.concat ","
      in
      Printf.sprintf "\"kind\":\"timeseries\",\"bin_width\":%s,\"bins\":[%s]"
        (json_float (T.bin_width ts))
        bins

let to_json t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"metrics\":[\n";
  let first = ref true in
  List.iter
    (fun e ->
      if not !first then Buffer.add_string buf ",\n";
      first := false;
      Buffer.add_string buf
        (Printf.sprintf "{\"component\":\"%s\",\"instance\":\"%s\",\"metric\":\"%s\",%s}"
           (json_escape e.component) (json_escape e.instance) (json_escape e.metric)
           (value_json e.value)))
    (entries t);
  Buffer.add_string buf "\n]}\n";
  Buffer.contents buf
