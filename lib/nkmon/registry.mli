(** Metric registry: the one place every component reports through.

    Metrics are keyed by [component/instance/metric] (e.g.
    ["coreengine/hostA/nqe_switched"]): [component] names the subsystem
    kind, [instance] the particular object (host, VM, NSM, stack), and
    [metric] the measurement. Four kinds are supported:

    - {e counters}: monotonically increasing integers (NQEs switched,
      bytes copied);
    - {e gauges}: point-in-time floats, either set explicitly or sampled
      lazily from a closure at read time (hugepage bytes in use,
      connection-table size);
    - {e histograms}: {!Nkutil.Histogram} distributions (sweep batch
      sizes, latencies);
    - {e time series}: {!Nkutil.Timeseries} virtual-time-binned
      accumulators (per-100ms switch rates).

    Registration is idempotent: asking for an existing key of the same
    kind returns the existing handle, so a component can re-derive its
    handles without double counting. Asking for an existing key with a
    different kind raises [Invalid_argument]. Enumeration and export are
    sorted by key, so output is independent of registration order. *)

type t

val create : unit -> t

(** {1 Metric handles} *)

type counter

val counter : t -> component:string -> instance:string -> name:string -> counter

val incr : counter -> unit

val add : counter -> int -> unit

val counter_value : counter -> int

type gauge

val gauge : t -> component:string -> instance:string -> name:string -> gauge

val set : gauge -> float -> unit

val gauge_value : gauge -> float

val sampler :
  t -> component:string -> instance:string -> name:string -> (unit -> float) -> unit
(** A gauge whose value is pulled from the closure at read time.
    Re-registering an existing sampler key replaces the closure (the
    newest component owns the measurement). *)

val histogram :
  ?sub_buckets:int ->
  ?max_value:float ->
  t ->
  component:string ->
  instance:string ->
  name:string ->
  Nkutil.Histogram.t
(** The histogram parameters apply only on first registration. *)

val timeseries :
  t -> bin_width:float -> component:string -> instance:string -> name:string ->
  Nkutil.Timeseries.t
(** [bin_width] applies only on first registration. *)

(** {1 Enumeration and export} *)

type value =
  | Counter of int
  | Gauge of float
  | Histogram of Nkutil.Histogram.t
  | Timeseries of Nkutil.Timeseries.t

type entry = { component : string; instance : string; metric : string; value : value }

val find : t -> component:string -> instance:string -> name:string -> value option
(** Gauge samplers are evaluated here. *)

val entries : t -> entry list
(** All registered metrics, sorted by [component/instance/metric]. *)

val cardinality : t -> int

val row_headers : string list
(** ["component"; "instance"; "metric"; "value"] — matches {!to_rows}. *)

val value_cell : value -> string
(** The table/CSV rendering of one value — counters and gauges as numbers,
    histograms and time series summarised. Exposed so cross-host
    aggregators (Nkobs federation) render merged rows identically. *)

val value_json : value -> string
(** The JSON body rendered for one value (the [kind/value] fields of a
    {!to_json} metric object, without the surrounding braces). *)

val to_rows : t -> string list list
(** One row per metric in {!entries} order; histograms and time series
    are summarised into the value cell. *)

val to_csv : t -> string

val to_json : t -> string
(** Deterministic: identical registry contents serialize byte-identically. *)
