type queue = Job | Completion | Send | Receive

let queue_to_string = function
  | Job -> "job"
  | Completion -> "completion"
  | Send -> "send"
  | Receive -> "receive"

type event =
  | Nqe_enqueue of {
      device : int;
      qset : int;
      queue : queue;
      op : string;
      vm_id : int;
      sock : int;
    }
  | Nqe_switch of { vm_id : int; sock : int; op : string; dst : string }
  | Nqe_deliver of {
      component : string;
      instance : string;
      qset : int;
      op : string;
      vm_id : int;
      sock : int;
    }
  | Ring_full of { device : int; qset : int; queue : queue }
  | Rate_limit_defer of { vm_id : int; bytes : int }
  | Ring_defer of { vm_id : int }
  | Nqe_drop of { vm_id : int; sock : int; reason : string }
  | Tcp_state of { stack : string; sock : int; old_state : string; new_state : string }
  | Hugepage_alloc of { region : string; offset : int; len : int }
  | Hugepage_free of { region : string; offset : int; len : int }
  | Custom of { component : string; name : string; detail : string }

type record = { seq : int; time : float; event : event }

type t = {
  now : unit -> float;
  ring : record option array;
  mutable next : int; (* total recorded; ring slot is [next mod capacity] *)
  mutable on : bool;
}

let create ?(capacity = 65536) ?(enabled = false) ~now () =
  let capacity = Int.max 1 capacity in
  { now; ring = Array.make capacity None; next = 0; on = enabled }

let enabled t = t.on

let set_enabled t on = t.on <- on

let capacity t = Array.length t.ring

let record t event =
  if t.on then begin
    let slot = t.next mod Array.length t.ring in
    t.ring.(slot) <- Some { seq = t.next; time = t.now (); event };
    t.next <- t.next + 1
  end

let recorded t = t.next

let dropped t = Int.max 0 (t.next - Array.length t.ring)

let records t =
  let cap = Array.length t.ring in
  let retained = Int.min t.next cap in
  let first = t.next - retained in
  List.init retained (fun i -> Option.get t.ring.((first + i) mod cap))

let clear t =
  Array.fill t.ring 0 (Array.length t.ring) None;
  t.next <- 0

let event_type = function
  | Nqe_enqueue _ -> "nqe_enqueue"
  | Nqe_switch _ -> "nqe_switch"
  | Nqe_deliver _ -> "nqe_deliver"
  | Ring_full _ -> "ring_full"
  | Rate_limit_defer _ -> "rate_limit_defer"
  | Ring_defer _ -> "ring_defer"
  | Nqe_drop _ -> "nqe_drop"
  | Tcp_state _ -> "tcp_state"
  | Hugepage_alloc _ -> "hugepage_alloc"
  | Hugepage_free _ -> "hugepage_free"
  | Custom _ -> "custom"

(* Every event flattens to (string * string) pairs used by both exports. *)
let event_args = function
  | Nqe_enqueue { device; qset; queue; op; vm_id; sock } ->
      [
        ("device", string_of_int device);
        ("qset", string_of_int qset);
        ("queue", queue_to_string queue);
        ("op", op);
        ("vm_id", string_of_int vm_id);
        ("sock", string_of_int sock);
      ]
  | Nqe_switch { vm_id; sock; op; dst } ->
      [
        ("vm_id", string_of_int vm_id);
        ("sock", string_of_int sock);
        ("op", op);
        ("dst", dst);
      ]
  | Nqe_deliver { component; instance; qset; op; vm_id; sock } ->
      [
        ("component", component);
        ("instance", instance);
        ("qset", string_of_int qset);
        ("op", op);
        ("vm_id", string_of_int vm_id);
        ("sock", string_of_int sock);
      ]
  | Ring_full { device; qset; queue } ->
      [
        ("device", string_of_int device);
        ("qset", string_of_int qset);
        ("queue", queue_to_string queue);
      ]
  | Rate_limit_defer { vm_id; bytes } ->
      [ ("vm_id", string_of_int vm_id); ("bytes", string_of_int bytes) ]
  | Ring_defer { vm_id } -> [ ("vm_id", string_of_int vm_id) ]
  | Nqe_drop { vm_id; sock; reason } ->
      [ ("vm_id", string_of_int vm_id); ("sock", string_of_int sock); ("reason", reason) ]
  | Tcp_state { stack; sock; old_state; new_state } ->
      [
        ("stack", stack);
        ("sock", string_of_int sock);
        ("old_state", old_state);
        ("new_state", new_state);
      ]
  | Hugepage_alloc { region; offset; len } ->
      [ ("region", region); ("offset", string_of_int offset); ("len", string_of_int len) ]
  | Hugepage_free { region; offset; len } ->
      [ ("region", region); ("offset", string_of_int offset); ("len", string_of_int len) ]
  | Custom { component; name; detail } ->
      [ ("component", component); ("name", name); ("detail", detail) ]

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let fmt_time time = Printf.sprintf "%.9f" time

let record_to_json r =
  let args =
    event_args r.event
    |> List.map (fun (k, v) ->
           (* Numeric fields stay numbers in JSON. *)
           match int_of_string_opt v with
           | Some _ when k <> "op" && k <> "dst" -> Printf.sprintf "\"%s\":%s" k v
           | _ -> Printf.sprintf "\"%s\":\"%s\"" k (json_escape v))
    |> String.concat ","
  in
  Printf.sprintf "{\"seq\":%d,\"time\":%s,\"type\":\"%s\"%s%s}" r.seq (fmt_time r.time)
    (event_type r.event)
    (if args = "" then "" else ",")
    args

let to_json t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"events\":[\n";
  let first = ref true in
  List.iter
    (fun r ->
      if not !first then Buffer.add_string buf ",\n";
      first := false;
      Buffer.add_string buf (record_to_json r))
    (records t);
  Buffer.add_string buf
    (Printf.sprintf "\n],\"recorded\":%d,\"dropped\":%d}\n" (recorded t) (dropped t));
  Buffer.contents buf

let to_csv t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "seq,time,type,args\n";
  List.iter
    (fun r ->
      let args =
        event_args r.event
        |> List.map (fun (k, v) -> k ^ "=" ^ v)
        |> String.concat ";"
      in
      Buffer.add_string buf
        (Printf.sprintf "%d,%s,%s,\"%s\"\n" r.seq (fmt_time r.time) (event_type r.event)
           args))
    (records t);
  if dropped t > 0 then
    Buffer.add_string buf
      (Printf.sprintf "# dropped %d events (ring capacity %d; oldest overwritten)\n"
         (dropped t) (capacity t));
  Buffer.contents buf
