(** Structured trace layer: typed events stamped with virtual time.

    Every event carries the {!Sim.Engine} virtual time at which it was
    recorded (injected as a [now] closure so this library stays below the
    simulator in the dependency order) and a monotonic sequence number.
    Retention is a fixed-capacity ring buffer: once full, the oldest
    events are overwritten and counted in {!dropped} — tracing never
    grows without bound and never perturbs the simulation.

    Recording is gated on {!enabled} (default off): components guard
    their event construction with it, so a disabled trace costs one
    branch per event site. Export is deterministic — two identical
    seeded runs produce byte-identical {!to_json} / {!to_csv} output. *)

type queue = Job | Completion | Send | Receive

val queue_to_string : queue -> string

(** The event taxonomy (see DESIGN.md "Observability"): NQE lifecycle
    (enqueue at a device, switch through CoreEngine, deliver to the
    consumer), backpressure (ring-full, rate-limit and ring deferrals,
    drops), TCP connection state transitions, and hugepage extent
    lifecycle. [Custom] is the extension point for components outside
    the core taxonomy. *)
type event =
  | Nqe_enqueue of {
      device : int;
      qset : int;
      queue : queue;
      op : string;
      vm_id : int;
      sock : int;
    }
  | Nqe_switch of { vm_id : int; sock : int; op : string; dst : string }
  | Nqe_deliver of {
      component : string;
      instance : string;
      qset : int;
      op : string;
      vm_id : int;
      sock : int;
    }
  | Ring_full of { device : int; qset : int; queue : queue }
  | Rate_limit_defer of { vm_id : int; bytes : int }
  | Ring_defer of { vm_id : int }
  | Nqe_drop of { vm_id : int; sock : int; reason : string }
  | Tcp_state of { stack : string; sock : int; old_state : string; new_state : string }
  | Hugepage_alloc of { region : string; offset : int; len : int }
  | Hugepage_free of { region : string; offset : int; len : int }
  | Custom of { component : string; name : string; detail : string }

type record = { seq : int; time : float; event : event }

type t

val create : ?capacity:int -> ?enabled:bool -> now:(unit -> float) -> unit -> t
(** [capacity] is the ring size in events (default 65536, rounded up to at
    least 1); [enabled] defaults to [false]. *)

val enabled : t -> bool

val set_enabled : t -> bool -> unit

val capacity : t -> int

val record : t -> event -> unit
(** No-op while disabled. *)

val records : t -> record list
(** Retained events, oldest first. *)

val recorded : t -> int
(** Total events ever recorded (including overwritten ones). *)

val dropped : t -> int
(** Events overwritten by ring wraparound. *)

val clear : t -> unit

val event_type : event -> string

val event_args : event -> (string * string) list
(** The event's payload as ordered [key, value] pairs — the same pairs
    {!to_json} / {!to_csv} render. Exposed so cross-host aggregators
    (Nkobs federation, the flight recorder) can re-render merged streams
    without reimplementing the taxonomy. *)

val to_json : t -> string
(** [{"events":[...],"recorded":N,"dropped":M}], one event object per
    line, deterministic. *)

val to_csv : t -> string
(** Header [seq,time,type,args]; [args] is a semicolon-separated
    [key=value] list. When events were dropped (ring wraparound) a trailing
    ["# dropped ..."] comment line warns about the truncation. *)
