(* Nkobs — the cluster-wide observability plane (DESIGN.md par.17).

   One instance watches N per-host Nkmon handles ("sources") plus any
   number of tenant SLO probes, and on its own virtual-time ticks turns
   their state into federated snapshots, SLO verdicts, typed alerts and
   flight-recorder dumps. The plane is an observer only: it never charges
   simulated cycles and samples registries/rings without mutating them, so
   attaching it cannot perturb the world it watches — and every output it
   produces derives from virtual time alone, so same-seed runs are
   byte-identical down to the flight dumps. *)

module Engine = Sim.Engine
module Registry = Nkmon.Registry
module Trace = Nkmon.Trace
module Histogram = Nkutil.Histogram

(* ---- alerts -------------------------------------------------------------- *)

type alert =
  | Slo_breach of { tenant : string; metric : string; value : float; target : float }
  | Slo_recovered of { tenant : string }
  | Dropped_events of { host : string; dropped : int }
  | Hugepage_pressure of { host : string; region : string; used_frac : float }
  | Ring_pressure of { host : string; instance : string; depth : float }
  | Spine_saturation of { host : string; utilization : float }

let alert_type = function
  | Slo_breach _ -> "slo_breach"
  | Slo_recovered _ -> "slo_recovered"
  | Dropped_events _ -> "dropped_events"
  | Hugepage_pressure _ -> "hugepage_pressure"
  | Ring_pressure _ -> "ring_pressure"
  | Spine_saturation _ -> "spine_saturation"

let fmt_float = Printf.sprintf "%.9g"

let alert_detail = function
  | Slo_breach { tenant; metric; value; target } ->
      Printf.sprintf "tenant=%s metric=%s value=%s target=%s" tenant metric
        (fmt_float value) (fmt_float target)
  | Slo_recovered { tenant } -> Printf.sprintf "tenant=%s" tenant
  | Dropped_events { host; dropped } -> Printf.sprintf "host=%s dropped=%d" host dropped
  | Hugepage_pressure { host; region; used_frac } ->
      Printf.sprintf "host=%s region=%s used_frac=%s" host region (fmt_float used_frac)
  | Ring_pressure { host; instance; depth } ->
      Printf.sprintf "host=%s instance=%s depth=%s" host instance (fmt_float depth)
  | Spine_saturation { host; utilization } ->
      Printf.sprintf "host=%s utilization=%s" host (fmt_float utilization)

(* ---- configuration ------------------------------------------------------- *)

type rules = {
  hugepage_used_frac : float;
  ring_depth : float;
  spine_utilization : float;
}

let default_rules = { hugepage_used_frac = 0.9; ring_depth = 64.0; spine_utilization = 0.8 }

type slo_target = {
  latency_p99 : float option;
  max_error_rate : float;
  min_requests : int;
}

type probe = { p_requests : int; p_errors : int; p_latency : Histogram.t }

type slo_status = {
  st_tenant : string;
  st_ok : bool;
  st_windows : int;
  st_breaches : int;
  st_last_p99 : float;
  st_last_error_rate : float;
  st_last_requests : int;
}

(* ---- state --------------------------------------------------------------- *)

type source = {
  s_host : string;
  s_mon : Nkmon.t;
  (* pressure-rule edge state: alert on a threshold crossing, stay quiet
     while the condition persists, re-arm when it clears *)
  mutable s_dropped : int; (* dropped_events count at the last tick *)
  mutable s_drop_over : bool;
  mutable s_spine_bytes : int; (* spine bytes_shipped at the last tick *)
  mutable s_spine_over : bool;
  mutable s_hp_over : string list; (* regions currently at/above threshold *)
  mutable s_ring_over : string list; (* CE shard instances currently over *)
}

type tenant = {
  tn_name : string;
  tn_target : slo_target;
  tn_probe : unit -> probe;
  (* cumulative snapshot the current window is measured against; [None]
     before the first tick *)
  mutable tn_prev : (int * int * Histogram.t) option;
  mutable tn_ok : bool;
  mutable tn_windows : int;
  mutable tn_breaches : int;
  mutable tn_last_p99 : float;
  mutable tn_last_err : float;
  mutable tn_last_req : int;
}

type t = {
  engine : Engine.t;
  mon : Nkmon.t; (* where alert events and plane counters land *)
  period : float;
  rules : rules;
  flight_depth : int;
  max_dumps : int;
  mutable srcs : source list; (* add order *)
  mutable tenants : tenant list; (* add order *)
  mutable subs : (time:float -> alert -> unit) list; (* subscription order *)
  mutable alert_log : (float * alert) list; (* newest first *)
  mutable dump_log : (float * alert * string) list; (* newest first *)
  mutable n_dumps : int; (* dumps requested, incl. past max_dumps *)
  mutable n_ticks : int;
  mutable last_tick : float;
  mutable running : bool;
  c_alerts : Registry.counter;
  c_ticks : Registry.counter;
}

let create ?(period = 0.01) ?(rules = default_rules) ?(flight_depth = 64) ?(max_dumps = 8)
    ~engine ~mon () =
  if period <= 0.0 then invalid_arg "Nkobs.create: period must be positive";
  let t =
    {
      engine;
      mon;
      period;
      rules;
      flight_depth;
      max_dumps;
      srcs = [];
      tenants = [];
      subs = [];
      alert_log = [];
      dump_log = [];
      n_dumps = 0;
      n_ticks = 0;
      last_tick = Engine.now engine;
      running = false;
      c_alerts = Nkmon.counter mon ~component:"nkobs" ~instance:"plane" ~name:"alerts";
      c_ticks = Nkmon.counter mon ~component:"nkobs" ~instance:"plane" ~name:"ticks";
    }
  in
  Nkmon.sampler mon ~component:"nkobs" ~instance:"plane" ~name:"sources" (fun () ->
      float_of_int (List.length t.srcs));
  Nkmon.sampler mon ~component:"nkobs" ~instance:"plane" ~name:"tenants" (fun () ->
      float_of_int (List.length t.tenants));
  Nkmon.sampler mon ~component:"nkobs" ~instance:"plane" ~name:"flight_dumps" (fun () ->
      float_of_int t.n_dumps);
  t

let add_source t ~host mon =
  if List.exists (fun s -> String.equal s.s_host host) t.srcs then
    invalid_arg (Printf.sprintf "Nkobs.add_source: duplicate host tag %S" host);
  t.srcs <-
    t.srcs
    @ [
        {
          s_host = host;
          s_mon = mon;
          s_dropped = Nkmon.dropped_events mon;
          s_drop_over = false;
          s_spine_bytes = 0;
          s_spine_over = false;
          s_hp_over = [];
          s_ring_over = [];
        };
      ]

let of_fabric ?period ?rules ?flight_depth ?max_dumps fab =
  let tb = Nkfabric.testbed fab in
  let t =
    create ?period ?rules ?flight_depth ?max_dumps ~engine:tb.Nkcore.Testbed.engine
      ~mon:tb.Nkcore.Testbed.mon ()
  in
  add_source t ~host:"cluster" tb.Nkcore.Testbed.mon;
  List.iter
    (fun n ->
      add_source t
        ~host:(Nkcore.Host.name (Nkfabric.node_host n))
        (Nkfabric.node_mon n))
    (Nkfabric.nodes fab);
  t

let sources t = List.map (fun s -> (s.s_host, s.s_mon)) t.srcs

let engine t = t.engine

let add_tenant t ~name ~target ~probe =
  if List.exists (fun tn -> String.equal tn.tn_name name) t.tenants then
    invalid_arg (Printf.sprintf "Nkobs.add_tenant: duplicate tenant %S" name);
  t.tenants <-
    t.tenants
    @ [
        {
          tn_name = name;
          tn_target = target;
          tn_probe = probe;
          tn_prev = None;
          tn_ok = true;
          tn_windows = 0;
          tn_breaches = 0;
          tn_last_p99 = 0.0;
          tn_last_err = 0.0;
          tn_last_req = 0;
        };
      ]

let slo_status t =
  List.map
    (fun tn ->
      {
        st_tenant = tn.tn_name;
        st_ok = tn.tn_ok;
        st_windows = tn.tn_windows;
        st_breaches = tn.tn_breaches;
        st_last_p99 = tn.tn_last_p99;
        st_last_error_rate = tn.tn_last_err;
        st_last_requests = tn.tn_last_req;
      })
    t.tenants

let on_alert t f = t.subs <- t.subs @ [ f ]

let alerts t = List.rev t.alert_log

let alert_count t = List.length t.alert_log

let ticks t = t.n_ticks

(* ---- metric federation --------------------------------------------------- *)

let row_headers = [ "host"; "component"; "instance"; "metric"; "value" ]

let to_rows t =
  List.concat_map
    (fun s ->
      List.map
        (fun (e : Registry.entry) ->
          [ s.s_host; e.component; e.instance; e.metric; Registry.value_cell e.value ])
        (Registry.entries (Nkmon.registry s.s_mon)))
    t.srcs

let to_csv t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (String.concat "," row_headers);
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (String.concat "," (List.map (fun c -> "\"" ^ c ^ "\"") row));
      Buffer.add_char buf '\n')
    (to_rows t);
  Buffer.contents buf

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"hosts\":[";
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "{\"host\":\"%s\",\"metrics\":%d,\"dropped_events\":%d}"
           (json_escape s.s_host)
           (Registry.cardinality (Nkmon.registry s.s_mon))
           (Nkmon.dropped_events s.s_mon)))
    t.srcs;
  Buffer.add_string buf "],\"metrics\":[\n";
  let first = ref true in
  List.iter
    (fun s ->
      List.iter
        (fun (e : Registry.entry) ->
          if not !first then Buffer.add_string buf ",\n";
          first := false;
          Buffer.add_string buf
            (Printf.sprintf
               "{\"host\":\"%s\",\"component\":\"%s\",\"instance\":\"%s\",\"metric\":\"%s\",%s}"
               (json_escape s.s_host) (json_escape e.component) (json_escape e.instance)
               (json_escape e.metric) (Registry.value_json e.value)))
        (Registry.entries (Nkmon.registry s.s_mon)))
    t.srcs;
  Buffer.add_string buf "\n]}\n";
  Buffer.contents buf

(* Merge order: virtual time, then source add order, then sequence number —
   a total order (seq is unique per source), so the sort result does not
   depend on sort stability. *)
let merge_records per_src =
  let tagged =
    List.concat
      (List.mapi
         (fun i (host, records) -> List.map (fun r -> (i, host, r)) records)
         per_src)
  in
  List.map
    (fun (_, host, r) -> (host, r))
    (List.sort
       (fun (ia, _, (ra : Trace.record)) (ib, _, rb) ->
         let c = Float.compare ra.Trace.time rb.Trace.time in
         if c <> 0 then c
         else
           let c = Int.compare ia ib in
           if c <> 0 then c else Int.compare ra.Trace.seq rb.Trace.seq)
       tagged)

let merged_trace t =
  merge_records
    (List.map (fun s -> (s.s_host, Trace.records (Nkmon.trace s.s_mon))) t.srcs)

let fmt_time = Printf.sprintf "%.9f"

let add_record_csv buf (host, (r : Trace.record)) =
  let args =
    Trace.event_args r.Trace.event
    |> List.map (fun (k, v) -> k ^ "=" ^ v)
    |> String.concat ";"
  in
  Buffer.add_string buf
    (Printf.sprintf "%s,%d,%s,%s,\"%s\"\n" host r.Trace.seq (fmt_time r.Trace.time)
       (Trace.event_type r.Trace.event)
       args)

let merged_trace_csv t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "host,seq,time,type,args\n";
  List.iter (fun tagged -> add_record_csv buf tagged) (merged_trace t);
  List.iter
    (fun s ->
      let d = Nkmon.dropped_events s.s_mon in
      if d > 0 then
        Buffer.add_string buf
          (Printf.sprintf "# host %s dropped %d events (ring wraparound)\n" s.s_host d))
    t.srcs;
  Buffer.contents buf

let merged_trace_json t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"events\":[\n";
  let first = ref true in
  List.iter
    (fun (host, (r : Trace.record)) ->
      if !first then first := false else Buffer.add_string buf ",\n";
      let args =
        Trace.event_args r.Trace.event
        |> List.map (fun (k, v) ->
               Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v))
        |> String.concat ","
      in
      Buffer.add_string buf
        (Printf.sprintf
           "{\"host\":\"%s\",\"seq\":%d,\"time\":%s,\"type\":\"%s\",\"args\":{%s}}"
           (json_escape host) r.Trace.seq (fmt_time r.Trace.time)
           (json_escape (Trace.event_type r.Trace.event))
           args))
    (merged_trace t);
  Buffer.add_string buf "\n],\"dropped\":[";
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "{\"host\":\"%s\",\"dropped_events\":%d}" (json_escape s.s_host)
           (Nkmon.dropped_events s.s_mon)))
    t.srcs;
  Buffer.add_string buf "]}\n";
  Buffer.contents buf

(* ---- the flight recorder ------------------------------------------------- *)

let last_n n l =
  let len = List.length l in
  if len <= n then l else List.filteri (fun i _ -> i >= len - n) l

let flight_snapshot t ~time alert =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Printf.sprintf "# flight time=%s type=%s %s\n" (fmt_time time) (alert_type alert)
       (alert_detail alert));
  Buffer.add_string buf "host,seq,time,type,args\n";
  let merged =
    merge_records
      (List.map
         (fun s -> (s.s_host, last_n t.flight_depth (Trace.records (Nkmon.trace s.s_mon))))
         t.srcs)
  in
  List.iter (fun tagged -> add_record_csv buf tagged) merged;
  Buffer.contents buf

let dumps t = List.rev t.dump_log

let dump_count t = t.n_dumps

(* ---- the alert path ------------------------------------------------------ *)

let raise_alert t alert =
  let time = Engine.now t.engine in
  Registry.incr t.c_alerts;
  t.alert_log <- (time, alert) :: t.alert_log;
  if Nkmon.tracing t.mon then
    Nkmon.event t.mon
      (Trace.Custom
         { component = "nkobs"; name = alert_type alert; detail = alert_detail alert });
  t.n_dumps <- t.n_dumps + 1;
  if t.n_dumps <= t.max_dumps then
    t.dump_log <- (time, alert, flight_snapshot t ~time alert) :: t.dump_log;
  List.iter (fun f -> f ~time alert) t.subs

(* ---- pressure rules ------------------------------------------------------ *)

(* One pass over a source's (sorted) registry snapshot collects everything
   the rules need; thresholds are edge-triggered so a persistent condition
   alerts once and re-arms when it clears. *)
let eval_source t ~elapsed s =
  let d = Nkmon.dropped_events s.s_mon in
  (if d > s.s_dropped then (
     if not s.s_drop_over then
       raise_alert t (Dropped_events { host = s.s_host; dropped = d - s.s_dropped });
     s.s_drop_over <- true)
   else s.s_drop_over <- false);
  s.s_dropped <- d;
  let entries = Registry.entries (Nkmon.registry s.s_mon) in
  let gauge_of = function
    | Registry.Gauge v -> Some v
    | Registry.Counter n -> Some (float_of_int n)
    | _ -> None
  in
  let lookup ~component ~instance ~metric =
    List.find_map
      (fun (e : Registry.entry) ->
        if
          String.equal e.component component
          && String.equal e.instance instance
          && String.equal e.metric metric
        then gauge_of e.value
        else None)
      entries
  in
  (* Hugepage fill: every region with a capacity row is checked. *)
  List.iter
    (fun (e : Registry.entry) ->
      if String.equal e.component "hugepages" && String.equal e.metric "bytes_in_use" then
        match
          (gauge_of e.value, lookup ~component:"hugepages" ~instance:e.instance ~metric:"capacity_bytes")
        with
        | Some used, Some cap when cap > 0.0 ->
            let frac = used /. cap in
            let over = frac >= t.rules.hugepage_used_frac in
            let was = List.mem e.instance s.s_hp_over in
            if over && not was then begin
              s.s_hp_over <- s.s_hp_over @ [ e.instance ];
              raise_alert t
                (Hugepage_pressure { host = s.s_host; region = e.instance; used_frac = frac })
            end
            else if (not over) && was then
              s.s_hp_over <- List.filter (fun r -> not (String.equal r e.instance)) s.s_hp_over
        | _ -> ())
    entries;
  (* CoreEngine deferred-queue depth: parked NQEs are the CE-side ring
     backpressure signal. *)
  List.iter
    (fun (e : Registry.entry) ->
      if String.equal e.component "coreengine" && String.equal e.metric "deferred_depth"
      then
        match gauge_of e.value with
        | Some depth ->
            let over = depth >= t.rules.ring_depth in
            let was = List.mem e.instance s.s_ring_over in
            if over && not was then begin
              s.s_ring_over <- s.s_ring_over @ [ e.instance ];
              raise_alert t (Ring_pressure { host = s.s_host; instance = e.instance; depth })
            end
            else if (not over) && was then
              s.s_ring_over <-
                List.filter (fun r -> not (String.equal r e.instance)) s.s_ring_over
        | None -> ())
    entries;
  (* Spine saturation: shipped-bytes delta this tick vs what the default
     link rate could carry in the elapsed window. *)
  (match lookup ~component:"nkfabric" ~instance:"spine" ~metric:"bytes_shipped" with
  | Some shipped ->
      let shipped = int_of_float shipped in
      let delta = shipped - s.s_spine_bytes in
      s.s_spine_bytes <- shipped;
      (match
         lookup ~component:"nkfabric" ~instance:"spine"
           ~metric:"link_capacity_bytes_per_sec"
       with
      | Some cap when cap > 0.0 && elapsed > 0.0 ->
          let utilization = float_of_int delta /. (cap *. elapsed) in
          let over = utilization >= t.rules.spine_utilization in
          if over && not s.s_spine_over then begin
            s.s_spine_over <- true;
            raise_alert t (Spine_saturation { host = s.s_host; utilization })
          end
          else if not over then s.s_spine_over <- false
      | _ -> ())
  | None -> ())

(* ---- SLO evaluation ------------------------------------------------------ *)

let eval_tenant t tn =
  let cur = tn.tn_probe () in
  match tn.tn_prev with
  | None ->
      tn.tn_prev <- Some (cur.p_requests, cur.p_errors, Histogram.copy cur.p_latency)
  | Some (req0, err0, lat0) ->
      let req_d = cur.p_requests - req0 in
      (* Windows below min_requests are left open (the snapshot is not
         advanced), so slow tenants accumulate until a window is big
         enough to judge instead of never being evaluated at all. *)
      if req_d >= tn.tn_target.min_requests && req_d > 0 then begin
        let err_d = cur.p_errors - err0 in
        let window = Histogram.diff ~newer:cur.p_latency ~older:lat0 in
        let p99 = Histogram.percentile window 99.0 in
        let err_rate = float_of_int err_d /. float_of_int req_d in
        tn.tn_windows <- tn.tn_windows + 1;
        tn.tn_last_p99 <- p99;
        tn.tn_last_err <- err_rate;
        tn.tn_last_req <- req_d;
        let violation =
          match tn.tn_target.latency_p99 with
          | Some ceiling when p99 > ceiling -> Some ("p99", p99, ceiling)
          | _ ->
              if err_rate > tn.tn_target.max_error_rate then
                Some ("error_rate", err_rate, tn.tn_target.max_error_rate)
              else None
        in
        (match violation with
        | Some (metric, value, target) ->
            tn.tn_breaches <- tn.tn_breaches + 1;
            if tn.tn_ok then begin
              tn.tn_ok <- false;
              raise_alert t (Slo_breach { tenant = tn.tn_name; metric; value; target })
            end
        | None ->
            if not tn.tn_ok then begin
              tn.tn_ok <- true;
              raise_alert t (Slo_recovered { tenant = tn.tn_name })
            end);
        tn.tn_prev <- Some (cur.p_requests, cur.p_errors, Histogram.copy cur.p_latency)
      end

(* ---- ticking ------------------------------------------------------------- *)

let tick t =
  let now = Engine.now t.engine in
  let elapsed = now -. t.last_tick in
  t.last_tick <- now;
  t.n_ticks <- t.n_ticks + 1;
  Registry.incr t.c_ticks;
  List.iter (fun s -> eval_source t ~elapsed s) t.srcs;
  List.iter (fun tn -> eval_tenant t tn) t.tenants

let rec schedule_tick t =
  ignore
    (Engine.schedule t.engine ~delay:t.period (fun () ->
         if t.running then begin
           tick t;
           schedule_tick t
         end))

let start t =
  if not t.running then begin
    t.running <- true;
    schedule_tick t
  end

let stop t = t.running <- false
