(** Nkobs: the cluster-wide observability plane (DESIGN.md par.17).

    Nkmon and Nkspan are per-host foundations: every component on a host
    reports into that host's registry, trace ring and span recorder.
    Nkobs is the layer above — one [Nkobs.t] watches any number of hosts
    and turns their per-host state into an operator view:

    - {e metric federation}: walk every source registry and produce one
      merged, host-tagged snapshot ({!to_rows}/{!to_csv}/{!to_json}) and
      one merged trace ordered by virtual time ({!merged_trace_csv}) —
      what [nk stats --cluster] and [nk trace --cluster] print;
    - {e per-tenant SLO accounting}: rolling windows over each tenant's
      cumulative request counts and latency histogram, evaluated against
      declared targets (p99 ceiling, error-rate ceiling) on virtual-time
      ticks;
    - {e an alert stream}: SLO breaches and recoveries, trace-ring
      overwrites ([dropped_events]), hugepage and CoreEngine deferred-queue
      pressure, and spine-link saturation become typed {!alert}s, recorded
      as [Custom] events into the plane's own Nkmon trace {e and} fanned
      out to {!on_alert} subscribers — which is how an SLO breach triggers
      Nkctl verbs (autoscale, handover, [switch_protocol]);
    - {e a deterministic flight recorder}: when an alert fires, the most
      recent trace events of every source host are dumped into one
      host-tagged, virtual-time-ordered snapshot ({!dumps}). Same seed,
      same bytes — the dynamic counterpart of nklint/nkscope, and the
      landing pad for the chaos harness (ROADMAP item 5).

    Everything here observes virtual time only and never charges simulated
    cycles: attaching the plane must not perturb the world it watches.
    The plane samples state only on its own ticks, so with identical seeds
    the full alert log, SLO history and every flight dump are
    byte-identical run to run. *)

(** {1 Alerts} *)

type alert =
  | Slo_breach of {
      tenant : string;
      metric : string;  (** ["p99"] or ["error_rate"] *)
      value : float;
      target : float;
    }
  | Slo_recovered of { tenant : string }
  | Dropped_events of { host : string; dropped : int }
      (** a source's trace ring started overwriting events; [dropped] is the
          count lost over the triggering tick. Edge-triggered like the
          pressure rules: a ring that keeps dropping stays quiet until a
          tick passes with no new drops, which re-arms the rule. *)
  | Hugepage_pressure of {
      host : string;
      region : string;
      used_frac : float;  (** bytes_in_use / capacity_bytes *)
    }
  | Ring_pressure of {
      host : string;
      instance : string;  (** CoreEngine shard instance *)
      depth : float;  (** parked NQEs in its deferred queues *)
    }
  | Spine_saturation of {
      host : string;  (** the source carrying the spine metrics *)
      utilization : float;  (** shipped bytes this tick vs link capacity *)
    }

val alert_type : alert -> string

val alert_detail : alert -> string
(** Deterministic one-line rendering ([key=value] pairs) — the [detail]
    field of the [Custom] trace event each alert records. *)

(** {1 Thresholds and SLO targets} *)

type rules = {
  hugepage_used_frac : float;  (** alert at/above this fill fraction (default 0.9) *)
  ring_depth : float;  (** alert at/above this parked-NQE depth (default 64) *)
  spine_utilization : float;  (** alert at/above this link utilization (default 0.8) *)
}

val default_rules : rules

type slo_target = {
  latency_p99 : float option;  (** ceiling on windowed p99, seconds *)
  max_error_rate : float;  (** ceiling on windowed errors/requests *)
  min_requests : int;
      (** windows with fewer requests are not evaluated (no flapping on
          idle tenants) *)
}

type probe = {
  p_requests : int;  (** cumulative completed requests *)
  p_errors : int;  (** cumulative errors *)
  p_latency : Nkutil.Histogram.t;  (** cumulative latency histogram *)
}
(** What a tenant probe reports: cumulative totals since time zero (e.g.
    straight from [Loadgen.results]). The plane snapshots it every tick
    and evaluates the SLO on the {e window} between snapshots
    ({!Nkutil.Histogram.diff}). *)

type slo_status = {
  st_tenant : string;
  st_ok : bool;  (** false while in breach *)
  st_windows : int;  (** evaluated (>= min_requests) windows so far *)
  st_breaches : int;  (** windows that opened or extended a breach *)
  st_last_p99 : float;  (** windowed p99 of the last evaluated window, seconds *)
  st_last_error_rate : float;
  st_last_requests : int;  (** request count of the last evaluated window *)
}

(** {1 The plane} *)

type t

val create :
  ?period:float ->
  ?rules:rules ->
  ?flight_depth:int ->
  ?max_dumps:int ->
  engine:Sim.Engine.t ->
  mon:Nkmon.t ->
  unit ->
  t
(** [mon] is the plane's own observability handle: alert events are
    recorded into its trace and the plane's counters
    ([nkobs/plane/ticks], [nkobs/plane/alerts]) into its registry —
    normally the cluster-scope [tb.mon], which {!add_source} then also
    federates as a source. [period] (default 10 ms) is the evaluation
    tick; [flight_depth] (default 64) bounds the per-host event count in
    a flight dump; [max_dumps] (default 8) bounds retained dumps (later
    alerts still count and fan out, they just stop dumping). *)

val add_source : t -> host:string -> Nkmon.t -> unit
(** Federate a host's registry + trace under the [host] tag. Sources are
    walked in add order; adding the same tag twice raises. *)

val of_fabric :
  ?period:float -> ?rules:rules -> ?flight_depth:int -> ?max_dumps:int -> Nkfabric.t -> t
(** The standard cluster wiring: the testbed's [mon] becomes the plane
    handle and the ["cluster"] source (spine + migration metrics, plain
    hosts outside the cluster), and every node is added as a source under
    its host name, in node order. *)

val sources : t -> (string * Nkmon.t) list
(** In add order. *)

val engine : t -> Sim.Engine.t

(** {1 SLO accounting} *)

val add_tenant : t -> name:string -> target:slo_target -> probe:(unit -> probe) -> unit
(** Register a tenant; evaluated every tick, in add order. Adding the
    same name twice raises. *)

val slo_status : t -> slo_status list
(** In tenant add order. *)

(** {1 The alert stream} *)

val on_alert : t -> (time:float -> alert -> unit) -> unit
(** Subscribe; callbacks run in subscription order, after the alert has
    been recorded in the trace and (possibly) captured a flight dump.
    This is the hook a control loop (Nkctl) closes the loop with. *)

val alerts : t -> (float * alert) list
(** Every alert raised so far, oldest first. *)

val alert_count : t -> int

(** {1 Ticking} *)

val start : t -> unit
(** Schedule the first tick [period] from now and keep ticking every
    [period] until {!stop}. *)

val stop : t -> unit

val tick : t -> unit
(** One immediate evaluation pass (pressure rules, then SLOs), outside
    the periodic schedule — callers with their own cadence use this. *)

val ticks : t -> int

(** {1 Metric federation} *)

val row_headers : string list
(** ["host"; "component"; "instance"; "metric"; "value"]. *)

val to_rows : t -> string list list
(** One row per metric of every source, host tag first — sources in add
    order, each source's rows in its registry's sorted order. *)

val to_csv : t -> string

val to_json : t -> string
(** [{"hosts":[...],"metrics":[...]}], deterministic; each metric object
    carries its [host] tag, and each host object its trace
    [dropped_events] count so truncation is visible in the export
    itself. *)

val merged_trace : t -> (string * Nkmon.Trace.record) list
(** All sources' retained trace events, host-tagged and merged in
    virtual-time order (ties: source add order, then sequence number). *)

val merged_trace_csv : t -> string
(** Header [host,seq,time,type,args]; a trailing comment warns when any
    source dropped events. *)

val merged_trace_json : t -> string
(** [{"events":[...],"dropped":[...]}], same order as {!merged_trace};
    every event object carries its [host] tag and the [dropped] array the
    per-source [dropped_events] counts. *)

(** {1 The flight recorder} *)

val dumps : t -> (float * alert * string) list
(** Retained flight dumps, oldest first: alert virtual time, the alert,
    and the snapshot — the last [flight_depth] trace events of every
    source at the moment the alert fired, host-tagged and merged in
    virtual-time order. Byte-identical across same-seed runs. *)

val dump_count : t -> int
(** Alerts that requested a dump (including those past [max_dumps]). *)
