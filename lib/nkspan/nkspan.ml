(* Nkspan — request-scoped spans over the NetKernel datapath, plus a cycle
   profiler (DESIGN.md par.12).

   One span follows one NQE from the GuestLib API call that created it to
   the completion event delivered back to the application. Components mark
   named stages ([begin_stage]/[end_stage]); the time a sampled request
   spends between stages — sitting in an NK device ring or parked in a
   CoreEngine deferred queue while no component is touching it — is
   attributed to the implicit "ring" stage, so per-stage sums reconcile
   with end-to-end latency by construction.

   Everything here observes virtual time only and charges zero simulated
   cycles: enabling spans must not perturb event ordering, so traced and
   untraced runs of the same seed stay byte-identical in their reported
   metrics. *)

type seg = { g_stage : string; g_comp : string; g_t0 : float; g_t1 : float }

type span = {
  id : int;
  vm : string;
  birth : float;
  mutable finished_at : float; (* negative while the request is in flight *)
  mutable open_stage : (string * string * float) option; (* stage, component, t0 *)
  mutable segs : seg list; (* newest first *)
}

type t = {
  now : unit -> float;
  every : int; (* sample 1 in [every] requests; 0 disables spans *)
  capacity : int; (* max spans retained; later samples count as dropped *)
  id_base : int; (* host index lsl 24, OR'd into every minted id *)
  spans : (int, span) Hashtbl.t;
  mutable next_seq : int;
  mutable births : int;
  mutable dropped : int;
  (* profiler *)
  mutable profiling : bool;
  mutable frames : (string * string) list; (* (component, stage), innermost first *)
  cells : (string * string, float ref) Hashtbl.t;
}

(* Span ids are host-unique across a cluster: the host index occupies the
   high bits of the 32-bit NQE span field (bytes 28-31, unchanged on the
   wire) and a dense per-host sequence the low 24. Id 0 stays "untraced",
   so stage calls against a foreign host's instance remain safe no-ops. *)
let seq_bits = 24
let max_host_index = (1 lsl (32 - seq_bits)) - 1

let create ?(span_every = 0) ?(capacity = 1 lsl 16) ?(host_index = 0) ~now () =
  if host_index < 0 || host_index > max_host_index then
    invalid_arg "Nkspan.create: host_index out of range";
  {
    now;
    every = span_every;
    capacity;
    id_base = host_index lsl seq_bits;
    spans = Hashtbl.create 256;
    next_seq = 1;
    births = 0;
    dropped = 0;
    profiling = false;
    frames = [];
    cells = Hashtbl.create 64;
  }

let null () = create ~now:(fun () -> 0.0) ()

let enabled t = t.every > 0

let dropped t = t.dropped

let host_index t = t.id_base lsr seq_bits

(* ---- span lifecycle ---------------------------------------------------- *)

let sample t ~vm =
  if t.every <= 0 then 0
  else begin
    let n = t.births in
    t.births <- n + 1;
    if n mod t.every <> 0 then 0
    else if Hashtbl.length t.spans >= t.capacity then begin
      t.dropped <- t.dropped + 1;
      0
    end
    else begin
      let id = t.id_base lor t.next_seq in
      t.next_seq <- t.next_seq + 1;
      Hashtbl.replace t.spans id
        { id; vm; birth = t.now (); finished_at = -1.0; open_stage = None; segs = [] };
      id
    end
  end

let close_open t sp =
  match sp.open_stage with
  | None -> ()
  | Some (stage, comp, t0) ->
      sp.segs <- { g_stage = stage; g_comp = comp; g_t0 = t0; g_t1 = t.now () } :: sp.segs;
      sp.open_stage <- None

let find_live t id =
  if id <= 0 then None
  else
    match Hashtbl.find_opt t.spans id with
    | Some sp when sp.finished_at < 0.0 -> Some sp
    | _ -> None

let begin_stage t ~id ~component stage =
  match find_live t id with
  | None -> ()
  | Some sp -> (
      match sp.open_stage with
      | Some (open_name, _, _) when String.equal open_name stage ->
          (* Re-entry into the stage already open (e.g. a CoreEngine shard
             retrying a deferred NQE): keep the earliest t0 so the parked
             time stays inside the stage. *)
          ()
      | _ ->
          close_open t sp;
          sp.open_stage <- Some (stage, component, t.now ()))

let end_stage t ~id stage =
  match find_live t id with
  | None -> ()
  | Some sp -> (
      match sp.open_stage with
      | Some (open_name, _, _) when String.equal open_name stage -> close_open t sp
      | _ -> ())

let finish t ~id =
  match find_live t id with
  | None -> ()
  | Some sp ->
      close_open t sp;
      sp.finished_at <- t.now ()

(* Sequence numbers are dense from 1, so iterating [1, next_seq) with the
   host base OR'd back in visits spans in creation order without touching
   Hashtbl bucket order. *)
let fold_spans t f acc =
  let acc = ref acc in
  for seq = 1 to t.next_seq - 1 do
    match Hashtbl.find_opt t.spans (t.id_base lor seq) with
    | Some sp -> acc := f !acc sp
    | None -> ()
  done;
  !acc

let finished_spans t =
  List.rev
    (fold_spans t (fun acc sp -> if sp.finished_at >= 0.0 then sp :: acc else acc) [])

let span_id sp = sp.id
let span_vm sp = sp.vm
let span_birth sp = sp.birth
let span_finish sp = sp.finished_at
let span_segs sp = List.rev sp.segs

let span_count t = Hashtbl.length t.spans

(* ---- per-stage aggregation -------------------------------------------- *)

(* Canonical presentation order of the request-path taxonomy; stages outside
   it (component-specific extensions) sort alphabetically after. *)
let stage_order =
  [ "guestlib"; "ring"; "ce-switch"; "spine"; "servicelib"; "stack"; "completion" ]

let ring_stage = "ring"

let order_stages names =
  let known = List.filter (fun s -> List.mem s names) stage_order in
  let extra =
    List.sort String.compare
      (List.filter (fun s -> not (List.mem s stage_order)) names)
  in
  known @ extra

type breakdown = {
  b_spans : int;
  b_e2e : Nkutil.Histogram.t;
  b_stages : (string * Nkutil.Histogram.t) list; (* taxonomy order, incl. ring *)
}

let breakdown t =
  let names =
    fold_spans t
      (fun acc sp ->
        if sp.finished_at < 0.0 then acc
        else
          List.fold_left
            (fun acc g -> if List.mem g.g_stage acc then acc else g.g_stage :: acc)
            acc sp.segs)
      []
  in
  let names =
    order_stages (if List.mem ring_stage names then names else ring_stage :: names)
  in
  let e2e = Nkutil.Histogram.create () in
  let stages = List.map (fun s -> (s, Nkutil.Histogram.create ())) names in
  let count =
    fold_spans t
      (fun n sp ->
        if sp.finished_at < 0.0 then n
        else begin
          let total = sp.finished_at -. sp.birth in
          Nkutil.Histogram.record e2e total;
          let explicit =
            List.fold_left (fun acc g -> acc +. (g.g_t1 -. g.g_t0)) 0.0 sp.segs
          in
          List.iter
            (fun (name, h) ->
              let named =
                List.fold_left
                  (fun acc g ->
                    if String.equal g.g_stage name then acc +. (g.g_t1 -. g.g_t0)
                    else acc)
                  0.0 sp.segs
              in
              (* The ring stage owns every instant no explicit stage claims
                 (deferred-queue parking, hops recorded without a device
                 mark), on top of its explicitly recorded segments. *)
              let v =
                if String.equal name ring_stage then
                  named +. Float.max 0.0 (total -. explicit)
                else named
              in
              Nkutil.Histogram.record h v)
            stages;
          n + 1
        end)
      0
  in
  { b_spans = count; b_e2e = e2e; b_stages = stages }

(* ---- Chrome trace-event (catapult JSON) export ------------------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Microseconds with fixed decimals: virtual times are deterministic, so the
   rendered JSON is byte-identical across same-seed runs. *)
let usec v = Printf.sprintf "%.3f" (v *. 1e6)

let to_catapult t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[";
  (* pid = order of first appearance of the originating VM, tid = span id. *)
  let pids = ref [] in
  let pid_of vm =
    match List.assoc_opt vm !pids with
    | Some p -> p
    | None ->
        let p = List.length !pids in
        pids := !pids @ [ (vm, p) ];
        p
  in
  let first = ref true in
  let emit ~name ~cat ~ts ~dur ~pid ~tid ~args =
    if not !first then Buffer.add_char buf ',';
    first := false;
    Buffer.add_string buf
      (Printf.sprintf
         "\n{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%s,\"dur\":%s,\"pid\":%d,\"tid\":%d,\"args\":{%s}}"
         (json_escape name) cat (usec ts) (usec dur) pid tid args)
  in
  List.iter
    (fun sp ->
      let pid = pid_of sp.vm in
      emit ~name:"request" ~cat:"span" ~ts:sp.birth ~dur:(sp.finished_at -. sp.birth)
        ~pid ~tid:sp.id
        ~args:(Printf.sprintf "\"vm\":\"%s\"" (json_escape sp.vm));
      List.iter
        (fun g ->
          emit ~name:g.g_stage ~cat:"stage" ~ts:g.g_t0 ~dur:(g.g_t1 -. g.g_t0) ~pid
            ~tid:sp.id
            ~args:(Printf.sprintf "\"component\":\"%s\"" (json_escape g.g_comp)))
        (span_segs sp))
    (finished_spans t);
  Buffer.add_string buf "\n],\"displayTimeUnit\":\"ms\"";
  if t.dropped > 0 then
    Buffer.add_string buf (Printf.sprintf ",\"nkspanDropped\":%d" t.dropped);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

(* ---- cycle profiler ---------------------------------------------------- *)

(* Core names follow "host.component.i" ("hostA.vm0.3") or "host.component"
   ("hostA.coreengine"): strip a trailing all-digit segment, then take the
   last remaining segment as the component. *)
let component_of_core core =
  let is_digits s = s <> "" && String.for_all (fun c -> c >= '0' && c <= '9') s in
  let rec last_non_digit prev = function
    | [] -> prev
    | [ x ] -> if is_digits x then prev else x
    | x :: tl -> last_non_digit (if is_digits x then prev else x) tl
  in
  match String.split_on_char '.' core with
  | [] -> core
  | segs -> ( match last_non_digit "" segs with "" -> core | c -> c)

let unframed_stage = "(unframed)"

let record_cycles t ~core cycles =
  let comp, stage =
    match t.frames with
    | (c, s) :: _ -> (c, s)
    | [] -> (component_of_core core, unframed_stage)
  in
  match Hashtbl.find_opt t.cells (comp, stage) with
  | Some r -> r := !r +. cycles
  | None -> Hashtbl.replace t.cells (comp, stage) (ref cycles)

let enable_profiler t engine =
  t.profiling <- true;
  Sim.Engine.set_cycle_hook engine (Some (fun core cycles -> record_cycles t ~core cycles))

let profiling t = t.profiling

let frame t ~component ~stage f =
  if not t.profiling then f ()
  else begin
    t.frames <- (component, stage) :: t.frames;
    Fun.protect
      ~finally:(fun () ->
        match t.frames with [] -> () | _ :: tl -> t.frames <- tl)
      f
  end

type cell = { p_comp : string; p_stage : string; p_cycles : float }

let key_cmp = Nkutil.Det_tbl.pair String.compare String.compare

let profile_cells t =
  List.map
    (fun ((c, s), r) -> { p_comp = c; p_stage = s; p_cycles = !r })
    (Nkutil.Det_tbl.bindings ~cmp:key_cmp t.cells)

(* Self-cycles table, hottest first; key order breaks exact ties so the
   dump is deterministic. *)
let profile_table t =
  List.sort
    (fun a b ->
      let c = Float.compare b.p_cycles a.p_cycles in
      if c <> 0 then c
      else key_cmp (a.p_comp, a.p_stage) (b.p_comp, b.p_stage))
    (profile_cells t)

let total_cycles t =
  List.fold_left (fun acc c -> acc +. c.p_cycles) 0.0 (profile_cells t)

(* flamegraph.pl-compatible collapsed stacks: "component;stage cycles". *)
let to_collapsed t =
  let buf = Buffer.create 512 in
  List.iter
    (fun c ->
      Buffer.add_string buf
        (Printf.sprintf "%s;%s %.0f\n" c.p_comp c.p_stage c.p_cycles))
    (profile_cells t);
  Buffer.contents buf
