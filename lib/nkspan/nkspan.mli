(** Nkspan: request-path spans and the cycle profiler (DESIGN.md par.12).

    A span follows one NQE through its whole life: GuestLib stamps a span
    id + birth time into the request at the API boundary, and each datapath
    component (NK device rings, the owning CoreEngine shard, ServiceLib,
    the TCP stack, completion delivery) records a named stage against that
    id. The NK device marks the ["ring"] stage at enqueue time, and any
    time not covered by an explicit stage — a hop recorded without a device
    mark, parking in a deferred queue — also falls to ["ring"], so
    per-stage sums always reconcile with end-to-end latency.

    Sampling ([?span_every]) keeps tracing off the hot path: with the
    default [0] every call is a no-op, and instrumented components charge
    no simulated cycles either way, so enabling spans never perturbs event
    ordering or simulated throughput.

    The profiler half attributes every {!Sim.Cpu} busy cycle to a
    (component, stage) pair: dispatch loops wrap their [Cpu.exec] calls in
    {!frame}, and cycles charged outside any frame fall back to a
    component parsed from the core name. *)

type t

type span
(** One sampled request; inspect with the accessors below. *)

type seg = {
  g_stage : string;
  g_comp : string;  (** component that recorded the stage *)
  g_t0 : float;
  g_t1 : float;  (** virtual-time interval covered *)
}

val create :
  ?span_every:int -> ?capacity:int -> ?host_index:int -> now:(unit -> float) -> unit -> t
(** [create ~now ()] with [span_every = 0] (the default) disables span
    collection entirely. [span_every = n] samples one request in [n];
    [capacity] (default 65536) bounds retained spans — samples past it are
    counted in {!dropped} instead of being silently lost.

    [host_index] (default 0, max 255) is OR'd into the high 8 bits of
    every minted span id so that per-host instances in a cluster can never
    collide: the id still fits the NQE's 32-bit span field (wire bytes
    28-31 unchanged) and [0] still means "untraced", which makes stage
    calls routed to the wrong host's instance safe no-ops. *)

val null : unit -> t
(** Detached disabled instance; the default for components built without
    [?spans] (mirrors [Nkmon.null]). *)

val enabled : t -> bool

val dropped : t -> int
(** Sampled requests not retained because [capacity] was reached. *)

val host_index : t -> int
(** The host index baked into this instance's span ids (0 by default). *)

val seq_bits : int
(** Low bits of a span id holding the per-instance sequence number (24);
    the host index lives in the bits above ([id lsr seq_bits]). *)

val max_host_index : int
(** Largest accepted [?host_index] (255 — the id must fit the NQE's
    32-bit span field). *)

(** {1 Span lifecycle — called by datapath components} *)

val sample : t -> vm:string -> int
(** [sample t ~vm] at request birth: returns a fresh span id (> 0) for
    sampled requests, [0] otherwise. The id travels in the NQE's span
    field; every other entry point is a no-op on id [0]. *)

val begin_stage : t -> id:int -> component:string -> string -> unit
(** Open the named stage at the current virtual time. Opening the stage
    that is already open is a no-op (the earliest t0 wins — deferral
    retries accumulate into one interval); opening a different stage
    closes the previous one first. *)

val end_stage : t -> id:int -> string -> unit
(** Close the named stage; a no-op unless exactly that stage is open. *)

val finish : t -> id:int -> unit
(** Request completed: closes any open stage and stamps the end time. *)

(** {1 Inspection and aggregation} *)

val span_count : t -> int

val finished_spans : t -> span list
(** Completed spans in creation (id) order. *)

val span_id : span -> int
val span_vm : span -> string
val span_birth : span -> float
val span_finish : span -> float
val span_segs : span -> seg list
(** Recorded segments in chronological order. *)

val stage_order : string list
(** Canonical request-path taxonomy:
    guestlib, ring, ce-switch, spine, servicelib, stack, completion.
    ["spine"] is recorded by the Nkfabric relay while a traced NQE is in
    flight between hosts. *)

type breakdown = {
  b_spans : int;  (** finished spans aggregated *)
  b_e2e : Nkutil.Histogram.t;  (** end-to-end latency (seconds) *)
  b_stages : (string * Nkutil.Histogram.t) list;
      (** per-stage per-span summed durations, taxonomy order first, then
          alphabetical; "ring" counts its explicit device-ring segments
          plus every otherwise-unclaimed instant of the span *)
}

val breakdown : t -> breakdown

val to_catapult : t -> string
(** Chrome trace-event (catapult) JSON of all finished spans, loadable in
    [chrome://tracing] / Perfetto. All values derive from virtual time, so
    the output is byte-identical across same-seed runs. *)

(** {1 Cycle profiler} *)

val enable_profiler : t -> Sim.Engine.t -> unit
(** Install the {!Sim.Engine.set_cycle_hook} so every [Cpu.exec]/[charge]
    is attributed to the innermost open {!frame}, or — when no frame is
    open — to the component parsed from the core name under the
    ["(unframed)"] stage. *)

val profiling : t -> bool

val frame : t -> component:string -> stage:string -> (unit -> 'a) -> 'a
(** [frame t ~component ~stage f] runs [f] with the attribution frame
    pushed; identity when the profiler is off. Cycles are charged at
    [Cpu.exec] call time, so wrapping the dispatch call attributes them
    correctly even though the continuation runs later. *)

type cell = { p_comp : string; p_stage : string; p_cycles : float }

val profile_table : t -> cell list
(** Self-cycles per (component, stage), hottest first; deterministic. *)

val total_cycles : t -> float

val to_collapsed : t -> string
(** flamegraph.pl-compatible collapsed-stack dump
    ("component;stage cycles" per line), key-sorted. *)
