let to_csv traces =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "ag_id,minute,rps\n";
  List.iter
    (fun (t : Traffic.t) ->
      Array.iteri
        (fun minute rate ->
          Buffer.add_string buf
            (Printf.sprintf "%d,%d,%.3f\n" t.Traffic.ag_id minute rate))
        t.Traffic.rates)
    traces;
  Buffer.contents buf

let of_csv text =
  let lines = String.split_on_char '\n' text in
  (* ag_id -> (minute, rate) list, accumulated *)
  let table : (int, (int * float) list ref) Hashtbl.t = Hashtbl.create 16 in
  let parse_error = ref None in
  List.iteri
    (fun lineno line ->
      let line = String.trim line in
      if line <> "" && lineno > 0 && !parse_error = None then
        match String.split_on_char ',' line with
        | [ ag; minute; rps ] -> (
            match (int_of_string_opt ag, int_of_string_opt minute, float_of_string_opt rps)
            with
            | Some ag, Some minute, Some rps when minute >= 0 && rps >= 0.0 ->
                let cell =
                  match Hashtbl.find_opt table ag with
                  | Some l -> l
                  | None ->
                      let l = ref [] in
                      Hashtbl.replace table ag l;
                      l
                in
                cell := (minute, rps) :: !cell
            | _ ->
                parse_error :=
                  Some (Printf.sprintf "line %d: bad fields %S" (lineno + 1) line))
        | _ -> parse_error := Some (Printf.sprintf "line %d: expected 3 columns" (lineno + 1)))
    lines;
  match !parse_error with
  | Some e -> Error e
  | None ->
      let traces =
        (* Folding in ascending ag_id order makes the result order-stable
           without a post-sort. *)
        Nkutil.Det_tbl.fold ~cmp:Int.compare
          (fun ag_id cell acc ->
            let minutes = List.fold_left (fun m (i, _) -> Int.max m i) 0 !cell in
            let rates = Array.make (minutes + 1) 0.0 in
            List.iter (fun (i, r) -> rates.(i) <- r) !cell;
            let peak = Array.fold_left Float.max 0.0 rates in
            let mean = Nkutil.Stats.mean rates in
            { Traffic.ag_id; rates; peak; mean } :: acc)
          table []
        |> List.rev
      in
      Ok traces

let save ~path traces =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_string oc (to_csv traces))

let load ~path =
  match open_in path with
  | exception Sys_error e -> Error e
  | ic ->
      Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
          let n = in_channel_length ic in
          Ok (really_input_string ic n))
      |> Result.map of_csv
      |> Result.join
