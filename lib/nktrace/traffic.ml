type t = { ag_id : int; rates : float array; peak : float; mean : float }

type params = {
  minutes : int;
  base_rps : float;
  diurnal_amplitude : float;
  noise_sigma : float;
  spike_probability : float;
  spike_magnitude : float;
}

let default_params =
  {
    minutes = 60;
    base_rps = 800.0;
    diurnal_amplitude = 0.5;
    noise_sigma = 0.6;
    spike_probability = 0.05;
    spike_magnitude = 12.0;
  }

let finish ~ag_id rates =
  let peak = Array.fold_left Float.max 0.0 rates in
  let mean = Nkutil.Stats.mean rates in
  { ag_id; rates; peak; mean }

let generate ~rng ?(params = default_params) ~ag_id () =
  let phase = Nkutil.Rng.float_range rng 0.0 (2.0 *. Float.pi) in
  let scale = Nkutil.Rng.lognormal rng ~mu:0.0 ~sigma:0.5 in
  let rates =
    Array.init params.minutes (fun m ->
        let tod = 2.0 *. Float.pi *. float_of_int m /. 1440.0 in
        let diurnal = 1.0 +. (params.diurnal_amplitude *. sin (tod +. phase)) in
        let noise = Nkutil.Rng.lognormal rng ~mu:0.0 ~sigma:params.noise_sigma in
        let spike =
          if Nkutil.Rng.float rng < params.spike_probability then
            params.spike_magnitude *. Nkutil.Rng.float_range rng 0.5 1.5
          else 0.0
        in
        Float.max 1.0 (params.base_rps *. scale *. ((diurnal *. noise) +. spike)))
  in
  finish ~ag_id rates

let generate_fleet ~seed ?params ~n () =
  let master = Nkutil.Rng.create ~seed in
  List.init n (fun ag_id -> generate ~rng:(Nkutil.Rng.split master) ?params ~ag_id ())

let rate_at t seconds =
  let n = Array.length t.rates in
  if n = 0 then 0.0
  else begin
    let pos = seconds /. 60.0 in
    let i = int_of_float pos in
    if pos <= 0.0 then t.rates.(0)
    else if i >= n - 1 then t.rates.(n - 1)
    else begin
      let frac = pos -. float_of_int i in
      (t.rates.(i) *. (1.0 -. frac)) +. (t.rates.(i + 1) *. frac)
    end
  end

let peak_to_mean t = if t.mean = 0.0 then 0.0 else t.peak /. t.mean

let top_k_by_utilization ts k =
  let sorted = List.sort (fun a b -> Float.compare b.mean a.mean) ts in
  List.filteri (fun i _ -> i < k) sorted

let aggregate = function
  | [] -> [||]
  | first :: _ as ts ->
      let n = Array.length first.rates in
      let out = Array.make n 0.0 in
      List.iter
        (fun t -> Array.iteri (fun i r -> if i < n then out.(i) <- out.(i) +. r) t.rates)
        ts;
      out
