(* Deterministic iteration over Hashtbl.

   [Hashtbl.iter]/[Hashtbl.fold] visit buckets in an order that depends on
   the table's history (and, if randomization is on, the process seed), so
   any observable effect of the visit order is a reproducibility bug. These
   wrappers snapshot the bindings and sort them by key before visiting;
   nklint rule D2 rejects bare [Hashtbl.iter]/[Hashtbl.fold] in favour of
   them (see DESIGN.md §10). *)

let pair cmp_a cmp_b (a1, b1) (a2, b2) =
  let c = cmp_a a1 a2 in
  if c <> 0 then c else cmp_b b1 b2

let triple cmp_a cmp_b cmp_c (a1, b1, c1) (a2, b2, c2) =
  let c = cmp_a a1 a2 in
  if c <> 0 then c
  else
    let c = cmp_b b1 b2 in
    if c <> 0 then c else cmp_c c1 c2

let bindings ~cmp tbl =
  (* nklint: ordered-ok — the snapshot is sorted before anyone sees it. *)
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (k1, _) (k2, _) -> cmp k1 k2)

let keys ~cmp tbl = List.map fst (bindings ~cmp tbl)

let iter ~cmp f tbl = List.iter (fun (k, v) -> f k v) (bindings ~cmp tbl)

let fold ~cmp f tbl init =
  List.fold_left (fun acc (k, v) -> f k v acc) init (bindings ~cmp tbl)
