(** Deterministic (key-sorted) iteration over [Hashtbl].

    [Hashtbl.iter]/[Hashtbl.fold] visit entries in bucket order, which
    depends on insertion/removal history — any observable effect of that
    order is hidden nondeterminism. These wrappers snapshot the bindings,
    sort them with a caller-supplied key comparator and visit in ascending
    key order. nklint rule D2 enforces their use (or an explicit
    [(* nklint: ordered-ok *)] waiver) at every iteration site.

    Cost: O(n) snapshot + O(n log n) sort per call — fine for control-plane
    and reporting paths, which is where whole-table iteration happens. *)

val pair : ('a -> 'a -> int) -> ('b -> 'b -> int) -> 'a * 'b -> 'a * 'b -> int
(** Lexicographic comparator on pairs, for composite keys. *)

val triple :
  ('a -> 'a -> int) ->
  ('b -> 'b -> int) ->
  ('c -> 'c -> int) ->
  'a * 'b * 'c ->
  'a * 'b * 'c ->
  int

val bindings : cmp:('k -> 'k -> int) -> ('k, 'v) Hashtbl.t -> ('k * 'v) list
(** All bindings sorted by key (ascending). With duplicate bindings per key
    (from [Hashtbl.add]), the most recent one sorts first. *)

val keys : cmp:('k -> 'k -> int) -> ('k, 'v) Hashtbl.t -> 'k list

val iter : cmp:('k -> 'k -> int) -> ('k -> 'v -> unit) -> ('k, 'v) Hashtbl.t -> unit

val fold :
  cmp:('k -> 'k -> int) -> ('k -> 'v -> 'acc -> 'acc) -> ('k, 'v) Hashtbl.t -> 'acc -> 'acc
(** Folds in ascending key order (left fold). *)
