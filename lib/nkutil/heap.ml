type 'a t = {
  leq : 'a -> 'a -> bool;
  dummy : 'a;
  mutable data : 'a array;
  mutable size : int;
}

let create ?(capacity = 256) ~dummy ~leq () =
  { leq; dummy; data = Array.make (max capacity 1) dummy; size = 0 }

let length t = t.size

let is_empty t = t.size = 0

let grow t =
  let data = Array.make (2 * Array.length t.data) t.dummy in
  Array.blit t.data 0 data 0 t.size;
  t.data <- data

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if not (t.leq t.data.(parent) t.data.(i)) then begin
      let tmp = t.data.(parent) in
      t.data.(parent) <- t.data.(i);
      t.data.(i) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = if l < t.size && not (t.leq t.data.(i) t.data.(l)) then l else i in
  let smallest =
    if r < t.size && not (t.leq t.data.(smallest) t.data.(r)) then r else smallest
  in
  if smallest <> i then begin
    let tmp = t.data.(smallest) in
    t.data.(smallest) <- t.data.(i);
    t.data.(i) <- tmp;
    sift_down t smallest
  end

let add t x =
  if t.size = Array.length t.data then grow t;
  t.data.(t.size) <- x;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let pop_min t =
  if t.size = 0 then None
  else begin
    let min = t.data.(0) in
    t.size <- t.size - 1;
    t.data.(0) <- t.data.(t.size);
    t.data.(t.size) <- t.dummy;
    (* release for GC *)
    if t.size > 0 then sift_down t 0;
    Some min
  end
