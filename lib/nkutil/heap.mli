(** Binary min-heap with a user-supplied total order.

    Used as the priority queue of the discrete-event engine: millions of
    [add]/[pop_min] operations per simulated second, so the implementation is
    an array-backed sift-up/sift-down heap with amortized O(log n) per
    operation and no allocation beyond array growth. *)

type 'a t

val create : ?capacity:int -> dummy:'a -> leq:('a -> 'a -> bool) -> unit -> 'a t
(** [create ~dummy ~leq ()] is an empty heap ordered by [leq]
    (less-or-equal). [capacity] pre-sizes the backing array (default 256).
    [dummy] fills unused slots: it keeps popped elements reachable-free for
    the GC and — unlike the [Obj.magic 0] it replaced — is sound for every
    element type, including floats (whose arrays use the unboxed
    flat-float-array representation that an immediate-0 slot would
    corrupt). *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val add : 'a t -> 'a -> unit

val min_elt : 'a t -> 'a option
(** [min_elt t] is the smallest element without removing it. *)

val pop_min : 'a t -> 'a option
(** [pop_min t] removes and returns the smallest element. *)

val clear : 'a t -> unit

val to_list : 'a t -> 'a list
(** [to_list t] is all elements in unspecified order (for debugging/tests). *)
