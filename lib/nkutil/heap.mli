(** Binary min-heap with a user-supplied total order.

    General-purpose utility (array-backed sift-up/sift-down, amortized
    O(log n) per operation, no allocation beyond array growth). The
    discrete-event engine no longer uses it: its priority queue is a
    hierarchical timing wheel over a monomorphic event heap internal to
    [Sim.Engine], reached only through [Sim.Engine.Timer] handles. The
    surface here is deliberately small — callers wanting ordered event
    dispatch should schedule through the engine instead of reaching for a
    raw heap. *)

type 'a t

val create : ?capacity:int -> dummy:'a -> leq:('a -> 'a -> bool) -> unit -> 'a t
(** [create ~dummy ~leq ()] is an empty heap ordered by [leq]
    (less-or-equal). [capacity] pre-sizes the backing array (default 256).
    [dummy] fills unused slots: it keeps popped elements reachable-free for
    the GC and — unlike the [Obj.magic 0] it replaced — is sound for every
    element type, including floats (whose arrays use the unboxed
    flat-float-array representation that an immediate-0 slot would
    corrupt). *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val add : 'a t -> 'a -> unit

val pop_min : 'a t -> 'a option
(** [pop_min t] removes and returns the smallest element. *)
