(* Values are scaled to integer "ticks" (nanoseconds for seconds input) and
   bucketed log-linearly: the first [b] ticks get their own bucket, then each
   doubling of magnitude gets [b/2] linear buckets, giving a bounded relative
   error of 2/b. *)

let scale = 1e9

type t = {
  sub : int; (* sub-buckets per magnitude; power of two *)
  sub_bits : int;
  max_ticks : int;
  counts : int array;
  mutable total : int;
  mutable vmin : float;
  mutable vmax : float;
  mutable mean_acc : float; (* Welford running mean *)
  mutable m2 : float; (* Welford running sum of squared deviations *)
}

let msb_position n =
  (* position of most significant set bit; n > 0 *)
  let rec loop n p = if n = 1 then p else loop (n lsr 1) (p + 1) in
  loop n 0

let index_of t n =
  if n < t.sub then n
  else begin
    let k = msb_position n in
    let m = k - t.sub_bits + 1 in
    let half = t.sub / 2 in
    let s = n lsr m in
    (half * (m + 1)) + (s - half)
  end

let upper_of_index t i =
  let half = t.sub / 2 in
  if i < t.sub then float_of_int i /. scale
  else begin
    let m = (i / half) - 1 in
    let s = (i mod half) + half in
    float_of_int (((s + 1) lsl m) - 1) /. scale
  end

let create ?(sub_buckets = 32) ?(max_value = 1e6) () =
  if sub_buckets < 2 || sub_buckets land (sub_buckets - 1) <> 0 then
    invalid_arg "Histogram.create: sub_buckets must be a power of two >= 2";
  let max_ticks = int_of_float (max_value *. scale) in
  let sub_bits = msb_position sub_buckets in
  let probe =
    { sub = sub_buckets; sub_bits; max_ticks; counts = [||]; total = 0; vmin = infinity;
      vmax = neg_infinity; mean_acc = 0.0; m2 = 0.0 }
  in
  let nbuckets = index_of probe max_ticks + 1 in
  { probe with counts = Array.make nbuckets 0 }

let record_n t v n =
  if n > 0 then begin
    let v = if v < 0.0 then 0.0 else v in
    let ticks = Int.min t.max_ticks (int_of_float (v *. scale)) in
    let i = index_of t ticks in
    t.counts.(i) <- t.counts.(i) + n;
    if v < t.vmin then t.vmin <- v;
    if v > t.vmax then t.vmax <- v;
    for _ = 1 to n do
      t.total <- t.total + 1;
      let delta = v -. t.mean_acc in
      t.mean_acc <- t.mean_acc +. (delta /. float_of_int t.total);
      t.m2 <- t.m2 +. (delta *. (v -. t.mean_acc))
    done
  end

let record t v = record_n t v 1

let count t = t.total

let min t = if t.total = 0 then 0.0 else t.vmin

let max t = if t.total = 0 then 0.0 else t.vmax

let mean t = if t.total = 0 then 0.0 else t.mean_acc

let stddev t = if t.total = 0 then 0.0 else sqrt (t.m2 /. float_of_int t.total)

let percentile t p =
  if t.total = 0 then 0.0
  else begin
    let p = Float.min 100.0 (Float.max 0.0 p) in
    let target = int_of_float (ceil (p /. 100.0 *. float_of_int t.total)) in
    let target = Int.max 1 target in
    let rec loop i seen =
      if i >= Array.length t.counts then max t
      else begin
        let seen = seen + t.counts.(i) in
        if seen >= target then upper_of_index t i else loop (i + 1) seen
      end
    in
    loop 0 0
  end

let median t = percentile t 50.0

let merge_into ~src ~dst =
  if Array.length src.counts <> Array.length dst.counts || src.sub <> dst.sub then
    invalid_arg "Histogram.merge_into: incompatible histograms";
  Array.iteri (fun i c -> dst.counts.(i) <- dst.counts.(i) + c) src.counts;
  (* Combine the exact moments with Chan's parallel update. *)
  if src.total > 0 then begin
    let na = float_of_int dst.total and nb = float_of_int src.total in
    let delta = src.mean_acc -. dst.mean_acc in
    let n = na +. nb in
    dst.mean_acc <- dst.mean_acc +. (delta *. nb /. n);
    dst.m2 <- dst.m2 +. src.m2 +. (delta *. delta *. na *. nb /. n);
    dst.total <- dst.total + src.total;
    if src.vmin < dst.vmin then dst.vmin <- src.vmin;
    if src.vmax > dst.vmax then dst.vmax <- src.vmax
  end

let copy t =
  { t with counts = Array.copy t.counts }

let diff ~newer ~older =
  if
    Array.length newer.counts <> Array.length older.counts
    || newer.sub <> older.sub
  then invalid_arg "Histogram.diff: incompatible histograms";
  let counts =
    Array.init (Array.length newer.counts) (fun i ->
        let d = newer.counts.(i) - older.counts.(i) in
        if d < 0 then invalid_arg "Histogram.diff: newer is not a superset"
        else d)
  in
  let total = newer.total - older.total in
  if total < 0 then invalid_arg "Histogram.diff: newer is not a superset";
  (* Chan's update run in reverse recovers the exact mean and (up to float
     rounding) the m2 of the window; min/max are only known to bucket
     resolution, so use the edges of the outermost non-empty buckets. *)
  let mean_acc =
    if total = 0 then 0.0
    else
      ((float_of_int newer.total *. newer.mean_acc)
      -. (float_of_int older.total *. older.mean_acc))
      /. float_of_int total
  in
  let m2 =
    if total = 0 then 0.0
    else begin
      let na = float_of_int older.total and nb = float_of_int total in
      let delta = older.mean_acc -. mean_acc in
      Float.max 0.0
        (newer.m2 -. older.m2 -. (delta *. delta *. na *. nb /. (na +. nb)))
    end
  in
  let vmin = ref infinity and vmax = ref neg_infinity in
  Array.iteri
    (fun i c ->
      if c > 0 then begin
        let edge = upper_of_index newer i in
        if !vmin = infinity then vmin := edge;
        vmax := edge
      end)
    counts;
  {
    sub = newer.sub;
    sub_bits = newer.sub_bits;
    max_ticks = newer.max_ticks;
    counts;
    total;
    vmin = !vmin;
    vmax = !vmax;
    mean_acc;
    m2;
  }

let clear t =
  Array.fill t.counts 0 (Array.length t.counts) 0;
  t.total <- 0;
  t.vmin <- infinity;
  t.vmax <- neg_infinity;
  t.mean_acc <- 0.0;
  t.m2 <- 0.0
