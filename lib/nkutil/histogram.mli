(** Log-linear latency histogram (HDR-histogram style).

    Values are bucketed with bounded relative error so that we can record
    millions of request latencies cheaply and then report the
    min/mean/stddev/median/max rows of the paper's Table 5 plus arbitrary
    percentiles. Values are non-negative floats (we use seconds). *)

type t

val create : ?sub_buckets:int -> ?max_value:float -> unit -> t
(** [create ()] covers [\[0, max_value\]] (default 1e6) with
    [sub_buckets] linear buckets per power-of-two magnitude (default 32,
    i.e. ~3% relative error). *)

val record : t -> float -> unit
(** [record t v] adds observation [v]; negative values count as 0, values
    above [max_value] clamp to it. *)

val record_n : t -> float -> int -> unit

val count : t -> int

val min : t -> float
(** Smallest recorded value (exact, not bucketed). 0 when empty. *)

val max : t -> float
(** Largest recorded value (exact, not bucketed). 0 when empty. *)

val mean : t -> float
(** Exact running mean of recorded values. *)

val stddev : t -> float
(** Exact running standard deviation (population). *)

val percentile : t -> float -> float
(** [percentile t p] for [p] in [\[0, 100\]]: upper edge of the bucket
    containing that quantile. 0 when empty. *)

val median : t -> float

val merge_into : src:t -> dst:t -> unit
(** [merge_into ~src ~dst] adds [src]'s bucket counts into [dst]. The two
    histograms must have been created with the same parameters. *)

val copy : t -> t
(** Independent snapshot of [t]; further records on either side do not
    affect the other. *)

val diff : newer:t -> older:t -> t
(** [diff ~newer ~older] is the histogram of observations recorded between
    the [older] and [newer] cumulative snapshots of the same histogram
    (bucketwise count subtraction). Count, percentiles and mean are exact
    (percentiles to bucket resolution, as always); min/max degrade to the
    edges of the outermost non-empty buckets. Raises [Invalid_argument] if
    the histograms are incompatible or [newer] does not dominate [older].
    This is what turns a cumulative latency histogram into a rolling SLO
    window. *)

val clear : t -> unit
