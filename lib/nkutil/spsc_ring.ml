type 'a t = {
  mask : int;
  slots : 'a option array;
  head : int Atomic.t; (* next index to pop; advanced by consumer *)
  tail : int Atomic.t; (* next index to push; advanced by producer *)
}

let rec next_pow2 n acc = if acc >= n then acc else next_pow2 n (acc * 2)

let create ~capacity =
  if capacity < 1 then invalid_arg "Spsc_ring.create: capacity must be >= 1";
  let cap = next_pow2 capacity 1 in
  { mask = cap - 1; slots = Array.make cap None; head = Atomic.make 0; tail = Atomic.make 0 }

let capacity t = t.mask + 1

let length t = Atomic.get t.tail - Atomic.get t.head

let is_empty t = length t = 0

let is_full t = length t > t.mask

let push t x =
  let tail = Atomic.get t.tail in
  let head = Atomic.get t.head in
  if tail - head > t.mask then false
  else begin
    t.slots.(tail land t.mask) <- Some x;
    Atomic.set t.tail (tail + 1);
    true
  end

let pop t =
  let head = Atomic.get t.head in
  let tail = Atomic.get t.tail in
  if tail = head then None
  else begin
    let i = head land t.mask in
    let x = t.slots.(i) in
    t.slots.(i) <- None;
    Atomic.set t.head (head + 1);
    x
  end

let peek t =
  let head = Atomic.get t.head in
  let tail = Atomic.get t.tail in
  if tail = head then None else t.slots.(head land t.mask)

let push_batch t xs =
  let n = Array.length xs in
  let rec loop i = if i < n && push t xs.(i) then loop (i + 1) else i in
  loop 0

let pop_batch t ~max =
  let rec loop i acc =
    if i >= max then List.rev acc
    else
      match pop t with None -> List.rev acc | Some x -> loop (i + 1) (x :: acc)
  in
  loop 0 []

let pop_slice t buf ~pos ~max =
  let rec loop i =
    if i >= max then i
    else
      match pop t with
      | None -> i
      | Some x ->
          buf.(pos + i) <- x;
          loop (i + 1)
  in
  loop 0

let pop_into t buf =
  let max = Array.length buf in
  let rec loop i =
    if i >= max then i
    else
      match pop t with
      | None -> i
      | Some x ->
          buf.(i) <- x;
          loop (i + 1)
  in
  loop 0
