(** Single-producer single-consumer lockless ring buffer.

    This is the NQE transport of the paper (§3, §4.3): each queue of a queue
    set is shared memory between exactly one producer (GuestLib or ServiceLib)
    and one consumer (CoreEngine) or vice versa, so it needs no locks — only
    a head and a tail index with release/acquire ordering. Capacity is rounded
    up to a power of two so index wrap is a mask.

    The implementation is safe for one producer domain and one consumer
    domain under OCaml 5 ([Atomic] indices); the simulator uses it
    single-threaded, and the Fig 11 microbenchmark drives it for real. *)

type 'a t

val create : capacity:int -> 'a t
(** [create ~capacity] is an empty ring holding at most [capacity] elements
    (rounded up to a power of two). Raises [Invalid_argument] if
    [capacity < 1]. *)

val capacity : 'a t -> int

val length : 'a t -> int
(** [length t] is the number of queued elements (approximate under
    concurrency, exact single-threaded). *)

val is_empty : 'a t -> bool

val is_full : 'a t -> bool

val push : 'a t -> 'a -> bool
(** [push t x] enqueues [x]; [false] if the ring is full. Producer side. *)

val pop : 'a t -> 'a option
(** [pop t] dequeues the oldest element. Consumer side. *)

val peek : 'a t -> 'a option

val push_batch : 'a t -> 'a array -> int
(** [push_batch t xs] enqueues a prefix of [xs]; returns how many were
    accepted. *)

val pop_batch : 'a t -> max:int -> 'a list
(** [pop_batch t ~max] dequeues up to [max] elements, oldest first. *)

val pop_into : 'a t -> 'a array -> int
(** [pop_into t buf] dequeues up to [Array.length buf] elements into [buf]
    starting at index 0 and returns the count. Allocation-free fast path for
    the CoreEngine switching loop. *)

val pop_slice : 'a t -> 'a array -> pos:int -> max:int -> int
(** [pop_slice t buf ~pos ~max] dequeues up to [max] elements into
    [buf.(pos) ...] and returns the count. Lets a poll loop drain several
    rings into one reusable scratch buffer without lists. *)
