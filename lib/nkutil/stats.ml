let sum a = Array.fold_left ( +. ) 0.0 a

let mean a = if Array.length a = 0 then 0.0 else sum a /. float_of_int (Array.length a)

let stddev a =
  let n = Array.length a in
  if n = 0 then 0.0
  else begin
    let m = mean a in
    let acc = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 a in
    sqrt (acc /. float_of_int n)
  end

let percentile a p =
  let n = Array.length a in
  if n = 0 then 0.0
  else begin
    let sorted = Array.copy a in
    Array.sort Float.compare sorted;
    let p = Float.min 100.0 (Float.max 0.0 p) in
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
    sorted.(Int.max 0 (Int.min (n - 1) (rank - 1)))
  end

let median a = percentile a 50.0

let minimum a = Array.fold_left Float.min infinity a

let maximum a = Array.fold_left Float.max neg_infinity a

let coefficient_of_variation a =
  let m = mean a in
  if m = 0.0 then 0.0 else stddev a /. m

let jain_fairness a =
  let n = Array.length a in
  if n = 0 then 1.0
  else begin
    let s = sum a in
    let sq = Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 a in
    if sq = 0.0 then 1.0 else s *. s /. (float_of_int n *. sq)
  end
