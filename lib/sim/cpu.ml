type t = {
  engine : Engine.t;
  name : string;
  freq : float; (* Hz *)
  mutable free_at : float;
  mutable busy_cycles : float;
  mutable accounting_since : float;
}

let create engine ?(freq_ghz = 2.3) ~name () =
  { engine; name; freq = freq_ghz *. 1e9; free_at = 0.0; busy_cycles = 0.0;
    accounting_since = Engine.now engine }

let name t = t.name
let engine t = t.engine
let freq_hz t = t.freq

let exec t ~cycles k =
  let cycles = Float.max 0.0 cycles in
  let now = Engine.now t.engine in
  let start = Float.max now t.free_at in
  let finish = start +. (cycles /. t.freq) in
  t.free_at <- finish;
  t.busy_cycles <- t.busy_cycles +. cycles;
  Engine.emit_cycles t.engine ~core:t.name cycles;
  ignore (Engine.schedule_at t.engine ~at:finish k)

let charge t ~cycles =
  let cycles = Float.max 0.0 cycles in
  let now = Engine.now t.engine in
  let start = Float.max now t.free_at in
  t.free_at <- start +. (cycles /. t.freq);
  t.busy_cycles <- t.busy_cycles +. cycles;
  Engine.emit_cycles t.engine ~core:t.name cycles

let free_at t = t.free_at

let backlog t = Float.max 0.0 (t.free_at -. Engine.now t.engine)

let busy_cycles t = t.busy_cycles

let busy_seconds t = t.busy_cycles /. t.freq

let utilization t ~since =
  let elapsed = Engine.now t.engine -. since in
  if elapsed <= 0.0 then 0.0 else Float.min 1.0 (busy_seconds t /. elapsed)

let reset_accounting t =
  t.busy_cycles <- 0.0;
  t.accounting_since <- Engine.now t.engine

module Set = struct
  type core = t

  type nonrec t = { cores : core array }

  let create engine ?freq_ghz ~name ~n () =
    if n < 1 then invalid_arg "Cpu.Set.create: need at least one core";
    let make i = create engine ?freq_ghz ~name:(Printf.sprintf "%s.%d" name i) () in
    { cores = Array.init n make }

  let of_array cores =
    if Array.length cores = 0 then invalid_arg "Cpu.Set.of_array: empty";
    { cores }

  let cores t = t.cores
  let n t = Array.length t.cores
  let core t i = t.cores.(i)

  let pick t ~hash =
    let n = Array.length t.cores in
    t.cores.((hash land max_int) mod n)

  let total_busy_cycles t = Array.fold_left (fun acc c -> acc +. c.busy_cycles) 0.0 t.cores

  let least_loaded t =
    let best = ref t.cores.(0) in
    Array.iter (fun c -> if c.free_at < !best.free_at then best := c) t.cores;
    !best

  let reset_accounting t = Array.iter reset_accounting t.cores
end
