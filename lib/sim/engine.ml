(* Discrete-event engine: virtual clock + pending-event set.

   The pending set is a 3-level hierarchical timing wheel, not a binary
   heap: the datapath schedules millions of dense short-delay events
   (per-NQE CPU slices, ring wakeups, link hops) while long-lived TCP
   timers (RTO, persist) are armed and lazily cancelled far in the future.
   A single heap holds every lazily-cancelled timer until its expiry, so
   with hundreds of thousands pending each pop pays O(log n) comparisons;
   the wheel gives O(1) placement and lets a cancelled event be dropped
   the moment its bucket is touched, without ordering work.

   Determinism contract (unchanged from the heap engine): events execute
   in (time, insertion-seq) order. The wheel maps times to slots
   monotonically (slot = floor(time / tick)), slots are visited in
   ascending order, and every event of the slot under the cursor is merged
   into a small "near" heap ordered by exactly the old comparator — so the
   pop order is byte-identical to the heap engine's (the oracle test in
   test_sim.ml replays a 100K-event schedule against a reference heap). *)

type event = {
  time : float;
  seq : int;
  f : unit -> unit;
  mutable cancelled : bool;
  mutable next : event; (* intrusive bucket link; [nil] terminates *)
}

let rec nil = { time = 0.0; seq = -1; f = (fun () -> ()); cancelled = true; next = nil }

module Timer = struct
  type t = event

  let cancel ev = ev.cancelled <- true

  let is_pending ev = not ev.cancelled
end

(* The old comparator, verbatim: earlier time first, insertion order on
   ties. Used by the near heap (current slot) and the overflow heap. *)
let leq a b = a.time < b.time || (a.time = b.time && a.seq <= b.seq)

(* Specialized event min-heap: monomorphic (direct [leq] calls, no closure
   indirection) and sentinel-based ([nil] instead of [option], so the
   engine's one-pop-per-event loop allocates nothing). The generic
   [Nkutil.Heap] stays the utility for everything that is not this loop. *)
module Eheap = struct
  type h = { mutable data : event array; mutable size : int }

  let create capacity = { data = Array.make capacity nil; size = 0 }

  let length h = h.size

  let is_empty h = h.size = 0

  let rec sift_up h i =
    if i > 0 then begin
      let parent = (i - 1) / 2 in
      if not (leq h.data.(parent) h.data.(i)) then begin
        let tmp = h.data.(parent) in
        h.data.(parent) <- h.data.(i);
        h.data.(i) <- tmp;
        sift_up h parent
      end
    end

  let rec sift_down h i =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let smallest = if l < h.size && not (leq h.data.(i) h.data.(l)) then l else i in
    let smallest =
      if r < h.size && not (leq h.data.(smallest) h.data.(r)) then r else smallest
    in
    if smallest <> i then begin
      let tmp = h.data.(smallest) in
      h.data.(smallest) <- h.data.(i);
      h.data.(i) <- tmp;
      sift_down h smallest
    end

  let add h x =
    if h.size = Array.length h.data then begin
      let data = Array.make (2 * Array.length h.data) nil in
      Array.blit h.data 0 data 0 h.size;
      h.data <- data
    end;
    h.data.(h.size) <- x;
    h.size <- h.size + 1;
    sift_up h (h.size - 1)

  (* [nil] when empty. *)
  let min_elt h = if h.size = 0 then nil else h.data.(0)

  let pop_min h =
    if h.size = 0 then nil
    else begin
      let min = h.data.(0) in
      h.size <- h.size - 1;
      h.data.(0) <- h.data.(h.size);
      h.data.(h.size) <- nil;
      (* release for GC *)
      if h.size > 0 then sift_down h 0;
      min
    end
end

(* Wheel geometry: 1024 slots per level, 3 levels, tick = 2^-23 s ≈ 119 ns.
   Level 0 spans ≈ 122 µs, level 1 ≈ 125 ms, level 2 ≈ 128 s of absolute
   slot space; anything beyond the cursor's level-2 block (or non-finite)
   waits in the overflow heap and is pulled in when the cursor crosses
   into its block. Slot indices are aligned blocks, not sliding windows:
   an event lands in the deepest level whose current block contains its
   slot, and cascades down as the cursor crosses block boundaries. *)
let bits = 10

let slots = 1 lsl bits

let mask = slots - 1

(* 2^23 slots per second: multiplying by a power of two is exact, so equal
   times always map to equal slots and the mapping is monotone. *)
let inv_tick = 8388608.0

(* Per-level occupancy bitmaps, 32 bits per word: finding the next
   occupied slot at or after an index is a word scan, so advancing the
   cursor across empty stretches costs O(slots/32) loads, not O(slots). *)
module Bitmap = struct
  type t = int array

  let create () = Array.make (slots / 32) 0

  let set bm i = bm.(i lsr 5) <- bm.(i lsr 5) lor (1 lsl (i land 31))

  let clear bm i = bm.(i lsr 5) <- bm.(i lsr 5) land lnot (1 lsl (i land 31))

  (* First set index >= [i], or -1. *)
  let next bm i =
    if i >= slots then -1
    else begin
      let nwords = Array.length bm in
      let w = ref (i lsr 5) in
      let m = ref (bm.(!w) land lnot ((1 lsl (i land 31)) - 1)) in
      let res = ref (-1) in
      while !res < 0 && !w < nwords do
        if !m <> 0 then begin
          let rec lowest b acc = if b land 1 = 1 then acc else lowest (b lsr 1) (acc + 1) in
          res := (!w lsl 5) lor lowest !m 0
        end
        else begin
          incr w;
          if !w < nwords then m := bm.(!w)
        end
      done;
      !res
    end
end

type t = {
  mutable clock : float;
  mutable next_seq : int;
  mutable executed : int;
  (* Undelivered events, including cancelled ones not yet discarded. *)
  mutable size : int;
  (* Absolute slot index of the wheel cursor: every event in a wheel
     bucket has slot > cur; events with slot <= cur live in [near]. *)
  mutable cur : int;
  near : Eheap.h;
  l0 : event array;
  l0_bm : Bitmap.t;
  l1 : event array;
  l1_bm : Bitmap.t;
  l2 : event array;
  l2_bm : Bitmap.t;
  overflow : Eheap.h;
  mutable cycle_hook : (string -> float -> unit) option;
}

let create () =
  {
    clock = 0.0;
    next_seq = 0;
    executed = 0;
    size = 0;
    cur = 0;
    near = Eheap.create 64;
    l0 = Array.make slots nil;
    l0_bm = Bitmap.create ();
    l1 = Array.make slots nil;
    l1_bm = Bitmap.create ();
    l2 = Array.make slots nil;
    l2_bm = Bitmap.create ();
    overflow = Eheap.create 256;
    cycle_hook = None;
  }

let set_cycle_hook t hook = t.cycle_hook <- hook

let emit_cycles t ~core cycles =
  match t.cycle_hook with None -> () | Some hook -> hook core cycles

let now t = t.clock

let slot_of time = int_of_float (time *. inv_tick)

let put level bm idx ev =
  ev.next <- level.(idx);
  level.(idx) <- ev;
  Bitmap.set bm idx

(* Route an event to the structure that owns its slot relative to the
   cursor. Does not touch [size] (cascades re-place without re-counting). *)
let place t ev =
  if not (Float.is_finite ev.time) then Eheap.add t.overflow ev
  else begin
    let s = slot_of ev.time in
    if s <= t.cur then Eheap.add t.near ev
    else if s lsr bits = t.cur lsr bits then put t.l0 t.l0_bm (s land mask) ev
    else if s lsr (2 * bits) = t.cur lsr (2 * bits) then
      put t.l1 t.l1_bm ((s lsr bits) land mask) ev
    else if s lsr (3 * bits) = t.cur lsr (3 * bits) then
      put t.l2 t.l2_bm ((s lsr (2 * bits)) land mask) ev
    else Eheap.add t.overflow ev
  end

let schedule_at t ~at f =
  let at = Float.max at t.clock in
  let ev = { time = at; seq = t.next_seq; f; cancelled = false; next = nil } in
  t.next_seq <- t.next_seq + 1;
  t.size <- t.size + 1;
  place t ev;
  ev

let schedule t ~delay f = schedule_at t ~at:(t.clock +. Float.max 0.0 delay) f

(* Empty bucket [idx] of [level], re-placing live events (now one level
   down, or in [near]) and dropping cancelled ones on the spot. *)
let cascade t level bm idx =
  Bitmap.clear bm idx;
  let ev = ref level.(idx) in
  level.(idx) <- nil;
  while !ev != nil do
    let e = !ev in
    ev := e.next;
    e.next <- nil;
    if e.cancelled then t.size <- t.size - 1 else place t e
  done

(* Move the cursor to the next occupied slot and spill it into [near].
   Loops because a bucket may contain only cancelled events. *)
let rec advance t =
  if t.size > Eheap.length t.near then begin
    let i = Bitmap.next t.l0_bm (t.cur land mask) in
    if i >= 0 then begin
      t.cur <- (t.cur land lnot mask) lor i;
      cascade t t.l0 t.l0_bm i;
      if Eheap.is_empty t.near then advance t
    end
    else begin
      let j = Bitmap.next t.l1_bm (((t.cur lsr bits) land mask) + 1) in
      if j >= 0 then begin
        t.cur <- ((t.cur lsr (2 * bits)) lsl (2 * bits)) lor (j lsl bits);
        cascade t t.l1 t.l1_bm j;
        advance t
      end
      else begin
        let k = Bitmap.next t.l2_bm (((t.cur lsr (2 * bits)) land mask) + 1) in
        if k >= 0 then begin
          t.cur <- ((t.cur lsr (3 * bits)) lsl (3 * bits)) lor (k lsl (2 * bits));
          cascade t t.l2 t.l2_bm k;
          advance t
        end
        else begin
          let ev = Eheap.min_elt t.overflow in
          if ev == nil then
            (* Accounting says events remain but no structure holds any;
               unreachable, but fail closed rather than spin. *)
            t.size <- Eheap.length t.near
          else if Float.is_finite ev.time then begin
            t.cur <- Int.max t.cur (slot_of ev.time);
            (* Pull everything belonging to the cursor's new level-2
               block out of overflow. *)
            let block_end =
              float_of_int ((t.cur lsr (3 * bits)) + 1) *. float_of_int (1 lsl (3 * bits))
            in
            let rec pull () =
              let e = Eheap.min_elt t.overflow in
              if e != nil && e.time *. inv_tick < block_end then begin
                ignore (Eheap.pop_min t.overflow);
                if e.cancelled then t.size <- t.size - 1 else place t e;
                pull ()
              end
            in
            pull ();
            advance t
          end
          else begin
            (* Only non-finite times remain: order among them is by
               insertion seq, which the near heap's comparator gives. *)
            let rec drain () =
              let e = Eheap.pop_min t.overflow in
              if e != nil then begin
                if e.cancelled then t.size <- t.size - 1 else Eheap.add t.near e;
                drain ()
              end
            in
            drain ()
          end
        end
      end
    end
  end

(* Earliest live event ([nil] if none), discarding cancelled ones as they
   surface. *)
let rec peek_next t =
  let ev = Eheap.min_elt t.near in
  if ev != nil then
    if ev.cancelled then begin
      ignore (Eheap.pop_min t.near);
      t.size <- t.size - 1;
      peek_next t
    end
    else ev
  else if t.size = 0 then nil
  else begin
    advance t;
    if Eheap.is_empty t.near && t.size = 0 then nil else peek_next t
  end

(* Peek once per event, not once for the horizon check and again to pop. *)
let exec t ev =
  ignore (Eheap.pop_min t.near);
  t.size <- t.size - 1;
  t.clock <- ev.time;
  t.executed <- t.executed + 1;
  ev.f ()

let step t =
  let ev = peek_next t in
  if ev == nil then false
  else begin
    exec t ev;
    true
  end

let run ?until t =
  (match until with
  | None ->
      let rec go () =
        let ev = peek_next t in
        if ev != nil then begin
          exec t ev;
          go ()
        end
      in
      go ()
  | Some limit ->
      let rec go () =
        let ev = peek_next t in
        if ev != nil && ev.time <= limit then begin
          exec t ev;
          go ()
        end
      in
      go ());
  match until with
  | Some limit when t.clock < limit ->
      (* Advance the clock to the horizon even if the queue drained early. *)
      t.clock <- limit
  | _ -> ()

let events_executed t = t.executed

let pending t = t.size
