type event = {
  time : float;
  seq : int;
  f : unit -> unit;
  mutable cancelled : bool;
}

type handle = event

type t = {
  heap : event Nkutil.Heap.t;
  mutable clock : float;
  mutable next_seq : int;
  mutable executed : int;
  mutable cycle_hook : (string -> float -> unit) option;
}

let leq a b = a.time < b.time || (a.time = b.time && a.seq <= b.seq)

let dummy_event = { time = 0.0; seq = -1; f = (fun () -> ()); cancelled = true }

let create () =
  {
    heap = Nkutil.Heap.create ~capacity:1024 ~dummy:dummy_event ~leq ();
    clock = 0.0;
    next_seq = 0;
    executed = 0;
    cycle_hook = None;
  }

let set_cycle_hook t hook = t.cycle_hook <- hook

let emit_cycles t ~core cycles =
  match t.cycle_hook with None -> () | Some hook -> hook core cycles

let now t = t.clock

let schedule_at t ~at f =
  let at = Float.max at t.clock in
  let ev = { time = at; seq = t.next_seq; f; cancelled = false } in
  t.next_seq <- t.next_seq + 1;
  Nkutil.Heap.add t.heap ev;
  ev

let schedule t ~delay f = schedule_at t ~at:(t.clock +. Float.max 0.0 delay) f

let cancel ev = ev.cancelled <- true

let is_pending ev = not ev.cancelled

let step t =
  match Nkutil.Heap.pop_min t.heap with
  | None -> false
  | Some ev ->
      if not ev.cancelled then begin
        t.clock <- ev.time;
        t.executed <- t.executed + 1;
        ev.f ()
      end;
      true

let run ?until t =
  let continue () =
    match until with
    | None -> true
    | Some limit -> (
        match Nkutil.Heap.min_elt t.heap with
        | None -> false
        | Some ev -> ev.time <= limit)
  in
  while continue () && step t do
    ()
  done;
  match until with
  | Some limit when t.clock < limit ->
      (* Advance the clock to the horizon even if the queue drained early. *)
      if Nkutil.Heap.is_empty t.heap then t.clock <- limit
      else t.clock <- Float.max t.clock limit
  | _ -> ()

let events_executed t = t.executed

let pending t = Nkutil.Heap.length t.heap
