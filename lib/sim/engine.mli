(** Discrete-event simulation engine.

    Single-threaded event loop with a virtual clock. All simulated
    components (vCPUs, NICs, links, TCP timers, CoreEngine polling) schedule
    closures at absolute virtual times; [run] executes them in
    (time, insertion-order) sequence, so runs are fully deterministic.

    The pending-event set is a hierarchical timing wheel (O(1) placement
    for the datapath's dense short-delay events; lazily-cancelled timers
    are discarded at bucket boundaries instead of paying heap pops), but
    the execution order is exactly the former binary heap's — see the
    oracle test in test/test_sim.ml.

    This is the substitute for the paper's QEMU/KVM testbed: wall-clock
    behaviour of the real system maps to virtual-time behaviour here. *)

type t

(** Handles over scheduled events. [schedule]/[schedule_at] return a
    [Timer.t]; cancellation and liveness queries go through this module, so
    callers never see the engine's internal event representation. *)
module Timer : sig
  type t

  val cancel : t -> unit
  (** [cancel h] prevents the event from running; cancelling a fired or
      already-cancelled event is a no-op. Cancellation is O(1): the event
      is dropped when its wheel bucket is next touched. *)

  val is_pending : t -> bool
  (** [is_pending h] is false once the event fired or was cancelled. *)
end

val create : unit -> t

val now : t -> float
(** Current virtual time in seconds. *)

val schedule : t -> delay:float -> (unit -> unit) -> Timer.t
(** [schedule t ~delay f] runs [f] at [now t +. delay]. Negative delays are
    clamped to 0 (the event still runs after currently-queued events at the
    same time). *)

val schedule_at : t -> at:float -> (unit -> unit) -> Timer.t
(** [schedule_at t ~at f] runs [f] at absolute time [at] (clamped to now). *)

val run : ?until:float -> t -> unit
(** [run t] processes events until the queue is empty, or until virtual time
    would exceed [until] when given (the clock then stops at [until]). *)

val step : t -> bool
(** [step t] executes the single next live event; [false] if none remain. *)

val events_executed : t -> int
(** Count of events executed so far (for performance reporting). *)

val pending : t -> int
(** Number of events currently queued (including cancelled ones not yet
    discarded). *)

val set_cycle_hook : t -> (string -> float -> unit) option -> unit
(** [set_cycle_hook t (Some f)] makes every [Cpu.exec]/[Cpu.charge] call
    [f core_name cycles] at charge time. Observation only — the hook must
    not schedule events or mutate simulation state; it exists for the
    Nkspan cycle profiler. [None] (the default) disables it. *)

val emit_cycles : t -> core:string -> float -> unit
(** Invoke the cycle hook, if any. Used by [Cpu]; not for components. *)
