type t = {
  engine : Sim.Engine.t;
  rate : float;
  delay : float;
  buffer : int;
  ecn_threshold : int option;
  mark_rng : Nkutil.Rng.t;
  name : string;
  mutable receiver : (Segment.t -> unit) option;
  mutable busy_until : float;
  mutable queued : int;
  mutable bytes_sent : int;
  mutable segments_sent : int;
  mutable drops : int;
  mutable marks : int;
  mutable transmit_hook : (Segment.t -> unit) option;
  mutable loss : (Nkutil.Rng.t * float) option;
  (* In-flight transmissions whose buffer space is not yet released: a
     circular FIFO of (tx_done, wire_bytes) pairs in unboxed parallel
     arrays. Serialization makes tx_done monotone in enqueue order, so
     releasing due entries is a head scan. Keeping this ledger instead of
     scheduling a release event per segment halves the engine events the
     network path generates — occupancy is only ever read here (and by
     the stats accessors), so releasing lazily at read time observes the
     exact same values the eager events produced. *)
  mutable fly_time : float array;
  mutable fly_wire : int array;
  mutable fly_head : int;
  mutable fly_len : int;
}

let create engine ~rate_bps ~delay ?(buffer_bytes = 16 * 1024 * 1024) ?ecn_threshold_bytes
    ?(name = "link") () =
  if rate_bps <= 0.0 then invalid_arg "Link.create: rate must be > 0";
  { engine; rate = rate_bps; delay; buffer = buffer_bytes;
    ecn_threshold = ecn_threshold_bytes; mark_rng = Nkutil.Rng.create ~seed:0x51ED;
    name; receiver = None; busy_until = 0.0; queued = 0;
    bytes_sent = 0; segments_sent = 0; drops = 0; marks = 0; transmit_hook = None;
    loss = None;
    fly_time = Array.make 64 0.0; fly_wire = Array.make 64 0; fly_head = 0; fly_len = 0 }

let set_random_loss t ~rng ~rate = t.loss <- Some (rng, rate)

let set_receiver t f = t.receiver <- Some f

let on_transmit t f = t.transmit_hook <- Some f

(* Release the buffer space of every transmission completed by [now]. *)
let release t now =
  let cap = Array.length t.fly_time in
  while t.fly_len > 0 && t.fly_time.(t.fly_head) <= now do
    let wire = t.fly_wire.(t.fly_head) in
    t.queued <- t.queued - wire;
    t.bytes_sent <- t.bytes_sent + wire;
    t.segments_sent <- t.segments_sent + 1;
    t.fly_head <- (t.fly_head + 1) mod cap;
    t.fly_len <- t.fly_len - 1
  done

let fly_push t tx_done wire =
  let cap = Array.length t.fly_time in
  if t.fly_len = cap then begin
    let time' = Array.make (2 * cap) 0.0 and wire' = Array.make (2 * cap) 0 in
    for i = 0 to t.fly_len - 1 do
      time'.(i) <- t.fly_time.((t.fly_head + i) mod cap);
      wire'.(i) <- t.fly_wire.((t.fly_head + i) mod cap)
    done;
    t.fly_time <- time';
    t.fly_wire <- wire';
    t.fly_head <- 0
  end;
  let cap = Array.length t.fly_time in
  let i = (t.fly_head + t.fly_len) mod cap in
  t.fly_time.(i) <- tx_done;
  t.fly_wire.(i) <- wire;
  t.fly_len <- t.fly_len + 1

let send t seg =
  let receiver =
    match t.receiver with
    | Some f -> f
    | None -> invalid_arg (t.name ^ ": no receiver attached")
  in
  let now = Sim.Engine.now t.engine in
  release t now;
  let lossy_drop =
    match t.loss with
    | Some (rng, rate) -> Nkutil.Rng.float rng < rate
    | None -> false
  in
  (* A GSO segment is many wire packets: when the buffer cannot hold all of
     them, the fitting prefix is still enqueued and only the tail packets
     drop — which is what lets the receiver emit duplicate ACKs and the
     sender fast-retransmit instead of stalling into an RTO. *)
  let seg =
    if lossy_drop then seg
    else begin
      let space = t.buffer - t.queued in
      let full = Segment.wire_bytes seg in
      if full <= space || seg.Segment.len = 0 then seg
      else begin
        let per_packet = Segment.header_bytes in
        let fit_packets = space / (per_packet + Int.min seg.Segment.len Segment.mss) in
        let fit_payload = Int.min seg.Segment.len (fit_packets * Segment.mss) in
        if fit_payload <= 0 then seg
        else
          Segment.make ~flow:seg.Segment.flow ~seq:seg.Segment.seq ~ack:seg.Segment.ack
            ~syn:seg.Segment.syn ~ack_flag:seg.Segment.ack_flag ~fin:false
            ~rst:seg.Segment.rst ~window:seg.Segment.window ~len:fit_payload
            ~ts:seg.Segment.ts ~ts_echo:seg.Segment.ts_echo ~ece:seg.Segment.ece ()
      end
    end
  in
  let wire = Segment.wire_bytes seg in
  if lossy_drop || t.queued + wire > t.buffer then begin
    t.drops <- t.drops + 1;
    false
  end
  else begin
    (* RED-style probabilistic marking: ramp from 0 at the threshold to
       certain marking at twice the threshold, so no single flow captures
       the unmarked band. *)
    (match t.ecn_threshold with
    | Some threshold when t.queued > threshold ->
        let p =
          Float.min 1.0
            (float_of_int (t.queued - threshold) /. float_of_int (Int.max 1 threshold))
        in
        if Nkutil.Rng.float t.mark_rng < p then begin
          seg.Segment.ce <- true;
          t.marks <- t.marks + 1
        end
    | Some _ | None -> ());
    t.queued <- t.queued + wire;
    let start = Float.max now t.busy_until in
    let tx_done = start +. (float_of_int wire *. 8.0 /. t.rate) in
    t.busy_until <- tx_done;
    (match t.transmit_hook with
    | None -> fly_push t tx_done wire
    | Some _ ->
        (* A hook needs the exact completion instant and the segment, so
           fall back to an eager completion event. *)
        ignore
          (Sim.Engine.schedule_at t.engine ~at:tx_done (fun () ->
               t.queued <- t.queued - wire;
               t.bytes_sent <- t.bytes_sent + wire;
               t.segments_sent <- t.segments_sent + 1;
               match t.transmit_hook with None -> () | Some f -> f seg)));
    ignore (Sim.Engine.schedule_at t.engine ~at:(tx_done +. t.delay) (fun () -> receiver seg));
    true
  end

let rate_bps t = t.rate

let queued_bytes t =
  release t (Sim.Engine.now t.engine);
  t.queued

let bytes_sent t =
  release t (Sim.Engine.now t.engine);
  t.bytes_sent

let segments_sent t =
  release t (Sim.Engine.now t.engine);
  t.segments_sent

let drops t = t.drops

let ecn_marks t = t.marks
