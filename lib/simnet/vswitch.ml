module Endpoint_table = Hashtbl.Make (struct
  type t = Addr.t

  let equal = Addr.equal
  let hash = Addr.hash
end)

module Flow_table = Hashtbl.Make (struct
  type t = Addr.Flow.t

  let equal = Addr.Flow.equal
  let hash = Addr.Flow.hash
end)

type t = {
  engine : Sim.Engine.t;
  local_delay : float;
  nic : Nic.t;
  by_ip : (Addr.ip, Segment.t -> unit) Hashtbl.t;
  by_endpoint : (Segment.t -> unit) Endpoint_table.t;
  by_flow : (Segment.t -> unit) Flow_table.t;
  mutable unclaimed : int;
}

let input t (seg : Segment.t) =
  match Flow_table.find_opt t.by_flow seg.Segment.flow with
  | Some f -> f seg
  | None -> (
      let dst = seg.Segment.flow.dst in
      match Endpoint_table.find_opt t.by_endpoint dst with
      | Some f -> f seg
      | None -> (
          match Hashtbl.find_opt t.by_ip dst.ip with
          | Some f -> f seg
          | None -> t.unclaimed <- t.unclaimed + 1))

let create engine ?(local_delay = 5e-6) ~nic () =
  let t =
    { engine; local_delay; nic; by_ip = Hashtbl.create 16;
      by_endpoint = Endpoint_table.create 16; by_flow = Flow_table.create 256;
      unclaimed = 0 }
  in
  Nic.set_rx_handler nic (input t);
  t

let register_ip t ip f = Hashtbl.replace t.by_ip ip f

let unregister_ip t ip = Hashtbl.remove t.by_ip ip

let register_endpoint t addr f = Endpoint_table.replace t.by_endpoint addr f

let unregister_endpoint t addr = Endpoint_table.remove t.by_endpoint addr

let register_flow t flow f = Flow_table.replace t.by_flow flow f

let unregister_flow t flow = Flow_table.remove t.by_flow flow

let owns_ip t ip = Hashtbl.mem t.by_ip ip

let output t (seg : Segment.t) =
  if owns_ip t seg.Segment.flow.dst.ip
     || Endpoint_table.mem t.by_endpoint seg.Segment.flow.dst
  then ignore (Sim.Engine.schedule t.engine ~delay:t.local_delay (fun () -> input t seg))
  else ignore (Nic.transmit t.nic seg)

let unclaimed t = t.unclaimed
