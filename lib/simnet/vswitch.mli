(** Per-host virtual switch.

    Demultiplexes ingress segments to the network stacks on the host:
    an exact ⟨ip, port⟩ table first (one VM's listeners may be served by
    different NSM stacks, paper §7.5), then a per-IP default. Egress from
    local stacks short-circuits to colocated destinations without touching
    the physical NIC, which is what both the baseline colocated-VM test and
    the shared-memory NSM rely on (paper §6.4). *)

type t

val create : Sim.Engine.t -> ?local_delay:float -> nic:Nic.t -> unit -> t
(** [local_delay] is the intra-host delivery latency (default 5 us). The
    vswitch installs itself as [nic]'s RX handler. *)

val register_ip : t -> Addr.ip -> (Segment.t -> unit) -> unit
(** Route all segments for [ip] to a stack's input function. *)

val unregister_ip : t -> Addr.ip -> unit

val register_endpoint : t -> Addr.t -> (Segment.t -> unit) -> unit
(** Exact ⟨ip, port⟩ override (wins over [register_ip]). *)

val unregister_endpoint : t -> Addr.t -> unit

val register_flow : t -> Addr.Flow.t -> (Segment.t -> unit) -> unit
(** Exact 4-tuple override in the segment's inbound orientation (wins over
    both tables). Pins an established connection to its stack so its
    ⟨ip, port⟩ endpoint can be re-registered elsewhere — what keeps accepted
    connections alive across a live listener handover between NSMs. *)

val unregister_flow : t -> Addr.Flow.t -> unit

val owns_ip : t -> Addr.ip -> bool

val output : t -> Segment.t -> unit
(** Egress from a local stack: local destinations are delivered after
    [local_delay]; everything else goes to the physical NIC. *)

val input : t -> Segment.t -> unit
(** Ingress demux (also used by the local path). *)

val unclaimed : t -> int
(** Segments that matched no table entry (dropped). *)
