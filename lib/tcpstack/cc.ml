type t = {
  name : string;
  cwnd : unit -> int;
  on_ack : acked:int -> rtt:float -> now:float -> unit;
  on_loss : now:float -> unit;
  on_timeout : now:float -> unit;
  on_ecn_ack : acked:int -> now:float -> unit;
  release : unit -> unit;
  export : unit -> (string * float) list;
  import : (string * float) list -> unit;
}

let import_field kv key ~default =
  match List.assoc_opt key kv with Some v -> v | None -> default

type factory = unit -> t

let max_cwnd = 16 * 1024 * 1024

let initial_window ~mss = 10 * mss
