(** Congestion-control interface.

    A controller is a record of closures over private state, giving each
    connection an independent instance while allowing implementations such
    as the VM-level controller ({!Cc_vm}) to share state across flows —
    exactly the flexibility the paper exercises by swapping NSMs. All window
    quantities are in bytes. *)

type t = {
  name : string;
  cwnd : unit -> int;  (** current congestion window (bytes) *)
  on_ack : acked:int -> rtt:float -> now:float -> unit;
      (** new data acknowledged; [rtt] < 0 when no sample is available *)
  on_loss : now:float -> unit;  (** fast-retransmit loss signal *)
  on_timeout : now:float -> unit;  (** RTO expiry *)
  on_ecn_ack : acked:int -> now:float -> unit;
      (** acknowledgement carrying an ECN echo *)
  release : unit -> unit;  (** the flow is closing; drop shared-state refs *)
  export : unit -> (string * float) list;
      (** serialize mutable state as key/value pairs (live NSM migration) *)
  import : (string * float) list -> unit;
      (** restore state previously produced by [export] on a fresh instance
          of the same controller; unknown keys are ignored *)
}

type factory = unit -> t
(** One controller per connection. *)

val max_cwnd : int
(** Global cap on any congestion window (16 MB). *)

val initial_window : mss:int -> int
(** IW10 (RFC 6928): 10 MSS. *)

val import_field : (string * float) list -> string -> default:float -> float
(** [import_field kv key ~default] looks up [key] in an exported state list,
    falling back to [default] — the shared helper for [import]
    implementations. *)
