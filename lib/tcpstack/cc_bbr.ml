type phase = Startup | Drain | Probe

type state = {
  mss : int;
  mutable cwnd : int;
  mutable phase : phase;
  mutable btl_bw : float; (* bytes/s, windowed max *)
  mutable bw_stamp : float; (* when btl_bw was last raised *)
  mutable rt_prop : float; (* seconds, windowed min *)
  mutable rt_stamp : float;
  mutable delivered : float; (* bytes acked in the current sample window *)
  mutable window_start : float;
  mutable full_bw : float; (* startup plateau detection *)
  mutable full_bw_rounds : int;
  mutable probe_phase_start : float;
  mutable probe_high : bool;
}

let bw_window = 2.0 (* forget stale bandwidth samples after this long *)

let rtprop_window = 10.0

let probe_period = 0.05 (* alternate 1.25x / 0.75x probing at this cadence *)

let create ~mss () =
  let s =
    {
      mss;
      cwnd = Cc.initial_window ~mss;
      phase = Startup;
      btl_bw = 0.0;
      bw_stamp = 0.0;
      rt_prop = infinity;
      rt_stamp = 0.0;
      delivered = 0.0;
      window_start = 0.0;
      full_bw = 0.0;
      full_bw_rounds = 0;
      probe_phase_start = 0.0;
      probe_high = true;
    }
  in
  let bdp () =
    if s.btl_bw <= 0.0 || s.rt_prop = infinity then float_of_int (Cc.initial_window ~mss)
    else s.btl_bw *. s.rt_prop
  in
  let set_cwnd gain =
    let target = gain *. bdp () in
    s.cwnd <- Int.max (4 * s.mss) (Int.min Cc.max_cwnd (int_of_float target))
  in
  let on_ack ~acked ~rtt ~now =
    if rtt > 0.0 && (rtt <= s.rt_prop || now -. s.rt_stamp > rtprop_window) then begin
      s.rt_prop <- rtt;
      s.rt_stamp <- now
    end;
    s.delivered <- s.delivered +. float_of_int acked;
    let span = now -. s.window_start in
    if span >= Float.max 0.001 s.rt_prop then begin
      (* one delivery-rate sample per round trip *)
      let rate = s.delivered /. span in
      if rate > s.btl_bw || now -. s.bw_stamp > bw_window then begin
        s.btl_bw <- rate;
        s.bw_stamp <- now
      end;
      s.delivered <- 0.0;
      s.window_start <- now;
      match s.phase with
      | Startup ->
          (* exponential growth until bandwidth stops improving *)
          s.cwnd <- Int.min Cc.max_cwnd (s.cwnd * 2);
          if s.btl_bw < s.full_bw *. 1.25 then begin
            s.full_bw_rounds <- s.full_bw_rounds + 1;
            if s.full_bw_rounds >= 3 then begin
              s.phase <- Drain;
              set_cwnd 1.0
            end
          end
          else begin
            s.full_bw <- s.btl_bw;
            s.full_bw_rounds <- 0
          end
      | Drain ->
          s.phase <- Probe;
          s.probe_phase_start <- now;
          set_cwnd 1.0
      | Probe ->
          if now -. s.probe_phase_start > probe_period then begin
            s.probe_high <- not s.probe_high;
            s.probe_phase_start <- now
          end;
          set_cwnd (if s.probe_high then 1.25 else 0.9)
    end
  in
  {
    Cc.name = "bbr";
    cwnd = (fun () -> s.cwnd);
    on_ack;
    (* BBR is not loss-driven: retain the model on fast retransmit, only a
       timeout resets towards a conservative window. *)
    on_loss = (fun ~now:_ -> ());
    on_timeout =
      (fun ~now:_ ->
        s.btl_bw <- s.btl_bw /. 2.0;
        set_cwnd 1.0);
    on_ecn_ack = (fun ~acked:_ ~now:_ -> () (* BBRv1 ignores ECN *));
    release = (fun () -> ());
    export =
      (fun () ->
        [
          ("cwnd", float_of_int s.cwnd);
          ("phase", (match s.phase with Startup -> 0.0 | Drain -> 1.0 | Probe -> 2.0));
          ("btl_bw", s.btl_bw);
          ("bw_stamp", s.bw_stamp);
          ("rt_prop", s.rt_prop);
          ("rt_stamp", s.rt_stamp);
          ("delivered", s.delivered);
          ("window_start", s.window_start);
          ("full_bw", s.full_bw);
          ("full_bw_rounds", float_of_int s.full_bw_rounds);
          ("probe_phase_start", s.probe_phase_start);
          ("probe_high", if s.probe_high then 1.0 else 0.0);
        ]);
    import =
      (fun kv ->
        s.cwnd <- int_of_float (Cc.import_field kv "cwnd" ~default:(float_of_int s.cwnd));
        (s.phase <-
           (match int_of_float (Cc.import_field kv "phase" ~default:0.0) with
           | 1 -> Drain
           | 2 -> Probe
           | _ -> Startup));
        s.btl_bw <- Cc.import_field kv "btl_bw" ~default:s.btl_bw;
        s.bw_stamp <- Cc.import_field kv "bw_stamp" ~default:s.bw_stamp;
        s.rt_prop <- Cc.import_field kv "rt_prop" ~default:s.rt_prop;
        s.rt_stamp <- Cc.import_field kv "rt_stamp" ~default:s.rt_stamp;
        s.delivered <- Cc.import_field kv "delivered" ~default:s.delivered;
        s.window_start <- Cc.import_field kv "window_start" ~default:s.window_start;
        s.full_bw <- Cc.import_field kv "full_bw" ~default:s.full_bw;
        s.full_bw_rounds <-
          int_of_float
            (Cc.import_field kv "full_bw_rounds" ~default:(float_of_int s.full_bw_rounds));
        s.probe_phase_start <-
          Cc.import_field kv "probe_phase_start" ~default:s.probe_phase_start;
        s.probe_high <- Cc.import_field kv "probe_high" ~default:1.0 > 0.5);
  }

let factory ~mss () = create ~mss ()
