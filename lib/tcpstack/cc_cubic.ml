(* RFC 8312 constants. *)
let c = 0.4 (* cubic scaling, MSS/s^3 *)
let beta = 0.7 (* multiplicative decrease *)

type state = {
  mss : int;
  mutable cwnd : int;
  mutable ssthresh : int;
  mutable w_max : float; (* window (in MSS) at last reduction *)
  mutable epoch_start : float; (* < 0: no epoch in progress *)
  mutable k : float; (* time to regrow to w_max *)
  mutable w_est : float; (* TCP-friendly Reno estimate, in MSS *)
  mutable acked_in_epoch : float;
  mutable last_ecn : float;
  mutable min_rtt : float; (* HyStart baseline *)
}

let create ~mss () =
  let s =
    { mss; cwnd = Cc.initial_window ~mss; ssthresh = Cc.max_cwnd; w_max = 0.0;
      epoch_start = -1.0; k = 0.0; w_est = 0.0; acked_in_epoch = 0.0; last_ecn = -1.0;
      min_rtt = infinity }
  in
  let mssf = float_of_int mss in
  let on_ack ~acked ~rtt ~now =
    if rtt > 0.0 then s.min_rtt <- Float.min s.min_rtt rtt;
    if s.cwnd < s.ssthresh then begin
      (* HyStart (Linux CUBIC): leave slow start on delay increase, before
         the burst overflows a queue. *)
      let eta = Float.max (s.min_rtt /. 8.0) 0.004 (* Linux HYSTART_DELAY_MIN *) in
      if
        rtt > 0.0 && s.min_rtt < infinity
        && rtt > s.min_rtt +. eta
        && s.cwnd > 16 * s.mss
      then s.ssthresh <- s.cwnd
      else s.cwnd <- Int.min Cc.max_cwnd (s.cwnd + Int.min acked (2 * s.mss))
    end
    else begin
      let cwnd_mss = float_of_int s.cwnd /. mssf in
      if s.epoch_start < 0.0 then begin
        s.epoch_start <- now;
        s.acked_in_epoch <- 0.0;
        if cwnd_mss < s.w_max then
          s.k <- Float.cbrt ((s.w_max -. cwnd_mss) /. c)
        else s.k <- 0.0;
        if s.w_max <= 0.0 then s.w_max <- cwnd_mss;
        s.w_est <- cwnd_mss
      end;
      let t = now -. s.epoch_start in
      let target = s.w_max +. (c *. ((t -. s.k) ** 3.0)) in
      (* TCP-friendly region: emulate Reno's growth over the epoch. *)
      s.acked_in_epoch <- s.acked_in_epoch +. (float_of_int acked /. mssf);
      let rtt = if rtt > 0.0 then rtt else 0.001 in
      let w_est =
        s.w_est +. (3.0 *. (1.0 -. beta) /. (1.0 +. beta) *. (t /. rtt))
      in
      let target = Float.max target w_est in
      if target > cwnd_mss then begin
        let incr = (target -. cwnd_mss) /. cwnd_mss *. float_of_int acked in
        s.cwnd <- Int.min Cc.max_cwnd (s.cwnd + Int.max 1 (int_of_float incr))
      end
    end
  in
  let reduce () =
    let cwnd_mss = float_of_int s.cwnd /. mssf in
    (* Fast convergence: release share faster when below the previous peak. *)
    s.w_max <- (if cwnd_mss < s.w_max then cwnd_mss *. (1.0 +. beta) /. 2.0 else cwnd_mss);
    s.ssthresh <- Int.max (int_of_float (float_of_int s.cwnd *. beta)) (2 * s.mss);
    s.cwnd <- s.ssthresh;
    s.epoch_start <- -1.0
  in
  let on_timeout ~now:_ =
    reduce ();
    s.cwnd <- s.mss
  in
  {
    Cc.name = "cubic";
    cwnd = (fun () -> s.cwnd);
    on_ack;
    on_loss = (fun ~now:_ -> reduce ());
    on_timeout;
    on_ecn_ack =
      (fun ~acked:_ ~now ->
        if now -. s.last_ecn > 0.002 then begin
          s.last_ecn <- now;
          reduce ()
        end);
    release = (fun () -> ());
    export =
      (fun () ->
        [
          ("cwnd", float_of_int s.cwnd);
          ("ssthresh", float_of_int s.ssthresh);
          ("w_max", s.w_max);
          ("epoch_start", s.epoch_start);
          ("k", s.k);
          ("w_est", s.w_est);
          ("acked_in_epoch", s.acked_in_epoch);
          ("last_ecn", s.last_ecn);
          ("min_rtt", s.min_rtt);
        ]);
    import =
      (fun kv ->
        s.cwnd <- int_of_float (Cc.import_field kv "cwnd" ~default:(float_of_int s.cwnd));
        s.ssthresh <-
          int_of_float (Cc.import_field kv "ssthresh" ~default:(float_of_int s.ssthresh));
        s.w_max <- Cc.import_field kv "w_max" ~default:s.w_max;
        s.epoch_start <- Cc.import_field kv "epoch_start" ~default:s.epoch_start;
        s.k <- Cc.import_field kv "k" ~default:s.k;
        s.w_est <- Cc.import_field kv "w_est" ~default:s.w_est;
        s.acked_in_epoch <- Cc.import_field kv "acked_in_epoch" ~default:s.acked_in_epoch;
        s.last_ecn <- Cc.import_field kv "last_ecn" ~default:s.last_ecn;
        s.min_rtt <- Cc.import_field kv "min_rtt" ~default:s.min_rtt);
  }

let factory ~mss () = create ~mss ()
