let g = 1.0 /. 16.0 (* alpha gain, per the DCTCP paper *)

type state = {
  mss : int;
  mutable cwnd : int;
  mutable ssthresh : int;
  mutable alpha : float;
  mutable acked_window : int; (* bytes acked in the current observation window *)
  mutable marked_window : int; (* of which carried ECN echoes *)
  mutable window_reduced : bool; (* at most one reduction per window *)
}

let create ~mss () =
  let s =
    { mss; cwnd = Cc.initial_window ~mss; ssthresh = Cc.max_cwnd; alpha = 1.0;
      acked_window = 0; marked_window = 0; window_reduced = false }
  in
  let end_window () =
    if s.acked_window > 0 then begin
      let f = float_of_int s.marked_window /. float_of_int s.acked_window in
      s.alpha <- ((1.0 -. g) *. s.alpha) +. (g *. f);
      if s.marked_window > 0 && not s.window_reduced then begin
        let reduced = float_of_int s.cwnd *. (1.0 -. (s.alpha /. 2.0)) in
        s.cwnd <- Int.max (int_of_float reduced) (2 * s.mss);
        s.ssthresh <- s.cwnd
      end;
      s.acked_window <- 0;
      s.marked_window <- 0;
      s.window_reduced <- false
    end
  in
  let grow acked =
    if s.cwnd < s.ssthresh then
      s.cwnd <- Int.min Cc.max_cwnd (s.cwnd + Int.min acked (2 * s.mss))
    else begin
      let incr = Int.max 1 (s.mss * acked / Int.max s.cwnd 1) in
      s.cwnd <- Int.min Cc.max_cwnd (s.cwnd + incr)
    end
  in
  let account acked ~marked =
    s.acked_window <- s.acked_window + acked;
    if marked then s.marked_window <- s.marked_window + acked;
    if s.acked_window >= s.cwnd then end_window ()
  in
  let on_ack ~acked ~rtt:_ ~now:_ =
    account acked ~marked:false;
    grow acked
  in
  let on_ecn_ack ~acked ~now:_ =
    (* DCTCP keeps growing on marked ACKs; the per-window alpha-scaled
       reduction in [end_window] is the only brake. *)
    account acked ~marked:true;
    grow acked
  in
  let on_loss ~now:_ =
    s.ssthresh <- Int.max (s.cwnd / 2) (2 * s.mss);
    s.cwnd <- s.ssthresh
  in
  let on_timeout ~now:_ =
    s.ssthresh <- Int.max (s.cwnd / 2) (2 * s.mss);
    s.cwnd <- s.mss
  in
  {
    Cc.name = "dctcp";
    cwnd = (fun () -> s.cwnd);
    on_ack;
    on_loss;
    on_timeout;
    on_ecn_ack;
    release = (fun () -> ());
    export =
      (fun () ->
        [
          ("cwnd", float_of_int s.cwnd);
          ("ssthresh", float_of_int s.ssthresh);
          ("alpha", s.alpha);
          ("acked_window", float_of_int s.acked_window);
          ("marked_window", float_of_int s.marked_window);
          ("window_reduced", if s.window_reduced then 1.0 else 0.0);
        ]);
    import =
      (fun kv ->
        s.cwnd <- int_of_float (Cc.import_field kv "cwnd" ~default:(float_of_int s.cwnd));
        s.ssthresh <-
          int_of_float (Cc.import_field kv "ssthresh" ~default:(float_of_int s.ssthresh));
        s.alpha <- Cc.import_field kv "alpha" ~default:s.alpha;
        s.acked_window <-
          int_of_float
            (Cc.import_field kv "acked_window" ~default:(float_of_int s.acked_window));
        s.marked_window <-
          int_of_float
            (Cc.import_field kv "marked_window" ~default:(float_of_int s.marked_window));
        s.window_reduced <- Cc.import_field kv "window_reduced" ~default:0.0 > 0.5);
  }

let factory ~mss () = create ~mss ()
