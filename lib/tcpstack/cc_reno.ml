type state = {
  mss : int;
  mutable cwnd : int;
  mutable ssthresh : int;
  mutable last_ecn : float;
}

let create ~mss () =
  let s = { mss; cwnd = Cc.initial_window ~mss; ssthresh = Cc.max_cwnd; last_ecn = -1.0 } in
  let on_ack ~acked ~rtt:_ ~now:_ =
    if s.cwnd < s.ssthresh then
      (* ABC (RFC 3465, L=2): at most 2*SMSS per ACK, whatever it covers *)
      s.cwnd <- Int.min Cc.max_cwnd (s.cwnd + Int.min acked (2 * s.mss))
    else begin
      (* Congestion avoidance: one MSS per window's worth of ACKs. *)
      let incr = Int.max 1 (s.mss * acked / Int.max s.cwnd 1) in
      s.cwnd <- Int.min Cc.max_cwnd (s.cwnd + incr)
    end
  in
  let on_loss ~now:_ =
    s.ssthresh <- Int.max (s.cwnd / 2) (2 * s.mss);
    s.cwnd <- s.ssthresh
  in
  let on_timeout ~now:_ =
    s.ssthresh <- Int.max (s.cwnd / 2) (2 * s.mss);
    s.cwnd <- s.mss
  in
  {
    Cc.name = "reno";
    cwnd = (fun () -> s.cwnd);
    on_ack;
    on_loss;
    on_timeout;
    on_ecn_ack =
      (fun ~acked:_ ~now ->
        (* Classic ECN (RFC 3168): at most one reduction per round trip;
           approximate the RTT with a small fixed guard interval. *)
        if now -. s.last_ecn > 0.002 then begin
          s.last_ecn <- now;
          on_loss ~now
        end);
    release = (fun () -> ());
    export =
      (fun () ->
        [
          ("cwnd", float_of_int s.cwnd);
          ("ssthresh", float_of_int s.ssthresh);
          ("last_ecn", s.last_ecn);
        ]);
    import =
      (fun kv ->
        s.cwnd <- int_of_float (Cc.import_field kv "cwnd" ~default:(float_of_int s.cwnd));
        s.ssthresh <-
          int_of_float (Cc.import_field kv "ssthresh" ~default:(float_of_int s.ssthresh));
        s.last_ecn <- Cc.import_field kv "last_ecn" ~default:s.last_ecn);
  }

let factory ~mss () = create ~mss ()
