type group = {
  mss : int;
  mutable cwnd : int; (* shared window, bytes *)
  mutable ssthresh : int;
  (* Not exported: the destination group's flow count was already bumped by
     [factory] when the migrating flow attached. (* nkscope: volatile *) *)
  mutable n : int; (* active flows *)
  mutable last_ecn : float;
  (* DCTCP-style proportional ECN response over the shared window: a flat
     halving per mark would penalize the VM with more packets in flight
     (more mark events), breaking exactly the per-VM fairness this
     controller exists to provide. *)
  mutable acked_window : int;
  mutable marked_window : int;
  mutable alpha : float;
}

let create_group ~mss () =
  { mss; cwnd = Cc.initial_window ~mss; ssthresh = Cc.max_cwnd; n = 0; last_ecn = -1.0;
    acked_window = 0; marked_window = 0; alpha = 1.0 }

let shared_cwnd g = g.cwnd

let active_flows g = g.n

let factory g () =
  g.n <- g.n + 1;
  let released = ref false in
  let share () = Int.max g.mss (g.cwnd / Int.max 1 g.n) in
  let grow acked =
    if g.cwnd < g.ssthresh then
      g.cwnd <- Int.min Cc.max_cwnd (g.cwnd + Int.min acked (2 * g.mss))
    else begin
      let incr = Int.max 1 (g.mss * acked / Int.max g.cwnd 1) in
      g.cwnd <- Int.min Cc.max_cwnd (g.cwnd + incr)
    end
  in
  let floor () = Int.max (2 * g.mss) (g.mss * Int.max 1 g.n) in
  let reduce () =
    g.ssthresh <- Int.max (g.cwnd / 2) (floor ());
    g.cwnd <- g.ssthresh
  in
  let account acked ~marked =
    g.acked_window <- g.acked_window + acked;
    if marked then g.marked_window <- g.marked_window + acked;
    if g.acked_window >= g.cwnd then begin
      let f = float_of_int g.marked_window /. float_of_int (Int.max 1 g.acked_window) in
      g.alpha <- (0.9375 *. g.alpha) +. (0.0625 *. f);
      if g.marked_window > 0 then begin
        let reduced = float_of_int g.cwnd *. (1.0 -. (g.alpha /. 2.0)) in
        g.cwnd <- Int.max (int_of_float reduced) (floor ());
        g.ssthresh <- g.cwnd
      end;
      g.acked_window <- 0;
      g.marked_window <- 0
    end
  in
  let on_ack ~acked ~rtt:_ ~now:_ =
    account acked ~marked:false;
    grow acked
  in
  let release () =
    if not !released then begin
      released := true;
      g.n <- Int.max 0 (g.n - 1)
    end
  in
  {
    Cc.name = "vm-shared";
    cwnd = share;
    on_ack;
    on_loss = (fun ~now:_ -> reduce ());
    on_timeout =
      (fun ~now:_ ->
        g.ssthresh <- Int.max (g.cwnd / 2) (floor ());
        g.cwnd <- Int.max (floor ()) (g.cwnd / 2));
    on_ecn_ack =
      (fun ~acked ~now:_ ->
        account acked ~marked:true;
        grow acked);
    release;
    (* Export/import move the *shared* group state: when a flow migrates,
       the destination group inherits the source group's window estimate
       (the flow-count bump already happened in [factory]). *)
    export =
      (fun () ->
        [
          ("cwnd", float_of_int g.cwnd);
          ("ssthresh", float_of_int g.ssthresh);
          ("last_ecn", g.last_ecn);
          ("acked_window", float_of_int g.acked_window);
          ("marked_window", float_of_int g.marked_window);
          ("alpha", g.alpha);
        ]);
    import =
      (fun kv ->
        g.cwnd <- int_of_float (Cc.import_field kv "cwnd" ~default:(float_of_int g.cwnd));
        g.ssthresh <-
          int_of_float (Cc.import_field kv "ssthresh" ~default:(float_of_int g.ssthresh));
        g.last_ecn <- Cc.import_field kv "last_ecn" ~default:g.last_ecn;
        g.acked_window <-
          int_of_float
            (Cc.import_field kv "acked_window" ~default:(float_of_int g.acked_window));
        g.marked_window <-
          int_of_float
            (Cc.import_field kv "marked_window" ~default:(float_of_int g.marked_window));
        g.alpha <- Cc.import_field kv "alpha" ~default:g.alpha);
  }
