type state = {
  stack : Stack.t;
  socks : (Socket_api.sock, Stack.sock) Hashtbl.t;
  epolls : (Socket_api.epoll, Socket_api.sock Epoll_core.t) Hashtbl.t;
  memberships : (Socket_api.sock, Socket_api.epoll list ref) Hashtbl.t;
  mutable next_fd : int;
  mutable next_ep : int;
}

let on_sock_event st fd (_ev : Types.events) =
  match Hashtbl.find_opt st.memberships fd with
  | None -> ()
  | Some eps ->
      List.iter
        (fun epid ->
          match Hashtbl.find_opt st.epolls epid with
          | None -> ()
          | Some ep -> Epoll_core.notify ep fd)
        !eps

let register_fd st s =
  let fd = st.next_fd in
  st.next_fd <- st.next_fd + 1;
  Hashtbl.replace st.socks fd s;
  Stack.set_event_handler st.stack s (fun ev -> on_sock_event st fd ev);
  fd

let make stack =
  let st =
    { stack; socks = Hashtbl.create 64; epolls = Hashtbl.create 8;
      memberships = Hashtbl.create 64; next_fd = 3; next_ep = 1 }
  in
  let engine = Stack.engine stack in
  let find fd = Hashtbl.find_opt st.socks fd in
  let events_of fd =
    match find fd with None -> Types.no_events | Some s -> Stack.sock_events stack s
  in
  let core_of fd =
    match find fd with
    | Some s -> Stack.sock_core stack s
    | None -> Sim.Cpu.Set.core (Stack.cores stack) 0
  in
  let wake_cycles = (Stack.config stack).Stack.profile.Sim.Cost_profile.epoll_wake in
  let socket () = Ok (register_fd st (Stack.socket stack)) in
  let bind fd addr =
    match find fd with None -> Error Types.Einval | Some s -> Stack.bind stack s addr
  in
  let listen fd ~backlog =
    match find fd with None -> Error Types.Einval | Some s -> Stack.listen stack s ~backlog
  in
  let accept fd ~k =
    match find fd with
    | None -> k (Error Types.Einval)
    | Some s ->
        Stack.accept stack s ~k:(fun r ->
            match r with
            | Error e -> k (Error e)
            | Ok cs ->
                let cfd = register_fd st cs in
                let peer =
                  match Stack.peer_addr stack cs with
                  | Some a -> a
                  | None -> Addr.make 0 0
                in
                k (Ok (cfd, peer)))
  in
  let connect fd addr ~k =
    match find fd with None -> k (Error Types.Einval) | Some s -> Stack.connect stack s addr ~k
  in
  let send fd payload ~k =
    match find fd with None -> k (Error Types.Einval) | Some s -> Stack.send stack s payload ~k
  in
  let recv fd ~max ~mode ~k =
    match find fd with
    | None -> k (Error Types.Einval)
    | Some s -> Stack.recv stack s ~max ~mode ~k
  in
  let close fd =
    match find fd with
    | None -> ()
    | Some s ->
        Stack.close stack s;
        Hashtbl.remove st.socks fd;
        (match Hashtbl.find_opt st.memberships fd with
        | None -> ()
        | Some eps ->
            List.iter
              (fun epid ->
                match Hashtbl.find_opt st.epolls epid with
                | None -> ()
                | Some ep -> Epoll_core.del ep fd)
              !eps;
            Hashtbl.remove st.memberships fd)
  in
  let epoll_create () =
    let epid = st.next_ep in
    st.next_ep <- st.next_ep + 1;
    Hashtbl.replace st.epolls epid
      (Epoll_core.create ~engine ~cmp:Int.compare ~events_of ~core_of ~wake_cycles ());
    epid
  in
  let epoll_add epid fd ~mask =
    match Hashtbl.find_opt st.epolls epid with
    | None -> ()
    | Some ep ->
        Epoll_core.add ep fd ~mask;
        let eps =
          match Hashtbl.find_opt st.memberships fd with
          | Some l -> l
          | None ->
              let l = ref [] in
              Hashtbl.replace st.memberships fd l;
              l
        in
        if not (List.mem epid !eps) then eps := epid :: !eps
  in
  let epoll_del epid fd =
    match Hashtbl.find_opt st.epolls epid with
    | None -> ()
    | Some ep ->
        Epoll_core.del ep fd;
        (match Hashtbl.find_opt st.memberships fd with
        | None -> ()
        | Some eps -> eps := List.filter (fun e -> e <> epid) !eps)
  in
  let epoll_wait epid ~timeout ~k =
    match Hashtbl.find_opt st.epolls epid with
    | None -> k []
    | Some ep -> Epoll_core.wait ep ~timeout ~k
  in
  let local_addr fd = Option.bind (find fd) (Stack.local_addr stack) in
  let peer_addr fd = Option.bind (find fd) (Stack.peer_addr stack) in
  {
    Socket_api.socket;
    bind;
    listen;
    accept;
    connect;
    send;
    recv;
    close;
    epoll_create;
    epoll_add;
    epoll_del;
    epoll_wait;
    local_addr;
    peer_addr;
  }
