module Engine = Sim.Engine
module Cpu = Sim.Cpu

type 'fd waiter = {
  k : ('fd * Types.events) list -> unit;
  mutable timer : Engine.Timer.t option;
}

type 'fd t = {
  engine : Engine.t;
  cmp : 'fd -> 'fd -> int;
  events_of : 'fd -> Types.events;
  core_of : 'fd -> Cpu.t;
  wake_cycles : float;
  members : ('fd, Types.events) Hashtbl.t; (* fd -> interest mask *)
  ready : ('fd, unit) Hashtbl.t;
  mutable waiter : 'fd waiter option;
}

let nonempty (e : Types.events) = e.Types.readable || e.Types.writable || e.Types.hup

let create ~engine ~cmp ~events_of ~core_of ~wake_cycles () =
  { engine; cmp; events_of; core_of; wake_cycles; members = Hashtbl.create 64;
    ready = Hashtbl.create 64; waiter = None }

let masked t fd (ev : Types.events) =
  match Hashtbl.find_opt t.members fd with
  | None -> Types.no_events
  | Some mask ->
      {
        Types.readable = ev.Types.readable && mask.Types.readable;
        writable = ev.Types.writable && mask.Types.writable;
        hup = ev.Types.hup;
      }

let ready_list t =
  (* Ascending-fd readiness order: the order epoll_wait hands out events is
     application-visible and must not depend on hash-bucket layout. *)
  Nkutil.Det_tbl.bindings ~cmp:t.cmp t.ready
  |> List.filter_map (fun (fd, ()) ->
         let ev = masked t fd (t.events_of fd) in
         if nonempty ev then Some (fd, ev) else None)

let try_wake t core =
  match t.waiter with
  | None -> ()
  | Some w -> (
      match ready_list t with
      | [] -> ()
      | events ->
          t.waiter <- None;
          (match w.timer with None -> () | Some h -> Engine.Timer.cancel h);
          Cpu.exec core ~cycles:t.wake_cycles (fun () -> w.k events))

let notify t fd =
  if Hashtbl.mem t.members fd then begin
    let ev = masked t fd (t.events_of fd) in
    if nonempty ev then begin
      Hashtbl.replace t.ready fd ();
      try_wake t (t.core_of fd)
    end
    else Hashtbl.remove t.ready fd
  end

let add t fd ~mask =
  Hashtbl.replace t.members fd mask;
  notify t fd

let del t fd =
  Hashtbl.remove t.members fd;
  Hashtbl.remove t.ready fd

let mem t fd = Hashtbl.mem t.members fd

let wait t ~timeout ~k =
  match ready_list t with
  | (fd1, _) :: _ as events ->
      Cpu.exec (t.core_of fd1) ~cycles:t.wake_cycles (fun () -> k events)
  | [] ->
      let w = { k; timer = None } in
      if timeout >= 0.0 then
        w.timer <-
          Some
            (Engine.schedule t.engine ~delay:timeout (fun () ->
                 match t.waiter with
                 | Some w' when w' == w ->
                     t.waiter <- None;
                     w.k []
                 | Some _ | None -> ()));
      t.waiter <- Some w
