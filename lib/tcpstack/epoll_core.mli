(** Reusable epoll emulation.

    Level-triggered readiness over an arbitrary descriptor type, with the
    waiter wake-up charged to the CPU core of the socket that became ready.
    Used by {!Direct_socket} (Baseline) and by NetKernel's GuestLib — the
    same I/O event notification semantics the paper preserves for
    applications (§4.2). *)

type 'fd t

val create :
  engine:Sim.Engine.t ->
  cmp:('fd -> 'fd -> int) ->
  events_of:('fd -> Types.events) ->
  core_of:('fd -> Sim.Cpu.t) ->
  wake_cycles:float ->
  unit ->
  'fd t
(** [events_of] must return the descriptor's current readiness snapshot;
    [core_of] the core charged [wake_cycles] when a waiter is woken. [cmp]
    totally orders descriptors: ready sets are delivered in ascending [cmp]
    order so event delivery is deterministic. *)

val add : 'fd t -> 'fd -> mask:Types.events -> unit
(** Register interest in the event kinds set in [mask] (hup is always
    reported); re-adding updates the mask (epoll_mod). If the descriptor is
    already ready under the mask, a pending waiter is woken immediately. *)

val del : 'fd t -> 'fd -> unit

val mem : 'fd t -> 'fd -> bool

val notify : 'fd t -> 'fd -> unit
(** Tell the instance that [fd]'s readiness may have changed (it re-reads
    [events_of]). Cheap no-op for non-members. *)

val wait : 'fd t -> timeout:float -> k:(('fd * Types.events) list -> unit) -> unit
(** Deliver the ready set once non-empty, or an empty list after [timeout]
    seconds (negative timeout = wait indefinitely). One waiter at a time;
    a second concurrent waiter replaces the first (which is dropped). *)
