type listener_state = {
  mutable handle : Stack_ops.listener option;
  pending : (Stack_ops.conn * Addr.t) Queue.t;
  waiters : ((Socket_api.sock * Addr.t, Types.err) result -> unit) Queue.t;
}

type entry =
  | Fresh of { mutable bound : Addr.t option }
  | Lst of listener_state
  | Cn of Stack_ops.conn

type state = {
  ops : Stack_ops.t;
  fds : (Socket_api.sock, entry) Hashtbl.t;
  epolls : (Socket_api.epoll, Socket_api.sock Epoll_core.t) Hashtbl.t;
  memberships : (Socket_api.sock, Socket_api.epoll list ref) Hashtbl.t;
  mutable next_fd : int;
  mutable next_ep : int;
}

let alloc st entry =
  let fd = st.next_fd in
  st.next_fd <- st.next_fd + 1;
  Hashtbl.replace st.fds fd entry;
  fd

let notify_epolls st fd =
  match Hashtbl.find_opt st.memberships fd with
  | None -> ()
  | Some eps ->
      List.iter
        (fun epid ->
          match Hashtbl.find_opt st.epolls epid with
          | None -> ()
          | Some ep -> Epoll_core.notify ep fd)
        !eps

let register_conn st conn =
  let fd = alloc st (Cn conn) in
  st.ops.Stack_ops.set_conn_handler conn (fun _ev -> notify_epolls st fd);
  fd

let events_of st fd =
  match Hashtbl.find_opt st.fds fd with
  | None | Some (Fresh _) -> Types.no_events
  | Some (Lst l) ->
      { Types.readable = not (Queue.is_empty l.pending); writable = false; hup = false }
  | Some (Cn c) -> st.ops.Stack_ops.conn_events c

let core_of st fd =
  match Hashtbl.find_opt st.fds fd with
  | Some (Cn c) -> st.ops.Stack_ops.conn_core c
  | Some (Lst _) | Some (Fresh _) | None -> st.ops.Stack_ops.default_core

let make ops =
  let st =
    { ops; fds = Hashtbl.create 64; epolls = Hashtbl.create 8;
      memberships = Hashtbl.create 64; next_fd = 3; next_ep = 1 }
  in
  let find fd = Hashtbl.find_opt st.fds fd in
  let socket () = Ok (alloc st (Fresh { bound = None })) in
  let bind fd addr =
    match find fd with
    | Some (Fresh f) ->
        f.bound <- Some addr;
        Ok ()
    | Some (Lst _ | Cn _) | None -> Error Types.Einval
  in
  let listen fd ~backlog =
    match find fd with
    | Some (Fresh { bound = Some addr }) -> (
        let l = { handle = None; pending = Queue.create (); waiters = Queue.create () } in
        let on_accept conn ~peer =
          if Queue.is_empty l.waiters then begin
            Queue.add (conn, peer) l.pending;
            notify_epolls st fd
          end
          else begin
            let k = Queue.pop l.waiters in
            let cfd = register_conn st conn in
            k (Ok (cfd, peer))
          end
        in
        match ops.Stack_ops.new_listener ~addr ~backlog ~on_accept with
        | Error e -> Error e
        | Ok handle ->
            l.handle <- Some handle;
            Hashtbl.replace st.fds fd (Lst l);
            Ok ())
    | Some (Fresh { bound = None }) -> Error Types.Einval
    | Some (Lst _ | Cn _) | None -> Error Types.Einval
  in
  let accept fd ~k =
    match find fd with
    | Some (Lst l) ->
        if Queue.is_empty l.pending then Queue.add k l.waiters
        else begin
          let conn, peer = Queue.pop l.pending in
          let cfd = register_conn st conn in
          k (Ok (cfd, peer))
        end
    | Some (Fresh _ | Cn _) | None -> k (Error Types.Einval)
  in
  let connect fd addr ~k =
    match find fd with
    | Some (Fresh _) ->
        ops.Stack_ops.connect ~dst:addr ~k:(fun r ->
            match r with
            | Error e -> k (Error e)
            | Ok conn ->
                Hashtbl.replace st.fds fd (Cn conn);
                ops.Stack_ops.set_conn_handler conn (fun _ev -> notify_epolls st fd);
                k (Ok ()))
    | Some (Lst _ | Cn _) | None -> k (Error Types.Einval)
  in
  let send fd payload ~k =
    match find fd with
    | Some (Cn c) -> ops.Stack_ops.send c payload ~k
    | Some (Fresh _ | Lst _) | None -> k (Error Types.Enotconn)
  in
  let recv fd ~max ~mode ~k =
    match find fd with
    | Some (Cn c) -> ops.Stack_ops.recv c ~max ~mode ~k
    | Some (Fresh _ | Lst _) | None -> k (Error Types.Enotconn)
  in
  let forget fd =
    Hashtbl.remove st.fds fd;
    match Hashtbl.find_opt st.memberships fd with
    | None -> ()
    | Some eps ->
        List.iter
          (fun epid ->
            match Hashtbl.find_opt st.epolls epid with
            | None -> ()
            | Some ep -> Epoll_core.del ep fd)
          !eps;
        Hashtbl.remove st.memberships fd
  in
  let close fd =
    (match find fd with
    | Some (Cn c) -> ops.Stack_ops.close_conn c
    | Some (Lst l) -> (
        Queue.iter (fun k -> k (Error Types.Eclosed)) l.waiters;
        Queue.iter (fun (conn, _) -> ops.Stack_ops.abort_conn conn) l.pending;
        match l.handle with
        | Some h -> ops.Stack_ops.close_listener h
        | None -> ())
    | Some (Fresh _) | None -> ());
    forget fd
  in
  let epoll_create () =
    let epid = st.next_ep in
    st.next_ep <- st.next_ep + 1;
    Hashtbl.replace st.epolls epid
      (Epoll_core.create ~engine:ops.Stack_ops.engine ~cmp:Int.compare
         ~events_of:(events_of st) ~core_of:(core_of st)
         ~wake_cycles:ops.Stack_ops.wake_cycles ());
    epid
  in
  let epoll_add epid fd ~mask =
    match Hashtbl.find_opt st.epolls epid with
    | None -> ()
    | Some ep ->
        Epoll_core.add ep fd ~mask;
        let eps =
          match Hashtbl.find_opt st.memberships fd with
          | Some l -> l
          | None ->
              let l = ref [] in
              Hashtbl.replace st.memberships fd l;
              l
        in
        if not (List.mem epid !eps) then eps := epid :: !eps
  in
  let epoll_del epid fd =
    match Hashtbl.find_opt st.epolls epid with
    | None -> ()
    | Some ep ->
        Epoll_core.del ep fd;
        (match Hashtbl.find_opt st.memberships fd with
        | None -> ()
        | Some eps -> eps := List.filter (fun e -> e <> epid) !eps)
  in
  let epoll_wait epid ~timeout ~k =
    match Hashtbl.find_opt st.epolls epid with
    | None -> k []
    | Some ep -> Epoll_core.wait ep ~timeout ~k
  in
  let local_addr fd =
    match find fd with
    | Some (Cn c) -> ops.Stack_ops.conn_local c
    | Some (Fresh { bound }) -> bound
    | Some (Lst _) | None -> None
  in
  let peer_addr fd =
    match find fd with
    | Some (Cn c) -> ops.Stack_ops.conn_peer c
    | Some (Fresh _ | Lst _) | None -> None
  in
  {
    Socket_api.socket;
    bind;
    listen;
    accept;
    connect;
    send;
    recv;
    close;
    epoll_create;
    epoll_add;
    epoll_del;
    epoll_wait;
    local_addr;
    peer_addr;
  }
