type offer = { released : int; duplicate : int; fin_reached : bool }

type t = {
  mutable next_abs : int; (* absolute (unwrapped) receive-next offset *)
  mutable next_mod : int; (* same, mod 2^32 *)
  mutable ranges : (int * int) list; (* disjoint [lo, hi) absolute, sorted *)
  mutable fin_abs : int option; (* absolute offset of the FIN, if seen *)
  mutable fin_delivered : bool;
}

let create ~next () =
  { next_abs = 0; next_mod = next land (Tcp_seq.modulus - 1); ranges = []; fin_abs = None;
    fin_delivered = false }

let next t = t.next_mod

let ooo_bytes t = List.fold_left (fun acc (lo, hi) -> acc + (hi - lo)) 0 t.ranges

let ooo_ranges t = List.length t.ranges

let fin_seen t = t.fin_abs <> None

(* Insert [lo, hi) into the sorted disjoint list, merging overlaps. Returns
   the new list and how many bytes of [lo, hi) were already covered. *)
let insert_range ranges lo hi =
  let rec loop acc covered lo hi = function
    | [] -> (List.rev_append acc [ (lo, hi) ], covered)
    | (rlo, rhi) :: rest ->
        if rhi < lo then loop ((rlo, rhi) :: acc) covered lo hi rest
        else if hi < rlo then (List.rev_append acc ((lo, hi) :: (rlo, rhi) :: rest), covered)
        else begin
          (* Overlapping or adjacent: merge and account the intersection. *)
          let inter = Int.max 0 (Int.min hi rhi - Int.max lo rlo) in
          loop acc (covered + inter) (Int.min lo rlo) (Int.max hi rhi) rest
        end
  in
  loop [] 0 lo hi ranges

type snapshot = {
  s_next_abs : int;
  s_next_mod : int;
  s_ranges : (int * int) list;
  s_fin_abs : int option;
  s_fin_delivered : bool;
}

let snapshot t =
  {
    s_next_abs = t.next_abs;
    s_next_mod = t.next_mod;
    s_ranges = t.ranges;
    s_fin_abs = t.fin_abs;
    s_fin_delivered = t.fin_delivered;
  }

let restore s =
  {
    next_abs = s.s_next_abs;
    next_mod = s.s_next_mod;
    ranges = s.s_ranges;
    fin_abs = s.s_fin_abs;
    fin_delivered = s.s_fin_delivered;
  }

let offer t ~seq ~len ~fin =
  (* Unwrap the 32-bit sequence number relative to the expected pointer. *)
  let rel = Tcp_seq.diff seq t.next_mod in
  let lo = t.next_abs + rel in
  let hi = lo + len in
  let fin_pos = if fin then Some hi else None in
  (match fin_pos with
  | Some pos -> if t.fin_abs = None then t.fin_abs <- Some pos
  | None -> ());
  (* Bytes entirely in the past are duplicates. *)
  let dup_below = Int.max 0 (Int.min hi t.next_abs - lo) in
  let lo = Int.max lo t.next_abs in
  let duplicate, released =
    if lo >= hi then ((if len > 0 then len else 0), 0)
    else begin
      let ranges, covered = insert_range t.ranges lo hi in
      t.ranges <- ranges;
      (* Release the leading contiguous run. *)
      let released =
        match t.ranges with
        | (rlo, rhi) :: rest when rlo <= t.next_abs ->
            let n = rhi - t.next_abs in
            t.next_abs <- rhi;
            t.ranges <- rest;
            n
        | _ -> 0
      in
      (dup_below + covered, released)
    end
  in
  t.next_mod <- Tcp_seq.add t.next_mod released;
  let fin_reached =
    match t.fin_abs with
    | Some pos when (not t.fin_delivered) && t.next_abs >= pos ->
        t.fin_delivered <- true;
        (* The FIN itself consumes one sequence number. *)
        t.next_mod <- Tcp_seq.add t.next_mod 1;
        true
    | Some _ | None -> false
  in
  { released; duplicate; fin_reached }
