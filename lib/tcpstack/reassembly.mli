(** Receive-side sequence-space reassembly.

    Tracks which byte ranges have arrived and releases bytes as soon as they
    become contiguous with the receive-next pointer. Sequence numbers are
    unwrapped to 63-bit absolute offsets internally, so wrap-around is
    handled once at the boundary. *)

type t

type offer = {
  released : int;  (** new in-order payload bytes made available *)
  duplicate : int;  (** bytes that were already covered (retransmissions) *)
  fin_reached : bool;  (** the stream's FIN is now in order *)
}

val create : next:int -> unit -> t
(** [create ~next ()] starts expecting sequence number [next] (mod 2^32). *)

val offer : t -> seq:int -> len:int -> fin:bool -> offer
(** [offer t ~seq ~len ~fin] records an arrived segment. Data entirely below
    the expected pointer counts as duplicate; future data is buffered as
    out-of-order until the gap fills. *)

val next : t -> int
(** Current receive-next sequence number (mod 2^32) — what we ACK. *)

val ooo_bytes : t -> int
(** Bytes buffered out-of-order (they consume receive-window space). *)

val ooo_ranges : t -> int
(** Number of disjoint out-of-order ranges held (for tests). *)

val fin_seen : t -> bool
(** A FIN has been offered (possibly still out of order). *)

type snapshot = {
  s_next_abs : int;
  s_next_mod : int;
  s_ranges : (int * int) list;
  s_fin_abs : int option;
  s_fin_delivered : bool;
}
(** Full mid-stream state, for live NSM migration — [create] cannot
    reproduce a reassembler with out-of-order ranges already buffered. *)

val snapshot : t -> snapshot

val restore : snapshot -> t
(** [restore (snapshot t)] behaves identically to [t]. *)
