type t = {
  min_rto : float;
  max_rto : float;
  initial_rto : float;
  mutable srtt : float;
  mutable rttvar : float;
  mutable has_sample : bool;
}

let create ?(min_rto = 0.2) ?(max_rto = 30.0) ?(initial_rto = 1.0) () =
  { min_rto; max_rto; initial_rto; srtt = 0.0; rttvar = 0.0; has_sample = false }

let sample t rtt =
  if rtt >= 0.0 then
    if not t.has_sample then begin
      t.srtt <- rtt;
      t.rttvar <- rtt /. 2.0;
      t.has_sample <- true
    end
    else begin
      (* RFC 6298: alpha = 1/8, beta = 1/4. *)
      t.rttvar <- (0.75 *. t.rttvar) +. (0.25 *. Float.abs (t.srtt -. rtt));
      t.srtt <- (0.875 *. t.srtt) +. (0.125 *. rtt)
    end

let srtt t = t.srtt

let rttvar t = t.rttvar

let rto t =
  if not t.has_sample then t.initial_rto
  else Float.min t.max_rto (Float.max t.min_rto (t.srtt +. (4.0 *. t.rttvar)))

let has_sample t = t.has_sample

type snapshot = {
  s_min_rto : float;
  s_max_rto : float;
  s_initial_rto : float;
  s_srtt : float;
  s_rttvar : float;
  s_has_sample : bool;
}

let snapshot t =
  {
    s_min_rto = t.min_rto;
    s_max_rto = t.max_rto;
    s_initial_rto = t.initial_rto;
    s_srtt = t.srtt;
    s_rttvar = t.rttvar;
    s_has_sample = t.has_sample;
  }

let restore s =
  {
    min_rto = s.s_min_rto;
    max_rto = s.s_max_rto;
    initial_rto = s.s_initial_rto;
    srtt = s.s_srtt;
    rttvar = s.s_rttvar;
    has_sample = s.s_has_sample;
  }
