(** Jacobson/Karels RTT estimation and RTO computation (RFC 6298). *)

type t

val create : ?min_rto:float -> ?max_rto:float -> ?initial_rto:float -> unit -> t
(** Defaults: [min_rto] 0.2 s (Linux), [max_rto] 30 s, [initial_rto] 1 s. *)

val sample : t -> float -> unit
(** [sample t rtt] feeds one round-trip measurement (seconds). Negative
    samples are ignored. *)

val srtt : t -> float
(** Smoothed RTT; 0 before the first sample. *)

val rttvar : t -> float

val rto : t -> float
(** Current retransmission timeout, clamped to [\[min_rto, max_rto\]]. *)

val has_sample : t -> bool

type snapshot = {
  s_min_rto : float;
  s_max_rto : float;
  s_initial_rto : float;
  s_srtt : float;
  s_rttvar : float;
  s_has_sample : bool;
}
(** Serialized estimator state, for live NSM migration. *)

val snapshot : t -> snapshot

val restore : snapshot -> t
(** [restore (snapshot t)] behaves identically to [t]. *)
