module Cpu = Sim.Cpu
module Engine = Sim.Engine
module Profile = Sim.Cost_profile

type rx_mode = Interrupt | Polling

type config = {
  profile : Profile.t;
  tcb : Tcb.config;
  cc_factory : Cc.factory;
  rx_mode : rx_mode;
  rx_ring_capacity : int;
  interrupt_delay : float;
  poll_idle_delay : float;
  charge_syscalls : bool;
  charge_user_copy : bool;
  contention_cores : int option;
  register_vswitch : bool;
  ephemeral_range : int * int;
      (* several stacks may originate connections from a shared IP (multiple
         NSMs serving one VM); disjoint ranges keep their ports from
         colliding *)
}

let default_config profile =
  {
    profile;
    tcb =
      {
        Tcb.default_config with
        Tcb.rwnd_limit = profile.Profile.default_rwnd;
        rwnd_max = profile.Profile.max_rwnd;
        sndbuf_limit = 2 * profile.Profile.max_rwnd;
      };
    cc_factory = Cc_cubic.factory ~mss:Segment.mss;
    rx_mode = Interrupt;
    rx_ring_capacity = 4096;
    interrupt_delay = 5e-6;
    poll_idle_delay = 20e-6;
    charge_syscalls = true;
    charge_user_copy = true;
    contention_cores = None;
    register_vswitch = true;
    ephemeral_range = (32768, 60999);
  }

type stats = {
  segs_rx : int;
  segs_tx : int;
  payload_rx : int;
  payload_tx : int;
  rx_ring_drops : int;
  syn_drops : int;
  rst_tx : int;
  conns_established : int;
  conns_failed : int;
}

(* Live registry-backed counters; [stats] snapshots them. *)
type counters = {
  c_segs_rx : Nkmon.Registry.counter;
  c_segs_tx : Nkmon.Registry.counter;
  c_payload_rx : Nkmon.Registry.counter;
  c_payload_tx : Nkmon.Registry.counter;
  c_rx_ring_drops : Nkmon.Registry.counter;
  c_syn_drops : Nkmon.Registry.counter;
  c_rst_tx : Nkmon.Registry.counter;
  c_conns_established : Nkmon.Registry.counter;
  c_conns_failed : Nkmon.Registry.counter;
}

type listener = {
  l_addr : Addr.t;
  l_backlog : int;
  accept_q : sock Queue.t;
  accept_waiters : ((sock, Types.err) result -> unit) Queue.t;
  mutable syn_count : int;
  mutable l_endpoint_registered : bool;
  mutable l_paused : bool;  (* drop new SYNs silently (migration quiesce) *)
}

and conn = {
  tcb : Tcb.t;
  registry_key : Addr.Flow.t * int; (* client->server flow, client ISN *)
  mutable established : bool;
  mutable error : Types.err option;
  mutable c_endpoint_registered : bool;
  mutable c_flow_registered : bool;
}

and sock_kind = Fresh | Listener of listener | Conn of conn | Sclosed

and sock = {
  sid : int;
  mutable kind : sock_kind;
  mutable core : Cpu.t;
  mutable qidx : int; (* RX queue / core index this flow is steered to *)
  mutable local : Addr.t option;
  mutable peer : Addr.t option;
  mutable handler : (Types.events -> unit) option;
}

module Flow_table = Hashtbl.Make (struct
  type t = Addr.Flow.t

  let equal = Addr.Flow.equal
  let hash = Addr.Flow.hash
end)

module Endpoint_table = Hashtbl.Make (struct
  type t = Addr.t

  let equal = Addr.equal
  let hash = Addr.hash
end)

type rx_queue = {
  ring : Segment.t Nkutil.Spsc_ring.t;
  mutable scheduled : bool;
  mutable batch_left : int; (* segments until the next interrupt charge *)
}

type t = {
  engine : Engine.t;
  name : string;
  cores : Cpu.Set.t;
  vswitch : Vswitch.t;
  registry : Conn_registry.t;
  rng : Nkutil.Rng.t;
  cfg : config;
  mutable ips : Addr.ip list;
  conns : sock Flow_table.t; (* keyed by local->remote flow *)
  listeners : sock Endpoint_table.t;
  rx : rx_queue array;
  mon : Nkmon.t;
  spans : Nkspan.t;
  ctr : counters;
  mutable next_sid : int;
  mutable next_port : int;
  mutable next_src_ip : int; (* round-robin index into [ips] for connects *)
  mutable next_queue : int; (* RFS-style round-robin flow steering *)
  mutable self_input : Segment.t -> unit;
      (* [input t], tied after [create]; lets [handle_syn] pin accepted
         flows in the vswitch without a forward reference. *)
}

let name t = t.name
let engine t = t.engine
let cores t = t.cores
let config t = t.cfg
let stats t =
  let module R = Nkmon.Registry in
  {
    segs_rx = R.counter_value t.ctr.c_segs_rx;
    segs_tx = R.counter_value t.ctr.c_segs_tx;
    payload_rx = R.counter_value t.ctr.c_payload_rx;
    payload_tx = R.counter_value t.ctr.c_payload_tx;
    rx_ring_drops = R.counter_value t.ctr.c_rx_ring_drops;
    syn_drops = R.counter_value t.ctr.c_syn_drops;
    rst_tx = R.counter_value t.ctr.c_rst_tx;
    conns_established = R.counter_value t.ctr.c_conns_established;
    conns_failed = R.counter_value t.ctr.c_conns_failed;
  }

let owns_ip t ip = List.mem ip t.ips

let default_ip t =
  match List.rev t.ips with
  | ip :: _ -> ip
  | [] -> invalid_arg (t.name ^ ": stack owns no IP")

(* ---- cost helpers ------------------------------------------------------ *)

let ncores t = Cpu.Set.n t.cores

let contention_cores t = Option.value t.cfg.contention_cores ~default:(ncores t)

let tx_mult t = Profile.contention_mult ~factor:t.cfg.profile.tx_contention ~cores:(contention_cores t)

let rx_mult t = Profile.contention_mult ~factor:t.cfg.profile.rx_contention ~cores:(contention_cores t)

let rps_mult t =
  Profile.contention_mult ~factor:t.cfg.profile.rps_contention ~cores:(contention_cores t)

let syscall_cycles t = if t.cfg.charge_syscalls then t.cfg.profile.syscall else 0.0

let user_copy_cycles t n =
  if t.cfg.charge_user_copy then float_of_int n *. t.cfg.profile.per_byte_user_copy else 0.0

(* ---- event notification ------------------------------------------------ *)

let sock_events _t s =
  match s.kind with
  | Fresh -> Types.no_events
  | Sclosed -> { Types.readable = false; writable = false; hup = true }
  | Listener l ->
      { Types.readable = not (Queue.is_empty l.accept_q); writable = false; hup = false }
  | Conn c ->
      let hup = c.error <> None || Tcb.state c.tcb = Tcb.Closed in
      {
        Types.readable = Tcb.readable_bytes c.tcb > 0 || Tcb.eof_pending c.tcb || hup;
        writable = Tcb.writable c.tcb;
        hup;
      }

let notify t s = match s.handler with None -> () | Some h -> h (sock_events t s)

let set_event_handler _t s h = s.handler <- Some h

(* ---- segment emission -------------------------------------------------- *)

let emit_cycles t (seg : Segment.t) =
  let p = t.cfg.profile in
  if seg.Segment.len = 0 then p.per_chunk_tx *. 0.4 *. tx_mult t
  else (p.per_chunk_tx +. (float_of_int seg.Segment.len *. p.per_byte_tx)) *. tx_mult t

let emit t s (seg : Segment.t) =
  Nkmon.Registry.incr t.ctr.c_segs_tx;
  Nkmon.Registry.add t.ctr.c_payload_tx seg.Segment.len;
  Cpu.exec s.core ~cycles:(emit_cycles t seg) (fun () -> Vswitch.output t.vswitch seg)

let send_rst t (seg : Segment.t) =
  if not seg.Segment.rst then begin
    Nkmon.Registry.incr t.ctr.c_rst_tx;
    let reply =
      Segment.make
        ~flow:(Addr.Flow.reverse seg.Segment.flow)
        ~seq:seg.Segment.ack
        ~ack:(Tcp_seq.add seg.Segment.seq (seg.Segment.len + if seg.Segment.syn then 1 else 0))
        ~rst:true ~ack_flag:true ()
    in
    Vswitch.output t.vswitch reply
  end

(* ---- sock and tcb plumbing --------------------------------------------- *)

let fresh_sock t ~qidx =
  let s =
    { sid = t.next_sid; kind = Fresh; core = Cpu.Set.core t.cores qidx; qidx; local = None;
      peer = None; handler = None }
  in
  t.next_sid <- t.next_sid + 1;
  s

(* Flows are spread round-robin over cores and their RX steered to the same
   core (Linux RFS / aRFS behaviour), which is what lets 8 flows use 8 vCPUs
   evenly (paper Figs 18–20). *)
let next_queue t =
  let q = t.next_queue mod ncores t in
  t.next_queue <- t.next_queue + 1;
  q

let unregister_endpoints t s =
  (match s.kind with
  | Conn c ->
      (if c.c_endpoint_registered then
         match s.local with
         | Some a -> Vswitch.unregister_endpoint t.vswitch a
         | None -> ());
      if c.c_flow_registered then (
        match (s.local, s.peer) with
        | Some l, Some p ->
            Vswitch.unregister_flow t.vswitch (Addr.Flow.make ~src:p ~dst:l)
        | _ -> ())
  | Fresh | Sclosed -> ()
  | Listener l when l.l_endpoint_registered -> Vswitch.unregister_endpoint t.vswitch l.l_addr
  | Listener _ -> ());
  ()

(* Build the TCB action record for a connection socket. [role] distinguishes
   the active opener (fires the connect continuation) from a passive one
   (feeds the listener's accept queue). *)
let make_actions t s ~flow ~role =
  let get_conn () = match s.kind with Conn c -> Some c | Fresh | Listener _ | Sclosed -> None in
  let on_established () =
    (match get_conn () with
    | Some c when not c.established ->
        c.established <- true;
        Nkmon.Registry.incr t.ctr.c_conns_established
    | Some _ | None -> ());
    (match role with
    | `Active k -> k (Ok ())
    | `Passive lsock -> (
        match lsock.kind with
        | Listener l ->
            l.syn_count <- Int.max 0 (l.syn_count - 1);
            if Queue.is_empty l.accept_waiters then begin
              Queue.add s l.accept_q;
              notify t lsock
            end
            else begin
              let k = Queue.pop l.accept_waiters in
              let p = t.cfg.profile in
              Cpu.exec s.core
                ~cycles:(syscall_cycles t +. (p.accept_op *. rps_mult t))
                (fun () -> k (Ok s))
            end
        | Fresh | Conn _ | Sclosed -> ()));
    notify t s
  in
  let on_error err =
    (match get_conn () with
    | Some c ->
        if c.error = None then c.error <- Some err;
        if not c.established then begin
          Nkmon.Registry.incr t.ctr.c_conns_failed;
          match role with
          | `Active k -> k (Error err)
          | `Passive lsock -> (
              match lsock.kind with
              | Listener l -> l.syn_count <- Int.max 0 (l.syn_count - 1)
              | Fresh | Conn _ | Sclosed -> ())
        end
    | None -> ());
    notify t s
  in
  let on_destroy () =
    Flow_table.remove t.conns flow;
    (match get_conn () with
    | Some c ->
        let rflow, isn = c.registry_key in
        Conn_registry.remove t.registry ~flow:rflow ~isn
    | None -> ());
    unregister_endpoints t s;
    notify t s
  in
  {
    Tcb.now = (fun () -> Engine.now t.engine);
    emit = (fun seg -> emit t s seg);
    set_timer = (fun ~delay f -> Engine.schedule t.engine ~delay f);
    cancel_timer = Engine.Timer.cancel;
    on_established;
    on_readable = (fun () -> notify t s);
    on_writable = (fun () -> notify t s);
    on_error;
    on_destroy;
    on_transition =
      (fun old_state new_state ->
        if Nkmon.tracing t.mon then
          Nkmon.event t.mon
            (Nkmon.Trace.Tcp_state
               {
                 stack = t.name;
                 sock = s.sid;
                 old_state = Tcb.state_to_string old_state;
                 new_state = Tcb.state_to_string new_state;
               }));
  }

(* ---- SYN handling ------------------------------------------------------ *)

let handle_syn t (seg : Segment.t) =
  let dst = seg.Segment.flow.dst in
  match Endpoint_table.find_opt t.listeners dst with
  | None -> send_rst t seg
  | Some lsock -> (
      match lsock.kind with
      | Listener l ->
          let backlog = Int.min l.l_backlog t.cfg.profile.accept_backlog in
          if l.l_paused || l.syn_count + Queue.length l.accept_q >= backlog then
            (* Silent drop, exactly like backlog overflow: the client's SYN
               RTO retries, and a paused (migrating) listener's retry lands
               on the destination host once the cut re-points the route. *)
            Nkmon.Registry.incr t.ctr.c_syn_drops
          else begin
            match
              Conn_registry.lookup t.registry ~flow:seg.Segment.flow ~isn:seg.Segment.seq
            with
            | None ->
                (* No content channel: the SYN does not come from one of our
                   simulated stacks. Drop it. *)
                Nkmon.Registry.incr t.ctr.c_syn_drops
            | Some channel ->
                let flow = Addr.Flow.reverse seg.Segment.flow in
                let s = fresh_sock t ~qidx:(next_queue t) in
                s.local <- Some flow.src;
                s.peer <- Some flow.dst;
                l.syn_count <- l.syn_count + 1;
                let act = make_actions t s ~flow ~role:(`Passive lsock) in
                let isn = Nkutil.Rng.int t.rng Tcp_seq.modulus in
                let tcb =
                  Tcb.create_passive ~flow ~cfg:t.cfg.tcb ~act ~cc:(t.cfg.cc_factory ())
                    ~isn ~remote_isn:seg.Segment.seq ~remote_ts:seg.Segment.ts ~channel
                in
                let c =
                  {
                    tcb;
                    registry_key = (seg.Segment.flow, seg.Segment.seq);
                    established = false;
                    error = None;
                    c_endpoint_registered = false;
                    c_flow_registered = false;
                  }
                in
                s.kind <- Conn c;
                Flow_table.replace t.conns flow s;
                if t.cfg.register_vswitch then begin
                  (* Pin the 4-tuple to this stack so the listener's
                     ⟨ip, port⟩ endpoint can move to another NSM without
                     stranding this established connection. *)
                  Vswitch.register_flow t.vswitch seg.Segment.flow t.self_input;
                  c.c_flow_registered <- true
                end
          end
      | Fresh | Conn _ | Sclosed -> send_rst t seg)

(* ---- RX path ------------------------------------------------------------ *)

let seg_rx_cycles t (seg : Segment.t) =
  let p = t.cfg.profile in
  if seg.Segment.syn && not seg.Segment.ack_flag then p.handshake *. rps_mult t
  else if seg.Segment.len = 0 then
    (* Pure ACKs, window updates, FINs: header-only processing. *)
    p.per_ack_rx *. tx_mult t
  else (p.per_chunk_rx +. (float_of_int seg.Segment.len *. p.per_byte_rx)) *. rx_mult t

let deliver t (seg : Segment.t) =
  Nkmon.Registry.add t.ctr.c_payload_rx seg.Segment.len;
  let flow = Addr.Flow.reverse seg.Segment.flow in
  match Flow_table.find_opt t.conns flow with
  | Some s -> (
      match s.kind with
      | Conn c ->
          if seg.Segment.syn && (not seg.Segment.ack_flag) && Tcb.state c.tcb = Tcb.Time_wait
          then begin
            (* A fresh incarnation over a TIME_WAIT flow: replace it. *)
            Tcb.destroy_quiet c.tcb;
            handle_syn t seg
          end
          else Tcb.input c.tcb seg
      | Fresh | Listener _ | Sclosed -> send_rst t seg)
  | None ->
      if seg.Segment.rst then ()
      else if seg.Segment.syn && not seg.Segment.ack_flag then handle_syn t seg
      else send_rst t seg

(* Process segments one at a time so ACKs leave as soon as each segment is
   handled (a per-batch barrier would stall the sender's ACK clock); the
   interrupt entry cost is charged once per [rx_batch] segments, modelling
   coalescing. *)
let rec drain_interrupt t qi =
  let q = t.rx.(qi) in
  let core = Cpu.Set.core t.cores qi in
  match Nkutil.Spsc_ring.pop q.ring with
  | None -> q.scheduled <- false
  | Some seg ->
      let interrupt_share =
        if q.batch_left <= 0 then begin
          q.batch_left <- t.cfg.profile.rx_batch;
          t.cfg.profile.interrupt
        end
        else 0.0
      in
      q.batch_left <- q.batch_left - 1;
      Nkspan.frame t.spans ~component:t.name ~stage:"rx" (fun () ->
          Cpu.exec core
            ~cycles:(interrupt_share +. seg_rx_cycles t seg)
            (fun () ->
              deliver t seg;
              drain_interrupt t qi))

let rec poll_loop t qi =
  let q = t.rx.(qi) in
  let core = Cpu.Set.core t.cores qi in
  let batch = Nkutil.Spsc_ring.pop_batch q.ring ~max:t.cfg.profile.rx_batch in
  match batch with
  | [] ->
      ignore
        (Engine.schedule t.engine ~delay:t.cfg.poll_idle_delay (fun () ->
             Nkspan.frame t.spans ~component:t.name ~stage:"poll" (fun () ->
                 Cpu.exec core ~cycles:t.cfg.profile.poll_iter (fun () ->
                     poll_loop t qi))))
  | segs ->
      let cycles =
        List.fold_left
          (fun acc seg -> acc +. seg_rx_cycles t seg)
          t.cfg.profile.poll_iter segs
      in
      Nkspan.frame t.spans ~component:t.name ~stage:"rx" (fun () ->
          Cpu.exec core ~cycles (fun () ->
              List.iter (deliver t) segs;
              poll_loop t qi))

let input t (seg : Segment.t) =
  Nkmon.Registry.incr t.ctr.c_segs_rx;
  let qi =
    match Flow_table.find_opt t.conns (Addr.Flow.reverse seg.Segment.flow) with
    | Some s -> s.qidx
    | None -> Addr.Flow.rss_hash seg.Segment.flow mod ncores t
  in
  let q = t.rx.(qi) in
  if not (Nkutil.Spsc_ring.push q.ring seg) then
    Nkmon.Registry.incr t.ctr.c_rx_ring_drops
  else
    match t.cfg.rx_mode with
    | Polling -> () (* the per-core poll loop picks it up *)
    | Interrupt ->
        if not q.scheduled then begin
          q.scheduled <- true;
          ignore
            (Engine.schedule t.engine ~delay:t.cfg.interrupt_delay (fun () ->
                 drain_interrupt t qi))
        end

(* ---- construction ------------------------------------------------------- *)

let create ~engine ~name ~cores ~vswitch ~registry ~rng ?(mon = Nkmon.null ())
    ?(spans = Nkspan.null ()) cfg =
  let ctr =
    let c metric = Nkmon.counter mon ~component:"tcpstack" ~instance:name ~name:metric in
    {
      c_segs_rx = c "segs_rx";
      c_segs_tx = c "segs_tx";
      c_payload_rx = c "payload_rx";
      c_payload_tx = c "payload_tx";
      c_rx_ring_drops = c "rx_ring_drops";
      c_syn_drops = c "syn_drops";
      c_rst_tx = c "rst_tx";
      c_conns_established = c "conns_established";
      c_conns_failed = c "conns_failed";
    }
  in
  let n = Cpu.Set.n cores in
  let rx =
    Array.init n (fun _ ->
        { ring = Nkutil.Spsc_ring.create ~capacity:cfg.rx_ring_capacity; scheduled = false;
          batch_left = 0 })
  in
  let t =
    {
      engine;
      name;
      cores;
      vswitch;
      registry;
      rng;
      cfg;
      ips = [];
      conns = Flow_table.create 256;
      listeners = Endpoint_table.create 16;
      rx;
      mon;
      spans;
      ctr;
      next_sid = 1;
      next_port = fst cfg.ephemeral_range;
      next_src_ip = 0;
      next_queue = 0;
      self_input = (fun _ -> ());
    }
  in
  t.self_input <- input t;
  (match cfg.rx_mode with
  | Interrupt -> ()
  | Polling -> Array.iteri (fun qi _ -> poll_loop t qi) rx);
  t

let add_ip t ip =
  if not (owns_ip t ip) then begin
    t.ips <- ip :: t.ips;
    if t.cfg.register_vswitch then Vswitch.register_ip t.vswitch ip (input t)
  end

(* Release an IP this stack no longer serves (the VM it belonged to migrated
   to another host). Without this, in-flight segments for migrated flows
   would fall through to [send_rst] and reset the very connections the
   migration preserved. *)
let remove_ip t ip =
  if owns_ip t ip then begin
    t.ips <- List.filter (fun x -> x <> ip) t.ips;
    if t.cfg.register_vswitch then Vswitch.unregister_ip t.vswitch ip
  end

(* ---- socket operations --------------------------------------------------- *)

let socket t = fresh_sock t ~qidx:0

let local_addr _t s = s.local

let peer_addr _t s = s.peer

let sock_error _t s =
  match s.kind with
  | Conn c -> c.error
  | Sclosed -> Some Types.Eclosed
  | Fresh | Listener _ -> None

let sock_core _t s = s.core

let bind t s addr =
  match s.kind with
  | Fresh ->
      if Endpoint_table.mem t.listeners addr then Error Types.Eaddrinuse
      else begin
        s.local <- Some addr;
        Ok ()
      end
  | Listener _ | Conn _ | Sclosed -> Error Types.Einval

let listen t s ~backlog =
  match (s.kind, s.local) with
  | Fresh, Some addr ->
      if Endpoint_table.mem t.listeners addr then Error Types.Eaddrinuse
      else begin
        Cpu.charge s.core ~cycles:(syscall_cycles t +. t.cfg.profile.sockop);
        (* Register the exact endpoint even for owned IPs: several stacks
           (e.g. multiple NSMs serving one VM) may share an IP, and the
           vswitch endpoint table must disambiguate per port. *)
        let external_ip = t.cfg.register_vswitch in
        let l =
          {
            l_addr = addr;
            l_backlog = backlog;
            accept_q = Queue.create ();
            accept_waiters = Queue.create ();
            syn_count = 0;
            l_endpoint_registered = external_ip;
            l_paused = false;
          }
        in
        s.kind <- Listener l;
        Endpoint_table.replace t.listeners addr s;
        if external_ip then Vswitch.register_endpoint t.vswitch addr (input t);
        Ok ()
      end
  | Fresh, None -> Error Types.Einval
  | (Listener _ | Conn _ | Sclosed), _ -> Error Types.Einval

(* Migration quiesce: keep the listener serving in-flight handshakes and
   queued accepts, but silently drop fresh SYNs (their RTO retry finds the
   destination host). Irreversible by design — the socket is closed at the
   migration cut moments later. *)
let pause_listener _t s =
  match s.kind with
  | Listener l -> l.l_paused <- true
  | Fresh | Conn _ | Sclosed -> ()

let accept t s ~k =
  match s.kind with
  | Listener l ->
      if Queue.is_empty l.accept_q then Queue.add k l.accept_waiters
      else begin
        let cs = Queue.pop l.accept_q in
        let p = t.cfg.profile in
        Cpu.exec cs.core
          ~cycles:(syscall_cycles t +. (p.accept_op *. rps_mult t))
          (fun () -> k (Ok cs))
      end
  | Fresh | Conn _ | Sclosed -> k (Error Types.Einval)

let alloc_flow t ~src_ip ~dst =
  (* Find a free ephemeral port for (src_ip -> dst). *)
  let lo, hi = t.cfg.ephemeral_range in
  let rec loop attempts =
    if attempts > hi - lo + 1 then None
    else begin
      let port = t.next_port in
      t.next_port <- (if t.next_port >= hi then lo else t.next_port + 1);
      let flow = Addr.Flow.make ~src:(Addr.make src_ip port) ~dst in
      if Flow_table.mem t.conns flow then loop (attempts + 1) else Some flow
    end
  in
  loop 0

let pick_src_ip t s =
  match s.local with
  | Some a -> a.Addr.ip
  | None ->
      (* Rotate over owned IPs so heavy client workloads don't exhaust one
         IP's ephemeral ports. *)
      let ips = Array.of_list t.ips in
      if Array.length ips = 0 then invalid_arg (t.name ^ ": no IP to connect from");
      let ip = ips.(t.next_src_ip mod Array.length ips) in
      t.next_src_ip <- t.next_src_ip + 1;
      ip

let connect t s dst ~k =
  match s.kind with
  | Fresh -> (
      let preset =
        (* A socket bound to an explicit ⟨ip, port⟩ connects from exactly
           there (mTCP-style per-core port selection relies on this). *)
        match s.local with
        | Some a when a.Addr.port <> 0 ->
            let flow = Addr.Flow.make ~src:a ~dst in
            if Flow_table.mem t.conns flow then None else Some flow
        | Some _ | None ->
            let src_ip = pick_src_ip t s in
            alloc_flow t ~src_ip ~dst
      in
      match preset with
      | None -> k (Error Types.Eaddrinuse)
      | Some flow ->
          s.local <- Some flow.src;
          s.peer <- Some dst;
          s.qidx <- next_queue t;
          s.core <- Cpu.Set.core t.cores s.qidx;
          let p = t.cfg.profile in
          let cycles = syscall_cycles t +. (p.handshake *. rps_mult t /. 2.0) in
          Cpu.exec s.core ~cycles (fun () ->
              let fired = ref false in
              let k_once r =
                if not !fired then begin
                  fired := true;
                  k r
                end
              in
              let act = make_actions t s ~flow ~role:(`Active k_once) in
              let isn = Nkutil.Rng.int t.rng Tcp_seq.modulus in
              let channel = Conn_registry.register t.registry ~flow ~isn in
              let external_ip = t.cfg.register_vswitch in
              if external_ip then Vswitch.register_endpoint t.vswitch flow.src (input t);
              let tcb =
                Tcb.create_active ~flow ~cfg:t.cfg.tcb ~act ~cc:(t.cfg.cc_factory ()) ~isn
                  ~channel
              in
              s.kind <-
                Conn
                  {
                    tcb;
                    registry_key = (flow, isn);
                    established = false;
                    error = None;
                    c_endpoint_registered = external_ip;
                    c_flow_registered = false;
                  };
              Flow_table.replace t.conns flow s))
  | Listener _ | Conn _ | Sclosed -> k (Error Types.Einval)

let conn_of s =
  match s.kind with Conn c -> Some c | Fresh | Listener _ | Sclosed -> None

let send t s payload ~k =
  match conn_of s with
  | None -> k (Error (match s.kind with Sclosed -> Types.Eclosed | _ -> Types.Enotconn))
  | Some c -> (
      match c.error with
      | Some e -> k (Error e)
      | None ->
          let want = Types.payload_len payload in
          let room = Tcb.sndbuf_available c.tcb in
          let accept = Int.min want room in
          if accept = 0 && want > 0 then begin
            Cpu.charge s.core ~cycles:(syscall_cycles t);
            if Tcb.writable c.tcb || Tcb.state c.tcb = Tcb.Established then
              k (Error Types.Eagain)
            else k (Error Types.Eclosed)
          end
          else begin
            let cycles = syscall_cycles t +. user_copy_cycles t accept in
            Cpu.exec s.core ~cycles (fun () ->
                let n = Tcb.write c.tcb payload in
                if n > 0 then k (Ok n)
                else if Tcb.state c.tcb = Tcb.Established || Tcb.state c.tcb = Tcb.Close_wait
                then k (Error Types.Eagain)
                else k (Error Types.Eclosed))
          end)

let recv t s ~max ~mode ~k =
  match conn_of s with
  | None -> k (Error (match s.kind with Sclosed -> Types.Eclosed | _ -> Types.Enotconn))
  | Some c ->
      let avail = Tcb.readable_bytes c.tcb in
      if avail = 0 && not (Tcb.eof_pending c.tcb) then begin
        Cpu.charge s.core ~cycles:(syscall_cycles t);
        match c.error with Some e -> k (Error e) | None -> k (Error Types.Eagain)
      end
      else begin
        let n = Int.min max avail in
        let cycles = syscall_cycles t +. user_copy_cycles t n in
        Cpu.exec s.core ~cycles (fun () ->
            match Tcb.read c.tcb ~max ~mode with
            | Some payload -> k (Ok payload)
            | None -> k (Error Types.Eagain))
      end

let close t s =
  match s.kind with
  | Fresh -> s.kind <- Sclosed
  | Sclosed -> ()
  | Listener l ->
      Endpoint_table.remove t.listeners l.l_addr;
      if l.l_endpoint_registered then Vswitch.unregister_endpoint t.vswitch l.l_addr;
      Queue.iter (fun cs -> match conn_of cs with Some c -> Tcb.abort c.tcb | None -> ())
        l.accept_q;
      Queue.iter (fun k -> k (Error Types.Eclosed)) l.accept_waiters;
      Queue.clear l.accept_q;
      Queue.clear l.accept_waiters;
      s.kind <- Sclosed
  | Conn c ->
      let p = t.cfg.profile in
      Cpu.exec s.core
        ~cycles:(syscall_cycles t +. (p.teardown *. rps_mult t))
        (fun () -> Tcb.close c.tcb)

let abort _t s =
  match s.kind with
  | Conn c -> Tcb.abort c.tcb
  | Fresh | Sclosed -> s.kind <- Sclosed
  | Listener _ -> ()

(* ---- Connection export/import (live NSM migration) --------------------- *)

type export = {
  e_snapshot : Tcb.Snapshot.t;
  e_registry_flow : Addr.Flow.t; (* client -> server *)
  e_registry_isn : int;
  e_established : bool;
  e_endpoint_registered : bool;
  e_flow_registered : bool;
}

let export_conn t s =
  match s.kind with
  | Conn c when Tcb.state c.tcb <> Tcb.Closed ->
      let flow = Tcb.flow c.tcb in
      let rflow, isn = c.registry_key in
      let ex =
        {
          e_snapshot = Tcb.snapshot c.tcb;
          e_registry_flow = rflow;
          e_registry_isn = isn;
          e_established = c.established;
          e_endpoint_registered = c.c_endpoint_registered;
          e_flow_registered = c.c_flow_registered;
        }
      in
      (* Quiet teardown: the connection lives on at the destination, so no
         RST, no [on_destroy], and crucially no [Conn_registry.remove] —
         the content channel is the migrating flow's byte stream. *)
      Tcb.detach c.tcb;
      Flow_table.remove t.conns flow;
      unregister_endpoints t s;
      s.kind <- Sclosed;
      Ok ex
  | Conn _ -> Error Types.Eclosed
  | Fresh | Listener _ | Sclosed -> Error Types.Enotconn

let import_conn t ex =
  match Conn_registry.lookup t.registry ~flow:ex.e_registry_flow ~isn:ex.e_registry_isn with
  | None ->
      (* The peer tore the channel down while the snapshot was in flight:
         nothing left to resume. *)
      Error Types.Econnreset
  | Some channel ->
      let flow = ex.e_snapshot.Tcb.Snapshot.s_flow in
      let role =
        (* The registry key is the client->server flow: when it matches the
           connection's own local->remote flow, this side is the active
           opener and writes [c2s]. *)
        if Addr.Flow.equal ex.e_registry_flow flow then `Client else `Server
      in
      let s = fresh_sock t ~qidx:(next_queue t) in
      s.local <- Some flow.Addr.Flow.src;
      s.peer <- Some flow.Addr.Flow.dst;
      let act = make_actions t s ~flow ~role:(`Active (fun _ -> ())) in
      let tcb = Tcb.restore ~act ~cc:(t.cfg.cc_factory ()) ~channel ~role ex.e_snapshot in
      let c =
        {
          tcb;
          registry_key = (ex.e_registry_flow, ex.e_registry_isn);
          established = ex.e_established;
          error = None;
          c_endpoint_registered = false;
          c_flow_registered = false;
        }
      in
      s.kind <- Conn c;
      Flow_table.replace t.conns flow s;
      if t.cfg.register_vswitch then begin
        if ex.e_endpoint_registered then begin
          Vswitch.register_endpoint t.vswitch flow.Addr.Flow.src (input t);
          c.c_endpoint_registered <- true
        end;
        if ex.e_flow_registered then begin
          Vswitch.register_flow t.vswitch (Addr.Flow.reverse flow) t.self_input;
          c.c_flow_registered <- true
        end
      end;
      Ok s
