(** A network-stack instance bound to a host's vswitch and a set of cores.

    One [Stack.t] models what runs inside a VM (Baseline), inside a
    kernel-stack NSM, or — with the polling profile and per-core sharding of
    {!Mtcpstack} — an mTCP process. It owns IPs, demultiplexes incoming
    segments to connections with RSS pinning to cores, runs listeners with a
    finite accept backlog (overflow drops SYNs, which is where the paper's
    Table 5 latency tail comes from), and charges every operation's CPU cost
    to the right core using its {!Sim.Cost_profile}.

    The socket operations are callback-style and non-blocking in spirit:
    [send]/[recv] return [Eagain] rather than waiting, and readiness is
    delivered through per-socket event handlers consumed by
    {!Direct_socket}'s epoll emulation or by the NetKernel ServiceLib. *)

type t

type sock

type rx_mode = Interrupt | Polling

type config = {
  profile : Sim.Cost_profile.t;
  tcb : Tcb.config;
  cc_factory : Cc.factory;
  rx_mode : rx_mode;
  rx_ring_capacity : int;  (** per-core NIC RX descriptor ring *)
  interrupt_delay : float;  (** IRQ dispatch latency *)
  poll_idle_delay : float;  (** polling-loop sleep when the ring is empty *)
  charge_syscalls : bool;  (** false when driven in-kernel by ServiceLib *)
  charge_user_copy : bool;  (** false when payload already sits in hugepages *)
  contention_cores : int option;
      (** effective core count for contention multipliers; defaults to the
          stack's own core count — the mTCP facade overrides it with the
          total shard count *)
  register_vswitch : bool;
      (** self-register IPs/endpoints with the vswitch (default); the mTCP
          facade turns this off and routes RSS itself *)
  ephemeral_range : int * int;
      (** source-port range for outgoing connections (default 32768–60999);
          stacks sharing a source IP must use disjoint ranges *)
}

val default_config : Sim.Cost_profile.t -> config
(** Interrupt-mode config with library defaults and a Reno-free CUBIC
    factory ([Cc_cubic]). *)

val create :
  engine:Sim.Engine.t ->
  name:string ->
  cores:Sim.Cpu.Set.t ->
  vswitch:Vswitch.t ->
  registry:Conn_registry.t ->
  rng:Nkutil.Rng.t ->
  ?mon:Nkmon.t ->
  ?spans:Nkspan.t ->
  config ->
  t
(** [mon] is the world's observability handle; counters land under
    [tcpstack/<name>/...] and state transitions trace as [Tcp_state]
    events. Defaults to a detached {!Nkmon.null} sink. [spans] feeds the
    cycle profiler (rx/poll frames); request stages on the stack are
    recorded by ServiceLib around its stack calls. *)

val name : t -> string

val engine : t -> Sim.Engine.t

val cores : t -> Sim.Cpu.Set.t

val config : t -> config

val add_ip : t -> Addr.ip -> unit
(** Own [ip]: the host vswitch routes its segments to this stack. *)

val remove_ip : t -> Addr.ip -> unit
(** Disown [ip] (its VM migrated to another host): the vswitch entry is
    released so stray segments fall through to the vswitch's silent drop
    instead of drawing an RST from this stack. *)

val owns_ip : t -> Addr.ip -> bool

val default_ip : t -> Addr.ip
(** The first IP added (raises if none). *)

(** {1 Socket operations} *)

val socket : t -> sock

val bind : t -> sock -> Addr.t -> (unit, Types.err) result

val listen : t -> sock -> backlog:int -> (unit, Types.err) result
(** The effective backlog is capped by the profile's [accept_backlog]. *)

val pause_listener : t -> sock -> unit
(** Migration quiesce: silently drop fresh SYNs (like a backlog overflow —
    the client's SYN RTO retries) while in-flight handshakes and queued
    accepts keep settling. Irreversible; no-op on non-listeners. *)

val accept : t -> sock -> k:((sock, Types.err) result -> unit) -> unit
(** Blocks (queues the continuation) until a connection is established. *)

val connect : t -> sock -> Addr.t -> k:((unit, Types.err) result -> unit) -> unit

val send : t -> sock -> Types.payload -> k:((int, Types.err) result -> unit) -> unit
(** Accepts at most the available send-buffer space; [Eagain] when full. *)

val recv :
  t -> sock -> max:int -> mode:Types.recv_mode ->
  k:((Types.payload, Types.err) result -> unit) -> unit
(** [Eagain] when no data; a zero-length payload signals EOF. *)

val close : t -> sock -> unit

val abort : t -> sock -> unit

val set_event_handler : t -> sock -> (Types.events -> unit) -> unit
(** Invoked (from stack context) whenever the socket's readiness changes;
    use [sock_events] for the current snapshot. *)

val sock_events : t -> sock -> Types.events

val local_addr : t -> sock -> Addr.t option

val peer_addr : t -> sock -> Addr.t option

val sock_error : t -> sock -> Types.err option

val sock_core : t -> sock -> Sim.Cpu.t
(** The core this socket's processing is pinned to. *)

(** {1 Wire interface} *)

val input : t -> Segment.t -> unit
(** Entry point registered with the vswitch. *)

(** {1 Connection export/import (live NSM migration)} *)

type export = {
  e_snapshot : Tcb.Snapshot.t;
  e_registry_flow : Addr.Flow.t;  (** client → server flow (registry key) *)
  e_registry_isn : int;
  e_established : bool;
  e_endpoint_registered : bool;
  e_flow_registered : bool;
}
(** Everything the destination stack needs to resume the connection: the
    TCB image plus the content-channel key and vswitch registrations. *)

val export_conn : t -> sock -> (export, Types.err) result
(** Detach an established connection quietly: snapshot the TCB, cancel its
    timers, drop it from the flow table and the vswitch — without emitting
    a segment, firing callbacks, or removing the {!Conn_registry} channel
    (the byte streams migrate with the snapshot). The sock becomes closed.
    [Enotconn] for non-connection socks, [Eclosed] for dead ones. *)

val import_conn : t -> export -> (sock, Types.err) result
(** Resume an exported connection on this stack: rebuilds the TCB over the
    original content channel ({!Conn_registry.lookup}), re-registers the
    vswitch endpoint/flow pins the source held, and re-arms timers.
    [Econnreset] if the channel vanished while the snapshot was in
    flight. *)

(** {1 Statistics} *)

type stats = {
  segs_rx : int;
  segs_tx : int;
  payload_rx : int;
  payload_tx : int;
  rx_ring_drops : int;
  syn_drops : int;
  rst_tx : int;
  conns_established : int;
  conns_failed : int;
}

val stats : t -> stats
