(* Handles are (shard stack, stack sock) pairs, so the same code serves a
   single stack and the sharded mTCP facade. *)

type conn = { c_stack : Stack.t; c_sock : Stack.sock }

type listener = {
  mutable l_open : bool;
  mutable parts : (Stack.t * Stack.sock) list;
}

type t = {
  name : string;
  engine : Sim.Engine.t;
  add_ip : Addr.ip -> unit;
  remove_ip : Addr.ip -> unit;
  new_listener :
    addr:Addr.t -> backlog:int -> on_accept:(conn -> peer:Addr.t -> unit) ->
    (listener, Types.err) result;
  close_listener : listener -> unit;
  pause_listener : listener -> unit;
  connect : dst:Addr.t -> k:((conn, Types.err) result -> unit) -> unit;
  send : conn -> Types.payload -> k:((int, Types.err) result -> unit) -> unit;
  recv :
    conn -> max:int -> mode:Types.recv_mode ->
    k:((Types.payload, Types.err) result -> unit) -> unit;
  close_conn : conn -> unit;
  abort_conn : conn -> unit;
  set_conn_handler : conn -> (Types.events -> unit) -> unit;
  conn_events : conn -> Types.events;
  conn_core : conn -> Sim.Cpu.t;
  conn_peer : conn -> Addr.t option;
  conn_local : conn -> Addr.t option;
  conn_error : conn -> Types.err option;
  import_conn : Stack.export -> (conn, Types.err) result;
  default_core : Sim.Cpu.t;
  epoll_wake_cycles : float;
}

let conn_of_sock stack sock = { c_stack = stack; c_sock = sock }

let export_conn c = Stack.export_conn c.c_stack c.c_sock

let conn_stack c = c.c_stack

let conn_sock c = c.c_sock

(* Eagerly accept everything a listener part produces. *)
let rec accept_pump l stack sock ~on_accept =
  Stack.accept stack sock ~k:(fun r ->
      match r with
      | Error _ -> () (* listener closed *)
      | Ok cs ->
          let peer =
            match Stack.peer_addr stack cs with Some a -> a | None -> Addr.make 0 0
          in
          on_accept { c_stack = stack; c_sock = cs } ~peer;
          if l.l_open then accept_pump l stack sock ~on_accept)

let listener_on_group stacks ~addr ~backlog ~on_accept =
  let l = { l_open = true; parts = [] } in
  let rec setup = function
    | [] ->
        List.iter
          (fun (stack, sock) ->
            (* Parallel accept chains, like one thread per core. *)
            for _ = 1 to 4 do
              accept_pump l stack sock ~on_accept
            done)
          l.parts;
        Ok l
    | stack :: rest -> (
        let s = Stack.socket stack in
        match Stack.bind stack s addr with
        | Error e ->
            List.iter (fun (st, so) -> Stack.close st so) l.parts;
            Error e
        | Ok () -> (
            match Stack.listen stack s ~backlog with
            | Error e ->
                List.iter (fun (st, so) -> Stack.close st so) l.parts;
                Error e
            | Ok () ->
                l.parts <- (stack, s) :: l.parts;
                setup rest))
  in
  setup stacks

let listener_on stack ~addr ~backlog ~on_accept =
  listener_on_group [ stack ] ~addr ~backlog ~on_accept

let close_listener_handle l =
  if l.l_open then begin
    l.l_open <- false;
    List.iter (fun (stack, sock) -> Stack.close stack sock) l.parts
  end

let pause_listener_handle l =
  if l.l_open then
    List.iter (fun (stack, sock) -> Stack.pause_listener stack sock) l.parts

let of_stack stack =
  {
    name = Stack.name stack;
    engine = Stack.engine stack;
    add_ip = Stack.add_ip stack;
    remove_ip = Stack.remove_ip stack;
    new_listener = (fun ~addr ~backlog ~on_accept -> listener_on stack ~addr ~backlog ~on_accept);
    close_listener = close_listener_handle;
    pause_listener = pause_listener_handle;
    connect =
      (fun ~dst ~k ->
        let s = Stack.socket stack in
        Stack.connect stack s dst ~k:(fun r ->
            match r with
            | Ok () -> k (Ok { c_stack = stack; c_sock = s })
            | Error e -> k (Error e)));
    send = (fun c payload ~k -> Stack.send c.c_stack c.c_sock payload ~k);
    recv = (fun c ~max ~mode ~k -> Stack.recv c.c_stack c.c_sock ~max ~mode ~k);
    close_conn = (fun c -> Stack.close c.c_stack c.c_sock);
    abort_conn = (fun c -> Stack.abort c.c_stack c.c_sock);
    set_conn_handler = (fun c h -> Stack.set_event_handler c.c_stack c.c_sock h);
    conn_events = (fun c -> Stack.sock_events c.c_stack c.c_sock);
    conn_core = (fun c -> Stack.sock_core c.c_stack c.c_sock);
    conn_peer = (fun c -> Stack.peer_addr c.c_stack c.c_sock);
    conn_local = (fun c -> Stack.local_addr c.c_stack c.c_sock);
    conn_error = (fun c -> Stack.sock_error c.c_stack c.c_sock);
    import_conn =
      (fun ex ->
        match Stack.import_conn stack ex with
        | Ok s -> Ok { c_stack = stack; c_sock = s }
        | Error e -> Error e);
    default_core = Sim.Cpu.Set.core (Stack.cores stack) 0;
    epoll_wake_cycles = (Stack.config stack).Stack.profile.Sim.Cost_profile.epoll_wake;
  }
