(* The protocol-neutral NSM transport boundary. Handles and migration
   payloads are extensible variants: each backend (Tcp_ops, the mTCP
   facade, Homastack) adds its own constructors, so nothing
   protocol-specific appears here. *)

type conn = ..

type listener = ..

type payload = ..

type export = {
  e_proto : string;
  e_flow : Addr.Flow.t;
  e_payload : payload;
}

type semantics = Byte_stream | Message

type caps = { semantics : semantics; has_backlog : bool }

type t = {
  name : string;
  proto : string;
  caps : caps;
  engine : Sim.Engine.t;
  add_ip : Addr.ip -> unit;
  remove_ip : Addr.ip -> unit;
  new_listener :
    addr:Addr.t -> backlog:int -> on_accept:(conn -> peer:Addr.t -> unit) ->
    (listener, Types.err) result;
  close_listener : listener -> unit;
  quiesce_listener : listener -> unit;
  connect : dst:Addr.t -> k:((conn, Types.err) result -> unit) -> unit;
  send : conn -> Types.payload -> k:((int, Types.err) result -> unit) -> unit;
  recv :
    conn -> max:int -> mode:Types.recv_mode ->
    k:((Types.payload, Types.err) result -> unit) -> unit;
  close_conn : conn -> unit;
  abort_conn : conn -> unit;
  set_conn_handler : conn -> (Types.events -> unit) -> unit;
  conn_events : conn -> Types.events;
  conn_core : conn -> Sim.Cpu.t;
  conn_peer : conn -> Addr.t option;
  conn_local : conn -> Addr.t option;
  conn_error : conn -> Types.err option;
  export_conn : conn -> (export, Types.err) result;
  import_conn : export -> (conn, Types.err) result;
  default_core : Sim.Cpu.t;
  wake_cycles : float;
}
