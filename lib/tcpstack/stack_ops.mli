(** Event-driven backend interface over a network stack.

    NetKernel's ServiceLib "translates NQEs to network stack APIs" (paper
    §5) and must work with different stacks — the kernel stack, mTCP, or a
    shared-memory path. This record is that boundary: connection-oriented,
    callback-based, with eager accept (the NSM accepts and announces new
    connections immediately, per the paper's pipelining optimization §4.6).

    [of_stack] adapts a single {!Stack}; {!Mtcpstack.Mtcp.ops} adapts the
    sharded per-core mTCP facade. *)

type conn
(** Connection handle. *)

type listener

type t = {
  name : string;
  engine : Sim.Engine.t;
  add_ip : Addr.ip -> unit;
  remove_ip : Addr.ip -> unit;
      (** release an IP (live migration moved its VM off this stack) *)
  new_listener :
    addr:Addr.t -> backlog:int -> on_accept:(conn -> peer:Addr.t -> unit) ->
    (listener, Types.err) result;
  close_listener : listener -> unit;
  pause_listener : listener -> unit;
      (** migration quiesce: drop fresh SYNs silently, keep settling
          in-flight handshakes and queued accepts ({!Stack.pause_listener}) *)
  connect : dst:Addr.t -> k:((conn, Types.err) result -> unit) -> unit;
  send : conn -> Types.payload -> k:((int, Types.err) result -> unit) -> unit;
  recv :
    conn -> max:int -> mode:Types.recv_mode ->
    k:((Types.payload, Types.err) result -> unit) -> unit;
  close_conn : conn -> unit;
  abort_conn : conn -> unit;
  set_conn_handler : conn -> (Types.events -> unit) -> unit;
  conn_events : conn -> Types.events;
  conn_core : conn -> Sim.Cpu.t;
  conn_peer : conn -> Addr.t option;
  conn_local : conn -> Addr.t option;
  conn_error : conn -> Types.err option;
  import_conn : Stack.export -> (conn, Types.err) result;
      (** resume a connection exported from another stack (live NSM
          migration); the backend picks which shard hosts it *)
  default_core : Sim.Cpu.t;
  epoll_wake_cycles : float;
}

val of_stack : Stack.t -> t
(** Adapt a single stack instance (used by the kernel-stack NSM). *)

(** {1 Building blocks for composite backends (the mTCP facade)} *)

val conn_of_sock : Stack.t -> Stack.sock -> conn

val listener_on :
  Stack.t -> addr:Addr.t -> backlog:int ->
  on_accept:(conn -> peer:Addr.t -> unit) -> (listener, Types.err) result
(** Bind+listen on one stack and pump accepted connections into
    [on_accept]. *)

val listener_on_group :
  Stack.t list -> addr:Addr.t -> backlog:int ->
  on_accept:(conn -> peer:Addr.t -> unit) -> (listener, Types.err) result
(** Listen on the same address on every shard (SO_REUSEPORT-style). *)

val close_listener_handle : listener -> unit

val pause_listener_handle : listener -> unit

val conn_stack : conn -> Stack.t

val conn_sock : conn -> Stack.sock

val export_conn : conn -> (Stack.export, Types.err) result
(** Quietly detach the connection from whichever stack owns it and return
    the serialized state ({!Stack.export_conn}); works for any backend
    because the handle carries its shard. *)
