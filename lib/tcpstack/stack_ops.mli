(** Event-driven backend interface over a network transport — the
    protocol-neutral NSM boundary.

    NetKernel's ServiceLib "translates NQEs to network stack APIs" (paper
    §5) and must work with different stacks — the kernel TCP stack, mTCP,
    or a message-oriented RPC transport. This record is that boundary:
    connection-oriented, callback-based, with eager accept (the NSM accepts
    and announces new connections immediately, per the paper's pipelining
    optimization §4.6).

    Nothing protocol-specific crosses it. Connection and listener handles
    are extensible variants each backend enlarges privately; migration
    state travels as an opaque {!payload} tagged with the backend's
    protocol id, so ServiceLib and the cluster fabric move connections
    between NSMs without knowing what is inside. {!Tcp_ops.of_stack}
    adapts a single kernel-style {!Stack}; [Mtcpstack.Mtcp.ops] adapts the
    sharded per-core mTCP facade; [Homastack.Homa.ops] adapts the
    receiver-driven RPC transport. *)

type conn = ..
(** Connection handle. Each backend adds its own constructor and only ever
    receives handles it created; passing a foreign handle is a caller bug
    and raises [Invalid_argument]. *)

type listener = ..
(** Listening endpoint handle (possibly spanning several shards). *)

type payload = ..
(** Backend-private serialized connection state carried inside an
    {!export}. Only the protocol that produced a payload can destructure
    it. *)

type export = {
  e_proto : string;  (** protocol id of the backend that produced it *)
  e_flow : Addr.Flow.t;
      (** client → server flow of the connection — enough for any sharded
          backend to steer the import (RSS) without opening the payload *)
  e_payload : payload;
}
(** A serialized connection, as carried across a live NSM migration. *)

type semantics = Byte_stream | Message

type caps = {
  semantics : semantics;
      (** [Byte_stream]: send/recv move an unframed octet stream.
          [Message]: each send is one message and recv never returns bytes
          that cross a message boundary. *)
  has_backlog : bool;
      (** whether listeners queue half-open handshakes (a TCP SYN
          backlog). Backlog-free transports admit connections on first
          contact; the [backlog] argument of [new_listener] is advisory
          for them. *)
}
(** What tenants and the control plane may assume of the transport. *)

type t = {
  name : string;
  proto : string;  (** protocol id stamped into every {!export} *)
  caps : caps;
  engine : Sim.Engine.t;
  add_ip : Addr.ip -> unit;
  remove_ip : Addr.ip -> unit;
      (** release an IP (live migration moved its VM off this backend) *)
  new_listener :
    addr:Addr.t -> backlog:int -> on_accept:(conn -> peer:Addr.t -> unit) ->
    (listener, Types.err) result;
  close_listener : listener -> unit;
  quiesce_listener : listener -> unit;
      (** migration quiesce: silently stop admitting new connections — no
          refusal reaches the peer, so clients retry per their protocol's
          own recovery (TCP retransmits the SYN, an RPC transport resends
          its request) and land on whichever NSM owns the listener after
          the cut. In-flight handshakes and queued accepts keep
          settling. *)
  connect : dst:Addr.t -> k:((conn, Types.err) result -> unit) -> unit;
  send : conn -> Types.payload -> k:((int, Types.err) result -> unit) -> unit;
  recv :
    conn -> max:int -> mode:Types.recv_mode ->
    k:((Types.payload, Types.err) result -> unit) -> unit;
  close_conn : conn -> unit;
  abort_conn : conn -> unit;
  set_conn_handler : conn -> (Types.events -> unit) -> unit;
  conn_events : conn -> Types.events;
  conn_core : conn -> Sim.Cpu.t;
  conn_peer : conn -> Addr.t option;
  conn_local : conn -> Addr.t option;
  conn_error : conn -> Types.err option;
  export_conn : conn -> (export, Types.err) result;
      (** quietly detach the connection from whichever shard owns it and
          serialize it — no parting segment, no callbacks; the content
          channel survives for the importing side *)
  import_conn : export -> (conn, Types.err) result;
      (** resume a connection exported from another backend of the same
          protocol (live NSM migration); the backend picks which shard
          hosts it, and rejects payloads of a foreign protocol with
          [Einval] *)
  default_core : Sim.Cpu.t;
  wake_cycles : float;
      (** what one event-loop wakeup costs on this backend (an epoll wake
          on the kernel stack, a context poll on a user-level stack) —
          charged by ServiceLib and the epoll emulation per delivered
          wake *)
}
