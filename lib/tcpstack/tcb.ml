type state =
  | Syn_sent
  | Syn_rcvd
  | Established
  | Fin_wait_1
  | Fin_wait_2
  | Close_wait
  | Closing
  | Last_ack
  | Time_wait
  | Closed

let state_to_string = function
  | Syn_sent -> "SYN_SENT"
  | Syn_rcvd -> "SYN_RCVD"
  | Established -> "ESTABLISHED"
  | Fin_wait_1 -> "FIN_WAIT_1"
  | Fin_wait_2 -> "FIN_WAIT_2"
  | Close_wait -> "CLOSE_WAIT"
  | Closing -> "CLOSING"
  | Last_ack -> "LAST_ACK"
  | Time_wait -> "TIME_WAIT"
  | Closed -> "CLOSED"

type config = {
  mss : int;
  gso : int;
  rwnd_limit : int;
  sndbuf_limit : int;
  min_rto : float;
  max_rto : float;
  time_wait : float;
  max_syn_retx : int;
  max_data_retx : int;
  nodelay : bool; (* false = Nagle: hold sub-MSS chunks while data is in flight *)
  rwnd_max : int; (* receive-buffer autotuning ceiling (Linux tcp_moderate_rcvbuf) *)
}

let default_config =
  {
    mss = Segment.mss;
    gso = Segment.gso_max;
    rwnd_limit = 256 * 1024;
    sndbuf_limit = 1024 * 1024;
    min_rto = 0.2;
    max_rto = 30.0;
    time_wait = 0.05;
    max_syn_retx = 6;
    max_data_retx = 10;
    nodelay = false;
    rwnd_max = 6 * 1024 * 1024;
  }

type actions = {
  now : unit -> float;
  emit : Segment.t -> unit;
  set_timer : delay:float -> (unit -> unit) -> Sim.Engine.Timer.t;
  cancel_timer : Sim.Engine.Timer.t -> unit;
  on_established : unit -> unit;
  on_readable : unit -> unit;
  on_writable : unit -> unit;
  on_error : Types.err -> unit;
  on_destroy : unit -> unit;
  on_transition : state -> state -> unit;
}

type retx_item = {
  mutable seq : int;
  mutable len : int;
  syn : bool;
  fin : bool;
  mutable retx : int;
}

type t = {
  flow : Addr.Flow.t;
  cfg : config;
  act : actions;
  cc : Cc.t;
  rtt : Rtt_estimator.t;
  (* The fifos belong to the conn-registry channel [restore] is handed — the
     payload bytes migrate with the channel, not the TCB. *)
  write_fifo : Nkutil.Byte_fifo.t; (* nkscope: volatile *)
  read_fifo : Nkutil.Byte_fifo.t; (* nkscope: volatile *)
  mutable state : state;
  mutable iss : int;
  mutable snd_una : int;
  mutable snd_nxt : int;
  mutable snd_wnd : int;
  mutable reasm : Reassembly.t option;
  mutable send_pending : int; (* bytes written by the app, not yet segmented *)
  mutable fin_queued : bool;
  mutable fin_sent : bool;
  retxq : retx_item Queue.t;
  mutable rto_timer : Sim.Engine.Timer.t option;
  mutable rto_backoff : float;
  mutable persist_timer : Sim.Engine.Timer.t option;
  mutable dupacks : int;
  mutable recover : int;
  mutable in_recovery : bool;
  mutable rwnd_limit : int; (* current receive buffer (autotuned up) *)
  mutable recv_ready : int; (* in-order bytes the app has not read yet *)
  mutable fin_received : bool;
  mutable eof_delivered : bool;
  mutable peer_ts : float; (* latest peer timestamp, echoed in our ACKs *)
  mutable last_adv_wnd : int;
  mutable ce_to_echo : bool; (* DCTCP-style: echo CE state on next ACK *)
  mutable retransmissions : int;
  mutable bytes_sent : int;
  mutable bytes_received : int;
  (* A restored copy is live by definition; the source side is detached. *)
  mutable destroyed : bool; (* nkscope: volatile *)
}

let state t = t.state
let flow t = t.flow
let readable_bytes t = t.recv_ready

let eof_pending t = t.fin_received && t.recv_ready = 0 && not t.eof_delivered

let inflight t = Tcp_seq.diff t.snd_nxt t.snd_una

let sndbuf_used t = t.send_pending + inflight t

let sndbuf_available t = Int.max 0 (t.cfg.sndbuf_limit - sndbuf_used t)

let can_send_state t =
  match t.state with
  | Established | Close_wait -> true
  | Syn_sent | Syn_rcvd | Fin_wait_1 | Fin_wait_2 | Closing | Last_ack | Time_wait | Closed
    -> false

let writable t = can_send_state t && sndbuf_available t > 0

let cwnd t = t.cc.Cc.cwnd ()

let retransmissions t = t.retransmissions
let bytes_sent t = t.bytes_sent
let bytes_received t = t.bytes_received

let rwnd_available t =
  let reasm_held = match t.reasm with None -> 0 | Some r -> Reassembly.ooo_bytes r in
  Int.max 0 (t.rwnd_limit - t.recv_ready - reasm_held)

let rcv_nxt t = match t.reasm with None -> 0 | Some r -> Reassembly.next r

let cancel_timer_opt t h =
  match h with
  | None -> ()
  | Some handle -> t.act.cancel_timer handle

(* All state changes funnel through here so the owning stack can observe
   them (Nkmon [Tcp_state] trace events). *)
let set_state t st =
  if t.state <> st then begin
    let old = t.state in
    t.state <- st;
    t.act.on_transition old st
  end

let destroy t =
  if not t.destroyed then begin
    t.destroyed <- true;
    set_state t Closed;
    cancel_timer_opt t t.rto_timer;
    t.rto_timer <- None;
    cancel_timer_opt t t.persist_timer;
    t.persist_timer <- None;
    t.cc.Cc.release ();
    t.act.on_destroy ()
  end

let enter_time_wait t =
  set_state t Time_wait;
  cancel_timer_opt t t.rto_timer;
  t.rto_timer <- None;
  ignore (t.act.set_timer ~delay:t.cfg.time_wait (fun () -> destroy t))

(* ---- Segment emission ------------------------------------------------ *)

let emit_segment t ~seq ~len ~syn ~fin =
  let ack_flag = t.state <> Syn_sent && (t.reasm <> None || syn) in
  let window = rwnd_available t in
  t.last_adv_wnd <- window;
  let ece = t.ce_to_echo in
  let seg =
    Segment.make ~flow:t.flow ~seq ~ack:(rcv_nxt t) ~syn ~ack_flag ~fin ~window ~len
      ~ts:(t.act.now ()) ~ts_echo:t.peer_ts ~ece ()
  in
  if len > 0 then t.bytes_sent <- t.bytes_sent + len;
  t.act.emit seg

let emit_ack t = emit_segment t ~seq:t.snd_nxt ~len:0 ~syn:false ~fin:false

(* ---- Retransmission timer -------------------------------------------- *)

let current_rto t = Float.min t.cfg.max_rto (Rtt_estimator.rto t.rtt *. t.rto_backoff)

let rec arm_rto t =
  cancel_timer_opt t t.rto_timer;
  if Queue.is_empty t.retxq then t.rto_timer <- None
  else t.rto_timer <- Some (t.act.set_timer ~delay:(current_rto t) (fun () -> on_rto t))

and on_rto t =
  t.rto_timer <- None;
  match Queue.peek_opt t.retxq with
  | None -> ()
  | Some item ->
      if Sys.getenv_opt "NKDEBUG" <> None then
        Printf.eprintf "[%.4f] RTO %s seq=%d len=%d retx=%d state=%s cwnd=%d sndwnd=%d inflight=%d pending=%d\n"
          (t.act.now ()) (Format.asprintf "%a" Addr.Flow.pp t.flow) item.seq item.len
          item.retx (state_to_string t.state) (t.cc.Cc.cwnd ()) t.snd_wnd (inflight t)
          t.send_pending;
      item.retx <- item.retx + 1;
      t.retransmissions <- t.retransmissions + 1;
      let too_many =
        if item.syn then item.retx > t.cfg.max_syn_retx else item.retx > t.cfg.max_data_retx
      in
      if too_many then begin
        t.act.on_error Types.Etimedout;
        destroy t
      end
      else begin
        (* Retransmit the head of the queue only (go-back-on-timeout). *)
        let len = Int.min item.len t.cfg.gso in
        emit_segment t ~seq:item.seq ~len ~syn:item.syn ~fin:(item.fin && item.len = 0);
        t.cc.Cc.on_timeout ~now:(t.act.now ());
        t.in_recovery <- false;
        t.dupacks <- 0;
        t.rto_backoff <- Float.min 64.0 (t.rto_backoff *. 2.0);
        arm_rto t
      end

(* ---- Persist (zero-window) timer ------------------------------------- *)

let rec arm_persist t =
  if t.persist_timer = None && t.snd_wnd = 0 && (t.send_pending > 0 || t.fin_queued) then begin
    let delay = Float.max 0.5 (current_rto t) in
    t.persist_timer <-
      Some
        (t.act.set_timer ~delay (fun () ->
             t.persist_timer <- None;
             if t.snd_wnd = 0 && t.send_pending > 0 && can_send_state t then begin
               (* Probe with a single byte beyond the window. *)
               let item = { seq = t.snd_nxt; len = 1; syn = false; fin = false; retx = 0 } in
               Queue.add item t.retxq;
               emit_segment t ~seq:t.snd_nxt ~len:1 ~syn:false ~fin:false;
               t.snd_nxt <- Tcp_seq.add t.snd_nxt 1;
               t.send_pending <- t.send_pending - 1;
               if t.rto_timer = None then arm_rto t
             end;
             arm_persist t))
  end

(* ---- Output ----------------------------------------------------------- *)

let rec try_output t =
  if can_send_state t || ((t.state = Fin_wait_1 || t.state = Last_ack) && not t.fin_sent)
  then begin
    let inflight () = Tcp_seq.diff t.snd_nxt t.snd_una in
    let wnd () = Int.min (t.cc.Cc.cwnd ()) t.snd_wnd in
    let progress = ref false in
    let continue = ref true in
    while !continue && t.send_pending > 0 && wnd () - inflight () > 0 do
      let budget = wnd () - inflight () in
      let chunk = Int.min t.send_pending (Int.min t.cfg.gso budget) in
      if chunk <= 0 then continue := false
      else if
        (* Nagle (RFC 896) extended with TSO autocorking and deferral
           (tcp_tso_should_defer): while data is in flight, hold back until a
           burst of min(gso, window/2) can leave in one chunk — whether the
           small chunk would be limited by the application's pending bytes
           or by the ACK-clocked window budget. Keeps wire chunks large for
           bulk senders; request/response traffic (no data in flight) is
           never delayed. *)
        inflight () > 0
        && (not t.cfg.nodelay)
        && (not t.fin_queued)
        && chunk < Int.min t.cfg.gso (Int.max t.cfg.mss (wnd () / 2))
      then continue := false
      else begin
        let item = { seq = t.snd_nxt; len = chunk; syn = false; fin = false; retx = 0 } in
        Queue.add item t.retxq;
        emit_segment t ~seq:t.snd_nxt ~len:chunk ~syn:false ~fin:false;
        t.snd_nxt <- Tcp_seq.add t.snd_nxt chunk;
        t.send_pending <- t.send_pending - chunk;
        progress := true
      end
    done;
    if t.fin_queued && (not t.fin_sent) && t.send_pending = 0 then begin
      let item = { seq = t.snd_nxt; len = 0; syn = false; fin = true; retx = 0 } in
      Queue.add item t.retxq;
      emit_segment t ~seq:t.snd_nxt ~len:0 ~syn:false ~fin:true;
      t.snd_nxt <- Tcp_seq.add t.snd_nxt 1;
      t.fin_sent <- true;
      progress := true;
      (match t.state with
      | Established | Syn_rcvd -> set_state t Fin_wait_1
      | Close_wait -> set_state t Last_ack
      | Syn_sent | Fin_wait_1 | Fin_wait_2 | Closing | Last_ack | Time_wait | Closed -> ())
    end;
    if !progress && t.rto_timer = None then arm_rto t;
    if t.snd_wnd = 0 && t.send_pending > 0 then arm_persist t
  end

and send_fin_if_needed t = try_output t

(* ---- Construction ----------------------------------------------------- *)

let base ~flow ~cfg ~act ~cc ~write_fifo ~read_fifo ~state ~iss =
  {
    flow;
    cfg;
    act;
    cc;
    rtt = Rtt_estimator.create ~min_rto:cfg.min_rto ~max_rto:cfg.max_rto ();
    write_fifo;
    read_fifo;
    state;
    iss;
    snd_una = iss;
    snd_nxt = iss;
    snd_wnd = 0;
    reasm = None;
    send_pending = 0;
    rwnd_limit = cfg.rwnd_limit;
    fin_queued = false;
    fin_sent = false;
    retxq = Queue.create ();
    rto_timer = None;
    rto_backoff = 1.0;
    persist_timer = None;
    dupacks = 0;
    recover = 0;
    in_recovery = false;
    recv_ready = 0;
    fin_received = false;
    eof_delivered = false;
    peer_ts = -1.0;
    last_adv_wnd = 0;
    ce_to_echo = false;
    retransmissions = 0;
    bytes_sent = 0;
    bytes_received = 0;
    destroyed = false;
  }

let create_active ~flow ~cfg ~act ~cc ~isn ~channel =
  let t =
    base ~flow ~cfg ~act ~cc ~write_fifo:channel.Conn_registry.c2s
      ~read_fifo:channel.Conn_registry.s2c ~state:Syn_sent ~iss:isn
  in
  let item = { seq = isn; len = 0; syn = true; fin = false; retx = 0 } in
  Queue.add item t.retxq;
  emit_segment t ~seq:isn ~len:0 ~syn:true ~fin:false;
  t.snd_nxt <- Tcp_seq.add isn 1;
  arm_rto t;
  t

let create_passive ~flow ~cfg ~act ~cc ~isn ~remote_isn ~remote_ts ~channel =
  let t =
    base ~flow ~cfg ~act ~cc ~write_fifo:channel.Conn_registry.s2c
      ~read_fifo:channel.Conn_registry.c2s ~state:Syn_rcvd ~iss:isn
  in
  t.reasm <- Some (Reassembly.create ~next:(Tcp_seq.add remote_isn 1) ());
  t.peer_ts <- remote_ts;
  let item = { seq = isn; len = 0; syn = true; fin = false; retx = 0 } in
  Queue.add item t.retxq;
  emit_segment t ~seq:isn ~len:0 ~syn:true ~fin:false;
  t.snd_nxt <- Tcp_seq.add isn 1;
  arm_rto t;
  t

(* ---- ACK processing --------------------------------------------------- *)

let pop_acked t ack =
  let rec loop () =
    match Queue.peek_opt t.retxq with
    | None -> ()
    | Some item ->
        let occupied = item.len + (if item.syn then 1 else 0) + if item.fin then 1 else 0 in
        let item_end = Tcp_seq.add item.seq occupied in
        if Tcp_seq.leq item_end ack then begin
          ignore (Queue.pop t.retxq);
          loop ()
        end
        else if Tcp_seq.lt item.seq ack && item.len > 0 then begin
          (* Partial ACK within a data item: shrink it in place. *)
          let covered = Tcp_seq.diff ack item.seq in
          let covered = Int.min covered item.len in
          item.seq <- Tcp_seq.add item.seq covered;
          item.len <- item.len - covered
        end
  in
  loop ()

let fin_acked t = t.fin_sent && Tcp_seq.geq t.snd_una t.snd_nxt

let retransmit_head t =
  match Queue.peek_opt t.retxq with
  | None -> ()
  | Some item ->
      t.retransmissions <- t.retransmissions + 1;
      let len = Int.min item.len t.cfg.gso in
      emit_segment t ~seq:item.seq ~len ~syn:item.syn ~fin:(item.fin && item.len = 0)

let process_ack t (seg : Segment.t) =
  if seg.Segment.ack_flag then begin
    let ack = seg.Segment.ack in
    let had_inflight = inflight t > 0 in
    if Tcp_seq.gt ack t.snd_una && Tcp_seq.leq ack t.snd_nxt then begin
      let acked = Tcp_seq.diff ack t.snd_una in
      t.snd_una <- ack;
      pop_acked t ack;
      t.dupacks <- 0;
      t.rto_backoff <- 1.0;
      let now = t.act.now () in
      let rtt_sample = if seg.Segment.ts_echo >= 0.0 then now -. seg.Segment.ts_echo else -1.0 in
      if rtt_sample >= 0.0 then Rtt_estimator.sample t.rtt rtt_sample;
      if t.in_recovery && Tcp_seq.geq ack t.recover then t.in_recovery <- false
      else if t.in_recovery then retransmit_head t;
      if seg.Segment.ece then t.cc.Cc.on_ecn_ack ~acked ~now
      else t.cc.Cc.on_ack ~acked ~rtt:rtt_sample ~now;
      arm_rto t;
      if fin_acked t then begin
        match t.state with
        | Fin_wait_1 -> set_state t Fin_wait_2
        | Closing -> enter_time_wait t
        | Last_ack -> destroy t
        | Syn_sent | Syn_rcvd | Established | Fin_wait_2 | Close_wait | Time_wait | Closed
          -> ()
      end;
      if writable t then t.act.on_writable ()
    end
    else if
      Tcp_seq.diff ack t.snd_una = 0 && had_inflight && seg.Segment.len = 0
      && (not seg.Segment.syn) && (not seg.Segment.fin)
      && seg.Segment.window = t.snd_wnd (* window updates are not dupacks *)
    then begin
      t.dupacks <- t.dupacks + 1;
      if t.dupacks = 3 && not t.in_recovery then begin
        t.in_recovery <- true;
        t.recover <- t.snd_nxt;
        t.cc.Cc.on_loss ~now:(t.act.now ());
        retransmit_head t
      end
    end;
    t.snd_wnd <- seg.Segment.window;
    if t.snd_wnd > 0 then begin
      cancel_timer_opt t t.persist_timer;
      t.persist_timer <- None
    end
  end

(* ---- Payload and FIN processing --------------------------------------- *)

let process_payload t (seg : Segment.t) =
  match t.reasm with
  | None -> ()
  | Some reasm ->
      if seg.Segment.ts >= 0.0 then t.peer_ts <- Float.max t.peer_ts seg.Segment.ts;
      if seg.Segment.ce then t.ce_to_echo <- true;
      let off =
        Reassembly.offer reasm ~seq:seg.Segment.seq ~len:seg.Segment.len
          ~fin:seg.Segment.fin
      in
      if off.Reassembly.released > 0 then begin
        t.recv_ready <- t.recv_ready + off.Reassembly.released;
        t.bytes_received <- t.bytes_received + off.Reassembly.released;
        (* Receive autotuning: under buffer pressure, grow towards the
           ceiling so a slow-draining receiver does not strangle the
           sender's chunk sizes (Linux tcp_moderate_rcvbuf). *)
        if t.recv_ready > t.rwnd_limit / 2 && t.rwnd_limit < t.cfg.rwnd_max then begin
          t.rwnd_limit <- Int.min t.cfg.rwnd_max (2 * t.rwnd_limit);
          if Sys.getenv_opt "NKDEBUG" <> None then
            Printf.eprintf "[%.4f] autotune %s rwnd->%d\n" (t.act.now ())
              (Format.asprintf "%a" Addr.Flow.pp t.flow)
              t.rwnd_limit
        end
      end;
      if off.Reassembly.fin_reached then begin
        t.fin_received <- true;
        match t.state with
        | Established -> set_state t Close_wait
        | Fin_wait_1 -> if fin_acked t then enter_time_wait t else set_state t Closing
        | Fin_wait_2 -> enter_time_wait t
        | Syn_rcvd -> set_state t Close_wait
        | Syn_sent | Close_wait | Closing | Last_ack | Time_wait | Closed -> ()
      end;
      (* Data and FIN segments are acknowledged immediately. *)
      emit_ack t;
      t.ce_to_echo <- false;
      if off.Reassembly.released > 0 || off.Reassembly.fin_reached then t.act.on_readable ()

(* ---- Input dispatch ---------------------------------------------------- *)

let handle_rst t =
  match t.state with
  | Closed -> ()
  | Time_wait -> destroy t
  | Syn_sent ->
      t.act.on_error Types.Econnrefused;
      destroy t
  | Syn_rcvd | Established | Fin_wait_1 | Fin_wait_2 | Close_wait | Closing | Last_ack ->
      t.act.on_error Types.Econnreset;
      destroy t

let handle_syn_sent t (seg : Segment.t) =
  if seg.Segment.syn && seg.Segment.ack_flag && Tcp_seq.diff seg.Segment.ack t.snd_nxt = 0
  then begin
    t.snd_una <- seg.Segment.ack;
    pop_acked t seg.Segment.ack;
    t.reasm <- Some (Reassembly.create ~next:(Tcp_seq.add seg.Segment.seq 1) ());
    t.peer_ts <- seg.Segment.ts;
    t.snd_wnd <- seg.Segment.window;
    t.rto_backoff <- 1.0;
    if seg.Segment.ts_echo >= 0.0 then
      Rtt_estimator.sample t.rtt (t.act.now () -. seg.Segment.ts_echo);
    set_state t Established;
    arm_rto t;
    emit_ack t;
    t.act.on_established ();
    try_output t
  end

let input t (seg : Segment.t) =
  if not t.destroyed then
    if seg.Segment.rst then handle_rst t
    else begin
      match t.state with
      | Closed -> ()
      | Syn_sent -> handle_syn_sent t seg
      | Time_wait ->
          (* Re-ACK whatever arrives (e.g. a retransmitted FIN). *)
          if seg.Segment.len > 0 || seg.Segment.fin then emit_ack t
      | Syn_rcvd | Established | Fin_wait_1 | Fin_wait_2 | Close_wait | Closing | Last_ack
        ->
          if seg.Segment.syn then begin
            (* Retransmitted SYN: re-send the SYN-ACK while handshaking,
               otherwise challenge-ACK (RFC 5961 style). *)
            if t.state = Syn_rcvd then retransmit_head t else emit_ack t
          end
          else begin
            if
              t.state = Syn_rcvd && seg.Segment.ack_flag
              && Tcp_seq.geq seg.Segment.ack (Tcp_seq.add t.iss 1)
            then begin
              set_state t Established;
              t.rto_backoff <- 1.0;
              t.act.on_established ()
            end;
            process_ack t seg;
            if not t.destroyed then begin
              if seg.Segment.len > 0 || seg.Segment.fin then process_payload t seg
              else if seg.Segment.ts >= 0.0 && seg.Segment.len = 0 then
                (* keep the freshest peer timestamp for our next echo *)
                t.peer_ts <- Float.max t.peer_ts seg.Segment.ts;
              try_output t
            end
          end
    end

(* ---- Application interface --------------------------------------------- *)

let write t payload =
  (* A detached TCB (migrated away) shares its fifo with the live copy:
     late application calls must not touch the stream. *)
  if t.destroyed || not (can_send_state t) then 0
  else begin
    let len = Types.payload_len payload in
    let accept = Int.min len (sndbuf_available t) in
    if accept > 0 then begin
      (match payload with
      | Types.Data s ->
          Nkutil.Byte_fifo.write_bytes t.write_fifo (Bytes.unsafe_of_string s) ~pos:0
            ~len:accept
      | Types.Zeros _ -> Nkutil.Byte_fifo.write_zeros t.write_fifo accept);
      t.send_pending <- t.send_pending + accept;
      try_output t
    end;
    accept
  end

let read t ~max ~mode =
  if t.destroyed then None
  else if t.recv_ready > 0 && max > 0 then begin
    let n = Int.min max t.recv_ready in
    let payload =
      match mode with
      | `Copy -> Types.Data (Nkutil.Byte_fifo.read t.read_fifo n)
      | `Discard ->
          let dropped = Nkutil.Byte_fifo.discard t.read_fifo n in
          Types.Zeros dropped
      | `Auto -> (
          (* Take at most one homogeneous run so synthetic filler is never
             materialized and real bytes are never dropped. *)
          match Nkutil.Byte_fifo.next_run t.read_fifo with
          | Some (`Zeros run) ->
              let k = Int.min n run in
              Types.Zeros (Nkutil.Byte_fifo.discard t.read_fifo k)
          | Some (`Data run) -> Types.Data (Nkutil.Byte_fifo.read t.read_fifo (Int.min n run))
          | None -> Types.Data (Nkutil.Byte_fifo.read t.read_fifo n))
    in
    let n = Types.payload_len payload in
    t.recv_ready <- t.recv_ready - n;
    (* Window update: tell the peer when meaningful space opened up. *)
    let opened = rwnd_available t - t.last_adv_wnd in
    if opened >= Int.max (2 * t.cfg.mss) (t.rwnd_limit / 8) then emit_ack t;
    Some payload
  end
  else if eof_pending t then begin
    t.eof_delivered <- true;
    Some (match mode with `Copy | `Auto -> Types.Data "" | `Discard -> Types.Zeros 0)
  end
  else None

let close t =
  if t.destroyed then ()
  else
    match t.state with
  | Closed | Time_wait | Fin_wait_1 | Fin_wait_2 | Closing | Last_ack -> ()
  | Syn_sent ->
      (* Nothing established yet: just go away. *)
      destroy t
  | Syn_rcvd | Established | Close_wait ->
      t.fin_queued <- true;
      send_fin_if_needed t

let destroy_quiet t = destroy t

(* ---- Serialization (live NSM migration) -------------------------------- *)

module Snapshot = struct
  type retx = { rs_seq : int; rs_len : int; rs_syn : bool; rs_fin : bool; rs_retx : int }

  type full = {
    s_flow : Addr.Flow.t;
    s_cfg : config;
    s_state : state;
    s_iss : int;
    s_snd_una : int;
    s_snd_nxt : int;
    s_snd_wnd : int;
    s_reasm : Reassembly.snapshot option;
    s_rtt : Rtt_estimator.snapshot;
    s_cc_name : string;
    s_cc_state : (string * float) list;
    s_send_pending : int;
    s_fin_queued : bool;
    s_fin_sent : bool;
    s_retxq : retx list;
    s_rto_armed : bool;
    s_rto_backoff : float;
    s_persist_armed : bool;
    s_dupacks : int;
    s_recover : int;
    s_in_recovery : bool;
    s_rwnd_limit : int;
    s_recv_ready : int;
    s_fin_received : bool;
    s_eof_delivered : bool;
    s_peer_ts : float;
    s_last_adv_wnd : int;
    s_ce_to_echo : bool;
    s_retransmissions : int;
    s_bytes_sent : int;
    s_bytes_received : int;
  }

  type t = full
end

let snapshot t =
  {
    Snapshot.s_flow = t.flow;
    s_cfg = t.cfg;
    s_state = t.state;
    s_iss = t.iss;
    s_snd_una = t.snd_una;
    s_snd_nxt = t.snd_nxt;
    s_snd_wnd = t.snd_wnd;
    s_reasm = Option.map Reassembly.snapshot t.reasm;
    s_rtt = Rtt_estimator.snapshot t.rtt;
    s_cc_name = t.cc.Cc.name;
    s_cc_state = t.cc.Cc.export ();
    s_send_pending = t.send_pending;
    s_fin_queued = t.fin_queued;
    s_fin_sent = t.fin_sent;
    s_retxq =
      List.rev
        (Queue.fold
           (fun acc (i : retx_item) ->
             { Snapshot.rs_seq = i.seq; rs_len = i.len; rs_syn = i.syn; rs_fin = i.fin;
               rs_retx = i.retx }
             :: acc)
           [] t.retxq);
    s_rto_armed = t.rto_timer <> None;
    s_rto_backoff = t.rto_backoff;
    s_persist_armed = t.persist_timer <> None;
    s_dupacks = t.dupacks;
    s_recover = t.recover;
    s_in_recovery = t.in_recovery;
    s_rwnd_limit = t.rwnd_limit;
    s_recv_ready = t.recv_ready;
    s_fin_received = t.fin_received;
    s_eof_delivered = t.eof_delivered;
    s_peer_ts = t.peer_ts;
    s_last_adv_wnd = t.last_adv_wnd;
    s_ce_to_echo = t.ce_to_echo;
    s_retransmissions = t.retransmissions;
    s_bytes_sent = t.bytes_sent;
    s_bytes_received = t.bytes_received;
  }

(* Quiet detach for the source side of a migration: stop all timers and
   release shared CC state without emitting a segment or firing any
   callback — the connection lives on elsewhere, so the usual destroy
   notifications would be lies. *)
let detach t =
  if not t.destroyed then begin
    t.destroyed <- true;
    cancel_timer_opt t t.rto_timer;
    t.rto_timer <- None;
    cancel_timer_opt t t.persist_timer;
    t.persist_timer <- None;
    t.cc.Cc.release ()
  end

let restore ~act ~cc ~channel ~role (s : Snapshot.t) =
  if String.equal cc.Cc.name s.Snapshot.s_cc_name then cc.Cc.import s.Snapshot.s_cc_state;
  let write_fifo, read_fifo =
    match role with
    | `Client -> (channel.Conn_registry.c2s, channel.Conn_registry.s2c)
    | `Server -> (channel.Conn_registry.s2c, channel.Conn_registry.c2s)
  in
  let t =
    {
      flow = s.Snapshot.s_flow;
      cfg = s.Snapshot.s_cfg;
      act;
      cc;
      rtt = Rtt_estimator.restore s.Snapshot.s_rtt;
      write_fifo;
      read_fifo;
      state = s.Snapshot.s_state;
      iss = s.Snapshot.s_iss;
      snd_una = s.Snapshot.s_snd_una;
      snd_nxt = s.Snapshot.s_snd_nxt;
      snd_wnd = s.Snapshot.s_snd_wnd;
      reasm = Option.map Reassembly.restore s.Snapshot.s_reasm;
      send_pending = s.Snapshot.s_send_pending;
      fin_queued = s.Snapshot.s_fin_queued;
      fin_sent = s.Snapshot.s_fin_sent;
      retxq = Queue.create ();
      rto_timer = None;
      rto_backoff = s.Snapshot.s_rto_backoff;
      persist_timer = None;
      dupacks = s.Snapshot.s_dupacks;
      recover = s.Snapshot.s_recover;
      in_recovery = s.Snapshot.s_in_recovery;
      rwnd_limit = s.Snapshot.s_rwnd_limit;
      recv_ready = s.Snapshot.s_recv_ready;
      fin_received = s.Snapshot.s_fin_received;
      eof_delivered = s.Snapshot.s_eof_delivered;
      peer_ts = s.Snapshot.s_peer_ts;
      last_adv_wnd = s.Snapshot.s_last_adv_wnd;
      ce_to_echo = s.Snapshot.s_ce_to_echo;
      retransmissions = s.Snapshot.s_retransmissions;
      bytes_sent = s.Snapshot.s_bytes_sent;
      bytes_received = s.Snapshot.s_bytes_received;
      destroyed = false;
    }
  in
  List.iter
    (fun (r : Snapshot.retx) ->
      Queue.add
        { seq = r.Snapshot.rs_seq; len = r.rs_len; syn = r.rs_syn; fin = r.rs_fin;
          retx = r.rs_retx }
        t.retxq)
    s.Snapshot.s_retxq;
  (match t.state with
  | Time_wait ->
      (* The residual 2*MSL dwell restarts from scratch; it only delays the
         TCB's disappearance, never its behaviour. *)
      ignore (t.act.set_timer ~delay:t.cfg.time_wait (fun () -> destroy t))
  | Syn_sent | Syn_rcvd | Established | Fin_wait_1 | Fin_wait_2 | Close_wait | Closing
  | Last_ack | Closed ->
      if s.Snapshot.s_rto_armed then arm_rto t);
  if s.Snapshot.s_persist_armed then arm_persist t;
  t

let abort t =
  if not t.destroyed then begin
    let seg =
      Segment.make ~flow:t.flow ~seq:t.snd_nxt ~ack:(rcv_nxt t) ~rst:true ~ack_flag:true ()
    in
    t.act.emit seg;
    destroy t
  end
