(** TCP connection control block.

    Full connection state machine (RFC 793 states minus LISTEN, which lives
    in {!Stack}): three-way handshake with SYN retransmission and
    exponential backoff, sliding-window data transfer with GSO-sized
    segments, flow control against the peer's advertised window,
    fast retransmit on three duplicate ACKs with NewReno-style recovery,
    RTO retransmission with backoff, zero-window persist probing, delayed
    FIN/teardown handshake, TIME_WAIT, and RST handling.

    The TCB is transport-agnostic about its environment: the owning stack
    injects an {!actions} record for time, segment emission, timers and
    socket-event callbacks, which is also how CPU costs get charged (the
    stack charges its cores in [emit] and before [input]). *)

type state =
  | Syn_sent
  | Syn_rcvd
  | Established
  | Fin_wait_1
  | Fin_wait_2
  | Close_wait
  | Closing
  | Last_ack
  | Time_wait
  | Closed

val state_to_string : state -> string

type config = {
  mss : int;
  gso : int;  (** largest segment payload handed to the NIC at once *)
  rwnd_limit : int;  (** receive buffer size (drives the advertised window) *)
  sndbuf_limit : int;
  min_rto : float;
  max_rto : float;
  time_wait : float;  (** 2*MSL residence before the TCB is destroyed *)
  max_syn_retx : int;
  max_data_retx : int;
  nodelay : bool;
      (** [false] (default) = Nagle's algorithm: sub-MSS chunks wait while
          data is in flight, so small writes coalesce *)
  rwnd_max : int;
      (** autotuning ceiling for the receive buffer (tcp_moderate_rcvbuf);
          set equal to [rwnd_limit] to disable autotuning *)
}

val default_config : config

type actions = {
  now : unit -> float;
  emit : Segment.t -> unit;  (** hand a segment to the stack's TX path *)
  set_timer : delay:float -> (unit -> unit) -> Sim.Engine.Timer.t;
  cancel_timer : Sim.Engine.Timer.t -> unit;
  on_established : unit -> unit;
  on_readable : unit -> unit;  (** new data or EOF became readable *)
  on_writable : unit -> unit;  (** send-buffer space was freed *)
  on_error : Types.err -> unit;  (** connection failed (reset/timeout) *)
  on_destroy : unit -> unit;  (** TCB left the demux; drop references *)
  on_transition : state -> state -> unit;
      (** observes every [old -> new] state change (Nkmon tracing) *)
}

type t

(** {1 Construction} *)

val create_active :
  flow:Addr.Flow.t ->
  cfg:config ->
  act:actions ->
  cc:Cc.t ->
  isn:int ->
  channel:Conn_registry.channel ->
  t
(** Client side: builds the TCB and sends the SYN. [flow] is local → remote;
    the channel's [c2s] is this side's write stream. *)

val create_passive :
  flow:Addr.Flow.t ->
  cfg:config ->
  act:actions ->
  cc:Cc.t ->
  isn:int ->
  remote_isn:int ->
  remote_ts:float ->
  channel:Conn_registry.channel ->
  t
(** Server side, in response to a SYN: [flow] is local → remote, and the
    channel's [s2c] is this side's write stream. Sends the SYN-ACK. *)

(** {1 Wire input} *)

val input : t -> Segment.t -> unit

(** {1 Application interface} *)

val write : t -> Types.payload -> int
(** [write t p] appends as much of [p] as the send buffer accepts and
    starts transmission; returns the number of bytes accepted (0 when the
    buffer is full or the connection cannot send). *)

val read : t -> max:int -> mode:Types.recv_mode -> Types.payload option
(** [read t ~max ~mode] takes up to [max] in-order bytes. [None] when
    nothing is available yet; [Some (Data "")] / [Some (Zeros 0)] signals
    EOF after the peer's FIN drained. *)

val close : t -> unit
(** Graceful close: queue a FIN after pending data. *)

val abort : t -> unit
(** Send RST and destroy immediately. *)

val destroy_quiet : t -> unit
(** Tear the TCB down without emitting anything (e.g. when a TIME_WAIT
    incarnation is replaced by a fresh SYN, RFC 6191 style). *)

(** {1 Serialization (live NSM migration)} *)

(** A complete, concrete image of the control block's mutable state. *)
module Snapshot : sig
  type retx = { rs_seq : int; rs_len : int; rs_syn : bool; rs_fin : bool; rs_retx : int }

  type full = {
    s_flow : Addr.Flow.t;
    s_cfg : config;
    s_state : state;
    s_iss : int;
    s_snd_una : int;
    s_snd_nxt : int;
    s_snd_wnd : int;
    s_reasm : Reassembly.snapshot option;
    s_rtt : Rtt_estimator.snapshot;
    s_cc_name : string;
    s_cc_state : (string * float) list;
    s_send_pending : int;
    s_fin_queued : bool;
    s_fin_sent : bool;
    s_retxq : retx list;
    s_rto_armed : bool;
    s_rto_backoff : float;
    s_persist_armed : bool;
    s_dupacks : int;
    s_recover : int;
    s_in_recovery : bool;
    s_rwnd_limit : int;
    s_recv_ready : int;
    s_fin_received : bool;
    s_eof_delivered : bool;
    s_peer_ts : float;
    s_last_adv_wnd : int;
    s_ce_to_echo : bool;
    s_retransmissions : int;
    s_bytes_sent : int;
    s_bytes_received : int;
  }

  type t = full
end

val snapshot : t -> Snapshot.t
(** Pure read of the full connection state; the TCB keeps running. *)

val detach : t -> unit
(** Quiet source-side teardown after a snapshot has been shipped: cancels
    timers and releases shared CC state without emitting a segment or
    firing [on_destroy]/[on_error] — the connection continues elsewhere. *)

val restore :
  act:actions ->
  cc:Cc.t ->
  channel:Conn_registry.channel ->
  role:[ `Client | `Server ] ->
  Snapshot.t ->
  t
(** Rebuild a TCB from a snapshot on the destination stack. [cc] must be a
    fresh controller from the same factory family; its state is imported
    when the names match. [channel] must be the original content channel
    (from {!Conn_registry.lookup} — registering anew would discard the byte
    streams); [role] says which direction this side writes ([`Client] =
    active opener writes [c2s]). RTO/persist/TIME_WAIT timers are re-armed
    as recorded. *)

(** {1 Observers} *)

val state : t -> state

val flow : t -> Addr.Flow.t

val readable_bytes : t -> int

val eof_pending : t -> bool
(** The peer FIN arrived and all data before it has been read. *)

val sndbuf_available : t -> int

val writable : t -> bool

val inflight : t -> int

val cwnd : t -> int

val retransmissions : t -> int

val bytes_sent : t -> int

val bytes_received : t -> int
