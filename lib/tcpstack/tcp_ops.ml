(* TCP backend for the protocol-neutral {!Stack_ops} boundary. Handles are
   (shard stack, stack sock) pairs, so the same code serves a single stack
   and the sharded mTCP facade. *)

type Stack_ops.conn += Conn of { c_stack : Stack.t; c_sock : Stack.sock }

type group = {
  mutable l_open : bool;
  mutable parts : (Stack.t * Stack.sock) list;
}

type Stack_ops.listener += Listener of group

type Stack_ops.payload += Tcp_state of Stack.export

let proto = "tcp"

let caps = { Stack_ops.semantics = Stack_ops.Byte_stream; has_backlog = true }

let conn_of_sock stack sock = Conn { c_stack = stack; c_sock = sock }

(* Foreign handles mean a caller wired one backend's handle into another —
   always a bug, never a recoverable condition. *)
let unpack_conn = function
  | Conn c -> (c.c_stack, c.c_sock)
  | _ -> invalid_arg "Tcp_ops: foreign connection handle"

let unpack_listener = function
  | Listener l -> l
  | _ -> invalid_arg "Tcp_ops: foreign listener handle"

let conn_stack c = fst (unpack_conn c)

let conn_sock c = snd (unpack_conn c)

let export_of ex =
  {
    Stack_ops.e_proto = proto;
    e_flow = ex.Stack.e_registry_flow;
    e_payload = Tcp_state ex;
  }

let export_conn c =
  let stack, sock = unpack_conn c in
  match Stack.export_conn stack sock with
  | Ok ex -> Ok (export_of ex)
  | Error e -> Error e

let unpack_export (x : Stack_ops.export) =
  match x.Stack_ops.e_payload with
  | Tcp_state ex -> Ok ex
  | _ -> Error Types.Einval

(* Eagerly accept everything a listener part produces. *)
let rec accept_pump l stack sock ~on_accept =
  Stack.accept stack sock ~k:(fun r ->
      match r with
      | Error _ -> () (* listener closed *)
      | Ok cs ->
          let peer =
            match Stack.peer_addr stack cs with Some a -> a | None -> Addr.make 0 0
          in
          on_accept (conn_of_sock stack cs) ~peer;
          if l.l_open then accept_pump l stack sock ~on_accept)

let listener_on_group stacks ~addr ~backlog ~on_accept =
  let l = { l_open = true; parts = [] } in
  let rec setup = function
    | [] ->
        List.iter
          (fun (stack, sock) ->
            (* Parallel accept chains, like one thread per core. *)
            for _ = 1 to 4 do
              accept_pump l stack sock ~on_accept
            done)
          l.parts;
        Ok (Listener l)
    | stack :: rest -> (
        let s = Stack.socket stack in
        match Stack.bind stack s addr with
        | Error e ->
            List.iter (fun (st, so) -> Stack.close st so) l.parts;
            Error e
        | Ok () -> (
            match Stack.listen stack s ~backlog with
            | Error e ->
                List.iter (fun (st, so) -> Stack.close st so) l.parts;
                Error e
            | Ok () ->
                l.parts <- (stack, s) :: l.parts;
                setup rest))
  in
  setup stacks

let listener_on stack ~addr ~backlog ~on_accept =
  listener_on_group [ stack ] ~addr ~backlog ~on_accept

let close_listener_handle h =
  let l = unpack_listener h in
  if l.l_open then begin
    l.l_open <- false;
    List.iter (fun (stack, sock) -> Stack.close stack sock) l.parts
  end

let quiesce_listener_handle h =
  let l = unpack_listener h in
  if l.l_open then
    List.iter (fun (stack, sock) -> Stack.pause_listener stack sock) l.parts

let of_stack stack =
  {
    Stack_ops.name = Stack.name stack;
    proto;
    caps;
    engine = Stack.engine stack;
    add_ip = Stack.add_ip stack;
    remove_ip = Stack.remove_ip stack;
    new_listener = (fun ~addr ~backlog ~on_accept -> listener_on stack ~addr ~backlog ~on_accept);
    close_listener = close_listener_handle;
    quiesce_listener = quiesce_listener_handle;
    connect =
      (fun ~dst ~k ->
        let s = Stack.socket stack in
        Stack.connect stack s dst ~k:(fun r ->
            match r with
            | Ok () -> k (Ok (conn_of_sock stack s))
            | Error e -> k (Error e)));
    send =
      (fun c payload ~k ->
        let stack, sock = unpack_conn c in
        Stack.send stack sock payload ~k);
    recv =
      (fun c ~max ~mode ~k ->
        let stack, sock = unpack_conn c in
        Stack.recv stack sock ~max ~mode ~k);
    close_conn =
      (fun c ->
        let stack, sock = unpack_conn c in
        Stack.close stack sock);
    abort_conn =
      (fun c ->
        let stack, sock = unpack_conn c in
        Stack.abort stack sock);
    set_conn_handler =
      (fun c h ->
        let stack, sock = unpack_conn c in
        Stack.set_event_handler stack sock h);
    conn_events =
      (fun c ->
        let stack, sock = unpack_conn c in
        Stack.sock_events stack sock);
    conn_core =
      (fun c ->
        let stack, sock = unpack_conn c in
        Stack.sock_core stack sock);
    conn_peer =
      (fun c ->
        let stack, sock = unpack_conn c in
        Stack.peer_addr stack sock);
    conn_local =
      (fun c ->
        let stack, sock = unpack_conn c in
        Stack.local_addr stack sock);
    conn_error =
      (fun c ->
        let stack, sock = unpack_conn c in
        Stack.sock_error stack sock);
    export_conn;
    import_conn =
      (fun x ->
        match unpack_export x with
        | Error e -> Error e
        | Ok ex -> (
            match Stack.import_conn stack ex with
            | Ok s -> Ok (conn_of_sock stack s)
            | Error e -> Error e));
    default_core = Sim.Cpu.Set.core (Stack.cores stack) 0;
    wake_cycles = (Stack.config stack).Stack.profile.Sim.Cost_profile.epoll_wake;
  }
