(** TCP backend for the protocol-neutral {!Stack_ops} boundary.

    [of_stack] adapts a single {!Stack} (the kernel-stack NSM); the
    building blocks below let composite backends — the sharded mTCP facade
    — assemble their own {!Stack_ops.t} from the same pieces. *)

type Stack_ops.conn += Conn of { c_stack : Stack.t; c_sock : Stack.sock }

type group
(** Listener spanning one or more stack shards. *)

type Stack_ops.listener += Listener of group

type Stack_ops.payload += Tcp_state of Stack.export
(** The TCP migration payload: a full {!Stack.export} (TCB snapshot plus
    content-channel key and vswitch registrations). *)

val proto : string
(** ["tcp"]. *)

val caps : Stack_ops.caps
(** Byte-stream semantics, listener backlog present. *)

val of_stack : Stack.t -> Stack_ops.t
(** Adapt a single stack instance (used by the kernel-stack NSM). *)

(** {1 Building blocks for composite backends (the mTCP facade)} *)

val conn_of_sock : Stack.t -> Stack.sock -> Stack_ops.conn

val listener_on :
  Stack.t -> addr:Addr.t -> backlog:int ->
  on_accept:(Stack_ops.conn -> peer:Addr.t -> unit) ->
  (Stack_ops.listener, Types.err) result
(** Bind+listen on one stack and pump accepted connections into
    [on_accept]. *)

val listener_on_group :
  Stack.t list -> addr:Addr.t -> backlog:int ->
  on_accept:(Stack_ops.conn -> peer:Addr.t -> unit) ->
  (Stack_ops.listener, Types.err) result
(** Listen on the same address on every shard (SO_REUSEPORT-style). *)

val close_listener_handle : Stack_ops.listener -> unit

val quiesce_listener_handle : Stack_ops.listener -> unit
(** Stop admitting fresh connections on every part ({!Stack.pause_listener}:
    new SYNs drop silently, queued accepts keep settling). *)

val conn_stack : Stack_ops.conn -> Stack.t

val conn_sock : Stack_ops.conn -> Stack.sock

val export_of : Stack.export -> Stack_ops.export
(** Wrap a stack export in the neutral envelope (proto ["tcp"], steering
    flow = the registry's client → server flow). *)

val export_conn : Stack_ops.conn -> (Stack_ops.export, Types.err) result
(** Quietly detach the connection from whichever stack owns it and return
    the serialized state ({!Stack.export_conn}); works for any TCP backend
    because the handle carries its shard. *)

val unpack_export : Stack_ops.export -> (Stack.export, Types.err) result
(** [Einval] unless the payload is {!Tcp_state}. *)
