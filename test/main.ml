let () =
  Alcotest.run "netkernel"
    [
      ("nkutil", Test_nkutil.tests);
      ("nkmon", Test_nkmon.tests);
      ("sim", Test_sim.tests);
      ("net-elements", Test_net.tests);
      ("tcp-units", Test_tcp_units.tests);
      ("tcp-integration", Test_tcp.tests);
      ("http", Test_http.tests);
      ("apps", Test_apps.tests);
      ("nqe-hugepages", Test_nqe.tests);
      ("coreengine", Test_coreengine.tests);
      ("ce-shards", Test_ce_shards.tests);
      ("stack-units", Test_stack_units.tests);
      ("determinism", Test_determinism.tests);
      ("netkernel-e2e", Test_netkernel.tests);
      ("nk-faults", Test_nk_faults.tests);
      ("extensions", Test_extensions.tests);
      ("nkctl", Test_nkctl.tests);
      ("nkfabric", Test_nkfabric.tests);
      ("nkobs", Test_nkobs.tests);
      ("tcb-roundtrip", Test_tcb_roundtrip.tests);
      ("homastack", Test_homastack.tests);
      ("nkspan", Test_nkspan.tests);
      ("nklint", Test_nklint.tests);
      ("nkscope", Test_nkscope.tests);
    ]
