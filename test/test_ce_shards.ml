(* CoreEngine sharding: a single shard must be bit-identical to the
   pre-sharding engine (oracles below were captured on the single-core
   implementation), multiple shards must preserve application-level results
   while strictly lowering the per-core switching load, and sharded runs
   must stay deterministic. *)

open Nkcore
module E = Sim.Engine
module Types = Tcpstack.Types

let mk_device ~id ~role ~qsets =
  Nk_device.create ~id ~role ~qsets
    ~hugepages:(Hugepages.create ~page_size:4096 ~pages:4 ())
    ()

let encode op ~vm_id ~qset ~sock ?(size = 0) () =
  Nqe.encode (Nqe.make ~op ~vm_id ~qset ~sock ~size ())

(* The direct switching scenario the single-core oracle was captured on:
   one VM device (2 queue sets), two NSM devices, eight Socket NQEs
   round-robined across both NSMs. *)
let run_direct ~n_cores =
  let engine = E.create () in
  let cores =
    Array.init n_cores (fun k -> Sim.Cpu.create engine ~name:(Printf.sprintf "ce%d" k) ())
  in
  let ce = Coreengine.create ~engine ~cores Nk_costs.default in
  let vm = mk_device ~id:1 ~role:Nk_device.Vm_side ~qsets:2 in
  let nsm1 = mk_device ~id:1 ~role:Nk_device.Nsm_side ~qsets:2 in
  let nsm2 = mk_device ~id:2 ~role:Nk_device.Nsm_side ~qsets:2 in
  Coreengine.register_vm ce vm;
  Coreengine.register_nsm ce nsm1;
  Coreengine.register_nsm ce nsm2;
  Coreengine.attach ce ~vm_id:1 ~nsm_ids:[ 1; 2 ];
  for sock = 1 to 8 do
    Nk_device.post vm ~qset:(sock mod 2) `Job
      (encode Nqe.Socket ~vm_id:1 ~qset:(sock mod 2) ~sock ())
  done;
  E.run engine;
  (ce, cores)

(* Captured on the pre-sharding implementation (commit c4c0657). *)
let direct_oracle_dump =
  "vm=1 sock=1 -> nsm=1 qset=1\n\
   vm=1 sock=2 -> nsm=1 qset=0\n\
   vm=1 sock=3 -> nsm=2 qset=1\n\
   vm=1 sock=4 -> nsm=2 qset=0\n\
   vm=1 sock=5 -> nsm=1 qset=1\n\
   vm=1 sock=6 -> nsm=1 qset=0\n\
   vm=1 sock=7 -> nsm=2 qset=1\n\
   vm=1 sock=8 -> nsm=2 qset=0\n"

let single_shard_direct_oracle () =
  let ce, cores = run_direct ~n_cores:1 in
  Alcotest.(check string) "conn table" direct_oracle_dump (Coreengine.dump_conn_table ce);
  let s = Coreengine.stats ce in
  Alcotest.(check int) "switched" 8 s.Coreengine.switched;
  Alcotest.(check int) "sweeps" 1 s.Coreengine.sweeps;
  Alcotest.(check int) "dropped" 0 s.Coreengine.dropped;
  (* 1600.0 = one 8-NQE sweep (120 + 8*170) + the final empty poll (120),
     captured as 0x1.9p+10 on the single-core engine. *)
  Alcotest.(check (float 0.0)) "busy cycles" 1600.0 (Sim.Cpu.busy_cycles cores.(0))

let shard_counts_agree_direct () =
  let dump_at n =
    let ce, cores = run_direct ~n_cores:n in
    let s = Coreengine.stats ce in
    Alcotest.(check int) (Printf.sprintf "switched at %d shards" n) 8 s.Coreengine.switched;
    Alcotest.(check int) (Printf.sprintf "dropped at %d shards" n) 0 s.Coreengine.dropped;
    (* the per-shard counters must decompose the totals *)
    let summed =
      Array.fold_left
        (fun acc (p : Coreengine.stats) -> acc + p.Coreengine.switched)
        0 (Coreengine.shard_stats ce)
    in
    Alcotest.(check int) (Printf.sprintf "shard sum at %d" n) 8 summed;
    (Coreengine.dump_conn_table ce, cores)
  in
  let d1, _ = dump_at 1 in
  let d2, c2 = dump_at 2 in
  let d4, c4 = dump_at 4 in
  Alcotest.(check string) "1 vs 2 shards" d1 d2;
  Alcotest.(check string) "1 vs 4 shards" d1 d4;
  let max_busy cs = Array.fold_left (fun m c -> Float.max m (Sim.Cpu.busy_cycles c)) 0.0 cs in
  Alcotest.(check bool) "2 shards split the load" true (max_busy c2 < 1600.0);
  Alcotest.(check bool) "4 shards split the load" true (max_busy c4 < 1600.0)

(* ---- whole-system oracle ----------------------------------------------- *)

(* The determinism-suite scenario, with the CE shard count as a knob. *)
let run_world ~ce_cores ~seed =
  let tb = Testbed.create ~config:{ Testbed.Config.default with seed } () in
  let hosta = Testbed.add_host tb ~name:"hostA" in
  let hostb = Testbed.add_host tb ~name:"hostB" in
  Host.enable_netkernel ~ce_cores hosta;
  let nsm = Nsm.create_kernel hosta ~name:"nsm" ~vcpus:2 () in
  let vm = Vm.create_nk hosta ~name:"vm" ~vcpus:2 ~ips:[ 10 ] ~nsms:[ nsm ] () in
  let client =
    Vm.create_baseline hostb ~name:"client" ~vcpus:8 ~ips:[ 20; 21 ]
      ~profile:Sim.Cost_profile.ideal ()
  in
  let proto = Nkapps.Proto.Fixed { request = 64; response = 512; keepalive = false } in
  (match
     Nkapps.Epoll_server.start ~engine:tb.Testbed.engine ~api:(Vm.api vm)
       (Nkapps.Epoll_server.config ~proto (Addr.make 10 80))
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "server: %s" (Types.err_to_string e));
  let lg = ref None in
  ignore
    (Sim.Engine.schedule tb.Testbed.engine ~delay:1e-3 (fun () ->
         lg :=
           Some
             (Nkapps.Loadgen.start ~engine:tb.Testbed.engine ~api:(Vm.api client)
                {
                  Nkapps.Loadgen.server = Addr.make 10 80;
                  proto;
                  mode =
                    Nkapps.Loadgen.Closed
                      { concurrency = 32; total = Some 2_000; duration = None };
                  warmup = 0.0;
                })));
  Testbed.run tb ~until:30.0;
  let r = Nkapps.Loadgen.results (Option.get !lg) in
  let ce = Coreengine.stats (Host.coreengine hosta) in
  let shard_busy = Array.map Sim.Cpu.busy_cycles (Host.ce_cores hosta) in
  ( r.Nkapps.Loadgen.completed,
    r.Nkapps.Loadgen.errors,
    r.Nkapps.Loadgen.finished,
    Vm.busy_cycles vm,
    Nsm.busy_cycles nsm,
    ce.Coreengine.switched,
    Sim.Engine.events_executed tb.Testbed.engine,
    shard_busy,
    Nkmon.Registry.to_json (Nkmon.registry tb.Testbed.mon) )

let hex = Printf.sprintf "%h"

let single_shard_world_oracle () =
  (* Captured on the pre-sharding implementation (commit c4c0657), seed
     1234: the sharded engine at ce_cores=1 must reproduce the execution
     bit-for-bit. The [events] count was re-captured twice since: once
     when CoreEngine started eliding same-instant duplicate owner wakes,
     and again when Link moved to lazy in-flight buffer release (no
     per-packet release event unless a transmit hook is installed). Both
     changes remove redundant engine events only, which the unchanged
     finish time / busy cycles / switched counts confirm. *)
  let completed, errors, finished, vm, nsm, switched, events, shard_busy, _ =
    run_world ~ce_cores:1 ~seed:1234
  in
  Alcotest.(check int) "completed" 2000 completed;
  Alcotest.(check int) "errors" 0 errors;
  Alcotest.(check string) "finish time" "0x1.04e4c2fc7c7ccp-6" (hex finished);
  Alcotest.(check string) "vm cycles" "0x1.76c5b80000029p+23" (hex vm);
  Alcotest.(check string) "nsm cycles" "0x1.f9c3f8ff9094ap+25" (hex nsm);
  Alcotest.(check int) "switched" 14006 switched;
  Alcotest.(check int) "events" 179948 events;
  Alcotest.(check int) "one shard core" 1 (Array.length shard_busy)

let multi_shard_world_results () =
  let completed1, errors1, _, _, _, _, _, busy1, _ = run_world ~ce_cores:1 ~seed:1234 in
  let check n =
    let completed, errors, finished, _, _, _, _, busy, _ =
      run_world ~ce_cores:n ~seed:1234
    in
    Alcotest.(check int) (Printf.sprintf "completed at %d shards" n) completed1 completed;
    Alcotest.(check int) (Printf.sprintf "errors at %d shards" n) errors1 errors;
    Alcotest.(check bool) (Printf.sprintf "finished at %d shards" n) true (finished > 0.0);
    Alcotest.(check int) (Printf.sprintf "%d shard cores" n) n (Array.length busy);
    let max_busy = Array.fold_left Float.max 0.0 busy in
    Alcotest.(check bool)
      (Printf.sprintf "max shard busy at %d < single-shard busy" n)
      true
      (max_busy < busy1.(0))
  in
  check 2;
  check 4

let sharded_runs_deterministic () =
  let _, _, f1, v1, _, _, e1, _, m1 = run_world ~ce_cores:2 ~seed:1234 in
  let _, _, f2, v2, _, _, e2, _, m2 = run_world ~ce_cores:2 ~seed:1234 in
  Alcotest.(check (float 0.0)) "finish time (exact)" f1 f2;
  Alcotest.(check (float 0.0)) "vm cycles (exact)" v1 v2;
  Alcotest.(check int) "events executed" e1 e2;
  Alcotest.(check string) "metrics JSON byte-identical" m1 m2

let scale_out_redistributes () =
  (* Scaling a live single-shard engine out mid-run keeps switching correct
     and puts cycles on the new cores. *)
  let tb = Testbed.create ~config:{ Testbed.Config.default with seed = 7 } () in
  let hosta = Testbed.add_host tb ~name:"hostA" in
  let hostb = Testbed.add_host tb ~name:"hostB" in
  let nsm = Nsm.create_kernel hosta ~name:"nsm" ~vcpus:2 () in
  let vm = Vm.create_nk hosta ~name:"vm" ~vcpus:2 ~ips:[ 10 ] ~nsms:[ nsm ] () in
  let client =
    Vm.create_baseline hostb ~name:"client" ~vcpus:8 ~ips:[ 20 ]
      ~profile:Sim.Cost_profile.ideal ()
  in
  let proto = Nkapps.Proto.Fixed { request = 64; response = 512; keepalive = false } in
  (match
     Nkapps.Epoll_server.start ~engine:tb.Testbed.engine ~api:(Vm.api vm)
       (Nkapps.Epoll_server.config ~proto (Addr.make 10 80))
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "server: %s" (Types.err_to_string e));
  let lg = ref None in
  ignore
    (Sim.Engine.schedule tb.Testbed.engine ~delay:1e-3 (fun () ->
         lg :=
           Some
             (Nkapps.Loadgen.start ~engine:tb.Testbed.engine ~api:(Vm.api client)
                {
                  Nkapps.Loadgen.server = Addr.make 10 80;
                  proto;
                  mode =
                    Nkapps.Loadgen.Closed
                      { concurrency = 16; total = Some 1_000; duration = None };
                  warmup = 0.0;
                })));
  (* Grow the engine while traffic is in flight. *)
  ignore
    (Sim.Engine.schedule tb.Testbed.engine ~delay:5e-3 (fun () ->
         Host.scale_ce hosta ~add:1));
  Testbed.run tb ~until:30.0;
  let r = Nkapps.Loadgen.results (Option.get !lg) in
  Alcotest.(check int) "completed" 1_000 r.Nkapps.Loadgen.completed;
  Alcotest.(check int) "errors" 0 r.Nkapps.Loadgen.errors;
  let busy = Array.map Sim.Cpu.busy_cycles (Host.ce_cores hosta) in
  Alcotest.(check int) "two shard cores" 2 (Array.length busy);
  Alcotest.(check bool) "new shard did work" true (busy.(1) > 0.0);
  Alcotest.(check int) "2 shards" 2 (Coreengine.n_shards (Host.coreengine hosta))

let tests =
  [
    Alcotest.test_case "single shard matches pre-shard oracle (direct)" `Quick
      single_shard_direct_oracle;
    Alcotest.test_case "shard counts agree on the connection table" `Quick
      shard_counts_agree_direct;
    Alcotest.test_case "single shard matches pre-shard oracle (world)" `Quick
      single_shard_world_oracle;
    Alcotest.test_case "multi-shard: same results, lower per-shard load" `Quick
      multi_shard_world_results;
    Alcotest.test_case "sharded runs are deterministic" `Quick sharded_runs_deterministic;
    Alcotest.test_case "live scale-out redistributes queue sets" `Quick
      scale_out_redistributes;
  ]
