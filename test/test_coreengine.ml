(* CoreEngine and NK-device unit tests: registration, switching, queue
   selection, connection-table lifecycle, rate limiting at NQE level. *)

open Nkcore
module E = Sim.Engine
module Ring = Nkutil.Spsc_ring

let mk_world () =
  let engine = E.create () in
  let core = Sim.Cpu.create engine ~name:"ce" () in
  let ce = Coreengine.create ~engine ~cores:[| core |] Nk_costs.default in
  (engine, ce)

let mk_device ~id ~role ~qsets =
  Nk_device.create ~id ~role ~qsets
    ~hugepages:(Hugepages.create ~page_size:4096 ~pages:4 ())
    ()

let encode op ~vm_id ~qset ~sock ?(size = 0) () =
  Nqe.encode (Nqe.make ~op ~vm_id ~qset ~sock ~size ())

let vm_to_nsm_switching () =
  let engine, ce = mk_world () in
  let vm = mk_device ~id:1 ~role:Nk_device.Vm_side ~qsets:1 in
  let nsm = mk_device ~id:1 ~role:Nk_device.Nsm_side ~qsets:2 in
  Coreengine.register_vm ce vm;
  Coreengine.register_nsm ce nsm;
  Coreengine.attach ce ~vm_id:1 ~nsm_ids:[ 1 ];
  let woken = ref [] in
  Nk_device.set_kick_owner nsm (fun q -> woken := q :: !woken);
  (* Control op goes to the NSM's job queue; data op to its send queue. *)
  Nk_device.post vm ~qset:0 `Job (encode Nqe.Socket ~vm_id:1 ~qset:0 ~sock:7 ());
  Nk_device.post vm ~qset:0 `Send (encode Nqe.Send ~vm_id:1 ~qset:0 ~sock:7 ~size:100 ());
  E.run engine;
  Alcotest.(check int) "one table entry" 1 (Coreengine.conn_table_size ce);
  Alcotest.(check int) "two switched" 2 (Coreengine.stats ce).Coreengine.switched;
  (* Both NQEs of socket 7 must land in the same queue set. *)
  let qsets_with_job =
    List.filter
      (fun i -> Ring.length (Nk_device.qset nsm i).Queue_set.job > 0)
      [ 0; 1 ]
  in
  let qsets_with_send =
    List.filter
      (fun i -> Ring.length (Nk_device.qset nsm i).Queue_set.send > 0)
      [ 0; 1 ]
  in
  Alcotest.(check int) "job landed once" 1 (List.length qsets_with_job);
  Alcotest.(check bool) "same queue set for the connection" true
    (qsets_with_job = qsets_with_send);
  Alcotest.(check bool) "consumer woken" true (!woken <> [])

let nsm_to_vm_completion () =
  let engine, ce = mk_world () in
  let vm = mk_device ~id:2 ~role:Nk_device.Vm_side ~qsets:2 in
  let nsm = mk_device ~id:3 ~role:Nk_device.Nsm_side ~qsets:1 in
  Coreengine.register_vm ce vm;
  Coreengine.register_nsm ce nsm;
  Coreengine.attach ce ~vm_id:2 ~nsm_ids:[ 3 ];
  (* NSM announces an accepted connection (unassigned queue set) and then a
     data event for it. *)
  Nk_device.post nsm ~qset:0 `Receive
    (Nqe.encode
       (Nqe.make ~op:Nqe.Ev_accept ~vm_id:2 ~qset:Nqe.qset_unassigned ~sock:11
          ~size:(Nqe.nsm_sock_bit lor 1) ()));
  E.run engine;
  Alcotest.(check int) "accept created a table entry" 1 (Coreengine.conn_table_size ce);
  let receive_total =
    Ring.length (Nk_device.qset vm 0).Queue_set.receive
    + Ring.length (Nk_device.qset vm 1).Queue_set.receive
  in
  Alcotest.(check int) "delivered on a receive queue" 1 receive_total;
  (* The delivered NQE's qset byte was completed by the CoreEngine. *)
  let raw =
    match
      ( Ring.pop (Nk_device.qset vm 0).Queue_set.receive,
        Ring.pop (Nk_device.qset vm 1).Queue_set.receive )
    with
    | Some r, None | None, Some r -> r
    | _ -> Alcotest.fail "expected exactly one NQE"
  in
  match Nqe.decode raw with
  | Ok d ->
      if d.Nqe.qset >= 2 then Alcotest.failf "qset not completed: %d" d.Nqe.qset
  | Error e -> Alcotest.fail e

let close_clears_table () =
  let engine, ce = mk_world () in
  let vm = mk_device ~id:1 ~role:Nk_device.Vm_side ~qsets:1 in
  let nsm = mk_device ~id:1 ~role:Nk_device.Nsm_side ~qsets:1 in
  Coreengine.register_vm ce vm;
  Coreengine.register_nsm ce nsm;
  Coreengine.attach ce ~vm_id:1 ~nsm_ids:[ 1 ];
  Nk_device.post vm ~qset:0 `Job (encode Nqe.Socket ~vm_id:1 ~qset:0 ~sock:9 ());
  E.run engine;
  Alcotest.(check int) "entry exists" 1 (Coreengine.conn_table_size ce);
  Nk_device.post vm ~qset:0 `Job (encode Nqe.Close ~vm_id:1 ~qset:0 ~sock:9 ());
  E.run engine;
  Alcotest.(check int) "close removed the entry" 0 (Coreengine.conn_table_size ce)

let round_robin_across_nsms () =
  let engine, ce = mk_world () in
  let vm = mk_device ~id:1 ~role:Nk_device.Vm_side ~qsets:1 in
  let nsm1 = mk_device ~id:1 ~role:Nk_device.Nsm_side ~qsets:1 in
  let nsm2 = mk_device ~id:2 ~role:Nk_device.Nsm_side ~qsets:1 in
  Coreengine.register_vm ce vm;
  Coreengine.register_nsm ce nsm1;
  Coreengine.register_nsm ce nsm2;
  Coreengine.attach ce ~vm_id:1 ~nsm_ids:[ 1; 2 ];
  for sock = 1 to 4 do
    Nk_device.post vm ~qset:0 `Job (encode Nqe.Socket ~vm_id:1 ~qset:0 ~sock ())
  done;
  E.run engine;
  let jobs d = Ring.length (Nk_device.qset d 0).Queue_set.job in
  Alcotest.(check int) "nsm1 got half" 2 (jobs nsm1);
  Alcotest.(check int) "nsm2 got half" 2 (jobs nsm2)

let rate_limit_defers_sends () =
  let engine, ce = mk_world () in
  let vm = mk_device ~id:1 ~role:Nk_device.Vm_side ~qsets:1 in
  let nsm = mk_device ~id:1 ~role:Nk_device.Nsm_side ~qsets:1 in
  Coreengine.register_vm ce vm;
  Coreengine.register_nsm ce nsm;
  Coreengine.attach ce ~vm_id:1 ~nsm_ids:[ 1 ];
  (* 1000 B/s with a 1000 B burst: the first send passes, the second waits
     ~1 s for tokens. *)
  Coreengine.set_rate_limit ce ~vm_id:1 ~bytes_per_sec:1000.0 ~burst:1000.0;
  Nk_device.post vm ~qset:0 `Send (encode Nqe.Send ~vm_id:1 ~qset:0 ~sock:5 ~size:1000 ());
  Nk_device.post vm ~qset:0 `Send (encode Nqe.Send ~vm_id:1 ~qset:0 ~sock:5 ~size:1000 ());
  E.run engine ~until:0.5;
  Alcotest.(check int) "only first send through at 0.5s" 1
    (Ring.length (Nk_device.qset nsm 0).Queue_set.send);
  E.run engine ~until:2.0;
  Alcotest.(check int) "second released once tokens accrue" 2
    (Ring.length (Nk_device.qset nsm 0).Queue_set.send);
  Alcotest.(check bool) "deferral counted" true
    ((Coreengine.stats ce).Coreengine.rate_deferred >= 1)

let control_not_rate_limited () =
  let engine, ce = mk_world () in
  let vm = mk_device ~id:1 ~role:Nk_device.Vm_side ~qsets:1 in
  let nsm = mk_device ~id:1 ~role:Nk_device.Nsm_side ~qsets:1 in
  Coreengine.register_vm ce vm;
  Coreengine.register_nsm ce nsm;
  Coreengine.attach ce ~vm_id:1 ~nsm_ids:[ 1 ];
  Coreengine.set_rate_limit ce ~vm_id:1 ~bytes_per_sec:1.0 ~burst:1.0;
  Nk_device.post vm ~qset:0 `Job (encode Nqe.Socket ~vm_id:1 ~qset:0 ~sock:5 ());
  E.run engine ~until:0.01;
  Alcotest.(check int) "control op passes a strangled bucket" 1
    (Ring.length (Nk_device.qset nsm 0).Queue_set.job)

let device_overflow_backpressure () =
  let dev =
    Nk_device.create ~id:1 ~role:Nk_device.Vm_side ~qsets:1 ~capacity:2
      ~hugepages:(Hugepages.create ~page_size:4096 ~pages:1 ())
      ()
  in
  for sock = 1 to 5 do
    Nk_device.post dev ~qset:0 `Job (encode Nqe.Socket ~vm_id:1 ~qset:0 ~sock ())
  done;
  (* capacity 2, so three spill to the overflow; nothing is lost *)
  Alcotest.(check int) "pending counts ring + overflow" 5
    (Nk_device.outbound_pending dev ~qset:0);
  let s = Nk_device.qset dev 0 in
  ignore (Ring.pop s.Queue_set.job);
  ignore (Ring.pop s.Queue_set.job);
  Nk_device.flush_overflow dev;
  Alcotest.(check int) "overflow refills the ring" 2 (Ring.length s.Queue_set.job);
  Alcotest.(check int) "still nothing lost" 3 (Nk_device.outbound_pending dev ~qset:0)

let forget_vm_routes_edge_cases () =
  let engine = E.create () in
  let core = Sim.Cpu.create engine ~name:"ce" () in
  let mon = Nkmon.create ~trace_enabled:true ~now:(fun () -> E.now engine) () in
  let ce = Coreengine.create ~engine ~cores:[| core |] ~mon Nk_costs.default in
  let vm = mk_device ~id:1 ~role:Nk_device.Vm_side ~qsets:1 in
  let nsm = mk_device ~id:1 ~role:Nk_device.Nsm_side ~qsets:1 in
  Coreengine.register_vm ce vm;
  Coreengine.register_nsm ce nsm;
  Coreengine.attach ce ~vm_id:1 ~nsm_ids:[ 1 ];
  Nk_device.post vm ~qset:0 `Job (encode Nqe.Socket ~vm_id:1 ~qset:0 ~sock:7 ());
  E.run engine;
  Alcotest.(check int) "one route installed" 1 (Coreengine.conn_table_size ce);
  let traced () = Nkmon.Trace.recorded (Nkmon.trace mon) in
  let dump = Coreengine.dump_conn_table ce in
  let before = traced () in
  (* No routes match: both calls are complete no-ops — no drops, no table
     churn, and crucially no ctl trace event claiming an unwind happened. *)
  Alcotest.(check int) "wrong nsm drops nothing" 0
    (Coreengine.forget_vm_routes ce ~vm_id:1 ~nsm_id:99);
  Alcotest.(check int) "unknown vm drops nothing" 0
    (Coreengine.forget_vm_routes ce ~vm_id:2 ~nsm_id:1);
  Alcotest.(check int) "no-op calls emit no trace events" before (traced ());
  Alcotest.(check string) "table untouched" dump (Coreengine.dump_conn_table ce);
  (* The real unwind fires once and is traced once... *)
  Alcotest.(check int) "matching call drops the route" 1
    (Coreengine.forget_vm_routes ce ~vm_id:1 ~nsm_id:1);
  Alcotest.(check int) "table empty" 0 (Coreengine.conn_table_size ce);
  Alcotest.(check int) "one trace event" (before + 1) (traced ());
  (* ...and repeating it is idempotent, trace included. *)
  Alcotest.(check int) "double call is a no-op" 0
    (Coreengine.forget_vm_routes ce ~vm_id:1 ~nsm_id:1);
  Alcotest.(check int) "still one trace event" (before + 1) (traced ())

let tests =
  [
    Alcotest.test_case "vm->nsm switching + queue pinning" `Quick vm_to_nsm_switching;
    Alcotest.test_case "nsm->vm accept completion" `Quick nsm_to_vm_completion;
    Alcotest.test_case "close clears the table" `Quick close_clears_table;
    Alcotest.test_case "round robin across NSMs" `Quick round_robin_across_nsms;
    Alcotest.test_case "rate limit defers sends" `Quick rate_limit_defers_sends;
    Alcotest.test_case "control ops bypass the bucket" `Quick control_not_rate_limited;
    Alcotest.test_case "device overflow backpressure" `Quick device_overflow_backpressure;
    Alcotest.test_case "forget_vm_routes edge cases" `Quick forget_vm_routes_edge_cases;
  ]
