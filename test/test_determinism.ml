(* Whole-system determinism: identical seeds must reproduce identical runs
   bit-for-bit (the discrete-event engine, RNG splitting and data structures
   admit no hidden nondeterminism), and the seed must actually matter. *)

open Nkcore
module Types = Tcpstack.Types

let run_once ?loss_seed ?(trace = false) ~seed () =
  (* A deliberately small trace ring so wraparound itself is exercised by
     the byte-identical check. *)
  let tb =
    Testbed.create
      ~config:
        { Testbed.Config.default with
          seed;
          trace_enabled = trace;
          trace_capacity = Some 4096
        }
      ()
  in
  let hosta = Testbed.add_host tb ~name:"hostA" in
  let hostb = Testbed.add_host tb ~name:"hostB" in
  let nsm = Nsm.create_kernel hosta ~name:"nsm" ~vcpus:2 () in
  let vm = Vm.create_nk hosta ~name:"vm" ~vcpus:2 ~ips:[ 10 ] ~nsms:[ nsm ] () in
  let client =
    Vm.create_baseline hostb ~name:"client" ~vcpus:8 ~ips:[ 20; 21 ]
      ~profile:Sim.Cost_profile.ideal ()
  in
  (match loss_seed with
  | None -> ()
  | Some ls -> (
      match Fabric.port_to tb.Testbed.fabric (Host.nic hosta) with
      | Some l -> Link.set_random_loss l ~rng:(Nkutil.Rng.create ~seed:ls) ~rate:0.02
      | None -> Alcotest.fail "no downlink"));
  let proto = Nkapps.Proto.Fixed { request = 64; response = 512; keepalive = false } in
  (match
     Nkapps.Epoll_server.start ~engine:tb.Testbed.engine ~api:(Vm.api vm)
       (Nkapps.Epoll_server.config ~proto (Addr.make 10 80))
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "server: %s" (Types.err_to_string e));
  let lg = ref None in
  ignore
    (Sim.Engine.schedule tb.Testbed.engine ~delay:1e-3 (fun () ->
         lg :=
           Some
             (Nkapps.Loadgen.start ~engine:tb.Testbed.engine ~api:(Vm.api client)
                {
                  Nkapps.Loadgen.server = Addr.make 10 80;
                  proto;
                  mode =
                    Nkapps.Loadgen.Closed
                      { concurrency = 32; total = Some 2_000; duration = None };
                  warmup = 0.0;
                })));
  Testbed.run tb ~until:30.0;
  let r = Nkapps.Loadgen.results (Option.get !lg) in
  let ce = Coreengine.stats (Host.coreengine hosta) in
  ( r.Nkapps.Loadgen.completed,
    r.Nkapps.Loadgen.finished,
    Vm.busy_cycles vm,
    Nsm.busy_cycles nsm,
    ce.Coreengine.switched,
    Sim.Engine.events_executed tb.Testbed.engine,
    ( Nkmon.Registry.to_json (Nkmon.registry tb.Testbed.mon),
      Nkmon.Trace.to_json (Nkmon.trace tb.Testbed.mon) ) )

let identical_runs () =
  let a = run_once ~seed:1234 () in
  let b = run_once ~seed:1234 () in
  let c1, f1, v1, n1, s1, e1, (m1, _) = a and c2, f2, v2, n2, s2, e2, (m2, _) = b in
  Alcotest.(check int) "completed" c1 c2;
  Alcotest.(check (float 0.0)) "finish time (exact)" f1 f2;
  Alcotest.(check (float 0.0)) "vm cycles (exact)" v1 v2;
  Alcotest.(check (float 0.0)) "nsm cycles (exact)" n1 n2;
  Alcotest.(check int) "NQEs switched" s1 s2;
  Alcotest.(check int) "events executed" e1 e2;
  Alcotest.(check string) "metrics JSON byte-identical" m1 m2

let identical_lossy_runs () =
  (* Determinism must also hold with fault injection active. *)
  let a = run_once ~loss_seed:7 ~seed:1234 () in
  let b = run_once ~loss_seed:7 ~seed:1234 () in
  let c1, f1, _, _, _, e1, _ = a and c2, f2, _, _, _, e2, _ = b in
  Alcotest.(check int) "completed" c1 c2;
  Alcotest.(check (float 0.0)) "finish time (exact)" f1 f2;
  Alcotest.(check int) "events executed" e1 e2

let loss_seed_matters () =
  (* Different loss patterns must produce different executions. *)
  let _, f1, _, _, _, e1, _ = run_once ~loss_seed:11 ~seed:1234 () in
  let _, f2, _, _, _, e2, _ = run_once ~loss_seed:12 ~seed:1234 () in
  if f1 = f2 && e1 = e2 then Alcotest.fail "different loss seeds, identical runs"

let identical_traced_runs () =
  (* The full event trace — with ring wraparound — must also be
     byte-for-byte reproducible. *)
  let _, _, _, _, _, _, (m1, t1) = run_once ~trace:true ~seed:1234 () in
  let _, _, _, _, _, _, (m2, t2) = run_once ~trace:true ~seed:1234 () in
  Alcotest.(check bool) "trace is non-trivial" true (String.length t1 > 1000);
  Alcotest.(check string) "trace JSON byte-identical" t1 t2;
  Alcotest.(check string) "metrics JSON byte-identical" m1 m2

let tests =
  [
    Alcotest.test_case "identical seeds, identical runs" `Quick identical_runs;
    Alcotest.test_case "identical seeds, identical traces" `Quick identical_traced_runs;
    Alcotest.test_case "identical seeds with loss injection" `Quick identical_lossy_runs;
    Alcotest.test_case "loss seed matters" `Quick loss_seed_matters;
  ]
